// Command rhsc runs any catalogued problem from the command line.
//
// Examples:
//
//	rhsc -problem sod -n 800 -recon ppm -riemann hllc -out profile.csv
//	rhsc -problem blast2d -n 256 -threads 8 -tend 0.2 -out slab.csv
//	rhsc -problem sod -n 512 -amr -maxlevel 3
//	rhsc -list
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rhsc"
	"rhsc/internal/durable"
	"rhsc/internal/resilience"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list catalogued problems and exit")
		problem = flag.String("problem", "sod", "problem name (see -list)")
		n       = flag.Int("n", 256, "cells along x")
		rec     = flag.String("recon", "plm", "reconstruction: pcm|plm|plm-minmod|plm-vanleer|ppm|weno5|wenoz")
		rie     = flag.String("riemann", "hllc", "Riemann solver: llf|hll|hllc")
		integ   = flag.String("integrator", "rk2", "time integrator: rk1|rk2|rk3")
		cfl     = flag.Float64("cfl", 0.4, "Courant factor")
		threads = flag.Int("threads", runtime.NumCPU(), "worker threads")
		tend    = flag.Float64("tend", 0, "end time (0 = problem default)")
		gamma   = flag.Float64("gamma", 0, "adiabatic index override (0 = problem default)")
		tm      = flag.Bool("taub-mathews", false, "use the Taub-Mathews EOS")
		out     = flag.String("out", "", "write final profile/slab CSV to this file")
		ckpt    = flag.String("checkpoint", "", "write a binary checkpoint to this file")
		spool   = flag.String("spool", "rhsc-spool", "durable checkpoint store for interrupts and -ckpt-every")
		ckEvery = flag.Int("ckpt-every", 0, "commit a durable checkpoint every N steps (serial runs; 0 = off)")
		resume  = flag.Bool("resume", false, "resume from the spool's newest valid checkpoint of this problem")
		verify  = flag.String("verify", "", "scrub a durable checkpoint store directory and exit (nonzero on corruption)")
		useAMR  = flag.Bool("amr", false, "run with adaptive mesh refinement")
		maxLev  = flag.Int("maxlevel", 2, "AMR: maximum refinement level")
		blocks  = flag.Int("rootblocks", 8, "AMR: root blocks along x")
		ranks   = flag.Int("ranks", 0, "run distributed over this many ranks (virtual cluster)")
		px      = flag.Int("px", 0, "process-grid columns (with -ranks)")
		py      = flag.Int("py", 0, "process-grid rows (with -ranks)")
		async   = flag.Bool("async", false, "overlap halo exchange (with -ranks)")
		network = flag.String("network", "ib", "virtual network: ideal|gige|ib (with -ranks)")
		devices = flag.String("devices", "", "heterogeneous devices, comma list of cpu<N>|gpu|staged (e.g. cpu8,gpu)")
		dynamic = flag.Bool("dynamic", false, "dynamic strip scheduling (with -devices)")
		steps   = flag.Int("steps", 0, "fixed step count for -ranks/-devices performance runs")
	)
	flag.Parse()

	if *list {
		for _, name := range rhsc.Problems() {
			fmt.Println(name)
		}
		return
	}
	if *verify != "" {
		os.Exit(runScrub(*verify))
	}

	opts := rhsc.Options{
		Problem: *problem, N: *n, Recon: *rec, Riemann: *rie,
		Integrator: *integ, CFL: *cfl, Threads: *threads,
		Gamma: *gamma, TaubMathews: *tm,
	}

	if *useAMR {
		runAMR(opts, *tend, *maxLev, *blocks, *spool)
		return
	}
	if *ranks > 0 {
		runCluster(opts, *ranks, *px, *py, *async, *network, *steps, *tend)
		return
	}
	if *devices != "" {
		runHetero(opts, *devices, *dynamic, *steps, *tend)
		return
	}

	var sim *rhsc.Sim
	var err error
	if *resume {
		sim, err = resumeSerial(*spool, *problem, opts)
	} else {
		sim, err = rhsc.NewSim(opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	tEnd := sim.Problem.TEnd
	if *tend > 0 {
		tEnd = *tend
	}
	start := time.Now()
	interrupted, err := runSerial(sim, tEnd, *spool, *ckEvery)
	if err != nil {
		log.Fatal(err)
	}
	if interrupted {
		return
	}
	elapsed := time.Since(start)
	fmt.Printf("%s N=%d t=%.4g: %v wall, %.2f Mzups, mass %.6g\n",
		sim.Problem.Name, *n, sim.Time(), elapsed.Round(time.Millisecond),
		rhsc.Mzups(sim.ZoneUpdates(), elapsed), sim.Mass())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if sim.Grid.Ny > 1 {
			err = sim.WriteSlab(f)
		} else {
			err = sim.WriteProfile(f)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *out)
	}
	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := sim.Checkpoint(f); err != nil {
			log.Fatal(err)
		}
		fmt.Println("checkpoint written to", *ckpt)
	}
}

func runCluster(opts rhsc.Options, ranks, px, py int, async bool, network string, steps int, tend float64) {
	res, err := rhsc.RunCluster(opts, rhsc.ClusterOptions{
		Ranks: ranks, Px: px, Py: py, Async: async,
		Network: network, Steps: steps, TEnd: tend,
	})
	if err != nil {
		log.Fatal(err)
	}
	mode := "sync"
	if async {
		mode = "async"
	}
	fmt.Printf("%s over %d ranks (%s, %s): %d steps, %v wall, %.4g ms virtual, mass %.6g\n",
		opts.Problem, res.Ranks, mode, network, res.Steps,
		res.RealTime.Round(time.Millisecond), res.VirtualTime*1e3, res.TotalMass)
}

func parseDevices(spec string) ([]rhsc.DeviceSpec, error) {
	var out []rhsc.DeviceSpec
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "gpu":
			out = append(out, rhsc.GPU())
		case tok == "staged":
			out = append(out, rhsc.StagedGPU())
		case strings.HasPrefix(tok, "cpu"):
			cores, err := strconv.Atoi(tok[3:])
			if err != nil || cores < 1 {
				return nil, fmt.Errorf("bad device %q (want cpu<N>)", tok)
			}
			out = append(out, rhsc.HostCPU(cores))
		default:
			return nil, fmt.Errorf("unknown device %q", tok)
		}
	}
	return out, nil
}

func runHetero(opts rhsc.Options, devices string, dynamic bool, steps int, tend float64) {
	specs, err := parseDevices(devices)
	if err != nil {
		log.Fatal(err)
	}
	policy := rhsc.StaticSchedule
	if dynamic {
		policy = rhsc.DynamicSchedule
	}
	h, err := rhsc.NewHeteroSim(opts, policy, specs...)
	if err != nil {
		log.Fatal(err)
	}
	if steps <= 0 {
		steps = 10
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		if tend > 0 && h.Time() >= tend {
			break
		}
		if _, err := h.Step(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s on [%s] %s: %d steps, %v wall, %.4g ms virtual\n",
		opts.Problem, devices, policy, steps,
		time.Since(start).Round(time.Millisecond), h.VirtualSeconds()*1e3)
}

func runAMR(opts rhsc.Options, tend float64, maxLevel, rootBlocks int, spool string) {
	a, err := rhsc.NewAMRSim(opts, rhsc.AMROptions{
		MaxLevel: maxLevel, RootBlocks: rootBlocks,
	})
	if err != nil {
		log.Fatal(err)
	}
	tEnd := a.Problem.TEnd
	if tend > 0 {
		tEnd = tend
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	start := time.Now()
	for a.Tree.Time() < tEnd-1e-14 {
		select {
		case sig := <-sigc:
			exitSpooled(spool, a.Problem.Name+"-amr", sig, a.Tree.Time(), a.CheckpointExact)
		default:
		}
		dt := a.Tree.MaxDt()
		if a.Tree.Time()+dt > tEnd {
			dt = tEnd - a.Tree.Time()
		}
		if err := a.Tree.Step(dt); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	leaves, zones, level, updates := a.Stats()
	fmt.Printf("%s AMR L%d: %v wall, %d leaves, %d active zones, %d zone-updates\n",
		a.Problem.Name, level, elapsed.Round(time.Millisecond), leaves, zones, updates)
}

// runSerial advances the simulation to tEnd with a signal-aware step
// loop (numerically identical to Sim.RunTo): on SIGINT/SIGTERM the
// run is checkpointed exactly into the spool's durable store and the
// process exits 0 — nonzero only when that checkpoint cannot be
// committed. With ckEvery > 0 a durable checkpoint is also committed
// every ckEvery steps, so even a SIGKILL or power loss costs at most
// ckEvery steps of progress (-resume picks the run back up).
func runSerial(sim *rhsc.Sim, tEnd float64, spool string, ckEvery int) (bool, error) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var periodic *resilience.DurableCheckpointer
	if ckEvery > 0 && spool != "" {
		st, err := durable.Open(durable.OS, spool, nil)
		if err != nil {
			return false, err
		}
		periodic = &resilience.DurableCheckpointer{Store: st, Name: sim.Problem.Name, Every: ckEvery}
	}
	sim.Solver.RecoverPrimitives() // Advance's first-step recovery
	step := 0
	for sim.Time() < tEnd-1e-14 {
		select {
		case sig := <-sigc:
			exitSpooled(spool, sim.Problem.Name, sig, sim.Time(), sim.CheckpointExact)
		default:
		}
		dt := sim.Solver.MaxDt()
		if sim.Time()+dt > tEnd {
			dt = tEnd - sim.Time()
		}
		if err := sim.Solver.Step(dt); err != nil {
			return false, err
		}
		step++
		if periodic != nil {
			if _, err := periodic.Tick(step, sim.CheckpointExact); err != nil {
				return false, err
			}
		}
	}
	return false, nil
}

// resumeSerial rebuilds a serial run from the spool store's newest
// fully-valid checkpoint of the problem; corrupt generations are
// quarantined and skipped automatically.
func resumeSerial(spool, problem string, opts rhsc.Options) (*rhsc.Sim, error) {
	var sim *rhsc.Sim
	gen, err := resilience.RecoverLatest(durable.OS, spool, problem, func(r io.Reader) error {
		var err error
		sim, err = rhsc.Restore(r, opts)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("rhsc: resume %s from %s: %w", problem, spool, err)
	}
	fmt.Printf("resumed %s from generation %d (t=%.6g)\n", problem, gen, sim.Time())
	return sim, nil
}

// exitSpooled commits an exact checkpoint into the spool's durable
// store and terminates the process: exit 0 on success, 1 when
// in-flight state could not be saved. Restart later with -resume and
// matching -problem/-n (or resubmit to rhscd).
func exitSpooled(dir, name string, sig os.Signal, t float64, save func(io.Writer) error) {
	st, err := durable.Open(durable.OS, dir, nil)
	if err == nil {
		_, err = st.Commit(name, save)
	}
	if err != nil {
		log.Printf("rhsc: %v: spool checkpoint failed: %v", sig, err)
		os.Exit(1)
	}
	fmt.Printf("%v: checkpointed t=%.6g to %s (resume with -resume -spool %s)\n",
		sig, t, filepath.Join(dir, name+".g*.dur"), dir)
	os.Exit(0)
}

// runScrub verifies every record of a durable store byte for byte and
// prints the report; returns the process exit code (1 when any file
// failed verification).
func runScrub(dir string) int {
	st, err := durable.Open(durable.OS, dir, nil)
	if err != nil {
		log.Printf("rhsc: verify %s: %v", dir, err)
		return 1
	}
	rep, err := st.Scrub()
	if err != nil {
		log.Printf("rhsc: verify %s: %v", dir, err)
		return 1
	}
	for _, r := range rep.Results {
		if r.OK {
			fmt.Printf("ok   %s g%d (%d bytes)\n", r.File, r.Gen, r.Bytes)
		} else {
			fmt.Printf("BAD  %s g%d: %s\n", r.File, r.Gen, r.Error)
		}
	}
	for _, name := range rep.ManifestDrift {
		fmt.Printf("DRIFT %s: manifest head has no valid file\n", name)
	}
	fmt.Printf("%s: %d checked, %d bad\n", dir, rep.Checked, rep.Bad)
	if rep.Bad > 0 || len(rep.ManifestDrift) > 0 {
		return 1
	}
	return 0
}
