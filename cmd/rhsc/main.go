// Command rhsc runs any catalogued problem from the command line.
//
// Examples:
//
//	rhsc -problem sod -n 800 -recon ppm -riemann hllc -out profile.csv
//	rhsc -problem blast2d -n 256 -threads 8 -tend 0.2 -out slab.csv
//	rhsc -problem sod -n 512 -amr -maxlevel 3
//	rhsc -list
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rhsc"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list catalogued problems and exit")
		problem = flag.String("problem", "sod", "problem name (see -list)")
		n       = flag.Int("n", 256, "cells along x")
		rec     = flag.String("recon", "plm", "reconstruction: pcm|plm|plm-minmod|plm-vanleer|ppm|weno5|wenoz")
		rie     = flag.String("riemann", "hllc", "Riemann solver: llf|hll|hllc")
		integ   = flag.String("integrator", "rk2", "time integrator: rk1|rk2|rk3")
		cfl     = flag.Float64("cfl", 0.4, "Courant factor")
		threads = flag.Int("threads", runtime.NumCPU(), "worker threads")
		tend    = flag.Float64("tend", 0, "end time (0 = problem default)")
		gamma   = flag.Float64("gamma", 0, "adiabatic index override (0 = problem default)")
		tm      = flag.Bool("taub-mathews", false, "use the Taub-Mathews EOS")
		out     = flag.String("out", "", "write final profile/slab CSV to this file")
		ckpt    = flag.String("checkpoint", "", "write a binary checkpoint to this file")
		spool   = flag.String("spool", "rhsc-spool", "directory for interrupt checkpoints (SIGINT/SIGTERM)")
		useAMR  = flag.Bool("amr", false, "run with adaptive mesh refinement")
		maxLev  = flag.Int("maxlevel", 2, "AMR: maximum refinement level")
		blocks  = flag.Int("rootblocks", 8, "AMR: root blocks along x")
		ranks   = flag.Int("ranks", 0, "run distributed over this many ranks (virtual cluster)")
		px      = flag.Int("px", 0, "process-grid columns (with -ranks)")
		py      = flag.Int("py", 0, "process-grid rows (with -ranks)")
		async   = flag.Bool("async", false, "overlap halo exchange (with -ranks)")
		network = flag.String("network", "ib", "virtual network: ideal|gige|ib (with -ranks)")
		devices = flag.String("devices", "", "heterogeneous devices, comma list of cpu<N>|gpu|staged (e.g. cpu8,gpu)")
		dynamic = flag.Bool("dynamic", false, "dynamic strip scheduling (with -devices)")
		steps   = flag.Int("steps", 0, "fixed step count for -ranks/-devices performance runs")
	)
	flag.Parse()

	if *list {
		for _, name := range rhsc.Problems() {
			fmt.Println(name)
		}
		return
	}

	opts := rhsc.Options{
		Problem: *problem, N: *n, Recon: *rec, Riemann: *rie,
		Integrator: *integ, CFL: *cfl, Threads: *threads,
		Gamma: *gamma, TaubMathews: *tm,
	}

	if *useAMR {
		runAMR(opts, *tend, *maxLev, *blocks, *spool)
		return
	}
	if *ranks > 0 {
		runCluster(opts, *ranks, *px, *py, *async, *network, *steps, *tend)
		return
	}
	if *devices != "" {
		runHetero(opts, *devices, *dynamic, *steps, *tend)
		return
	}

	sim, err := rhsc.NewSim(opts)
	if err != nil {
		log.Fatal(err)
	}
	tEnd := sim.Problem.TEnd
	if *tend > 0 {
		tEnd = *tend
	}
	start := time.Now()
	interrupted, err := runSerial(sim, tEnd, *spool)
	if err != nil {
		log.Fatal(err)
	}
	if interrupted {
		return
	}
	elapsed := time.Since(start)
	fmt.Printf("%s N=%d t=%.4g: %v wall, %.2f Mzups, mass %.6g\n",
		sim.Problem.Name, *n, sim.Time(), elapsed.Round(time.Millisecond),
		rhsc.Mzups(sim.ZoneUpdates(), elapsed), sim.Mass())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if sim.Grid.Ny > 1 {
			err = sim.WriteSlab(f)
		} else {
			err = sim.WriteProfile(f)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *out)
	}
	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := sim.Checkpoint(f); err != nil {
			log.Fatal(err)
		}
		fmt.Println("checkpoint written to", *ckpt)
	}
}

func runCluster(opts rhsc.Options, ranks, px, py int, async bool, network string, steps int, tend float64) {
	res, err := rhsc.RunCluster(opts, rhsc.ClusterOptions{
		Ranks: ranks, Px: px, Py: py, Async: async,
		Network: network, Steps: steps, TEnd: tend,
	})
	if err != nil {
		log.Fatal(err)
	}
	mode := "sync"
	if async {
		mode = "async"
	}
	fmt.Printf("%s over %d ranks (%s, %s): %d steps, %v wall, %.4g ms virtual, mass %.6g\n",
		opts.Problem, res.Ranks, mode, network, res.Steps,
		res.RealTime.Round(time.Millisecond), res.VirtualTime*1e3, res.TotalMass)
}

func parseDevices(spec string) ([]rhsc.DeviceSpec, error) {
	var out []rhsc.DeviceSpec
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "gpu":
			out = append(out, rhsc.GPU())
		case tok == "staged":
			out = append(out, rhsc.StagedGPU())
		case strings.HasPrefix(tok, "cpu"):
			cores, err := strconv.Atoi(tok[3:])
			if err != nil || cores < 1 {
				return nil, fmt.Errorf("bad device %q (want cpu<N>)", tok)
			}
			out = append(out, rhsc.HostCPU(cores))
		default:
			return nil, fmt.Errorf("unknown device %q", tok)
		}
	}
	return out, nil
}

func runHetero(opts rhsc.Options, devices string, dynamic bool, steps int, tend float64) {
	specs, err := parseDevices(devices)
	if err != nil {
		log.Fatal(err)
	}
	policy := rhsc.StaticSchedule
	if dynamic {
		policy = rhsc.DynamicSchedule
	}
	h, err := rhsc.NewHeteroSim(opts, policy, specs...)
	if err != nil {
		log.Fatal(err)
	}
	if steps <= 0 {
		steps = 10
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		if tend > 0 && h.Time() >= tend {
			break
		}
		if _, err := h.Step(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s on [%s] %s: %d steps, %v wall, %.4g ms virtual\n",
		opts.Problem, devices, policy, steps,
		time.Since(start).Round(time.Millisecond), h.VirtualSeconds()*1e3)
}

func runAMR(opts rhsc.Options, tend float64, maxLevel, rootBlocks int, spool string) {
	a, err := rhsc.NewAMRSim(opts, rhsc.AMROptions{
		MaxLevel: maxLevel, RootBlocks: rootBlocks,
	})
	if err != nil {
		log.Fatal(err)
	}
	tEnd := a.Problem.TEnd
	if tend > 0 {
		tEnd = tend
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	start := time.Now()
	for a.Tree.Time() < tEnd-1e-14 {
		select {
		case sig := <-sigc:
			exitSpooled(spool, a.Problem.Name+"-amr", sig, a.Tree.Time(), a.CheckpointExact)
		default:
		}
		dt := a.Tree.MaxDt()
		if a.Tree.Time()+dt > tEnd {
			dt = tEnd - a.Tree.Time()
		}
		if err := a.Tree.Step(dt); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	leaves, zones, level, updates := a.Stats()
	fmt.Printf("%s AMR L%d: %v wall, %d leaves, %d active zones, %d zone-updates\n",
		a.Problem.Name, level, elapsed.Round(time.Millisecond), leaves, zones, updates)
}

// runSerial advances the simulation to tEnd with a signal-aware step
// loop (numerically identical to Sim.RunTo): on SIGINT/SIGTERM the
// run is checkpointed exactly into the spool directory and the process
// exits 0 — nonzero only when that checkpoint cannot be written.
func runSerial(sim *rhsc.Sim, tEnd float64, spool string) (bool, error) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	sim.Solver.RecoverPrimitives() // Advance's first-step recovery
	for sim.Time() < tEnd-1e-14 {
		select {
		case sig := <-sigc:
			exitSpooled(spool, sim.Problem.Name, sig, sim.Time(), sim.CheckpointExact)
		default:
		}
		dt := sim.Solver.MaxDt()
		if sim.Time()+dt > tEnd {
			dt = tEnd - sim.Time()
		}
		if err := sim.Solver.Step(dt); err != nil {
			return false, err
		}
	}
	return false, nil
}

// exitSpooled writes an exact checkpoint into the spool directory and
// terminates the process: exit 0 on success, 1 when in-flight state
// could not be saved. Restart later with -problem/-n matching and
// rhsc.Restore (or resubmit to rhscd).
func exitSpooled(dir, name string, sig os.Signal, t float64, save func(io.Writer) error) {
	fail := func(err error) {
		log.Printf("rhsc: %v: spool checkpoint failed: %v", sig, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.ckpt", name, os.Getpid()))
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := save(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("%v: checkpointed t=%.6g to %s\n", sig, t, path)
	os.Exit(0)
}
