package main

import (
	"fmt"

	"rhsc/internal/core"
	"rhsc/internal/hetero"
	"rhsc/internal/metrics"
	"rhsc/internal/testprob"
)

// heteroRun advances the 2-D blast a few steps on the given devices and
// returns the executor (for clocks and load reports).
func heteroRun(n, steps int, pol hetero.Policy, specs ...hetero.Spec) (*hetero.Executor, error) {
	p := testprob.Blast2D
	g := p.NewGrid(n, 2)
	cfg := core.DefaultConfig()
	s, err := core.New(g, cfg)
	if err != nil {
		return nil, err
	}
	devs := make([]*hetero.Device, len(specs))
	for i, sp := range specs {
		d, err := hetero.NewDevice(sp)
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	ex, err := hetero.NewExecutor(pol, devs...)
	if err != nil {
		return nil, err
	}
	ex.Attach(s)
	s.InitFromPrim(p.Init)
	for i := 0; i < steps; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			return nil, err
		}
	}
	return ex, nil
}

// table4 is E7: per-device throughput across grid sizes, including the
// staged (PCIe-bound) accelerator, exposing the CPU/GPU crossover.
func (s *suite) table4() error {
	sizes := []int{32, 64, 128, 256}
	steps := 2
	if s.quick {
		sizes = []int{32, 64, 128}
	}
	devices := []struct {
		label string
		spec  hetero.Spec
	}{
		{"cpu-8c", hetero.SpecHostCPU(8)},
		{"gpu-resident", hetero.SpecK20GPU()},
		{"gpu-staged", hetero.SpecK20GPUStaged()},
	}
	tb := metrics.NewTable("Table 4: device throughput on the 2-D blast (virtual)",
		"grid", "device", "step(ms)", "Mzups")
	var csvN, csvCPU, csvGPU, csvStaged []float64
	for _, n := range sizes {
		var row [3]float64
		for di, d := range devices {
			ex, err := heteroRun(n, steps, hetero.Static, d.spec)
			if err != nil {
				return err
			}
			vt := ex.VirtualTime()
			// Zones per run: n^2 x 2 dims x 2 stages x steps sweep zones,
			// but the executor clock covers sweeps only; report effective
			// zone throughput over the total sweep zones.
			zones := float64(ex.Devices[0].Zones())
			mz := zones / vt / 1e6
			tb.AddRow(fmt.Sprintf("%d^2", n), d.label, vt*1e3/float64(steps), mz)
			row[di] = mz
		}
		csvN = append(csvN, float64(n))
		csvCPU = append(csvCPU, row[0])
		csvGPU = append(csvGPU, row[1])
		csvStaged = append(csvStaged, row[2])
	}
	fmt.Print(tb.String())
	fmt.Println("  expected shape: the resident GPU loses below the launch-bound")
	fmt.Println("  crossover and approaches its 100 Mz/s plateau above it; the staged")
	fmt.Println("  GPU saturates near the PCIe bandwidth limit (~43 Mz/s).")
	s.writeCSV("table4_device_throughput.csv",
		[]string{"n", "cpu_mzups", "gpu_mzups", "staged_mzups"},
		csvN, csvCPU, csvGPU, csvStaged)
	return nil
}

// fig6 is E8: heterogeneous speedup and load balance across device mixes
// and scheduling policies.
func (s *suite) fig6() error {
	n := 192
	steps := 3
	if s.quick {
		n, steps = 96, 2
	}
	slowLink := hetero.SpecK20GPUStaged()
	slowLink.TransferBW = 3e9

	setups := []struct {
		label string
		pol   hetero.Policy
		specs []hetero.Spec
	}{
		{"cpu-8c", hetero.Static, []hetero.Spec{hetero.SpecHostCPU(8)}},
		{"gpu", hetero.Static, []hetero.Spec{hetero.SpecK20GPU()}},
		{"cpu+gpu/static", hetero.Static, []hetero.Spec{hetero.SpecHostCPU(8), hetero.SpecK20GPU()}},
		{"cpu+gpu/dynamic", hetero.Dynamic, []hetero.Spec{hetero.SpecHostCPU(8), hetero.SpecK20GPU()}},
		{"cpu+staged/static", hetero.Static, []hetero.Spec{hetero.SpecHostCPU(8), slowLink}},
		{"cpu+staged/dynamic", hetero.Dynamic, []hetero.Spec{hetero.SpecHostCPU(8), slowLink}},
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Fig 6: heterogeneous speedup, %d^2 blast, %d steps (virtual)", n, steps),
		"setup", "time(ms)", "speedup", "imbalance", "gpu-share%")
	var base float64
	for _, su := range setups {
		ex, err := heteroRun(n, steps, su.pol, su.specs...)
		if err != nil {
			return err
		}
		vt := ex.VirtualTime()
		if base == 0 {
			base = vt
		}
		gpuShare := 0.0
		for _, r := range ex.Report() {
			if r.Kind == hetero.GPU {
				gpuShare = 100 * r.Share
			}
		}
		tb.AddRow(su.label, vt*1e3, base/vt, ex.Imbalance(), gpuShare)
	}
	fmt.Print(tb.String())
	fmt.Println("  expected shape: CPU+GPU beats either device alone; the dynamic")
	fmt.Println("  queue matters when nominal and effective device speeds diverge")
	fmt.Println("  (staged link), and costs launch overhead when they do not.")
	return nil
}
