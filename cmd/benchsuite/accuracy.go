package main

import (
	"fmt"
	"io"
	"math"

	"rhsc/internal/core"
	"rhsc/internal/eos"
	"rhsc/internal/exact"
	"rhsc/internal/grid"
	"rhsc/internal/mathutil"
	"rhsc/internal/metrics"
	"rhsc/internal/output"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// writeSeries forwards to the output package (kept here so main.go does
// not need the import).
func writeSeries(w io.Writer, headers []string, cols ...[]float64) error {
	return output.WriteSeriesCSV(w, headers, cols...)
}

// runSod evolves the Sod problem at resolution n with the given method
// and returns the L1(rho) error against the exact solution.
func runSod(n int, rc recon.Scheme, rs riemann.Solver) (float64, error) {
	p := testprob.Sod
	g := p.NewGrid(n, rc.Ghost())
	cfg := core.DefaultConfig()
	cfg.Recon = rc
	cfg.Riemann = rs
	s, err := core.New(g, cfg)
	if err != nil {
		return 0, err
	}
	s.InitFromPrim(p.Init)
	if _, err := s.Advance(p.TEnd); err != nil {
		return 0, err
	}
	ref, err := exact.Solve(
		exact.State{Rho: 10, V: 0, P: 13.33},
		exact.State{Rho: 1, V: 0, P: 1e-6}, 5.0/3.0)
	if err != nil {
		return 0, err
	}
	l1 := 0.0
	for i := g.IBeg(); i < g.IEnd(); i++ {
		ex := ref.Sample((g.X(i) - 0.5) / p.TEnd)
		l1 += math.Abs(g.W.Comp[state.IRho][i] - ex.Rho)
	}
	return l1 * g.Dx, nil
}

// table1 is E1: L1 errors and observed convergence rates on the Sod tube.
func (s *suite) table1() error {
	ns := []int{100, 200, 400, 800}
	if s.quick {
		ns = []int{100, 200, 400}
	}
	methods := []struct {
		label string
		rc    recon.Scheme
		rs    riemann.Solver
	}{
		{"plm+hll", recon.PLM{Lim: recon.MonotonizedCentral}, riemann.HLL{}},
		{"plm+hllc", recon.PLM{Lim: recon.MonotonizedCentral}, riemann.HLLC{}},
		{"ppm+hllc", recon.PPM{}, riemann.HLLC{}},
		{"weno5+hllc", recon.WENO5{}, riemann.HLLC{}},
	}
	tb := metrics.NewTable("Table 1: Sod tube L1(rho) vs exact, t=0.4",
		"method", "N", "L1", "rate")
	var csvN, csvErr []float64
	for _, m := range methods {
		prev := math.NaN()
		for _, n := range ns {
			l1, err := runSod(n, m.rc, m.rs)
			if err != nil {
				return err
			}
			rate := math.NaN()
			if !math.IsNaN(prev) {
				rate = math.Log2(prev / l1)
			}
			if math.IsNaN(rate) {
				tb.AddRow(m.label, n, l1, "-")
			} else {
				tb.AddRow(m.label, n, l1, rate)
			}
			prev = l1
			csvN = append(csvN, float64(n))
			csvErr = append(csvErr, l1)
		}
	}
	fmt.Print(tb.String())
	s.writeCSV("table1_sod_convergence.csv", []string{"n", "l1"}, csvN, csvErr)

	// Table 1b: shock tube with transverse velocities against the
	// weak-shock-integrated exact solver (v_t couples through the Lorentz
	// factor; Newtonian intuition fails here).
	l := exact.State2{Rho: 10, Vt: 0.4, P: 13.33}
	r := exact.State2{Rho: 1, Vt: -0.3, P: 0.1}
	refVt, err := exact.SolveVt(l, r, 5.0/3.0)
	if err != nil {
		return err
	}
	const tEndVt = 0.3
	tb2 := metrics.NewTable("Table 1b: transverse-velocity tube, mean |err(rho)|+|err(vt)|",
		"N", "err", "rate")
	prev := math.NaN()
	for _, n := range ns {
		g := grid.New(grid.Geometry{Nx: n, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
		g.SetAllBCs(grid.Outflow)
		sol, err := core.New(g, core.DefaultConfig())
		if err != nil {
			return err
		}
		sol.InitFromPrim(func(x, _, _ float64) state.Prim {
			if x < 0.5 {
				return state.Prim{Rho: l.Rho, Vy: l.Vt, P: l.P}
			}
			return state.Prim{Rho: r.Rho, Vy: r.Vt, P: r.P}
		})
		if _, err := sol.Advance(tEndVt); err != nil {
			return err
		}
		sum := 0.0
		for i := g.IBeg(); i < g.IEnd(); i++ {
			ex := refVt.Sample((g.X(i) - 0.5) / tEndVt)
			sum += math.Abs(g.W.Comp[state.IRho][i]-ex.Rho) +
				math.Abs(g.W.Comp[state.IVy][i]-ex.Vt)
		}
		e := sum / float64(n)
		rate := math.NaN()
		if !math.IsNaN(prev) {
			rate = math.Log2(prev / e)
		}
		if math.IsNaN(rate) {
			tb2.AddRow(n, e, "-")
		} else {
			tb2.AddRow(n, e, rate)
		}
		prev = e
	}
	fmt.Print(tb2.String())
	return nil
}

// fig2 is E2: numeric vs exact profiles for the Sod tube and blast wave.
func (s *suite) fig2() error {
	n := 400
	if s.quick {
		n = 200
	}
	cases := []struct {
		prob  *testprob.Problem
		left  exact.State
		right exact.State
		file  string
	}{
		{testprob.Sod, exact.State{Rho: 10, V: 0, P: 13.33},
			exact.State{Rho: 1, V: 0, P: 1e-6}, "fig2_sod_profile.csv"},
		{testprob.Blast, exact.State{Rho: 1, V: 0, P: 1000},
			exact.State{Rho: 1, V: 0, P: 0.01}, "fig2_blast_profile.csv"},
	}
	for _, c := range cases {
		g := c.prob.NewGrid(n, 2)
		cfg := core.DefaultConfig()
		sol, err := core.New(g, cfg)
		if err != nil {
			return err
		}
		sol.InitFromPrim(c.prob.Init)
		if _, err := sol.Advance(c.prob.TEnd); err != nil {
			return err
		}
		ref, err := exact.Solve(c.left, c.right, 5.0/3.0)
		if err != nil {
			return err
		}
		var xs, num, exa, vnum, vexa []float64
		errMax := 0.0
		for i := g.IBeg(); i < g.IEnd(); i++ {
			x := g.X(i)
			ex := ref.Sample((x - 0.5) / c.prob.TEnd)
			rho := g.W.Comp[state.IRho][i]
			xs = append(xs, x)
			num = append(num, rho)
			exa = append(exa, ex.Rho)
			vnum = append(vnum, g.W.Comp[state.IVx][i])
			vexa = append(vexa, ex.V)
			if d := math.Abs(rho - ex.Rho); d > errMax {
				errMax = d
			}
		}
		fmt.Printf("  %-6s N=%d: p*=%.4g v*=%.4g (exact), Linf(rho)=%.3g\n",
			c.prob.Name, n, ref.Pstar, ref.Vstar, errMax)
		s.writeCSV(c.file, []string{"x", "rho", "rho_exact", "v", "v_exact"},
			xs, num, exa, vnum, vexa)
	}
	return nil
}

// table2 is E3: formal order on the smooth advected wave.
func (s *suite) table2() error {
	ns := []int{32, 64, 128, 256}
	if s.quick {
		ns = []int{32, 64, 128}
	}
	methods := []struct {
		label string
		rc    recon.Scheme
		integ core.Integrator
	}{
		{"plm-mc/rk2", recon.PLM{Lim: recon.MonotonizedCentral}, core.RK2},
		{"ppm/rk3", recon.PPM{}, core.RK3},
		{"weno5/rk3", recon.WENO5{}, core.RK3},
	}
	tb := metrics.NewTable("Table 2: smooth-wave L1(rho), t=0.4",
		"method", "N", "L1", "order")
	for _, m := range methods {
		prev := math.NaN()
		for _, n := range ns {
			p := testprob.SmoothWave
			g := p.NewGrid(n, m.rc.Ghost())
			cfg := core.DefaultConfig()
			cfg.Recon = m.rc
			cfg.Integrator = m.integ
			cfg.CFL = 0.3
			cfg.EOS = eos.NewIdealGas(p.Gamma)
			sol, err := core.New(g, cfg)
			if err != nil {
				return err
			}
			sol.InitFromPrim(p.Init)
			if _, err := sol.Advance(p.TEnd); err != nil {
				return err
			}
			l1 := 0.0
			for i := g.IBeg(); i < g.IEnd(); i++ {
				l1 += math.Abs(g.W.Comp[state.IRho][i] - testprob.SmoothWaveRho(g.X(i), p.TEnd))
			}
			l1 *= g.Dx
			order := mathutil.ConvergenceOrder(prev, l1, 2, 1)
			if math.IsNaN(order) {
				tb.AddRow(m.label, n, l1, "-")
			} else {
				tb.AddRow(m.label, n, l1, order)
			}
			prev = l1
		}
	}
	fmt.Print(tb.String())
	return nil
}

// ensure grid import is used even under -quick paths.
var _ = grid.Outflow
