package main

import (
	"fmt"
	"math"
	"time"

	"rhsc/internal/amr"
	"rhsc/internal/core"
	"rhsc/internal/exact"
	"rhsc/internal/metrics"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// fig7 is E9: AMR efficiency on the relativistic blast wave — zone
// updates and error vs a uniform grid at the effective resolution, for
// increasing refinement depth.
func (s *suite) fig7() error {
	const (
		rootBlocks = 8
		blockN     = 16
	)
	tEnd := 0.25
	levels := []int{1, 2, 3}
	if s.quick {
		levels = []int{1, 2}
	}

	ref, err := exact.Solve(
		exact.State{Rho: 1, V: 0, P: 1000},
		exact.State{Rho: 1, V: 0, P: 0.01}, 5.0/3.0)
	if err != nil {
		return err
	}
	l1Of := func(nEff int, at func(x float64) float64) float64 {
		sum, dx := 0.0, 1.0/float64(nEff)
		for i := 0; i < nEff; i++ {
			x := (float64(i) + 0.5) * dx
			sum += math.Abs(at(x)-ref.Sample((x-0.5)/tEnd).Rho) * dx
		}
		return sum
	}

	tb := metrics.NewTable("Fig 7: AMR efficiency, 1-D blast wave, t=0.25",
		"run", "eff-N", "zone-updates", "wall", "L1(rho)", "saving")
	var csvL, csvSave []float64
	for _, maxLevel := range levels {
		nEff := rootBlocks * blockN * (1 << maxLevel)

		// Uniform reference at the same effective resolution.
		p := testprob.Blast
		g := p.NewGrid(nEff, 2)
		cfg := core.DefaultConfig()
		us, err := core.New(g, cfg)
		if err != nil {
			return err
		}
		us.InitFromPrim(p.Init)
		uStart := time.Now()
		if _, err := us.Advance(tEnd); err != nil {
			return err
		}
		uWall := time.Since(uStart)
		uL1 := l1Of(nEff, func(x float64) float64 {
			i := g.IBeg() + int(x/g.Dx)
			if i >= g.IEnd() {
				i = g.IEnd() - 1
			}
			return g.W.Comp[state.IRho][i]
		})

		// Adaptive run.
		ac := amr.DefaultConfig(core.DefaultConfig())
		ac.BlockN = blockN
		ac.MaxLevel = maxLevel
		ac.RegridEvery = 2
		tr, err := amr.NewTree(p, rootBlocks, ac)
		if err != nil {
			return err
		}
		aStart := time.Now()
		if _, err := tr.Advance(tEnd); err != nil {
			return err
		}
		aWall := time.Since(aStart)
		aL1 := l1Of(nEff, func(x float64) float64 { return tr.SampleAt(x, 0).Rho })

		saving := float64(us.St.ZoneUpdates.Load()) / float64(tr.ZoneUpdates())
		tb.AddRow(fmt.Sprintf("uniform-%d", nEff), nEff, us.St.ZoneUpdates.Load(), uWall, uL1, 1.0)
		tb.AddRow(fmt.Sprintf("amr-L%d", maxLevel), nEff, tr.ZoneUpdates(), aWall, aL1, saving)
		csvL = append(csvL, float64(maxLevel))
		csvSave = append(csvSave, saving)
	}
	fmt.Print(tb.String())
	fmt.Println("  expected shape: the saving factor grows with depth while the AMR")
	fmt.Println("  error tracks the uniform-fine error (the flow is shock-dominated).")
	s.writeCSV("fig7_amr_saving.csv", []string{"max_level", "saving"}, csvL, csvSave)

	// 2-D companion: the cylindrical blast, where the refined region is
	// the expanding annulus around the shock.
	{
		maxLevel := 2
		if s.quick {
			maxLevel = 1
		}
		blockN := 8
		rootB := 8
		nEff := rootB * blockN * (1 << maxLevel)
		steps := 8

		p := testprob.Blast2D
		g := p.NewGrid(nEff, 2)
		cfg := core.DefaultConfig()
		us, err := core.New(g, cfg)
		if err != nil {
			return err
		}
		us.InitFromPrim(p.Init)
		uStart := time.Now()
		for i := 0; i < steps; i++ {
			if err := us.Step(us.MaxDt()); err != nil {
				return err
			}
		}
		uWall := time.Since(uStart)

		ac := amr.DefaultConfig(core.DefaultConfig())
		ac.BlockN = blockN
		ac.MaxLevel = maxLevel
		ac.RegridEvery = 3
		tr, err := amr.NewTree(p, rootB, ac)
		if err != nil {
			return err
		}
		aStart := time.Now()
		for i := 0; i < steps; i++ {
			if err := tr.Step(tr.MaxDt()); err != nil {
				return err
			}
		}
		aWall := time.Since(aStart)
		fmt.Printf("  2-D blast %d^2 eff., %d steps: uniform %d zone-updates (%v),\n",
			nEff, steps, us.St.ZoneUpdates.Load(), uWall.Round(time.Millisecond))
		fmt.Printf("  AMR-L%d %d zone-updates (%v) — saving %.2fx with %d leaves\n",
			maxLevel, tr.ZoneUpdates(), aWall.Round(time.Millisecond),
			float64(us.St.ZoneUpdates.Load())/float64(tr.ZoneUpdates()), tr.NumLeaves())
	}
	return nil
}
