package main

import (
	"fmt"

	"rhsc/internal/cluster"
	"rhsc/internal/core"
	"rhsc/internal/metrics"
	"rhsc/internal/testprob"
)

// fig4 is E5: strong scaling of a fixed problem over ranks, bulk-
// synchronous vs overlapped halo exchange, on an InfiniBand-class virtual
// network.
func (s *suite) fig4() error {
	n := 8192
	steps := 5
	ranks := []int{1, 2, 4, 8, 16, 32}
	if s.quick {
		n = 2048
		ranks = []int{1, 2, 4, 8}
	}
	cfg := core.DefaultConfig()
	net := cluster.Infiniband()

	tb := metrics.NewTable(
		fmt.Sprintf("Fig 4: strong scaling, N=%d Sod, %d steps, IB network (virtual ms)", n, steps),
		"ranks", "sync", "async", "sync-spdup", "async-spdup")
	var t1s, t1a float64
	var csvR, csvS, csvA []float64
	for _, r := range ranks {
		syncRes, err := cluster.Run(testprob.Sod, n, cfg, cluster.Options{
			Ranks: r, Mode: cluster.Sync, Net: net, Steps: steps})
		if err != nil {
			return err
		}
		asyncRes, err := cluster.Run(testprob.Sod, n, cfg, cluster.Options{
			Ranks: r, Mode: cluster.Async, Net: net, Steps: steps})
		if err != nil {
			return err
		}
		if r == 1 {
			t1s, t1a = syncRes.VirtualTime, asyncRes.VirtualTime
		}
		tb.AddRow(r, syncRes.VirtualTime*1e3, asyncRes.VirtualTime*1e3,
			t1s/syncRes.VirtualTime, t1a/asyncRes.VirtualTime)
		csvR = append(csvR, float64(r))
		csvS = append(csvS, syncRes.VirtualTime*1e3)
		csvA = append(csvA, asyncRes.VirtualTime*1e3)
	}
	fmt.Print(tb.String())
	s.writeCSV("fig4_strong_scaling.csv", []string{"ranks", "sync_ms", "async_ms"},
		csvR, csvS, csvA)

	// Decomposition shape at fixed rank count: 1-D slabs vs a 2-D process
	// grid on the 2-D blast (surface-to-volume effect).
	n2 := 256
	if s.quick {
		n2 = 128
	}
	tb2 := metrics.NewTable(
		fmt.Sprintf("Fig 4b: decomposition shape, %d^2 blast, 16 ranks, GigE (virtual ms)", n2),
		"grid", "sync", "async")
	for _, shape := range []struct{ px, py int }{{16, 1}, {8, 2}, {4, 4}} {
		var row [2]float64
		for mi, mode := range []cluster.Mode{cluster.Sync, cluster.Async} {
			res, err := cluster.Run(testprob.Blast2D, n2, cfg, cluster.Options{
				Ranks: 16, Px: shape.px, Py: shape.py,
				Mode: mode, Net: cluster.GigE(), Steps: steps,
			})
			if err != nil {
				return err
			}
			row[mi] = res.VirtualTime * 1e3
		}
		tb2.AddRow(fmt.Sprintf("%dx%d", shape.px, shape.py), row[0], row[1])
	}
	fmt.Print(tb2.String())
	return nil
}

// fig5 is E6: weak scaling at fixed zones per rank.
func (s *suite) fig5() error {
	perRank := 1024
	steps := 5
	ranks := []int{1, 2, 4, 8, 16, 32}
	if s.quick {
		perRank = 512
		ranks = []int{1, 2, 4, 8}
	}
	cfg := core.DefaultConfig()
	net := cluster.Infiniband()

	tb := metrics.NewTable(
		fmt.Sprintf("Fig 5: weak scaling, %d zones/rank Sod, %d steps, IB network", perRank, steps),
		"ranks", "N", "sync(ms)", "async(ms)", "sync-eff%", "async-eff%")
	var t1s, t1a float64
	var csvR, csvEs, csvEa []float64
	for _, r := range ranks {
		n := perRank * r
		syncRes, err := cluster.Run(testprob.Sod, n, cfg, cluster.Options{
			Ranks: r, Mode: cluster.Sync, Net: net, Steps: steps})
		if err != nil {
			return err
		}
		asyncRes, err := cluster.Run(testprob.Sod, n, cfg, cluster.Options{
			Ranks: r, Mode: cluster.Async, Net: net, Steps: steps})
		if err != nil {
			return err
		}
		if r == 1 {
			t1s, t1a = syncRes.VirtualTime, asyncRes.VirtualTime
		}
		effS := 100 * t1s / syncRes.VirtualTime
		effA := 100 * t1a / asyncRes.VirtualTime
		tb.AddRow(r, n, syncRes.VirtualTime*1e3, asyncRes.VirtualTime*1e3, effS, effA)
		csvR = append(csvR, float64(r))
		csvEs = append(csvEs, effS)
		csvEa = append(csvEa, effA)
	}
	fmt.Print(tb.String())
	s.writeCSV("fig5_weak_scaling.csv", []string{"ranks", "sync_eff", "async_eff"},
		csvR, csvEs, csvEa)
	return nil
}

// fig8 is E11: a heterogeneous cluster (plain + accelerated nodes) with
// even vs speed-weighted domain decomposition.
func (s *suite) fig8() error {
	n := 8192
	steps := 5
	if s.quick {
		n = 2048
	}
	cfg := core.DefaultConfig()
	// 8 nodes: half plain 16 Mz/s, half GPU-accelerated 96 Mz/s.
	rates := []float64{16e6, 16e6, 16e6, 16e6, 96e6, 96e6, 96e6, 96e6}
	tb := metrics.NewTable(
		fmt.Sprintf("Fig 8: heterogeneous cluster, N=%d Sod, 4+4 nodes (16/96 Mz/s), IB", n),
		"decomposition", "virtual(ms)", "speedup-vs-even")
	var even float64
	for _, weighted := range []bool{false, true} {
		res, err := cluster.Run(testprob.Sod, n, cfg, cluster.Options{
			Ranks: 8, Mode: cluster.Async, Net: cluster.Infiniband(),
			Steps: steps, RankRates: rates, WeightedDecomp: weighted,
		})
		if err != nil {
			return err
		}
		label := "even"
		if weighted {
			label = "speed-weighted"
		}
		if even == 0 {
			even = res.VirtualTime
		}
		tb.AddRow(label, res.VirtualTime*1e3, even/res.VirtualTime)
	}
	// Homogeneous reference: all nodes accelerated.
	fast := make([]float64, 8)
	for i := range fast {
		fast[i] = 96e6
	}
	res, err := cluster.Run(testprob.Sod, n, cfg, cluster.Options{
		Ranks: 8, Mode: cluster.Async, Net: cluster.Infiniband(),
		Steps: steps, RankRates: fast,
	})
	if err != nil {
		return err
	}
	tb.AddRow("all-accelerated", res.VirtualTime*1e3, even/res.VirtualTime)
	fmt.Print(tb.String())
	fmt.Println("  expected shape: the even split is held hostage by the slow nodes;")
	fmt.Println("  weighting by node speed recovers most of the gap to a fully")
	fmt.Println("  accelerated machine.")
	return nil
}
