package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"rhsc/internal/amr"
	"rhsc/internal/cluster"
	"rhsc/internal/core"
	"rhsc/internal/damr"
	"rhsc/internal/metrics"
	"rhsc/internal/testprob"
)

// netRow is one chaos schedule of E19: the reliable transport driving
// the distributed blast over a fabric with the given fault rates.
type netRow struct {
	Scenario      string  `json:"scenario"`
	DropRate      float64 `json:"drop_rate"`
	DupRate       float64 `json:"dup_rate,omitempty"`
	CorruptRate   float64 `json:"corrupt_rate,omitempty"`
	WallMS        float64 `json:"wall_ms"`
	Sent          int64   `json:"sent"`
	SentBytes     int64   `json:"sent_bytes"`
	Retransmits   int64   `json:"retransmits"`
	ChaosDropped  int64   `json:"chaos_dropped"`
	CrcRejected   int64   `json:"crc_rejected"`
	// RetransmitOverhead is extra deliveries per application frame.
	RetransmitOverhead float64 `json:"retransmit_overhead"`
	// GoodputMBs is application payload over wall-clock — the rate the
	// physics actually advanced at, all repair traffic excluded.
	GoodputMBs float64 `json:"goodput_mb_s"`
	Recoveries int     `json:"recoveries"`
	L1Rho      float64 `json:"l1_rho_vs_clean"`
}

// netBenchReport is the BENCH_net.json payload (E19).
type netBenchReport struct {
	Experiment string   `json:"experiment"`
	Ranks      int      `json:"ranks"`
	Steps      int      `json:"steps"`
	Rows       []netRow `json:"rows"`
}

// netChaos is E19: reliable messaging over a lossy fabric. It sweeps
// the chaos drop rate over the distributed blast and reports goodput
// and retransmit overhead, certifying at every point that the masked
// schedule left the physics bitwise at the clean answer (the L1 column
// must sit at round-off and no recovery may fire).
func (s *suite) netChaos() error {
	const rootBlocks = 4
	ranks, steps, maxLevel := 4, 12, 2
	if s.quick {
		ranks, steps, maxLevel = 2, 8, 1
	}
	drops := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if s.quick {
		drops = []float64{0, 0.1, 0.2}
	}

	p := testprob.Blast2D
	cfg := amr.DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = maxLevel
	cfg.RegridEvery = 4

	ref, err := amr.NewTree(p, rootBlocks, cfg)
	if err != nil {
		return err
	}
	for i := 0; i < steps; i++ {
		if err := ref.Step(ref.MaxDt()); err != nil {
			return err
		}
	}
	l1Rho := func(tr *amr.Tree) float64 {
		const n = 64
		sum := 0.0
		for j := 0; j < n; j++ {
			y := p.Y0 + (float64(j)+0.5)/n*(p.Y1-p.Y0)
			for i := 0; i < n; i++ {
				x := p.X0 + (float64(i)+0.5)/n*(p.X1-p.X0)
				sum += math.Abs(tr.SampleAt(x, y).Rho - ref.SampleAt(x, y).Rho)
			}
		}
		return sum / (n * n)
	}

	run := func(label string, spec *cluster.ChaosSpec) (netRow, error) {
		t0 := time.Now()
		res, err := damr.Run(p, rootBlocks, cfg, damr.Options{
			Ranks: ranks,
			Mode:  cluster.Async,
			Net:   cluster.Infiniband(),
			Steps: steps,
			Transport: &cluster.TransportConfig{
				Reliable: true,
				Chaos:    spec,
				// The RTO sits above a compute phase so the clean run is
				// (nearly) retransmit-free and the overhead column isolates
				// genuine loss repair.
				RTO: 10 * time.Millisecond,
			},
		})
		if err != nil {
			return netRow{}, err
		}
		wall := time.Since(t0)
		row := netRow{
			Scenario:   label,
			WallMS:     float64(wall.Microseconds()) / 1e3,
			Recoveries: res.Recoveries,
			L1Rho:      l1Rho(res.Tree),
		}
		if spec != nil {
			row.DropRate = spec.Drop
			row.DupRate = spec.Duplicate
			row.CorruptRate = spec.Corrupt
		}
		if res.Net != nil {
			row.Sent = res.Net.Sent
			row.SentBytes = res.Net.SentBytes
			row.Retransmits = res.Net.Retransmits
			row.ChaosDropped = res.Net.ChaosDropped
			row.CrcRejected = res.Net.CrcRejected
			if res.Net.Sent > 0 {
				row.RetransmitOverhead = float64(res.Net.Retransmits) / float64(res.Net.Sent)
			}
			row.GoodputMBs = float64(res.Net.SentBytes) / 1e6 / wall.Seconds()
		}
		if row.Recoveries != 0 {
			return row, fmt.Errorf("netchaos %s: masked schedule triggered %d recoveries", label, row.Recoveries)
		}
		if row.L1Rho > 1e-12 {
			return row, fmt.Errorf("netchaos %s: physics diverged under masked chaos (L1=%.3e)", label, row.L1Rho)
		}
		return row, nil
	}

	var rows []netRow
	for _, d := range drops {
		var spec *cluster.ChaosSpec
		label := "clean"
		if d > 0 {
			label = fmt.Sprintf("drop-%g", d)
			spec = &cluster.ChaosSpec{Seed: 19, Drop: d}
		}
		row, err := run(label, spec)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	// One mixed schedule: drops, duplicates, delays and corruptions at
	// once — the full harness the chaos tests run under.
	mixed, err := run("mixed", &cluster.ChaosSpec{
		Seed: 19, Drop: 0.1, Duplicate: 0.1, Delay: 0.1, Corrupt: 0.05,
	})
	if err != nil {
		return err
	}
	rows = append(rows, mixed)

	tb := metrics.NewTable(
		fmt.Sprintf("E19: reliable transport under chaos, 2-D blast L%d, %d ranks, %d steps",
			maxLevel, ranks, steps),
		"scenario", "drop", "wall(ms)", "sent", "retx", "retx-ovh%", "goodput(MB/s)", "L1(rho)")
	for _, r := range rows {
		tb.AddRow(r.Scenario, r.DropRate, r.WallMS, r.Sent, r.Retransmits,
			100*r.RetransmitOverhead, r.GoodputMBs, r.L1Rho)
	}
	fmt.Print(tb.String())
	fmt.Println("  expected shape: retransmit overhead rises roughly in proportion to the")
	fmt.Println("  drop rate while goodput falls; the L1 column stays at round-off at every")
	fmt.Println("  point — a masked fault schedule never changes the physics.")

	report := netBenchReport{Experiment: "E19-netchaos", Ranks: ranks, Steps: steps, Rows: rows}
	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_net.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  [json: BENCH_net.json]")

	drCols := make([]float64, len(rows))
	retx := make([]float64, len(rows))
	goodput := make([]float64, len(rows))
	for i, r := range rows {
		drCols[i] = r.DropRate
		retx[i] = r.RetransmitOverhead
		goodput[i] = r.GoodputMBs
	}
	s.writeCSV("e19_netchaos.csv",
		[]string{"drop_rate", "retransmit_overhead", "goodput_mb_s"},
		drCols, retx, goodput)
	return nil
}
