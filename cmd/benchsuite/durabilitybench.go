package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"rhsc/internal/core"
	"rhsc/internal/durable"
	"rhsc/internal/metrics"
	"rhsc/internal/output"
	"rhsc/internal/testprob"
)

// durableCrashReport summarises the crash-at-every-write-point sweep.
type durableCrashReport struct {
	WritePoints  int `json:"write_points"`
	TornVariants int `json:"torn_variants"`
	// Outcome histogram: how many crash points recovered each
	// generation (index 0 = nothing committed yet).
	RecoveredGen []int `json:"recovered_generation_histogram"`
	// TornLoads counts recoveries that served anything but a fully
	// committed generation — the number this experiment exists to pin
	// at zero.
	TornLoads int `json:"torn_loads"`
	// MonotonicityBreaks counts crash points whose recovered generation
	// regressed against an earlier crash point.
	MonotonicityBreaks int `json:"monotonicity_breaks"`
}

// durableCorruptionReport summarises the bit-flip/truncation matrix
// over a real solver checkpoint.
type durableCorruptionReport struct {
	FrameBytes  int `json:"frame_bytes"`
	BitFlips    int `json:"bit_flips"`
	Truncations int `json:"truncations"`
	Detected    int `json:"detected"`
	// SilentLoads counts corrupted frames that loaded without error —
	// the zero-silent-loads acceptance criterion.
	SilentLoads int `json:"silent_loads"`
}

// durableReport is the BENCH_durable.json payload (E18).
type durableReport struct {
	Crash      durableCrashReport      `json:"crash_matrix"`
	Corruption durableCorruptionReport `json:"corruption_matrix"`
	Scrub      *durable.ScrubReport    `json:"scrub"`
	Counters   metrics.DurableSnapshot `json:"counters"`
}

// durabilityBench is E18: end-to-end durability certification. It
// (a) crashes a three-generation commit sequence at every mutating
// write point — with and without torn tails — and requires recovery to
// land on a fully committed generation, monotone in the crash point;
// (b) flips every sampled bit of (and truncates) a real solver
// checkpoint and requires every mutation to be detected; (c) scrubs
// the surviving store and archives the report. Exits nonzero on any
// torn load, silent load or monotonicity break.
func (s *suite) durabilityBench() error {
	fmt.Println("E18: durable checkpoint store — crash, corruption and scrub matrices")
	var counters metrics.DurableCounters
	rep := durableReport{}

	// --- (a) crash matrix ---------------------------------------------
	const generations = 3
	script := func(fsys durable.FS, dir string) error {
		st, err := durable.Open(fsys, dir, &counters)
		if err != nil {
			return err
		}
		for g := 1; g <= generations; g++ {
			payload := bytes.Repeat([]byte{byte(g)}, 1024*g)
			if _, err := st.Commit("state", func(w io.Writer) error {
				_, err := w.Write(payload)
				return err
			}); err != nil {
				return err
			}
		}
		return nil
	}
	probe := durable.NewFaultFS(durable.OS, durable.Plan{})
	dir, err := os.MkdirTemp("", "durable-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := script(probe, dir); err != nil {
		return fmt.Errorf("clean commit script: %w", err)
	}
	total := probe.Ops()
	rep.Crash.WritePoints = total
	rep.Crash.RecoveredGen = make([]int, generations+1)
	torn := []int{0, 7}
	rep.Crash.TornVariants = len(torn)

	for _, tb := range torn {
		last := -1
		for op := 1; op <= total; op++ {
			cdir, err := os.MkdirTemp("", "durable-crash-op-*")
			if err != nil {
				return err
			}
			ffs := durable.NewFaultFS(durable.OS, durable.Plan{CrashAtOp: op, TornBytes: tb})
			_ = script(ffs, cdir)

			st, err := durable.Open(durable.OS, cdir, &counters)
			if err != nil {
				return err
			}
			var got []byte
			gen, err := st.Load("state", func(r io.Reader) error {
				var e error
				got, e = io.ReadAll(r)
				return e
			})
			recovered := 0
			switch {
			case err == nil && len(got) == 1024*int(gen) && allBytes(got, byte(gen)):
				recovered = int(gen)
			case errors.Is(err, durable.ErrNotExist):
				recovered = 0
			default:
				rep.Crash.TornLoads++
			}
			if recovered < last {
				rep.Crash.MonotonicityBreaks++
			}
			last = recovered
			rep.Crash.RecoveredGen[recovered]++
			os.RemoveAll(cdir)
		}
	}
	fmt.Printf("  crash: %d write points x %d torn variants, histogram %v, torn loads %d\n",
		total, len(torn), rep.Crash.RecoveredGen, rep.Crash.TornLoads)

	// --- (b) corruption matrix over a real checkpoint ------------------
	n := 128
	if s.quick {
		n = 48
	}
	cfg := core.DefaultConfig()
	p := testprob.Sod
	g := p.NewGrid(n, cfg.Recon.Ghost())
	sol, err := core.New(g, cfg)
	if err != nil {
		return err
	}
	if err := sol.InitFromPrim(p.Init); err != nil {
		return err
	}
	if _, err := sol.Advance(p.TEnd / 8); err != nil {
		return err
	}
	var frame bytes.Buffer
	if err := output.SaveCheckpointExact(&frame, sol.G, sol.Time()); err != nil {
		return err
	}
	pristine := frame.Bytes()
	rep.Corruption.FrameBytes = len(pristine)

	load := func(b []byte) error {
		_, _, _, err := output.LoadCheckpointFull(bytes.NewReader(b))
		return err
	}
	if err := load(pristine); err != nil {
		return fmt.Errorf("pristine checkpoint does not load: %w", err)
	}
	stride := 131 // coprime with the frame layout: offsets sweep all classes
	for off := 0; off < len(pristine); off += stride {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), pristine...)
			mut[off] ^= 1 << bit
			rep.Corruption.BitFlips++
			if errors.Is(load(mut), output.ErrCheckpointCorrupt) {
				rep.Corruption.Detected++
			} else {
				rep.Corruption.SilentLoads++
			}
		}
	}
	for cut := 0; cut < len(pristine); cut += stride {
		rep.Corruption.Truncations++
		if errors.Is(load(pristine[:cut]), output.ErrCheckpointCorrupt) {
			rep.Corruption.Detected++
		} else {
			rep.Corruption.SilentLoads++
		}
	}
	fmt.Printf("  corruption: %d-byte checkpoint, %d bit flips + %d truncations, %d detected, %d silent\n",
		rep.Corruption.FrameBytes, rep.Corruption.BitFlips,
		rep.Corruption.Truncations, rep.Corruption.Detected, rep.Corruption.SilentLoads)

	// --- (c) scrub the intact store ------------------------------------
	st, err := durable.Open(durable.OS, dir, &counters)
	if err != nil {
		return err
	}
	rep.Scrub, err = st.Scrub()
	if err != nil {
		return err
	}
	rep.Counters = counters.Snapshot()
	fmt.Printf("  scrub: %d checked, %d bad\n", rep.Scrub.Checked, rep.Scrub.Bad)

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_durable.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  [json: BENCH_durable.json]")

	if rep.Crash.TornLoads > 0 || rep.Crash.MonotonicityBreaks > 0 {
		return fmt.Errorf("crash matrix served torn state (%d torn, %d monotonicity breaks)",
			rep.Crash.TornLoads, rep.Crash.MonotonicityBreaks)
	}
	if rep.Corruption.SilentLoads > 0 {
		return fmt.Errorf("%d corrupted checkpoints loaded silently", rep.Corruption.SilentLoads)
	}
	if rep.Scrub.Bad > 0 {
		return fmt.Errorf("scrub found %d bad files in an uncorrupted store", rep.Scrub.Bad)
	}
	return nil
}

// allBytes reports whether every byte of b equals v.
func allBytes(b []byte, v byte) bool {
	for _, x := range b {
		if x != v {
			return false
		}
	}
	return true
}
