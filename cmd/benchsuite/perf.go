package main

import (
	"fmt"
	"runtime"
	"time"

	"rhsc/internal/core"
	"rhsc/internal/metrics"
	"rhsc/internal/newton"
	"rhsc/internal/par"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// newRHS allocates a right-hand-side field matching the solver's grid.
func newRHS(s *core.Solver) *state.Fields { return state.NewFields(s.G.NCells()) }

// table3 is E4: single-node thread throughput on the 2-D blast.
func (s *suite) table3() error {
	n := 192
	steps := 4
	if s.quick {
		n, steps = 96, 3
	}
	threads := []int{1, 2, 4, 8}
	tb := metrics.NewTable(
		fmt.Sprintf("Table 3: thread throughput, %d^2 blast, %d steps (host has %d core(s))",
			n, steps, runtime.NumCPU()),
		"threads", "wall", "Mzups", "speedup", "eff%")
	var t1 time.Duration
	var csvP, csvM []float64
	for _, p := range threads {
		prob := testprob.Blast2D
		g := prob.NewGrid(n, 2)
		cfg := core.DefaultConfig()
		if p > 1 {
			cfg.Pool = par.NewPool(p)
		}
		sol, err := core.New(g, cfg)
		if err != nil {
			return err
		}
		sol.InitFromPrim(prob.Init)
		start := time.Now()
		for i := 0; i < steps; i++ {
			if err := sol.Step(sol.MaxDt()); err != nil {
				return err
			}
		}
		el := time.Since(start)
		if p == 1 {
			t1 = el
		}
		tb.AddRow(p, el, metrics.Throughput(sol.St.ZoneUpdates.Load(), el),
			metrics.Speedup(t1, el), metrics.Efficiency(t1, el, p))
		csvP = append(csvP, float64(p))
		csvM = append(csvM, metrics.Throughput(sol.St.ZoneUpdates.Load(), el))
	}
	fmt.Print(tb.String())
	if runtime.NumCPU() == 1 {
		fmt.Println("  note: host exposes a single core; wall-clock thread scaling is")
		fmt.Println("  necessarily flat here. On a P-core node the same harness shows")
		fmt.Println("  near-linear speedup until memory bandwidth saturates (see E5/E6")
		fmt.Println("  for the modelled multi-node curves, which are host-independent).")
	}
	s.writeCSV("table3_threads.csv", []string{"threads", "mzups"}, csvP, csvM)
	return nil
}

// table5 is E10: the reconstruction x Riemann-solver cost ablation — the
// per-RHS cost on a long 1-D grid.
func (s *suite) table5() error {
	n := 200_000
	if s.quick {
		n = 50_000
	}
	recons := []recon.Scheme{
		recon.PCM{},
		recon.PLM{Lim: recon.MonotonizedCentral},
		recon.PPM{},
		recon.WENO5{},
	}
	solvers := []riemann.Solver{riemann.LLF{}, riemann.HLL{}, riemann.HLLC{}}

	tb := metrics.NewTable(
		fmt.Sprintf("Table 5: RHS cost ablation, 1-D N=%d (ns/zone)", n),
		"recon", "riemann", "ns/zone", "rel")
	var baseline, plmHLLC float64
	for _, rc := range recons {
		for _, rs := range solvers {
			p := testprob.Sod
			g := p.NewGrid(n, rc.Ghost())
			cfg := core.DefaultConfig()
			cfg.Recon = rc
			cfg.Riemann = rs
			sol, err := core.New(g, cfg)
			if err != nil {
				return err
			}
			sol.InitFromPrim(p.Init)
			sol.RecoverPrimitives()
			rhs := newRHS(sol)
			// Warm once, then time a few evaluations.
			sol.ComputeRHS(rhs)
			const reps = 3
			start := time.Now()
			for i := 0; i < reps; i++ {
				sol.ComputeRHS(rhs)
			}
			perZone := float64(time.Since(start).Nanoseconds()) / float64(reps*n)
			if baseline == 0 {
				baseline = perZone
			}
			if rc.Name() == "plm-mc" && rs.Name() == "hllc" {
				plmHLLC = perZone
			}
			tb.AddRow(rc.Name(), rs.Name(), perZone, perZone/baseline)
		}
	}
	fmt.Print(tb.String())

	// Specialised-kernel row: the fused PLM+HLLC+ideal-gas sweep
	// (bitwise-identical results, devirtualised dispatch) measures the
	// headroom per-configuration code generation buys.
	{
		p := testprob.Sod
		g := p.NewGrid(n, 2)
		cfg := core.DefaultConfig()
		cfg.Fused = true
		sol, err := core.New(g, cfg)
		if err != nil {
			return err
		}
		sol.InitFromPrim(p.Init)
		sol.RecoverPrimitives()
		rhs := newRHS(sol)
		sol.ComputeRHS(rhs)
		const reps = 3
		start := time.Now()
		for i := 0; i < reps; i++ {
			sol.ComputeRHS(rhs)
		}
		perZone := float64(time.Since(start).Nanoseconds()) / float64(reps*n)
		fmt.Printf("  fused plm+hllc kernel: %.4g ns/zone", perZone)
		if plmHLLC > 0 {
			fmt.Printf(" (%.2fx over the generic path)", plmHLLC/perZone)
		}
		fmt.Println()
	}

	// Baseline row: the Newtonian Euler RHS on the same grid measures the
	// "relativity tax" (conservative-to-primitive iteration + heavier
	// flux algebra).
	{
		p := testprob.Sod
		g := p.NewGrid(n, 2)
		cfgN := newton.DefaultConfig()
		ns, err := newton.New(g, cfgN)
		if err != nil {
			return err
		}
		ns.InitFromPrim(p.Init)
		dt := ns.MaxDt() * 1e-6 // negligible step: measures two RHS evals
		start := time.Now()
		const reps = 3
		for i := 0; i < reps; i++ {
			if err := ns.Step(dt); err != nil {
				return err
			}
		}
		perZone := float64(time.Since(start).Nanoseconds()) / float64(reps*2*n)
		fmt.Printf("  newtonian baseline (plm+hllc): %.4g ns/zone — the relativistic\n", perZone)
		if perZone > 0 && plmHLLC > 0 {
			fmt.Printf("  solver costs %.2fx the classical one per zone (c2p + SR flux algebra).\n",
				plmHLLC/perZone)
		}
	}
	return nil
}
