package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rhsc/internal/core"
	"rhsc/internal/metrics"
	"rhsc/internal/resilience"
	"rhsc/internal/testprob"
)

// failsafeRow is one guarded 2-D blast run of E15: a deterministic
// in-stage corruption absorbed either by the global snapshot/retry
// machinery or by the cell-local a posteriori repair
// (docs/RESILIENCE.md §1).
type failsafeRow struct {
	Scenario      string  `json:"scenario"`
	Mode          string  `json:"mode"` // global-retry | local-repair
	Steps         int     `json:"steps"`
	WallMS        float64 `json:"wall_ms"`
	ZoneUpdates   int64   `json:"zone_updates"`
	FallbackZones int64   `json:"fallback_zones"`
	Injected      int64   `json:"injected"`
	Retries       int64   `json:"retries"`
	Fallbacks     int64   `json:"fallbacks"`
	Troubled      int64   `json:"troubled"`
	Repaired      int64   `json:"repaired"`
	Demotions     int64   `json:"demotions"`
}

// failsafe is E15: the price of absorbing a numerical fault. The same
// deterministic mid-stage poison is fed to a guarded blast run twice —
// once with the fail-safe disabled, so the guard restores its snapshot
// and retries (engaging the global first-order fallback), and once with
// the fail-safe on, so the detector flags the corrupt cells and the
// flux-replacement repair patches them in place. The comparison
// currency is FallbackZones: zone updates computed at the dissipative
// fallback order, whole grids per retried stage on the global path but
// only the flagged cells on the local path.
func (s *suite) failsafe() error {
	n := 128
	tEnd := 0.15
	if s.quick {
		n = 48
		tEnd = 0.08
	}
	p := testprob.Blast2D

	scenarios := []struct {
		label string
		inj   func() *resilience.Injector
	}{
		{"clean", func() *resilience.Injector { return nil }},
		{"transient", func() *resilience.Injector {
			return &resilience.Injector{AtStep: 3, Cell: -1, InStage: true}
		}},
		// Count=2 outlasts the global path's dt-halving retry, forcing the
		// first-order fallback; the local path just repairs twice.
		{"repeated", func() *resilience.Injector {
			return &resilience.Injector{AtStep: 3, Count: 2, Cell: -1, InStage: true}
		}},
	}

	run := func(scenario string, inj *resilience.Injector, failSafe bool) (failsafeRow, error) {
		cfg := core.DefaultConfig()
		cfg.FailSafe = failSafe
		g := p.NewGrid(n, cfg.Recon.Ghost())
		sol, err := core.New(g, cfg)
		if err != nil {
			return failsafeRow{}, err
		}
		if err := sol.InitFromPrim(p.Init); err != nil {
			return failsafeRow{}, err
		}
		guard := resilience.NewGuard(sol, resilience.Policy{})
		guard.Inject = inj
		mode := "global-retry"
		if failSafe {
			mode = "local-repair"
		}
		t0 := time.Now()
		steps, err := guard.Advance(tEnd)
		if err != nil {
			return failsafeRow{}, fmt.Errorf("%s/%s: %w", scenario, mode, err)
		}
		wall := time.Since(t0)
		snap := guard.Stats.Snapshot()
		return failsafeRow{
			Scenario:      scenario,
			Mode:          mode,
			Steps:         steps,
			WallMS:        float64(wall.Microseconds()) / 1e3,
			ZoneUpdates:   sol.St.ZoneUpdates.Load(),
			FallbackZones: snap.FallbackZones,
			Injected:      snap.Injected,
			Retries:       snap.Retries,
			Fallbacks:     snap.Fallbacks,
			Troubled:      snap.Troubled,
			Repaired:      snap.Repaired,
			Demotions:     snap.Demotions,
		}, nil
	}

	var rows []failsafeRow
	tb := metrics.NewTable(
		fmt.Sprintf("E15: fail-safe local repair vs global retry, 2-D blast %d^2 to t=%.2f", n, tEnd),
		"scenario", "mode", "steps", "wall(ms)", "zone-upd", "fb-zones", "retries", "troubled", "repaired")
	for _, sc := range scenarios {
		for _, fs := range []bool{false, true} {
			row, err := run(sc.label, sc.inj(), fs)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			tb.AddRow(row.Scenario, row.Mode, row.Steps, row.WallMS,
				row.ZoneUpdates, row.FallbackZones, row.Retries, row.Troubled, row.Repaired)
		}
	}
	fmt.Print(tb.String())

	// The acceptance ratio the fail-safe tests pin at >= 2x (in practice
	// orders of magnitude): fallback-order work per absorbed fault.
	for _, sc := range scenarios {
		var g, l *failsafeRow
		for i := range rows {
			if rows[i].Scenario != sc.label {
				continue
			}
			if rows[i].Mode == "global-retry" {
				g = &rows[i]
			} else {
				l = &rows[i]
			}
		}
		if g == nil || l == nil || g.FallbackZones == 0 {
			continue
		}
		ratio := float64(g.FallbackZones) / float64(maxI64(l.FallbackZones, 1))
		fmt.Printf("  %-10s fallback-zone ratio global/local = %.0fx (%d vs %d)\n",
			sc.label, ratio, g.FallbackZones, l.FallbackZones)
	}
	fmt.Println("  expected shape: the clean pair commits identical step counts and scheme-")
	fmt.Println("  order zone updates (at high resolution the detector may organically flag")
	fmt.Println("  a handful of cells at the strongest front — that localised limiting is")
	fmt.Println("  the MOOD design); under faults the local path still commits every step")
	fmt.Println("  at scheme order, paying only the flagged cells in fallback zones, while")
	fmt.Println("  the global path re-runs whole grids at first order.")

	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if s.outdir != "" {
		path := filepath.Join(s.outdir, "e15_failsafe.json")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  [json: %s]\n", path)
	} else {
		fmt.Printf("  results JSON:\n%s\n", blob)
	}

	var csvMode, csvFB, csvZU, csvWall []float64
	for _, r := range rows {
		m := 0.0
		if r.Mode == "local-repair" {
			m = 1
		}
		csvMode = append(csvMode, m)
		csvFB = append(csvFB, float64(r.FallbackZones))
		csvZU = append(csvZU, float64(r.ZoneUpdates))
		csvWall = append(csvWall, r.WallMS)
	}
	s.writeCSV("e15_failsafe.csv",
		[]string{"local_repair", "fallback_zones", "zone_updates", "wall_ms"},
		csvMode, csvFB, csvZU, csvWall)
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
