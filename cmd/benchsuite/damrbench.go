package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"rhsc/internal/amr"
	"rhsc/internal/cluster"
	"rhsc/internal/core"
	"rhsc/internal/damr"
	"rhsc/internal/metrics"
	"rhsc/internal/testprob"
)

// damrRow is one rank count of the E12 scaling study, serialised into the
// results JSON next to the printed table.
type damrRow struct {
	Ranks              int     `json:"ranks"`
	Leaves             int     `json:"leaves"`
	ZoneUpdates        int64   `json:"zone_updates"`
	VirtualTime        float64 `json:"virtual_time_s"`
	Mzups              float64 `json:"mzups"`
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	RebalanceOverhead  float64 `json:"rebalance_overhead"`
	MigratedBlocks     int     `json:"migrated_blocks"`
	MigratedBytes      int64   `json:"migrated_bytes"`
	Imbalance          float64 `json:"imbalance"`
	L1Rho              float64 `json:"l1_rho_vs_single"`
}

// damr is E12: strong scaling of the distributed AMR driver on the 2-D
// blast. Each rank count runs the identical hierarchy (the partition is a
// pure function of replicated state), so throughput differences are pure
// communication and imbalance cost, and the density field must agree with
// a single-rank amr run to round-off.
func (s *suite) damr() error {
	const rootBlocks = 4
	maxLevel := 2
	steps := 48
	rankCounts := []int{1, 2, 4, 8, 16}
	if s.quick {
		maxLevel = 1
		steps = 8
		rankCounts = []int{1, 2, 4}
	}

	p := testprob.Blast2D
	cfg := amr.DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = maxLevel
	cfg.RegridEvery = 4

	// Single-rank reference for the agreement column.
	ref, err := amr.NewTree(p, rootBlocks, cfg)
	if err != nil {
		return err
	}
	for i := 0; i < steps; i++ {
		if err := ref.Step(ref.MaxDt()); err != nil {
			return err
		}
	}
	l1Rho := func(tr *amr.Tree) float64 {
		const n = 64
		sum := 0.0
		for j := 0; j < n; j++ {
			y := p.Y0 + (float64(j)+0.5)/n*(p.Y1-p.Y0)
			for i := 0; i < n; i++ {
				x := p.X0 + (float64(i)+0.5)/n*(p.X1-p.X0)
				sum += math.Abs(tr.SampleAt(x, y).Rho - ref.SampleAt(x, y).Rho)
			}
		}
		return sum / (n * n)
	}

	tb := metrics.NewTable(
		fmt.Sprintf("Fig/E12: distributed AMR strong scaling, 2-D blast L%d, %d steps (virtual)",
			maxLevel, steps),
		"ranks", "leaves", "Mzups", "efficiency", "rebal-ovh%", "migrated", "imbalance", "L1(rho)")
	rows := make([]damrRow, 0, len(rankCounts))
	var baseVT float64
	for _, ranks := range rankCounts {
		res, err := damr.Run(p, rootBlocks, cfg, damr.Options{
			Ranks: ranks,
			Mode:  cluster.Async,
			Net:   cluster.Infiniband(),
			Steps: steps,
		})
		if err != nil {
			return fmt.Errorf("ranks=%d: %w", ranks, err)
		}
		if baseVT == 0 {
			baseVT = res.VirtualTime
		}
		row := damrRow{
			Ranks:              ranks,
			Leaves:             res.Leaves,
			ZoneUpdates:        res.ZoneUpdates,
			VirtualTime:        res.VirtualTime,
			Mzups:              float64(res.ZoneUpdates) / res.VirtualTime / 1e6,
			ParallelEfficiency: baseVT / (float64(ranks) * res.VirtualTime),
			RebalanceOverhead:  res.RebalanceVirtual / res.VirtualTime,
			MigratedBlocks:     res.MigratedBlocks,
			MigratedBytes:      res.MigratedBytes,
			Imbalance:          res.Imbalance,
			L1Rho:              l1Rho(res.Tree),
		}
		rows = append(rows, row)
		tb.AddRow(row.Ranks, row.Leaves, row.Mzups, row.ParallelEfficiency,
			100*row.RebalanceOverhead, row.MigratedBlocks, row.Imbalance, row.L1Rho)
	}
	fmt.Print(tb.String())
	fmt.Println("  expected shape: efficiency decays as rank segments shrink toward")
	fmt.Println("  single blocks (halo surface grows against owned volume) and the")
	fmt.Println("  L1 column stays at round-off — the partition never changes physics.")

	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if s.outdir != "" {
		path := filepath.Join(s.outdir, "e12_damr_scaling.json")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  [json: %s]\n", path)
	} else {
		fmt.Printf("  results JSON:\n%s\n", blob)
	}

	var csvR, csvEff, csvOvh []float64
	for _, r := range rows {
		csvR = append(csvR, float64(r.Ranks))
		csvEff = append(csvEff, r.ParallelEfficiency)
		csvOvh = append(csvOvh, r.RebalanceOverhead)
	}
	s.writeCSV("e12_damr_scaling.csv",
		[]string{"ranks", "parallel_efficiency", "rebalance_overhead"},
		csvR, csvEff, csvOvh)
	return nil
}
