// Command benchsuite regenerates every table and figure of the
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md). Each subcommand
// prints the experiment's table to stdout and, with -outdir, writes the
// underlying series as CSV.
//
// Usage:
//
//	benchsuite [flags] <experiment>
//
// Experiments: table1 fig2 table2 table3 fig4 fig5 table4 fig6 fig7
// table5 fig8 damr resilience stepbench failsafe serve hetero
// durability netchaos, or "all".
//
// Flags:
//
//	-quick    reduce resolutions/steps for a fast smoke run
//	-outdir   directory for CSV artefacts (created if missing)
//	-gate     baseline BENCH_step.json; stepbench exits nonzero when a
//	          config's ns/zone regresses past the tolerance
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"
)

type experiment struct {
	name string
	desc string
	run  func(s *suite) error
}

var experiments = []experiment{
	{"table1", "E1: Sod shock-tube L1 errors and convergence", (*suite).table1},
	{"fig2", "E2: shock-tube and blast-wave profiles vs exact", (*suite).fig2},
	{"table2", "E3: smooth-wave formal convergence order", (*suite).table2},
	{"table3", "E4: single-node thread throughput", (*suite).table3},
	{"fig4", "E5: strong scaling, sync vs async halo exchange", (*suite).fig4},
	{"fig5", "E6: weak scaling", (*suite).fig5},
	{"table4", "E7: device throughput, CPU vs GPU vs staged GPU", (*suite).table4},
	{"fig6", "E8: heterogeneous speedup and load balance", (*suite).fig6},
	{"fig7", "E9: AMR efficiency vs uniform grid", (*suite).fig7},
	{"table5", "E10: reconstruction x Riemann-solver cost ablation", (*suite).table5},
	{"fig8", "E11: heterogeneous cluster, even vs weighted decomposition", (*suite).fig8},
	{"damr", "E12: distributed AMR strong scaling", (*suite).damr},
	{"resilience", "E13: checkpoint overhead and fault recovery", (*suite).resilience},
	{"stepbench", "E14: single-pass step pipeline cost (ns/zone, allocs/step)", (*suite).stepbench},
	{"failsafe", "E15: fail-safe local repair vs global retry", (*suite).failsafe},
	{"serve", "E16: job server throughput, queue wait and preemption latency", (*suite).serveBench},
	{"hetero", "E17: dynamic device router vs static planner on skewed and faulty fleets", (*suite).heteroBench},
	{"durability", "E18: durable checkpoint store crash, corruption and scrub matrices", (*suite).durabilityBench},
	{"netchaos", "E19: reliable transport goodput and retransmit overhead vs chaos drop rate", (*suite).netChaos},
}

type suite struct {
	quick  bool
	outdir string
	// gate is a baseline BENCH_step.json path: stepbench fails when a
	// config regresses past the tolerance (the CI stepbench-gate job).
	gate string
}

// writeCSV writes experiment series when -outdir is set.
func (s *suite) writeCSV(name string, headers []string, cols ...[]float64) {
	if s.outdir == "" {
		return
	}
	path := filepath.Join(s.outdir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Printf("csv %s: %v", name, err)
		return
	}
	defer f.Close()
	if err := writeSeries(f, headers, cols...); err != nil {
		log.Printf("csv %s: %v", name, err)
		return
	}
	fmt.Printf("  [csv: %s]\n", path)
}

func main() {
	quick := flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	outdir := flag.String("outdir", "", "write CSV artefacts here")
	gate := flag.String("gate", "", "baseline BENCH_step.json: fail stepbench on ns/zone regression")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchsuite [-quick] [-outdir DIR] <experiment|all>")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
		os.Exit(2)
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	s := &suite{quick: *quick, outdir: *outdir, gate: *gate}

	target := flag.Arg(0)
	start := time.Now()
	ran := 0
	for _, e := range experiments {
		if target != "all" && target != e.name {
			continue
		}
		fmt.Printf("\n### %s — %s\n\n", e.name, e.desc)
		t0 := time.Now()
		if err := e.run(s); err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("  [%s done in %v]\n", e.name, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", target)
	}
	if target == "all" {
		fmt.Printf("\nall experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
	}
}
