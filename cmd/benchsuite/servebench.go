package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"rhsc/internal/metrics"
	"rhsc/internal/serve"
)

// serveClassStats summarises one priority class of the open-loop load.
type serveClassStats struct {
	Class string `json:"class"`
	Jobs  int    `json:"jobs"`
	// WaitP50Ms/WaitP99Ms: queue wait (first dispatch minus submit).
	WaitP50Ms float64 `json:"wait_p50_ms"`
	WaitP99Ms float64 `json:"wait_p99_ms"`
	// LatencyP50Ms/LatencyP99Ms: completion latency (finish minus submit).
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// serveSkewResult is the priority-skewed saturation scenario.
type serveSkewResult struct {
	Jobs           int                   `json:"jobs"`
	Workers        int                   `json:"workers"`
	InterarrivalMs float64               `json:"interarrival_ms"`
	WallMs         float64               `json:"wall_ms"`
	ThroughputJobs float64               `json:"throughput_jobs_per_s"`
	Classes        []serveClassStats     `json:"classes"`
	Counters       metrics.ServeSnapshot `json:"counters"`
}

// serveFaultyResult is the chaos scenario: injected numerical faults
// absorbed by the guard, worker panics absorbed by the pool.
type serveFaultyResult struct {
	Jobs      int                   `json:"jobs"`
	Completed int64                 `json:"completed"`
	Failed    int64                 `json:"failed"`
	Injected  int64                 `json:"injected_faults"`
	Counters  metrics.ServeSnapshot `json:"counters"`
}

// serveAdmissionResult is the capped-tenant scenario.
type serveAdmissionResult struct {
	BurstPerTenant int                   `json:"burst_per_tenant"`
	CappedRejected int64                 `json:"capped_rejected"`
	FreeRejected   int64                 `json:"free_rejected"`
	Counters       metrics.ServeSnapshot `json:"counters"`
}

// serveBenchReport is the BENCH_serve.json payload.
type serveBenchReport struct {
	Generated string               `json:"generated"`
	Host      string               `json:"host"`
	Skew      serveSkewResult      `json:"priority_skew"`
	Faulty    serveFaultyResult    `json:"faulty_workload"`
	Admission serveAdmissionResult `json:"capped_admission"`
}

// percentileMs returns the p-quantile of the sorted durations in ms.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e6
}

// serveBench is E16: the job server under an open-loop, priority-skewed
// load — throughput, queue wait and completion latency per priority
// class (the high-priority class must see preemption pay off), fault
// and panic absorption, and per-tenant admission control. Writes
// BENCH_serve.json into the current directory.
func (s *suite) serveBench() error {
	// Sized so the offered load exceeds the two-worker capacity: the
	// queue builds, and every high-priority arrival that meets a busy
	// pool exercises checkpoint-preemption.
	jobs, interarrival := 42, 8*time.Millisecond
	steps := 120
	if s.quick {
		jobs, steps, interarrival = 14, 60, 4*time.Millisecond
	}

	// --- scenario 1: priority-skewed saturation -------------------------
	counters := &metrics.ServeCounters{}
	srv := serve.New(serve.Config{Workers: 2, MaxQueue: 4 * jobs, Counters: counters})
	base := serve.JobSpec{Problem: "sod", N: 256, MaxSteps: steps, TEnd: 10, ReportEvery: 8}

	ids := make([]string, 0, jobs)
	prios := make([]int, 0, jobs)
	start := time.Now()
	for i := 0; i < jobs; i++ {
		spec := base
		if i%7 == 3 { // deterministic priority skew: every 7th job is urgent
			spec.Priority = 10
		}
		st, err := srv.Submit(spec)
		if err != nil {
			return err
		}
		ids = append(ids, st.ID)
		prios = append(prios, spec.Priority)
		time.Sleep(interarrival)
	}
	waits := map[int][]time.Duration{}
	lats := map[int][]time.Duration{}
	for i, id := range ids {
		final, err := srv.Wait(id)
		if err != nil {
			return err
		}
		if final.State != serve.Done {
			return fmt.Errorf("job %s ended %q (%s)", id, final.State, final.Reason)
		}
		waits[prios[i]] = append(waits[prios[i]], final.Started.Sub(final.Submitted))
		lats[prios[i]] = append(lats[prios[i]], final.Finished.Sub(final.Submitted))
	}
	wall := time.Since(start)
	srv.Close()

	skew := serveSkewResult{
		Jobs: jobs, Workers: 2,
		InterarrivalMs: float64(interarrival) / 1e6,
		WallMs:         float64(wall) / 1e6,
		ThroughputJobs: float64(jobs) / wall.Seconds(),
		Counters:       counters.Snapshot(),
	}
	tb := metrics.NewTable(
		fmt.Sprintf("E16: open-loop serving, %d jobs @ %.0f ms interarrival, 2 workers", jobs, skew.InterarrivalMs),
		"class", "jobs", "wait p50 ms", "wait p99 ms", "latency p50 ms", "latency p99 ms")
	for _, pri := range []int{10, 0} {
		ws, ls := waits[pri], lats[pri]
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		cs := serveClassStats{
			Class: fmt.Sprintf("priority-%d", pri), Jobs: len(ws),
			WaitP50Ms: percentileMs(ws, 0.5), WaitP99Ms: percentileMs(ws, 0.99),
			LatencyP50Ms: percentileMs(ls, 0.5), LatencyP99Ms: percentileMs(ls, 0.99),
		}
		skew.Classes = append(skew.Classes, cs)
		tb.AddRow(cs.Class, cs.Jobs,
			fmt.Sprintf("%.2f", cs.WaitP50Ms), fmt.Sprintf("%.2f", cs.WaitP99Ms),
			fmt.Sprintf("%.2f", cs.LatencyP50Ms), fmt.Sprintf("%.2f", cs.LatencyP99Ms))
	}
	fmt.Print(tb.String())
	fmt.Printf("  throughput %.1f jobs/s, %d preemption(s), %d resumed, %d failed\n",
		skew.ThroughputJobs, skew.Counters.Preempted, skew.Counters.Resumed, skew.Counters.Failed)
	if skew.Counters.Failed != 0 {
		return fmt.Errorf("E16: %d job(s) failed under priority skew", skew.Counters.Failed)
	}

	// --- scenario 2: faulty workload ------------------------------------
	counters = &metrics.ServeCounters{}
	srv = serve.New(serve.Config{Workers: 2, Counters: counters})
	n := 10
	if s.quick {
		n = 6
	}
	var injected int64
	wantFail := 0
	fIDs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		spec := base
		switch i % 5 {
		case 1: // numerical fault, absorbed by the guard: still completes
			spec.Inject = &serve.InjectSpec{AtStep: 5, Count: 1}
		case 3: // worker panic, absorbed by the pool: job fails, pool survives
			spec.PanicAtStep = 4
			wantFail++
		}
		st, err := srv.Submit(spec)
		if err != nil {
			return err
		}
		fIDs = append(fIDs, st.ID)
	}
	for _, id := range fIDs {
		final, err := srv.Wait(id)
		if err != nil {
			return err
		}
		injected += final.Injected
	}
	faulty := serveFaultyResult{
		Jobs:      n,
		Completed: counters.Completed.Load(),
		Failed:    counters.Failed.Load(),
		Injected:  injected,
		Counters:  counters.Snapshot(),
	}
	srv.Close()
	fmt.Printf("  faulty workload: %d jobs, %d completed, %d failed (want %d panics), %d fault(s) absorbed\n",
		n, faulty.Completed, faulty.Failed, wantFail, faulty.Injected)
	if faulty.Failed != int64(wantFail) || faulty.Completed != int64(n-wantFail) {
		return fmt.Errorf("E16: faulty workload completed/failed %d/%d, want %d/%d",
			faulty.Completed, faulty.Failed, n-wantFail, wantFail)
	}

	// --- scenario 3: capped-tenant admission ----------------------------
	counters = &metrics.ServeCounters{}
	srv = serve.New(serve.Config{
		Workers:  2,
		Counters: counters,
		Quotas:   map[string]serve.Quota{"capped": {MaxActive: 2}},
	})
	burst := 8
	if s.quick {
		burst = 4
	}
	adm := serveAdmissionResult{BurstPerTenant: burst}
	var admIDs []string
	for i := 0; i < burst; i++ {
		for _, tenant := range []string{"capped", "free"} {
			spec := base
			spec.Tenant = tenant
			st, err := srv.Submit(spec)
			if err != nil {
				return err
			}
			if st.State == serve.RejectedState {
				if tenant == "capped" {
					adm.CappedRejected++
				} else {
					adm.FreeRejected++
				}
			} else {
				admIDs = append(admIDs, st.ID)
			}
		}
	}
	for _, id := range admIDs {
		if _, err := srv.Wait(id); err != nil {
			return err
		}
	}
	adm.Counters = counters.Snapshot()
	srv.Close()
	fmt.Printf("  admission: burst %d/tenant, capped tenant rejected %d, free tenant rejected %d\n",
		burst, adm.CappedRejected, adm.FreeRejected)
	if adm.CappedRejected == 0 || adm.FreeRejected != 0 {
		return fmt.Errorf("E16: admission control rejected capped=%d free=%d, want capped>0 free=0",
			adm.CappedRejected, adm.FreeRejected)
	}

	rep := serveBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      fmt.Sprintf("%s/%s, %d core(s)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Skew:      skew,
		Faulty:    faulty,
		Admission: adm,
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_serve.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  [json: BENCH_serve.json]")
	return nil
}
