package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rhsc/internal/core"
	"rhsc/internal/metrics"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/testprob"
)

// stepConfig is one measured configuration of E14.
type stepConfig struct {
	Name string `json:"name"`
	// NsPerStep and NsPerZone are the median steady-state MaxDt+Step
	// wall time, total and per zone update.
	NsPerStep int64   `json:"ns_per_step"`
	NsPerZone float64 `json:"ns_per_zone"`
	// AllocsPerStep counts heap allocations per steady-state step
	// (mallocs delta over the timed window); the pipeline invariant is 0.
	AllocsPerStep int64 `json:"allocs_per_step"`
	// BaselineNsPerStep is the pre-pipeline reference on the benchmark
	// host (see docs/PERFORMANCE.md); 0 when not comparable (quick mode).
	BaselineNsPerStep int64   `json:"baseline_ns_per_step,omitempty"`
	ImprovementPct    float64 `json:"improvement_pct,omitempty"`
}

// stepBenchReport is the BENCH_step.json payload.
type stepBenchReport struct {
	Generated string       `json:"generated"`
	Host      string       `json:"host"`
	N         int          `json:"n"`
	Zones     int          `json:"zones"`
	Steps     int          `json:"steps_per_sample"`
	Configs   []stepConfig `json:"configs"`
}

// Pre-pipeline single-thread references for the 48^3 blast on the CI
// host class (medians; the PCM+HLL "fused" entry predates the kernel,
// so its baseline equals the generic path it silently fell back to).
var stepBaselines = map[string]int64{
	"blast3d-generic":        369_900_000,
	"blast3d-fused":          212_000_000,
	"blast3d-pcmhll-generic": 278_000_000,
	"blast3d-pcmhll-fused":   284_000_000,
}

// stepbench is E14: steady-state time-step cost of the single-pass
// pipeline — in-sweep CFL reduction, pooled row scratch, fused kernels —
// as ns/zone-update and allocations per step, against the pre-pipeline
// baselines. Writes BENCH_step.json into the current directory (the CI
// benchmark job runs it from the repo root and archives the file).
func (s *suite) stepbench() error {
	n, steps := 48, 3
	if s.quick {
		n, steps = 24, 2
	}
	type cfgCase struct {
		name string
		mut  func(*core.Config)
	}
	cases := []cfgCase{
		{"blast3d-generic", nil},
		{"blast3d-fused", func(c *core.Config) { c.Fused = true }},
		{"blast3d-pcmhll-generic", func(c *core.Config) {
			c.Recon = recon.PCM{}
			c.Riemann = riemann.HLL{}
		}},
		{"blast3d-pcmhll-fused", func(c *core.Config) {
			c.Fused = true
			c.Recon = recon.PCM{}
			c.Riemann = riemann.HLL{}
		}},
	}

	prob := testprob.Blast3D
	rep := stepBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      fmt.Sprintf("%s/%s, %d core(s)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		N:         n,
		Steps:     steps,
	}
	tb := metrics.NewTable(
		fmt.Sprintf("E14: steady-state step cost, %d^3 blast, medians over %d-step samples", n, steps),
		"config", "ns/step", "ns/zone", "allocs/step", "vs baseline")

	for _, tc := range cases {
		cfg := core.DefaultConfig()
		if tc.mut != nil {
			tc.mut(&cfg)
		}
		g := prob.NewGrid(n, cfg.Recon.Ghost())
		sol, err := core.New(g, cfg)
		if err != nil {
			return err
		}
		if err := sol.InitFromPrim(prob.Init); err != nil {
			return err
		}
		sol.RecoverPrimitives()
		zones := g.Nx * g.Ny * g.Nz
		rep.Zones = zones
		// Warm the scratch free list, the CFL cache, and the heap.
		for i := 0; i < 2; i++ {
			if err := sol.Step(sol.MaxDt()); err != nil {
				return err
			}
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < steps; i++ {
			if err := sol.Step(sol.MaxDt()); err != nil {
				return err
			}
		}
		el := time.Since(start)
		runtime.ReadMemStats(&ms1)

		c := stepConfig{
			Name:          tc.name,
			NsPerStep:     el.Nanoseconds() / int64(steps),
			AllocsPerStep: int64(ms1.Mallocs-ms0.Mallocs) / int64(steps),
		}
		c.NsPerZone = float64(c.NsPerStep) / float64(zones)
		vs := "-"
		if base, ok := stepBaselines[tc.name]; ok && !s.quick {
			c.BaselineNsPerStep = base
			c.ImprovementPct = 100 * (1 - float64(c.NsPerStep)/float64(base))
			vs = fmt.Sprintf("%+.1f%%", -c.ImprovementPct)
		}
		tb.AddRow(c.Name, c.NsPerStep, fmt.Sprintf("%.0f", c.NsPerZone), c.AllocsPerStep, vs)
		rep.Configs = append(rep.Configs, c)
	}
	fmt.Print(tb.String())

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_step.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  [json: BENCH_step.json]")
	return nil
}
