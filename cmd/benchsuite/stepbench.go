package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"rhsc/internal/core"
	"rhsc/internal/metrics"
	"rhsc/internal/par"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/testprob"
)

// stepConfig is one measured configuration of E14.
type stepConfig struct {
	Name string `json:"name"`
	// Workers is the pool size for multi-worker configs (0 = serial).
	Workers int `json:"workers,omitempty"`
	// NsPerStep and NsPerZone are the median steady-state MaxDt+Step
	// wall time, total and per zone update.
	NsPerStep int64   `json:"ns_per_step"`
	NsPerZone float64 `json:"ns_per_zone"`
	// AllocsPerStep counts heap allocations per steady-state step
	// (mallocs delta over the timed window); the pipeline invariant is 0.
	AllocsPerStep int64 `json:"allocs_per_step"`
	// BaselineNsPerStep is the pre-pipeline reference on the benchmark
	// host (see docs/PERFORMANCE.md); 0 when not comparable (quick mode).
	BaselineNsPerStep int64   `json:"baseline_ns_per_step,omitempty"`
	ImprovementPct    float64 `json:"improvement_pct,omitempty"`
}

// stepBenchReport is the BENCH_step.json payload.
type stepBenchReport struct {
	Generated string `json:"generated"`
	Host      string `json:"host"`
	// GoMaxProcs and NumCPU pin the parallel capacity of the benchmark
	// host so ns/zone numbers are comparable across runs.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// TileJ, TileK and PanelW record the cache-blocking geometry of the
	// tiled sweep engine used for the run (see docs/PERFORMANCE.md).
	TileJ   int          `json:"tile_j"`
	TileK   int          `json:"tile_k"`
	PanelW  int          `json:"panel_w"`
	N       int          `json:"n"`
	Zones   int          `json:"zones"`
	Steps   int          `json:"steps_per_sample"`
	Configs []stepConfig `json:"configs"`
}

// Pre-pipeline single-thread references for the 48^3 blast on the CI
// host class (medians; the PCM+HLL "fused" entry predates the kernel,
// so its baseline equals the generic path it silently fell back to).
var stepBaselines = map[string]int64{
	"blast3d-generic":        369_900_000,
	"blast3d-fused":          212_000_000,
	"blast3d-pcmhll-generic": 278_000_000,
	"blast3d-pcmhll-fused":   284_000_000,
}

// stepbench is E14: steady-state time-step cost of the single-pass
// pipeline — in-sweep CFL reduction, pooled row scratch, fused kernels —
// as ns/zone-update and allocations per step, against the pre-pipeline
// baselines. Writes BENCH_step.json into the current directory (the CI
// benchmark job runs it from the repo root and archives the file).
func (s *suite) stepbench() error {
	n, steps := 48, 3
	if s.quick {
		n, steps = 24, 2
	}
	// The multi-worker config keeps the stable name "blast3d-fused-parN"
	// so the perf gate can match it across hosts; the actual pool size is
	// recorded in the workers field.
	parN := runtime.NumCPU()
	if parN < 2 {
		parN = 2
	}
	type cfgCase struct {
		name    string
		workers int
		mut     func(*core.Config)
	}
	cases := []cfgCase{
		{"blast3d-generic", 0, nil},
		{"blast3d-fused", 0, func(c *core.Config) { c.Fused = true }},
		{"blast3d-fused-parN", parN, func(c *core.Config) { c.Fused = true }},
		{"blast3d-pcmhll-generic", 0, func(c *core.Config) {
			c.Recon = recon.PCM{}
			c.Riemann = riemann.HLL{}
		}},
		{"blast3d-pcmhll-fused", 0, func(c *core.Config) {
			c.Fused = true
			c.Recon = recon.PCM{}
			c.Riemann = riemann.HLL{}
		}},
	}

	prob := testprob.Blast3D
	rep := stepBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Host:       fmt.Sprintf("%s/%s, %d core(s)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		PanelW:     core.PanelW,
		N:          n,
		Steps:      steps,
	}
	tb := metrics.NewTable(
		fmt.Sprintf("E14: steady-state step cost, %d^3 blast, median %d-step sample", n, steps),
		"config", "ns/step", "ns/zone", "allocs/step", "vs baseline")

	for _, tc := range cases {
		cfg := core.DefaultConfig()
		if tc.mut != nil {
			tc.mut(&cfg)
		}
		if tc.workers > 0 {
			cfg.Pool = par.NewPool(tc.workers)
		}
		g := prob.NewGrid(n, cfg.Recon.Ghost())
		sol, err := core.New(g, cfg)
		if err != nil {
			return err
		}
		if err := sol.InitFromPrim(prob.Init); err != nil {
			return err
		}
		sol.RecoverPrimitives()
		zones := g.Nx * g.Ny * g.Nz
		rep.Zones = zones
		rep.TileJ, rep.TileK = sol.TileSizes()
		// Warm the scratch free list, the CFL cache, and the heap.
		for i := 0; i < 2; i++ {
			if err := sol.Step(sol.MaxDt()); err != nil {
				return err
			}
		}
		// Take the median over several samples: single 3-step samples
		// wobble ±15% on shared CI hosts, which is exactly the gate
		// tolerance — the median keeps the gate signal, not the noise.
		nSamples := 5
		if s.quick {
			nSamples = 3
		}
		samples := make([]int64, 0, nSamples)
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for sample := 0; sample < nSamples; sample++ {
			start := time.Now()
			for i := 0; i < steps; i++ {
				if err := sol.Step(sol.MaxDt()); err != nil {
					return err
				}
			}
			samples = append(samples, time.Since(start).Nanoseconds()/int64(steps))
		}
		runtime.ReadMemStats(&ms1)
		sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })

		c := stepConfig{
			Name:          tc.name,
			Workers:       tc.workers,
			NsPerStep:     samples[len(samples)/2],
			AllocsPerStep: int64(ms1.Mallocs-ms0.Mallocs) / int64(nSamples*steps),
		}
		c.NsPerZone = float64(c.NsPerStep) / float64(zones)
		vs := "-"
		if base, ok := stepBaselines[tc.name]; ok && !s.quick {
			c.BaselineNsPerStep = base
			c.ImprovementPct = 100 * (1 - float64(c.NsPerStep)/float64(base))
			vs = fmt.Sprintf("%+.1f%%", -c.ImprovementPct)
		}
		tb.AddRow(c.Name, c.NsPerStep, fmt.Sprintf("%.0f", c.NsPerZone), c.AllocsPerStep, vs)
		rep.Configs = append(rep.Configs, c)
	}
	fmt.Print(tb.String())

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_step.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  [json: BENCH_step.json]")
	if s.gate != "" {
		return stepGate(&rep, s.gate)
	}
	return nil
}

// stepGateTolPct is the per-config ns/zone regression tolerance of the
// perf gate: generous enough to absorb CI host noise, tight enough to
// catch a real pipeline regression.
const stepGateTolPct = 15.0

// stepGate compares a freshly measured report against a committed
// baseline BENCH_step.json (the -gate flag). It fails when any config
// present in both regresses by more than stepGateTolPct in ns/zone, or
// when any serial config allocates in steady state (the alloc invariant
// is exact; pool-backed configs pay a few scheduler allocations and are
// gated on time only). Configs without a baseline entry — e.g. a config
// added in the same change — are reported and skipped.
func stepGate(rep *stepBenchReport, baselinePath string) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("stepbench gate: %w", err)
	}
	var base stepBenchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("stepbench gate: %s: %w", baselinePath, err)
	}
	ref := make(map[string]stepConfig, len(base.Configs))
	for _, c := range base.Configs {
		ref[c.Name] = c
	}
	var fails []string
	for _, c := range rep.Configs {
		if c.Workers == 0 && c.AllocsPerStep > 0 {
			fails = append(fails, fmt.Sprintf("%s: %d allocs/step, want 0", c.Name, c.AllocsPerStep))
		}
		b, ok := ref[c.Name]
		if !ok || b.NsPerZone <= 0 {
			fmt.Printf("  [gate: %-22s no baseline entry, skipped]\n", c.Name)
			continue
		}
		pct := 100 * (c.NsPerZone/b.NsPerZone - 1)
		if pct > stepGateTolPct {
			fails = append(fails, fmt.Sprintf(
				"%s: %.0f ns/zone vs baseline %.0f (%+.1f%%, tolerance %.0f%%)",
				c.Name, c.NsPerZone, b.NsPerZone, pct, stepGateTolPct))
		} else {
			fmt.Printf("  [gate: %-22s %+.1f%% vs baseline, ok]\n", c.Name, pct)
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("stepbench gate failed:\n  %s", strings.Join(fails, "\n  "))
	}
	fmt.Println("  [gate: passed]")
	return nil
}
