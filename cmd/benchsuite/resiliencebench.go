package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"rhsc/internal/amr"
	"rhsc/internal/cluster"
	"rhsc/internal/core"
	"rhsc/internal/damr"
	"rhsc/internal/metrics"
	"rhsc/internal/resilience"
	"rhsc/internal/testprob"
)

// resilienceRow is one distributed scenario of E13: checkpoint overhead
// against the uncheckpointed baseline, and — for faulted runs — the cost
// and fidelity of the recovery.
type resilienceRow struct {
	Scenario           string  `json:"scenario"`
	CheckpointEvery    int     `json:"checkpoint_every"`
	FaultStep          int     `json:"fault_step,omitempty"`
	VirtualTime        float64 `json:"virtual_time_s"`
	CheckpointOverhead float64 `json:"checkpoint_overhead"`
	CheckpointBytes    int64   `json:"checkpoint_bytes"`
	Recoveries         int     `json:"recoveries"`
	Survivors          int     `json:"survivors"`
	RecomputedSteps    int     `json:"recomputed_steps"`
	RecoveryVirtual    float64 `json:"recovery_virtual_s"`
	TimeToRecoverMS    float64 `json:"time_to_recover_ms"`
	L1Rho              float64 `json:"l1_rho_vs_faultfree"`
}

// guardRow is the numerical-fault scenario: a guarded shock-tube run
// with an injected corruption, reporting the retry machinery's work.
type guardRow struct {
	Scenario  string `json:"scenario"`
	Injected  int64  `json:"injected"`
	Retries   int64  `json:"retries"`
	Fallbacks int64  `json:"fallbacks"`
	Steps     int    `json:"steps"`
	Completed bool   `json:"completed"`
}

// resilience is E13: the price of surviving faults. It measures (a) the
// virtual-time overhead of buddy checkpointing at several cadences, (b)
// time-to-recover and recomputed work when a rank dies under each
// cadence, with the L1 column certifying the recovered run still matches
// the fault-free solution to round-off, and (c) the step-retry guard
// absorbing an injected numerical fault on the shock tube.
func (s *suite) resilience() error {
	const rootBlocks = 4
	maxLevel := 2
	steps := 24
	cadences := []int{2, 4, 8}
	if s.quick {
		maxLevel = 1
		steps = 8
		cadences = []int{2, 4}
	}
	const ranks = 4
	// Off-cadence fault step (15 of 24) so every cadence leaves a
	// distinct replay window: 1, 3 and 7 steps for cadences 2, 4, 8.
	faultStep := 5 * steps / 8

	p := testprob.Blast2D
	cfg := amr.DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = maxLevel
	cfg.RegridEvery = 4

	// Fault-free single-rank reference for the fidelity column.
	ref, err := amr.NewTree(p, rootBlocks, cfg)
	if err != nil {
		return err
	}
	for i := 0; i < steps; i++ {
		if err := ref.Step(ref.MaxDt()); err != nil {
			return err
		}
	}
	l1Rho := func(tr *amr.Tree) float64 {
		const n = 64
		sum := 0.0
		for j := 0; j < n; j++ {
			y := p.Y0 + (float64(j)+0.5)/n*(p.Y1-p.Y0)
			for i := 0; i < n; i++ {
				x := p.X0 + (float64(i)+0.5)/n*(p.X1-p.X0)
				sum += math.Abs(tr.SampleAt(x, y).Rho - ref.SampleAt(x, y).Rho)
			}
		}
		return sum / (n * n)
	}
	run := func(ckEvery int, fault *damr.RankFault) (*damr.Result, error) {
		return damr.Run(p, rootBlocks, cfg, damr.Options{
			Ranks:           ranks,
			Mode:            cluster.Async,
			Net:             cluster.Infiniband(),
			Steps:           steps,
			CheckpointEvery: ckEvery,
			Fault:           fault,
		})
	}

	base, err := run(0, nil)
	if err != nil {
		return err
	}
	rows := []resilienceRow{{
		Scenario:    "baseline",
		VirtualTime: base.VirtualTime,
		Survivors:   base.Survivors,
		L1Rho:       l1Rho(base.Tree),
	}}
	for _, ck := range cadences {
		res, err := run(ck, nil)
		if err != nil {
			return fmt.Errorf("checkpoint every %d: %w", ck, err)
		}
		rows = append(rows, resilienceRow{
			Scenario:           "checkpoint",
			CheckpointEvery:    ck,
			VirtualTime:        res.VirtualTime,
			CheckpointOverhead: res.VirtualTime/base.VirtualTime - 1,
			CheckpointBytes:    res.CheckpointBytes,
			Survivors:          res.Survivors,
			L1Rho:              l1Rho(res.Tree),
		})
	}
	for _, ck := range cadences {
		res, err := run(ck, &damr.RankFault{Rank: 1, AfterStep: faultStep})
		if err != nil {
			return fmt.Errorf("fault at ck=%d: %w", ck, err)
		}
		rows = append(rows, resilienceRow{
			Scenario:           "rank-fault",
			CheckpointEvery:    ck,
			FaultStep:          faultStep,
			VirtualTime:        res.VirtualTime,
			CheckpointOverhead: res.VirtualTime/base.VirtualTime - 1,
			CheckpointBytes:    res.CheckpointBytes,
			Recoveries:         res.Recoveries,
			Survivors:          res.Survivors,
			RecomputedSteps:    res.RecomputedSteps,
			RecoveryVirtual:    res.RecoveryVirtual,
			TimeToRecoverMS:    float64(res.RecoveryReal.Microseconds()) / 1e3,
			L1Rho:              l1Rho(res.Tree),
		})
	}

	tb := metrics.NewTable(
		fmt.Sprintf("E13: resilience on the 2-D blast L%d, %d ranks, %d steps (virtual)",
			maxLevel, ranks, steps),
		"scenario", "ck-every", "ovh%", "recov", "replayed", "recov(ms)", "L1(rho)")
	for _, r := range rows {
		tb.AddRow(r.Scenario, r.CheckpointEvery, 100*r.CheckpointOverhead,
			r.Recoveries, r.RecomputedSteps, r.TimeToRecoverMS, r.L1Rho)
	}
	fmt.Print(tb.String())
	fmt.Println("  expected shape: checkpoint overhead grows with cadence frequency;")
	fmt.Println("  a denser cadence buys a shorter replay window after the fault; the")
	fmt.Println("  L1 column stays at round-off — recovery never changes the physics.")

	// Numerical-fault scenario: the guarded shock tube absorbs an
	// injected NaN (transient) and a persistent corruption that forces
	// the first-order fallback.
	guards := []struct {
		label string
		inj   *resilience.Injector
	}{
		{"clean", nil},
		{"transient-nan", &resilience.Injector{AtStep: 3, Cell: -1}},
		{"persistent", &resilience.Injector{AtStep: 3, Count: 2, Cell: -1}},
	}
	gtb := metrics.NewTable("E13b: guarded shock tube, injected numerical faults",
		"scenario", "injected", "retries", "fallbacks", "steps", "completed")
	grows := make([]guardRow, 0, len(guards))
	for _, gc := range guards {
		gcfg := core.DefaultConfig()
		sp := testprob.Sod
		grid := sp.NewGrid(256, gcfg.Recon.Ghost())
		sol, err := core.New(grid, gcfg)
		if err != nil {
			return err
		}
		if err := sol.InitFromPrim(sp.Init); err != nil {
			return err
		}
		g := resilience.NewGuard(sol, resilience.Policy{})
		g.Inject = gc.inj
		n, err := g.Advance(sp.TEnd)
		snap := g.Stats.Snapshot()
		row := guardRow{
			Scenario: gc.label, Injected: snap.Injected,
			Retries: snap.Retries, Fallbacks: snap.Fallbacks,
			Steps: n, Completed: err == nil,
		}
		grows = append(grows, row)
		gtb.AddRow(row.Scenario, row.Injected, row.Retries, row.Fallbacks, row.Steps, row.Completed)
	}
	fmt.Print(gtb.String())

	out := struct {
		Damr      []resilienceRow `json:"damr"`
		Numerical []guardRow      `json:"numerical"`
	}{rows, grows}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if s.outdir != "" {
		path := filepath.Join(s.outdir, "e13_resilience.json")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  [json: %s]\n", path)
	} else {
		fmt.Printf("  results JSON:\n%s\n", blob)
	}

	var csvCk, csvOvh, csvReplay, csvRecovVirt []float64
	for _, r := range rows {
		if r.Scenario == "baseline" {
			continue
		}
		csvCk = append(csvCk, float64(r.CheckpointEvery))
		csvOvh = append(csvOvh, r.CheckpointOverhead)
		csvReplay = append(csvReplay, float64(r.RecomputedSteps))
		csvRecovVirt = append(csvRecovVirt, r.RecoveryVirtual)
	}
	s.writeCSV("e13_resilience.csv",
		[]string{"checkpoint_every", "checkpoint_overhead", "recomputed_steps", "recovery_virtual_s"},
		csvCk, csvOvh, csvReplay, csvRecovVirt)
	return nil
}
