package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rhsc/internal/core"
	"rhsc/internal/hetero"
	"rhsc/internal/metrics"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// chaosRun advances the 2-D blast under a chaos schedule and returns the
// executor plus the final density field (for the bitwise check).
func chaosRun(n, steps int, pol hetero.Policy, chaos *hetero.ChaosSchedule,
	specs ...hetero.Spec) (*hetero.Executor, []float64, error) {
	p := testprob.Blast2D
	g := p.NewGrid(n, 2)
	s, err := core.New(g, core.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	devs := make([]*hetero.Device, len(specs))
	for i, sp := range specs {
		if devs[i], err = hetero.NewDevice(sp); err != nil {
			return nil, nil, err
		}
	}
	ex, err := hetero.NewExecutor(pol, devs...)
	if err != nil {
		return nil, nil, err
	}
	ex.Chaos = chaos
	ex.Attach(s)
	s.InitFromPrim(p.Init)
	for i := 0; i < steps; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			return nil, nil, err
		}
	}
	field := make([]float64, g.NCells())
	copy(field, g.U.Comp[state.ID])
	return ex, field, nil
}

// routerScenario is one static-vs-routed comparison in BENCH_hetero.json.
type routerScenario struct {
	StaticMs float64                 `json:"static_ms"`
	RoutedMs float64                 `json:"routed_ms"`
	Speedup  float64                 `json:"speedup"`
	Bitwise  bool                    `json:"bitwise_identical"`
	Health   []hetero.DeviceHealth   `json:"health"`
	Counters metrics.RouterSnapshot  `json:"counters"`
}

// heteroBenchReport is the BENCH_hetero.json payload.
type heteroBenchReport struct {
	Generated string         `json:"generated"`
	Host      string         `json:"host"`
	Skewed    routerScenario `json:"skewed_fleet"`
	Faulty    routerScenario `json:"faulty_fleet"`
}

// compareScenario runs the same chaotic workload under the static and the
// routed planner and checks both against the fault-free reference field.
func compareScenario(n, steps int, chaos *hetero.ChaosSchedule, ref []float64,
	specs ...hetero.Spec) (routerScenario, error) {
	exS, fieldS, err := chaosRun(n, steps, hetero.Static, chaos, specs...)
	if err != nil {
		return routerScenario{}, err
	}
	exR, fieldR, err := chaosRun(n, steps, hetero.Routed, chaos, specs...)
	if err != nil {
		return routerScenario{}, err
	}
	sc := routerScenario{
		StaticMs: exS.VirtualTime() * 1e3,
		RoutedMs: exR.VirtualTime() * 1e3,
		Speedup:  exS.VirtualTime() / exR.VirtualTime(),
		Bitwise:  true,
		Health:   exR.Router().HealthReport(),
		Counters: exR.Router().C.Snapshot(),
	}
	for i := range ref {
		if fieldS[i] != ref[i] || fieldR[i] != ref[i] {
			sc.Bitwise = false
			break
		}
	}
	return sc, nil
}

// heteroBench is E17: the health-scored dynamic router against the
// static planner on hostile fleets. Two scenarios, both deterministic
// (virtual clocks, phase-keyed chaos):
//
//   - skewed: one device's observed latency is 8x its nominal spec for
//     the whole run — the static planner keeps feeding it a nominal
//     share, the router drains the straggler and redistributes;
//   - faulty: a mid-run fail-stop death plus a flapping device — both
//     planners survive (reroute is policy-independent), but the router
//     also stops planning onto the flapper while it is sick.
//
// Writes BENCH_hetero.json; errors if the routed makespan does not beat
// the static one or any run is not bitwise-identical to the fault-free
// reference.
func (s *suite) heteroBench() error {
	n, steps := 128, 6
	if s.quick {
		n, steps = 64, 4
	}
	fleet := []hetero.Spec{hetero.SpecHostCPU(4), hetero.SpecHostCPU(4), hetero.SpecK20GPU()}

	// Fault-free reference field (any policy; plans never change numerics).
	_, ref, err := chaosRun(n, steps, hetero.Static, nil, fleet...)
	if err != nil {
		return err
	}

	skewed, err := compareScenario(n, steps, &hetero.ChaosSchedule{Events: []hetero.ChaosEvent{
		{Kind: hetero.LatencySpike, Device: 1, Phase: 0, Factor: 8},
	}}, ref, fleet...)
	if err != nil {
		return err
	}

	faulty, err := compareScenario(n, steps, &hetero.ChaosSchedule{Events: []hetero.ChaosEvent{
		{Kind: hetero.DeviceDeath, Device: 2, Phase: 6},
		{Kind: hetero.LatencyFlap, Device: 1, Phase: 2, Factor: 8, Period: 4},
	}}, ref, fleet...)
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		fmt.Sprintf("E17: dynamic router vs static planner, %d^2 blast, %d steps (virtual)", n, steps),
		"fleet", "static(ms)", "routed(ms)", "speedup", "bitwise")
	tb.AddRow("skewed (8x straggler)", skewed.StaticMs, skewed.RoutedMs, skewed.Speedup, boolMark(skewed.Bitwise))
	tb.AddRow("faulty (death+flap)", faulty.StaticMs, faulty.RoutedMs, faulty.Speedup, boolMark(faulty.Bitwise))
	fmt.Print(tb.String())
	fmt.Println("  expected shape: the router drains the straggler/flapper after a few")
	fmt.Println("  observed phases and redistributes its share, so the routed makespan")
	fmt.Println("  beats static on both fleets; every run is bitwise-identical to the")
	fmt.Println("  fault-free reference.")

	rep := heteroBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      fmt.Sprintf("%s/%s, %d core(s)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Skewed:    skewed,
		Faulty:    faulty,
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_hetero.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  [json: BENCH_hetero.json]")

	if !skewed.Bitwise || !faulty.Bitwise {
		return fmt.Errorf("E17: chaos run diverged from the fault-free reference")
	}
	if skewed.Speedup <= 1 {
		return fmt.Errorf("E17: routed (%.2f ms) did not beat static (%.2f ms) on the skewed fleet",
			skewed.RoutedMs, skewed.StaticMs)
	}
	if faulty.Speedup <= 1 {
		return fmt.Errorf("E17: routed (%.2f ms) did not beat static (%.2f ms) on the faulty fleet",
			faulty.RoutedMs, faulty.StaticMs)
	}
	return nil
}

func boolMark(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
