// Command rhscd is the simulation-as-a-service daemon: a multi-tenant
// job server running catalogued simulations on a bounded worker pool
// with admission control and checkpoint-based preemption.
//
//	rhscd -addr :8080 -workers 4 -spool /var/spool/rhscd
//	curl -d '{"problem":"sod","n":256}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j000001/watch
//
// On SIGINT/SIGTERM the daemon stops admitting work, checkpoints every
// in-flight job into the spool directory, and exits 0; the exit code is
// nonzero only when a checkpoint could not be written. A restarted
// daemon re-admits the spooled jobs and resumes parked ones
// bit-exactly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rhsc/internal/durable"
	"rhsc/internal/hetero"
	"rhsc/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		workers = flag.Int("workers", 2, "simulation worker pool size")
		queue   = flag.Int("queue", 64, "queued-job capacity")
		maxCost = flag.Int64("maxcost", 0, "per-job zone-update cost ceiling (0 = unlimited)")
		spool   = flag.String("spool", "rhscd-spool", "directory for drain checkpoints")
		budget  = flag.Int64("budget", 0, "default per-tenant zone-update budget (0 = unlimited)")
		active  = flag.Int("active", 0, "default per-tenant concurrent job cap (0 = unlimited)")
		quotas  = flag.String("quotas", "", "per-tenant overrides, e.g. 'alice=4:1e9,bob=2:0' (maxactive:budget)")
		fleet   = flag.String("fleet", "", "routed device fleet, e.g. 'cpu8,k20,k20-staged,phi'; jobs land on health-scored capacity (GET /v1/fleet)")
		jobTO   = flag.Duration("job-timeout", 0, "per-job running wall-clock cap, e.g. 10m; past it the job is cancelled with a typed timeout (0 = unlimited)")
	)
	flag.Parse()

	cfg := serve.Config{
		Workers: *workers, MaxQueue: *queue, MaxJobCost: *maxCost,
		DefaultQuota: serve.Quota{MaxActive: *active, Budget: *budget},
		JobTimeout:   *jobTO,
	}
	var err error
	if cfg.Quotas, err = parseQuotas(*quotas); err != nil {
		log.Fatal(err)
	}
	if *fleet != "" {
		devs, err := hetero.ParseFleet(*fleet)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Placer = serve.NewFleetPlacer(devs...)
		log.Printf("rhscd: routing jobs across %d device(s): %s", len(devs), *fleet)
	}

	srv := serve.New(cfg)
	if *spool != "" {
		// Boot recovery: verified records re-admit; corrupt or unusable
		// ones are quarantined to <spool>/corrupt/ so a single rotten
		// record can never wedge the boot.
		n, err := srv.LoadSpool(*spool)
		if err != nil {
			log.Printf("rhscd: spool load (damaged entries quarantined to %s): %v",
				filepath.Join(*spool, durable.QuarantineDir), err)
		}
		if n > 0 {
			log.Printf("rhscd: re-admitted %d spooled job(s) from %s", n, *spool)
		}
		if d := srv.DurableMetrics(); d.Quarantined > 0 {
			log.Printf("rhscd: boot quarantined %d spool file(s), skipped %d generation(s)",
				d.Quarantined, d.SkippedGenerations)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: serve.NewMux(srv)}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	log.Printf("rhscd: serving on %s with %d worker(s), spool %q", *addr, *workers, *spool)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("rhscd: %v: draining", sig)
	case err := <-httpErr:
		log.Fatalf("rhscd: http: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("rhscd: http shutdown: %v", err)
	}
	if err := srv.Drain(*spool); err != nil {
		// The one condition worth a nonzero exit: in-flight state that
		// could not be checkpointed is lost.
		log.Printf("rhscd: drain: %v", err)
		os.Exit(1)
	}
	d := srv.DurableMetrics()
	log.Printf("rhscd: drained cleanly (%d durable commit(s), %d byte(s))",
		d.Commits, d.CommitBytes)
}

// parseQuotas decodes 'tenant=maxactive:budget' pairs.
func parseQuotas(s string) (map[string]serve.Quota, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]serve.Quota)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("rhscd: bad quota %q (want tenant=maxactive:budget)", pair)
		}
		ma, bu, ok := strings.Cut(val, ":")
		if !ok {
			return nil, fmt.Errorf("rhscd: bad quota %q (want tenant=maxactive:budget)", pair)
		}
		var q serve.Quota
		var err error
		if q.MaxActive, err = strconv.Atoi(ma); err != nil {
			return nil, fmt.Errorf("rhscd: bad maxactive in %q: %v", pair, err)
		}
		b, err := strconv.ParseFloat(bu, 64)
		if err != nil {
			return nil, fmt.Errorf("rhscd: bad budget in %q: %v", pair, err)
		}
		q.Budget = int64(b)
		out[name] = q
	}
	return out, nil
}
