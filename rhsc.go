// Package rhsc is a scalable special-relativistic high-resolution
// shock-capturing (HRSC) hydrodynamics framework for heterogeneous
// computing, reproducing Glines, Anderson & Neilsen (IEEE CLUSTER 2015).
//
// The package is a façade over the engine packages:
//
//   - a finite-volume SRHD solver (reconstruction × Riemann solver ×
//     SSP-RK integrator) on uniform 1/2/3-D grids,
//   - block-structured adaptive mesh refinement,
//   - a heterogeneous device model with static/dynamic strip scheduling,
//   - a distributed (rank-decomposed) driver with sync/async halo
//     exchange and a virtual network model, and
//   - the exact SRHD Riemann solver for validation.
//
// A minimal run:
//
//	sim, err := rhsc.NewSim(rhsc.Options{Problem: "sod", N: 400})
//	if err != nil { ... }
//	err = sim.Run()
//	sim.WriteProfile(os.Stdout)
package rhsc

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"time"

	"rhsc/internal/amr"
	"rhsc/internal/cluster"
	"rhsc/internal/core"
	"rhsc/internal/eos"
	"rhsc/internal/exact"
	"rhsc/internal/grid"
	"rhsc/internal/hetero"
	"rhsc/internal/metrics"
	"rhsc/internal/newton"
	"rhsc/internal/output"
	"rhsc/internal/par"
	"rhsc/internal/recon"
	"rhsc/internal/resilience"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// Version identifies the library release.
const Version = "1.0.0"

// Prim is the primitive hydrodynamic state (ρ, v, p) of one cell.
type Prim = state.Prim

// Cons is the conserved state (D, S, τ) of one cell.
type Cons = state.Cons

// Options selects a catalogued problem and the numerical method. Zero
// fields take the documented defaults.
type Options struct {
	// Problem is a name from Problems() — e.g. "sod", "blast", "blast2d",
	// "kh2d", "smooth-wave", "shock-heating", "implosion2d".
	Problem string
	// N is the number of cells along x (2-D problems scale y by the
	// domain aspect). Default 256.
	N int
	// Recon names the reconstruction: "pcm", "plm" (default, MC limiter),
	// "plm-minmod", "plm-vanleer", "ppm", "weno5", "wenoz".
	Recon string
	// Riemann names the flux: "llf", "hll", "hllc" (default).
	Riemann string
	// Integrator is "rk1", "rk2" (default) or "rk3".
	Integrator string
	// CFL is the Courant factor (default 0.4).
	CFL float64
	// Threads > 1 runs strip sweeps on a pool of that many workers;
	// 0 or 1 runs serially.
	Threads int
	// Gamma overrides the problem's adiabatic index when > 0.
	Gamma float64
	// TaubMathews selects the TM equation of state instead of the Γ-law.
	TaubMathews bool
	// HybridK > 0 selects the hybrid (cold polytrope + thermal Γ-law)
	// EOS with cold constant HybridK, cold exponent HybridGammaC and the
	// thermal index from Gamma (or the problem default).
	HybridK      float64
	HybridGammaC float64
}

// buildConfig resolves Options into a core configuration plus the problem.
func buildConfig(o Options) (*testprob.Problem, core.Config, error) {
	name := o.Problem
	if name == "" {
		name = "sod"
	}
	p, err := testprob.ByName(name)
	if err != nil {
		return nil, core.Config{}, err
	}
	cfg := core.DefaultConfig()

	gamma := p.Gamma
	if o.Gamma > 0 {
		gamma = o.Gamma
	}
	switch {
	case o.TaubMathews:
		cfg.EOS = eos.TaubMathews{}
	case o.HybridK > 0:
		gc := o.HybridGammaC
		if gc <= 1 {
			gc = 2
		}
		cfg.EOS = eos.NewHybrid(o.HybridK, gc, gamma)
	default:
		cfg.EOS = eos.NewIdealGas(gamma)
	}
	if o.Recon != "" {
		r, err := recon.ByName(o.Recon)
		if err != nil {
			return nil, core.Config{}, err
		}
		cfg.Recon = r
	}
	if o.Riemann != "" {
		r, err := riemann.ByName(o.Riemann)
		if err != nil {
			return nil, core.Config{}, err
		}
		cfg.Riemann = r
	}
	switch o.Integrator {
	case "":
	case "rk1":
		cfg.Integrator = core.RK1
	case "rk2":
		cfg.Integrator = core.RK2
	case "rk3":
		cfg.Integrator = core.RK3
	default:
		return nil, core.Config{}, fmt.Errorf("rhsc: unknown integrator %q", o.Integrator)
	}
	if o.CFL > 0 {
		cfg.CFL = o.CFL
	}
	if o.Threads > 1 {
		cfg.Pool = par.NewPool(o.Threads)
	}
	// The specialised kernel is bitwise-identical to the generic path, so
	// it is always enabled; it activates only when the configuration
	// matches (PLM-MC + HLLC + ideal gas).
	cfg.Fused = true
	return p, cfg, nil
}

// Problems lists the catalogued problem names.
func Problems() []string { return testprob.Names() }

// CheckOptions validates the options without allocating a grid: the
// problem name, scheme names and integrator are resolved exactly as
// NewSim would. The job server uses it for admission-time validation of
// queued specs whose grids are only built at dispatch.
func CheckOptions(o Options) error {
	_, _, err := buildConfig(o)
	return err
}

// Sim is a single-grid simulation.
type Sim struct {
	Problem *testprob.Problem
	Solver  *core.Solver
	Grid    *grid.Grid

	opts Options
}

// NewSim builds a simulation from options and imposes the initial
// condition.
func NewSim(o Options) (*Sim, error) {
	p, cfg, err := buildConfig(o)
	if err != nil {
		return nil, err
	}
	n := o.N
	if n <= 0 {
		n = 256
	}
	g := p.NewGrid(n, cfg.Recon.Ghost())
	s, err := core.New(g, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.InitFromPrim(p.Init); err != nil {
		return nil, err
	}
	return &Sim{Problem: p, Solver: s, Grid: g, opts: o}, nil
}

// Run advances to the problem's canonical end time.
func (s *Sim) Run() error { return s.RunTo(s.Problem.TEnd) }

// RunTo advances to the given time.
func (s *Sim) RunTo(t float64) error {
	_, err := s.Solver.Advance(t)
	return err
}

// Step advances a single CFL-limited step and returns the dt used.
func (s *Sim) Step() (float64, error) {
	dt := s.Solver.MaxDt()
	return dt, s.Solver.Step(dt)
}

// Time returns the current solution time.
func (s *Sim) Time() float64 { return s.Solver.Time() }

// At returns the primitive state at the cell nearest to (x, y).
func (s *Sim) At(x, y float64) Prim {
	g := s.Grid
	i := g.IBeg() + int((x-g.X0)/g.Dx)
	if i < g.IBeg() {
		i = g.IBeg()
	}
	if i >= g.IEnd() {
		i = g.IEnd() - 1
	}
	j := g.JBeg()
	if g.Ny > 1 {
		j = g.JBeg() + int((y-g.Y0)/g.Dy)
		if j < g.JBeg() {
			j = g.JBeg()
		}
		if j >= g.JEnd() {
			j = g.JEnd() - 1
		}
	}
	return g.W.GetPrim(g.Idx(i, j, g.KBeg()))
}

// WriteProfile writes the 1-D primitive profile as CSV.
func (s *Sim) WriteProfile(w io.Writer) error { return output.WriteProfileCSV(w, s.Grid) }

// WriteSlab writes the 2-D slab as CSV.
func (s *Sim) WriteSlab(w io.Writer) error { return output.WriteSlabCSV(w, s.Grid) }

// Checkpoint writes a restartable snapshot (conserved state only; a
// restore re-derives primitives, so the restarted run is accurate but
// not bit-identical). Use CheckpointExact for exact continuation.
func (s *Sim) Checkpoint(w io.Writer) error {
	return output.SaveCheckpoint(w, s.Grid, s.Solver.Time())
}

// CheckpointExact writes a snapshot carrying both conserved and
// primitive fields (ghosts included): Restore continues the run
// bit-identically to the uninterrupted one — the property the job
// server's checkpoint-based preemption relies on.
func (s *Sim) CheckpointExact(w io.Writer) error {
	return output.SaveCheckpointExact(w, s.Grid, s.Solver.Time())
}

// Restore rebuilds a Sim from a checkpoint written by Checkpoint or
// CheckpointExact. The options must name the same problem and method.
// Exact checkpoints restore the primitive field bitwise and skip
// re-recovery, so the resumed run continues round-off-exactly.
func Restore(r io.Reader, o Options) (*Sim, error) {
	p, cfg, err := buildConfig(o)
	if err != nil {
		return nil, err
	}
	g, t, prims, err := output.LoadCheckpointFull(r)
	if err != nil {
		return nil, err
	}
	s, err := core.New(g, cfg)
	if err != nil {
		return nil, err
	}
	s.SetTime(t)
	if !prims {
		s.RecoverPrimitives()
	}
	return &Sim{Problem: p, Solver: s, Grid: g, opts: o}, nil
}

// Mass returns the conserved total rest mass.
func (s *Sim) Mass() float64 { return s.Grid.TotalMass() }

// EnableTracer activates a passive composition scalar X(x,y,z) (electron
// fraction, metallicity, dye, …) advected with the fluid; call after
// NewSim and before stepping.
func (s *Sim) EnableTracer(fn func(x, y, z float64) float64) error {
	return s.Solver.EnableTracer(fn)
}

// TracerAt returns the tracer concentration at the cell nearest (x, y);
// zero when no tracer is enabled.
func (s *Sim) TracerAt(x, y float64) float64 {
	g := s.Grid
	i := g.IBeg() + int((x-g.X0)/g.Dx)
	if i < g.IBeg() {
		i = g.IBeg()
	}
	if i >= g.IEnd() {
		i = g.IEnd() - 1
	}
	j := g.JBeg()
	if g.Ny > 1 {
		j = g.JBeg() + int((y-g.Y0)/g.Dy)
		if j < g.JBeg() {
			j = g.JBeg()
		}
		if j >= g.JEnd() {
			j = g.JEnd() - 1
		}
	}
	return s.Solver.Tracer(g.Idx(i, j, g.KBeg()))
}

// WriteVTK writes the current primitive fields as a legacy VTK dataset
// (ParaView/VisIt-readable).
func (s *Sim) WriteVTK(w io.Writer, title string) error {
	return output.WriteVTK(w, s.Grid, title)
}

// WritePNG renders the density of the 2-D slab as a PNG heatmap; set log
// to map through log10 first (blast waves, jets), and scale to enlarge
// cells to scale×scale pixels.
func (s *Sim) WritePNG(w io.Writer, logScale bool, scale int) error {
	return output.WritePNG(w, s.Grid, output.PNGOptions{
		Comp: state.IRho, Log: logScale, Scale: scale,
	})
}

// Monitor re-exports the run-time diagnostics recorder.
type Monitor = core.Monitor

// DiagRow re-exports one diagnostics sample.
type DiagRow = core.DiagRow

// AttachMonitor records diagnostics (conserved totals, max Lorentz
// factor, c2p resets) every n accepted steps; it returns the monitor for
// later inspection or CSV dumping.
func (s *Sim) AttachMonitor(n int) *Monitor {
	m := core.NewMonitor(n)
	s.Solver.AttachMonitor(m)
	return m
}

// ZoneUpdates returns the cumulative zones × RHS evaluations.
func (s *Sim) ZoneUpdates() int64 { return s.Solver.St.ZoneUpdates.Load() }

// ExactSod solves the 1-D Riemann problem (ρ,v,p) L/R exactly and returns
// a sampler of the density profile at time t with the jump at x0:
// rho(x) = sampler(x).
func ExactSod(rhoL, vL, pL, rhoR, vR, pR, gamma, x0, t float64) (func(x float64) Prim, error) {
	sol, err := exact.Solve(
		exact.State{Rho: rhoL, V: vL, P: pL},
		exact.State{Rho: rhoR, V: vR, P: pR}, gamma)
	if err != nil {
		return nil, err
	}
	return func(x float64) Prim {
		if t <= 0 {
			if x < x0 {
				return Prim{Rho: rhoL, Vx: vL, P: pL}
			}
			return Prim{Rho: rhoR, Vx: vR, P: pR}
		}
		st := sol.Sample((x - x0) / t)
		return Prim{Rho: st.Rho, Vx: st.V, P: st.P}
	}, nil
}

// ExactSodVt solves the 1-D Riemann problem with transverse velocities
// exactly (Pons–Martí–Müller class) and returns a profile sampler: the
// returned Prim carries the transverse velocity in Vy.
func ExactSodVt(left, right Prim, gamma, x0, t float64) (func(x float64) Prim, error) {
	sol, err := exact.SolveVt(
		exact.State2{Rho: left.Rho, Vx: left.Vx, Vt: left.Vy, P: left.P},
		exact.State2{Rho: right.Rho, Vx: right.Vx, Vt: right.Vy, P: right.P}, gamma)
	if err != nil {
		return nil, err
	}
	return func(x float64) Prim {
		if t <= 0 {
			if x < x0 {
				return left
			}
			return right
		}
		st := sol.Sample((x - x0) / t)
		return Prim{Rho: st.Rho, Vx: st.Vx, Vy: st.Vt, P: st.P}
	}, nil
}

// --- Heterogeneous execution -------------------------------------------

// Device re-exports the heterogeneous device model.
type Device = hetero.Device

// DeviceSpec re-exports the device performance spec.
type DeviceSpec = hetero.Spec

// Device presets and policies.
func HostCPU(cores int) DeviceSpec { return hetero.SpecHostCPU(cores) }
func GPU() DeviceSpec              { return hetero.SpecK20GPU() }
func StagedGPU() DeviceSpec        { return hetero.SpecK20GPUStaged() }

// SchedulePolicy selects static or dynamic strip scheduling.
type SchedulePolicy = hetero.Policy

// Scheduling policies.
const (
	StaticSchedule  = hetero.Static
	DynamicSchedule = hetero.Dynamic
)

// HeteroSim couples a Sim to a modelled device set.
type HeteroSim struct {
	*Sim
	Exec *hetero.Executor
}

// NewHeteroSim builds a simulation whose strip sweeps are scheduled over
// the given devices.
func NewHeteroSim(o Options, policy SchedulePolicy, specs ...DeviceSpec) (*HeteroSim, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("rhsc: heterogeneous run needs at least one device")
	}
	sim, err := NewSim(o)
	if err != nil {
		return nil, err
	}
	devs := make([]*hetero.Device, len(specs))
	for i, sp := range specs {
		d, err := hetero.NewDevice(sp)
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	ex, err := hetero.NewExecutor(policy, devs...)
	if err != nil {
		return nil, err
	}
	ex.Attach(sim.Solver)
	return &HeteroSim{Sim: sim, Exec: ex}, nil
}

// VirtualSeconds returns the modelled execution time so far.
func (h *HeteroSim) VirtualSeconds() float64 { return h.Exec.VirtualTime() }

// --- Distributed execution ---------------------------------------------

// ClusterOptions configures a distributed run.
type ClusterOptions struct {
	Ranks int
	// Px, Py optionally arrange the ranks in a 2-D process grid
	// (Px·Py = Ranks); zero values select 1-D slabs along x.
	Px, Py int
	// Async overlaps halo exchange with interior computation.
	Async bool
	// Network selects the virtual interconnect: "ideal" (default),
	// "gige", "ib".
	Network string
	// Steps > 0 runs fixed steps instead of the problem end time.
	Steps int
	// TEnd overrides the problem end time when > 0.
	TEnd float64
	// RankRates gives each rank its own modelled throughput (a
	// heterogeneous cluster); WeightedDecomp sizes subdomains
	// proportionally to those rates.
	RankRates      []float64
	WeightedDecomp bool
}

// ClusterResult re-exports the distributed run summary.
type ClusterResult = cluster.Result

// RunCluster executes the problem decomposed over ranks.
func RunCluster(o Options, co ClusterOptions) (*ClusterResult, error) {
	p, cfg, err := buildConfig(o)
	if err != nil {
		return nil, err
	}
	n := o.N
	if n <= 0 {
		n = 256
	}
	var net cluster.NetModel
	switch co.Network {
	case "", "ideal":
	case "gige":
		net = cluster.GigE()
	case "ib":
		net = cluster.Infiniband()
	default:
		return nil, fmt.Errorf("rhsc: unknown network %q", co.Network)
	}
	mode := cluster.Sync
	if co.Async {
		mode = cluster.Async
	}
	return cluster.Run(p, n, cfg, cluster.Options{
		Ranks: co.Ranks, Px: co.Px, Py: co.Py, Mode: mode, Net: net,
		Steps: co.Steps, TEnd: co.TEnd,
		RankRates: co.RankRates, WeightedDecomp: co.WeightedDecomp,
	})
}

// --- Adaptive mesh refinement ------------------------------------------

// AMRSim is an adaptively refined simulation.
type AMRSim struct {
	Problem *testprob.Problem
	Tree    *amr.Tree
}

// AMROptions configures the refinement policy on top of Options.
type AMROptions struct {
	// RootBlocks is the number of root blocks along x (default 8).
	RootBlocks int
	// BlockN is the cells per block side (default 16, must be even).
	BlockN int
	// MaxLevel is the deepest refinement level (default 2).
	MaxLevel int
	// RefineTol / CoarsenTol bound the relative-jump indicator.
	RefineTol  float64
	CoarsenTol float64
}

// NewAMRSim builds an adaptively refined simulation of the problem.
func NewAMRSim(o Options, ao AMROptions) (*AMRSim, error) {
	p, cfg, err := buildConfig(o)
	if err != nil {
		return nil, err
	}
	ac := amr.DefaultConfig(cfg)
	if ao.BlockN > 0 {
		ac.BlockN = ao.BlockN
	}
	if ao.MaxLevel > 0 {
		ac.MaxLevel = ao.MaxLevel
	}
	if ao.RefineTol > 0 {
		ac.RefineTol = ao.RefineTol
	}
	if ao.CoarsenTol > 0 {
		ac.CoarsenTol = ao.CoarsenTol
	}
	nb := ao.RootBlocks
	if nb <= 0 {
		nb = 8
	}
	tr, err := amr.NewTree(p, nb, ac)
	if err != nil {
		return nil, err
	}
	return &AMRSim{Problem: p, Tree: tr}, nil
}

// Run advances the tree to the problem's end time.
func (a *AMRSim) Run() error {
	_, err := a.Tree.Advance(a.Problem.TEnd)
	return err
}

// RunTo advances the tree to time t.
func (a *AMRSim) RunTo(t float64) error {
	_, err := a.Tree.Advance(t)
	return err
}

// At samples the solution at a point on the finest covering block.
func (a *AMRSim) At(x, y float64) Prim { return a.Tree.SampleAt(x, y) }

// Stats summarises the adaptive hierarchy.
func (a *AMRSim) Stats() (leaves, zones int, maxLevel int, zoneUpdates int64) {
	return a.Tree.NumLeaves(), a.Tree.TotalZones(), a.Tree.MaxLevelInUse(), a.Tree.ZoneUpdates()
}

// Checkpoint writes the full hierarchy (structure + conserved data).
func (a *AMRSim) Checkpoint(w io.Writer) error { return a.Tree.Save(w) }

// CheckpointExact writes the hierarchy with both conserved and
// primitive leaf fields, so RestoreAMR continues bit-identically.
func (a *AMRSim) CheckpointExact(w io.Writer) error { return a.Tree.SaveExact(w) }

// RestoreAMR rebuilds an adaptive simulation from a checkpoint written by
// AMRSim.Checkpoint. The numerical method is rebuilt from the options
// (which must use the same reconstruction ghost width).
func RestoreAMR(r io.Reader, o Options) (*AMRSim, error) {
	_, cfg, err := buildConfig(o)
	if err != nil {
		return nil, err
	}
	tr, err := amr.Load(r, cfg)
	if err != nil {
		return nil, err
	}
	return &AMRSim{Problem: tr.Problem(), Tree: tr}, nil
}

// --- Job running (serving layer) -----------------------------------------

// FaultSnapshot re-exports the resilience counters a job reports.
type FaultSnapshot = metrics.FaultSnapshot

// FaultInjection schedules one deterministic state corruption for chaos
// testing a guarded job: at committed step AtStep the conserved energy
// of Cell (negative = domain centre) is poisoned for Count consecutive
// attempts (NaN, or a finite tau<0 when Unphysical). InStage lands the
// poison mid-step through the solver's fault hook instead of after it.
// Step indices are absolute across preemption: a job parked at step 10
// and resumed keeps an AtStep=15 injection scheduled.
type FaultInjection struct {
	AtStep     int
	Count      int
	Cell       int
	Unphysical bool
	InStage    bool
}

// JobRunner is the uniform stepping surface the serving layer drives: a
// serial Sim under a resilience guard, or an AMRSim. One CFL-limited
// step at a time (clamped onto the job's end time), exact checkpoints
// for preemption, and a state fingerprint for round-trip verification.
// Use from one goroutine.
type JobRunner interface {
	// StepOnce advances one CFL-limited step clamped to TEnd and returns
	// the dt committed. Numerical faults in serial jobs are absorbed by
	// the guard (retry with halved dt, dissipative fallback) before an
	// error surfaces.
	StepOnce() (float64, error)
	// Time is the current solution time; TEnd the job's end time.
	Time() float64
	TEnd() float64
	// Steps counts committed steps, continuing across checkpoint/resume
	// (serial runners via SetStepBase, AMR trees persist their counter).
	Steps() int
	// SetStepBase aligns the committed-step counter of a resumed serial
	// runner with the parked run (no-op for AMR).
	SetStepBase(n int)
	// Zones is the current active interior zone count (AMR: over leaves).
	Zones() int
	// ZoneUpdates is the cumulative zones × RHS evaluations.
	ZoneUpdates() int64
	// CheckpointExact writes a snapshot from which ResumeJobRunner
	// continues bit-identically to an uninterrupted run.
	CheckpointExact(w io.Writer) error
	// Fingerprint hashes time and the full conserved + primitive state
	// (FNV-1a); equal fingerprints mean bitwise-identical solutions.
	Fingerprint() uint64
	// FaultStats reports the job's resilience counters (zero for AMR
	// jobs, which do not run under a guard).
	FaultStats() FaultSnapshot
	// InjectFault schedules a deterministic corruption (serial jobs
	// only; an error for AMR runners).
	InjectFault(f FaultInjection) error
	// WriteResult writes the job's deliverable: the primitive profile
	// (1-D) or slab (2-D) as CSV; AMR runners sample a root-resolution
	// centerline profile.
	WriteResult(w io.Writer) error
}

// NewJobRunner builds a runner from options: serial when ao is nil, AMR
// otherwise. tEnd ≤ 0 selects the problem's canonical end time.
func NewJobRunner(o Options, ao *AMROptions, tEnd float64) (JobRunner, error) {
	if ao != nil {
		a, err := NewAMRSim(o, *ao)
		if err != nil {
			return nil, err
		}
		return newAMRRunner(a, tEnd), nil
	}
	sim, err := NewSim(o)
	if err != nil {
		return nil, err
	}
	// Advance's first-step recovery, done once up front so StepOnce is
	// uniform; a resumed runner must NOT repeat it (see ResumeJobRunner).
	sim.Solver.RecoverPrimitives()
	return newSimRunner(sim, tEnd), nil
}

// ResumeJobRunner rebuilds a parked runner from a CheckpointExact
// snapshot; the continued run is bit-identical to one that was never
// parked. amrJob selects the checkpoint format; the options must match
// the parked job's.
func ResumeJobRunner(r io.Reader, o Options, amrJob bool, tEnd float64) (JobRunner, error) {
	if amrJob {
		a, err := RestoreAMR(r, o)
		if err != nil {
			return nil, err
		}
		return newAMRRunner(a, tEnd), nil
	}
	sim, err := Restore(r, o)
	if err != nil {
		return nil, err
	}
	// No recovery here: Restore filled W bit-exactly from the exact
	// checkpoint, and re-recovering would reseed the Newton iteration
	// off the uninterrupted trajectory.
	return newSimRunner(sim, tEnd), nil
}

// hashFloats folds a float64 slice into an FNV-1a digest.
func hashFloats(h io.Writer, vs []float64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}

// simRunner drives a serial Sim under a resilience guard.
type simRunner struct {
	sim   *Sim
	guard *resilience.Guard
	tEnd  float64
}

func newSimRunner(sim *Sim, tEnd float64) *simRunner {
	if tEnd <= 0 {
		tEnd = sim.Problem.TEnd
	}
	return &simRunner{
		sim:   sim,
		guard: resilience.NewGuard(sim.Solver, resilience.Policy{}),
		tEnd:  tEnd,
	}
}

func (r *simRunner) StepOnce() (float64, error) {
	s := r.sim.Solver
	dt := s.MaxDt()
	if s.Time()+dt > r.tEnd {
		dt = r.tEnd - s.Time()
	}
	if dt <= 0 {
		return 0, fmt.Errorf("rhsc: time step underflow at t=%v", s.Time())
	}
	return r.guard.Step(dt)
}

func (r *simRunner) Time() float64       { return r.sim.Time() }
func (r *simRunner) TEnd() float64       { return r.tEnd }
func (r *simRunner) Steps() int          { return r.guard.Steps() }
func (r *simRunner) SetStepBase(n int)   { r.guard.SetSteps(n) }
func (r *simRunner) ZoneUpdates() int64  { return r.sim.ZoneUpdates() }
func (r *simRunner) Zones() int {
	g := r.sim.Grid
	return g.Nx * g.Ny * g.Nz
}

func (r *simRunner) CheckpointExact(w io.Writer) error { return r.sim.CheckpointExact(w) }

func (r *simRunner) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.sim.Time()))
	h.Write(buf[:])
	hashFloats(h, r.sim.Grid.U.Raw())
	hashFloats(h, r.sim.Grid.W.Raw())
	return h.Sum64()
}

func (r *simRunner) FaultStats() FaultSnapshot { return r.guard.Stats.Snapshot() }

func (r *simRunner) InjectFault(f FaultInjection) error {
	r.guard.Inject = &resilience.Injector{
		AtStep: f.AtStep, Count: f.Count, Cell: f.Cell,
		Unphysical: f.Unphysical, InStage: f.InStage,
	}
	if f.Cell == 0 {
		r.guard.Inject.Cell = -1
	}
	return nil
}

func (r *simRunner) WriteResult(w io.Writer) error {
	if r.sim.Grid.Ny > 1 {
		return r.sim.WriteSlab(w)
	}
	return r.sim.WriteProfile(w)
}

// amrRunner drives an AMRSim.
type amrRunner struct {
	sim  *AMRSim
	tEnd float64
}

func newAMRRunner(a *AMRSim, tEnd float64) *amrRunner {
	if tEnd <= 0 {
		tEnd = a.Problem.TEnd
	}
	return &amrRunner{sim: a, tEnd: tEnd}
}

func (r *amrRunner) StepOnce() (float64, error) {
	t := r.sim.Tree
	dt := t.MaxDt()
	if t.Time()+dt > r.tEnd {
		dt = r.tEnd - t.Time()
	}
	if dt <= 0 {
		return 0, fmt.Errorf("rhsc: time step underflow at t=%v", t.Time())
	}
	return dt, t.Step(dt)
}

func (r *amrRunner) Time() float64      { return r.sim.Tree.Time() }
func (r *amrRunner) TEnd() float64      { return r.tEnd }
func (r *amrRunner) Steps() int         { return r.sim.Tree.Steps() }
func (r *amrRunner) SetStepBase(int)    {} // the tree persists its own counter
func (r *amrRunner) Zones() int         { return r.sim.Tree.TotalZones() }
func (r *amrRunner) ZoneUpdates() int64 { return r.sim.Tree.ZoneUpdates() }

func (r *amrRunner) CheckpointExact(w io.Writer) error { return r.sim.CheckpointExact(w) }
func (r *amrRunner) Fingerprint() uint64               { return r.sim.Tree.Fingerprint() }
func (r *amrRunner) FaultStats() FaultSnapshot {
	return FaultSnapshot{
		Troubled: r.sim.Tree.TroubledCells(),
		Repaired: r.sim.Tree.RepairedCells(),
	}
}

func (r *amrRunner) InjectFault(FaultInjection) error {
	return fmt.Errorf("rhsc: fault injection requires a serial job")
}

func (r *amrRunner) WriteResult(w io.Writer) error {
	t := r.sim.Tree
	nbx, _ := t.RootBlocks()
	// Root-resolution centerline sample: enough to plot the solution
	// without serialising the hierarchy.
	n := nbx * t.BlockSize()
	if n < 64 {
		n = 64
	}
	p := r.sim.Problem
	dx := (p.X1 - p.X0) / float64(n)
	ymid := 0.0
	if p.Dim >= 2 {
		ymid = 0.5 * (p.Y0 + p.Y1)
	}
	fmt.Fprintln(w, "x,rho,vx,vy,p")
	for i := 0; i < n; i++ {
		x := p.X0 + (float64(i)+0.5)*dx
		pr := t.SampleAt(x, ymid)
		if _, err := fmt.Fprintf(w, "%.12g,%.12g,%.12g,%.12g,%.12g\n",
			x, pr.Rho, pr.Vx, pr.Vy, pr.P); err != nil {
			return err
		}
	}
	return nil
}

// --- Newtonian baseline --------------------------------------------------

// NewtonSim is the classical (non-relativistic) Euler baseline on the
// same problems and grids, for relativistic-vs-Newtonian comparisons.
type NewtonSim struct {
	Problem *testprob.Problem
	Solver  *newton.Solver
	Grid    *grid.Grid
}

// NewNewtonSim builds the baseline simulation of a catalogued problem.
// Only the Problem, N, Recon, CFL and Gamma options are honoured (the
// baseline always uses the classical HLLC flux and an ideal gas).
func NewNewtonSim(o Options) (*NewtonSim, error) {
	name := o.Problem
	if name == "" {
		name = "sod"
	}
	p, err := testprob.ByName(name)
	if err != nil {
		return nil, err
	}
	cfg := newton.DefaultConfig()
	cfg.Gamma = p.Gamma
	if o.Gamma > 0 {
		cfg.Gamma = o.Gamma
	}
	if o.Recon != "" {
		r, err := recon.ByName(o.Recon)
		if err != nil {
			return nil, err
		}
		cfg.Recon = r
	}
	if o.CFL > 0 {
		cfg.CFL = o.CFL
	}
	n := o.N
	if n <= 0 {
		n = 256
	}
	g := p.NewGrid(n, cfg.Recon.Ghost())
	s, err := newton.New(g, cfg)
	if err != nil {
		return nil, err
	}
	s.InitFromPrim(p.Init)
	return &NewtonSim{Problem: p, Solver: s, Grid: g}, nil
}

// RunTo advances the baseline to time t.
func (s *NewtonSim) RunTo(t float64) error {
	_, err := s.Solver.Advance(t)
	return err
}

// At returns the primitive state at the cell nearest (x, y).
func (s *NewtonSim) At(x, y float64) Prim {
	g := s.Grid
	i := g.IBeg() + int((x-g.X0)/g.Dx)
	if i < g.IBeg() {
		i = g.IBeg()
	}
	if i >= g.IEnd() {
		i = g.IEnd() - 1
	}
	j := g.JBeg()
	if g.Ny > 1 {
		j = g.JBeg() + int((y-g.Y0)/g.Dy)
		if j < g.JBeg() {
			j = g.JBeg()
		}
		if j >= g.JEnd() {
			j = g.JEnd() - 1
		}
	}
	return g.W.GetPrim(g.Idx(i, j, g.KBeg()))
}

// --- Timing helper -------------------------------------------------------

// Mzups converts zone updates over a wall-clock duration into mega-zone
// updates per second.
func Mzups(zoneUpdates int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(zoneUpdates) / elapsed.Seconds() / 1e6
}
