package rhsc

import (
	"bytes"
	"strings"
	"testing"
)

// stepN commits n CFL-limited steps.
func stepN(t *testing.T, r JobRunner, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := r.StepOnce(); err != nil {
			t.Fatalf("step %d: %v", r.Steps(), err)
		}
	}
}

// TestJobRunnerSerialResumeBitwise pins the property the job server's
// preemption relies on: checkpoint → park → resume is invisible in the
// final state, bit for bit, for a serial guarded run.
func TestJobRunnerSerialResumeBitwise(t *testing.T) {
	opts := Options{Problem: "sod", N: 128}

	quiet, err := NewJobRunner(opts, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, quiet, 20)

	r1, err := NewJobRunner(opts, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, r1, 8)
	var snap bytes.Buffer
	if err := r1.CheckpointExact(&snap); err != nil {
		t.Fatal(err)
	}
	r2, err := ResumeJobRunner(&snap, opts, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2.SetStepBase(r1.Steps())
	if r2.Steps() != 8 {
		t.Fatalf("resumed step counter %d, want 8", r2.Steps())
	}
	if got, want := r2.Fingerprint(), r1.Fingerprint(); got != want {
		t.Fatalf("state changed across checkpoint round trip: %016x != %016x", got, want)
	}
	stepN(t, r2, 12)

	if r2.Time() != quiet.Time() {
		t.Fatalf("resumed time %v != uninterrupted %v (must be bitwise equal)",
			r2.Time(), quiet.Time())
	}
	if got, want := r2.Fingerprint(), quiet.Fingerprint(); got != want {
		t.Fatalf("resumed run diverged from uninterrupted: %016x != %016x", got, want)
	}

	// The deliverables agree byte for byte too.
	var a, b strings.Builder
	if err := quiet.WriteResult(&a); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteResult(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("resumed result CSV differs from uninterrupted")
	}
}

// TestJobRunnerAMRResumeBitwise parks an AMR run between regrids (step
// 10, RegridEvery 4) so the resumed tree must regrid at steps 12, 16,
// 20 exactly as the uninterrupted one does — the persisted step counter
// carries the cadence across the checkpoint.
func TestJobRunnerAMRResumeBitwise(t *testing.T) {
	opts := Options{Problem: "sod", N: 128}
	ao := &AMROptions{MaxLevel: 2, RootBlocks: 8}

	quiet, err := NewJobRunner(opts, ao, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, quiet, 20)

	r1, err := NewJobRunner(opts, ao, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, r1, 10)
	var snap bytes.Buffer
	if err := r1.CheckpointExact(&snap); err != nil {
		t.Fatal(err)
	}
	r2, err := ResumeJobRunner(&snap, opts, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Steps() != 10 {
		t.Fatalf("resumed tree step counter %d, want 10", r2.Steps())
	}
	if got, want := r2.Fingerprint(), r1.Fingerprint(); got != want {
		t.Fatalf("tree changed across checkpoint round trip: %016x != %016x", got, want)
	}
	stepN(t, r2, 10)

	if got, want := r2.Fingerprint(), quiet.Fingerprint(); got != want {
		t.Fatalf("resumed AMR run diverged from uninterrupted: %016x != %016x", got, want)
	}
	if r2.Zones() != quiet.Zones() {
		t.Fatalf("active zones diverged: %d != %d", r2.Zones(), quiet.Zones())
	}
}

// TestJobRunnerInjectionAcrossResume checks that absolute fault
// schedules survive preemption: an injection at step 12 lands in the
// resumed segment (parked at 8) exactly as in an uninterrupted run.
func TestJobRunnerInjectionAcrossResume(t *testing.T) {
	opts := Options{Problem: "sod", N: 64}
	inject := FaultInjection{AtStep: 12, Count: 1}

	quiet, err := NewJobRunner(opts, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := quiet.InjectFault(inject); err != nil {
		t.Fatal(err)
	}
	stepN(t, quiet, 16)
	if quiet.FaultStats().Injected != 1 {
		t.Fatalf("uninterrupted run injected %d faults, want 1", quiet.FaultStats().Injected)
	}

	r1, err := NewJobRunner(opts, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.InjectFault(inject); err != nil {
		t.Fatal(err)
	}
	stepN(t, r1, 8)
	if r1.FaultStats().Injected != 0 {
		t.Fatalf("fault fired before its step: %+v", r1.FaultStats())
	}
	var snap bytes.Buffer
	if err := r1.CheckpointExact(&snap); err != nil {
		t.Fatal(err)
	}
	r2, err := ResumeJobRunner(&snap, opts, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2.SetStepBase(r1.Steps())
	if err := r2.InjectFault(inject); err != nil {
		t.Fatal(err)
	}
	stepN(t, r2, 8)
	if r2.FaultStats().Injected != 1 {
		t.Fatalf("resumed run injected %d faults, want 1 (absolute schedule)",
			r2.FaultStats().Injected)
	}
}

// TestJobRunnerAMRRejectsInjection documents the serial-only contract.
func TestJobRunnerAMRRejectsInjection(t *testing.T) {
	r, err := NewJobRunner(Options{Problem: "sod", N: 128},
		&AMROptions{MaxLevel: 1, RootBlocks: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InjectFault(FaultInjection{AtStep: 1}); err == nil {
		t.Fatal("AMR runner accepted a fault injection")
	}
}
