package rhsc_test

// Godoc examples: runnable documentation of the public API, executed by
// `go test` like any other test.

import (
	"fmt"
	"log"
	"math"

	"rhsc"
)

// ExampleNewSim runs the relativistic Sod tube and reports the post-shock
// plateau velocity against the exact Riemann solution.
func ExampleNewSim() {
	sim, err := rhsc.NewSim(rhsc.Options{Problem: "sod", N: 200})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.RunTo(0.3); err != nil {
		log.Fatal(err)
	}
	exact, err := rhsc.ExactSod(10, 0, 13.33, 1, 0, 1e-6, 5.0/3.0, 0.5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	got := sim.At(0.6, 0).Vx
	want := exact(0.6).Vx
	fmt.Printf("plateau matches exact: %v\n", math.Abs(got-want) < 0.02)
	// Output: plateau matches exact: true
}

// ExampleNewAMRSim shows the adaptive hierarchy refining around the Sod
// discontinuity.
func ExampleNewAMRSim() {
	sim, err := rhsc.NewAMRSim(rhsc.Options{Problem: "sod"}, rhsc.AMROptions{MaxLevel: 2})
	if err != nil {
		log.Fatal(err)
	}
	_, _, maxLevel, _ := sim.Stats()
	fmt.Printf("refined to level %d\n", maxLevel)
	// Output: refined to level 2
}

// ExampleRunCluster runs a rank-decomposed simulation with overlapped
// halo exchange on a modelled InfiniBand network.
func ExampleRunCluster() {
	res, err := rhsc.RunCluster(
		rhsc.Options{Problem: "sod", N: 256},
		rhsc.ClusterOptions{Ranks: 4, Async: true, Network: "ib", Steps: 5},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranks=%d steps=%d scaled=%v\n", res.Ranks, res.Steps, res.VirtualTime > 0)
	// Output: ranks=4 steps=5 scaled=true
}

// ExampleNewHeteroSim schedules the solver's strips across a CPU socket
// and a modelled accelerator with a dynamic work queue.
func ExampleNewHeteroSim() {
	sim, err := rhsc.NewHeteroSim(
		rhsc.Options{Problem: "blast2d", N: 48},
		rhsc.DynamicSchedule,
		rhsc.HostCPU(4), rhsc.GPU(),
	)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sim.Step(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("heterogeneous virtual time accumulated: %v\n", sim.VirtualSeconds() > 0)
	// Output: heterogeneous virtual time accumulated: true
}

// ExampleSim_EnableTracer advects a passive composition scalar through
// the Sod tube: its interface rides the contact discontinuity.
func ExampleSim_EnableTracer() {
	sim, err := rhsc.NewSim(rhsc.Options{Problem: "sod", N: 200})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.EnableTracer(func(x, _, _ float64) float64 {
		if x < 0.5 {
			return 1
		}
		return 0
	}); err != nil {
		log.Fatal(err)
	}
	if err := sim.RunTo(0.3); err != nil {
		log.Fatal(err)
	}
	// Contact at 0.5 + 0.714*0.3 ~ 0.714; shock ahead at ~0.748.
	fmt.Printf("behind contact: %.0f  ahead of contact: %.0f\n",
		sim.TracerAt(0.65, 0), sim.TracerAt(0.73, 0))
	// Output: behind contact: 1  ahead of contact: 0
}

// ExampleExactSod samples the exact solution of Martí & Müller's
// Problem 1 in the star region.
func ExampleExactSod() {
	sample, err := rhsc.ExactSod(10, 0, 13.33, 1, 0, 1e-6, 5.0/3.0, 0.5, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	p := sample(0.7)
	fmt.Printf("star velocity %.3f\n", p.Vx)
	// Output: star velocity 0.714
}
