package rhsc

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestProblemsCatalog(t *testing.T) {
	ps := Problems()
	if len(ps) < 5 {
		t.Fatalf("catalog too small: %v", ps)
	}
	found := false
	for _, p := range ps {
		if p == "sod" {
			found = true
		}
	}
	if !found {
		t.Error("sod missing from catalog")
	}
}

func TestNewSimDefaults(t *testing.T) {
	s, err := NewSim(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Problem.Name != "sod" || s.Grid.Nx != 256 {
		t.Errorf("defaults: problem %s N %d", s.Problem.Name, s.Grid.Nx)
	}
}

func TestNewSimValidation(t *testing.T) {
	bad := []Options{
		{Problem: "nope"},
		{Recon: "nope"},
		{Riemann: "nope"},
		{Integrator: "rk9"},
	}
	for _, o := range bad {
		if _, err := NewSim(o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

func TestQuickstartFlow(t *testing.T) {
	s, err := NewSim(Options{Problem: "sod", N: 128, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunTo(0.2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Time()-0.2) > 1e-12 {
		t.Errorf("time = %v", s.Time())
	}
	// Plateau velocity approaches the exact v* ~ 0.714 somewhere.
	sampler, err := ExactSod(10, 0, 13.33, 1, 0, 1e-6, 5.0/3.0, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	x := 0.62
	got := s.At(x, 0)
	want := sampler(x)
	if math.Abs(got.Vx-want.Vx) > 0.05 {
		t.Errorf("v(%v) = %v, exact %v", x, got.Vx, want.Vx)
	}
	var buf bytes.Buffer
	if err := s.WriteProfile(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,rho") {
		t.Errorf("profile header: %q", buf.String()[:20])
	}
	if s.ZoneUpdates() == 0 {
		t.Error("no zone updates recorded")
	}
}

func TestStepAndMass(t *testing.T) {
	s, err := NewSim(Options{Problem: "smooth-wave", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Mass()
	dt, err := s.Step()
	if err != nil || dt <= 0 {
		t.Fatalf("step: dt=%v err=%v", dt, err)
	}
	if rel := math.Abs(s.Mass()-m0) / m0; rel > 1e-13 {
		t.Errorf("mass drift %v in one periodic step", rel)
	}
}

func TestCheckpointRestore(t *testing.T) {
	o := Options{Problem: "sod", N: 64}
	s, err := NewSim(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunTo(0.1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Time()-0.1) > 1e-12 {
		t.Errorf("restored time %v", r.Time())
	}
	// Continue both and compare.
	if err := s.RunTo(0.15); err != nil {
		t.Fatal(err)
	}
	if err := r.RunTo(0.15); err != nil {
		t.Fatal(err)
	}
	// The restored run re-derives primitives from the conserved snapshot
	// with fresh Newton guesses, so agreement is to solver tolerance, not
	// bitwise.
	for _, x := range []float64{0.3, 0.5, 0.7} {
		a, b := s.At(x, 0), r.At(x, 0)
		if math.Abs(a.Rho-b.Rho) > 1e-9*(1+a.Rho) ||
			math.Abs(a.P-b.P) > 1e-9*(1+a.P) ||
			math.Abs(a.Vx-b.Vx) > 1e-9 {
			t.Errorf("restored run diverged at %v: %+v vs %+v", x, a, b)
		}
	}
}

func TestHybridEOSOption(t *testing.T) {
	s, err := NewSim(Options{Problem: "blast", N: 64, HybridK: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunTo(0.05); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorAndVTK(t *testing.T) {
	s, err := NewSim(Options{Problem: "blast2d", N: 24})
	if err != nil {
		t.Fatal(err)
	}
	m := s.AttachMonitor(1)
	for i := 0; i < 3; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.Rows()) != 3 {
		t.Errorf("monitor rows = %d", len(m.Rows()))
	}
	var buf bytes.Buffer
	if err := s.WriteVTK(&buf, "blast"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "STRUCTURED_POINTS") {
		t.Error("VTK output malformed")
	}
}

func TestClusterProcessGrid(t *testing.T) {
	res, err := RunCluster(Options{Problem: "blast2d", N: 32},
		ClusterOptions{Ranks: 4, Px: 2, Py: 2, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2 {
		t.Errorf("steps = %d", res.Steps)
	}
}

func TestTaubMathewsOption(t *testing.T) {
	s, err := NewSim(Options{Problem: "blast", N: 64, TaubMathews: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunTo(0.05); err != nil {
		t.Fatal(err)
	}
}

func TestHeteroSim(t *testing.T) {
	h, err := NewHeteroSim(Options{Problem: "blast2d", N: 48},
		DynamicSchedule, HostCPU(2), GPU())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := h.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if h.VirtualSeconds() <= 0 {
		t.Error("no virtual time")
	}
	if _, err := NewHeteroSim(Options{}, StaticSchedule); err == nil {
		t.Error("no devices accepted")
	}
}

func TestRunCluster(t *testing.T) {
	res, err := RunCluster(Options{Problem: "sod", N: 64},
		ClusterOptions{Ranks: 2, Steps: 3, Network: "ib", Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 3 || res.VirtualTime <= 0 {
		t.Errorf("result %+v", res)
	}
	if _, err := RunCluster(Options{}, ClusterOptions{Ranks: 2, Network: "wifi"}); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestAMRSim(t *testing.T) {
	a, err := NewAMRSim(Options{Problem: "sod"}, AMROptions{MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RunTo(0.1); err != nil {
		t.Fatal(err)
	}
	leaves, zones, maxLevel, updates := a.Stats()
	if leaves == 0 || zones == 0 || maxLevel != 2 || updates == 0 {
		t.Errorf("stats: %d %d %d %d", leaves, zones, maxLevel, updates)
	}
	if p := a.At(0.1, 0); p.Rho <= 0 {
		t.Errorf("sample %+v", p)
	}
}

func TestAMRCheckpointRestore(t *testing.T) {
	o := Options{Problem: "sod"}
	a, err := NewAMRSim(o, AMROptions{MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RunTo(0.05); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreAMR(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Problem.Name != "sod" {
		t.Errorf("restored problem %q", r.Problem.Name)
	}
	al, _, _, _ := a.Stats()
	rl, _, _, _ := r.Stats()
	if al != rl {
		t.Errorf("leaves %d vs %d", rl, al)
	}
	if err := r.RunTo(0.1); err != nil {
		t.Fatal(err)
	}
}

func TestExactSodT0(t *testing.T) {
	f, err := ExactSod(10, 0, 13.33, 1, 0, 1e-6, 5.0/3.0, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f(0.2).Rho != 10 || f(0.8).Rho != 1 {
		t.Error("t=0 sampler wrong")
	}
}

func TestSimTracer(t *testing.T) {
	s, err := NewSim(Options{Problem: "sod", N: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableTracer(func(x, _, _ float64) float64 {
		if x < 0.5 {
			return 1
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunTo(0.2); err != nil {
		t.Fatal(err)
	}
	if got := s.TracerAt(0.1, 0); got < 0.99 {
		t.Errorf("upstream tracer %v", got)
	}
	if got := s.TracerAt(0.9, 0); got > 0.01 {
		t.Errorf("downstream tracer %v", got)
	}
}

func TestExactSodVt(t *testing.T) {
	f, err := ExactSodVt(
		Prim{Rho: 10, Vy: 0.4, P: 13.33},
		Prim{Rho: 1, Vy: -0.3, P: 0.1},
		5.0/3.0, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Far fields untouched; star region carries a v_t jump at the contact.
	if p := f(0.01); p.Vy != 0.4 {
		t.Errorf("left far field %+v", p)
	}
	if p := f(0.99); p.Vy != -0.3 {
		t.Errorf("right far field %+v", p)
	}
	if p := f(0.3); math.IsNaN(p.Rho) || p.Rho <= 0 {
		t.Errorf("fan sample %+v", p)
	}
	// t = 0 returns the initial data.
	f0, _ := ExactSodVt(Prim{Rho: 2, P: 1}, Prim{Rho: 1, P: 1}, 5.0/3.0, 0.5, 0)
	if f0(0.2).Rho != 2 || f0(0.8).Rho != 1 {
		t.Error("t=0 sampler wrong")
	}
}

func TestSimRunAndSlab(t *testing.T) {
	s, err := NewSim(Options{Problem: "smooth-wave", N: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil { // to the problem's TEnd
		t.Fatal(err)
	}
	if math.Abs(s.Time()-s.Problem.TEnd) > 1e-12 {
		t.Errorf("Run stopped at %v", s.Time())
	}
	s2, err := NewSim(Options{Problem: "blast2d", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s2.WriteSlab(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,y,rho") {
		t.Errorf("slab header %q", buf.String()[:12])
	}
	// 2-D At and TracerAt lookups (in and out of range).
	if p := s2.At(0, 0); p.Rho <= 0 {
		t.Errorf("At = %+v", p)
	}
	if p := s2.At(99, -99); p.Rho <= 0 {
		t.Errorf("clamped At = %+v", p)
	}
	if v := s2.TracerAt(0, 0); v != 0 {
		t.Errorf("tracer disabled but %v", v)
	}
	if err := s2.EnableTracer(func(x, y, _ float64) float64 { return 0.5 }); err != nil {
		t.Fatal(err)
	}
	if v := s2.TracerAt(0.2, -0.7); v != 0.5 {
		t.Errorf("TracerAt = %v", v)
	}
	var img bytes.Buffer
	if err := s2.WritePNG(&img, true, 2); err != nil {
		t.Fatal(err)
	}
	if img.Len() == 0 || !strings.HasPrefix(img.String(), "\x89PNG") {
		t.Error("PNG output malformed")
	}
}

func TestNewtonSimFacade(t *testing.T) {
	n, err := NewNewtonSim(Options{Problem: "sod", N: 64, Recon: "plm-minmod", CFL: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RunTo(0.1); err != nil {
		t.Fatal(err)
	}
	if p := n.At(0.1, 0); p.Rho <= 0 {
		t.Errorf("At = %+v", p)
	}
	if _, err := NewNewtonSim(Options{Problem: "nope"}); err == nil {
		t.Error("unknown problem accepted")
	}
	if _, err := NewNewtonSim(Options{Recon: "nope"}); err == nil {
		t.Error("unknown recon accepted")
	}
}

func TestAMRRunFacade(t *testing.T) {
	a, err := NewAMRSim(Options{Problem: "sod"},
		AMROptions{MaxLevel: 1, BlockN: 8, RootBlocks: 4, RefineTol: 0.1, CoarsenTol: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Tree.Time() < a.Problem.TEnd-1e-12 {
		t.Errorf("Run stopped at %v", a.Tree.Time())
	}
}

func TestDeviceSpecHelpers(t *testing.T) {
	if StagedGPU().Resident {
		t.Error("staged GPU marked resident")
	}
	if !GPU().Resident {
		t.Error("GPU not resident")
	}
	if HostCPU(0).Workers < 1 {
		t.Error("HostCPU floor")
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore(strings.NewReader("junk"), Options{}); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	if _, err := Restore(strings.NewReader(""), Options{Problem: "nope"}); err == nil {
		t.Error("bad options accepted")
	}
	if _, err := RestoreAMR(strings.NewReader("junk"), Options{}); err == nil {
		t.Error("garbage AMR checkpoint accepted")
	}
	if _, err := RestoreAMR(strings.NewReader(""), Options{Recon: "nope"}); err == nil {
		t.Error("bad AMR options accepted")
	}
}

func TestMzups(t *testing.T) {
	if got := Mzups(2_000_000, time.Second); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mzups = %v", got)
	}
	if Mzups(100, 0) != 0 {
		t.Error("degenerate duration")
	}
}
