module rhsc

go 1.22
