#!/usr/bin/env bash
# Smoke test for the rhscd daemon: boot it on a free port, submit a
# quickstart sod job over the HTTP API, poll it to completion, fetch
# the CSV result, then SIGTERM the daemon and require a clean drain
# (exit 0). Run from the repository root; needs only go and curl.
set -euo pipefail

ADDR="127.0.0.1:18080"
SPOOL="$(mktemp -d)"
LOG="$(mktemp)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$SPOOL" "$LOG" rhscd-smoke' EXIT

go build -o rhscd-smoke ./cmd/rhscd
./rhscd-smoke -addr "$ADDR" -workers 2 -spool "$SPOOL" >"$LOG" 2>&1 &
PID=$!

# Wait for the daemon to listen.
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/v1/metrics" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -sf "http://$ADDR/v1/metrics" >/dev/null || { cat "$LOG"; echo "daemon never came up"; exit 1; }

# Submit a quickstart job and remember its id.
SUBMIT=$(curl -sf -X POST -d '{"problem":"sod","n":128,"max_steps":40}' "http://$ADDR/v1/jobs")
echo "submit: $SUBMIT"
ID=$(echo "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "no job id in response"; exit 1; }

# Poll until terminal.
STATE=""
for _ in $(seq 1 100); do
    STATUS=$(curl -sf "http://$ADDR/v1/jobs/$ID")
    STATE=$(echo "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done|failed|rejected) break ;;
    esac
    sleep 0.1
done
echo "final state: $STATE"
[ "$STATE" = "done" ] || { echo "$STATUS"; cat "$LOG"; exit 1; }

# The result endpoint serves the CSV profile. (Buffer the body before
# head: with pipefail, head closing the pipe early would fail curl.)
RESULT=$(curl -sf "http://$ADDR/v1/jobs/$ID/result")
echo "$RESULT" | head -1 | grep -q '^x,' || {
    echo "result endpoint did not serve a CSV profile"; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "daemon exited nonzero on SIGTERM:"; cat "$LOG"; exit 1
fi
cat "$LOG"
echo "serve smoke test passed"
