package rhsc

// BenchmarkStep family: the steady-state step pipeline (CFL estimate +
// one full RK2 step) on representative configurations. These are the
// benchmarks behind BENCH_step.json (see cmd/benchsuite stepbench and
// docs/PERFORMANCE.md): each iteration performs exactly what the
// production loop performs per step, so ns/op ÷ zones gives the
// ns/zone-update figure the perf trajectory is gated on. Run with:
//
//	go test -bench=BenchmarkStep -benchmem
import (
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/testprob"
)

// stepBench measures dt := MaxDt(); Step(dt) per iteration — the
// steady-state unit of the production loop (Advance, cluster.Run,
// damr.Run all follow this shape).
func stepBench(b *testing.B, p *testprob.Problem, n int, cfg core.Config) {
	b.Helper()
	s := newSolver(b, p, n, cfg)
	s.RecoverPrimitives()
	// Warm the pipeline (scratch pools, CFL cache) out of the timed region.
	for i := 0; i < 2; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			b.Fatal(err)
		}
	}
	zones := s.G.Nx * s.G.Ny * s.G.Nz
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt := s.MaxDt()
		if err := s.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(zones), "zones/op")
}

func BenchmarkStep(b *testing.B) {
	b.Run("sod1d-generic", func(b *testing.B) {
		stepBench(b, testprob.Sod, 1024, core.DefaultConfig())
	})
	b.Run("blast2d-generic", func(b *testing.B) {
		stepBench(b, testprob.Blast2D, 128, core.DefaultConfig())
	})
	b.Run("blast2d-fused", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Fused = true
		stepBench(b, testprob.Blast2D, 128, cfg)
	})
	// The 3-D fused configuration is the headline number recorded in
	// BENCH_step.json.
	b.Run("blast3d-generic", func(b *testing.B) {
		stepBench(b, testprob.Blast3D, 48, core.DefaultConfig())
	})
	b.Run("blast3d-fused", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Fused = true
		stepBench(b, testprob.Blast3D, 48, cfg)
	})
	// The resilience fallback scheme (PCM + HLL), generic vs fused.
	b.Run("blast3d-pcmhll-generic", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Recon = recon.PCM{}
		cfg.Riemann = riemann.HLL{}
		stepBench(b, testprob.Blast3D, 48, cfg)
	})
	b.Run("blast3d-pcmhll-fused", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Recon = recon.PCM{}
		cfg.Riemann = riemann.HLL{}
		cfg.Fused = true
		stepBench(b, testprob.Blast3D, 48, cfg)
	})
}
