package cluster

import (
	"fmt"
	"math"
	"sync"
	"time"

	"rhsc/internal/core"
	"rhsc/internal/grid"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// Mode selects how communication is modelled against computation.
type Mode int

// Communication modes.
const (
	// Sync is the bulk-synchronous baseline: every stage waits for its
	// halos before computing anything.
	Sync Mode = iota
	// Async overlaps halo transit with the interior sweep; only the
	// boundary strips wait for the halos (futurized exchange).
	Async
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Sync {
		return "sync"
	}
	return "async"
}

// Options configures a distributed run.
type Options struct {
	// Ranks is the total rank count. The process grid is Px × Py; when
	// both are zero the decomposition is 1-D along x (Px = Ranks).
	Ranks int
	// Px, Py arrange the ranks in a 2-D process grid (Px·Py must equal
	// Ranks). Py > 1 requires a 2-D problem.
	Px, Py int
	Mode   Mode
	Net    NetModel
	// ZoneRate is the modelled per-rank compute throughput
	// (zone-stage-updates per virtual second). <= 0 selects 16e6 (a
	// 4-core 2015 node).
	ZoneRate float64
	// RankRates, when non-empty, gives every rank its own throughput
	// (len must equal Ranks): a heterogeneous cluster of plain and
	// accelerated nodes. Requires a 1-D decomposition (Py == 1).
	RankRates []float64
	// WeightedDecomp splits the domain proportionally to RankRates
	// instead of evenly, so faster nodes get more zones. Only meaningful
	// with RankRates.
	WeightedDecomp bool
	// Steps, when > 0, runs exactly that many fixed steps (performance
	// experiments); otherwise the run integrates to the problem's TEnd.
	Steps int
	// TEnd overrides the problem's end time when > 0 (and Steps == 0).
	TEnd float64
}

// Result summarises a distributed run.
type Result struct {
	Ranks       int
	Mode        Mode
	Steps       int
	RealTime    time.Duration
	VirtualTime float64 // max over ranks of the per-rank virtual clock
	// Rho is the gathered global density profile along the first interior
	// row (validation); only meaningful lengths for 1-D problems.
	Rho []float64
	// TotalMass is the summed conserved mass across ranks.
	TotalMass float64
}

// halo tags: direction-encoded so messages of different faces cannot mix
// even when one pair of ranks shares several faces (small periodic
// grids).
const (
	tagHaloToLeft  = 100 // data travelling to the left (−x) neighbour
	tagHaloToRight = 101
	tagHaloToDown  = 102 // data travelling to the lower (−y) neighbour
	tagHaloToUp    = 103
)

// rankState carries one rank's solver plus its virtual clock.
type rankState struct {
	comm *Comm
	g    *grid.Grid
	opts Options
	// Neighbour ranks; −1 when the face is a physical boundary.
	left, right, down, up int

	clock     float64
	firstSync bool    // the initial exchange (post-init recovery) is not charged
	rate      float64 // this rank's compute throughput (heterogeneous clusters)

	// Pooled halo send buffers, two per face alternated by exchange
	// parity. Send hands the slice to the peer without copying, so a
	// buffer may only be repacked once the peer has provably finished
	// reading it: the peer posts its phase-s+1 sends only after its
	// phase-s receives (which read our phase-s buffer), and we repack
	// the same-parity buffer only after receiving that s+1 message —
	// single-buffer reuse at s+1 would race. Faces: 0=left 1=right
	// 2=down 3=up; buffers are grown on first use, then stable.
	sendBuf [4][2][]float64
	phase   int
}

// packXHalo packs ng columns starting at column i0 (full j,k extent)
// into buf, grown only when too small; every element is overwritten.
func packXHalo(g *grid.Grid, w *state.Fields, i0 int, buf []float64) []float64 {
	ng := g.Ng
	need := ng * g.TotalY * g.TotalZ * state.NComp
	if cap(buf) < need {
		buf = make([]float64, need)
	}
	out := buf[:need]
	p := 0
	for c := 0; c < state.NComp; c++ {
		for k := 0; k < g.TotalZ; k++ {
			for j := 0; j < g.TotalY; j++ {
				base := (k*g.TotalY + j) * g.TotalX
				for i := i0; i < i0+ng; i++ {
					out[p] = w.Comp[c][base+i]
					p++
				}
			}
		}
	}
	return out
}

// unpackXHalo writes a packed x-halo into columns starting at i0.
func unpackXHalo(g *grid.Grid, w *state.Fields, i0 int, data []float64) {
	ng := g.Ng
	p := 0
	for c := 0; c < state.NComp; c++ {
		for k := 0; k < g.TotalZ; k++ {
			for j := 0; j < g.TotalY; j++ {
				base := (k*g.TotalY + j) * g.TotalX
				for i := i0; i < i0+ng; i++ {
					w.Comp[c][base+i] = data[p]
					p++
				}
			}
		}
	}
}

// packYHalo packs ng rows starting at row j0 (full i,k extent) into
// buf, grown only when too small; every element is overwritten.
func packYHalo(g *grid.Grid, w *state.Fields, j0 int, buf []float64) []float64 {
	ng := g.Ng
	need := ng * g.TotalX * g.TotalZ * state.NComp
	if cap(buf) < need {
		buf = make([]float64, need)
	}
	out := buf[:need]
	p := 0
	for c := 0; c < state.NComp; c++ {
		for k := 0; k < g.TotalZ; k++ {
			for j := j0; j < j0+ng; j++ {
				base := (k*g.TotalY + j) * g.TotalX
				copy(out[p:p+g.TotalX], w.Comp[c][base:base+g.TotalX])
				p += g.TotalX
			}
		}
	}
	return out
}

// unpackYHalo writes a packed y-halo into rows starting at j0.
func unpackYHalo(g *grid.Grid, w *state.Fields, j0 int, data []float64) {
	ng := g.Ng
	p := 0
	for c := 0; c < state.NComp; c++ {
		for k := 0; k < g.TotalZ; k++ {
			for j := j0; j < j0+ng; j++ {
				base := (k*g.TotalY + j) * g.TotalX
				copy(w.Comp[c][base:base+g.TotalX], data[p:p+g.TotalX])
				p += g.TotalX
			}
		}
	}
}

// exchange is the HaloExchange hook: real data exchange plus virtual-time
// accounting for the stage.
//
// Corner note: the packed faces span the full transverse extent including
// ghost rows/columns, whose corner values may be one stage stale on
// External×External corners. The sweeps never read corner ghosts (each
// 1-D strip covers interior rows only), so this is harmless and saves a
// second communication round.
func (r *rankState) exchange(w *state.Fields) {
	g := r.g
	ng := g.Ng

	// Post all sends with the current virtual timestamp, packing into
	// this parity's pooled buffers (see rankState.sendBuf).
	par := r.phase & 1
	r.phase++
	if r.left >= 0 {
		r.sendBuf[0][par] = packXHalo(g, w, g.IBeg(), r.sendBuf[0][par])
		r.comm.Send(r.left, tagHaloToLeft, r.sendBuf[0][par], r.clock)
	}
	if r.right >= 0 {
		r.sendBuf[1][par] = packXHalo(g, w, g.IEnd()-ng, r.sendBuf[1][par])
		r.comm.Send(r.right, tagHaloToRight, r.sendBuf[1][par], r.clock)
	}
	if r.down >= 0 {
		r.sendBuf[2][par] = packYHalo(g, w, g.JBeg(), r.sendBuf[2][par])
		r.comm.Send(r.down, tagHaloToDown, r.sendBuf[2][par], r.clock)
	}
	if r.up >= 0 {
		r.sendBuf[3][par] = packYHalo(g, w, g.JEnd()-ng, r.sendBuf[3][par])
		r.comm.Send(r.up, tagHaloToUp, r.sendBuf[3][par], r.clock)
	}

	// Virtual compute costs of this stage: boundary work is the ghost-
	// adjacent band of each external face.
	zones := float64(g.Nx * g.Ny * g.Nz)
	rate := r.rate
	dims := float64(g.Dim())
	full := zones * dims / rate
	bzones := 0
	if r.left >= 0 {
		bzones += ng * g.Ny * g.Nz
	}
	if r.right >= 0 {
		bzones += ng * g.Ny * g.Nz
	}
	if r.down >= 0 {
		bzones += ng * g.Nx * g.TotalZ
	}
	if r.up >= 0 {
		bzones += ng * g.Nx * g.TotalZ
	}
	boundary := float64(bzones) * dims / rate
	if boundary > full {
		boundary = full
	}
	interior := full - boundary

	charge := !r.firstSync
	r.firstSync = false

	if charge && r.opts.Mode == Async {
		// Interior computes while halos are in flight.
		r.clock += interior
	}

	recvOne := func(src, tag int) {
		data, stamp := mustRecv(r.comm.Recv(src, tag))
		switch tag {
		case tagHaloToRight: // arrived from the left neighbour
			unpackXHalo(g, w, 0, data)
		case tagHaloToLeft:
			unpackXHalo(g, w, g.IEnd(), data)
		case tagHaloToUp: // arrived from the lower neighbour
			unpackYHalo(g, w, 0, data)
		case tagHaloToDown:
			unpackYHalo(g, w, g.JEnd(), data)
		}
		if charge {
			avail := stamp + r.opts.Net.Cost(len(data)*8)
			if avail > r.clock {
				r.clock = avail
			}
		}
	}
	if r.left >= 0 {
		recvOne(r.left, tagHaloToRight)
	}
	if r.right >= 0 {
		recvOne(r.right, tagHaloToLeft)
	}
	if r.down >= 0 {
		recvOne(r.down, tagHaloToUp)
	}
	if r.up >= 0 {
		recvOne(r.up, tagHaloToDown)
	}

	if charge {
		if r.opts.Mode == Async {
			r.clock += boundary
		} else {
			r.clock += full
		}
	}
}

// Run executes the problem distributed over a process grid at global
// resolution n (cells along x; 2-D problems scale y by the domain
// aspect). It returns rank 0's gathered result.
func Run(p *testprob.Problem, n int, cfg core.Config, opts Options) (*Result, error) {
	if opts.Ranks < 1 {
		return nil, fmt.Errorf("cluster: need >= 1 rank, got %d", opts.Ranks)
	}
	if opts.Px == 0 && opts.Py == 0 {
		opts.Px, opts.Py = opts.Ranks, 1
	}
	if opts.Px < 1 || opts.Py < 1 || opts.Px*opts.Py != opts.Ranks {
		return nil, fmt.Errorf("cluster: process grid %dx%d does not match %d ranks",
			opts.Px, opts.Py, opts.Ranks)
	}
	if opts.Py > 1 && p.Dim < 2 {
		return nil, fmt.Errorf("cluster: Py=%d needs a 2-D problem", opts.Py)
	}
	if opts.ZoneRate <= 0 {
		opts.ZoneRate = 16e6
	}
	if len(opts.RankRates) > 0 {
		if len(opts.RankRates) != opts.Ranks {
			return nil, fmt.Errorf("cluster: %d rank rates for %d ranks", len(opts.RankRates), opts.Ranks)
		}
		if opts.Py != 1 {
			return nil, fmt.Errorf("cluster: RankRates requires a 1-D decomposition")
		}
		for i, r := range opts.RankRates {
			if r <= 0 {
				return nil, fmt.Errorf("cluster: rank %d rate %v must be positive", i, r)
			}
		}
	}
	ng := cfg.Recon.Ghost()

	// Column ranges per rank along x: even by default, proportional to
	// RankRates under WeightedDecomp.
	starts := make([]int, opts.Px+1)
	if opts.WeightedDecomp && len(opts.RankRates) > 0 {
		total := 0.0
		for _, r := range opts.RankRates {
			total += r
		}
		acc := 0.0
		for i := 0; i < opts.Px; i++ {
			starts[i] = int(math.Round(acc / total * float64(n)))
			acc += opts.RankRates[i]
		}
		starts[opts.Px] = n
	} else {
		if n%opts.Px != 0 {
			return nil, fmt.Errorf("cluster: global Nx %d not divisible by Px=%d", n, opts.Px)
		}
		for i := 0; i <= opts.Px; i++ {
			starts[i] = i * (n / opts.Px)
		}
	}
	for i := 0; i < opts.Px; i++ {
		if starts[i+1]-starts[i] < ng {
			return nil, fmt.Errorf("cluster: rank %d gets %d cells, below ghost width %d",
				i, starts[i+1]-starts[i], ng)
		}
	}
	nyGlob := p.Geometry(n, ng).Ny
	if nyGlob%opts.Py != 0 {
		return nil, fmt.Errorf("cluster: global Ny %d not divisible by Py=%d", nyGlob, opts.Py)
	}
	nyLoc := nyGlob / opts.Py
	if opts.Py > 1 && nyLoc < ng {
		return nil, fmt.Errorf("cluster: %d cells/rank along y below ghost width %d", nyLoc, ng)
	}

	world := NewWorld(opts.Ranks)
	results := make([]*Result, opts.Ranks)
	errs := make([]error, opts.Ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < opts.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = runRank(world.Comm(rank), p, n, starts, nyGlob, nyLoc, cfg, opts)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: rank %d: %w", rank, err)
		}
	}
	return results[0], nil
}

func runRank(comm *Comm, p *testprob.Problem, nGlob int, starts []int, nyGlob, nyLoc int, cfg core.Config, opts Options) (*Result, error) {
	rank, size := comm.Rank(), comm.Size()
	rx := rank % opts.Px
	ry := rank / opts.Px
	dx := (p.X1 - p.X0) / float64(nGlob)
	xBeg, xEnd := starts[rx], starts[rx+1]
	nxLoc := xEnd - xBeg

	geom := p.Geometry(nGlob, cfg.Recon.Ghost())
	dy := 0.0
	if p.Dim >= 2 {
		dy = (p.Y1 - p.Y0) / float64(nyGlob)
	}
	geom.Nx = nxLoc
	geom.X0 = p.X0 + float64(xBeg)*dx
	geom.X1 = p.X0 + float64(xEnd)*dx
	geom.GlobalX0 = p.X0
	geom.GlobalDx = dx
	geom.IOffset = xBeg
	if p.Dim >= 2 {
		geom.Ny = nyLoc
		geom.Y0 = p.Y0 + float64(ry*nyLoc)*dy
		geom.Y1 = p.Y0 + float64((ry+1)*nyLoc)*dy
		geom.GlobalY0 = p.Y0
		geom.GlobalDy = dy
		geom.JOffset = ry * nyLoc
	}
	g := grid.New(geom)
	g.SetAllBCs(p.BC)

	rs := &rankState{
		comm: comm, g: g, opts: opts,
		left: -1, right: -1, down: -1, up: -1,
		firstSync: true,
		rate:      opts.ZoneRate,
	}
	if len(opts.RankRates) > 0 {
		rs.rate = opts.RankRates[rank]
	}
	periodic := p.BC == grid.Periodic
	at := func(x, y int) int { return y*opts.Px + x }
	if opts.Px > 1 {
		if rx > 0 || periodic {
			rs.left = at((rx-1+opts.Px)%opts.Px, ry)
			g.BCs[0][0] = grid.External
		}
		if rx < opts.Px-1 || periodic {
			rs.right = at((rx+1)%opts.Px, ry)
			g.BCs[0][1] = grid.External
		}
	}
	if opts.Py > 1 {
		if ry > 0 || periodic {
			rs.down = at(rx, (ry-1+opts.Py)%opts.Py)
			g.BCs[1][0] = grid.External
		}
		if ry < opts.Py-1 || periodic {
			rs.up = at(rx, (ry+1)%opts.Py)
			g.BCs[1][1] = grid.External
		}
	}

	cfg.HaloExchange = rs.exchange
	s, err := core.New(g, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.InitFromPrim(p.Init); err != nil {
		return nil, err
	}
	s.RecoverPrimitives() // triggers the first (uncharged) halo exchange

	tEnd := p.TEnd
	if opts.TEnd > 0 {
		tEnd = opts.TEnd
	}

	start := time.Now()
	steps := 0
	for {
		if opts.Steps > 0 {
			if steps >= opts.Steps {
				break
			}
		} else if s.Time() >= tEnd-1e-14 {
			break
		}
		dt := comm.AllReduceMin(s.MaxDt())
		rs.clock += opts.Net.AllReduceCost(size)
		if opts.Steps == 0 && s.Time()+dt > tEnd {
			dt = tEnd - s.Time()
		}
		if err := s.Step(dt); err != nil {
			return nil, err
		}
		steps++
	}
	real := time.Since(start)

	// Gather diagnostics on rank 0.
	mass := comm.AllReduceSum(g.TotalMass())
	vmax := comm.AllReduceMax(rs.clock)

	// Global density profile along the first interior row: contributed by
	// the ry == 0 process row (ranks 0..Px−1, which lead the rank order).
	local := make([]float64, 0, nxLoc)
	if ry == 0 {
		j, k := g.JBeg(), g.KBeg()
		for i := 0; i < nxLoc; i++ {
			local = append(local, g.W.Comp[state.IRho][g.Idx(g.IBeg()+i, j, k)])
		}
	}
	parts := comm.Gather(local)
	if rank != 0 {
		return &Result{}, nil
	}
	rho := make([]float64, 0, nGlob)
	for _, part := range parts[:opts.Px] {
		rho = append(rho, part...)
	}
	return &Result{
		Ranks: size, Mode: opts.Mode, Steps: steps,
		RealTime: real, VirtualTime: vmax,
		Rho: rho, TotalMass: mass,
	}, nil
}

// PerfectSpeedup is a helper for the scaling tables: ideal virtual time at
// p ranks given the 1-rank time.
func PerfectSpeedup(t1 float64, p int) float64 {
	if p < 1 {
		return math.NaN()
	}
	return t1 / float64(p)
}
