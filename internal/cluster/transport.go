package cluster

// Lossy-fabric transport extensions (see docs/RESILIENCE.md §7). The
// default World of NewWorld is a perfect in-order fabric; a World built
// by NewWorldTransport layers, beneath the unchanged Send/Recv API:
//
//   - a reliable delivery protocol: per-(src,dst) sequence numbers,
//     CRC32C payload checksums, cumulative acknowledgements, and a
//     per-rank retransmitter with exponential backoff — so dropped,
//     duplicated, reordered, delayed, or corrupted frames are repaired
//     below the application and the delivered per-pair stream is
//     byte-identical to a clean run;
//   - deadline-aware receives: every blocking receive is bounded and
//     surfaces typed errors (ErrTimeout, ErrRankFailed, ErrInterrupted)
//     instead of hanging;
//   - a world-wide recovery alarm: the first rank whose receive times
//     out marks the hung peer failed and raises the alarm, which wakes
//     every other blocked receive with ErrInterrupted so the whole
//     world collapses to its recovery protocol without cascading false
//     suspicion;
//   - recovery eras: each Comm carries an era stamped onto its frames;
//     after a recovery every survivor advances its era and the receive
//     path discards (after acknowledging) any frame from before it, so
//     traffic from an aborted protocol phase can never contaminate the
//     replay.

import (
	"errors"
	"sync"
	"time"

	"rhsc/internal/metrics"
)

// Typed receive errors. ErrPeerDead aliases ErrRankFailed (fault.go) so
// existing errors.Is checks keep matching.
var (
	// ErrTimeout reports a deadline-bounded receive that expired with no
	// matching message and no evidence the peer died.
	ErrTimeout = errors.New("cluster: receive deadline exceeded")
	// ErrPeerDead is the lossy-transport name for ErrRankFailed.
	ErrPeerDead = ErrRankFailed
	// ErrInterrupted reports a receive woken by the world alarm: another
	// rank detected a hung peer and every in-flight protocol phase must
	// unwind to its recovery point.
	ErrInterrupted = errors.New("cluster: receive interrupted by recovery alarm")
	// ErrSelfExcluded reports that this rank found itself marked failed —
	// its peers deadlined on it (a partition looks like death from the
	// outside) and excluded it; it must stop participating.
	ErrSelfExcluded = errors.New("cluster: this rank has been excluded from the world")
)

// TransportConfig selects the reliable transport and its knobs. The
// zero value of every field picks a sensible default in normalize.
type TransportConfig struct {
	// Chaos, when non-nil, interposes the deterministic fault injector
	// between senders and mailboxes (chaos.go). Chaos forces Reliable.
	Chaos *ChaosSpec
	// Reliable enables sequence/CRC/ack/retransmit framing even without
	// chaos (it is what masks chaos faults).
	Reliable bool
	// RecvDeadline bounds every blocking receive. <= 0 disables
	// deadlines (receives still wake on peer death). Point-to-point
	// receives in the AMR driver use a multiple of this base deadline so
	// a partitioned rank discovers its own exclusion before it can
	// falsely suspect a live peer (see docs/RESILIENCE.md §7).
	RecvDeadline time.Duration
	// RTO is the initial retransmit timeout; it doubles per attempt up
	// to 64x. Default 1ms.
	RTO time.Duration
	// MaxAttempts bounds deliveries per frame before the retransmitter
	// abandons it (the peer is presumed dead). Default 40 — far above
	// ChaosSpec.MaxFaultsPerMessage, so a frame to a live peer is always
	// delivered first.
	MaxAttempts int
	// Depth overrides the per-pair mailbox depth. Default 64 in reliable
	// mode (duplicates and retransmits need headroom), mailboxDepth
	// otherwise. Reliable-mode deliveries drop on a full mailbox and are
	// repaired by retransmission, so depth is a performance knob only.
	Depth int
	// Counters receives every transport event; nil allocates a private
	// set (readable via World.NetCounters).
	Counters *metrics.TransportCounters
}

// normalize fills defaults, returning a copy.
func (tc TransportConfig) normalize() TransportConfig {
	if tc.Chaos != nil {
		tc.Reliable = true
	}
	if tc.RTO <= 0 {
		tc.RTO = time.Millisecond
	}
	if tc.MaxAttempts <= 0 {
		tc.MaxAttempts = 40
	}
	if tc.Depth <= 0 {
		if tc.Reliable {
			tc.Depth = 64
		} else {
			tc.Depth = mailboxDepth
		}
	}
	if tc.Counters == nil {
		tc.Counters = &metrics.TransportCounters{}
	}
	return tc
}

// NewWorldTransport creates a world of n ranks on the configured
// transport. With tc.Chaos set the fabric perturbs frames and the
// reliable layer repairs them; the caller must Close the world when the
// run ends to stop the retransmitter goroutines.
func NewWorldTransport(n int, tc TransportConfig) *World {
	norm := tc.normalize()
	w := newWorld(n, &norm)
	if w.tc.Chaos != nil {
		w.chaos = newChaosNet(n, w.tc.Chaos, w.tc.Counters)
	}
	if w.tc.Reliable {
		w.rel = newReliableState(w)
	}
	return w
}

// Close stops the transport's background goroutines (the per-rank
// retransmitters). Idempotent; a default world's Close is a no-op.
func (w *World) Close() {
	w.closeOnce.Do(func() {
		if w.rel != nil {
			w.rel.stopAll()
		}
	})
}

// NetCounters returns the world's transport counters (never nil for a
// transport world; nil for a default world).
func (w *World) NetCounters() *metrics.TransportCounters {
	if w.tc == nil {
		return nil
	}
	return w.tc.Counters
}

// Reliable reports whether the world runs the reliable framing layer.
func (w *World) Reliable() bool { return w.rel != nil }

// RecvDeadline returns the configured base receive deadline (0 for a
// default world).
func (w *World) RecvDeadline() time.Duration {
	if w.tc == nil {
		return 0
	}
	return w.tc.RecvDeadline
}

// alarm is the world-wide revocation signal: Raise closes the current
// channel (waking every receive blocked on it) and bumps the
// generation, so a receive entered after the raise observes the changed
// generation instead. Both reads happen under one lock, so no wake-up
// can be missed.
type alarm struct {
	mu  sync.Mutex
	gen uint64
	ch  chan struct{}
}

func (a *alarm) state() (chan struct{}, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ch == nil {
		a.ch = make(chan struct{})
	}
	return a.ch, a.gen
}

func (a *alarm) raise() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ch == nil {
		a.ch = make(chan struct{})
	}
	close(a.ch)
	a.ch = make(chan struct{})
	a.gen++
}

// Alarm raises the world-wide recovery alarm: every receive blocked in
// an interruptible wait wakes with ErrInterrupted, and receives entered
// afterwards fail immediately until the caller re-reads AlarmGen. The
// detector must Kill the suspect *before* raising the alarm so every
// woken rank computes the same survivor set.
func (w *World) Alarm() { w.alarms.raise() }

// AlarmGen returns the current alarm generation; a rank snapshots it at
// its recovery point and passes it to interruptible receives.
func (w *World) AlarmGen() uint64 {
	_, gen := w.alarms.state()
	return gen
}
