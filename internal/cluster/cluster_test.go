package cluster

import (
	"math"
	"sync"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/grid"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

func TestCommPointToPoint(t *testing.T) {
	w := NewWorld(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		c.Send(1, 7, []float64{1, 2, 3}, 0.5)
	}()
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		data, stamp, _ := c.Recv(0, 7)
		if len(data) != 3 || data[2] != 3 || stamp != 0.5 {
			t.Errorf("recv = %v, %v", data, stamp)
		}
	}()
	wg.Wait()
}

// Out-of-order tags must be stashed, not lost: receive tag B first even
// though tag A was sent first.
func TestCommTagStash(t *testing.T) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, 1, []float64{10}, 0)
	c0.Send(1, 2, []float64{20}, 0)
	if d, _, _ := c1.Recv(0, 2); d[0] != 20 {
		t.Errorf("tag 2 = %v", d)
	}
	if d, _, _ := c1.Recv(0, 1); d[0] != 10 {
		t.Errorf("tag 1 = %v", d)
	}
}

func TestAllReduce(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	mins := make([]float64, n)
	sums := make([]float64, n)
	maxs := make([]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			x := float64(r + 1)
			mins[r] = c.AllReduceMin(x)
			sums[r] = c.AllReduceSum(x)
			maxs[r] = c.AllReduceMax(x)
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if mins[r] != 1 || sums[r] != 15 || maxs[r] != 5 {
			t.Fatalf("rank %d: min=%v sum=%v max=%v", r, mins[r], sums[r], maxs[r])
		}
	}
}

func TestGather(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	var out [][]float64
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res := w.Comm(r).Gather([]float64{float64(r), float64(r * 10)})
			if r == 0 {
				out = res
			} else if res != nil {
				t.Errorf("rank %d got non-nil gather", r)
			}
		}(r)
	}
	wg.Wait()
	if len(out) != 3 || out[2][1] != 20 {
		t.Fatalf("gather = %v", out)
	}
}

func TestNetModelCost(t *testing.T) {
	n := NetModel{Latency: 1e-6, Bandwidth: 1e9}
	if got := n.Cost(1000); math.Abs(got-(1e-6+1e-6)) > 1e-18 {
		t.Errorf("cost = %v", got)
	}
	free := NetModel{}
	if free.Cost(1<<30) != 0 {
		t.Error("ideal network not free")
	}
	if GigE().Cost(8) <= Infiniband().Cost(8) {
		t.Error("GigE should be slower than IB")
	}
	if (NetModel{}).AllReduceCost(8) != 0 {
		t.Error("free allreduce")
	}
	if GigE().AllReduceCost(1) != 0 {
		t.Error("1-rank allreduce should be free")
	}
	if GigE().AllReduceCost(8) <= GigE().AllReduceCost(2) {
		t.Error("allreduce cost must grow with ranks")
	}
}

// The decisive correctness test: a distributed Sod run must reproduce the
// single-grid solution bitwise, for several rank counts.
func TestDistributedMatchesSerial(t *testing.T) {
	cfg := core.DefaultConfig()
	const n = 128

	serial, err := Run(testprob.Sod, n, cfg, Options{Ranks: 1, TEnd: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 4, 8} {
		dist, err := Run(testprob.Sod, n, cfg, Options{Ranks: ranks, TEnd: 0.2})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if dist.Steps != serial.Steps {
			t.Errorf("ranks=%d: %d steps vs %d serial", ranks, dist.Steps, serial.Steps)
		}
		if len(dist.Rho) != len(serial.Rho) {
			t.Fatalf("ranks=%d: profile length %d vs %d", ranks, len(dist.Rho), len(serial.Rho))
		}
		for i := range serial.Rho {
			if dist.Rho[i] != serial.Rho[i] {
				t.Fatalf("ranks=%d: rho[%d] = %v vs %v", ranks, i, dist.Rho[i], serial.Rho[i])
			}
		}
	}
}

// Periodic problems must also decompose exactly (wrap-around halos).
func TestDistributedPeriodic(t *testing.T) {
	cfg := core.DefaultConfig()
	const n = 96
	serial, err := Run(testprob.SmoothWave, n, cfg, Options{Ranks: 1, TEnd: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 3} {
		dist, err := Run(testprob.SmoothWave, n, cfg, Options{Ranks: ranks, TEnd: 0.3})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for i := range serial.Rho {
			if dist.Rho[i] != serial.Rho[i] {
				t.Fatalf("ranks=%d: rho[%d] = %v vs %v", ranks, i, dist.Rho[i], serial.Rho[i])
			}
		}
		if rel := math.Abs(dist.TotalMass-serial.TotalMass) / serial.TotalMass; rel > 1e-13 {
			t.Errorf("ranks=%d: mass drift %v", ranks, rel)
		}
	}
}

// Sync and async exchanges are different performance models of the same
// algorithm: physics identical, virtual time lower for async under
// latency.
func TestAsyncSamePhysicsLowerTime(t *testing.T) {
	cfg := core.DefaultConfig()
	const n = 128
	base := Options{Ranks: 4, Net: GigE(), Steps: 10}

	syncOpts := base
	syncOpts.Mode = Sync
	syncRes, err := Run(testprob.Sod, n, cfg, syncOpts)
	if err != nil {
		t.Fatal(err)
	}
	asyncOpts := base
	asyncOpts.Mode = Async
	asyncRes, err := Run(testprob.Sod, n, cfg, asyncOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range syncRes.Rho {
		if syncRes.Rho[i] != asyncRes.Rho[i] {
			t.Fatalf("mode changed the physics at %d", i)
		}
	}
	if asyncRes.VirtualTime >= syncRes.VirtualTime {
		t.Errorf("async (%v) not faster than sync (%v)", asyncRes.VirtualTime, syncRes.VirtualTime)
	}
}

// Strong scaling in virtual time: more ranks must reduce the modelled time
// on a fixed problem, and async must scale at least as well as sync.
func TestVirtualStrongScaling(t *testing.T) {
	cfg := core.DefaultConfig()
	// The problem must be large enough that per-rank compute dominates
	// interconnect latency, or strong scaling saturates immediately (which
	// the model rightly reproduces for tiny grids).
	const n = 4096
	vt := func(ranks int, mode Mode) float64 {
		res, err := Run(testprob.Sod, n, cfg, Options{
			Ranks: ranks, Mode: mode, Net: Infiniband(), Steps: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.VirtualTime
	}
	t1 := vt(1, Sync)
	t4 := vt(4, Sync)
	t8 := vt(8, Sync)
	if !(t4 < t1 && t8 < t4) {
		t.Errorf("sync virtual times not scaling: %v, %v, %v", t1, t4, t8)
	}
	if a8 := vt(8, Async); a8 > t8 {
		t.Errorf("async@8 (%v) slower than sync@8 (%v)", a8, t8)
	}
	// Speedup at 8 ranks should be substantial on IB (> 4x).
	if sp := t1 / t8; sp < 4 {
		t.Errorf("8-rank speedup %v < 4", sp)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	if _, err := Run(testprob.Sod, 100, cfg, Options{Ranks: 3}); err == nil {
		t.Error("indivisible decomposition accepted")
	}
	if _, err := Run(testprob.Sod, 8, cfg, Options{Ranks: 8}); err == nil {
		t.Error("1-cell subdomains accepted")
	}
	if _, err := Run(testprob.Sod, 64, cfg, Options{Ranks: 0}); err == nil {
		t.Error("0 ranks accepted")
	}
}

func TestPerfectSpeedup(t *testing.T) {
	if PerfectSpeedup(8, 4) != 2 {
		t.Error("PerfectSpeedup wrong")
	}
	if !math.IsNaN(PerfectSpeedup(8, 0)) {
		t.Error("degenerate input not NaN")
	}
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty world accepted")
		}
	}()
	NewWorld(0)
}

func TestCommRankBounds(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank accepted")
		}
	}()
	w.Comm(5)
}

// 2-D distributed runs: the blast problem over 2 ranks equals serial.
func TestDistributed2D(t *testing.T) {
	cfg := core.DefaultConfig()
	const n = 64
	serial, err := Run(testprob.Blast2D, n, cfg, Options{Ranks: 1, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Run(testprob.Blast2D, n, cfg, Options{Ranks: 2, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(dist.TotalMass-serial.TotalMass) / serial.TotalMass; rel > 1e-12 {
		t.Errorf("2D mass mismatch %v", rel)
	}
	for i := range serial.Rho {
		if dist.Rho[i] != serial.Rho[i] {
			t.Fatalf("2D rho[%d] = %v vs %v", i, dist.Rho[i], serial.Rho[i])
		}
	}
}

// A 2-D process grid must reproduce the serial solution bitwise, for both
// outflow (blast) and doubly-periodic (KH) problems.
func TestProcessGrid2D(t *testing.T) {
	cfg := core.DefaultConfig()
	const n = 64
	cases := []struct {
		prob   *testprob.Problem
		px, py int
	}{
		{testprob.Blast2D, 2, 2},
		{testprob.Blast2D, 1, 4},
		{testprob.KelvinHelmholtz2D, 2, 2},
	}
	for _, c := range cases {
		serial, err := Run(c.prob, n, cfg, Options{Ranks: 1, Steps: 4})
		if err != nil {
			t.Fatal(err)
		}
		dist, err := Run(c.prob, n, cfg, Options{
			Ranks: c.px * c.py, Px: c.px, Py: c.py, Steps: 4,
		})
		if err != nil {
			t.Fatalf("%s %dx%d: %v", c.prob.Name, c.px, c.py, err)
		}
		if rel := math.Abs(dist.TotalMass-serial.TotalMass) / serial.TotalMass; rel > 1e-12 {
			t.Errorf("%s %dx%d: mass mismatch %v", c.prob.Name, c.px, c.py, rel)
		}
		if len(dist.Rho) != len(serial.Rho) {
			t.Fatalf("%s %dx%d: profile length %d vs %d",
				c.prob.Name, c.px, c.py, len(dist.Rho), len(serial.Rho))
		}
		for i := range serial.Rho {
			if dist.Rho[i] != serial.Rho[i] {
				t.Fatalf("%s %dx%d: rho[%d] = %v vs %v",
					c.prob.Name, c.px, c.py, i, dist.Rho[i], serial.Rho[i])
			}
		}
	}
}

func TestProcessGridValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	// Mismatched grid.
	if _, err := Run(testprob.Blast2D, 64, cfg, Options{Ranks: 4, Px: 3, Py: 1}); err == nil {
		t.Error("Px*Py != Ranks accepted")
	}
	// 2-D decomposition of a 1-D problem.
	if _, err := Run(testprob.Sod, 64, cfg, Options{Ranks: 4, Px: 2, Py: 2}); err == nil {
		t.Error("Py>1 on a 1-D problem accepted")
	}
	// Indivisible y.
	if _, err := Run(testprob.Blast2D, 64, cfg, Options{Ranks: 3, Px: 1, Py: 3}); err == nil {
		t.Error("Ny not divisible by Py accepted")
	}
}

// The 2-D decomposition reduces halo volume per rank vs 1-D slabs at the
// same rank count (surface-to-volume): verify the virtual clock agrees.
func TestPencilBeatsSlabVirtualTime(t *testing.T) {
	cfg := core.DefaultConfig()
	const n = 256
	slab, err := Run(testprob.Blast2D, n, cfg, Options{
		Ranks: 16, Px: 16, Py: 1, Mode: Sync, Net: GigE(), Steps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pencil, err := Run(testprob.Blast2D, n, cfg, Options{
		Ranks: 16, Px: 4, Py: 4, Mode: Sync, Net: GigE(), Steps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pencil.VirtualTime >= slab.VirtualTime {
		t.Errorf("4x4 grid (%v) not faster than 16x1 slabs (%v)",
			pencil.VirtualTime, slab.VirtualTime)
	}
}

// Heterogeneous ranks: a cluster of plain and accelerated nodes. An even
// split leaves the slow nodes as stragglers; a speed-weighted split
// balances the makespan — the heterogeneous-cluster headline.
func TestHeterogeneousRanksWeightedDecomposition(t *testing.T) {
	cfg := core.DefaultConfig()
	const n = 4096
	// 4 plain nodes (16 Mz/s) + 4 accelerated nodes (96 Mz/s).
	rates := []float64{16e6, 16e6, 16e6, 16e6, 96e6, 96e6, 96e6, 96e6}
	base := Options{
		Ranks: 8, Mode: Async, Net: Infiniband(), Steps: 5, RankRates: rates,
	}

	even := base
	evenRes, err := Run(testprob.Sod, n, cfg, even)
	if err != nil {
		t.Fatal(err)
	}
	weighted := base
	weighted.WeightedDecomp = true
	weightedRes, err := Run(testprob.Sod, n, cfg, weighted)
	if err != nil {
		t.Fatal(err)
	}
	// Identical physics regardless of the split.
	if len(evenRes.Rho) != n || len(weightedRes.Rho) != n {
		t.Fatalf("profile lengths %d, %d", len(evenRes.Rho), len(weightedRes.Rho))
	}
	for i := range evenRes.Rho {
		if evenRes.Rho[i] != weightedRes.Rho[i] {
			t.Fatalf("decomposition changed the physics at %d", i)
		}
	}
	// The weighted split must be substantially faster: even split is
	// limited by the slow nodes (512 zones at 16 Mz/s), weighted by the
	// balanced load.
	if weightedRes.VirtualTime >= 0.7*evenRes.VirtualTime {
		t.Errorf("weighted decomposition (%v) not clearly faster than even (%v)",
			weightedRes.VirtualTime, evenRes.VirtualTime)
	}
}

func TestRankRatesValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	if _, err := Run(testprob.Sod, 64, cfg, Options{
		Ranks: 2, RankRates: []float64{1e6},
	}); err == nil {
		t.Error("wrong RankRates length accepted")
	}
	if _, err := Run(testprob.Sod, 64, cfg, Options{
		Ranks: 2, RankRates: []float64{1e6, -1},
	}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Run(testprob.Blast2D, 64, cfg, Options{
		Ranks: 4, Px: 2, Py: 2, RankRates: []float64{1, 1, 1, 1},
	}); err == nil {
		t.Error("RankRates with 2-D decomposition accepted")
	}
	// A weighted split that starves a rank below the ghost width fails.
	if _, err := Run(testprob.Sod, 64, cfg, Options{
		Ranks: 2, RankRates: []float64{1, 1e9}, WeightedDecomp: true,
	}); err == nil {
		t.Error("starved rank accepted")
	}
}

var _ = grid.Outflow
var _ = state.NComp
