package cluster

// Reliable delivery beneath Send/Recv: every data frame carries a
// per-(src,dst) sequence number and a CRC32C of its payload; receivers
// deliver in sequence order (discarding duplicates, reassembling
// reorders, rejecting corrupted frames) and post cumulative
// acknowledgements; a per-rank retransmitter goroutine re-sends
// unacknowledged frames with exponential backoff until they are acked
// or abandoned after MaxAttempts. The protocol is below the virtual
// clock: stamps ride the frames untouched, so a masked chaos schedule
// reproduces even the modelled timings bitwise.

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"sync"
	"time"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcPayload is the CRC32C of the payload's IEEE-754 bit patterns.
func crcPayload(data []float64) uint32 {
	var b [8]byte
	crc := uint32(0)
	for _, v := range data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		crc = crc32.Update(crc, castagnoli, b[:])
	}
	return crc
}

// ackMsg is a cumulative acknowledgement: every frame from `from` with
// seq <= cum has been delivered in order.
type ackMsg struct {
	from int
	cum  uint64
}

// pendingFrame is an unacknowledged frame awaiting (re)transmission.
type pendingFrame struct {
	m        message
	attempts int
	due      time.Time
}

// senderState is one rank's outbound reliable state.
type senderState struct {
	mu      sync.Mutex
	nextSeq []uint64         // last assigned seq per dst (frames are 1-based)
	out     [][]pendingFrame // unacked frames per dst, seq-ascending
}

type reliableState struct {
	w     *World
	acks  []chan ackMsg // one inbound ack channel per rank
	send  []*senderState
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

func newReliableState(w *World) *reliableState {
	n := w.size
	rs := &reliableState{
		w:    w,
		acks: make([]chan ackMsg, n),
		send: make([]*senderState, n),
		stop: make(chan struct{}),
	}
	for r := 0; r < n; r++ {
		rs.acks[r] = make(chan ackMsg, 1024)
		rs.send[r] = &senderState{
			nextSeq: make([]uint64, n),
			out:     make([][]pendingFrame, n),
		}
	}
	rs.wg.Add(n)
	for r := 0; r < n; r++ {
		go rs.run(r)
	}
	return rs
}

func (rs *reliableState) stopAll() {
	rs.once.Do(func() { close(rs.stop) })
	rs.wg.Wait()
}

// post assigns the frame its sequence number and CRC, registers it for
// retransmission, and runs the first delivery attempt. Registration
// happens before the attempt, so a receiver that observes the sender
// dead can trust hasPending: false means nothing more is coming.
//
// The payload is copied: the application reuses pooled send buffers
// once its protocol says the receiver is done, but the retransmitter
// may legitimately still hold the frame (a lost ack), and a frame must
// keep its posted bytes for as long as it can be re-sent.
func (rs *reliableState) post(src, dst int, m message) {
	m.data = append([]float64(nil), m.data...)
	m.crc = crcPayload(m.data)
	st := rs.send[src]
	st.mu.Lock()
	st.nextSeq[dst]++
	m.seq = st.nextSeq[dst]
	st.out[dst] = append(st.out[dst], pendingFrame{
		m:   m,
		due: time.Now().Add(rs.w.tc.RTO),
	})
	st.mu.Unlock()
	c := rs.w.tc.Counters
	c.Sent.Add(1)
	c.SentBytes.Add(int64(8 * len(m.data)))
	rs.w.deliverFrame(src, dst, 0, m)
}

// hasPending reports whether src still has unacknowledged frames bound
// for dst (the retransmitter will keep delivering them even after src's
// rank goroutine has exited).
func (rs *reliableState) hasPending(src, dst int) bool {
	st := rs.send[src]
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.out[dst]) > 0
}

// run is rank r's retransmitter: it consumes cumulative acks and
// re-sends overdue frames with exponential backoff. It belongs to the
// fabric, not the rank, so it outlives a rank failure (in-flight frames
// a victim posted before dying are still repaired) and stops only at
// World.Close.
func (rs *reliableState) run(r int) {
	defer rs.wg.Done()
	tick := rs.w.tc.RTO / 2
	if tick <= 0 {
		tick = 500 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-rs.stop:
			return
		case a := <-rs.acks[r]:
			rs.ack(r, a)
		case <-ticker.C:
			rs.scan(r)
		}
	}
}

// ack drops every pending frame to a.from with seq <= a.cum.
func (rs *reliableState) ack(r int, a ackMsg) {
	st := rs.send[r]
	st.mu.Lock()
	q := st.out[a.from]
	i := 0
	for i < len(q) && q[i].m.seq <= a.cum {
		i++
	}
	if i > 0 {
		st.out[a.from] = append(q[:0], q[i:]...)
	}
	st.mu.Unlock()
}

// scan retransmits every overdue frame of rank r, doubling its backoff
// (capped at 64x RTO), and abandons frames past MaxAttempts.
func (rs *reliableState) scan(r int) {
	now := time.Now()
	rto := rs.w.tc.RTO
	maxAtt := rs.w.tc.MaxAttempts
	counters := rs.w.tc.Counters

	type resend struct {
		dst     int
		attempt int
		m       message
	}
	var due []resend
	st := rs.send[r]
	st.mu.Lock()
	for dst := range st.out {
		q := st.out[dst]
		kept := q[:0]
		for _, p := range q {
			if now.Before(p.due) {
				kept = append(kept, p)
				continue
			}
			p.attempts++
			if p.attempts >= maxAtt {
				counters.Abandoned.Add(1)
				continue // dropped: the peer is presumed dead
			}
			shift := p.attempts
			if shift > 6 {
				shift = 6
			}
			p.due = now.Add(rto << uint(shift))
			due = append(due, resend{dst: dst, attempt: p.attempts, m: p.m})
			kept = append(kept, p)
		}
		st.out[dst] = kept
	}
	st.mu.Unlock()

	for _, d := range due {
		counters.Retransmits.Add(1)
		rs.w.deliverFrame(r, d.dst, d.attempt, d.m)
	}
}

// deliverFrame pushes one delivery attempt of a frame through the
// (optional) chaos injector into the destination mailbox. Reliable
// deliveries never block: a full mailbox drops the frame (counted) and
// retransmission repairs it.
func (w *World) deliverFrame(src, dst, attempt int, m message) {
	push := func(f message) bool {
		select {
		case w.boxes[src][dst] <- f:
			return true
		default:
			w.tc.Counters.MailboxOverflow.Add(1)
			return false
		}
	}
	if w.chaos != nil {
		w.chaos.deliver(src, dst, attempt, m, push)
		return
	}
	push(m)
}

// postAck sends a cumulative acknowledgement for everything received
// in order from src. Acks cross the chaos fabric too; they are
// cumulative and re-posted on every accepted frame, so losing some is
// always masked.
func (c *Comm) postAck(src int) {
	cum := c.expect[src] - 1
	w := c.w
	if w.chaos != nil && !w.chaos.ackPass(c.rank, src, cum) {
		return
	}
	select {
	case w.rel.acks[src] <- ackMsg{from: c.rank, cum: cum}:
		w.tc.Counters.Acks.Add(1)
	default:
	}
}
