// Package cluster is the distributed-memory substrate of the solver:
// ranks, point-to-point messaging, collectives, one-dimensional domain
// decomposition with halo exchange, and a virtual network model.
//
// Substitution note (see DESIGN.md): the paper ran on an MPI cluster; in
// pure Go, ranks are goroutines and the transport is channels. What
// determines the scaling curves — halo volume, message counts,
// surface-to-volume ratios, exposure (or overlap) of communication
// latency — is preserved exactly. Wall-clock speedup is real up to the
// host's core count; beyond it, the deterministic virtual clock (compute
// charged at a calibrated zone rate, messages charged latency + size/BW,
// timestamps carried on messages) extrapolates the curve shape, which is
// what the strong/weak scaling experiments (E5, E6) report.
//
// The default world of NewWorld is a perfect in-order fabric; see
// transport.go for the lossy-fabric variant (deterministic chaos
// injection, reliable seq/CRC/ack/retransmit framing, deadline-bounded
// receives).
package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rhsc/internal/metrics"
)

// message is the unit of transport: payload plus the sender's virtual
// timestamp at posting time. The seq/era/crc header fields are used only
// by the reliable transport (reliable.go); a default world leaves them
// zero.
type message struct {
	tag  int
	data []float64
	// stamp is the sender's virtual clock when the send was posted.
	stamp float64
	// seq is the per-(src,dst) sequence number (1-based) in reliable mode.
	seq uint64
	// era is the sender's recovery era; receivers discard (after
	// acknowledging) frames from before their own era.
	era uint64
	// crc is the CRC32C of the payload bit patterns in reliable mode.
	crc uint32
}

// World owns the mailboxes of a set of ranks.
type World struct {
	size  int
	boxes [][]chan message // boxes[src][dst]
	// Fault-injection state (see fault.go): failed[r] is set by Kill(r)
	// before down[r] is closed, so any observer woken by the close sees
	// the flag. Mailboxes of a dead rank are never closed — a send to a
	// closed channel would panic the (innocent) sender; buffered messages
	// a dead rank posted before dying remain receivable.
	failed []atomic.Bool
	down   []chan struct{}
	killed []sync.Once

	// Lossy-transport state (see transport.go); all nil/zero for a
	// default world.
	tc        *TransportConfig
	chaos     *chaosNet
	rel       *reliableState
	alarms    alarm
	closeOnce sync.Once
}

// mailboxDepth is the buffer depth of each pairwise mailbox. Every
// protocol in this repository posts a bounded number of sends to any
// single peer before turning around and receiving: the uniform-grid halo
// exchange posts at most four face messages per stage (two of which can
// target the same peer only on tiny periodic worlds), the collectives
// post at most two, and the distributed-AMR exchange batches everything
// for a peer into one message per phase. A send therefore never finds
// more than four messages already in flight to the same peer, so a depth
// of eight means Send never blocks mid-protocol and no cyclic
// send-waits-for-send deadlock can form. A receiver blocked in Recv
// additionally drains mismatched tags into its pending stash (see Recv),
// so even bursts of many distinct tags cannot wedge the pair —
// TestDeepTagExchange pins this down.
const mailboxDepth = 8

// NewWorld creates a world of n ranks with buffered pairwise mailboxes
// over a perfect fabric (no loss, no deadlines; Recv still surfaces
// ErrRankFailed when the peer is killed).
func NewWorld(n int) *World { return newWorld(n, nil) }

// newWorld is the shared constructor; tc is nil for a default world and
// a normalized config for a transport world (NewWorldTransport).
func newWorld(n int, tc *TransportConfig) *World {
	if n < 1 {
		panic("cluster: world needs at least one rank")
	}
	depth := mailboxDepth
	if tc != nil {
		depth = tc.Depth
	}
	w := &World{
		size:   n,
		boxes:  make([][]chan message, n),
		failed: make([]atomic.Bool, n),
		down:   make([]chan struct{}, n),
		killed: make([]sync.Once, n),
		tc:     tc,
	}
	for s := 0; s < n; s++ {
		w.boxes[s] = make([]chan message, n)
		w.down[s] = make(chan struct{})
		for d := 0; d < n; d++ {
			w.boxes[s][d] = make(chan message, depth)
		}
	}
	return w
}

// counters returns the transport counters, or nil for a default world.
func (w *World) counters() *metrics.TransportCounters {
	if w.tc == nil {
		return nil
	}
	return w.tc.Counters
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank r's communicator.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("cluster: rank %d outside world of %d", r, w.size))
	}
	c := &Comm{w: w, rank: r, pending: make(map[int][]message)}
	if w.rel != nil {
		c.expect = make([]uint64, w.size)
		for i := range c.expect {
			c.expect[i] = 1 // sequence numbers are 1-based
		}
		c.ooo = make([]map[uint64]message, w.size)
		for i := range c.ooo {
			c.ooo[i] = map[uint64]message{}
		}
	}
	return c
}

// Comm is one rank's endpoint. A Comm must only be used from its own
// rank's goroutine.
type Comm struct {
	w    *World
	rank int
	// pending stashes messages that arrived ahead of the tag being waited
	// on (a pair can interleave halo tags, e.g. two-rank periodic rings).
	pending map[int][]message
	// Reliable-mode receive state (nil on a default world): era is this
	// rank's recovery era (stamped on outgoing frames, frames below it are
	// discarded after acknowledging), expect[src] the next in-order
	// sequence number, ooo[src] the reorder buffer of early frames.
	era    uint64
	expect []uint64
	ooo    []map[uint64]message
	// alarmSeen is the alarm generation this rank has already processed
	// (see SeenAlarm in fault.go).
	alarmSeen uint64
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Era returns this communicator's recovery era.
func (c *Comm) Era() uint64 { return c.era }

// SetEra moves this rank into recovery era e (no-op unless e > era):
// frames it sends from now on carry the new era, frames from before it
// (in flight, stashed, or retransmitted later) are acknowledged and
// discarded. Survivors derive e from lockstep-agreed state (alarm
// generation + shrink count in the damr driver), so all of them land on
// the same era even when they unwind at different points; without the
// era filter, traffic from the aborted protocol phase could contaminate
// the replay.
func (c *Comm) SetEra(e uint64) {
	if e <= c.era {
		return
	}
	c.era = e
	for src, q := range c.pending {
		kept := q[:0]
		for _, m := range q {
			if m.era >= c.era {
				kept = append(kept, m)
			}
		}
		c.pending[src] = kept
	}
}

// AdvanceEra is SetEra(Era()+1).
func (c *Comm) AdvanceEra() { c.SetEra(c.era + 1) }

// Send posts data to dst with a tag and the sender's virtual timestamp.
// Delivery is in-order per (src, dst) pair. The payload is not copied; the
// sender must not mutate it until the receiver is known to have consumed
// it (the protocols above guarantee this with double-buffered pools).
func (c *Comm) Send(dst, tag int, data []float64, stamp float64) {
	if c.w.rel != nil {
		c.w.rel.post(c.rank, dst, message{tag: tag, data: data, stamp: stamp, era: c.era})
		return
	}
	c.w.boxes[c.rank][dst] <- message{tag: tag, data: data, stamp: stamp}
}

// Recv blocks for the next message from src carrying the given tag.
// Messages from src with other tags are stashed and delivered to later
// matching Recv calls, preserving per-tag FIFO order.
//
// Recv never hangs on a dead peer: once src has been killed and
// everything it sent (or, in reliable mode, could still retransmit) has
// been drained, Recv returns ErrRankFailed. On a transport world with a
// configured RecvDeadline the wait is additionally time-bounded and
// surfaces ErrTimeout.
func (c *Comm) Recv(src, tag int) ([]float64, float64, error) {
	return c.recvTagged(src, tag, c.w.RecvDeadline(), false, 0)
}

// RecvTimeout is Recv with an explicit deadline overriding the world's
// base RecvDeadline; d <= 0 disables the deadline for this call.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) ([]float64, float64, error) {
	return c.recvTagged(src, tag, d, false, 0)
}

// RecvInterruptible is RecvTimeout that additionally wakes with
// ErrInterrupted when the world alarm generation moves past seenGen
// (see World.Alarm). Callers snapshot AlarmGen at their recovery point
// and pass it here.
func (c *Comm) RecvInterruptible(src, tag int, d time.Duration, seenGen uint64) ([]float64, float64, error) {
	return c.recvTagged(src, tag, d, true, seenGen)
}

// recvTagged is the tag-matching layer over recvMsg: scan the stash,
// then pull messages (stashing mismatched tags) until one matches.
func (c *Comm) recvTagged(src, tag int, d time.Duration, intr bool, seenGen uint64) ([]float64, float64, error) {
	for i, m := range c.pending[src] {
		if m.tag == tag {
			c.pending[src] = append(c.pending[src][:i], c.pending[src][i+1:]...)
			return m.data, m.stamp, nil
		}
	}
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	for {
		m, err := c.recvMsg(src, deadline, intr, seenGen)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: rank %d (tag %d)", err, src, tag)
		}
		if m.tag == tag {
			return m.data, m.stamp, nil
		}
		c.pending[src] = append(c.pending[src], m)
	}
}

// recvMsg pulls the next deliverable message from src: the next frame on
// a default world, the next in-sequence fresh-era frame on a reliable
// world. It returns bare sentinel errors (ErrRankFailed, ErrTimeout,
// ErrInterrupted); recvTagged adds context.
func (c *Comm) recvMsg(src int, deadline time.Time, intr bool, seenGen uint64) (message, error) {
	w := c.w
	box := w.boxes[src][c.rank]
	rel := w.rel != nil
	nc := w.counters()
	for {
		if intr {
			if _, gen := w.alarms.state(); gen != seenGen {
				if nc != nil {
					nc.Interrupts.Add(1)
				}
				return message{}, ErrInterrupted
			}
		}
		if rel {
			// Serve the reorder buffer before pulling the mailbox.
			if m, ok := c.ooo[src][c.expect[src]]; ok {
				delete(c.ooo[src], c.expect[src])
				c.expect[src]++
				c.postAck(src)
				if m.era < c.era {
					nc.StaleEraDropped.Add(1)
					continue
				}
				nc.Delivered.Add(1)
				return m, nil
			}
		}
		var m message
		gotMsg := false
		select {
		case m = <-box:
			gotMsg = true
		default:
		}
		if !gotMsg {
			srcDead := w.Failed(src)
			if srcDead && !(rel && w.rel.hasPending(src, c.rank)) {
				// Dead, mailbox drained, nothing left to retransmit.
				if nc != nil {
					nc.PeerDeaths.Add(1)
				}
				return message{}, ErrRankFailed
			}
			downCh := w.down[src]
			if srcDead {
				// Already woken once; selecting on the closed channel
				// would spin. The retransmitter (still pending) pushes to
				// the mailbox, so wait on it with a short poll instead.
				downCh = nil
			}
			var alarmCh chan struct{}
			if intr {
				alarmCh, _ = w.alarms.state() // generation checked above
			}
			wait := time.Duration(-1)
			if !deadline.IsZero() {
				wait = time.Until(deadline)
				if wait <= 0 {
					return message{}, c.deadlineError(src, nc)
				}
			}
			if srcDead && rel {
				if poll := 4 * w.tc.RTO; wait < 0 || wait > poll {
					wait = poll // recheck hasPending after abandonment
				}
			}
			var timer *time.Timer
			var timerC <-chan time.Time
			if wait >= 0 {
				timer = time.NewTimer(wait)
				timerC = timer.C
			}
			interrupted, fired := false, false
			select {
			case m = <-box:
				gotMsg = true
			case <-downCh:
				// Loop back: next iteration sees Failed(src).
			case <-alarmCh:
				interrupted = true
			case <-timerC:
				fired = true
			}
			if timer != nil {
				timer.Stop()
			}
			if interrupted {
				if nc != nil {
					nc.Interrupts.Add(1)
				}
				return message{}, ErrInterrupted
			}
			if fired && !deadline.IsZero() && !time.Now().Before(deadline) {
				return message{}, c.deadlineError(src, nc)
			}
			if !gotMsg {
				continue // poll tick or down wake-up
			}
		}
		if !rel {
			return m, nil
		}
		// Reliable reassembly. Duplicates are discarded before the CRC
		// check (a retransmit of an already-consumed frame may carry a
		// since-recycled buffer; it only needs re-acknowledging). In-order
		// and early frames must pass the CRC before they can advance the
		// window or enter the reorder buffer; a rejected frame is simply
		// not acknowledged and retransmission repairs it.
		e := c.expect[src]
		switch {
		case m.seq < e:
			nc.DupDiscarded.Add(1)
			c.postAck(src)
		case crcPayload(m.data) != m.crc:
			nc.CrcRejected.Add(1)
		case m.seq > e:
			c.ooo[src][m.seq] = m
		default: // m.seq == e, CRC ok
			c.expect[src] = e + 1
			c.postAck(src)
			if m.era < c.era {
				nc.StaleEraDropped.Add(1)
				continue
			}
			nc.Delivered.Add(1)
			return m, nil
		}
	}
}

// deadlineError classifies an expired deadline: if the peer is dead by
// now this is a death, not a timeout.
func (c *Comm) deadlineError(src int, nc *metrics.TransportCounters) error {
	if c.w.Failed(src) {
		if nc != nil {
			nc.PeerDeaths.Add(1)
		}
		return ErrRankFailed
	}
	if nc != nil {
		nc.Timeouts.Add(1)
	}
	return ErrTimeout
}

// Collective tags (kept clear of the halo tags in halo.go).
const (
	tagReduce = 1 << 20
	tagBcast  = 1 << 21
)

// mustRecv unwraps a Recv inside a non-fault-tolerant protocol (the
// plain collectives, the uniform-grid halo exchange). These have no
// exclusion protocol, so a peer failure or timeout mid-protocol is
// unrecoverable by construction; panicking (instead of the pre-transport
// behavior, hanging forever) makes the misuse loud. Fault-injected runs
// must use the FT collectives in fault.go.
func mustRecv(v []float64, s float64, err error) ([]float64, float64) {
	if err != nil {
		panic("cluster: non-fault-tolerant receive cannot proceed: " + err.Error())
	}
	return v, s
}

// AllReduceMin returns the minimum of x across all ranks. Every rank must
// call it (gather-to-0 + broadcast).
func (c *Comm) AllReduceMin(x float64) float64 {
	return c.allReduce(x, math.Min)
}

// AllReduceSum returns the sum of x across all ranks.
func (c *Comm) AllReduceSum(x float64) float64 {
	return c.allReduce(x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax returns the maximum of x across all ranks.
func (c *Comm) AllReduceMax(x float64) float64 {
	return c.allReduce(x, math.Max)
}

func (c *Comm) allReduce(x float64, op func(a, b float64) float64) float64 {
	n := c.Size()
	if n == 1 {
		return x
	}
	if c.rank == 0 {
		acc := x
		for src := 1; src < n; src++ {
			v, _ := mustRecv(c.Recv(src, tagReduce))
			acc = op(acc, v[0])
		}
		for dst := 1; dst < n; dst++ {
			c.Send(dst, tagBcast, []float64{acc}, 0)
		}
		return acc
	}
	c.Send(0, tagReduce, []float64{x}, 0)
	v, _ := mustRecv(c.Recv(0, tagBcast))
	return v[0]
}

// Barrier synchronises all ranks (an AllReduce of zero).
func (c *Comm) Barrier() { c.allReduce(0, math.Min) }

// Gather collects each rank's slice on rank 0 in rank order; other ranks
// receive nil.
func (c *Comm) Gather(data []float64) [][]float64 {
	n := c.Size()
	if c.rank != 0 {
		c.Send(0, tagReduce, data, 0)
		return nil
	}
	out := make([][]float64, n)
	out[0] = data
	for src := 1; src < n; src++ {
		v, _ := mustRecv(c.Recv(src, tagReduce))
		out[src] = v
	}
	return out
}

// AllGather collects every rank's slice on every rank, in rank order.
// Slices may have different lengths (including zero). Every rank must
// call it. The returned slices alias the transported buffers; callers
// must not mutate them.
func (c *Comm) AllGather(data []float64) [][]float64 {
	n := c.Size()
	if n == 1 {
		return [][]float64{data}
	}
	if c.rank == 0 {
		parts := make([][]float64, n)
		parts[0] = data
		for src := 1; src < n; src++ {
			v, _ := mustRecv(c.Recv(src, tagReduce))
			parts[src] = v
		}
		// Rebroadcast as one flat message: [len_0 … len_{n-1}, payload…].
		flat := make([]float64, n)
		for r, p := range parts {
			flat[r] = float64(len(p))
		}
		for _, p := range parts {
			flat = append(flat, p...)
		}
		for dst := 1; dst < n; dst++ {
			c.Send(dst, tagBcast, flat, 0)
		}
		return parts
	}
	c.Send(0, tagReduce, data, 0)
	flat, _ := mustRecv(c.Recv(0, tagBcast))
	parts := make([][]float64, n)
	off := n
	for r := 0; r < n; r++ {
		l := int(flat[r])
		parts[r] = flat[off : off+l]
		off += l
	}
	return parts
}

// NetModel charges virtual time to messages: Latency seconds per message
// plus size/Bandwidth. The zero value is an ideal (free) network.
type NetModel struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes per second; <= 0 means infinite
}

// Cost returns the virtual transit time of a message of the given bytes.
func (n NetModel) Cost(bytes int) float64 {
	c := n.Latency
	if n.Bandwidth > 0 {
		c += float64(bytes) / n.Bandwidth
	}
	return c
}

// AllReduceCost returns the modelled virtual cost of one scalar allreduce
// on p ranks: a 2·log2(p) latency tree of 8-byte messages.
func (n NetModel) AllReduceCost(p int) float64 {
	if p <= 1 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(p)))
	return 2 * depth * n.Cost(8)
}

// GigE returns a gigabit-Ethernet-class model (50 µs, 125 MB/s).
func GigE() NetModel { return NetModel{Latency: 50e-6, Bandwidth: 125e6} }

// Infiniband returns a QDR InfiniBand-class model (2 µs, 4 GB/s) — the
// interconnect class of 2015 heterogeneous clusters.
func Infiniband() NetModel { return NetModel{Latency: 2e-6, Bandwidth: 4e9} }
