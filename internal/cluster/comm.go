// Package cluster is the distributed-memory substrate of the solver:
// ranks, point-to-point messaging, collectives, one-dimensional domain
// decomposition with halo exchange, and a virtual network model.
//
// Substitution note (see DESIGN.md): the paper ran on an MPI cluster; in
// pure Go, ranks are goroutines and the transport is channels. What
// determines the scaling curves — halo volume, message counts,
// surface-to-volume ratios, exposure (or overlap) of communication
// latency — is preserved exactly. Wall-clock speedup is real up to the
// host's core count; beyond it, the deterministic virtual clock (compute
// charged at a calibrated zone rate, messages charged latency + size/BW,
// timestamps carried on messages) extrapolates the curve shape, which is
// what the strong/weak scaling experiments (E5, E6) report.
package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// message is the unit of transport: payload plus the sender's virtual
// timestamp at posting time.
type message struct {
	tag  int
	data []float64
	// stamp is the sender's virtual clock when the send was posted.
	stamp float64
}

// World owns the mailboxes of a set of ranks.
type World struct {
	size  int
	boxes [][]chan message // boxes[src][dst]
	// Fault-injection state (see fault.go): failed[r] is set by Kill(r)
	// before down[r] is closed, so any observer woken by the close sees
	// the flag. Mailboxes of a dead rank are never closed — a send to a
	// closed channel would panic the (innocent) sender; buffered messages
	// a dead rank posted before dying remain receivable.
	failed []atomic.Bool
	down   []chan struct{}
	killed []sync.Once
}

// mailboxDepth is the buffer depth of each pairwise mailbox. Every
// protocol in this repository posts a bounded number of sends to any
// single peer before turning around and receiving: the uniform-grid halo
// exchange posts at most four face messages per stage (two of which can
// target the same peer only on tiny periodic worlds), the collectives
// post at most two, and the distributed-AMR exchange batches everything
// for a peer into one message per phase. A send therefore never finds
// more than four messages already in flight to the same peer, so a depth
// of eight means Send never blocks mid-protocol and no cyclic
// send-waits-for-send deadlock can form. A receiver blocked in Recv
// additionally drains mismatched tags into its pending stash (see Recv),
// so even bursts of many distinct tags cannot wedge the pair —
// TestDeepTagExchange pins this down.
const mailboxDepth = 8

// NewWorld creates a world of n ranks with buffered pairwise mailboxes.
func NewWorld(n int) *World {
	if n < 1 {
		panic("cluster: world needs at least one rank")
	}
	w := &World{
		size:   n,
		boxes:  make([][]chan message, n),
		failed: make([]atomic.Bool, n),
		down:   make([]chan struct{}, n),
		killed: make([]sync.Once, n),
	}
	for s := 0; s < n; s++ {
		w.boxes[s] = make([]chan message, n)
		w.down[s] = make(chan struct{})
		for d := 0; d < n; d++ {
			w.boxes[s][d] = make(chan message, mailboxDepth)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank r's communicator.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("cluster: rank %d outside world of %d", r, w.size))
	}
	return &Comm{w: w, rank: r, pending: make(map[int][]message)}
}

// Comm is one rank's endpoint. A Comm must only be used from its own
// rank's goroutine.
type Comm struct {
	w    *World
	rank int
	// pending stashes messages that arrived ahead of the tag being waited
	// on (a pair can interleave halo tags, e.g. two-rank periodic rings).
	pending map[int][]message
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Send posts data to dst with a tag and the sender's virtual timestamp.
// Delivery is in-order per (src, dst) pair. The payload is not copied; the
// sender must not mutate it afterwards.
func (c *Comm) Send(dst, tag int, data []float64, stamp float64) {
	c.w.boxes[c.rank][dst] <- message{tag: tag, data: data, stamp: stamp}
}

// Recv blocks for the next message from src carrying the given tag.
// Messages from src with other tags are stashed and delivered to later
// matching Recv calls, preserving per-tag FIFO order.
func (c *Comm) Recv(src, tag int) ([]float64, float64) {
	for i, m := range c.pending[src] {
		if m.tag == tag {
			c.pending[src] = append(c.pending[src][:i], c.pending[src][i+1:]...)
			return m.data, m.stamp
		}
	}
	for {
		m := <-c.w.boxes[src][c.rank]
		if m.tag == tag {
			return m.data, m.stamp
		}
		c.pending[src] = append(c.pending[src], m)
	}
}

// Collective tags (kept clear of the halo tags in halo.go).
const (
	tagReduce = 1 << 20
	tagBcast  = 1 << 21
)

// AllReduceMin returns the minimum of x across all ranks. Every rank must
// call it (gather-to-0 + broadcast).
func (c *Comm) AllReduceMin(x float64) float64 {
	return c.allReduce(x, math.Min)
}

// AllReduceSum returns the sum of x across all ranks.
func (c *Comm) AllReduceSum(x float64) float64 {
	return c.allReduce(x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax returns the maximum of x across all ranks.
func (c *Comm) AllReduceMax(x float64) float64 {
	return c.allReduce(x, math.Max)
}

func (c *Comm) allReduce(x float64, op func(a, b float64) float64) float64 {
	n := c.Size()
	if n == 1 {
		return x
	}
	if c.rank == 0 {
		acc := x
		for src := 1; src < n; src++ {
			v, _ := c.Recv(src, tagReduce)
			acc = op(acc, v[0])
		}
		for dst := 1; dst < n; dst++ {
			c.Send(dst, tagBcast, []float64{acc}, 0)
		}
		return acc
	}
	c.Send(0, tagReduce, []float64{x}, 0)
	v, _ := c.Recv(0, tagBcast)
	return v[0]
}

// Barrier synchronises all ranks (an AllReduce of zero).
func (c *Comm) Barrier() { c.allReduce(0, math.Min) }

// Gather collects each rank's slice on rank 0 in rank order; other ranks
// receive nil.
func (c *Comm) Gather(data []float64) [][]float64 {
	n := c.Size()
	if c.rank != 0 {
		c.Send(0, tagReduce, data, 0)
		return nil
	}
	out := make([][]float64, n)
	out[0] = data
	for src := 1; src < n; src++ {
		v, _ := c.Recv(src, tagReduce)
		out[src] = v
	}
	return out
}

// AllGather collects every rank's slice on every rank, in rank order.
// Slices may have different lengths (including zero). Every rank must
// call it. The returned slices alias the transported buffers; callers
// must not mutate them.
func (c *Comm) AllGather(data []float64) [][]float64 {
	n := c.Size()
	if n == 1 {
		return [][]float64{data}
	}
	if c.rank == 0 {
		parts := make([][]float64, n)
		parts[0] = data
		for src := 1; src < n; src++ {
			v, _ := c.Recv(src, tagReduce)
			parts[src] = v
		}
		// Rebroadcast as one flat message: [len_0 … len_{n-1}, payload…].
		flat := make([]float64, n)
		for r, p := range parts {
			flat[r] = float64(len(p))
		}
		for _, p := range parts {
			flat = append(flat, p...)
		}
		for dst := 1; dst < n; dst++ {
			c.Send(dst, tagBcast, flat, 0)
		}
		return parts
	}
	c.Send(0, tagReduce, data, 0)
	flat, _ := c.Recv(0, tagBcast)
	parts := make([][]float64, n)
	off := n
	for r := 0; r < n; r++ {
		l := int(flat[r])
		parts[r] = flat[off : off+l]
		off += l
	}
	return parts
}

// NetModel charges virtual time to messages: Latency seconds per message
// plus size/Bandwidth. The zero value is an ideal (free) network.
type NetModel struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes per second; <= 0 means infinite
}

// Cost returns the virtual transit time of a message of the given bytes.
func (n NetModel) Cost(bytes int) float64 {
	c := n.Latency
	if n.Bandwidth > 0 {
		c += float64(bytes) / n.Bandwidth
	}
	return c
}

// AllReduceCost returns the modelled virtual cost of one scalar allreduce
// on p ranks: a 2·log2(p) latency tree of 8-byte messages.
func (n NetModel) AllReduceCost(p int) float64 {
	if p <= 1 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(p)))
	return 2 * depth * n.Cost(8)
}

// GigE returns a gigabit-Ethernet-class model (50 µs, 125 MB/s).
func GigE() NetModel { return NetModel{Latency: 50e-6, Bandwidth: 125e6} }

// Infiniband returns a QDR InfiniBand-class model (2 µs, 4 GB/s) — the
// interconnect class of 2015 heterogeneous clusters.
func Infiniband() NetModel { return NetModel{Latency: 2e-6, Bandwidth: 4e9} }
