package cluster

// Deterministic network fault injection. Every delivery attempt of a
// frame is perturbed (or not) by a pure function of
// (seed, src, dst, tag, seq, attempt), so a chaos schedule is exactly
// reproducible from its seed alone — no wall-clock state, no RNG
// stream shared across pairs. Faults per frame are bounded: once
// MaxFaultsPerMessage attempts of one frame have been perturbed, every
// further attempt passes clean, so retransmission always terminates
// and any seeded schedule without a Silence fault is maskable.

import (
	"math"
	"sync"

	"rhsc/internal/metrics"
)

// ChaosSpec configures the deterministic fault injector. Probabilities
// are per delivery attempt and mutually exclusive (a single uniform
// draw selects at most one fault per attempt); their sum must be < 1.
type ChaosSpec struct {
	Seed uint64
	// Drop vanishes the frame.
	Drop float64
	// Duplicate delivers the frame twice back to back.
	Duplicate float64
	// Delay holds the frame in limbo until DelaySlots further frames
	// have crossed the same (src, dst) pair, then delivers it — a
	// bounded reordering.
	Delay      float64
	DelaySlots int // default 3
	// Corrupt flips one payload bit in a copy of the frame (the
	// sender's buffer is never touched); the receiver's CRC32C check
	// rejects it and retransmission repairs it.
	Corrupt float64
	// MaxFaultsPerMessage bounds perturbed attempts per frame; further
	// attempts pass clean. Default 4.
	MaxFaultsPerMessage int
	// Silence, when non-nil, permanently vanishes every frame (and
	// acknowledgement) rank Silence.Rank sends once it has posted
	// Silence.AfterSends frames — an unmaskable partition: the rank is
	// alive but mute, and the deadline layer must convert it into a
	// rank-failure recovery.
	Silence *SilenceFault
}

// SilenceFault mutes one rank's outbound traffic permanently after its
// AfterSends-th posted frame.
type SilenceFault struct {
	Rank       int
	AfterSends int
}

func (s *ChaosSpec) normalize() {
	if s.DelaySlots <= 0 {
		s.DelaySlots = 3
	}
	if s.MaxFaultsPerMessage <= 0 {
		s.MaxFaultsPerMessage = 4
	}
}

// limboFrame is a delayed frame waiting out its slot count.
type limboFrame struct {
	m         message
	remaining int
}

// pairChaos is the per-(src,dst) injector state: how many attempts of
// each live sequence number were perturbed, and the delayed frames.
type pairChaos struct {
	faults map[uint64]int
	limbo  []limboFrame
}

type chaosNet struct {
	spec     ChaosSpec
	counters *metrics.TransportCounters

	mu    sync.Mutex
	pairs [][]*pairChaos // [src][dst]
	sends []int          // frames posted per src (for Silence)
}

func newChaosNet(n int, spec *ChaosSpec, counters *metrics.TransportCounters) *chaosNet {
	s := *spec
	s.normalize()
	c := &chaosNet{spec: s, counters: counters, sends: make([]int, n)}
	c.pairs = make([][]*pairChaos, n)
	for i := range c.pairs {
		c.pairs[i] = make([]*pairChaos, n)
		for j := range c.pairs[i] {
			c.pairs[i][j] = &pairChaos{faults: map[uint64]int{}}
		}
	}
	return c
}

// mix64 is a splitmix64-style finalizer: a high-quality deterministic
// hash of the frame identity.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c *chaosNet) draw(src, dst, tag int, seq uint64, attempt int, salt uint64) uint64 {
	h := c.spec.Seed
	h = mix64(h ^ uint64(src)<<40 ^ uint64(dst)<<20 ^ uint64(uint32(tag)))
	h = mix64(h ^ seq)
	h = mix64(h ^ uint64(attempt)<<8 ^ salt)
	return h
}

// uniform maps a hash to [0, 1).
func uniform(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// chaosAction is the injector's verdict for one delivery attempt.
type chaosAction int

const (
	actClean chaosAction = iota
	actDrop
	actDup
	actDelay
	actCorrupt
)

// deliver runs one delivery attempt of m from src to dst through the
// injector and pushes the surviving copies onto push (which must not
// block; reliable mode drops on a full mailbox).
func (c *chaosNet) deliver(src, dst, attempt int, m message, push func(message) bool) {
	c.mu.Lock()
	spec := &c.spec
	if s := spec.Silence; s != nil && src == s.Rank {
		c.sends[src]++
		if c.sends[src] > s.AfterSends {
			c.mu.Unlock()
			c.counters.ChaosDropped.Add(1)
			return
		}
	}
	pair := c.pairs[src][dst]
	act := actClean
	if pair.faults[m.seq] < spec.MaxFaultsPerMessage {
		u := uniform(c.draw(src, dst, m.tag, m.seq, attempt, 0x9e3779b97f4a7c15))
		switch {
		case u < spec.Drop:
			act = actDrop
		case u < spec.Drop+spec.Duplicate:
			act = actDup
		case u < spec.Drop+spec.Duplicate+spec.Delay:
			act = actDelay
		case u < spec.Drop+spec.Duplicate+spec.Delay+spec.Corrupt && len(m.data) > 0:
			act = actCorrupt
		}
		if act != actClean {
			pair.faults[m.seq]++
		}
	}

	// Collect the frames this attempt releases: the (possibly mutated)
	// frame itself plus any limbo frames whose slot count expires as
	// this attempt crosses the pair.
	var out []message
	switch act {
	case actDrop:
		c.counters.ChaosDropped.Add(1)
	case actDup:
		c.counters.ChaosDuplicated.Add(1)
		out = append(out, m, m)
	case actDelay:
		c.counters.ChaosDelayed.Add(1)
		pair.limbo = append(pair.limbo, limboFrame{m: m, remaining: spec.DelaySlots})
	case actCorrupt:
		c.counters.ChaosCorrupted.Add(1)
		corrupted := m
		corrupted.data = append([]float64(nil), m.data...)
		h := c.draw(src, dst, m.tag, m.seq, attempt, 0xd1b54a32d192ed03)
		word := int(h % uint64(len(corrupted.data)))
		bit := uint((h >> 32) % 64)
		corrupted.data[word] = math.Float64frombits(
			math.Float64bits(corrupted.data[word]) ^ (1 << bit))
		out = append(out, corrupted)
	default:
		out = append(out, m)
	}
	// Advance the pair's limbo clock by one slot and release expired
	// frames behind the current attempt.
	kept := pair.limbo[:0]
	for _, lf := range pair.limbo {
		lf.remaining--
		if lf.remaining <= 0 {
			out = append(out, lf.m)
		} else {
			kept = append(kept, lf)
		}
	}
	pair.limbo = kept
	// Prune fault bookkeeping for long-dead sequence numbers so the map
	// stays bounded on long runs.
	if len(pair.faults) > 4096 {
		for s := range pair.faults {
			if s+2048 < m.seq {
				delete(pair.faults, s)
			}
		}
	}
	c.mu.Unlock()

	for _, f := range out {
		push(f)
	}
}

// ackPass reports whether an acknowledgement (dst → src, cumulative
// cum) survives the fabric. Acks are cumulative and re-posted on every
// accepted frame, so dropping some is always masked; they share the
// Drop probability and the Silence fault.
func (c *chaosNet) ackPass(from, to int, cum uint64) bool {
	c.mu.Lock()
	spec := &c.spec
	if s := spec.Silence; s != nil && from == s.Rank {
		c.sends[from]++
		if c.sends[from] > s.AfterSends {
			c.mu.Unlock()
			return false
		}
	}
	c.mu.Unlock()
	if spec.Drop <= 0 {
		return true
	}
	h := c.draw(from, to, -1, cum, 0, 0xeb44accab455d165)
	return uniform(h) >= spec.Drop
}
