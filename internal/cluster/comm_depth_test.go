package cluster

import (
	"sync"
	"testing"
	"time"
)

// TestDeepTagExchange pins the claim documented on mailboxDepth: a burst
// of many more outstanding messages than the mailbox depth cannot wedge
// a pair, because a receiver blocked on one tag drains and stashes the
// others. Rank 0 posts 32 distinctly tagged messages; rank 1 asks for
// them in reverse order, so the very first Recv must swallow 31
// mismatches through an 8-deep channel.
func TestDeepTagExchange(t *testing.T) {
	const tags = 32
	w := NewWorld(2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		for tag := 0; tag < tags; tag++ {
			c.Send(1, tag, []float64{float64(tag)}, 0)
		}
	}()
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		for tag := tags - 1; tag >= 0; tag-- {
			data, _, _ := c.Recv(0, tag)
			if len(data) != 1 || data[0] != float64(tag) {
				t.Errorf("tag %d: got %v", tag, data)
				return
			}
		}
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deep tag exchange deadlocked")
	}
}

// TestPerTagOrder checks that stashing preserves per-tag FIFO order when
// two tags interleave.
func TestPerTagOrder(t *testing.T) {
	w := NewWorld(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		for i := 0; i < 4; i++ {
			c.Send(1, i%2, []float64{float64(i)}, 0)
		}
	}()
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		// Tag 1 first: forces tag-0 messages through the stash.
		a, _, _ := c.Recv(0, 1)
		b, _, _ := c.Recv(0, 1)
		x, _, _ := c.Recv(0, 0)
		y, _, _ := c.Recv(0, 0)
		if a[0] != 1 || b[0] != 3 || x[0] != 0 || y[0] != 2 {
			t.Errorf("per-tag order broken: %v %v %v %v", a, b, x, y)
		}
	}()
	wg.Wait()
}

// TestAllGather checks the variable-length allgather every rank of the
// distributed-AMR driver uses to publish refinement indicators.
func TestAllGather(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	var wg sync.WaitGroup
	wg.Add(n)
	errs := make([]string, n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			// Rank r contributes r values (rank 0 contributes none).
			data := make([]float64, rank)
			for i := range data {
				data[i] = float64(rank*100 + i)
			}
			parts := c.AllGather(data)
			if len(parts) != n {
				errs[rank] = "wrong part count"
				return
			}
			for src, part := range parts {
				if len(part) != src {
					errs[rank] = "wrong part length"
					return
				}
				for i, v := range part {
					if v != float64(src*100+i) {
						errs[rank] = "wrong payload"
						return
					}
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, e := range errs {
		if e != "" {
			t.Errorf("rank %d: %s", rank, e)
		}
	}
}
