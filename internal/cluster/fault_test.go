package cluster

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

func TestFaultRecvErrDrainsBeforeFailing(t *testing.T) {
	w := NewWorld(2)
	a, b := w.Comm(0), w.Comm(1)
	// Rank 0 posts two messages (one on a mismatched tag) and dies.
	a.Send(1, 7, []float64{1}, 0)
	a.Send(1, 9, []float64{2}, 0)
	a.Kill()

	// The mismatched tag is stashed, the matching one delivered.
	v, _, err := b.RecvErr(0, 9)
	if err != nil || v[0] != 2 {
		t.Fatalf("RecvErr(9) = %v, %v", v, err)
	}
	v, _, err = b.RecvErr(0, 7)
	if err != nil || v[0] != 1 {
		t.Fatalf("RecvErr(7) = %v, %v", v, err)
	}
	// Mailbox empty, sender dead: typed failure.
	if _, _, err = b.RecvErr(0, 7); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("expected ErrRankFailed, got %v", err)
	}
}

func TestFaultRecvErrWakesBlockedReceiver(t *testing.T) {
	w := NewWorld(2)
	b := w.Comm(1)
	done := make(chan error, 1)
	go func() {
		_, _, err := b.RecvErr(0, 7) // blocks: nothing sent
		done <- err
	}()
	w.Kill(0)
	if err := <-done; !errors.Is(err, ErrRankFailed) {
		t.Fatalf("expected ErrRankFailed, got %v", err)
	}
}

// runFT spawns one goroutine per alive rank, runs fn, and collects each
// rank's (value, survivors). The victim (if any) is killed first and
// never calls the collective, like a rank dying at the top of its loop.
func runFT(t *testing.T, n, victim int, fn func(c *Comm) (float64, []int, error)) (map[int]float64, map[int][]int) {
	t.Helper()
	w := NewWorld(n)
	if victim >= 0 {
		w.Kill(victim)
	}
	vals := make(map[int]float64)
	lists := make(map[int][]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v, alive, err := fn(w.Comm(r))
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			mu.Lock()
			vals[r] = v
			lists[r] = alive
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	return vals, lists
}

func TestFaultFTAllReduceMinNoFailure(t *testing.T) {
	parts := []int{0, 1, 2, 3}
	vals, lists := runFT(t, 4, -1, func(c *Comm) (float64, []int, error) {
		return c.FTAllReduceMin(float64(10-c.Rank()), parts)
	})
	for r, v := range vals {
		if v != 7 {
			t.Fatalf("rank %d: min = %v, want 7", r, v)
		}
		if !reflect.DeepEqual(lists[r], parts) {
			t.Fatalf("rank %d: survivors = %v", r, lists[r])
		}
	}
}

func TestFaultFTAllReduceMinExcludesDead(t *testing.T) {
	parts := []int{0, 1, 2, 3}
	// Victim 2 carried the smallest value; it must be excluded.
	vals, lists := runFT(t, 4, 2, func(c *Comm) (float64, []int, error) {
		return c.FTAllReduceMin(float64(10-c.Rank()), parts)
	})
	want := []int{0, 1, 3}
	for r, v := range vals {
		if v != 7 {
			t.Fatalf("rank %d: min = %v, want 7", r, v)
		}
		if !reflect.DeepEqual(lists[r], want) {
			t.Fatalf("rank %d: survivors = %v, want %v", r, lists[r], want)
		}
	}
	if len(vals) != 3 {
		t.Fatalf("%d survivors returned", len(vals))
	}
}

func TestFaultFTAllReduceMinRootDeath(t *testing.T) {
	parts := []int{0, 1, 2, 3}
	vals, lists := runFT(t, 4, 0, func(c *Comm) (float64, []int, error) {
		return c.FTAllReduceMin(float64(10-c.Rank()), parts)
	})
	want := []int{1, 2, 3}
	for r, v := range vals {
		if v != 7 {
			t.Fatalf("rank %d: min = %v, want 7", r, v)
		}
		if !reflect.DeepEqual(lists[r], want) {
			t.Fatalf("rank %d: survivors = %v, want %v", r, lists[r], want)
		}
	}
}

func TestFaultFTAllGather(t *testing.T) {
	parts := []int{0, 1, 2, 3}
	w := NewWorld(4)
	w.Kill(1)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		if r == 1 {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			out, alive, err := c.FTAllGather([]float64{float64(r), float64(r * r)}, parts)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			if !reflect.DeepEqual(alive, []int{0, 2, 3}) {
				t.Errorf("rank %d: survivors = %v", r, alive)
				return
			}
			if out[1] != nil {
				t.Errorf("rank %d: dead rank has data %v", r, out[1])
			}
			for _, p := range alive {
				want := []float64{float64(p), float64(p * p)}
				if !reflect.DeepEqual(out[p], want) {
					t.Errorf("rank %d: out[%d] = %v, want %v", r, p, out[p], want)
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestFaultAliveRanks(t *testing.T) {
	w := NewWorld(4)
	w.Kill(2)
	w.Kill(2) // idempotent
	if got := w.AliveRanks(); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("AliveRanks = %v", got)
	}
	if !w.Failed(2) || w.Failed(0) {
		t.Fatal("Failed flags wrong")
	}
}
