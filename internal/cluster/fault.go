package cluster

// Deterministic injectable rank faults. A rank "fails" by calling Kill on
// itself and returning from its driver loop; it never closes its
// mailboxes (closing would panic later senders) and never sends again.
// Survivors observe the failure either by reading Failed, or — the only
// race-free way during a protocol — through RecvErr, whose wake-up on the
// victim's down channel happens-after Kill.
//
// Failure model (matches the damr recovery protocol): fail-stop, one
// failure per detection window, failures only between protocol phases
// (the injection harness fires at the top of the step loop). The
// fault-tolerant collectives below additionally survive the root dying
// mid-collective, because a victim that fails at a loop top may be the
// root of the very next collective.

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrRankFailed reports that a peer rank failed; use errors.Is to match.
var ErrRankFailed = errors.New("cluster: peer rank failed")

// Kill marks rank r failed. Safe to call multiple times and from any
// goroutine; the flag is published before the down channel closes, so
// every observer woken by the close sees Failed(r) == true.
func (w *World) Kill(r int) {
	w.failed[r].Store(true)
	w.killed[r].Do(func() { close(w.down[r]) })
}

// Failed reports whether rank r has been killed.
func (w *World) Failed(r int) bool { return w.failed[r].Load() }

// AliveRanks returns the ranks not (yet) killed, ascending. Note the
// caveat in the package comment: concurrent with a Kill this is only
// eventually consistent — protocols needing agreement must derive the
// survivor set from a fault-tolerant collective instead.
func (w *World) AliveRanks() []int {
	alive := make([]int, 0, w.size)
	for r := 0; r < w.size; r++ {
		if !w.Failed(r) {
			alive = append(alive, r)
		}
	}
	return alive
}

// Kill marks this communicator's own rank failed (the injection entry
// point: a rank kills itself and stops participating).
func (c *Comm) Kill() { c.w.Kill(c.rank) }

// Failed reports whether rank r has been killed.
func (c *Comm) Failed(r int) bool { return c.w.Failed(r) }

// AliveRanks returns the ranks not yet killed, ascending.
func (c *Comm) AliveRanks() []int { return c.w.AliveRanks() }

// RecvErr is Recv with failure detection: it blocks for the next message
// from src with the given tag, but returns ErrRankFailed once src is dead
// and everything it sent before dying (or, in reliable mode, everything
// its retransmitter can still repair) has been drained. Messages with
// other tags are stashed exactly like Recv. Since the transport layer
// unified the receive paths, RecvErr and Recv are the same call; the
// name is kept for the protocols written against the fail-stop model.
func (c *Comm) RecvErr(src, tag int) ([]float64, float64, error) {
	return c.recvTagged(src, tag, c.w.RecvDeadline(), false, 0)
}

// SeenAlarm records the alarm generation this rank has already processed
// (snapshot at its recovery point). Interruptible receives — including
// the FT collectives on a transport world — wake with ErrInterrupted as
// soon as the world alarm moves past it.
func (c *Comm) SeenAlarm(gen uint64) { c.alarmSeen = gen }

// AlarmGen returns the world's current alarm generation.
func (c *Comm) AlarmGen() uint64 { return c.w.AlarmGen() }

// Suspect converts a timed-out receive from p into the revocation
// protocol: if this rank has itself been excluded meanwhile (a
// partitioned rank usually discovers its own exclusion this way, because
// its point-to-point deadlines are longer than its peers'), it must bow
// out; if another detector already raised the alarm, join that recovery
// round; otherwise declare p dead and raise the alarm so every rank
// unwinds to recovery. Kill happens strictly before Alarm, so every rank
// woken by the alarm computes the same survivor set.
func (c *Comm) Suspect(p int) error {
	if c.w.Failed(c.rank) {
		return fmt.Errorf("%w: rank %d", ErrSelfExcluded, c.rank)
	}
	if _, gen := c.w.alarms.state(); gen != c.alarmSeen {
		return fmt.Errorf("%w: while suspecting rank %d", ErrInterrupted, p)
	}
	c.w.Kill(p)
	c.w.Alarm()
	return fmt.Errorf("%w: rank %d unresponsive, alarm raised", ErrInterrupted, p)
}

// ftRecv is the receive primitive of the FT collectives. On a default
// world it is exactly the historical RecvErr (blocking, death-aware). On
// a transport world it is additionally bounded by mult × the base
// deadline and interruptible by the recovery alarm.
func (c *Comm) ftRecv(src, tag, mult int) ([]float64, float64, error) {
	if c.w.tc == nil {
		return c.recvTagged(src, tag, 0, false, 0)
	}
	d := c.w.tc.RecvDeadline
	if d > 0 {
		d *= time.Duration(mult)
	}
	return c.recvTagged(src, tag, d, true, c.alarmSeen)
}

// Fault-tolerant collective tags (clear of halo, reduce and damr tags).
const (
	tagFTReduce = 1 << 22
	tagFTBcast  = 1 << 23
)

// FTAllReduceMin is AllReduceMin over a participant list that survives
// rank failures. participants must be ascending, identical on every
// calling rank, and contain the caller; every participant that is alive
// must call it. The root (lowest participant) gathers with RecvErr, so a
// participant that died before contributing is simply excluded; the root
// then broadcasts the reduced value together with the survivor list, and
// every survivor returns the same (value, survivors) pair. If the root
// itself died, the remaining participants retry with the next rank as
// root (first-round contributions sent to the dead root rot unread in its
// mailboxes, so retries cannot observe stale data). The error is always
// nil today; it is reserved for exhaustion of the participant list.
func (c *Comm) FTAllReduceMin(x float64, participants []int) (float64, []int, error) {
	parts := append([]int(nil), participants...)
	for {
		if len(parts) == 0 {
			return 0, nil, fmt.Errorf("%w: no participants left", ErrRankFailed)
		}
		if len(parts) == 1 {
			return x, parts, nil
		}
		root := parts[0]
		if c.rank == root {
			val := x
			alive := []int{root}
			for _, p := range parts[1:] {
				v, _, err := c.ftRecv(p, tagFTReduce, 1)
				if errors.Is(err, ErrTimeout) {
					return 0, nil, c.Suspect(p)
				}
				if err != nil && !errors.Is(err, ErrRankFailed) {
					return 0, nil, err // interrupted or self-excluded
				}
				if err != nil {
					continue // p died before contributing
				}
				if v[0] < val {
					val = v[0]
				}
				alive = append(alive, p)
			}
			payload := make([]float64, 0, 2+len(alive))
			payload = append(payload, val, float64(len(alive)))
			for _, p := range alive {
				payload = append(payload, float64(p))
			}
			for _, p := range alive[1:] {
				c.Send(p, tagFTBcast, payload, 0)
			}
			return val, alive, nil
		}
		c.Send(root, tagFTReduce, []float64{x}, 0)
		// The non-root deadline is scaled well past the root's per-peer
		// deadline: the root may legitimately wait ~len(parts) deadlines
		// before broadcasting, and a partitioned rank must discover its
		// own exclusion (ErrSelfExcluded via Suspect) before it can
		// falsely suspect a live root.
		v, _, err := c.ftRecv(root, tagFTBcast, len(parts)+2)
		if errors.Is(err, ErrTimeout) {
			return 0, nil, c.Suspect(root)
		}
		if err != nil && !errors.Is(err, ErrRankFailed) {
			return 0, nil, err // interrupted or self-excluded
		}
		if err != nil {
			// Root died: drop it and retry with the next participant as
			// root. (Our contribution above is lost in its mailbox.)
			parts = parts[1:]
			continue
		}
		val := v[0]
		n := int(v[1])
		alive := make([]int, n)
		for i := 0; i < n; i++ {
			alive[i] = int(v[2+i])
		}
		return val, alive, nil
	}
}

// FTAllGather is AllGather with the same failure semantics as
// FTAllReduceMin: the returned slice is indexed by world rank (nil for
// ranks that did not participate or died before contributing), and every
// survivor gets the same survivor list. The returned slices alias
// transported buffers; callers must not mutate them.
func (c *Comm) FTAllGather(data []float64, participants []int) ([][]float64, []int, error) {
	parts := append([]int(nil), participants...)
	for {
		if len(parts) == 0 {
			return nil, nil, fmt.Errorf("%w: no participants left", ErrRankFailed)
		}
		if len(parts) == 1 {
			out := make([][]float64, c.w.size)
			out[c.rank] = data
			return out, parts, nil
		}
		root := parts[0]
		if c.rank == root {
			out := make([][]float64, c.w.size)
			out[root] = data
			alive := []int{root}
			for _, p := range parts[1:] {
				v, _, err := c.ftRecv(p, tagFTReduce, 1)
				if errors.Is(err, ErrTimeout) {
					return nil, nil, c.Suspect(p)
				}
				if err != nil && !errors.Is(err, ErrRankFailed) {
					return nil, nil, err
				}
				if err != nil {
					continue
				}
				out[p] = v
				alive = append(alive, p)
			}
			sort.Ints(alive)
			// Flat rebroadcast: [nAlive, ranks…, lens…, payload…].
			flat := make([]float64, 0, 1+2*len(alive))
			flat = append(flat, float64(len(alive)))
			for _, p := range alive {
				flat = append(flat, float64(p))
			}
			for _, p := range alive {
				flat = append(flat, float64(len(out[p])))
			}
			for _, p := range alive {
				flat = append(flat, out[p]...)
			}
			for _, p := range alive {
				if p != root {
					c.Send(p, tagFTBcast, flat, 0)
				}
			}
			return out, alive, nil
		}
		c.Send(root, tagFTReduce, data, 0)
		flat, _, err := c.ftRecv(root, tagFTBcast, len(parts)+2)
		if errors.Is(err, ErrTimeout) {
			return nil, nil, c.Suspect(root)
		}
		if err != nil && !errors.Is(err, ErrRankFailed) {
			return nil, nil, err
		}
		if err != nil {
			parts = parts[1:]
			continue
		}
		n := int(flat[0])
		alive := make([]int, n)
		for i := 0; i < n; i++ {
			alive[i] = int(flat[1+i])
		}
		out := make([][]float64, c.w.size)
		off := 1 + 2*n
		for i, p := range alive {
			l := int(flat[1+n+i])
			out[p] = flat[off : off+l]
			off += l
		}
		return out, alive, nil
	}
}
