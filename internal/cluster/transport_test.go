package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// withTimeout fails the test if fn does not return within d — the
// transport contract says no fault schedule may hang a receive.
func withTimeout(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { defer close(done); fn() }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("operation hung past the deadline")
	}
}

// TestRecvPeerDeathTyped pins the satellite-1 regression: a Recv on the
// default world whose peer dies must surface ErrRankFailed, not hang.
func TestRecvPeerDeathTyped(t *testing.T) {
	w := NewWorld(2)
	c1 := w.Comm(1)
	w.Kill(0)
	withTimeout(t, 5*time.Second, func() {
		if _, _, err := c1.Recv(0, 3); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Recv from dead peer: err = %v, want ErrRankFailed", err)
		}
	})
}

// TestRecvDrainThenFail checks that messages a rank sent before dying
// are still delivered before its death surfaces.
func TestRecvDrainThenFail(t *testing.T) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, 4, []float64{1}, 0)
	c0.Send(1, 4, []float64{2}, 0)
	w.Kill(0)
	withTimeout(t, 5*time.Second, func() {
		for want := 1.0; want <= 2; want++ {
			d, _, err := c1.Recv(0, 4)
			if err != nil || d[0] != want {
				t.Fatalf("drain: got %v, %v, want [%v]", d, err, want)
			}
		}
		if _, _, err := c1.Recv(0, 4); !errors.Is(err, ErrRankFailed) {
			t.Errorf("after drain: err = %v, want ErrRankFailed", err)
		}
	})
}

// TestRecvTimeoutTyped checks that a bounded receive with no sender
// surfaces ErrTimeout (and is counted), never blocking past the bound.
func TestRecvTimeoutTyped(t *testing.T) {
	w := NewWorldTransport(2, TransportConfig{Reliable: true, RTO: time.Millisecond})
	defer w.Close()
	c1 := w.Comm(1)
	withTimeout(t, 5*time.Second, func() {
		if _, _, err := c1.RecvTimeout(0, 1, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	if got := w.NetCounters().Snapshot().Timeouts; got != 1 {
		t.Errorf("Timeouts = %d, want 1", got)
	}
}

// TestReliableCleanDelivery runs the reliable protocol with no chaos:
// everything arrives intact, in per-tag order, with no repairs needed.
func TestReliableCleanDelivery(t *testing.T) {
	const n = 100
	w := NewWorldTransport(2, TransportConfig{Reliable: true, RTO: 50 * time.Millisecond})
	defer w.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		for i := 0; i < n; i++ {
			c.Send(1, i%3, []float64{float64(i), float64(i) * 0.5}, float64(i))
		}
	}()
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		for i := 0; i < n; i++ {
			d, s, err := c.RecvTimeout(0, i%3, 5*time.Second)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if len(d) != 2 || d[0] != float64(i) || s != float64(i) {
				t.Errorf("recv %d: got %v, %v", i, d, s)
				return
			}
		}
	}()
	wg.Wait()
	snap := w.NetCounters().Snapshot()
	if snap.Sent != n {
		t.Errorf("Sent = %d, want %d", snap.Sent, n)
	}
	if snap.Delivered != n {
		t.Errorf("Delivered = %d, want %d", snap.Delivered, n)
	}
	if snap.CrcRejected != 0 || snap.Abandoned != 0 {
		t.Errorf("clean run repaired: %+v", snap)
	}
}

// chaosPattern runs a fixed all-pairs exchange over the given transport
// and returns every received payload in a deterministic order.
func chaosPattern(t *testing.T, tc TransportConfig) [][]float64 {
	t.Helper()
	const ranks, msgs = 3, 40
	w := NewWorldTransport(ranks, tc)
	defer w.Close()
	out := make([][][]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			for i := 0; i < msgs; i++ {
				for dst := 0; dst < ranks; dst++ {
					if dst != r {
						c.Send(dst, i%4, []float64{float64(r*1000 + i), float64(i) * 1.5}, float64(i))
					}
				}
			}
			for src := 0; src < ranks; src++ {
				if src == r {
					continue
				}
				for i := 0; i < msgs; i++ {
					d, s, err := c.RecvTimeout(src, i%4, 10*time.Second)
					if err != nil {
						t.Errorf("rank %d recv %d from %d: %v", r, i, src, err)
						return
					}
					out[r] = append(out[r], append([]float64{float64(src), s}, d...))
				}
			}
		}(r)
	}
	wg.Wait()
	var flat [][]float64
	for _, per := range out {
		flat = append(flat, per...)
	}
	return flat
}

// TestChaosMaskedBitwise is the core masking contract: under a seeded
// chaos schedule of drops, duplicates, delays, and corruptions, every
// payload and stamp the application sees is bitwise identical to the
// clean fabric — and the schedule itself is reproducible.
func TestChaosMaskedBitwise(t *testing.T) {
	clean := chaosPattern(t, TransportConfig{Reliable: true, RTO: time.Millisecond})
	chaos := TransportConfig{
		Chaos: &ChaosSpec{Seed: 42, Drop: 0.25, Duplicate: 0.15, Delay: 0.15, Corrupt: 0.1},
		RTO:   time.Millisecond,
	}
	withTimeout(t, 60*time.Second, func() {
		first := chaosPattern(t, chaos)
		if fmt.Sprint(first) != fmt.Sprint(clean) {
			t.Fatal("chaos run diverged from clean run")
		}
		second := chaosPattern(t, chaos)
		if fmt.Sprint(second) != fmt.Sprint(first) {
			t.Fatal("same seed produced different results")
		}
	})

	// The schedule must actually have injected faults and repaired them.
	w := NewWorldTransport(2, chaos)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		for i := 0; i < 200; i++ {
			c.Send(1, 0, []float64{float64(i)}, 0)
		}
	}()
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		for i := 0; i < 200; i++ {
			d, _, err := c.RecvTimeout(0, 0, 10*time.Second)
			if err != nil || d[0] != float64(i) {
				t.Errorf("recv %d: %v, %v", i, d, err)
				return
			}
		}
	}()
	wg.Wait()
	snap := w.NetCounters().Snapshot()
	w.Close()
	if snap.ChaosDropped == 0 || snap.ChaosDuplicated == 0 || snap.ChaosCorrupted == 0 {
		t.Errorf("chaos injected nothing: %+v", snap)
	}
	if snap.Retransmits == 0 || snap.CrcRejected == 0 || snap.DupDiscarded == 0 {
		t.Errorf("no repairs observed: %+v", snap)
	}
}

// TestChaosSilenceSuspect checks the unmaskable fault path: a silenced
// rank times out, and Suspect converts the timeout into exclusion plus
// a raised alarm rather than a hang or a silent wrong answer.
func TestChaosSilenceSuspect(t *testing.T) {
	w := NewWorldTransport(2, TransportConfig{
		Chaos:        &ChaosSpec{Seed: 7, Silence: &SilenceFault{Rank: 0, AfterSends: 0}},
		RTO:          time.Millisecond,
		RecvDeadline: 50 * time.Millisecond,
	})
	defer w.Close()
	c1 := w.Comm(1)
	w.Comm(0).Send(1, 1, []float64{1}, 0) // muted by the silence fault
	withTimeout(t, 5*time.Second, func() {
		_, _, err := c1.Recv(0, 1)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("recv from silenced rank: err = %v, want ErrTimeout", err)
		}
		if err := c1.Suspect(0); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("Suspect: err = %v, want ErrInterrupted", err)
		}
	})
	if !w.Failed(0) {
		t.Error("suspected rank not excluded")
	}
	if w.AlarmGen() != 1 {
		t.Errorf("AlarmGen = %d, want 1", w.AlarmGen())
	}
}

// TestAlarmInterruptsRecv checks that a raised alarm unblocks an
// interruptible receive immediately with ErrInterrupted.
func TestAlarmInterruptsRecv(t *testing.T) {
	w := NewWorldTransport(2, TransportConfig{Reliable: true, RTO: time.Millisecond})
	defer w.Close()
	c1 := w.Comm(1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		w.Alarm()
	}()
	withTimeout(t, 5*time.Second, func() {
		start := time.Now()
		_, _, err := c1.RecvInterruptible(0, 1, 10*time.Second, 0)
		if !errors.Is(err, ErrInterrupted) {
			t.Errorf("err = %v, want ErrInterrupted", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Error("interrupt did not unblock promptly")
		}
	})
}

// TestEraDiscardsStaleFrames checks that after an era advance the
// receiver acknowledges-and-discards frames of the aborted era, and
// fresh-era traffic flows normally.
func TestEraDiscardsStaleFrames(t *testing.T) {
	w := NewWorldTransport(2, TransportConfig{Reliable: true, RTO: time.Millisecond})
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, 1, []float64{1}, 0) // era 0 frame
	c1.SetEra(1)
	withTimeout(t, 5*time.Second, func() {
		if _, _, err := c1.RecvTimeout(0, 1, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("stale frame delivered: err = %v, want ErrTimeout", err)
		}
		c0.SetEra(1)
		c0.Send(1, 1, []float64{2}, 0)
		d, _, err := c1.RecvTimeout(0, 1, 5*time.Second)
		if err != nil || d[0] != 2 {
			t.Fatalf("fresh frame: got %v, %v", d, err)
		}
	})
	if got := w.NetCounters().Snapshot().StaleEraDropped; got != 1 {
		t.Errorf("StaleEraDropped = %d, want 1", got)
	}
}

// TestKillRaceFailedBeforeDown hammers the satellite-3 ordering under
// the race detector: however a concurrent Kill interleaves with an
// in-flight stream, the moment Recv surfaces ErrRankFailed the Failed
// flag must already be visible.
func TestKillRaceFailedBeforeDown(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		w := NewWorld(2)
		const n = 200
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			c := w.Comm(0)
			for i := 0; i < n; i++ {
				c.Send(1, 0, []float64{float64(i)}, 0)
			}
		}()
		killed := make(chan struct{})
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(trial%5) * 100 * time.Microsecond)
			w.Kill(0)
			close(killed)
		}()
		withTimeout(t, 10*time.Second, func() {
			c := w.Comm(1)
			got := 0
			for got < n {
				_, _, err := c.Recv(0, 0)
				if err == nil {
					got++
					continue
				}
				if !errors.Is(err, ErrRankFailed) {
					t.Errorf("trial %d: err = %v, want ErrRankFailed", trial, err)
					break
				}
				if !w.Failed(0) {
					t.Errorf("trial %d: Recv failed before Failed flag was set", trial)
					break
				}
				// The producer may still be pushing pre-kill backlog; keep
				// draining so it never blocks on a full mailbox.
			}
			wg.Wait()
			<-killed
		})
	}
}

// TestFTCollectiveKillRace runs fault-tolerant collectives on the lossy
// transport while a rank is killed externally mid-protocol: survivors
// must converge on the shrunken set and the victim must exit via a
// typed error, all under -race with no hangs.
func TestFTCollectiveKillRace(t *testing.T) {
	const ranks, rounds = 3, 30
	w := NewWorldTransport(ranks, TransportConfig{
		Reliable:     true,
		RTO:          time.Millisecond,
		RecvDeadline: 250 * time.Millisecond,
	})
	defer w.Close()
	go func() {
		time.Sleep(5 * time.Millisecond)
		w.Kill(2)
		w.Alarm()
	}()
	survivors := make([][]int, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			active := []int{0, 1, 2}
			seen := uint64(0)
			for round := 0; round < rounds; {
				if gen := c.AlarmGen(); gen != seen {
					seen = gen
					c.SeenAlarm(gen)
					var alive []int
					for _, a := range active {
						if !c.Failed(a) {
							alive = append(alive, a)
						}
					}
					active = alive
				}
				if c.Failed(r) {
					return // the victim bows out like a killed rank
				}
				v, alive, err := c.FTAllReduceMin(float64(r), active)
				if err != nil {
					if errors.Is(err, ErrSelfExcluded) {
						return
					}
					if errors.Is(err, ErrInterrupted) || errors.Is(err, ErrRankFailed) {
						continue // re-derive the survivor set at the loop top
					}
					t.Errorf("rank %d round %d: %v", r, round, err)
					return
				}
				active = alive
				if want := float64(active[0]); v != want {
					t.Errorf("rank %d round %d: min = %v over %v", r, round, v, active)
					return
				}
				round++
			}
			survivors[r] = active
		}(r)
	}
	withTimeout(t, 30*time.Second, wg.Wait)
	for r := 0; r < 2; r++ {
		if len(survivors[r]) == 0 || len(survivors[r]) < ranks-1 {
			t.Errorf("rank %d finished with survivors %v, want at least %d ranks",
				r, survivors[r], ranks-1)
		}
	}
}

// TestMustRecvPanics pins the non-FT collective contract: using a plain
// collective across a rank failure is a loud panic, not a silent hang.
func TestMustRecvPanics(t *testing.T) {
	w := NewWorld(2)
	c1 := w.Comm(1)
	w.Kill(0)
	withTimeout(t, 5*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("AllReduceMin over a dead rank did not panic")
			}
		}()
		c1.AllReduceMin(1)
	})
}
