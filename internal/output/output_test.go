package output

import (
	"bytes"
	"encoding/csv"
	"encoding/gob"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

func mkGrid1D() *grid.Grid {
	g := grid.New(grid.Geometry{Nx: 8, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.ForEachInterior(func(idx, i, _, _ int) {
		g.W.SetPrim(idx, state.Prim{Rho: float64(i), Vx: 0.1, P: 2})
		g.U.SetCons(idx, state.Cons{D: float64(i), Tau: 1})
	})
	return g
}

func TestWriteProfileCSV(t *testing.T) {
	g := mkGrid1D()
	var buf bytes.Buffer
	if err := WriteProfileCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 { // header + 8 cells
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0][0] != "x" || recs[0][1] != "rho" {
		t.Errorf("header = %v", recs[0])
	}
	x0, _ := strconv.ParseFloat(recs[1][0], 64)
	if math.Abs(x0-0.0625) > 1e-12 {
		t.Errorf("first x = %v, want 0.0625", x0)
	}
	rho0, _ := strconv.ParseFloat(recs[1][1], 64)
	if rho0 != 2 { // first interior i = 2
		t.Errorf("first rho = %v", rho0)
	}
}

func TestWriteSlabCSV(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 4, Ny: 3, Nz: 1, Ng: 2, X0: 0, X1: 1, Y0: 0, Y1: 1})
	g.ForEachInterior(func(idx, i, j, _ int) {
		g.W.SetPrim(idx, state.Prim{Rho: float64(10*j + i), P: 1})
	})
	var buf bytes.Buffer
	if err := WriteSlabCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+4*3 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []string{"n", "err"},
		[]float64{100, 200}, []float64{0.1, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n,err") {
		t.Errorf("missing header: %s", buf.String())
	}
	// Mismatched columns must fail.
	if err := WriteSeriesCSV(&buf, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Error("header/column mismatch accepted")
	}
	if err := WriteSeriesCSV(&buf, []string{"a", "b"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := mkGrid1D()
	g.SetAllBCs(grid.Periodic)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, g, 1.25); err != nil {
		t.Fatal(err)
	}
	g2, tt, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tt != 1.25 {
		t.Errorf("time = %v", tt)
	}
	if g2.Nx != g.Nx || g2.BCs != g.BCs {
		t.Errorf("geometry/BCs not restored")
	}
	a, b := g.U.Raw(), g2.U.Raw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("U[%d] = %v, want %v", i, b[i], a[i])
		}
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	if _, _, err := LoadCheckpoint(strings.NewReader("not a checkpoint")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestGnuplotHeatmap(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 3, Ny: 2, Nz: 1, Ng: 2, X0: 0, X1: 1, Y0: 0, Y1: 1})
	g.ForEachInterior(func(idx, i, j, _ int) {
		g.W.SetPrim(idx, state.Prim{Rho: 1, P: 1})
	})
	var buf bytes.Buffer
	if err := WriteGnuplotHeatmap(&buf, g, state.IRho); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// 2 scanlines of 3 points + 1 separator line between them (trailing
	// blank trimmed).
	nonEmpty := 0
	for _, l := range lines {
		if strings.TrimSpace(l) != "" {
			nonEmpty++
		}
	}
	if nonEmpty != 6 {
		t.Errorf("heatmap has %d data lines, want 6:\n%s", nonEmpty, buf.String())
	}
	if err := WriteGnuplotHeatmap(&buf, g, 99); err == nil {
		t.Error("bad component accepted")
	}
}

func TestCheckpointErrorTaxonomy(t *testing.T) {
	// Undecodable payloads are corrupt, not mismatched.
	_, _, _, err := LoadCheckpointFull(strings.NewReader("not a checkpoint"))
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("garbage classified %v, want ErrCheckpointCorrupt", err)
	}
	if errors.Is(err, ErrCheckpointMismatch) {
		t.Error("garbage also classified as mismatch")
	}

	// A truncated but well-started stream is corrupt too.
	g := mkGrid1D()
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, g, 1.0); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, _, err := LoadCheckpointFull(bytes.NewReader(trunc)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("truncated checkpoint classified %v, want ErrCheckpointCorrupt", err)
	}

	// Decodable payloads with impossible shapes are mismatches.
	bad := []checkpoint{
		{Geom: grid.Geometry{Nx: 0, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1}},
		{Geom: g.Geometry, BCs: g.BCs, U: []float64{1, 2, 3}},
	}
	for i, cp := range bad {
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(&cp); err != nil {
			t.Fatal(err)
		}
		_, _, _, err := LoadCheckpointFull(&b)
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("bad shape %d classified %v, want ErrCheckpointMismatch", i, err)
		}
		if errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("bad shape %d also classified as corrupt", i)
		}
	}
}

func TestExactCheckpointCarriesPrimitives(t *testing.T) {
	g := mkGrid1D()
	g.SetAllBCs(grid.Outflow)

	// Plain checkpoints report no primitives.
	var plain bytes.Buffer
	if err := SaveCheckpoint(&plain, g, 0.5); err != nil {
		t.Fatal(err)
	}
	_, _, prims, err := LoadCheckpointFull(&plain)
	if err != nil {
		t.Fatal(err)
	}
	if prims {
		t.Error("plain checkpoint claims primitives")
	}

	// Exact checkpoints restore U and W bit for bit, ghosts included.
	var exact bytes.Buffer
	if err := SaveCheckpointExact(&exact, g, 0.5); err != nil {
		t.Fatal(err)
	}
	g2, tt, prims, err := LoadCheckpointFull(&exact)
	if err != nil {
		t.Fatal(err)
	}
	if !prims || tt != 0.5 {
		t.Fatalf("exact load prims=%v t=%v", prims, tt)
	}
	for i, v := range g.U.Raw() {
		if g2.U.Raw()[i] != v {
			t.Fatalf("U[%d] differs", i)
		}
	}
	for i, v := range g.W.Raw() {
		if g2.W.Raw()[i] != v {
			t.Fatalf("W[%d] differs", i)
		}
	}
}
