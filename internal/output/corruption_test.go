package output

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"rhsc/internal/grid"
)

// sealExact produces a framed exact checkpoint of a small grid.
func sealExact(t *testing.T) []byte {
	t.Helper()
	g := mkGrid1D()
	g.SetAllBCs(grid.Periodic)
	var buf bytes.Buffer
	if err := SaveCheckpointExact(&buf, g, 0.5); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointCorruptionMatrix is the satellite corruption matrix
// for the output layer: truncation and bit flips across the frame's
// structural offset classes must all classify as ErrCheckpointCorrupt
// — zero silent loads.
func TestCheckpointCorruptionMatrix(t *testing.T) {
	pristine := sealExact(t)
	n := len(pristine)
	if _, _, _, err := LoadCheckpointFull(bytes.NewReader(pristine)); err != nil {
		t.Fatalf("pristine checkpoint does not load: %v", err)
	}

	// Offset classes: header, early payload, mid payload, tail payload,
	// footer region.
	offsets := []struct {
		name string
		off  int
	}{
		{"header-magic", 0},
		{"header-version", 9},
		{"chunk-length", 16},
		{"payload-early", 40},
		{"payload-mid", n / 2},
		{"payload-late", n - 64},
		{"footer-totals", n - 28},
		{"footer-crc", n - 12},
		{"footer-magic", n - 4},
	}

	t.Run("bitflip", func(t *testing.T) {
		for _, tc := range offsets {
			mut := append([]byte(nil), pristine...)
			mut[tc.off] ^= 0x04
			_, _, _, err := LoadCheckpointFull(bytes.NewReader(mut))
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Errorf("%s (byte %d): %v, want ErrCheckpointCorrupt", tc.name, tc.off, err)
			}
		}
	})

	t.Run("truncate", func(t *testing.T) {
		for _, tc := range offsets {
			_, _, _, err := LoadCheckpointFull(bytes.NewReader(pristine[:tc.off]))
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Errorf("truncate at %s (%d bytes): %v, want ErrCheckpointCorrupt", tc.name, tc.off, err)
			}
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), pristine...), 0xFF)
		_, _, _, err := LoadCheckpointFull(bytes.NewReader(mut))
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("trailing garbage: %v, want ErrCheckpointCorrupt", err)
		}
	})
}

// TestLegacyRawGobCheckpointStillLoads pins the migration contract:
// checkpoints written before framing (raw gob) keep loading.
func TestLegacyRawGobCheckpointStillLoads(t *testing.T) {
	g := mkGrid1D()
	var buf bytes.Buffer
	// Reproduce the legacy on-disk format: bare gob, no frame.
	if err := legacyEncode(&buf, g, 2.5); err != nil {
		t.Fatal(err)
	}
	g2, tt, prims, err := LoadCheckpointFull(&buf)
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if tt != 2.5 || prims || g2.Nx != g.Nx {
		t.Fatalf("legacy checkpoint mangled: t=%v prims=%v", tt, prims)
	}
}

// legacyEncode writes the pre-framing checkpoint format: one raw gob
// value, exactly what SaveCheckpoint emitted before durable framing.
func legacyEncode(w *bytes.Buffer, g *grid.Grid, t float64) error {
	cp := checkpoint{Geom: g.Geometry, BCs: g.BCs, Time: t}
	cp.U = append([]float64(nil), g.U.Raw()...)
	return gob.NewEncoder(w).Encode(&cp)
}
