package output

import (
	"bufio"
	"fmt"
	"io"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

// WriteVTK writes the grid's primitive fields as a legacy-format VTK
// STRUCTURED_POINTS dataset (ASCII), readable by ParaView and VisIt:
// scalars rho and p, and the vector field velocity. Only interior zones
// are written.
func WriteVTK(w io.Writer, g *grid.Grid, title string) error {
	bw := bufio.NewWriter(w)
	nz := g.KEnd() - g.KBeg()
	ny := g.JEnd() - g.JBeg()
	nx := g.IEnd() - g.IBeg()

	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	if title == "" {
		title = "rhsc output"
	}
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET STRUCTURED_POINTS")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", nx, ny, nz)
	fmt.Fprintf(bw, "ORIGIN %g %g %g\n", g.X(g.IBeg()), g.Y(g.JBeg()), g.Z(g.KBeg()))
	fmt.Fprintf(bw, "SPACING %g %g %g\n", g.Dx, g.Dy, g.Dz)
	fmt.Fprintf(bw, "POINT_DATA %d\n", nx*ny*nz)

	writeScalar := func(name string, comp int) {
		fmt.Fprintf(bw, "SCALARS %s double 1\n", name)
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for k := g.KBeg(); k < g.KEnd(); k++ {
			for j := g.JBeg(); j < g.JEnd(); j++ {
				for i := g.IBeg(); i < g.IEnd(); i++ {
					fmt.Fprintf(bw, "%g\n", g.W.Comp[comp][g.Idx(i, j, k)])
				}
			}
		}
	}
	writeScalar("rho", state.IRho)
	writeScalar("p", state.IP)

	fmt.Fprintln(bw, "VECTORS velocity double")
	for k := g.KBeg(); k < g.KEnd(); k++ {
		for j := g.JBeg(); j < g.JEnd(); j++ {
			for i := g.IBeg(); i < g.IEnd(); i++ {
				idx := g.Idx(i, j, k)
				fmt.Fprintf(bw, "%g %g %g\n",
					g.W.Comp[state.IVx][idx],
					g.W.Comp[state.IVy][idx],
					g.W.Comp[state.IVz][idx])
			}
		}
	}
	return bw.Flush()
}
