package output

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

// PNGOptions controls slab rendering.
type PNGOptions struct {
	// Comp selects the primitive component (state.IRho, state.IP, …).
	Comp int
	// Log maps the field through log10 before normalising — the usual
	// choice for blast waves and jets whose density spans decades.
	Log bool
	// Scale enlarges each cell to Scale×Scale pixels (default 1).
	Scale int
}

// inferno-like compact colormap: anchor points interpolated linearly.
var pngPalette = [][3]float64{
	{0.001, 0.000, 0.014},
	{0.258, 0.039, 0.406},
	{0.576, 0.149, 0.404},
	{0.865, 0.317, 0.226},
	{0.988, 0.645, 0.040},
	{0.988, 0.998, 0.645},
}

func paletteColor(t float64) color.NRGBA {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	pos := t * float64(len(pngPalette)-1)
	i := int(pos)
	if i >= len(pngPalette)-1 {
		i = len(pngPalette) - 2
	}
	f := pos - float64(i)
	a, b := pngPalette[i], pngPalette[i+1]
	return color.NRGBA{
		R: uint8(255 * (a[0] + f*(b[0]-a[0]))),
		G: uint8(255 * (a[1] + f*(b[1]-a[1]))),
		B: uint8(255 * (a[2] + f*(b[2]-a[2]))),
		A: 255,
	}
}

// WritePNG renders the first interior k-slab of the selected primitive
// component as a PNG heatmap (y up, x right). Values are normalised to
// the slab's min/max (after the optional log map).
func WritePNG(w io.Writer, g *grid.Grid, opts PNGOptions) error {
	if opts.Comp < 0 || opts.Comp >= state.NComp {
		return fmt.Errorf("output: component %d out of range", opts.Comp)
	}
	scale := opts.Scale
	if scale < 1 {
		scale = 1
	}
	nx := g.IEnd() - g.IBeg()
	ny := g.JEnd() - g.JBeg()
	k := g.KBeg()

	val := func(i, j int) float64 {
		v := g.W.Comp[opts.Comp][g.Idx(g.IBeg()+i, g.JBeg()+j, k)]
		if opts.Log {
			if v <= 0 {
				v = math.SmallestNonzeroFloat64
			}
			v = math.Log10(v)
		}
		return v
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := val(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	den := hi - lo
	if den <= 0 {
		den = 1
	}

	img := image.NewNRGBA(image.Rect(0, 0, nx*scale, ny*scale))
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			c := paletteColor((val(i, j) - lo) / den)
			for dy := 0; dy < scale; dy++ {
				for dx := 0; dx < scale; dx++ {
					// Flip vertically: image origin is top-left, physics
					// origin bottom-left.
					img.SetNRGBA(i*scale+dx, (ny-1-j)*scale+dy, c)
				}
			}
		}
	}
	return png.Encode(w, img)
}
