package output

import (
	"bytes"
	"image/png"
	"testing"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

func pngGrid() *grid.Grid {
	g := grid.New(grid.Geometry{Nx: 8, Ny: 6, Nz: 1, Ng: 2, X0: 0, X1: 1, Y0: 0, Y1: 1})
	g.ForEachInterior(func(idx, i, j, _ int) {
		g.W.SetPrim(idx, state.Prim{Rho: float64(1 + i + 10*j), P: 1})
	})
	return g
}

func TestWritePNGDecodes(t *testing.T) {
	g := pngGrid()
	var buf bytes.Buffer
	if err := WritePNG(&buf, g, PNGOptions{Comp: state.IRho, Scale: 3}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 8*3 || b.Dy() != 6*3 {
		t.Errorf("image %dx%d, want 24x18", b.Dx(), b.Dy())
	}
	// The gradient must produce varying colors: corner pixels differ.
	c1 := img.At(0, 0)
	c2 := img.At(b.Dx()-1, b.Dy()-1)
	if c1 == c2 {
		t.Error("no color variation across the gradient")
	}
}

func TestWritePNGLogAndUniform(t *testing.T) {
	g := pngGrid()
	var buf bytes.Buffer
	if err := WritePNG(&buf, g, PNGOptions{Comp: state.IRho, Log: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	// Uniform field: degenerate range must not divide by zero.
	u := grid.New(grid.Geometry{Nx: 4, Ny: 4, Nz: 1, Ng: 2, X0: 0, X1: 1, Y0: 0, Y1: 1})
	u.ForEachInterior(func(idx, _, _, _ int) {
		u.W.SetPrim(idx, state.Prim{Rho: 2, P: 1})
	})
	buf.Reset()
	if err := WritePNG(&buf, u, PNGOptions{Comp: state.IRho}); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWritePNGValidation(t *testing.T) {
	g := pngGrid()
	var buf bytes.Buffer
	if err := WritePNG(&buf, g, PNGOptions{Comp: 99}); err == nil {
		t.Error("bad component accepted")
	}
}

func TestPaletteEndpoints(t *testing.T) {
	lo := paletteColor(-1)
	hi := paletteColor(2)
	if lo == hi {
		t.Error("palette endpoints identical")
	}
	mid := paletteColor(0.5)
	if mid == lo || mid == hi {
		t.Error("palette midpoint degenerate")
	}
}
