package output

import (
	"bytes"
	"strings"
	"testing"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

func TestWriteVTKStructure(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 3, Ny: 2, Nz: 1, Ng: 2, X0: 0, X1: 3, Y0: 0, Y1: 2})
	g.ForEachInterior(func(idx, i, j, _ int) {
		g.W.SetPrim(idx, state.Prim{Rho: float64(i), Vx: 0.5, Vy: -0.25, P: 2})
	})
	var buf bytes.Buffer
	if err := WriteVTK(&buf, g, "test dataset"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"test dataset",
		"DATASET STRUCTURED_POINTS",
		"DIMENSIONS 3 2 1",
		"POINT_DATA 6",
		"SCALARS rho double 1",
		"SCALARS p double 1",
		"VECTORS velocity double",
		"0.5 -0.25 0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// Exactly 6 rho values, 6 p values, 6 velocity triples.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	count := 0
	for _, l := range lines {
		if strings.Count(l, " ") == 2 && strings.HasPrefix(l, "0.5 ") {
			count++
		}
	}
	if count != 6 {
		t.Errorf("velocity rows = %d, want 6", count)
	}
}

func TestWriteVTKDefaultTitle(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 2, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	var buf bytes.Buffer
	if err := WriteVTK(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rhsc output") {
		t.Error("default title missing")
	}
}
