// Package output writes simulation data: CSV profiles and slabs for
// plotting (gnuplot/matplotlib-ready), and binary checkpoints that capture
// the full conserved state for exact restart.
package output

import (
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

// WriteProfileCSV writes a 1-D profile of the primitives along x (at the
// first interior j, k row): columns x, rho, vx, vy, vz, p.
func WriteProfileCSV(w io.Writer, g *grid.Grid) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "rho", "vx", "vy", "vz", "p"}); err != nil {
		return err
	}
	j, k := g.JBeg(), g.KBeg()
	for i := g.IBeg(); i < g.IEnd(); i++ {
		p := g.W.GetPrim(g.Idx(i, j, k))
		rec := []string{
			fmtF(g.X(i)), fmtF(p.Rho), fmtF(p.Vx), fmtF(p.Vy), fmtF(p.Vz), fmtF(p.P),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSlabCSV writes the 2-D slab at the first interior k: columns
// x, y, rho, vx, vy, p. Rows are emitted in y-major order with a blank
// record between y-rows being unnecessary for CSV consumers.
func WriteSlabCSV(w io.Writer, g *grid.Grid) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "y", "rho", "vx", "vy", "p"}); err != nil {
		return err
	}
	k := g.KBeg()
	for j := g.JBeg(); j < g.JEnd(); j++ {
		for i := g.IBeg(); i < g.IEnd(); i++ {
			p := g.W.GetPrim(g.Idx(i, j, k))
			rec := []string{
				fmtF(g.X(i)), fmtF(g.Y(j)), fmtF(p.Rho), fmtF(p.Vx), fmtF(p.Vy), fmtF(p.P),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV writes aligned series data (e.g. a scaling curve):
// header names and one row per index across the columns. All columns must
// have equal length.
func WriteSeriesCSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("output: %d headers for %d columns", len(headers), len(cols))
	}
	n := 0
	for i, c := range cols {
		if i == 0 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("output: column %d has %d rows, want %d", i, len(c), n)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	rec := make([]string, len(cols))
	for r := 0; r < n; r++ {
		for c := range cols {
			rec[c] = fmtF(cols[c][r])
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 12, 64) }

// checkpoint is the gob payload. Only the conserved state is stored:
// primitives are re-derived on load.
type checkpoint struct {
	Geom grid.Geometry
	BCs  [3][2]grid.BC
	Time float64
	U    []float64
}

// SaveCheckpoint serialises grid geometry, boundary conditions, solution
// time and the conserved state.
func SaveCheckpoint(w io.Writer, g *grid.Grid, t float64) error {
	cp := checkpoint{Geom: g.Geometry, BCs: g.BCs, Time: t}
	cp.U = make([]float64, len(g.U.Raw()))
	copy(cp.U, g.U.Raw())
	return gob.NewEncoder(w).Encode(&cp)
}

// LoadCheckpoint reconstructs the grid and returns it with the stored
// solution time. The primitive field is left zeroed; callers must run
// their solver's RecoverPrimitives to refill it.
func LoadCheckpoint(r io.Reader) (*grid.Grid, float64, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, 0, fmt.Errorf("output: decode checkpoint: %w", err)
	}
	g := grid.New(cp.Geom)
	g.BCs = cp.BCs
	if len(cp.U) != len(g.U.Raw()) {
		return nil, 0, fmt.Errorf("output: checkpoint holds %d values, grid needs %d",
			len(cp.U), len(g.U.Raw()))
	}
	copy(g.U.Raw(), cp.U)
	return g, cp.Time, nil
}

// WriteGnuplotHeatmap writes the density of the first interior k-slab in
// gnuplot's nonuniform-matrix text format: rows of "x y value", with blank
// lines between scanlines so `plot ... with image` works directly.
func WriteGnuplotHeatmap(w io.Writer, g *grid.Grid, comp int) error {
	if comp < 0 || comp >= state.NComp {
		return fmt.Errorf("output: component %d out of range", comp)
	}
	k := g.KBeg()
	for j := g.JBeg(); j < g.JEnd(); j++ {
		for i := g.IBeg(); i < g.IEnd(); i++ {
			v := g.W.Comp[comp][g.Idx(i, j, k)]
			if _, err := fmt.Fprintf(w, "%g %g %g\n", g.X(i), g.Y(j), v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
