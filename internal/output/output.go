// Package output writes simulation data: CSV profiles and slabs for
// plotting (gnuplot/matplotlib-ready), and binary checkpoints that capture
// the full conserved state for exact restart.
package output

import (
	"encoding/csv"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"strconv"

	"rhsc/internal/durable"
	"rhsc/internal/grid"
	"rhsc/internal/state"
)

// Checkpoint failure classes. Callers that resume jobs (the serving
// layer, spool recovery) match these with errors.Is to decide whether a
// failed restore is worth retrying:
//
//   - ErrCheckpointCorrupt: the payload cannot be decoded at all —
//     truncated file, torn write, or garbage. Retrying the same bytes
//     can never succeed; the job must be failed or restarted from
//     scratch.
//   - ErrCheckpointMismatch: the payload decoded cleanly but does not
//     fit the requesting configuration (wrong grid shape, unknown
//     problem, inconsistent structure). Also fatal for these bytes, but
//     diagnostic of a config drift rather than data loss.
//
// Anything else (e.g. an *os.PathError from the reader) is an I/O
// error and may be transient.
//
// ErrCheckpointCorrupt aliases durable.ErrCorrupt so integrity
// failures detected by the durable framing layer (CRC mismatch, torn
// tail, truncation) classify identically to decode failures here —
// one errors.Is covers both layers.
var (
	ErrCheckpointCorrupt  = durable.ErrCorrupt
	ErrCheckpointMismatch = errors.New("checkpoint mismatch")
)

// CheckpointError wraps a checkpoint load failure with its class and
// the failing operation, so the serving layer can report "job X:
// resume failed decoding leaf table: ..." and still classify with
// errors.Is(err, ErrCheckpointCorrupt).
type CheckpointError struct {
	Op   string // what was being loaded, e.g. "decode checkpoint"
	Kind error  // ErrCheckpointCorrupt or ErrCheckpointMismatch
	Err  error  // underlying cause; may be nil for shape violations
}

// Error implements the error interface.
func (e *CheckpointError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%s: %v: %v", e.Op, e.Kind, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Op, e.Kind)
}

// Unwrap exposes both the class sentinel and the cause to errors.Is/As.
func (e *CheckpointError) Unwrap() []error {
	if e.Err == nil {
		return []error{e.Kind}
	}
	return []error{e.Kind, e.Err}
}

// CorruptError builds a *CheckpointError classified as corrupt.
func CorruptError(op string, err error) error {
	return &CheckpointError{Op: op, Kind: ErrCheckpointCorrupt, Err: err}
}

// MismatchError builds a *CheckpointError classified as a mismatch.
func MismatchError(op string, err error) error {
	return &CheckpointError{Op: op, Kind: ErrCheckpointMismatch, Err: err}
}

// WriteProfileCSV writes a 1-D profile of the primitives along x (at the
// first interior j, k row): columns x, rho, vx, vy, vz, p.
func WriteProfileCSV(w io.Writer, g *grid.Grid) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "rho", "vx", "vy", "vz", "p"}); err != nil {
		return err
	}
	j, k := g.JBeg(), g.KBeg()
	for i := g.IBeg(); i < g.IEnd(); i++ {
		p := g.W.GetPrim(g.Idx(i, j, k))
		rec := []string{
			fmtF(g.X(i)), fmtF(p.Rho), fmtF(p.Vx), fmtF(p.Vy), fmtF(p.Vz), fmtF(p.P),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSlabCSV writes the 2-D slab at the first interior k: columns
// x, y, rho, vx, vy, p. Rows are emitted in y-major order with a blank
// record between y-rows being unnecessary for CSV consumers.
func WriteSlabCSV(w io.Writer, g *grid.Grid) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "y", "rho", "vx", "vy", "p"}); err != nil {
		return err
	}
	k := g.KBeg()
	for j := g.JBeg(); j < g.JEnd(); j++ {
		for i := g.IBeg(); i < g.IEnd(); i++ {
			p := g.W.GetPrim(g.Idx(i, j, k))
			rec := []string{
				fmtF(g.X(i)), fmtF(g.Y(j)), fmtF(p.Rho), fmtF(p.Vx), fmtF(p.Vy), fmtF(p.P),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV writes aligned series data (e.g. a scaling curve):
// header names and one row per index across the columns. All columns must
// have equal length.
func WriteSeriesCSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("output: %d headers for %d columns", len(headers), len(cols))
	}
	n := 0
	for i, c := range cols {
		if i == 0 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("output: column %d has %d rows, want %d", i, len(c), n)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	rec := make([]string, len(cols))
	for r := 0; r < n; r++ {
		for c := range cols {
			rec[c] = fmtF(cols[c][r])
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 12, 64) }

// checkpoint is the gob payload. The conserved state is always stored;
// W is only populated by the exact path (SaveCheckpointExact): primitive
// recovery seeds its Newton iteration with the previous pressure, so a
// restart that re-derives primitives is accurate but not bit-identical
// to the uninterrupted run. Carrying W (interior and ghosts) lets the
// restore skip re-recovery entirely and continue round-off-exactly —
// the property checkpoint-based preemption relies on. gob tolerates the
// absent field in either direction, so old and new checkpoints interopt.
type checkpoint struct {
	Geom grid.Geometry
	BCs  [3][2]grid.BC
	Time float64
	U    []float64
	W    []float64
}

// SaveCheckpoint serialises grid geometry, boundary conditions, solution
// time and the conserved state. Restores from it re-derive primitives,
// so a restarted run is accurate but not bitwise identical; use
// SaveCheckpointExact when exact continuation matters.
//
// The payload is wrapped in a durable frame (per-chunk CRC32C plus a
// sealed footer), so truncation, torn writes and bit rot are detected
// at load time instead of surfacing as gob decode noise or — worse —
// silently plausible state.
func SaveCheckpoint(w io.Writer, g *grid.Grid, t float64) error {
	cp := checkpoint{Geom: g.Geometry, BCs: g.BCs, Time: t}
	cp.U = make([]float64, len(g.U.Raw()))
	copy(cp.U, g.U.Raw())
	return sealCheckpoint(w, &cp)
}

// SaveCheckpointExact serialises conserved and primitive fields
// (including ghost zones) so a restore continues bit-identically to the
// uninterrupted run. Framed like SaveCheckpoint.
func SaveCheckpointExact(w io.Writer, g *grid.Grid, t float64) error {
	cp := checkpoint{Geom: g.Geometry, BCs: g.BCs, Time: t}
	cp.U = make([]float64, len(g.U.Raw()))
	copy(cp.U, g.U.Raw())
	cp.W = make([]float64, len(g.W.Raw()))
	copy(cp.W, g.W.Raw())
	return sealCheckpoint(w, &cp)
}

// sealCheckpoint gob-encodes cp through a durable frame and seals it.
func sealCheckpoint(w io.Writer, cp *checkpoint) error {
	fw := durable.NewWriter(w)
	if err := gob.NewEncoder(fw).Encode(cp); err != nil {
		return err
	}
	return fw.Seal()
}

// LoadCheckpoint reconstructs the grid and returns it with the stored
// solution time. The primitive field is left zeroed unless the
// checkpoint was written by SaveCheckpointExact; callers that need to
// know should use LoadCheckpointFull.
func LoadCheckpoint(r io.Reader) (*grid.Grid, float64, error) {
	g, t, _, err := LoadCheckpointFull(r)
	return g, t, err
}

// LoadCheckpointFull is LoadCheckpoint, additionally reporting whether
// the checkpoint carried primitives (SaveCheckpointExact): when prims
// is true the grid's W field is filled bit-exactly and the caller must
// NOT re-run primitive recovery if it wants exact continuation; when
// false the caller must run its solver's RecoverPrimitives.
//
// Failures are classified: undecodable payloads wrap
// ErrCheckpointCorrupt, structurally valid payloads that do not fit
// the grid wrap ErrCheckpointMismatch (see CheckpointError).
func LoadCheckpointFull(r io.Reader) (*grid.Grid, float64, bool, error) {
	payload, framed, err := durable.Sniff(r)
	if err != nil {
		return nil, 0, false, err
	}
	var cp checkpoint
	if err := gob.NewDecoder(payload).Decode(&cp); err != nil {
		return nil, 0, false, CorruptError("output: decode checkpoint", err)
	}
	if framed != nil {
		// gob reads exactly one value and may leave the frame tail
		// unconsumed; Verify proves the footer (stream CRC, totals) is
		// intact so a torn tail cannot pass as a clean load.
		if err := framed.Verify(); err != nil {
			return nil, 0, false, CorruptError("output: verify checkpoint frame", err)
		}
	}
	// grid.New panics on non-positive extents; surface a decodable-but-
	// absurd geometry as a mismatch instead.
	if cp.Geom.Nx < 1 || cp.Geom.Ny < 1 || cp.Geom.Nz < 1 || cp.Geom.Ng < 0 {
		return nil, 0, false, MismatchError("output: checkpoint geometry",
			fmt.Errorf("unusable cell counts %dx%dx%d (ghost %d)",
				cp.Geom.Nx, cp.Geom.Ny, cp.Geom.Nz, cp.Geom.Ng))
	}
	g := grid.New(cp.Geom)
	g.BCs = cp.BCs
	if len(cp.U) != len(g.U.Raw()) {
		return nil, 0, false, MismatchError("output: checkpoint conserved field",
			fmt.Errorf("holds %d values, grid needs %d", len(cp.U), len(g.U.Raw())))
	}
	copy(g.U.Raw(), cp.U)
	prims := cp.W != nil
	if prims {
		if len(cp.W) != len(g.W.Raw()) {
			return nil, 0, false, MismatchError("output: checkpoint primitive field",
				fmt.Errorf("holds %d values, grid needs %d", len(cp.W), len(g.W.Raw())))
		}
		copy(g.W.Raw(), cp.W)
	}
	return g, cp.Time, prims, nil
}

// WriteGnuplotHeatmap writes the density of the first interior k-slab in
// gnuplot's nonuniform-matrix text format: rows of "x y value", with blank
// lines between scanlines so `plot ... with image` works directly.
func WriteGnuplotHeatmap(w io.Writer, g *grid.Grid, comp int) error {
	if comp < 0 || comp >= state.NComp {
		return fmt.Errorf("output: component %d out of range", comp)
	}
	k := g.KBeg()
	for j := g.JBeg(); j < g.JEnd(); j++ {
		for i := g.IBeg(); i < g.IEnd(); i++ {
			v := g.W.Comp[comp][g.Idx(i, j, k)]
			if _, err := fmt.Fprintf(w, "%g %g %g\n", g.X(i), g.Y(j), v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
