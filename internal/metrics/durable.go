package metrics

import "sync/atomic"

// DurableCounters is the durable checkpoint store's event record:
// commit-protocol activity (commits, fsyncs, renames) and every
// integrity event the recovery and scrub paths observe. The serving
// layer, the rhscd status surface and the E18 durability experiment all
// read the same counters. Every field is atomic with the usual
// contract (individual loads are atomic, Snapshot is not a single
// linearisation point — same as ServeCounters).
//
// The zero value is ready to use. Do not copy a DurableCounters after
// first use.
type DurableCounters struct {
	Commits     atomic.Int64 // generations committed (payload fsynced, renamed, directory fsynced)
	CommitBytes atomic.Int64 // framed payload bytes across all commits
	Fsyncs      atomic.Int64 // file and directory fsyncs issued by the commit protocol
	Renames     atomic.Int64 // atomic publish renames

	Recoveries         atomic.Int64 // loads that had to skip past >= 1 invalid newer generation
	SkippedGenerations atomic.Int64 // invalid generations skipped during those recoveries

	DetectedCorruptions atomic.Int64 // frames rejected by CRC/footer/structure verification
	Quarantined         atomic.Int64 // corrupt files moved aside to <dir>/corrupt/
	ScrubFailures       atomic.Int64 // scrub passes that found at least one bad file
}

// DurableSnapshot is a plain-value copy of DurableCounters for reports
// and JSON serialisation. Field names carry a durable_ prefix so the
// snapshot can be merged flat into the serving metrics endpoint without
// colliding with ServeSnapshot.
type DurableSnapshot struct {
	Commits     int64 `json:"durable_commits"`
	CommitBytes int64 `json:"durable_commit_bytes"`
	Fsyncs      int64 `json:"durable_fsyncs"`
	Renames     int64 `json:"durable_renames"`

	Recoveries         int64 `json:"durable_recoveries"`
	SkippedGenerations int64 `json:"durable_skipped_generations"`

	DetectedCorruptions int64 `json:"durable_detected_corruptions"`
	Quarantined         int64 `json:"durable_quarantined"`
	ScrubFailures       int64 `json:"durable_scrub_failures"`
}

// Snapshot returns the current counter values.
func (c *DurableCounters) Snapshot() DurableSnapshot {
	return DurableSnapshot{
		Commits:             c.Commits.Load(),
		CommitBytes:         c.CommitBytes.Load(),
		Fsyncs:              c.Fsyncs.Load(),
		Renames:             c.Renames.Load(),
		Recoveries:          c.Recoveries.Load(),
		SkippedGenerations:  c.SkippedGenerations.Load(),
		DetectedCorruptions: c.DetectedCorruptions.Load(),
		Quarantined:         c.Quarantined.Load(),
		ScrubFailures:       c.ScrubFailures.Load(),
	}
}

// Reset zeroes every counter.
func (c *DurableCounters) Reset() {
	c.Commits.Store(0)
	c.CommitBytes.Store(0)
	c.Fsyncs.Store(0)
	c.Renames.Store(0)
	c.Recoveries.Store(0)
	c.SkippedGenerations.Store(0)
	c.DetectedCorruptions.Store(0)
	c.Quarantined.Store(0)
	c.ScrubFailures.Store(0)
}
