package metrics

import "sync/atomic"

// TransportCounters is the reliable-transport event record of the
// cluster fabric: traffic volume, every chaos fault the injector
// applied, every repair the reliable layer performed (retransmits,
// CRC rejections, duplicate discards), and every typed failure the
// deadline layer surfaced (timeouts, peer deaths, alarm interrupts).
// One instance is shared by all ranks of a world; every field is
// atomic with the usual contract (individual loads are atomic,
// Snapshot is not a single linearisation point — same as
// ServeCounters and DurableCounters).
//
// The zero value is ready to use. Do not copy a TransportCounters
// after first use.
type TransportCounters struct {
	Sent      atomic.Int64 // data frames posted by application sends
	SentBytes atomic.Int64 // payload bytes across those frames
	Delivered atomic.Int64 // in-order frames handed to the application
	Acks      atomic.Int64 // cumulative acknowledgements posted

	Retransmits atomic.Int64 // frames re-sent by the retransmitter
	Abandoned   atomic.Int64 // frames given up after MaxAttempts (peer dead)

	ChaosDropped    atomic.Int64 // frames vanished by the injector
	ChaosDuplicated atomic.Int64 // frames delivered twice by the injector
	ChaosDelayed    atomic.Int64 // frames held in limbo behind later traffic
	ChaosCorrupted  atomic.Int64 // frames with a payload bit flipped in transit

	CrcRejected    atomic.Int64 // received frames failing the CRC32C check
	DupDiscarded   atomic.Int64 // already-delivered sequence numbers dropped
	StaleEraDropped atomic.Int64 // frames from before the last recovery dropped
	MailboxOverflow atomic.Int64 // deliveries dropped on a full mailbox (repaired by retransmit)

	Timeouts   atomic.Int64 // deadline-bounded receives that expired
	PeerDeaths atomic.Int64 // receives that surfaced a dead peer
	Interrupts atomic.Int64 // receives woken by a recovery alarm
}

// TransportSnapshot is a plain-value copy of TransportCounters for
// reports and JSON serialisation. Field names carry a net_ prefix so
// the snapshot merges flat into the serving metrics endpoint without
// colliding with ServeSnapshot or DurableSnapshot.
type TransportSnapshot struct {
	Sent      int64 `json:"net_sent"`
	SentBytes int64 `json:"net_sent_bytes"`
	Delivered int64 `json:"net_delivered"`
	Acks      int64 `json:"net_acks"`

	Retransmits int64 `json:"net_retransmits"`
	Abandoned   int64 `json:"net_abandoned"`

	ChaosDropped    int64 `json:"net_chaos_dropped"`
	ChaosDuplicated int64 `json:"net_chaos_duplicated"`
	ChaosDelayed    int64 `json:"net_chaos_delayed"`
	ChaosCorrupted  int64 `json:"net_chaos_corrupted"`

	CrcRejected     int64 `json:"net_crc_rejected"`
	DupDiscarded    int64 `json:"net_dup_discarded"`
	StaleEraDropped int64 `json:"net_stale_era_dropped"`
	MailboxOverflow int64 `json:"net_mailbox_overflow"`

	Timeouts   int64 `json:"net_timeouts"`
	PeerDeaths int64 `json:"net_peer_deaths"`
	Interrupts int64 `json:"net_interrupts"`
}

// Snapshot returns the current counter values.
func (c *TransportCounters) Snapshot() TransportSnapshot {
	return TransportSnapshot{
		Sent:            c.Sent.Load(),
		SentBytes:       c.SentBytes.Load(),
		Delivered:       c.Delivered.Load(),
		Acks:            c.Acks.Load(),
		Retransmits:     c.Retransmits.Load(),
		Abandoned:       c.Abandoned.Load(),
		ChaosDropped:    c.ChaosDropped.Load(),
		ChaosDuplicated: c.ChaosDuplicated.Load(),
		ChaosDelayed:    c.ChaosDelayed.Load(),
		ChaosCorrupted:  c.ChaosCorrupted.Load(),
		CrcRejected:     c.CrcRejected.Load(),
		DupDiscarded:    c.DupDiscarded.Load(),
		StaleEraDropped: c.StaleEraDropped.Load(),
		MailboxOverflow: c.MailboxOverflow.Load(),
		Timeouts:        c.Timeouts.Load(),
		PeerDeaths:      c.PeerDeaths.Load(),
		Interrupts:      c.Interrupts.Load(),
	}
}

// Reset zeroes every counter.
func (c *TransportCounters) Reset() {
	c.Sent.Store(0)
	c.SentBytes.Store(0)
	c.Delivered.Store(0)
	c.Acks.Store(0)
	c.Retransmits.Store(0)
	c.Abandoned.Store(0)
	c.ChaosDropped.Store(0)
	c.ChaosDuplicated.Store(0)
	c.ChaosDelayed.Store(0)
	c.ChaosCorrupted.Store(0)
	c.CrcRejected.Store(0)
	c.DupDiscarded.Store(0)
	c.StaleEraDropped.Store(0)
	c.MailboxOverflow.Store(0)
	c.Timeouts.Store(0)
	c.PeerDeaths.Store(0)
	c.Interrupts.Store(0)
}
