// Package metrics provides the performance instrumentation used by the
// benchmark harness: wall-clock timers, zone-update throughput, and the
// table formatting that reproduces the paper's reported rows (Mzups,
// parallel efficiency, speedup).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Timer measures accumulated wall-clock time over named phases.
type Timer struct {
	mu      sync.Mutex
	totals  map[string]time.Duration
	counts  map[string]int
	started map[string]time.Time
}

// NewTimer returns an empty timer.
func NewTimer() *Timer {
	return &Timer{
		totals:  make(map[string]time.Duration),
		counts:  make(map[string]int),
		started: make(map[string]time.Time),
	}
}

// Start begins (or restarts) phase name.
func (t *Timer) Start(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.started[name] = time.Now()
}

// Stop ends phase name and accumulates its elapsed time. Stopping a phase
// that was never started is a no-op.
func (t *Timer) Stop(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.started[name]; ok {
		t.totals[name] += time.Since(s)
		t.counts[name]++
		delete(t.started, name)
	}
}

// Time runs fn under phase name. Unlike Start/Stop pairs (which track one
// exclusive phase), Time measures locally and merely accumulates, so it is
// safe for many goroutines to Time the same phase concurrently.
func (t *Timer) Time(name string, fn func()) {
	start := time.Now()
	fn()
	d := time.Since(start)
	t.mu.Lock()
	t.totals[name] += d
	t.counts[name]++
	t.mu.Unlock()
}

// Total returns the accumulated duration of phase name.
func (t *Timer) Total(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totals[name]
}

// Count returns how many times phase name completed.
func (t *Timer) Count(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[name]
}

// Summary formats all phases sorted by total time, descending.
func (t *Timer) Summary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.totals))
	for n := range t.totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return t.totals[names[i]] > t.totals[names[j]] })
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-24s %12v  x%d\n", n, t.totals[n].Round(time.Microsecond), t.counts[n])
	}
	return b.String()
}

// Throughput converts zone updates and elapsed time into the standard
// mega-zone-updates-per-second figure of merit.
func Throughput(zoneUpdates int64, elapsed time.Duration) float64 {
	s := elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(zoneUpdates) / s / 1e6
}

// Speedup returns t1/tp.
func Speedup(t1, tp time.Duration) float64 {
	if tp <= 0 {
		return 0
	}
	return t1.Seconds() / tp.Seconds()
}

// Efficiency returns the parallel efficiency t1/(p·tp) in percent.
func Efficiency(t1, tp time.Duration, p int) float64 {
	if tp <= 0 || p <= 0 {
		return 0
	}
	return 100 * t1.Seconds() / (float64(p) * tp.Seconds())
}

// Imbalance returns the load-imbalance factor (max − mean)/mean of the
// per-rank loads: 0 for a perfect partition, 1 when the busiest rank
// carries twice the average. This is the standard AMR load-balance
// figure; a lockstep run loses exactly this fraction of its time to
// waiting.
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	max, sum := loads[0], 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	mean := sum / float64(len(loads))
	if mean <= 0 {
		return 0
	}
	return (max - mean) / mean
}

// Table accumulates rows and renders an aligned text table, the output
// format of every experiment in EXPERIMENTS.md.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, and float64 values
// with 4 significant digits.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteByte('\n')
	for i := range t.Headers {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
