package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimerAccumulates(t *testing.T) {
	tm := NewTimer()
	tm.Time("phase", func() { time.Sleep(5 * time.Millisecond) })
	tm.Time("phase", func() { time.Sleep(5 * time.Millisecond) })
	if got := tm.Total("phase"); got < 8*time.Millisecond {
		t.Errorf("total = %v, want >= 8ms", got)
	}
	if tm.Count("phase") != 2 {
		t.Errorf("count = %d", tm.Count("phase"))
	}
}

func TestTimerStopWithoutStart(t *testing.T) {
	tm := NewTimer()
	tm.Stop("never") // must not panic
	if tm.Total("never") != 0 {
		t.Error("phantom phase accumulated time")
	}
}

func TestTimerSummaryOrdering(t *testing.T) {
	tm := NewTimer()
	tm.Time("fast", func() {})
	tm.Time("slow", func() { time.Sleep(10 * time.Millisecond) })
	s := tm.Summary()
	if strings.Index(s, "slow") > strings.Index(s, "fast") {
		t.Errorf("summary not sorted by time:\n%s", s)
	}
}

func TestThroughput(t *testing.T) {
	// 2e6 zone updates in 1s = 2 Mzups.
	if got := Throughput(2_000_000, time.Second); math.Abs(got-2) > 1e-12 {
		t.Errorf("Throughput = %v", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Errorf("zero-time throughput = %v", got)
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if s := Speedup(8*time.Second, 2*time.Second); math.Abs(s-4) > 1e-12 {
		t.Errorf("Speedup = %v", s)
	}
	if e := Efficiency(8*time.Second, 2*time.Second, 4); math.Abs(e-100) > 1e-9 {
		t.Errorf("Efficiency = %v", e)
	}
	if e := Efficiency(8*time.Second, 4*time.Second, 4); math.Abs(e-50) > 1e-9 {
		t.Errorf("Efficiency = %v", e)
	}
	if Speedup(time.Second, 0) != 0 || Efficiency(time.Second, 0, 2) != 0 {
		t.Error("degenerate inputs not guarded")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Strong scaling", "ranks", "time", "speedup")
	tb.AddRow(1, 8.0, 1.0)
	tb.AddRow(16, 0.61234567, 13.066)
	s := tb.String()
	for _, want := range []string{"Strong scaling", "ranks", "speedup", "13.07", "0.6123"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableDurationFormatting(t *testing.T) {
	tb := NewTable("", "phase", "t")
	tb.AddRow("step", 1500*time.Microsecond)
	if !strings.Contains(tb.String(), "1.5ms") {
		t.Errorf("duration not formatted:\n%s", tb.String())
	}
}

func TestTimerConcurrentUse(t *testing.T) {
	tm := NewTimer()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(id int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				tm.Time("shared", func() {})
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if tm.Count("shared") != 800 {
		t.Errorf("count = %d, want 800", tm.Count("shared"))
	}
}
