package metrics

import "sync/atomic"

// FaultCounters aggregates resilience events across the stack: injected
// faults, step/kernel retries, first-order fallback engagements,
// fail-safe troubled-cell repairs, and rank/device recoveries. Every
// field is atomic, so producers on concurrent goroutines (pool workers,
// per-rank drivers, device models) may increment without locking;
// Snapshot gives a consistent-enough view for reporting (individual
// loads are atomic, the set is not a single linearisation point — same
// contract as c2p.Stats).
//
// The zero value is ready to use. Do not copy a FaultCounters after
// first use.
type FaultCounters struct {
	Injected   atomic.Int64 // faults injected by a harness
	Retries    atomic.Int64 // step or kernel re-executions after a violation
	Fallbacks  atomic.Int64 // retries that engaged the first-order fallback
	Recoveries atomic.Int64 // completed rank/device recoveries
	// Troubled and Repaired count cells flagged by the a posteriori
	// fail-safe detector and cells its local flux-replacement repair
	// re-updated (see docs/RESILIENCE.md, "Local repair").
	Troubled atomic.Int64
	Repaired atomic.Int64
	// Demotions counts fail-safe steps demoted to the global retry path —
	// the troubled fraction exceeded Policy.MaxTroubledFrac, or the local
	// repair itself failed.
	Demotions atomic.Int64
	// FallbackZones counts zone updates computed at the dissipative
	// fallback order: the whole interior per stage during a global
	// first-order retry, but only the repaired cells under the fail-safe —
	// the time-to-solution currency the failsafe benchmark (E15) compares.
	FallbackZones atomic.Int64
	Degraded      atomic.Bool // a component is permanently excluded (device lost, rank down)
}

// FaultSnapshot is a plain-value copy of FaultCounters for reports and
// JSON serialisation.
type FaultSnapshot struct {
	Injected      int64 `json:"injected"`
	Retries       int64 `json:"retries"`
	Fallbacks     int64 `json:"fallbacks"`
	Recoveries    int64 `json:"recoveries"`
	Troubled      int64 `json:"troubled"`
	Repaired      int64 `json:"repaired"`
	Demotions     int64 `json:"demotions"`
	FallbackZones int64 `json:"fallback_zones"`
	Degraded      bool  `json:"degraded"`
}

// Reset zeroes every counter (FaultCounters cannot be copied, so
// clock-reset paths clear it in place).
func (f *FaultCounters) Reset() {
	f.Injected.Store(0)
	f.Retries.Store(0)
	f.Fallbacks.Store(0)
	f.Recoveries.Store(0)
	f.Troubled.Store(0)
	f.Repaired.Store(0)
	f.Demotions.Store(0)
	f.FallbackZones.Store(0)
	f.Degraded.Store(false)
}

// Snapshot returns the current counter values.
func (f *FaultCounters) Snapshot() FaultSnapshot {
	return FaultSnapshot{
		Injected:      f.Injected.Load(),
		Retries:       f.Retries.Load(),
		Fallbacks:     f.Fallbacks.Load(),
		Recoveries:    f.Recoveries.Load(),
		Troubled:      f.Troubled.Load(),
		Repaired:      f.Repaired.Load(),
		Demotions:     f.Demotions.Load(),
		FallbackZones: f.FallbackZones.Load(),
		Degraded:      f.Degraded.Load(),
	}
}
