package metrics

import "sync/atomic"

// ServeCounters is the job server's single source of truth for serving
// events: the progress API, the E16 load experiment and operator
// tooling all read the same counters. Event fields are monotonic;
// QueueDepth, Parked and BusyWorkers are gauges maintained by the
// scheduler. Every field is atomic, so the HTTP handlers, worker
// goroutines and the admission path may touch them without locking;
// Snapshot gives a consistent-enough view for reporting (individual
// loads are atomic, the set is not a single linearisation point — same
// contract as FaultCounters).
//
// The zero value is ready to use. Do not copy a ServeCounters after
// first use.
type ServeCounters struct {
	Accepted  atomic.Int64 // jobs past admission control into the queue
	Rejected  atomic.Int64 // jobs refused at admission (quota, capacity, validation)
	Preempted atomic.Int64 // running jobs checkpointed and parked for a higher priority
	Resumed   atomic.Int64 // parked jobs restored from their snapshot
	Completed atomic.Int64 // jobs run to their end time or step budget
	Failed    atomic.Int64 // jobs terminated by an absorbed error or panic
	TimedOut  atomic.Int64 // jobs cancelled by the per-job wall-clock watchdog

	QueueDepth  atomic.Int64 // gauge: jobs waiting (queued + parked)
	Parked      atomic.Int64 // gauge: preempted jobs holding a snapshot
	BusyWorkers atomic.Int64 // gauge: workers currently running a job
}

// ServeSnapshot is a plain-value copy of ServeCounters for reports and
// JSON serialisation.
type ServeSnapshot struct {
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Preempted int64 `json:"preempted"`
	Resumed   int64 `json:"resumed"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	TimedOut  int64 `json:"timed_out"`

	QueueDepth  int64 `json:"queue_depth"`
	Parked      int64 `json:"parked"`
	BusyWorkers int64 `json:"busy_workers"`
}

// Snapshot returns the current counter values.
func (c *ServeCounters) Snapshot() ServeSnapshot {
	return ServeSnapshot{
		Accepted:    c.Accepted.Load(),
		Rejected:    c.Rejected.Load(),
		Preempted:   c.Preempted.Load(),
		Resumed:     c.Resumed.Load(),
		Completed:   c.Completed.Load(),
		Failed:      c.Failed.Load(),
		TimedOut:    c.TimedOut.Load(),
		QueueDepth:  c.QueueDepth.Load(),
		Parked:      c.Parked.Load(),
		BusyWorkers: c.BusyWorkers.Load(),
	}
}

// Reset zeroes every counter and gauge.
func (c *ServeCounters) Reset() {
	c.Accepted.Store(0)
	c.Rejected.Store(0)
	c.Preempted.Store(0)
	c.Resumed.Store(0)
	c.Completed.Store(0)
	c.Failed.Store(0)
	c.TimedOut.Store(0)
	c.QueueDepth.Store(0)
	c.Parked.Store(0)
	c.BusyWorkers.Store(0)
}
