package metrics

import "sync/atomic"

// RouterCounters aggregates the dynamic device router's lifecycle events
// (package hetero): drain/undrain transitions, probe launches,
// quarantines of flapping devices, fail-stop deaths, and strip kernels
// rerouted off a dying device mid-run, plus the serve-layer placement
// leases routed onto the fleet. Every field is atomic — producers on
// concurrent goroutines (serve workers, executor phases) increment
// without locking; Snapshot gives a consistent-enough view for reporting
// (same contract as FaultCounters).
//
// The zero value is ready to use. Do not copy a RouterCounters after
// first use.
type RouterCounters struct {
	Drains      atomic.Int64 // devices taken out of rotation by health scoring
	Undrains    atomic.Int64 // drained devices returned to rotation after a clean probe
	Probes      atomic.Int64 // probe kernels sent to drained devices
	Quarantines atomic.Int64 // devices benched for flapping faster than the health window
	Deaths      atomic.Int64 // fail-stop device losses (chaos or organic)
	Reroutes    atomic.Int64 // in-flight strip kernels migrated off a dying device
	Leases      atomic.Int64 // serve-layer job segments placed onto routed capacity
	LeaseFaults atomic.Int64 // placed segments that ended in failure (feeds health)
}

// RouterSnapshot is a plain-value copy of RouterCounters for reports and
// JSON serialisation.
type RouterSnapshot struct {
	Drains      int64 `json:"drains"`
	Undrains    int64 `json:"undrains"`
	Probes      int64 `json:"probes"`
	Quarantines int64 `json:"quarantines"`
	Deaths      int64 `json:"deaths"`
	Reroutes    int64 `json:"reroutes"`
	Leases      int64 `json:"leases"`
	LeaseFaults int64 `json:"lease_faults"`
}

// Reset zeroes every counter in place.
func (r *RouterCounters) Reset() {
	r.Drains.Store(0)
	r.Undrains.Store(0)
	r.Probes.Store(0)
	r.Quarantines.Store(0)
	r.Deaths.Store(0)
	r.Reroutes.Store(0)
	r.Leases.Store(0)
	r.LeaseFaults.Store(0)
}

// Snapshot returns the current counter values.
func (r *RouterCounters) Snapshot() RouterSnapshot {
	return RouterSnapshot{
		Drains:      r.Drains.Load(),
		Undrains:    r.Undrains.Load(),
		Probes:      r.Probes.Load(),
		Quarantines: r.Quarantines.Load(),
		Deaths:      r.Deaths.Load(),
		Reroutes:    r.Reroutes.Load(),
		Leases:      r.Leases.Load(),
		LeaseFaults: r.LeaseFaults.Load(),
	}
}
