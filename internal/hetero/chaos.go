package hetero

// Chaos harness: a deterministic, phase-keyed fault schedule for the
// executor. Every event is a pure function of the sweep-phase counter —
// no wall clocks, no randomness — so a chaos run is exactly reproducible
// and, because kernels always execute for correctness on the host, its
// solution is bitwise identical to a fault-free run. Chaos perturbs only
// the virtual clocks, the health scores, and the placement.
//
// Three event kinds cover the failure modes the router must survive:
//
//   - DeviceDeath: fail-stop loss. The device's next launch at or after
//     Phase errors; the executor charges the wasted launch plus a
//     bounded exponential-backoff retry series, reroutes the in-flight
//     strips to the earliest-finishing live device, and the router marks
//     the device Dead (permanently out of rotation).
//
//   - LatencySpike: the device's observed per-zone latency is multiplied
//     by Factor for Duration phases (0 = until the end of the run). The
//     planner still sees nominal specs — only the health model, fed by
//     observed latencies, can notice and drain the straggler.
//
//   - LatencyFlap: the multiplier toggles between Factor and 1 every
//     Period phases, modelling a device that recovers just long enough
//     to be re-admitted and then degrades again. A flap faster than the
//     router's health window triggers quarantine.
type ChaosSchedule struct {
	Events []ChaosEvent

	// FlakyRetries is the number of extra failed re-launch attempts
	// charged per device death before the reroute lands (default 2).
	FlakyRetries int
	// RetryBackoff is the base virtual backoff per retry, doubled per
	// attempt (default 100 µs).
	RetryBackoff float64
}

// ChaosKind discriminates chaos events.
type ChaosKind int

// Chaos event kinds.
const (
	DeviceDeath ChaosKind = iota
	LatencySpike
	LatencyFlap
)

// String implements fmt.Stringer.
func (k ChaosKind) String() string {
	switch k {
	case DeviceDeath:
		return "death"
	case LatencySpike:
		return "spike"
	default:
		return "flap"
	}
}

// ChaosEvent is one scheduled perturbation of one device.
type ChaosEvent struct {
	Kind   ChaosKind
	Device int   // index into Executor.Devices
	Phase  int64 // sweep phase at which the event begins

	// Duration bounds a LatencySpike in phases; 0 means it lasts until
	// the end of the run. Ignored for DeviceDeath and LatencyFlap.
	Duration int64
	// Factor is the observed-latency multiplier for LatencySpike and the
	// degraded half of LatencyFlap (values <= 1 are treated as no-op).
	Factor float64
	// Period is the LatencyFlap half-period in phases: the device runs
	// degraded for Period phases, clean for Period phases, and so on
	// (default 4).
	Period int64
}

// slowdownAt returns the combined latency multiplier for a device at a
// phase: overlapping spike/flap events multiply.
func (c *ChaosSchedule) slowdownAt(dev int, phase int64) float64 {
	slow := 1.0
	for _, ev := range c.Events {
		if ev.Device != dev || phase < ev.Phase || ev.Factor <= 1 {
			continue
		}
		switch ev.Kind {
		case LatencySpike:
			if ev.Duration <= 0 || phase < ev.Phase+ev.Duration {
				slow *= ev.Factor
			}
		case LatencyFlap:
			period := ev.Period
			if period <= 0 {
				period = 4
			}
			if (phase-ev.Phase)/period%2 == 0 {
				slow *= ev.Factor
			}
		}
	}
	return slow
}

// retryParams returns the base backoff and retry count for a death's
// bounded reroute, with defaults applied. Safe on a nil schedule.
func (c *ChaosSchedule) retryParams() (backoff float64, retries int) {
	backoff, retries = 1e-4, 2
	if c == nil {
		return backoff, retries
	}
	if c.RetryBackoff > 0 {
		backoff = c.RetryBackoff
	}
	if c.FlakyRetries > 0 {
		retries = c.FlakyRetries
	}
	return backoff, retries
}

// applyChaosPhase applies the schedule's latency multipliers for the
// phase to the device clocks and returns the devices whose fail-stop
// death fires now (first phase at or past the event's Phase on a device
// not yet dead). The dying devices still appear in this phase's plan:
// the executor discovers the death through the failed launch and
// reroutes (rerouteDead), exactly like the legacy DeviceFault path.
func (ex *Executor) applyChaosPhase(phase int64) []int {
	c := ex.Chaos
	if c == nil {
		return nil
	}
	for i, d := range ex.Devices {
		d.SetSlowdown(c.slowdownAt(i, phase))
	}
	var newly []int
	for _, ev := range c.Events {
		if ev.Kind != DeviceDeath || ev.Device < 0 || ev.Device >= len(ex.Devices) {
			continue
		}
		if phase >= ev.Phase && !ex.router.Dead(ev.Device) {
			newly = append(newly, ev.Device)
		}
	}
	return newly
}
