// Package hetero models heterogeneous execution of the HRSC solver:
// accelerator devices, host CPUs, kernel launch and PCIe-style transfer
// costs, and static vs. dynamic scheduling of the solver's strip sweeps
// across a mixed device set.
//
// Substitution note (see DESIGN.md): pure Go cannot drive real GPUs, so a
// device executes its kernels on host goroutines for *correctness* while a
// deterministic virtual clock accounts its *performance* from a calibrated
// spec (zone throughput, launch latency, transfer latency/bandwidth). The
// heterogeneous experiments (E7, E8) are statements about those ratios —
// where the CPU/GPU crossover sits, how much a dynamic work queue recovers
// on mismatched devices — and the virtual clock reproduces exactly those
// shapes.
package hetero

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"rhsc/internal/core"
	"rhsc/internal/metrics"
	"rhsc/internal/par"
	"rhsc/internal/state"
)

// Kind distinguishes host CPUs from accelerator devices (which pay
// transfer costs).
type Kind int

// Device kinds.
const (
	CPU Kind = iota
	GPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == CPU {
		return "cpu"
	}
	return "gpu"
}

// Spec is the calibrated performance model of one device.
type Spec struct {
	Name string
	Kind Kind
	// ZoneRate is the sustained zone-update throughput in zones per
	// virtual second for the HRSC flux kernel.
	ZoneRate float64
	// LaunchLatency is the fixed virtual cost of launching one kernel
	// (one strip-range dispatch).
	LaunchLatency float64
	// TransferLatency and TransferBW model the host↔device copy of a
	// kernel's working set (zero-cost for host CPUs).
	TransferLatency float64
	TransferBW      float64 // bytes per virtual second
	// Resident marks an accelerator whose field data lives on the device
	// for the whole run: kernels pay no per-launch PCIe traffic. A staged
	// (non-resident) accelerator copies its working set in and out on
	// every kernel — the naive offload pattern the paper's evaluation
	// contrasts against.
	Resident bool
	// Workers is the real host parallelism used to execute the device's
	// kernels (correctness path).
	Workers int
}

// SpecHostCPU returns a 2015-era multicore host socket: ~4 Mzones/s per
// core for the PLM+HLLC kernel, negligible launch cost, no transfers.
func SpecHostCPU(cores int) Spec {
	if cores < 1 {
		cores = 1
	}
	return Spec{
		Name:          fmt.Sprintf("host-cpu-%dc", cores),
		Kind:          CPU,
		ZoneRate:      4e6 * float64(cores),
		LaunchLatency: 5e-7,
		Workers:       cores,
	}
}

// SpecK20GPU returns a Kepler-class accelerator with device-resident
// fields: ~25× a single host core on the flux kernel and 15 µs kernel
// launches; no per-kernel PCIe traffic.
func SpecK20GPU() Spec {
	return Spec{
		Name:            "k20-gpu",
		Kind:            GPU,
		ZoneRate:        100e6,
		LaunchLatency:   15e-6,
		TransferLatency: 10e-6,
		TransferBW:      6e9,
		Resident:        true,
		Workers:         4,
	}
}

// SpecXeonPhi returns a Knights-Corner-class coprocessor: wide but slow
// cores give ~1.5× a host socket on this kernel, with modest launch
// overhead; fields are device-resident like the GPU path.
func SpecXeonPhi() Spec {
	return Spec{
		Name:            "xeon-phi",
		Kind:            GPU, // scheduled as an accelerator
		ZoneRate:        48e6,
		LaunchLatency:   5e-6,
		TransferLatency: 10e-6,
		TransferBW:      6e9,
		Resident:        true,
		Workers:         4,
	}
}

// SpecK20GPUStaged returns the same accelerator in the naive offload
// configuration: every kernel stages its working set across a 6 GB/s
// PCIe-2-era link, capping effective throughput near the link bandwidth.
func SpecK20GPUStaged() Spec {
	s := SpecK20GPU()
	s.Name = "k20-gpu-staged"
	s.Resident = false
	return s
}

// Device is a schedulable device instance with its virtual clock.
type Device struct {
	Spec Spec

	mu    sync.Mutex
	busy  float64 // accumulated virtual busy seconds
	zones int64   // zones processed (load-balance accounting)
	kerns int64   // kernels launched
}

// NewDevice wraps a spec, rejecting one that cannot make progress.
func NewDevice(s Spec) (*Device, error) {
	if s.ZoneRate <= 0 {
		return nil, fmt.Errorf("hetero: device %q needs positive ZoneRate", s.Name)
	}
	if s.Workers < 1 {
		s.Workers = 1
	}
	return &Device{Spec: s}, nil
}

// MustDevice is NewDevice for statically known-good specs (tests,
// benchmark tables); it panics on a spec NewDevice rejects.
func MustDevice(s Spec) *Device {
	d, err := NewDevice(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Staged reports whether the device copies its working set over the link
// (a non-resident accelerator).
func (d *Device) Staged() bool { return d.Spec.Kind == GPU && !d.Spec.Resident }

// KernelCost returns the virtual cost of launching and computing one
// kernel over the given zones (no transfer: DMA is streamed and accounted
// per sweep phase, see TransferCost).
func (d *Device) KernelCost(zones int) float64 {
	return d.Spec.LaunchLatency + float64(zones)/d.Spec.ZoneRate
}

// TransferCost returns the virtual cost of staging bytes across the link
// once: a latency pair plus bandwidth time. Zero for host CPUs and
// resident accelerators.
func (d *Device) TransferCost(bytes int) float64 {
	if !d.Staged() || bytes <= 0 {
		return 0
	}
	return 2*d.Spec.TransferLatency + float64(bytes)/d.Spec.TransferBW
}

// MarginalCost estimates the incremental virtual cost of adding a kernel
// of the given zones to this device within one sweep phase: launch +
// compute + (staged) the bandwidth share of its working set. The
// per-phase transfer latency is amortised and excluded. The dynamic
// scheduler plans with this estimate.
func (d *Device) MarginalCost(zones int) float64 {
	c := d.KernelCost(zones)
	if d.Staged() {
		c += float64(stripBytes(zones)) / d.Spec.TransferBW
	}
	return c
}

// Charge adds a completed kernel (launch + compute) to the device's clock.
func (d *Device) Charge(zones int) float64 {
	c, _, _ := d.chargeInterval(zones)
	return c
}

// chargeInterval charges a kernel and returns its cost and the [start,
// end) interval on the device's virtual timeline.
func (d *Device) chargeInterval(zones int) (cost, start, end float64) {
	cost = d.KernelCost(zones)
	d.mu.Lock()
	start = d.busy
	d.busy += cost
	end = d.busy
	d.zones += int64(zones)
	d.kerns++
	d.mu.Unlock()
	return cost, start, end
}

// ChargeTransfer adds one staged transfer of bytes to the device's clock
// and returns its cost.
func (d *Device) ChargeTransfer(bytes int) float64 {
	c := d.TransferCost(bytes)
	if c == 0 {
		return 0
	}
	d.mu.Lock()
	d.busy += c
	d.mu.Unlock()
	return c
}

// Busy returns the accumulated virtual busy time.
func (d *Device) Busy() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy
}

// Zones returns total zones processed.
func (d *Device) Zones() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.zones
}

// Kernels returns the number of kernels launched.
func (d *Device) Kernels() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kerns
}

// Reset clears the clock and counters.
func (d *Device) Reset() {
	d.mu.Lock()
	d.busy, d.zones, d.kerns = 0, 0, 0
	d.mu.Unlock()
}

// Policy selects how strips are scheduled across devices.
type Policy int

// Scheduling policies.
const (
	// Static partitions each sweep proportionally to raw ZoneRate, one
	// kernel per device per sweep. Minimal launch overhead, but blind to
	// transfer costs, so mismatched devices imbalance.
	Static Policy = iota
	// Dynamic feeds fixed-size chunks to whichever device would finish
	// earliest (deterministic list scheduling of a work queue), adapting
	// to effective — not nominal — device speed.
	Dynamic
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Static {
		return "static"
	}
	return "dynamic"
}

// assignment is a strip range given to one device.
type assignment struct {
	dev    int
	lo, hi int
}

// Executor dispatches the solver's strip sweeps onto a device set and
// accounts virtual time. Attach it to a solver via Attach; afterwards the
// solver's normal Step/Advance run heterogeneously.
type Executor struct {
	Devices []*Device
	Policy  Policy
	// ChunkStrips is the dynamic-policy chunk size (strips per kernel);
	// <= 0 selects max(1, nStrips/(8·ndev)).
	ChunkStrips int

	// Trace, when true, records one event per kernel for timeline
	// (Gantt) export via TraceEvents / WriteTraceCSV.
	Trace bool

	// Fault, when non-nil, deterministically fails one device mid-run;
	// its kernels re-execute on the healthy set (see DeviceFault).
	Fault *DeviceFault
	// Stats counts injected device faults, kernel re-executions, and the
	// degraded-mode flag; NewExecutor points it at private storage, but
	// callers may share one across executors.
	Stats *metrics.FaultCounters

	solver *core.Solver
	pool   *par.Pool

	faulted []bool  // device permanently excluded after an injected fault
	planned []int64 // planned kernels per device (fault-trigger accounting)
	backoff float64 // accumulated virtual retry-backoff seconds
	pending float64 // backoff charged to the current phase's makespan
	own     metrics.FaultCounters

	mu      sync.Mutex
	virtual float64 // accumulated virtual makespan
	phase   int64
	events  []TraceEvent
}

// DeviceFault injects a fail-stop device error: the device completes
// AfterKernels kernels, then its next launch comes back with an error.
// The executor marks the device degraded, charges it the wasted launch,
// re-executes the failed kernel — after FlakyRetries further failed
// attempts, each preceded by an exponentially growing virtual backoff —
// on the earliest-finishing healthy device, and excludes the faulty
// device from every later sweep plan.
//
// The fault is evaluated when a sweep is *planned*, not while kernels
// execute: pool execution order is nondeterministic, plan order is not,
// so a faulted run is exactly reproducible and its solution bitwise
// matches the fault-free one (kernels always compute correctly on the
// host; only the virtual clocks and device assignment change).
type DeviceFault struct {
	Device       int     // index into Executor.Devices
	AfterKernels int64   // kernels the device completes before failing
	FlakyRetries int     // extra failed re-execution attempts before success
	RetryBackoff float64 // base virtual backoff per retry (default 100 µs)
}

// TraceEvent is one kernel on a device's virtual timeline.
type TraceEvent struct {
	Phase  int64   // sweep-phase counter
	Device string  // device name
	Strips int     // strips in the kernel
	Zones  int     // zones processed
	Start  float64 // device-local virtual start time (seconds)
	End    float64
}

// NewExecutor builds an executor over the given devices.
func NewExecutor(policy Policy, devices ...*Device) (*Executor, error) {
	if len(devices) == 0 {
		return nil, errors.New("hetero: executor needs at least one device")
	}
	workers := 0
	for _, d := range devices {
		if d == nil {
			return nil, errors.New("hetero: nil device")
		}
		workers += d.Spec.Workers
	}
	ex := &Executor{
		Devices: devices,
		Policy:  policy,
		pool:    par.NewPool(workers),
		faulted: make([]bool, len(devices)),
		planned: make([]int64, len(devices)),
	}
	ex.Stats = &ex.own
	return ex, nil
}

// MustExecutor is NewExecutor for statically known-good device sets;
// it panics on input NewExecutor rejects.
func MustExecutor(policy Policy, devices ...*Device) *Executor {
	ex, err := NewExecutor(policy, devices...)
	if err != nil {
		panic(err)
	}
	return ex
}

// Attach hooks the executor into the solver's sweep execution. It must be
// called before stepping; it also routes the solver's generic pool work
// through the executor's pool.
func (ex *Executor) Attach(s *core.Solver) {
	ex.solver = s
	s.Cfg.SweepExec = ex.sweepExec
	if s.Cfg.Pool == nil {
		s.Cfg.Pool = ex.pool
	}
}

// VirtualTime returns the accumulated virtual makespan in seconds.
func (ex *Executor) VirtualTime() float64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.virtual
}

// ResetClocks zeroes the executor makespan, trace, fault state and every
// device clock.
func (ex *Executor) ResetClocks() {
	ex.mu.Lock()
	ex.virtual = 0
	ex.phase = 0
	ex.events = nil
	ex.mu.Unlock()
	for i, d := range ex.Devices {
		d.Reset()
		ex.faulted[i] = false
		ex.planned[i] = 0
	}
	ex.backoff = 0
	ex.pending = 0
	ex.Stats.Reset()
}

// BackoffVirtual returns the virtual seconds spent in retry backoff
// after injected device faults.
func (ex *Executor) BackoffVirtual() float64 { return ex.backoff }

// Degraded reports whether a device has been lost to an injected fault
// and the executor is running on the reduced set.
func (ex *Executor) Degraded() bool { return ex.Stats.Degraded.Load() }

// TraceEvents returns a copy of the recorded kernel timeline (Trace must
// have been enabled), sorted by phase then device-local start time.
func (ex *Executor) TraceEvents() []TraceEvent {
	ex.mu.Lock()
	out := append([]TraceEvent(nil), ex.events...)
	ex.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// WriteTraceCSV dumps the kernel timeline for external Gantt plotting.
func (ex *Executor) WriteTraceCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "phase,device,strips,zones,start,end"); err != nil {
		return err
	}
	for _, e := range ex.TraceEvents() {
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d,%.9g,%.9g\n",
			e.Phase, e.Device, e.Strips, e.Zones, e.Start, e.End); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// stripBytes estimates the working set of one strip: primitives in, RHS
// out, NComp doubles each way.
func stripBytes(zones int) int { return zones * state.NComp * 8 * 2 }

// sweepExec implements core.Config.SweepExec.
func (ex *Executor) sweepExec(d state.Direction, nStrips int, sweep func(lo, hi int)) {
	if nStrips <= 0 {
		return
	}
	zonesPerStrip := ex.solver.StripZones(d)

	var plan []assignment
	switch ex.Policy {
	case Static:
		plan = ex.staticPlan(nStrips)
	case Dynamic:
		plan = ex.dynamicPlan(nStrips, zonesPerStrip)
	}
	plan = ex.applyFault(plan, zonesPerStrip)

	// Execute: kernels run for real on the pool; each is charged to its
	// device's virtual clock.
	phaseStart := make([]float64, len(ex.Devices))
	phaseZones := make([]int64, len(ex.Devices))
	for i, dev := range ex.Devices {
		phaseStart[i] = dev.Busy()
		phaseZones[i] = dev.Zones()
	}
	phase := ex.phase
	ex.phase++
	var wg sync.WaitGroup
	for _, a := range plan {
		a := a
		wg.Add(1)
		ex.pool.Go(func() {
			defer wg.Done()
			sweep(a.lo, a.hi)
			zones := (a.hi - a.lo) * zonesPerStrip
			dev := ex.Devices[a.dev]
			_, start, end := dev.chargeInterval(zones)
			if ex.Trace {
				ex.mu.Lock()
				ex.events = append(ex.events, TraceEvent{
					Phase: phase, Device: dev.Spec.Name,
					Strips: a.hi - a.lo, Zones: zones,
					Start: start, End: end,
				})
				ex.mu.Unlock()
			}
		})
	}
	wg.Wait()

	// Staged devices pay one streamed transfer of the phase working set.
	for i, dev := range ex.Devices {
		if z := dev.Zones() - phaseZones[i]; z > 0 {
			dev.ChargeTransfer(stripBytes(int(z)))
		}
	}

	// Makespan of this phase: the slowest device's accumulated charge,
	// plus any retry backoff an injected device fault cost this phase.
	span := ex.pending
	ex.backoff += ex.pending
	ex.pending = 0
	for i, dev := range ex.Devices {
		if b := dev.Busy() - phaseStart[i]; b > span {
			span = b
		}
	}
	ex.mu.Lock()
	ex.virtual += span
	ex.mu.Unlock()
}

// applyFault rewrites a sweep plan when the configured device fault
// fires: the triggering kernel and every later kernel of the faulty
// device migrate to the earliest-finishing healthy device (list
// scheduling over within-phase ETAs, as dynamicPlan does). Runs in the
// (serial) sweep-planning path; see DeviceFault for the determinism
// argument.
func (ex *Executor) applyFault(plan []assignment, zonesPerStrip int) []assignment {
	f := ex.Fault
	if f == nil || f.Device < 0 || f.Device >= len(ex.Devices) || ex.faulted[f.Device] {
		return plan
	}
	eta := make([]float64, len(ex.Devices))
	out := make([]assignment, 0, len(plan))
	place := func(a assignment) {
		out = append(out, a)
		eta[a.dev] += ex.Devices[a.dev].MarginalCost((a.hi - a.lo) * zonesPerStrip)
	}
	for _, a := range plan {
		if a.dev != f.Device {
			place(a)
			continue
		}
		if !ex.faulted[f.Device] {
			if ex.planned[f.Device] < f.AfterKernels {
				ex.planned[f.Device]++
				place(a)
				continue
			}
			// This launch errors: degrade the device, charge it the
			// wasted launch, and pay exponentially growing backoff for
			// the failed re-execution attempts plus the one that lands.
			ex.faulted[f.Device] = true
			ex.Stats.Injected.Add(1)
			ex.Stats.Degraded.Store(true)
			ex.Devices[f.Device].Charge(0)
			back := f.RetryBackoff
			if back <= 0 {
				back = 1e-4
			}
			for k := 0; k <= f.FlakyRetries; k++ {
				ex.Stats.Retries.Add(1)
				ex.pending += back
				back *= 2
			}
		}
		best, bestT := -1, math.Inf(1)
		for i, d := range ex.Devices {
			if ex.faulted[i] {
				continue
			}
			if t := eta[i] + d.MarginalCost((a.hi-a.lo)*zonesPerStrip); t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 {
			// No healthy device remains: keep the assignment so the sweep
			// still completes (correctness path runs on the host anyway).
			out = append(out, a)
			continue
		}
		place(assignment{dev: best, lo: a.lo, hi: a.hi})
	}
	return out
}

// healthy returns the schedulable device indices: every device not
// excluded by an injected fault, or all of them if none survives (the
// correctness path must still run the sweep somewhere).
func (ex *Executor) healthy() []int {
	out := make([]int, 0, len(ex.Devices))
	for i := range ex.Devices {
		if !ex.faulted[i] {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		for i := range ex.Devices {
			out = append(out, i)
		}
	}
	return out
}

// staticPlan splits [0, nStrips) proportionally to raw ZoneRate: one
// kernel per healthy device.
func (ex *Executor) staticPlan(nStrips int) []assignment {
	devs := ex.healthy()
	total := 0.0
	for _, i := range devs {
		total += ex.Devices[i].Spec.ZoneRate
	}
	plan := make([]assignment, 0, len(devs))
	lo := 0
	acc := 0.0
	for n, i := range devs {
		acc += ex.Devices[i].Spec.ZoneRate
		hi := int(math.Round(float64(nStrips) * acc / total))
		if n == len(devs)-1 {
			hi = nStrips
		}
		if hi > lo {
			plan = append(plan, assignment{dev: i, lo: lo, hi: hi})
		}
		lo = hi
	}
	return plan
}

// dynamicPlan models a work queue with deterministic list scheduling:
// chunks are assigned, in order, to the device that would finish them
// earliest given everything already assigned in this sweep.
func (ex *Executor) dynamicPlan(nStrips, zonesPerStrip int) []assignment {
	devs := ex.healthy()
	chunk := ex.ChunkStrips
	if chunk <= 0 {
		chunk = nStrips / (8 * len(devs))
		if chunk < 1 {
			chunk = 1
		}
	}
	eta := make([]float64, len(ex.Devices))
	var plan []assignment
	for lo := 0; lo < nStrips; lo += chunk {
		hi := lo + chunk
		if hi > nStrips {
			hi = nStrips
		}
		zones := (hi - lo) * zonesPerStrip
		best, bestT := devs[0], math.Inf(1)
		for _, i := range devs {
			t := eta[i] + ex.Devices[i].MarginalCost(zones)
			if t < bestT {
				best, bestT = i, t
			}
		}
		eta[best] = bestT
		plan = append(plan, assignment{dev: best, lo: lo, hi: hi})
	}
	return plan
}

// LoadReport summarises per-device work after a run.
type LoadReport struct {
	Name    string
	Kind    Kind
	Zones   int64
	Kernels int64
	Busy    float64 // virtual seconds
	Share   float64 // fraction of total zones
	Faulted bool    // excluded mid-run by an injected fault
}

// Report returns the per-device load breakdown, ordered as the devices
// were given.
func (ex *Executor) Report() []LoadReport {
	var total int64
	for _, d := range ex.Devices {
		total += d.Zones()
	}
	out := make([]LoadReport, len(ex.Devices))
	for i, d := range ex.Devices {
		share := 0.0
		if total > 0 {
			share = float64(d.Zones()) / float64(total)
		}
		out[i] = LoadReport{
			Name: d.Spec.Name, Kind: d.Spec.Kind,
			Zones: d.Zones(), Kernels: d.Kernels(),
			Busy: d.Busy(), Share: share,
			Faulted: ex.faulted[i],
		}
	}
	return out
}

// Imbalance returns max(busy)/mean(busy) − 1 across devices: 0 for perfect
// balance.
func (ex *Executor) Imbalance() float64 {
	if len(ex.Devices) < 2 {
		return 0
	}
	busies := make([]float64, len(ex.Devices))
	sum := 0.0
	for i, d := range ex.Devices {
		busies[i] = d.Busy()
		sum += busies[i]
	}
	mean := sum / float64(len(busies))
	if mean <= 0 {
		return 0
	}
	sort.Float64s(busies)
	return busies[len(busies)-1]/mean - 1
}
