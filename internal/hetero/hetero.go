// Package hetero models heterogeneous execution of the HRSC solver:
// accelerator devices, host CPUs, kernel launch and PCIe-style transfer
// costs, and the scheduling of the solver's strip sweeps across a mixed
// device set — statically, dynamically, or through the health-scored
// router (see router.go and docs/HETERO.md).
//
// Substitution note (see DESIGN.md): pure Go cannot drive real GPUs, so a
// device executes its kernels on host goroutines for *correctness* while a
// deterministic virtual clock accounts its *performance* from a calibrated
// spec (zone throughput, launch latency, transfer latency/bandwidth). The
// heterogeneous experiments (E7, E8, E17) are statements about those
// ratios — where the CPU/GPU crossover sits, how much a dynamic work queue
// recovers on mismatched devices, how fast the router walls off a sick
// device — and the virtual clock reproduces exactly those shapes.
package hetero

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"rhsc/internal/state"
)

// Kind distinguishes host CPUs from accelerator devices (which pay
// transfer costs).
type Kind int

// Device kinds.
const (
	CPU Kind = iota
	GPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == CPU {
		return "cpu"
	}
	return "gpu"
}

// Spec is the calibrated performance model of one device.
type Spec struct {
	Name string
	Kind Kind
	// ZoneRate is the sustained zone-update throughput in zones per
	// virtual second for the HRSC flux kernel.
	ZoneRate float64
	// LaunchLatency is the fixed virtual cost of launching one kernel
	// (one strip-range dispatch).
	LaunchLatency float64
	// TransferLatency and TransferBW model the host↔device copy of a
	// kernel's working set (zero-cost for host CPUs).
	TransferLatency float64
	TransferBW      float64 // bytes per virtual second
	// Resident marks an accelerator whose field data lives on the device
	// for the whole run: kernels pay no per-launch PCIe traffic. A staged
	// (non-resident) accelerator copies its working set in and out on
	// every kernel — the naive offload pattern the paper's evaluation
	// contrasts against.
	Resident bool
	// Domain names the interconnect locality domain the device hangs off
	// (a PCIe root complex, a NUMA node). Devices sharing a domain are
	// "near" each other: the router's affinity term discounts working-set
	// handoffs inside a domain. Empty means the host domain.
	Domain string
	// Workers is the real host parallelism used to execute the device's
	// kernels (correctness path).
	Workers int
}

// ErrBadSpec is the sentinel every Spec validation failure unwraps to.
var ErrBadSpec = errors.New("hetero: invalid device spec")

// SpecError reports which field of which device's spec was rejected and
// why; it unwraps to ErrBadSpec.
type SpecError struct {
	Name   string  // device name (may be empty)
	Field  string  // offending Spec field
	Value  float64 // offending value
	Reason string
}

// Error implements error.
func (e *SpecError) Error() string {
	return fmt.Sprintf("hetero: device %q: %s = %g %s", e.Name, e.Field, e.Value, e.Reason)
}

// Unwrap lets errors.Is(err, ErrBadSpec) classify validation failures.
func (e *SpecError) Unwrap() error { return ErrBadSpec }

// Validate rejects a spec that would poison downstream cost arithmetic
// with NaN/Inf (zero or negative throughput, bandwidth, or core counts)
// before a device is ever built from it.
func (s Spec) Validate() error {
	bad := func(field string, v float64, reason string) error {
		return &SpecError{Name: s.Name, Field: field, Value: v, Reason: reason}
	}
	if s.ZoneRate <= 0 || math.IsNaN(s.ZoneRate) || math.IsInf(s.ZoneRate, 0) {
		return bad("ZoneRate", s.ZoneRate, "must be positive and finite")
	}
	if s.LaunchLatency < 0 || math.IsNaN(s.LaunchLatency) || math.IsInf(s.LaunchLatency, 0) {
		return bad("LaunchLatency", s.LaunchLatency, "must be non-negative and finite")
	}
	if s.Workers <= 0 {
		return bad("Workers", float64(s.Workers), "must be a positive core count")
	}
	if s.Kind == GPU && !s.Resident {
		// Only staged accelerators divide by the link bandwidth.
		if s.TransferBW <= 0 || math.IsNaN(s.TransferBW) || math.IsInf(s.TransferBW, 0) {
			return bad("TransferBW", s.TransferBW, "must be positive and finite for a staged accelerator")
		}
	}
	if s.TransferLatency < 0 || math.IsNaN(s.TransferLatency) || math.IsInf(s.TransferLatency, 0) {
		return bad("TransferLatency", s.TransferLatency, "must be non-negative and finite")
	}
	return nil
}

// Fingerprint is the compute fingerprint a device advertises to the
// router: its throughput relative to a reference host core, its link
// characteristics, and its interconnect locality. The router plans with
// fingerprints and *corrects* them with observed health (router.go).
type Fingerprint struct {
	// ThroughputX is the device's nominal zone rate in units of one
	// reference host core (4 Mzones/s, see SpecHostCPU).
	ThroughputX float64 `json:"throughput_x"`
	// LinkLatency/LinkBW describe the staging link; zero for devices
	// that never stage.
	LinkLatency float64 `json:"link_latency,omitempty"`
	LinkBW      float64 `json:"link_bw,omitempty"`
	// Domain is the interconnect locality domain (Spec.Domain).
	Domain string `json:"domain,omitempty"`
	// Staged marks a device that pays per-kernel working-set traffic.
	Staged bool `json:"staged,omitempty"`
}

// refCoreRate is the fingerprint reference: one 2015-era host core.
const refCoreRate = 4e6

// Fingerprint derives the spec's compute fingerprint.
func (s Spec) Fingerprint() Fingerprint {
	fp := Fingerprint{
		ThroughputX: s.ZoneRate / refCoreRate,
		Domain:      s.Domain,
		Staged:      s.Kind == GPU && !s.Resident,
	}
	if fp.Staged {
		fp.LinkLatency = s.TransferLatency
		fp.LinkBW = s.TransferBW
	}
	return fp
}

// SpecHostCPU returns a 2015-era multicore host socket: ~4 Mzones/s per
// core for the PLM+HLLC kernel, negligible launch cost, no transfers.
func SpecHostCPU(cores int) Spec {
	if cores < 1 {
		cores = 1
	}
	return Spec{
		Name:          fmt.Sprintf("host-cpu-%dc", cores),
		Kind:          CPU,
		ZoneRate:      refCoreRate * float64(cores),
		LaunchLatency: 5e-7,
		Domain:        "host",
		Workers:       cores,
	}
}

// SpecK20GPU returns a Kepler-class accelerator with device-resident
// fields: ~25× a single host core on the flux kernel and 15 µs kernel
// launches; no per-kernel PCIe traffic.
func SpecK20GPU() Spec {
	return Spec{
		Name:            "k20-gpu",
		Kind:            GPU,
		ZoneRate:        100e6,
		LaunchLatency:   15e-6,
		TransferLatency: 10e-6,
		TransferBW:      6e9,
		Resident:        true,
		Domain:          "pcie0",
		Workers:         4,
	}
}

// SpecXeonPhi returns a Knights-Corner-class coprocessor: wide but slow
// cores give ~1.5× a host socket on this kernel, with modest launch
// overhead; fields are device-resident like the GPU path.
func SpecXeonPhi() Spec {
	return Spec{
		Name:            "xeon-phi",
		Kind:            GPU, // scheduled as an accelerator
		ZoneRate:        48e6,
		LaunchLatency:   5e-6,
		TransferLatency: 10e-6,
		TransferBW:      6e9,
		Resident:        true,
		Domain:          "pcie1",
		Workers:         4,
	}
}

// SpecK20GPUStaged returns the same accelerator in the naive offload
// configuration: every kernel stages its working set across a 6 GB/s
// PCIe-2-era link, capping effective throughput near the link bandwidth.
func SpecK20GPUStaged() Spec {
	s := SpecK20GPU()
	s.Name = "k20-gpu-staged"
	s.Resident = false
	return s
}

// Device is a schedulable device instance with its virtual clock.
type Device struct {
	Spec Spec

	mu    sync.Mutex
	busy  float64 // accumulated virtual busy seconds
	zones int64   // zones processed (load-balance accounting)
	kerns int64   // kernels launched
	slow  float64 // chaos latency multiplier (1 = nominal); see chaos.go
}

// NewDevice wraps a spec, rejecting (with a *SpecError wrapping
// ErrBadSpec) one whose zero/negative throughput, bandwidth, or core
// count would surface as NaN/Inf costs downstream. For compatibility a
// zero Workers count is defaulted to 1 before validation; negative
// counts are rejected.
func NewDevice(s Spec) (*Device, error) {
	if s.Workers == 0 {
		s.Workers = 1
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Device{Spec: s, slow: 1}, nil
}

// MustDevice is NewDevice for statically known-good specs (tests,
// benchmark tables); it panics on a spec NewDevice rejects.
func MustDevice(s Spec) *Device {
	d, err := NewDevice(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Staged reports whether the device copies its working set over the link
// (a non-resident accelerator).
func (d *Device) Staged() bool { return d.Spec.Kind == GPU && !d.Spec.Resident }

// KernelCost returns the *nominal* virtual cost of launching and
// computing one kernel over the given zones (no transfer: DMA is
// streamed and accounted per sweep phase, see TransferCost). Planners
// use this estimate; the clock charge additionally pays any chaos
// latency multiplier, which only observation can reveal.
func (d *Device) KernelCost(zones int) float64 {
	return d.Spec.LaunchLatency + float64(zones)/d.Spec.ZoneRate
}

// TransferCost returns the virtual cost of staging bytes across the link
// once: a latency pair plus bandwidth time. Zero for host CPUs and
// resident accelerators.
func (d *Device) TransferCost(bytes int) float64 {
	if !d.Staged() || bytes <= 0 {
		return 0
	}
	return 2*d.Spec.TransferLatency + float64(bytes)/d.Spec.TransferBW
}

// MarginalCost estimates the incremental virtual cost of adding a kernel
// of the given zones to this device within one sweep phase: launch +
// compute + (staged) the bandwidth share of its working set. The
// per-phase transfer latency is amortised and excluded. The dynamic
// scheduler plans with this estimate; the router replaces the nominal
// compute term with the observed one (Router.EffPerZone).
func (d *Device) MarginalCost(zones int) float64 {
	c := d.KernelCost(zones)
	if d.Staged() {
		c += float64(stripBytes(zones)) / d.Spec.TransferBW
	}
	return c
}

// SetSlowdown installs a latency multiplier on the device's clock: every
// subsequent kernel charge costs slow× its nominal time. The chaos
// harness uses it for latency-spike and flapping-health injection; a
// multiplier ≤ 0 or NaN resets to 1.
func (d *Device) SetSlowdown(slow float64) {
	if !(slow > 0) || math.IsInf(slow, 0) {
		slow = 1
	}
	d.mu.Lock()
	d.slow = slow
	d.mu.Unlock()
}

// Slowdown returns the current chaos latency multiplier.
func (d *Device) Slowdown() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.slow
}

// Charge adds a completed kernel (launch + compute) to the device's clock.
func (d *Device) Charge(zones int) float64 {
	c, _, _ := d.chargeInterval(zones)
	return c
}

// chargeInterval charges a kernel and returns its cost and the [start,
// end) interval on the device's virtual timeline. The chaos slowdown
// multiplier inflates the charged (observed) cost — planners keep seeing
// nominal costs, exactly like a real straggler.
func (d *Device) chargeInterval(zones int) (cost, start, end float64) {
	cost = d.KernelCost(zones)
	d.mu.Lock()
	cost *= d.slow
	start = d.busy
	d.busy += cost
	end = d.busy
	d.zones += int64(zones)
	d.kerns++
	d.mu.Unlock()
	return cost, start, end
}

// ChargeTransfer adds one staged transfer of bytes to the device's clock
// and returns its cost.
func (d *Device) ChargeTransfer(bytes int) float64 {
	c := d.TransferCost(bytes)
	if c == 0 {
		return 0
	}
	d.mu.Lock()
	d.busy += c
	d.mu.Unlock()
	return c
}

// Busy returns the accumulated virtual busy time.
func (d *Device) Busy() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy
}

// Zones returns total zones processed.
func (d *Device) Zones() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.zones
}

// Kernels returns the number of kernels launched.
func (d *Device) Kernels() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kerns
}

// Reset clears the clock, counters, and any chaos slowdown.
func (d *Device) Reset() {
	d.mu.Lock()
	d.busy, d.zones, d.kerns = 0, 0, 0
	d.slow = 1
	d.mu.Unlock()
}

// stripBytes estimates the working set of one strip: primitives in, RHS
// out, NComp doubles each way.
func stripBytes(zones int) int { return zones * state.NComp * 8 * 2 }

// ParseFleet builds a device set from a comma-separated preset list, the
// wire format of rhscd's -fleet flag. Presets: "cpuN" (an N-core host
// socket), "k20" (resident Kepler GPU), "k20-staged" (PCIe-staged GPU),
// "phi" (Knights-Corner coprocessor).
func ParseFleet(list string) ([]*Device, error) {
	var devs []*Device
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var sp Spec
		switch {
		case name == "k20":
			sp = SpecK20GPU()
		case name == "k20-staged":
			sp = SpecK20GPUStaged()
		case name == "phi":
			sp = SpecXeonPhi()
		case strings.HasPrefix(name, "cpu") && len(name) > 3:
			var cores int
			if _, err := fmt.Sscanf(name[3:], "%d", &cores); err != nil || cores < 1 {
				return nil, fmt.Errorf("hetero: bad fleet preset %q (want cpuN)", name)
			}
			sp = SpecHostCPU(cores)
		default:
			return nil, fmt.Errorf("hetero: unknown fleet preset %q", name)
		}
		d, err := NewDevice(sp)
		if err != nil {
			return nil, err
		}
		devs = append(devs, d)
	}
	if len(devs) == 0 {
		return nil, errors.New("hetero: empty fleet")
	}
	return devs, nil
}
