package hetero

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"rhsc/internal/core"
	"rhsc/internal/metrics"
	"rhsc/internal/par"
	"rhsc/internal/state"
)

// Policy selects how strips are scheduled across devices.
type Policy int

// Scheduling policies.
const (
	// Static partitions each sweep proportionally to raw ZoneRate, one
	// kernel per device per sweep. Minimal launch overhead, but blind to
	// transfer costs, so mismatched devices imbalance.
	Static Policy = iota
	// Dynamic feeds fixed-size chunks to whichever device would finish
	// earliest (deterministic list scheduling of a work queue), adapting
	// to effective — not nominal — device speed.
	Dynamic
	// Routed plans through the health-scored router: placements score
	// affinity (working-set residency and interconnect locality),
	// fragmentation (kernel-count penalty), and equivalent-capacity
	// substitution (observed rate × health weights), and degraded or
	// flaky devices are drained out of rotation mid-run (router.go).
	Routed
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return "routed"
	}
}

// routedKernelsPerDevice is the routed planner's target kernel count per
// device per phase: chunks scale with capacity share so fast devices get
// few large contiguous kernels (low fragmentation) and slow ones small
// top-ups.
const routedKernelsPerDevice = 4

// assignment is a strip range given to one device.
type assignment struct {
	dev    int
	lo, hi int
}

// Executor dispatches the solver's strip sweeps onto a device set and
// accounts virtual time. Attach it to one solver (or to every leaf
// solver of an AMR tree via amr.Config.Attach); afterwards the solver's
// normal Step/Advance run heterogeneously.
type Executor struct {
	Devices []*Device
	Policy  Policy
	// ChunkStrips is the dynamic-policy chunk size (strips per kernel);
	// <= 0 selects max(1, nStrips/(8·ndev)).
	ChunkStrips int

	// Trace, when true, records one event per kernel for timeline
	// (Gantt) export via TraceEvents / WriteTraceCSV.
	Trace bool

	// Fault, when non-nil, deterministically fails one device mid-run;
	// its kernels re-execute on the healthy set (see DeviceFault).
	Fault *DeviceFault
	// Chaos, when non-nil, is the deterministic chaos schedule: device
	// deaths, latency spikes, and flapping health keyed to sweep phases
	// (see chaos.go).
	Chaos *ChaosSchedule
	// Stats counts injected device faults, kernel re-executions, and the
	// degraded-mode flag; NewExecutor points it at private storage, but
	// callers may share one across executors.
	Stats *metrics.FaultCounters

	router *Router
	pool   *par.Pool
	own    metrics.FaultCounters

	// mu guards every field below — the virtual makespan, phase counter,
	// trace, fault bookkeeping, and affinity memory — so TraceEvents,
	// Report, and the other read paths are safe while sweeps run.
	mu        sync.Mutex
	virtual   float64 // accumulated virtual makespan
	phase     int64
	events    []TraceEvent
	faulted   []bool  // device permanently excluded after an injected fault
	planned   []int64 // planned kernels per device (fault-trigger accounting)
	backoff   float64 // accumulated virtual retry-backoff seconds
	pending   float64 // backoff charged to the current phase's makespan
	lastOwner map[state.Direction][]int // previous phase's strip owners (affinity)
}

// DeviceFault injects a fail-stop device error: the device completes
// AfterKernels kernels, then its next launch comes back with an error.
// The executor marks the device degraded, charges it the wasted launch,
// re-executes the failed kernel — after FlakyRetries further failed
// attempts, each preceded by an exponentially growing virtual backoff —
// on the earliest-finishing healthy device, and excludes the faulty
// device from every later sweep plan.
//
// The fault is evaluated when a sweep is *planned*, not while kernels
// execute: pool execution order is nondeterministic, plan order is not,
// so a faulted run is exactly reproducible and its solution bitwise
// matches the fault-free one (kernels always compute correctly on the
// host; only the virtual clocks and device assignment change). The
// ChaosSchedule generalises this to multi-event schedules.
type DeviceFault struct {
	Device       int     // index into Executor.Devices
	AfterKernels int64   // kernels the device completes before failing
	FlakyRetries int     // extra failed re-execution attempts before success
	RetryBackoff float64 // base virtual backoff per retry (default 100 µs)
}

// TraceEvent is one kernel on a device's virtual timeline.
type TraceEvent struct {
	Phase  int64   // sweep-phase counter
	Device string  // device name
	Strips int     // strips in the kernel
	Zones  int     // zones processed
	Start  float64 // device-local virtual start time (seconds)
	End    float64
}

// NewExecutor builds an executor over the given devices.
func NewExecutor(policy Policy, devices ...*Device) (*Executor, error) {
	if len(devices) == 0 {
		return nil, errors.New("hetero: executor needs at least one device")
	}
	workers := 0
	for _, d := range devices {
		if d == nil {
			return nil, errors.New("hetero: nil device")
		}
		workers += d.Spec.Workers
	}
	ex := &Executor{
		Devices:   devices,
		Policy:    policy,
		pool:      par.NewPool(workers),
		router:    NewRouter(HealthConfig{}, devices...),
		faulted:   make([]bool, len(devices)),
		planned:   make([]int64, len(devices)),
		lastOwner: make(map[state.Direction][]int),
	}
	ex.Stats = &ex.own
	return ex, nil
}

// MustExecutor is NewExecutor for statically known-good device sets;
// it panics on input NewExecutor rejects.
func MustExecutor(policy Policy, devices ...*Device) *Executor {
	ex, err := NewExecutor(policy, devices...)
	if err != nil {
		panic(err)
	}
	return ex
}

// Router returns the executor's health-scored router (shared with every
// solver the executor is attached to). Tune its config through
// SetHealthConfig before stepping.
func (ex *Executor) Router() *Router { return ex.router }

// SetHealthConfig rebuilds the router with the given health model (zero
// fields take defaults). Call before stepping; it resets health state.
func (ex *Executor) SetHealthConfig(cfg HealthConfig) {
	c := ex.router.C
	ex.router = NewRouter(cfg, ex.Devices...)
	ex.router.C = c
}

// Attach hooks the executor into the solver's sweep execution. It must
// be called before stepping; it also routes the solver's generic pool
// work through the executor's pool. One executor may be attached to many
// solvers (the AMR tree attaches it to every leaf), which share its
// devices, clocks, and router.
func (ex *Executor) Attach(s *core.Solver) {
	s.Cfg.SweepExec = func(d state.Direction, nStrips int, sweep func(lo, hi int)) {
		ex.exec(s, d, nStrips, sweep)
	}
	if s.Cfg.Pool == nil {
		s.Cfg.Pool = ex.pool
	}
}

// VirtualTime returns the accumulated virtual makespan in seconds.
func (ex *Executor) VirtualTime() float64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.virtual
}

// ResetClocks zeroes the executor makespan, trace, fault and router
// state and every device clock.
func (ex *Executor) ResetClocks() {
	ex.mu.Lock()
	ex.virtual = 0
	ex.phase = 0
	ex.events = nil
	for i := range ex.faulted {
		ex.faulted[i] = false
		ex.planned[i] = 0
	}
	ex.backoff = 0
	ex.pending = 0
	ex.lastOwner = make(map[state.Direction][]int)
	ex.mu.Unlock()
	for _, d := range ex.Devices {
		d.Reset()
	}
	ex.router.Reset()
	ex.Stats.Reset()
}

// BackoffVirtual returns the virtual seconds spent in retry backoff
// after injected device faults.
func (ex *Executor) BackoffVirtual() float64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.backoff
}

// Degraded reports whether a device has been lost to an injected fault
// and the executor is running on the reduced set.
func (ex *Executor) Degraded() bool { return ex.Stats.Degraded.Load() }

// TraceEvents returns a copy of the recorded kernel timeline (Trace must
// have been enabled), sorted by phase then device-local start time. Safe
// to call while sweeps are executing.
func (ex *Executor) TraceEvents() []TraceEvent {
	ex.mu.Lock()
	out := append([]TraceEvent(nil), ex.events...)
	ex.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// WriteTraceCSV dumps the kernel timeline for external Gantt plotting.
func (ex *Executor) WriteTraceCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "phase,device,strips,zones,start,end"); err != nil {
		return err
	}
	for _, e := range ex.TraceEvents() {
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d,%.9g,%.9g\n",
			e.Phase, e.Device, e.Strips, e.Zones, e.Start, e.End); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// exec implements core.Config.SweepExec for one attached solver.
func (ex *Executor) exec(s *core.Solver, d state.Direction, nStrips int, sweep func(lo, hi int)) {
	if nStrips <= 0 {
		return
	}
	zonesPerStrip := s.StripZones(d)

	ex.mu.Lock()
	phase := ex.phase
	ex.phase++
	ex.mu.Unlock()

	// Chaos first: latency multipliers for this phase, and the devices
	// whose fail-stop death fires now (they still appear in the plan —
	// the planner learns from the failed launch, below).
	newlyDead := ex.applyChaosPhase(phase)

	var plan []assignment
	switch ex.Policy {
	case Static:
		plan = ex.staticPlan(nStrips)
	case Dynamic:
		plan = ex.dynamicPlan(nStrips, zonesPerStrip)
	case Routed:
		plan = ex.routedPlan(d, nStrips, zonesPerStrip)
	}
	plan = ex.applyFault(plan, zonesPerStrip)
	if len(newlyDead) > 0 {
		plan = ex.rerouteDead(plan, zonesPerStrip, newlyDead)
	}
	ex.rememberOwners(d, nStrips, plan)

	// Execute: kernels run for real on the pool; each is charged to its
	// device's virtual clock.
	phaseStart := make([]float64, len(ex.Devices))
	phaseZones := make([]int64, len(ex.Devices))
	phaseKerns := make([]int64, len(ex.Devices))
	for i, dev := range ex.Devices {
		phaseStart[i] = dev.Busy()
		phaseZones[i] = dev.Zones()
		phaseKerns[i] = dev.Kernels()
	}
	var wg sync.WaitGroup
	for _, a := range plan {
		a := a
		wg.Add(1)
		ex.pool.Go(func() {
			defer wg.Done()
			sweep(a.lo, a.hi)
			zones := (a.hi - a.lo) * zonesPerStrip
			dev := ex.Devices[a.dev]
			_, start, end := dev.chargeInterval(zones)
			if ex.Trace {
				ex.mu.Lock()
				ex.events = append(ex.events, TraceEvent{
					Phase: phase, Device: dev.Spec.Name,
					Strips: a.hi - a.lo, Zones: zones,
					Start: start, End: end,
				})
				ex.mu.Unlock()
			}
		})
	}
	wg.Wait()

	// Staged devices pay one streamed transfer of the phase working set.
	phaseBytes := make([]int64, len(ex.Devices))
	for i, dev := range ex.Devices {
		if z := dev.Zones() - phaseZones[i]; z > 0 && dev.Staged() {
			phaseBytes[i] = int64(stripBytes(int(z)))
			dev.ChargeTransfer(int(phaseBytes[i]))
		}
	}

	// Feed the phase's observed latencies into the health model — the
	// router sees effective (chaos-inflated, transfer-inclusive) speed,
	// priced against the launch/transfer-aware nominal cost.
	obs := make([]Obs, 0, len(ex.Devices))
	for i, dev := range ex.Devices {
		if z := dev.Zones() - phaseZones[i]; z > 0 {
			obs = append(obs, Obs{
				Dev: i, Zones: z,
				Busy:  dev.Busy() - phaseStart[i],
				Kerns: dev.Kernels() - phaseKerns[i],
				Bytes: phaseBytes[i],
			})
		}
	}
	ex.router.ObservePhase(obs)

	// Makespan of this phase: the slowest device's accumulated charge,
	// plus any retry backoff an injected device fault cost this phase.
	ex.mu.Lock()
	span := ex.pending
	ex.backoff += ex.pending
	ex.pending = 0
	ex.mu.Unlock()
	for i, dev := range ex.Devices {
		if b := dev.Busy() - phaseStart[i]; b > span {
			span = b
		}
	}
	ex.mu.Lock()
	ex.virtual += span
	ex.mu.Unlock()
}

// applyFault rewrites a sweep plan when the configured device fault
// fires: the triggering kernel and every later kernel of the faulty
// device migrate to the earliest-finishing healthy device (list
// scheduling over within-phase ETAs, as dynamicPlan does). Runs in the
// (serial) sweep-planning path; see DeviceFault for the determinism
// argument.
func (ex *Executor) applyFault(plan []assignment, zonesPerStrip int) []assignment {
	f := ex.Fault
	if f == nil || f.Device < 0 || f.Device >= len(ex.Devices) || ex.isFaulted(f.Device) {
		return plan
	}
	eta := make([]float64, len(ex.Devices))
	out := make([]assignment, 0, len(plan))
	place := func(a assignment) {
		out = append(out, a)
		eta[a.dev] += ex.Devices[a.dev].MarginalCost((a.hi - a.lo) * zonesPerStrip)
	}
	for _, a := range plan {
		if a.dev != f.Device {
			place(a)
			continue
		}
		if !ex.isFaulted(f.Device) {
			ex.mu.Lock()
			if ex.planned[f.Device] < f.AfterKernels {
				ex.planned[f.Device]++
				ex.mu.Unlock()
				place(a)
				continue
			}
			// This launch errors: degrade the device, charge it the
			// wasted launch, and pay exponentially growing backoff for
			// the failed re-execution attempts plus the one that lands.
			ex.faulted[f.Device] = true
			back := f.RetryBackoff
			if back <= 0 {
				back = 1e-4
			}
			for k := 0; k <= f.FlakyRetries; k++ {
				ex.Stats.Retries.Add(1)
				ex.pending += back
				back *= 2
			}
			ex.mu.Unlock()
			ex.Stats.Injected.Add(1)
			ex.Stats.Degraded.Store(true)
			ex.Devices[f.Device].Charge(0)
			ex.router.MarkDead(f.Device)
		}
		best, bestT := -1, math.Inf(1)
		for i, d := range ex.Devices {
			if ex.isFaulted(i) {
				continue
			}
			if t := eta[i] + d.MarginalCost((a.hi-a.lo)*zonesPerStrip); t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 {
			// No healthy device remains: keep the assignment so the sweep
			// still completes (correctness path runs on the host anyway).
			out = append(out, a)
			continue
		}
		ex.router.C.Reroutes.Add(1)
		place(assignment{dev: best, lo: a.lo, hi: a.hi})
	}
	return out
}

// rerouteDead handles chaos fail-stop deaths that fired this phase: each
// dying device is charged its wasted launch and the bounded
// exponential-backoff retry series, then every in-flight kernel still
// planned on it migrates to the earliest-finishing live device
// (earliest-finish list scheduling). Deterministic: runs in the serial
// planning path, exactly like applyFault.
func (ex *Executor) rerouteDead(plan []assignment, zonesPerStrip int, dead []int) []assignment {
	isDead := make([]bool, len(ex.Devices))
	for _, i := range dead {
		if i < 0 || i >= len(ex.Devices) || ex.router.Dead(i) {
			continue
		}
		isDead[i] = true
		ex.router.MarkDead(i)
		ex.Stats.Injected.Add(1)
		ex.Stats.Degraded.Store(true)
		ex.Devices[i].Charge(0) // the launch that came back with the error
		back, retries := ex.Chaos.retryParams()
		ex.mu.Lock()
		for k := 0; k <= retries; k++ {
			ex.Stats.Retries.Add(1)
			ex.pending += back
			back *= 2
		}
		ex.mu.Unlock()
	}

	eta := make([]float64, len(ex.Devices))
	out := make([]assignment, 0, len(plan))
	for _, a := range plan {
		if !isDead[a.dev] {
			out = append(out, a)
			eta[a.dev] += ex.Devices[a.dev].MarginalCost((a.hi - a.lo) * zonesPerStrip)
			continue
		}
		best, bestT := -1, math.Inf(1)
		for i, d := range ex.Devices {
			if isDead[i] || ex.isFaulted(i) || ex.router.Dead(i) {
				continue
			}
			if t := eta[i] + d.MarginalCost((a.hi-a.lo)*zonesPerStrip); t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 {
			out = append(out, a) // everything is dead: degraded host execution
			continue
		}
		ex.router.C.Reroutes.Add(1)
		out = append(out, assignment{dev: best, lo: a.lo, hi: a.hi})
		eta[best] += ex.Devices[best].MarginalCost((a.hi - a.lo) * zonesPerStrip)
	}
	return out
}

// isFaulted reads the legacy fault flag under the executor lock.
func (ex *Executor) isFaulted(i int) bool {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.faulted[i]
}

// healthy returns the schedulable device indices: every device not
// excluded by an injected fault or a chaos death, or all of them if none
// survives (the correctness path must still run the sweep somewhere).
func (ex *Executor) healthy() []int {
	out := make([]int, 0, len(ex.Devices))
	for i := range ex.Devices {
		if !ex.isFaulted(i) && !ex.router.Dead(i) {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		for i := range ex.Devices {
			out = append(out, i)
		}
	}
	return out
}

// staticPlan splits [0, nStrips) proportionally to raw ZoneRate: one
// kernel per healthy device.
func (ex *Executor) staticPlan(nStrips int) []assignment {
	devs := ex.healthy()
	total := 0.0
	for _, i := range devs {
		total += ex.Devices[i].Spec.ZoneRate
	}
	plan := make([]assignment, 0, len(devs))
	lo := 0
	acc := 0.0
	for n, i := range devs {
		acc += ex.Devices[i].Spec.ZoneRate
		hi := int(math.Round(float64(nStrips) * acc / total))
		if n == len(devs)-1 {
			hi = nStrips
		}
		if hi > lo {
			plan = append(plan, assignment{dev: i, lo: lo, hi: hi})
		}
		lo = hi
	}
	return plan
}

// dynamicPlan models a work queue with deterministic list scheduling:
// chunks are assigned, in order, to the device that would finish them
// earliest given everything already assigned in this sweep.
func (ex *Executor) dynamicPlan(nStrips, zonesPerStrip int) []assignment {
	devs := ex.healthy()
	chunk := ex.ChunkStrips
	if chunk <= 0 {
		chunk = nStrips / (8 * len(devs))
		if chunk < 1 {
			chunk = 1
		}
	}
	eta := make([]float64, len(ex.Devices))
	var plan []assignment
	for lo := 0; lo < nStrips; lo += chunk {
		hi := lo + chunk
		if hi > nStrips {
			hi = nStrips
		}
		zones := (hi - lo) * zonesPerStrip
		best, bestT := devs[0], math.Inf(1)
		for _, i := range devs {
			t := eta[i] + ex.Devices[i].MarginalCost(zones)
			if t < bestT {
				best, bestT = i, t
			}
		}
		eta[best] = bestT
		plan = append(plan, assignment{dev: best, lo: lo, hi: hi})
	}
	return plan
}

// routedPlan is the health-scored placement: probing devices get one
// minimal probe kernel, then chunks sized by capacity share are placed
// by minimising ETA + cost + affinity + fragmentation:
//
//   - cost uses the router's *observed* per-zone latency, so placements
//     track effective, not nominal, speed;
//   - affinity discounts a staged device re-owning strips it held last
//     phase (working set already resident) and half-discounts a handoff
//     inside the same interconnect domain;
//   - fragmentation adds one launch latency per kernel a device already
//     holds, biasing toward few large contiguous kernels;
//   - weights embody equivalent-capacity substitution: a drained fast
//     device's share redistributes over the remaining fleet.
//
// When nothing is in rotation the executor demotes to the degraded
// serial path over whatever healthy() returns — the run always finishes.
func (ex *Executor) routedPlan(d state.Direction, nStrips, zonesPerStrip int) []assignment {
	weights, probes := ex.router.planWeights()

	var plan []assignment
	lo := 0
	probeStrips := ex.router.Config().ProbeStrips
	for _, pi := range probes {
		if lo >= nStrips {
			break
		}
		hi := lo + probeStrips
		if hi > nStrips {
			hi = nStrips
		}
		plan = append(plan, assignment{dev: pi, lo: lo, hi: hi})
		lo = hi
	}

	var elig []int
	totalW := 0.0
	for i, w := range weights {
		if w > 0 && !ex.isFaulted(i) {
			elig = append(elig, i)
			totalW += w
		}
	}
	if lo >= nStrips {
		return plan
	}
	if len(elig) == 0 {
		// Last-healthy-device demotion: no routed capacity remains, so
		// the remainder runs degraded on the fallback set.
		ex.Stats.Degraded.Store(true)
		return append(plan, ex.degradedPlan(lo, nStrips, zonesPerStrip)...)
	}

	prev := ex.prevOwners(d, nStrips)
	eta := make([]float64, len(ex.Devices))
	kerns := make([]int, len(ex.Devices))
	perZone := make([]float64, len(ex.Devices))
	for _, i := range elig {
		perZone[i] = ex.router.EffPerZone(i)
	}
	for lo < nStrips {
		best, bestHi := -1, 0
		bestScore, bestCost := math.Inf(1), 0.0
		for _, i := range elig {
			dev := ex.Devices[i]
			chunk := int(float64(nStrips)*weights[i]/totalW/routedKernelsPerDevice + 0.5)
			if chunk < 1 {
				chunk = 1
			}
			hi := lo + chunk
			if hi > nStrips {
				hi = nStrips
			}
			zones := (hi - lo) * zonesPerStrip
			cost := dev.Spec.LaunchLatency + float64(zones)*perZone[i]
			if dev.Staged() {
				xfer := float64(stripBytes(zones)) / dev.Spec.TransferBW
				switch {
				case prev != nil && prev[lo] == i:
					// Working set still resident from the last phase.
				case prev != nil && prev[lo] >= 0 &&
					ex.Devices[prev[lo]].Spec.Domain == dev.Spec.Domain:
					cost += 0.5 * xfer // near handoff inside the domain
				default:
					cost += xfer
				}
			} else if prev != nil && prev[lo] == i {
				cost *= 0.98 // cache-warm affinity nudge
			}
			score := eta[i] + cost + float64(kerns[i])*dev.Spec.LaunchLatency
			if score < bestScore {
				best, bestHi, bestScore, bestCost = i, hi, score, cost
			}
		}
		plan = append(plan, assignment{dev: best, lo: lo, hi: bestHi})
		eta[best] += bestCost
		kerns[best]++
		lo = bestHi
	}
	return plan
}

// degradedPlan covers [lo, nStrips) on the fallback device set with
// earliest-finish list scheduling on nominal rates — the serial-safe
// demotion used when the router has drained everything.
func (ex *Executor) degradedPlan(lo, nStrips, zonesPerStrip int) []assignment {
	devs := ex.healthy()
	chunk := nStrips / (4 * len(devs))
	if chunk < 1 {
		chunk = 1
	}
	eta := make([]float64, len(ex.Devices))
	var plan []assignment
	for ; lo < nStrips; lo += chunk {
		hi := lo + chunk
		if hi > nStrips {
			hi = nStrips
		}
		zones := (hi - lo) * zonesPerStrip
		best, bestT := devs[0], math.Inf(1)
		for _, i := range devs {
			if t := eta[i] + ex.Devices[i].MarginalCost(zones); t < bestT {
				best, bestT = i, t
			}
		}
		eta[best] = bestT
		plan = append(plan, assignment{dev: best, lo: lo, hi: hi})
	}
	return plan
}

// prevOwners returns the previous phase's per-strip owner array for the
// direction, or nil when unknown or the strip count changed (AMR regrid,
// first phase).
func (ex *Executor) prevOwners(d state.Direction, nStrips int) []int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	own := ex.lastOwner[d]
	if len(own) != nStrips {
		return nil
	}
	return own
}

// rememberOwners records the plan's strip ownership for the next phase's
// affinity scoring.
func (ex *Executor) rememberOwners(d state.Direction, nStrips int, plan []assignment) {
	own := make([]int, nStrips)
	for i := range own {
		own[i] = -1
	}
	for _, a := range plan {
		for s := a.lo; s < a.hi && s < nStrips; s++ {
			own[s] = a.dev
		}
	}
	ex.mu.Lock()
	ex.lastOwner[d] = own
	ex.mu.Unlock()
}

// LoadReport summarises per-device work after a run.
type LoadReport struct {
	Name    string
	Kind    Kind
	Zones   int64
	Kernels int64
	Busy    float64 // virtual seconds
	Share   float64 // fraction of total zones
	Faulted bool    // excluded mid-run by an injected fault or chaos death
	State   string  // router drain state
	Score   float64 // rolling health score
}

// Report returns the per-device load breakdown, ordered as the devices
// were given. Safe to call while sweeps are executing.
func (ex *Executor) Report() []LoadReport {
	var total int64
	for _, d := range ex.Devices {
		total += d.Zones()
	}
	health := ex.router.HealthReport()
	out := make([]LoadReport, len(ex.Devices))
	for i, d := range ex.Devices {
		share := 0.0
		if total > 0 {
			share = float64(d.Zones()) / float64(total)
		}
		out[i] = LoadReport{
			Name: d.Spec.Name, Kind: d.Spec.Kind,
			Zones: d.Zones(), Kernels: d.Kernels(),
			Busy: d.Busy(), Share: share,
			Faulted: ex.isFaulted(i) || health[i].State == "dead",
			State:   health[i].State,
			Score:   health[i].Score,
		}
	}
	return out
}

// Imbalance returns max(busy)/mean(busy) − 1 across devices: 0 for perfect
// balance.
func (ex *Executor) Imbalance() float64 {
	if len(ex.Devices) < 2 {
		return 0
	}
	busies := make([]float64, len(ex.Devices))
	sum := 0.0
	for i, d := range ex.Devices {
		busies[i] = d.Busy()
		sum += busies[i]
	}
	mean := sum / float64(len(busies))
	if mean <= 0 {
		return 0
	}
	sort.Float64s(busies)
	return busies[len(busies)-1]/mean - 1
}
