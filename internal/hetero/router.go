package hetero

import (
	"math"
	"sort"
	"sync"

	"rhsc/internal/metrics"
)

// DevState is a device's position in the router's drain state machine.
//
//	Healthy ⇄ Suspect → Drained → Probing → Healthy (undrain)
//	                      ↑          ↓ (probe still slow: hold doubles)
//	                      └──────────┘
//	Drains flapping faster than the health window → Quarantined
//	(exponential hold, then probed like a drain). Fail-stop → Dead.
type DevState int

// Drain state machine states.
const (
	// Healthy devices receive full capacity-weighted work.
	Healthy DevState = iota
	// Suspect devices scored below the suspect threshold: still in
	// rotation, but their weight is scaled by the health score.
	Suspect
	// Drained devices are out of rotation; after a hold they are probed.
	Drained
	// Probing devices receive one minimal probe kernel per plan; a clean
	// observation undrains them, a slow one re-drains with a doubled hold.
	Probing
	// Quarantined devices flapped (drained repeatedly within the flap
	// window) and sit out an exponentially growing hold.
	Quarantined
	// Dead devices hit a fail-stop fault and never return.
	Dead
)

// String implements fmt.Stringer.
func (s DevState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Drained:
		return "drained"
	case Probing:
		return "probing"
	case Quarantined:
		return "quarantined"
	default:
		return "dead"
	}
}

// InRotation reports whether the state receives planned work (probe
// kernels count).
func (s DevState) InRotation() bool {
	return s == Healthy || s == Suspect || s == Probing
}

// HealthConfig tunes the router's health model and drain state machine.
// The zero value selects the documented defaults (DefaultHealthConfig).
type HealthConfig struct {
	// Alpha is the EWMA weight of a new per-zone latency sample (0.4).
	Alpha float64
	// ScoreAlpha is the EWMA weight pulling the health score toward its
	// target after each observation (0.5).
	ScoreAlpha float64
	// SuspectBelow demotes Healthy → Suspect (0.7); RecoverAbove promotes
	// Suspect → Healthy (0.85); DrainBelow drains (0.35).
	SuspectBelow float64
	RecoverAbove float64
	DrainBelow   float64
	// StragglerFactor flags a device whose observed slowdown (per-zone
	// latency over its fingerprint's nominal) exceeds this multiple of
	// the fleet median slowdown (2.0).
	StragglerFactor float64
	// ProbeAfter is the hold, in router ticks, before a drained device is
	// probed (6); each failed probe doubles the device's hold.
	ProbeAfter int64
	// ProbeStrips is the probe kernel size in strips (1).
	ProbeStrips int
	// FlapWindow/FlapLimit: FlapLimit-th drain within FlapWindow ticks
	// quarantines the device (window 32, limit 3).
	FlapWindow int64
	FlapLimit  int
	// QuarantineHold is the base quarantine length in ticks (64); it
	// doubles on every further quarantine of the same device.
	QuarantineHold int64
	// FaultPenalty multiplies the health score on an external fault
	// report (0.25).
	FaultPenalty float64
}

// DefaultHealthConfig returns the documented defaults.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		Alpha:           0.4,
		ScoreAlpha:      0.5,
		SuspectBelow:    0.7,
		RecoverAbove:    0.85,
		DrainBelow:      0.35,
		StragglerFactor: 2.0,
		ProbeAfter:      6,
		ProbeStrips:     1,
		FlapWindow:      32,
		FlapLimit:       3,
		QuarantineHold:  64,
		FaultPenalty:    0.25,
	}
}

// withDefaults fills zero fields.
func (c HealthConfig) withDefaults() HealthConfig {
	d := DefaultHealthConfig()
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	if c.ScoreAlpha <= 0 {
		c.ScoreAlpha = d.ScoreAlpha
	}
	if c.SuspectBelow <= 0 {
		c.SuspectBelow = d.SuspectBelow
	}
	if c.RecoverAbove <= 0 {
		c.RecoverAbove = d.RecoverAbove
	}
	if c.DrainBelow <= 0 {
		c.DrainBelow = d.DrainBelow
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = d.StragglerFactor
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = d.ProbeAfter
	}
	if c.ProbeStrips <= 0 {
		c.ProbeStrips = d.ProbeStrips
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = d.FlapWindow
	}
	if c.FlapLimit <= 0 {
		c.FlapLimit = d.FlapLimit
	}
	if c.QuarantineHold <= 0 {
		c.QuarantineHold = d.QuarantineHold
	}
	if c.FaultPenalty <= 0 {
		c.FaultPenalty = d.FaultPenalty
	}
	return c
}

// devHealth is one device's rolling health record.
type devHealth struct {
	state   DevState
	score   float64 // [0, 1]; 1 = nominal
	slow    float64 // EWMA observed/nominal slowdown ratio (1 = on-spec)
	perZone float64 // EWMA observed virtual seconds per zone
	samples int64
	faults  int64
	drains  int64
	flaps   []int64 // ticks of recent drains (flap detection)
	probeAt int64   // tick at which a drained/quarantined device is probed
	hold    int64   // current hold length (doubles on failed probes)
	qhold   int64   // current quarantine length (doubles per quarantine)

	outstanding int64 // lease mode: reserved cost currently placed
}

// Obs is one phase observation of one device: the zones it processed and
// the virtual busy time they cost (including any transfer and chaos
// inflation — the router sees effective latency, not nominal). Kerns and
// Bytes let the router price in launch latency and staged transfers when
// it judges slowdown, so a tiny probe kernel on a high-launch-latency
// device is not mistaken for a straggler.
type Obs struct {
	Dev   int
	Zones int64
	Busy  float64
	Kerns int64 // kernels launched this phase (0 = ignore launch cost)
	Bytes int64 // bytes staged this phase (0 = ignore transfer cost)
}

// nominalBusy is the virtual time the observation *should* have cost on a
// healthy device: launch latency per kernel, zones at nominal rate, and
// the staged transfer. The observed/nominal ratio is the slowdown signal.
func nominalBusy(d *Device, o Obs) float64 {
	n := float64(o.Kerns)*d.Spec.LaunchLatency + float64(o.Zones)/d.Spec.ZoneRate
	if o.Bytes > 0 {
		n += d.TransferCost(int(o.Bytes))
	}
	return n
}

// Router is the health-scored dynamic device router: it tracks a rolling
// per-device health score fed by observed kernel latencies, fault
// reports, and straggler detection (EWMA slowdown vs the fleet median),
// and runs the drain state machine that takes degraded devices out of
// rotation mid-run and probes them back in. The Executor consults it for
// Routed plans; the serve layer leases job placements from it.
//
// All methods are safe for concurrent use; the observation path is
// deterministic (pure function of the observation sequence).
type Router struct {
	// C counts router lifecycle events; NewRouter points it at private
	// storage, but callers may share one across routers.
	C *metrics.RouterCounters

	cfg  HealthConfig
	mu   sync.Mutex
	devs []*Device
	h    []devHealth
	tick int64
	own  metrics.RouterCounters
}

// NewRouter builds a router over the device set with the given config
// (zero fields take defaults).
func NewRouter(cfg HealthConfig, devices ...*Device) *Router {
	r := &Router{cfg: cfg.withDefaults(), devs: devices}
	r.C = &r.own
	r.h = make([]devHealth, len(devices))
	r.reset()
	return r
}

// Config returns the router's resolved health configuration.
func (r *Router) Config() HealthConfig { return r.cfg }

// reset reinitialises every device to Healthy/nominal. Caller holds no
// lock (construction) or r.mu (Reset).
func (r *Router) reset() {
	for i := range r.h {
		r.h[i] = devHealth{
			state:   Healthy,
			score:   1,
			slow:    1,
			perZone: 1 / r.devs[i].Spec.ZoneRate,
			hold:    r.cfg.ProbeAfter,
			qhold:   r.cfg.QuarantineHold,
		}
	}
	r.tick = 0
}

// Reset returns every device to Healthy with nominal fingerprint rates
// and zeroes the counters (clock-reset paths).
func (r *Router) Reset() {
	r.mu.Lock()
	r.reset()
	r.mu.Unlock()
	r.C.Reset()
}

// Dead reports whether device i is fail-stopped.
func (r *Router) Dead(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h[i].state == Dead
}

// State returns device i's drain state.
func (r *Router) State(i int) DevState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h[i].state
}

// MarkDead fail-stops device i: it leaves rotation permanently.
func (r *Router) MarkDead(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.h[i].state == Dead {
		return
	}
	r.h[i].state = Dead
	r.h[i].score = 0
	r.C.Deaths.Add(1)
}

// Fault feeds an external fault report (a failed lease, a kernel launch
// error) into device i's health: the score takes the fault penalty and
// the state machine advances, possibly draining the device.
func (r *Router) Fault(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &r.h[i]
	if h.state == Dead {
		return
	}
	h.faults++
	h.score *= r.cfg.FaultPenalty
	r.advanceLocked(i)
}

// EffPerZone returns device i's effective per-zone latency: the observed
// EWMA when samples exist, the fingerprint's nominal otherwise. Plans
// built on it adapt to effective — not nominal — speed.
func (r *Router) EffPerZone(i int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h[i].perZone
}

// ObservePhase folds one sweep phase's per-device observations into the
// health model and advances the drain state machine: EWMA latency
// update, straggler detection against the fleet median slowdown, probe
// resolution, and hold expiry. One router tick passes per call.
func (r *Router) ObservePhase(obs []Obs) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tick++

	// Fold samples; remember this phase's instantaneous slowdowns for
	// probe resolution (the EWMA still carries the sick history).
	inst := make(map[int]float64, len(obs))
	for _, o := range obs {
		if o.Dev < 0 || o.Dev >= len(r.h) || o.Zones <= 0 {
			continue
		}
		h := &r.h[o.Dev]
		if h.state == Dead {
			continue
		}
		perZone := o.Busy / float64(o.Zones)
		slow := 1.0
		if nom := nominalBusy(r.devs[o.Dev], o); nom > 0 {
			slow = o.Busy / nom
		}
		if h.samples == 0 {
			h.perZone = perZone
			h.slow = slow
		} else {
			h.perZone += r.cfg.Alpha * (perZone - h.perZone)
			h.slow += r.cfg.Alpha * (slow - h.slow)
		}
		h.samples++
		inst[o.Dev] = slow // instantaneous slowdown vs fingerprint
	}

	med := r.medianSlowdownLocked()

	// Score update and state transitions for observed devices.
	for _, o := range obs {
		if o.Dev < 0 || o.Dev >= len(r.h) || o.Zones <= 0 {
			continue
		}
		h := &r.h[o.Dev]
		if h.state == Dead {
			continue
		}
		slow, ok := inst[o.Dev]
		if !ok {
			continue
		}
		rel := slow / med
		if h.state == Probing {
			// Probe verdict on the instantaneous sample alone.
			if rel < r.cfg.StragglerFactor {
				h.state = Healthy
				h.score = 1
				h.slow = slow // adopt the clean rate
				h.perZone = slow / r.devs[o.Dev].Spec.ZoneRate
				h.hold = r.cfg.ProbeAfter
				r.C.Undrains.Add(1)
			} else {
				h.hold *= 2
				h.state = Drained
				h.probeAt = r.tick + h.hold
			}
			continue
		}
		target := 1.0
		if rel > r.cfg.StragglerFactor {
			target = 1 / rel
		}
		h.score += r.cfg.ScoreAlpha * (target - h.score)
		r.advanceLocked(o.Dev)
	}

	// Hold expiry: drained/quarantined devices come up for a probe.
	for i := range r.h {
		h := &r.h[i]
		if (h.state == Drained || h.state == Quarantined) && r.tick >= h.probeAt {
			h.state = Probing
			r.C.Probes.Add(1)
		}
	}
}

// medianSlowdownLocked returns the fleet-median observed slowdown
// (busy time over nominal expected cost) across live devices with
// samples; 1 when nothing has been observed yet.
func (r *Router) medianSlowdownLocked() float64 {
	var slows []float64
	for i := range r.h {
		h := &r.h[i]
		if h.state == Dead || h.samples == 0 {
			continue
		}
		slows = append(slows, h.slow)
	}
	if len(slows) == 0 {
		return 1
	}
	sort.Float64s(slows)
	m := slows[len(slows)/2]
	if len(slows)%2 == 0 {
		m = 0.5 * (m + slows[len(slows)/2-1])
	}
	if m <= 0 || math.IsNaN(m) {
		return 1
	}
	return m
}

// advanceLocked runs the score-threshold transitions for device i and
// the flap detector. Caller holds r.mu.
func (r *Router) advanceLocked(i int) {
	h := &r.h[i]
	switch h.state {
	case Healthy:
		if h.score < r.cfg.DrainBelow {
			r.drainLocked(i)
		} else if h.score < r.cfg.SuspectBelow {
			h.state = Suspect
		}
	case Suspect:
		if h.score < r.cfg.DrainBelow {
			r.drainLocked(i)
		} else if h.score > r.cfg.RecoverAbove {
			h.state = Healthy
		}
	}
}

// drainLocked takes device i out of rotation and runs the flap detector:
// the FlapLimit-th drain within FlapWindow ticks quarantines it with an
// exponentially growing hold. Caller holds r.mu.
func (r *Router) drainLocked(i int) {
	h := &r.h[i]
	h.drains++
	r.C.Drains.Add(1)

	// Flap detection over the trailing window.
	h.flaps = append(h.flaps, r.tick)
	live := h.flaps[:0]
	for _, t := range h.flaps {
		if r.tick-t < r.cfg.FlapWindow {
			live = append(live, t)
		}
	}
	h.flaps = live
	if len(h.flaps) >= r.cfg.FlapLimit {
		h.state = Quarantined
		h.probeAt = r.tick + h.qhold
		h.qhold *= 2
		h.flaps = h.flaps[:0]
		r.C.Quarantines.Add(1)
		return
	}
	h.state = Drained
	h.probeAt = r.tick + h.hold
}

// planWeights returns the routed planner's inputs: per-device capacity
// weights (observed zone rate × health factor; zero for devices out of
// rotation) and the devices due a probe kernel this plan. The weights
// encode equivalent-capacity substitution — when a fast device drains,
// its share redistributes across the remaining fleet in proportion to
// effective capacity, so two half-speed devices absorb what one
// full-speed device dropped.
func (r *Router) planWeights() (weights []float64, probes []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	weights = make([]float64, len(r.devs))
	for i := range r.h {
		h := &r.h[i]
		switch h.state {
		case Healthy:
			weights[i] = 1 / h.perZone
		case Suspect:
			weights[i] = h.score / h.perZone
		case Probing:
			probes = append(probes, i)
		}
	}
	return weights, probes
}

// --- lease mode (serve placement) ---------------------------------------

// Lease places a job segment of the given cost onto the best in-rotation
// device: the one with the least capacity-normalised backlog
// ((outstanding + cost) / effective rate). It returns (-1, false) when
// every device is out of rotation — the caller falls back to unrouted
// (host) capacity. One router tick passes per call so drained devices
// age toward their probes even between sweeps.
func (r *Router) Lease(cost int64) (int, bool) {
	if cost < 0 {
		cost = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tick++
	for i := range r.h {
		h := &r.h[i]
		if (h.state == Drained || h.state == Quarantined) && r.tick >= h.probeAt {
			h.state = Probing
			r.C.Probes.Add(1)
		}
	}
	best, bestScore := -1, math.Inf(1)
	for i := range r.h {
		h := &r.h[i]
		if !h.state.InRotation() {
			continue
		}
		eff := 1 / h.perZone
		switch h.state {
		case Suspect:
			eff *= h.score
		case Probing:
			// A probing device gets trial work at token weight so one
			// success can undrain it without re-absorbing full load.
			eff *= 0.1
		}
		score := (float64(h.outstanding) + float64(cost)) / eff
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return -1, false
	}
	r.h[best].outstanding += cost
	r.C.Leases.Add(1)
	return best, true
}

// Release returns a leased placement. A failed segment feeds the fault
// penalty into the device's health (possibly draining it); a clean one
// nudges the score back up and undrains a probing device.
func (r *Router) Release(i int, cost int64, failed bool) {
	if cost < 0 {
		cost = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.h) {
		return
	}
	h := &r.h[i]
	h.outstanding -= cost
	if h.outstanding < 0 {
		h.outstanding = 0
	}
	if h.state == Dead {
		return
	}
	if failed {
		r.C.LeaseFaults.Add(1)
		h.faults++
		h.score *= r.cfg.FaultPenalty
		if h.state == Probing {
			h.hold *= 2
			h.state = Drained
			h.probeAt = r.tick + h.hold
			return
		}
		r.advanceLocked(i)
		return
	}
	if h.state == Probing {
		h.state = Healthy
		h.score = 1
		h.hold = r.cfg.ProbeAfter
		r.C.Undrains.Add(1)
		return
	}
	h.score += r.cfg.ScoreAlpha * (1 - h.score) * 0.5
	r.advanceLocked(i)
}

// DeviceName returns device i's spec name.
func (r *Router) DeviceName(i int) string { return r.devs[i].Spec.Name }

// Devices returns the routed device set (shared slice; do not mutate).
func (r *Router) Devices() []*Device { return r.devs }

// EquivalentCapacity returns the fleet's current effective capacity in
// reference-core units (see Fingerprint.ThroughputX): the sum of each
// in-rotation device's observed rate × health factor. Drained capacity
// is excluded — the substitution headroom reports track.
func (r *Router) EquivalentCapacity() float64 {
	weights, _ := r.planWeights()
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return total / refCoreRate
}

// DeviceHealth is one device's health snapshot for reports and JSON.
type DeviceHealth struct {
	Name    string  `json:"name"`
	State   string  `json:"state"`
	Score   float64 `json:"score"`
	ObsMzps float64 `json:"obs_mzps"` // observed effective rate, Mzones/s
	Faults  int64   `json:"faults"`
	Drains  int64   `json:"drains"`
}

// HealthReport snapshots every device's health, ordered as the devices
// were given.
func (r *Router) HealthReport() []DeviceHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DeviceHealth, len(r.devs))
	for i := range r.h {
		h := &r.h[i]
		out[i] = DeviceHealth{
			Name:    r.devs[i].Spec.Name,
			State:   h.state.String(),
			Score:   h.score,
			ObsMzps: 1 / h.perZone / 1e6,
			Faults:  h.faults,
			Drains:  h.drains,
		}
	}
	return out
}
