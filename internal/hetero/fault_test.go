package hetero

import (
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// faultRun advances the 2-D blast a few steps on a CPU+GPU pair and
// returns the executor plus the final density field.
func faultRun(t *testing.T, fault *DeviceFault) (*Executor, []float64) {
	t.Helper()
	p := testprob.Blast2D
	g := p.NewGrid(48, 2)
	s, err := core.New(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex := MustExecutor(Dynamic, MustDevice(SpecHostCPU(4)), MustDevice(SpecK20GPU()))
	ex.ChunkStrips = 4
	ex.Fault = fault
	ex.Attach(s)
	if err := s.InitFromPrim(p.Init); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]float64, g.NCells())
	copy(out, g.U.Comp[state.ID])
	return ex, out
}

// TestFaultDeviceReexecution: an injected device error must re-execute
// the lost kernels on the healthy device, flag degraded mode, and leave
// the solution bitwise identical to the fault-free run — only the
// virtual clocks and the device assignment may change.
func TestFaultDeviceReexecution(t *testing.T) {
	clean, cleanU := faultRun(t, nil)
	faulty, faultyU := faultRun(t, &DeviceFault{Device: 1, AfterKernels: 4, FlakyRetries: 2})

	for i := range cleanU {
		if cleanU[i] != faultyU[i] {
			t.Fatalf("cell %d differs under device fault: %v vs %v", i, cleanU[i], faultyU[i])
		}
	}
	snap := faulty.Stats.Snapshot()
	if snap.Injected != 1 {
		t.Fatalf("Injected = %d, want 1", snap.Injected)
	}
	if snap.Retries != 3 { // 2 flaky attempts + the one that lands
		t.Fatalf("Retries = %d, want 3", snap.Retries)
	}
	if !snap.Degraded || !faulty.Degraded() {
		t.Fatal("degraded mode not flagged")
	}
	if faulty.BackoffVirtual() <= 0 {
		t.Fatal("no backoff charged")
	}

	rep := faulty.Report()
	if !rep[1].Faulted || rep[0].Faulted {
		t.Fatalf("fault flags wrong: %+v", rep)
	}
	// The GPU stops at its 4 completed kernels plus the failed launch;
	// the CPU absorbs everything else.
	if rep[1].Kernels != 5 {
		t.Fatalf("faulted device ran %d kernels, want 5", rep[1].Kernels)
	}
	if rep[0].Zones <= clean.Report()[0].Zones {
		t.Fatal("healthy device did not absorb the faulted device's work")
	}
	if faulty.VirtualTime() <= clean.VirtualTime() {
		t.Fatalf("fault run not slower: %v vs %v", faulty.VirtualTime(), clean.VirtualTime())
	}
}

// TestFaultPlansExcludeDeadDevice: once the fault fired, later static and
// dynamic plans must never schedule the dead device.
func TestFaultPlansExcludeDeadDevice(t *testing.T) {
	for _, pol := range []Policy{Static, Dynamic} {
		ex := MustExecutor(pol, MustDevice(SpecHostCPU(4)), MustDevice(SpecK20GPU()))
		ex.Fault = &DeviceFault{Device: 1, AfterKernels: 0}
		// The triggering sweep: every kernel of device 1 must migrate.
		first := ex.applyFault(ex.staticPlan(64), 48)
		// Subsequent sweeps: the planner itself must skip device 1.
		var next []assignment
		if pol == Static {
			next = ex.staticPlan(64)
		} else {
			next = ex.dynamicPlan(64, 48)
		}
		for _, plan := range [][]assignment{first, next} {
			planCovers(t, plan, 64)
			for _, a := range plan {
				if a.dev == 1 {
					t.Fatalf("%v plan scheduled the dead device: %+v", pol, a)
				}
			}
		}
	}
}

// TestFaultLastDeviceKeepsRunning: with no healthy device left the
// executor must keep the plan (degraded but correct) rather than stall.
func TestFaultLastDeviceKeepsRunning(t *testing.T) {
	p := testprob.Blast2D
	g := p.NewGrid(32, 2)
	s, err := core.New(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex := MustExecutor(Static, MustDevice(SpecHostCPU(2)))
	ex.Fault = &DeviceFault{Device: 0, AfterKernels: 2}
	ex.Attach(s)
	if err := s.InitFromPrim(p.Init); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	if !ex.Degraded() {
		t.Fatal("fault never fired")
	}
	if err := s.CheckState(); err != nil {
		t.Fatalf("state invalid after single-device fault: %v", err)
	}
}

// TestFaultResetClocks: ResetClocks must clear fault state so the
// executor can be reused for a fresh measurement.
func TestFaultResetClocks(t *testing.T) {
	ex, _ := faultRun(t, &DeviceFault{Device: 1, AfterKernels: 1})
	if !ex.Degraded() {
		t.Fatal("fault never fired")
	}
	ex.ResetClocks()
	if ex.Degraded() || ex.BackoffVirtual() != 0 {
		t.Fatal("ResetClocks kept fault state")
	}
	if snap := ex.Stats.Snapshot(); snap.Injected != 0 || snap.Retries != 0 {
		t.Fatalf("counters survived reset: %+v", snap)
	}
	for _, r := range ex.Report() {
		if r.Faulted {
			t.Fatal("device still marked faulted after reset")
		}
	}
}
