package hetero

import (
	"errors"
	"math"
	"sync"
	"testing"

	"rhsc/internal/amr"
	"rhsc/internal/core"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// runBlast steps a 2-D blast problem and returns the final density field.
func runBlast(t *testing.T, n, steps int, attach func(*core.Solver)) []float64 {
	t.Helper()
	p := testprob.Blast2D
	g := p.NewGrid(n, 2)
	s, err := core.New(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if attach != nil {
		attach(s)
	}
	s.InitFromPrim(p.Init)
	for i := 0; i < steps; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]float64, g.NCells())
	copy(out, g.U.Comp[state.ID])
	return out
}

func wantBitwise(t *testing.T, name string, plain, chaotic []float64) {
	t.Helper()
	for i := range plain {
		if plain[i] != chaotic[i] {
			t.Fatalf("%s: cell %d differs: %v vs %v — chaos changed the numerics", name, i, plain[i], chaotic[i])
		}
	}
}

// The headline guarantee: a run with a device dying mid-flight completes
// bitwise identical to a fault-free run, with the in-flight strips
// rerouted onto the survivors.
func TestChaosDeathBitwiseIdentical(t *testing.T) {
	plain := runBlast(t, 48, 4, nil)
	ex := MustExecutor(Routed,
		MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()), MustDevice(SpecXeonPhi()))
	ex.Chaos = &ChaosSchedule{Events: []ChaosEvent{
		{Kind: DeviceDeath, Device: 1, Phase: 3},
	}}
	chaotic := runBlast(t, 48, 4, func(s *core.Solver) { ex.Attach(s) })
	wantBitwise(t, "death", plain, chaotic)

	if !ex.Degraded() {
		t.Error("death did not set degraded mode")
	}
	c := ex.Router().C
	if c.Deaths.Load() != 1 {
		t.Errorf("deaths = %d, want 1", c.Deaths.Load())
	}
	if c.Reroutes.Load() == 0 {
		t.Error("no strips rerouted off the dying device")
	}
	if ex.Stats.Retries.Load() == 0 || ex.BackoffVirtual() <= 0 {
		t.Error("death charged no retry backoff")
	}
	rep := ex.Report()
	if !rep[1].Faulted || rep[1].State != "dead" {
		t.Errorf("dead device report = %+v", rep[1])
	}
	// The dead device must receive no work after the death phase; the
	// survivors carried the rest of the run.
	if rep[0].Zones == 0 || rep[2].Zones == 0 {
		t.Error("survivors idle after reroute")
	}
}

// A latency spike must drain the straggler (observed-vs-median straggler
// detection — the planner only sees nominal specs) and, once the spike
// passes, a probe must bring the device back into rotation. Numerics stay
// bitwise identical throughout.
func TestChaosSpikeDrainsAndUndrains(t *testing.T) {
	const steps = 10
	plain := runBlast(t, 48, steps, nil)
	ex := MustExecutor(Routed,
		MustDevice(SpecHostCPU(2)), MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()))
	ex.Chaos = &ChaosSchedule{Events: []ChaosEvent{
		{Kind: LatencySpike, Device: 2, Phase: 2, Duration: 8, Factor: 12},
	}}
	chaotic := runBlast(t, 48, steps, func(s *core.Solver) { ex.Attach(s) })
	wantBitwise(t, "spike", plain, chaotic)

	c := ex.Router().C
	if c.Drains.Load() == 0 {
		t.Error("spiked straggler never drained")
	}
	if c.Probes.Load() == 0 {
		t.Error("drained device never probed")
	}
	if c.Undrains.Load() == 0 {
		t.Error("device never undrained after the spike passed")
	}
	if st := ex.Router().State(2); !st.InRotation() {
		t.Errorf("post-spike state = %v, want back in rotation", st)
	}
	if ex.Degraded() {
		t.Error("a transient spike must not set degraded mode")
	}
}

// A device flapping mid-run must not corrupt the numerics, and the
// router has to notice the instability (drains with probes cycling).
func TestChaosFlapBitwiseIdentical(t *testing.T) {
	const steps = 8
	plain := runBlast(t, 48, steps, nil)
	ex := MustExecutor(Routed,
		MustDevice(SpecHostCPU(2)), MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()))
	ex.Chaos = &ChaosSchedule{Events: []ChaosEvent{
		{Kind: LatencyFlap, Device: 2, Phase: 1, Factor: 10, Period: 3},
	}}
	chaotic := runBlast(t, 48, steps, func(s *core.Solver) { ex.Attach(s) })
	wantBitwise(t, "flap", plain, chaotic)
	if ex.Router().C.Drains.Load() == 0 {
		t.Error("flapping device never drained")
	}
}

// Last-healthy-device demotion: when chaos kills the whole fleet, the
// executor falls back to the degraded serial path and still finishes with
// bitwise-identical results.
func TestChaosTotalDeathDegradedSerial(t *testing.T) {
	plain := runBlast(t, 32, 3, nil)
	ex := MustExecutor(Routed, MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()))
	ex.Chaos = &ChaosSchedule{Events: []ChaosEvent{
		{Kind: DeviceDeath, Device: 0, Phase: 2},
		{Kind: DeviceDeath, Device: 1, Phase: 2},
	}}
	chaotic := runBlast(t, 32, 3, func(s *core.Solver) { ex.Attach(s) })
	wantBitwise(t, "total death", plain, chaotic)
	if !ex.Degraded() {
		t.Error("total fleet loss did not degrade")
	}
	if d := ex.Router().C.Deaths.Load(); d != 2 {
		t.Errorf("deaths = %d, want 2", d)
	}
	if ex.VirtualTime() <= 0 {
		t.Error("no virtual time accumulated on the degraded path")
	}
}

// Flap detection at the router level: a device that drains FlapLimit
// times inside the flap window is quarantined with an exponential hold,
// instead of being endlessly re-admitted.
func TestRouterFlapQuarantine(t *testing.T) {
	devs := []*Device{
		MustDevice(Spec{Name: "a", ZoneRate: 1e6, Workers: 1}),
		MustDevice(Spec{Name: "b", ZoneRate: 1e6, Workers: 1}),
		MustDevice(Spec{Name: "flappy", ZoneRate: 1e6, Workers: 1}),
	}
	r := NewRouter(HealthConfig{ProbeAfter: 2, FlapWindow: 100, FlapLimit: 3}, devs...)
	perZone := func(slow float64) float64 { return slow / 1e6 }
	obs := func(flapSlow float64) []Obs {
		return []Obs{
			{Dev: 0, Zones: 1000, Busy: 1000 * perZone(1)},
			{Dev: 1, Zones: 1000, Busy: 1000 * perZone(1)},
			{Dev: 2, Zones: 1000, Busy: 1000 * perZone(flapSlow)},
		}
	}
	quarantined := false
	for cycle := 0; cycle < 4 && !quarantined; cycle++ {
		// Degraded phases until the router drains the flapper.
		for i := 0; i < 20 && r.State(2).InRotation(); i++ {
			r.ObservePhase(obs(10))
		}
		st := r.State(2)
		if st == Quarantined {
			quarantined = true
			break
		}
		if st != Drained {
			t.Fatalf("cycle %d: state = %v, want drained", cycle, st)
		}
		// Clean phases: the hold expires, the probe sees a healthy device,
		// and the router re-admits it — the flap.
		for i := 0; i < 20 && r.State(2) != Healthy; i++ {
			r.ObservePhase(obs(1))
			if r.State(2) == Quarantined {
				quarantined = true
				break
			}
		}
	}
	if !quarantined {
		t.Fatalf("flapping device never quarantined (drains=%d)", r.C.Drains.Load())
	}
	if r.C.Quarantines.Load() == 0 {
		t.Error("quarantine counter not incremented")
	}
	if r.State(2).InRotation() {
		t.Error("quarantined device still in rotation")
	}
}

// Routed execution across an AMR regrid: the executor attaches to every
// leaf solver the tree creates (including blocks born mid-run), a device
// dies while the mesh is adapting, and the result matches the plain AMR
// run bitwise at every sample point.
func TestChaosRerouteDuringAMRRegrid(t *testing.T) {
	run := func(attach func(*core.Solver)) *amr.Tree {
		cfg := amr.DefaultConfig(core.DefaultConfig())
		cfg.MaxLevel = 1
		cfg.RegridEvery = 2
		cfg.Attach = attach
		tr, err := amr.NewTree(testprob.Sod, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := tr.Step(tr.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	plain := run(nil)
	ex := MustExecutor(Routed, MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()))
	// Many leaf sweeps per tree step: kill the GPU deep inside the run,
	// well after the first regrids have spawned fresh leaves.
	ex.Chaos = &ChaosSchedule{Events: []ChaosEvent{
		{Kind: DeviceDeath, Device: 1, Phase: 40},
	}}
	chaotic := run(func(s *core.Solver) { ex.Attach(s) })

	if plain.NumLeaves() != chaotic.NumLeaves() {
		t.Fatalf("leaf count differs: %d vs %d — chaos changed refinement", plain.NumLeaves(), chaotic.NumLeaves())
	}
	for i := 0; i < 64; i++ {
		x := (float64(i) + 0.5) / 64
		p, c := plain.SampleAt(x, 0), chaotic.SampleAt(x, 0)
		if p.Rho != c.Rho || p.P != c.P || p.Vx != c.Vx {
			t.Fatalf("x=%v: plain %+v vs chaotic %+v", x, p, c)
		}
	}
	if ex.Router().C.Deaths.Load() != 1 {
		t.Error("device death not recorded during AMR run")
	}
	if !ex.Degraded() {
		t.Error("AMR chaos run not degraded")
	}
}

// Satellite: TraceEvents/Stats/Report read paths must be safe while a
// chaos run is rerouting strips. Run with -race.
func TestConcurrentReadsDuringChaosRun(t *testing.T) {
	ex := MustExecutor(Routed,
		MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()), MustDevice(SpecXeonPhi()))
	ex.Trace = true
	ex.Chaos = &ChaosSchedule{Events: []ChaosEvent{
		{Kind: DeviceDeath, Device: 2, Phase: 5},
		{Kind: LatencySpike, Device: 1, Phase: 2, Duration: 6, Factor: 8},
	}}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: hammer every exported read path mid-run
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = ex.TraceEvents()
			_ = ex.Report()
			_ = ex.VirtualTime()
			_ = ex.BackoffVirtual()
			_ = ex.Imbalance()
			_ = ex.Degraded()
			_ = ex.Stats.Snapshot()
			_ = ex.Router().HealthReport()
			_ = ex.Router().EquivalentCapacity()
		}
	}()
	_ = runBlast(t, 48, 4, func(s *core.Solver) { ex.Attach(s) })
	close(done)
	wg.Wait()

	if len(ex.TraceEvents()) == 0 {
		t.Error("no trace recorded")
	}
	if ex.Router().C.Deaths.Load() != 1 {
		t.Error("chaos death lost")
	}
}

// Legacy-policy chaos: the schedule also guards Static and Dynamic runs.
func TestChaosOnLegacyPolicies(t *testing.T) {
	plain := runBlast(t, 32, 3, nil)
	for _, pol := range []Policy{Static, Dynamic} {
		ex := MustExecutor(pol, MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()))
		ex.Chaos = &ChaosSchedule{Events: []ChaosEvent{
			{Kind: DeviceDeath, Device: 1, Phase: 2},
		}}
		chaotic := runBlast(t, 32, 3, func(s *core.Solver) { ex.Attach(s) })
		wantBitwise(t, pol.String(), plain, chaotic)
		if !ex.Degraded() {
			t.Errorf("%v: not degraded after death", pol)
		}
	}
}

// Routed must match the plain solver bitwise in the fault-free case too,
// and accumulate virtual time like the other policies.
func TestRoutedMatchesPlainSolver(t *testing.T) {
	plain := runBlast(t, 32, 4, nil)
	ex := MustExecutor(Routed, MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()))
	routed := runBlast(t, 32, 4, func(s *core.Solver) { ex.Attach(s) })
	wantBitwise(t, "routed", plain, routed)
	if ex.VirtualTime() <= 0 {
		t.Error("no virtual time")
	}
	if ex.Degraded() {
		t.Error("healthy routed run reported degraded")
	}
}

func TestSpecValidationTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		field string
	}{
		{"zero rate", Spec{Name: "d", Workers: 1}, "ZoneRate"},
		{"negative rate", Spec{Name: "d", ZoneRate: -1, Workers: 1}, "ZoneRate"},
		{"nan rate", Spec{Name: "d", ZoneRate: math.NaN(), Workers: 1}, "ZoneRate"},
		{"inf rate", Spec{Name: "d", ZoneRate: math.Inf(1), Workers: 1}, "ZoneRate"},
		{"negative launch", Spec{Name: "d", ZoneRate: 1e6, LaunchLatency: -1, Workers: 1}, "LaunchLatency"},
		{"negative workers", Spec{Name: "d", ZoneRate: 1e6, Workers: -2}, "Workers"},
		{"staged no bw", Spec{Name: "d", Kind: GPU, ZoneRate: 1e8, Workers: 1}, "TransferBW"},
		{"staged nan bw", Spec{Name: "d", Kind: GPU, ZoneRate: 1e8, TransferBW: math.NaN(), Workers: 1}, "TransferBW"},
		{"negative xfer lat", Spec{Name: "d", Kind: GPU, ZoneRate: 1e8, TransferBW: 1e9, TransferLatency: -1, Workers: 1}, "TransferLatency"},
	}
	for _, tc := range cases {
		_, err := NewDevice(tc.spec)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: error %v not ErrBadSpec", tc.name, err)
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %T not *SpecError", tc.name, err)
			continue
		}
		if se.Field != tc.field {
			t.Errorf("%s: field = %q, want %q", tc.name, se.Field, tc.field)
		}
	}
	// Resident GPUs need no TransferBW.
	if _, err := NewDevice(Spec{Name: "ok", Kind: GPU, ZoneRate: 1e8, Resident: true, Workers: 1}); err != nil {
		t.Errorf("resident GPU rejected: %v", err)
	}
}

func TestParseFleet(t *testing.T) {
	devs, err := ParseFleet("cpu4, k20-staged, phi, k20")
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 4 {
		t.Fatalf("parsed %d devices", len(devs))
	}
	if devs[0].Spec.Kind != CPU || devs[0].Spec.Workers != 4 {
		t.Errorf("cpu4 = %+v", devs[0].Spec)
	}
	if !devs[1].Staged() {
		t.Error("k20-staged not staged")
	}
	if devs[3].Staged() {
		t.Error("k20 resident parsed as staged")
	}
	if _, err := ParseFleet("cpu4, warp9"); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := ParseFleet(""); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestFingerprint(t *testing.T) {
	fp := SpecHostCPU(4).Fingerprint()
	if fp.ThroughputX <= 0 {
		t.Error("non-positive throughput multiplier")
	}
	if fp.Domain != "host" || fp.Staged {
		t.Errorf("cpu fingerprint = %+v", fp)
	}
	sfp := SpecK20GPUStaged().Fingerprint()
	if !sfp.Staged || sfp.LinkBW <= 0 {
		t.Errorf("staged fingerprint = %+v", sfp)
	}
}

// Lease mode: placements go to the least-loaded in-rotation device, a
// failed lease feeds the health model, and clean probing leases undrain.
func TestRouterLeaseRelease(t *testing.T) {
	devs := []*Device{
		MustDevice(Spec{Name: "a", ZoneRate: 4e6, Workers: 1}),
		MustDevice(Spec{Name: "b", ZoneRate: 1e6, Workers: 1}),
	}
	r := NewRouter(HealthConfig{ProbeAfter: 2}, devs...)
	// The 4x faster device should win the first leases.
	i, ok := r.Lease(1000)
	if !ok || i != 0 {
		t.Fatalf("first lease on %d", i)
	}
	r.Release(i, 1000, false)
	// Fail it repeatedly: score collapses and the device drains.
	for k := 0; k < 4 && r.State(0).InRotation(); k++ {
		j, ok := r.Lease(1000)
		if !ok {
			t.Fatal("no capacity")
		}
		r.Release(j, 1000, j == 0)
	}
	if st := r.State(0); st != Drained && st != Probing {
		t.Fatalf("failing device state = %v, want drained/probing", st)
	}
	// Leases now land on b while a is out of rotation.
	j, ok := r.Lease(100)
	if !ok {
		t.Fatal("no capacity with one drained device")
	}
	if j == 0 && r.State(0) != Probing {
		t.Errorf("drained device leased while not probing")
	}
	// Age the router: the drained device comes up for a probe, wins a
	// token-weight trial lease, and a clean release undrains it.
	undrained := false
	for k := 0; k < 100 && !undrained; k++ {
		j, ok := r.Lease(10)
		if !ok {
			t.Fatal("no capacity")
		}
		r.Release(j, 10, false)
		undrained = j == 0 && r.State(0) == Healthy
	}
	if !undrained {
		t.Fatalf("drained device never probed back to healthy (state %v)", r.State(0))
	}
	if r.C.Probes.Load() == 0 || r.C.Undrains.Load() == 0 {
		t.Error("probe/undrain not counted")
	}
}

func TestRouterMarkDeadAndCapacity(t *testing.T) {
	devs := []*Device{
		MustDevice(Spec{Name: "a", ZoneRate: refCoreRate, Workers: 1}),
		MustDevice(Spec{Name: "b", ZoneRate: refCoreRate, Workers: 1}),
	}
	r := NewRouter(HealthConfig{}, devs...)
	if c := r.EquivalentCapacity(); math.Abs(c-2) > 1e-9 {
		t.Errorf("capacity = %v, want 2", c)
	}
	r.MarkDead(0)
	if c := r.EquivalentCapacity(); math.Abs(c-1) > 1e-9 {
		t.Errorf("capacity after death = %v, want 1", c)
	}
	if _, ok := r.Lease(10); !ok {
		t.Error("live device refused lease")
	}
	r.MarkDead(1)
	if _, ok := r.Lease(10); ok {
		t.Error("dead fleet granted lease")
	}
	if r.C.Deaths.Load() != 2 {
		t.Errorf("deaths = %d", r.C.Deaths.Load())
	}
}
