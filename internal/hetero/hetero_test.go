package hetero

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

func TestKernelCostModel(t *testing.T) {
	cpu := MustDevice(SpecHostCPU(4))
	want := cpu.Spec.LaunchLatency + 1000/cpu.Spec.ZoneRate
	if got := cpu.KernelCost(1000); math.Abs(got-want) > 1e-15 {
		t.Errorf("cpu cost = %v, want %v", got, want)
	}
	// CPUs and resident GPUs never pay transfers.
	if cpu.TransferCost(1<<20) != 0 {
		t.Error("cpu charged a transfer")
	}
	if MustDevice(SpecK20GPU()).TransferCost(1<<20) != 0 {
		t.Error("resident gpu charged a transfer")
	}
	staged := MustDevice(SpecK20GPUStaged())
	wantT := 2*staged.Spec.TransferLatency + float64(1<<20)/staged.Spec.TransferBW
	if got := staged.TransferCost(1 << 20); math.Abs(got-wantT) > 1e-15 {
		t.Errorf("staged transfer = %v, want %v", got, wantT)
	}
	// MarginalCost for staged devices adds the bandwidth share only.
	wantM := staged.KernelCost(1000) + float64(stripBytes(1000))/staged.Spec.TransferBW
	if got := staged.MarginalCost(1000); math.Abs(got-wantM) > 1e-15 {
		t.Errorf("marginal = %v, want %v", got, wantM)
	}
}

func TestChargeAccumulates(t *testing.T) {
	d := MustDevice(SpecHostCPU(1))
	c1 := d.Charge(100)
	c2 := d.Charge(200)
	if math.Abs(d.Busy()-(c1+c2)) > 1e-18 {
		t.Errorf("busy = %v, want %v", d.Busy(), c1+c2)
	}
	if d.Zones() != 300 || d.Kernels() != 2 {
		t.Errorf("zones=%d kernels=%d", d.Zones(), d.Kernels())
	}
	d.Reset()
	if d.Busy() != 0 || d.Zones() != 0 || d.Kernels() != 0 {
		t.Error("Reset incomplete")
	}
	g := MustDevice(SpecK20GPUStaged())
	if c := g.ChargeTransfer(6_000_000_000); math.Abs(g.Busy()-c) > 1e-15 || c < 1 {
		t.Errorf("transfer charge = %v busy = %v", c, g.Busy())
	}
}

// The CPU/GPU crossover: per-kernel effective throughput must favour the
// CPU for tiny kernels (launch+transfer dominated) and the GPU for large
// ones — the central claim of the heterogeneous evaluation.
func TestDeviceCrossover(t *testing.T) {
	cpu := MustDevice(SpecHostCPU(4))
	gpu := MustDevice(SpecK20GPU())
	rate := func(d *Device, zones int) float64 {
		return float64(zones) / d.MarginalCost(zones)
	}
	small := 64 // one strip of a 64-cell row
	if rate(gpu, small) >= rate(cpu, small) {
		t.Errorf("GPU should lose on %d zones: %v vs %v", small, rate(gpu, small), rate(cpu, small))
	}
	large := 1 << 21
	if rate(gpu, large) <= rate(cpu, large) {
		t.Errorf("GPU should win on %d zones: %v vs %v", large, rate(gpu, large), rate(cpu, large))
	}
}

func planCovers(t *testing.T, plan []assignment, n int) {
	t.Helper()
	covered := make([]bool, n)
	for _, a := range plan {
		for i := a.lo; i < a.hi; i++ {
			if covered[i] {
				t.Fatalf("strip %d assigned twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("strip %d unassigned", i)
		}
	}
}

func TestStaticPlanProportional(t *testing.T) {
	fast := MustDevice(Spec{Name: "fast", ZoneRate: 9e6, Workers: 1})
	slow := MustDevice(Spec{Name: "slow", ZoneRate: 1e6, Workers: 1})
	ex := MustExecutor(Static, slow, fast)
	plan := ex.staticPlan(100)
	planCovers(t, plan, 100)
	// slow gets ~10, fast ~90.
	for _, a := range plan {
		n := a.hi - a.lo
		if ex.Devices[a.dev].Spec.Name == "slow" && (n < 5 || n > 15) {
			t.Errorf("slow device got %d strips", n)
		}
		if ex.Devices[a.dev].Spec.Name == "fast" && (n < 85 || n > 95) {
			t.Errorf("fast device got %d strips", n)
		}
	}
}

func TestDynamicPlanCoverageAndAdaptivity(t *testing.T) {
	fast := MustDevice(Spec{Name: "fast", ZoneRate: 8e6, Workers: 1})
	slow := MustDevice(Spec{Name: "slow", ZoneRate: 1e6, Workers: 1})
	ex := MustExecutor(Dynamic, fast, slow)
	ex.ChunkStrips = 4
	plan := ex.dynamicPlan(128, 100)
	planCovers(t, plan, 128)
	counts := map[int]int{}
	for _, a := range plan {
		counts[a.dev] += a.hi - a.lo
	}
	if counts[0] <= counts[1] {
		t.Errorf("fast device got %d strips, slow got %d", counts[0], counts[1])
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 4 || ratio > 16 {
		t.Errorf("work ratio %v, want near the 8x speed ratio", ratio)
	}
}

func TestExecutorMatchesPlainSolver(t *testing.T) {
	run := func(attach func(*core.Solver)) []float64 {
		p := testprob.Blast2D
		g := p.NewGrid(32, 2)
		cfg := core.DefaultConfig()
		s, err := core.New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if attach != nil {
			attach(s)
		}
		s.InitFromPrim(p.Init)
		for i := 0; i < 5; i++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float64, g.NCells())
		copy(out, g.U.Comp[state.ID])
		return out
	}
	plain := run(nil)
	for _, pol := range []Policy{Static, Dynamic} {
		ex := MustExecutor(pol, MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()))
		het := run(func(s *core.Solver) { ex.Attach(s) })
		for i := range plain {
			if plain[i] != het[i] {
				t.Fatalf("%v: cell %d differs: %v vs %v", pol, i, plain[i], het[i])
			}
		}
		if ex.VirtualTime() <= 0 {
			t.Errorf("%v: no virtual time accumulated", pol)
		}
	}
}

// Dynamic scheduling must beat a naive static split when device *effective*
// speeds differ from nominal ones (transfer costs skew the GPU down).
func TestDynamicBeatsStaticOnMismatch(t *testing.T) {
	run := func(pol Policy) float64 {
		p := testprob.Blast2D
		g := p.NewGrid(192, 2)
		s, err := core.New(g, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// A staged GPU on a slow link has an effective rate far below its
		// nominal 100 Mz/s, so a static split planned on nominal rates
		// overloads it; the dynamic queue adapts.
		slowLink := SpecK20GPUStaged()
		slowLink.TransferBW = 3e9
		ex := MustExecutor(pol, MustDevice(SpecHostCPU(4)), MustDevice(slowLink))
		ex.Attach(s)
		s.InitFromPrim(p.Init)
		for i := 0; i < 3; i++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		return ex.VirtualTime()
	}
	st := run(Static)
	dy := run(Dynamic)
	if dy >= st {
		t.Errorf("dynamic (%v) not faster than static (%v)", dy, st)
	}
}

// CPU+GPU must beat either device alone in virtual time on a large enough
// problem — the headline heterogeneous speedup.
func TestHeterogeneousSpeedup(t *testing.T) {
	run := func(devs ...*Device) float64 {
		p := testprob.Blast2D
		g := p.NewGrid(128, 2)
		s, err := core.New(g, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ex := MustExecutor(Dynamic, devs...)
		ex.Attach(s)
		s.InitFromPrim(p.Init)
		for i := 0; i < 2; i++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		return ex.VirtualTime()
	}
	cpuOnly := run(MustDevice(SpecHostCPU(8)))
	gpuOnly := run(MustDevice(SpecK20GPU()))
	both := run(MustDevice(SpecHostCPU(8)), MustDevice(SpecK20GPU()))
	if gpuOnly >= cpuOnly {
		t.Errorf("GPU (%v) should beat 8-core CPU (%v) at 128^2", gpuOnly, cpuOnly)
	}
	if both >= gpuOnly {
		t.Errorf("CPU+GPU (%v) should beat GPU alone (%v)", both, gpuOnly)
	}
}

// A three-device mix (CPU + GPU + Phi) must beat any two-device subset in
// virtual time under dynamic scheduling.
func TestThreeDeviceMix(t *testing.T) {
	run := func(specs ...Spec) float64 {
		p := testprob.Blast2D
		g := p.NewGrid(128, 2)
		s, err := core.New(g, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		devs := make([]*Device, len(specs))
		for i, sp := range specs {
			devs[i] = MustDevice(sp)
		}
		ex := MustExecutor(Dynamic, devs...)
		ex.Attach(s)
		s.InitFromPrim(p.Init)
		for i := 0; i < 2; i++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		return ex.VirtualTime()
	}
	two := run(SpecHostCPU(8), SpecK20GPU())
	three := run(SpecHostCPU(8), SpecK20GPU(), SpecXeonPhi())
	if three >= two {
		t.Errorf("CPU+GPU+Phi (%v) not faster than CPU+GPU (%v)", three, two)
	}
}

// Tracing: every kernel must appear exactly once, intervals on one device
// must not overlap, and total traced zones must equal the sweep volume.
func TestExecutionTrace(t *testing.T) {
	p := testprob.Blast2D
	g := p.NewGrid(48, 2)
	s, err := core.New(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex := MustExecutor(Dynamic, MustDevice(SpecHostCPU(2)), MustDevice(SpecK20GPU()))
	ex.Trace = true
	ex.Attach(s)
	s.InitFromPrim(p.Init)
	const steps = 2
	for i := 0; i < steps; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	events := ex.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	// Phases: 2 dims x 2 stages x 2 steps = 8 sweep phases.
	phases := map[int64]bool{}
	totalZones := 0
	lastEnd := map[string]float64{}
	for _, e := range events {
		phases[e.Phase] = true
		totalZones += e.Zones
		if e.End <= e.Start {
			t.Fatalf("empty interval %+v", e)
		}
		if e.Start < lastEnd[e.Device]-1e-15 {
			t.Fatalf("overlapping intervals on %s: %v < %v", e.Device, e.Start, lastEnd[e.Device])
		}
		lastEnd[e.Device] = e.End
	}
	if len(phases) != 8 {
		t.Errorf("phases = %d, want 8", len(phases))
	}
	want := 48 * 48 * 2 * 2 * steps
	if totalZones != want {
		t.Errorf("traced zones = %d, want %d", totalZones, want)
	}
	var buf bytes.Buffer
	if err := ex.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "phase,device") {
		t.Error("trace CSV header missing")
	}
	ex.ResetClocks()
	if len(ex.TraceEvents()) != 0 {
		t.Error("ResetClocks kept trace events")
	}
}

func TestReportAndImbalance(t *testing.T) {
	a := MustDevice(Spec{Name: "a", ZoneRate: 1e6, Workers: 1})
	b := MustDevice(Spec{Name: "b", ZoneRate: 1e6, Workers: 1})
	ex := MustExecutor(Static, a, b)
	a.Charge(1000)
	b.Charge(1000)
	if im := ex.Imbalance(); math.Abs(im) > 1e-6 {
		t.Errorf("balanced imbalance = %v", im)
	}
	b.Charge(2000)
	if im := ex.Imbalance(); im < 0.3 {
		t.Errorf("imbalance = %v, want ~0.5", im)
	}
	rep := ex.Report()
	if len(rep) != 2 || rep[0].Name != "a" {
		t.Fatalf("report = %+v", rep)
	}
	if math.Abs(rep[1].Share-0.75) > 1e-12 {
		t.Errorf("share = %v, want 0.75", rep[1].Share)
	}
}

func TestExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(Static); err == nil {
		t.Error("empty device list accepted")
	}
	if _, err := NewExecutor(Static, nil); err == nil {
		t.Error("nil device accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustExecutor did not panic on invalid input")
		}
	}()
	MustExecutor(Static)
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Spec{Name: "bad"}); err == nil {
		t.Error("zero ZoneRate accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDevice did not panic on invalid spec")
		}
	}()
	MustDevice(Spec{Name: "bad"})
}

func TestPolicyKindStrings(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Error("policy names")
	}
	if CPU.String() != "cpu" || GPU.String() != "gpu" {
		t.Error("kind names")
	}
}
