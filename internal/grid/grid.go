// Package grid provides the uniform structured mesh of the solver: cell
// indexing with ghost layers, coordinate geometry in one to three
// dimensions, and boundary-condition application (outflow, periodic,
// reflecting).
//
// Index layout is x-fastest: idx = (k·TotalY + j)·TotalX + i, so sweeps
// along x stream through memory — the layout the strip-parallel RHS and
// the (simulated) accelerator kernels both assume.
package grid

import (
	"fmt"

	"rhsc/internal/state"
)

// BC identifies a boundary condition on one face of the domain.
type BC int

// Supported boundary conditions.
const (
	// Outflow copies the nearest interior cell into the ghosts
	// (zero-gradient).
	Outflow BC = iota
	// Periodic wraps the domain.
	Periodic
	// Reflect mirrors the interior and flips the normal velocity/momentum
	// component.
	Reflect
	// External marks a face whose ghosts are filled by an external agent
	// (an inter-rank halo exchange); ApplyBCs leaves them untouched.
	External
	// Custom marks a face filled by the grid's CustomFill hook — used for
	// inflow/injection boundaries (e.g. a relativistic jet nozzle).
	Custom
)

// String implements fmt.Stringer.
func (b BC) String() string {
	switch b {
	case Outflow:
		return "outflow"
	case Periodic:
		return "periodic"
	case Reflect:
		return "reflect"
	case External:
		return "external"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("BC(%d)", int(b))
}

// Geometry describes the physical extent and resolution of a grid.
type Geometry struct {
	Nx, Ny, Nz int     // interior cells per dimension (use 1 to deactivate)
	Ng         int     // ghost layers in each active dimension
	X0, X1     float64 // physical bounds
	Y0, Y1     float64
	Z0, Z1     float64

	// Global anchoring for domain decomposition: when GlobalDx > 0, the x
	// coordinates and spacing are computed from the global grid as
	// X(i) = GlobalX0 + (IOffset + i − Ng + 0.5)·GlobalDx, so every rank
	// reproduces the undecomposed grid's cell centres bitwise. X0/X1 then
	// only describe this rank's nominal extent. GlobalDy/JOffset provide
	// the same anchoring along y for two-dimensional decompositions.
	GlobalX0 float64
	GlobalDx float64
	IOffset  int
	GlobalY0 float64
	GlobalDy float64
	JOffset  int
}

// Grid is a uniform mesh with ghost zones holding conserved and primitive
// fields.
type Grid struct {
	Geometry

	// TotalX/Y/Z include ghost layers in active dimensions.
	TotalX, TotalY, TotalZ int
	// Dx/Dy/Dz are the cell sizes (zero-extent inactive dims get 1 so that
	// volume factors stay trivial).
	Dx, Dy, Dz float64

	// U holds the conserved variables, W the primitives.
	U *state.Fields
	W *state.Fields

	// BCs[d][side] is the boundary condition on dimension d (0=x,1=y,2=z),
	// side 0 = lower face, 1 = upper face.
	BCs [3][2]BC

	// CustomFill[d][side], required for faces marked Custom, fills that
	// face's ghost zones of f. The hook receives the grid and the field
	// being updated; compare f against g.W / g.U to know whether to write
	// primitive or conserved values. Called after the standard passes, so
	// it may overwrite edge ghosts its face owns.
	CustomFill [3][2]func(g *Grid, f *state.Fields)

	// dims caches ActiveDims: the active dimensions are fixed at
	// construction, and the per-step hot path asks for them repeatedly.
	dims []state.Direction
}

// New allocates a grid for the geometry. Dimensions with N == 1 are
// inactive: they carry no ghost layers and the solver skips sweeps along
// them.
func New(geom Geometry) *Grid {
	if geom.Nx < 1 || geom.Ny < 1 || geom.Nz < 1 {
		panic(fmt.Sprintf("grid: non-positive cell counts %dx%dx%d", geom.Nx, geom.Ny, geom.Nz))
	}
	if geom.Ng < 1 {
		panic("grid: need at least one ghost layer")
	}
	if geom.X1 <= geom.X0 {
		panic("grid: X bounds not increasing")
	}
	g := &Grid{Geometry: geom}
	g.TotalX = geom.Nx + 2*geom.Ng
	g.TotalY, g.TotalZ = geom.Ny, geom.Nz
	if geom.Ny > 1 {
		g.TotalY += 2 * geom.Ng
	}
	if geom.Nz > 1 {
		g.TotalZ += 2 * geom.Ng
	}
	if geom.GlobalDx > 0 {
		g.Dx = geom.GlobalDx
	} else {
		g.Dx = (geom.X1 - geom.X0) / float64(geom.Nx)
	}
	g.Dy, g.Dz = 1, 1
	if geom.Ny > 1 {
		if geom.Y1 <= geom.Y0 {
			panic("grid: Y bounds not increasing")
		}
		if geom.GlobalDy > 0 {
			g.Dy = geom.GlobalDy
		} else {
			g.Dy = (geom.Y1 - geom.Y0) / float64(geom.Ny)
		}
	}
	if geom.Nz > 1 {
		if geom.Z1 <= geom.Z0 {
			panic("grid: Z bounds not increasing")
		}
		g.Dz = (geom.Z1 - geom.Z0) / float64(geom.Nz)
	}
	n := g.TotalX * g.TotalY * g.TotalZ
	g.U = state.NewFields(n)
	g.W = state.NewFields(n)
	g.dims = []state.Direction{state.X}
	if g.Ny > 1 {
		g.dims = append(g.dims, state.Y)
	}
	if g.Nz > 1 {
		g.dims = append(g.dims, state.Z)
	}
	return g
}

// Dim returns the number of active dimensions.
func (g *Grid) Dim() int {
	d := 1
	if g.Ny > 1 {
		d++
	}
	if g.Nz > 1 {
		d++
	}
	return d
}

// ActiveDims returns the directions the solver must sweep. The slice is
// owned by the grid (allocated once at construction — the step hot path
// calls this per RHS evaluation); callers must not mutate it.
func (g *Grid) ActiveDims() []state.Direction {
	return g.dims
}

// Idx returns the flat index of total-coordinates (i, j, k).
func (g *Grid) Idx(i, j, k int) int {
	return (k*g.TotalY+j)*g.TotalX + i
}

// NCells returns the total cell count including ghosts.
func (g *Grid) NCells() int { return g.TotalX * g.TotalY * g.TotalZ }

// Interior bounds: [IBeg, IEnd) etc. in total coordinates.
func (g *Grid) IBeg() int { return g.Ng }
func (g *Grid) IEnd() int { return g.Ng + g.Nx }
func (g *Grid) JBeg() int {
	if g.Ny > 1 {
		return g.Ng
	}
	return 0
}
func (g *Grid) JEnd() int { return g.JBeg() + g.Ny }
func (g *Grid) KBeg() int {
	if g.Nz > 1 {
		return g.Ng
	}
	return 0
}
func (g *Grid) KEnd() int { return g.KBeg() + g.Nz }

// X returns the x coordinate of the cell center with total index i.
func (g *Grid) X(i int) float64 {
	if g.GlobalDx > 0 {
		return g.GlobalX0 + (float64(g.IOffset+i-g.Ng)+0.5)*g.GlobalDx
	}
	return g.X0 + (float64(i-g.Ng)+0.5)*g.Dx
}

// Y returns the y coordinate of the cell center with total index j.
func (g *Grid) Y(j int) float64 {
	if g.Ny == 1 {
		return 0.5 * (g.Y0 + g.Y1)
	}
	if g.GlobalDy > 0 {
		return g.GlobalY0 + (float64(g.JOffset+j-g.Ng)+0.5)*g.GlobalDy
	}
	return g.Y0 + (float64(j-g.Ng)+0.5)*g.Dy
}

// Z returns the z coordinate of the cell center with total index k.
func (g *Grid) Z(k int) float64 {
	if g.Nz == 1 {
		return 0.5 * (g.Z0 + g.Z1)
	}
	return g.Z0 + (float64(k-g.Ng)+0.5)*g.Dz
}

// CellVolume returns the volume of one cell (only active dimensions
// contribute).
func (g *Grid) CellVolume() float64 {
	v := g.Dx
	if g.Ny > 1 {
		v *= g.Dy
	}
	if g.Nz > 1 {
		v *= g.Dz
	}
	return v
}

// SetBC sets the boundary condition on both faces of dimension d.
func (g *Grid) SetBC(d state.Direction, bc BC) {
	g.BCs[d][0] = bc
	g.BCs[d][1] = bc
}

// SetAllBCs sets every face of every active dimension.
func (g *Grid) SetAllBCs(bc BC) {
	for _, d := range g.ActiveDims() {
		g.SetBC(d, bc)
	}
}

// ForEachInterior calls fn for every interior cell with its flat index and
// total coordinates.
func (g *Grid) ForEachInterior(fn func(idx, i, j, k int)) {
	for k := g.KBeg(); k < g.KEnd(); k++ {
		for j := g.JBeg(); j < g.JEnd(); j++ {
			base := (k*g.TotalY + j) * g.TotalX
			for i := g.IBeg(); i < g.IEnd(); i++ {
				fn(base+i, i, j, k)
			}
		}
	}
}

// ApplyBCs fills the ghost zones of f according to the grid's boundary
// conditions. The vector components (indices 1..3 of both conserved and
// primitive fields) have their normal component negated under Reflect.
// Dimensions are processed x, then y, then z so that edge and corner
// ghosts are filled consistently.
func (g *Grid) ApplyBCs(f *state.Fields) {
	if f.N != g.NCells() {
		panic("grid: ApplyBCs field size mismatch")
	}
	g.applyBCx(f)
	if g.Ny > 1 {
		g.applyBCy(f)
	}
	if g.Nz > 1 {
		g.applyBCz(f)
	}
	for d := 0; d < 3; d++ {
		for side := 0; side < 2; side++ {
			if g.BCs[d][side] == Custom {
				fill := g.CustomFill[d][side]
				if fill == nil {
					panic(fmt.Sprintf("grid: face %d/%d marked Custom without CustomFill", d, side))
				}
				fill(g, f)
			}
		}
	}
}

func (g *Grid) applyBCx(f *state.Fields) {
	ng, nx := g.Ng, g.Nx
	for c := 0; c < state.NComp; c++ {
		flip := 1.0
		for k := 0; k < g.TotalZ; k++ {
			for j := 0; j < g.TotalY; j++ {
				row := (k*g.TotalY + j) * g.TotalX
				data := f.Comp[c][row : row+g.TotalX]
				// Lower face.
				switch g.BCs[0][0] {
				case Outflow:
					for i := 0; i < ng; i++ {
						data[i] = data[ng]
					}
				case Periodic:
					for i := 0; i < ng; i++ {
						data[i] = data[nx+i]
					}
				case Reflect:
					flip = 1.0
					if c == int(state.IVx) {
						flip = -1.0
					}
					for i := 0; i < ng; i++ {
						data[i] = flip * data[2*ng-1-i]
					}
				}
				// Upper face.
				switch g.BCs[0][1] {
				case Outflow:
					for i := 0; i < ng; i++ {
						data[ng+nx+i] = data[ng+nx-1]
					}
				case Periodic:
					for i := 0; i < ng; i++ {
						data[ng+nx+i] = data[ng+i]
					}
				case Reflect:
					flip = 1.0
					if c == int(state.IVx) {
						flip = -1.0
					}
					for i := 0; i < ng; i++ {
						data[ng+nx+i] = flip * data[ng+nx-1-i]
					}
				}
			}
		}
	}
}

func (g *Grid) applyBCy(f *state.Fields) {
	ng, ny := g.Ng, g.Ny
	for c := 0; c < state.NComp; c++ {
		flip := 1.0
		if c == int(state.IVy) {
			flip = -1.0
		}
		for k := 0; k < g.TotalZ; k++ {
			for i := 0; i < g.TotalX; i++ {
				at := func(j int) int { return (k*g.TotalY+j)*g.TotalX + i }
				switch g.BCs[1][0] {
				case Outflow:
					for j := 0; j < ng; j++ {
						f.Comp[c][at(j)] = f.Comp[c][at(ng)]
					}
				case Periodic:
					for j := 0; j < ng; j++ {
						f.Comp[c][at(j)] = f.Comp[c][at(ny+j)]
					}
				case Reflect:
					for j := 0; j < ng; j++ {
						v := f.Comp[c][at(2*ng-1-j)]
						if flip < 0 {
							v = -v
						}
						f.Comp[c][at(j)] = v
					}
				}
				switch g.BCs[1][1] {
				case Outflow:
					for j := 0; j < ng; j++ {
						f.Comp[c][at(ng+ny+j)] = f.Comp[c][at(ng+ny-1)]
					}
				case Periodic:
					for j := 0; j < ng; j++ {
						f.Comp[c][at(ng+ny+j)] = f.Comp[c][at(ng+j)]
					}
				case Reflect:
					for j := 0; j < ng; j++ {
						v := f.Comp[c][at(ng+ny-1-j)]
						if flip < 0 {
							v = -v
						}
						f.Comp[c][at(ng+ny+j)] = v
					}
				}
			}
		}
	}
}

func (g *Grid) applyBCz(f *state.Fields) {
	ng, nz := g.Ng, g.Nz
	for c := 0; c < state.NComp; c++ {
		flip := 1.0
		if c == int(state.IVz) {
			flip = -1.0
		}
		for j := 0; j < g.TotalY; j++ {
			for i := 0; i < g.TotalX; i++ {
				at := func(k int) int { return (k*g.TotalY+j)*g.TotalX + i }
				switch g.BCs[2][0] {
				case Outflow:
					for k := 0; k < ng; k++ {
						f.Comp[c][at(k)] = f.Comp[c][at(ng)]
					}
				case Periodic:
					for k := 0; k < ng; k++ {
						f.Comp[c][at(k)] = f.Comp[c][at(nz+k)]
					}
				case Reflect:
					for k := 0; k < ng; k++ {
						v := f.Comp[c][at(2*ng-1-k)]
						if flip < 0 {
							v = -v
						}
						f.Comp[c][at(k)] = v
					}
				}
				switch g.BCs[2][1] {
				case Outflow:
					for k := 0; k < ng; k++ {
						f.Comp[c][at(ng+nz+k)] = f.Comp[c][at(ng+nz-1)]
					}
				case Periodic:
					for k := 0; k < ng; k++ {
						f.Comp[c][at(ng+nz+k)] = f.Comp[c][at(ng+k)]
					}
				case Reflect:
					for k := 0; k < ng; k++ {
						v := f.Comp[c][at(ng+nz-1-k)]
						if flip < 0 {
							v = -v
						}
						f.Comp[c][at(ng+nz+k)] = v
					}
				}
			}
		}
	}
}

// kahanSum accumulates with Neumaier compensation so conservation
// diagnostics on large grids are not polluted by summation roundoff.
type kahanSum struct{ s, c float64 }

func (k *kahanSum) add(x float64) {
	t := k.s + x
	if absK(k.s) >= absK(x) {
		k.c += (k.s - t) + x
	} else {
		k.c += (x - t) + k.s
	}
	k.s = t
}

func (k *kahanSum) value() float64 { return k.s + k.c }

func absK(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TotalMass returns Σ D·dV over the interior — the conserved baryon mass,
// used by the conservation tests and diagnostics (compensated summation).
func (g *Grid) TotalMass() float64 {
	vol := g.CellVolume()
	var sum kahanSum
	g.ForEachInterior(func(idx, _, _, _ int) {
		sum.add(g.U.Comp[state.ID][idx])
	})
	return sum.value() * vol
}

// TotalEnergy returns Σ (τ + D)·dV over the interior.
func (g *Grid) TotalEnergy() float64 {
	vol := g.CellVolume()
	var sum kahanSum
	g.ForEachInterior(func(idx, _, _, _ int) {
		sum.add(g.U.Comp[state.ITau][idx] + g.U.Comp[state.ID][idx])
	})
	return sum.value() * vol
}

// TotalMomentum returns the conserved momentum components integrated over
// the interior.
func (g *Grid) TotalMomentum() (sx, sy, sz float64) {
	vol := g.CellVolume()
	g.ForEachInterior(func(idx, _, _, _ int) {
		sx += g.U.Comp[state.ISx][idx]
		sy += g.U.Comp[state.ISy][idx]
		sz += g.U.Comp[state.ISz][idx]
	})
	return sx * vol, sy * vol, sz * vol
}
