package grid

import (
	"math"
	"testing"

	"rhsc/internal/state"
)

func mk1D(n, ng int) *Grid {
	return New(Geometry{Nx: n, Ny: 1, Nz: 1, Ng: ng, X0: 0, X1: 1})
}

func mk2D(nx, ny, ng int) *Grid {
	return New(Geometry{Nx: nx, Ny: ny, Nz: 1, Ng: ng, X0: 0, X1: 1, Y0: 0, Y1: 2})
}

func mk3D(n, ng int) *Grid {
	return New(Geometry{Nx: n, Ny: n, Nz: n, Ng: ng, X0: 0, X1: 1, Y0: 0, Y1: 1, Z0: 0, Z1: 1})
}

func TestDimsAndTotals(t *testing.T) {
	g1 := mk1D(16, 2)
	if g1.Dim() != 1 || g1.TotalX != 20 || g1.TotalY != 1 || g1.TotalZ != 1 {
		t.Errorf("1D: dim=%d totals=%d,%d,%d", g1.Dim(), g1.TotalX, g1.TotalY, g1.TotalZ)
	}
	g2 := mk2D(8, 4, 3)
	if g2.Dim() != 2 || g2.TotalX != 14 || g2.TotalY != 10 || g2.TotalZ != 1 {
		t.Errorf("2D: dim=%d totals=%d,%d,%d", g2.Dim(), g2.TotalX, g2.TotalY, g2.TotalZ)
	}
	g3 := mk3D(4, 2)
	if g3.Dim() != 3 || g3.TotalZ != 8 {
		t.Errorf("3D: dim=%d totalZ=%d", g3.Dim(), g3.TotalZ)
	}
}

func TestActiveDims(t *testing.T) {
	if d := mk1D(8, 2).ActiveDims(); len(d) != 1 || d[0] != state.X {
		t.Errorf("1D active dims %v", d)
	}
	if d := mk2D(8, 8, 2).ActiveDims(); len(d) != 2 || d[1] != state.Y {
		t.Errorf("2D active dims %v", d)
	}
	if d := mk3D(4, 2).ActiveDims(); len(d) != 3 {
		t.Errorf("3D active dims %v", d)
	}
}

func TestCoordinates(t *testing.T) {
	g := mk1D(4, 2) // dx = 0.25, first interior cell center at 0.125
	if math.Abs(g.Dx-0.25) > 1e-15 {
		t.Errorf("dx = %v", g.Dx)
	}
	if x := g.X(g.IBeg()); math.Abs(x-0.125) > 1e-15 {
		t.Errorf("X(first) = %v, want 0.125", x)
	}
	if x := g.X(g.IEnd() - 1); math.Abs(x-0.875) > 1e-15 {
		t.Errorf("X(last) = %v, want 0.875", x)
	}
	// Ghost coordinates extend beyond the domain.
	if x := g.X(0); math.Abs(x-(-0.375)) > 1e-15 {
		t.Errorf("X(ghost) = %v, want -0.375", x)
	}
	g2 := mk2D(4, 8, 2) // dy = 0.25
	if math.Abs(g2.Dy-0.25) > 1e-15 {
		t.Errorf("dy = %v", g2.Dy)
	}
	if y := g2.Y(g2.JBeg()); math.Abs(y-0.125) > 1e-15 {
		t.Errorf("Y(first) = %v", y)
	}
}

func TestCellVolume(t *testing.T) {
	if v := mk1D(4, 2).CellVolume(); math.Abs(v-0.25) > 1e-15 {
		t.Errorf("1D vol = %v", v)
	}
	if v := mk2D(4, 8, 2).CellVolume(); math.Abs(v-0.25*0.25) > 1e-15 {
		t.Errorf("2D vol = %v", v)
	}
}

func TestForEachInteriorCount(t *testing.T) {
	g := mk2D(8, 4, 2)
	count := 0
	seen := map[int]bool{}
	g.ForEachInterior(func(idx, i, j, k int) {
		count++
		if seen[idx] {
			t.Fatalf("index %d visited twice", idx)
		}
		seen[idx] = true
		if i < g.IBeg() || i >= g.IEnd() || j < g.JBeg() || j >= g.JEnd() {
			t.Fatalf("out-of-interior visit (%d,%d,%d)", i, j, k)
		}
	})
	if count != 32 {
		t.Errorf("visited %d cells, want 32", count)
	}
}

func fillRamp(g *Grid, f *state.Fields) {
	// Interior value = total i coordinate, to track copies exactly.
	g.ForEachInterior(func(idx, i, j, k int) {
		for c := 0; c < state.NComp; c++ {
			f.Comp[c][idx] = float64(i + 10*j + 100*k)
		}
	})
}

func TestOutflowBCx(t *testing.T) {
	g := mk1D(8, 2)
	g.SetAllBCs(Outflow)
	fillRamp(g, g.U)
	g.ApplyBCs(g.U)
	for i := 0; i < 2; i++ {
		if got := g.U.Comp[0][i]; got != float64(g.IBeg()) {
			t.Errorf("lower ghost %d = %v", i, got)
		}
		if got := g.U.Comp[0][g.IEnd()+i]; got != float64(g.IEnd()-1) {
			t.Errorf("upper ghost %d = %v", i, got)
		}
	}
}

func TestPeriodicBCx(t *testing.T) {
	g := mk1D(8, 2)
	g.SetAllBCs(Periodic)
	fillRamp(g, g.U)
	g.ApplyBCs(g.U)
	// Ghost i=0 maps to interior i=8 (= Nx + 0), ghost i=1 to i=9.
	if g.U.Comp[0][0] != 8 || g.U.Comp[0][1] != 9 {
		t.Errorf("lower ghosts = %v, %v", g.U.Comp[0][0], g.U.Comp[0][1])
	}
	// Upper ghosts map back to the first interior cells (i=2,3).
	if g.U.Comp[0][10] != 2 || g.U.Comp[0][11] != 3 {
		t.Errorf("upper ghosts = %v, %v", g.U.Comp[0][10], g.U.Comp[0][11])
	}
}

func TestReflectBCxFlipsNormalComponent(t *testing.T) {
	g := mk1D(8, 2)
	g.SetAllBCs(Reflect)
	fillRamp(g, g.U)
	g.ApplyBCs(g.U)
	// Ghost i=1 mirrors interior i=2; ghost i=0 mirrors i=3.
	if g.U.Comp[state.ID][1] != 2 || g.U.Comp[state.ID][0] != 3 {
		t.Errorf("density ghosts = %v, %v", g.U.Comp[state.ID][1], g.U.Comp[state.ID][0])
	}
	// The x momentum/velocity component flips sign.
	if g.U.Comp[state.ISx][1] != -2 || g.U.Comp[state.ISx][0] != -3 {
		t.Errorf("Sx ghosts = %v, %v", g.U.Comp[state.ISx][1], g.U.Comp[state.ISx][0])
	}
	// Transverse components do not flip.
	if g.U.Comp[state.ISy][1] != 2 {
		t.Errorf("Sy ghost = %v", g.U.Comp[state.ISy][1])
	}
}

func TestPeriodicBCy2D(t *testing.T) {
	g := mk2D(4, 6, 2)
	g.SetAllBCs(Periodic)
	fillRamp(g, g.U)
	g.ApplyBCs(g.U)
	i := g.IBeg()
	// Ghost j=0 maps to j=6, ghost j=1 to j=7.
	if got, want := g.U.Comp[0][g.Idx(i, 0, 0)], g.U.Comp[0][g.Idx(i, 6, 0)]; got != want {
		t.Errorf("y ghost = %v, want %v", got, want)
	}
	if got, want := g.U.Comp[0][g.Idx(i, g.JEnd(), 0)], g.U.Comp[0][g.Idx(i, g.JBeg(), 0)]; got != want {
		t.Errorf("upper y ghost = %v, want %v", got, want)
	}
}

func TestReflectBCyFlipsOnlyVy(t *testing.T) {
	g := mk2D(4, 6, 2)
	g.SetAllBCs(Reflect)
	fillRamp(g, g.U)
	g.ApplyBCs(g.U)
	i := g.IBeg()
	mirror := g.U.Comp[state.ID][g.Idx(i, g.JBeg(), 0)]
	if got := g.U.Comp[state.ID][g.Idx(i, g.JBeg()-1, 0)]; got != mirror {
		t.Errorf("density ghost %v, want %v", got, mirror)
	}
	if got := g.U.Comp[state.ISy][g.Idx(i, g.JBeg()-1, 0)]; got != -mirror {
		t.Errorf("Sy ghost %v, want %v", got, -mirror)
	}
	if got := g.U.Comp[state.ISx][g.Idx(i, g.JBeg()-1, 0)]; got != mirror {
		t.Errorf("Sx ghost %v, want %v (no flip)", got, mirror)
	}
}

func TestPeriodicCorners2D(t *testing.T) {
	// Corner ghosts must be filled after both sweeps: value at (ghost,
	// ghost) equals the diagonally-opposite interior cell under
	// double-periodicity.
	g := mk2D(6, 6, 2)
	g.SetAllBCs(Periodic)
	fillRamp(g, g.U)
	g.ApplyBCs(g.U)
	got := g.U.Comp[0][g.Idx(0, 0, 0)]
	want := g.U.Comp[0][g.Idx(6, 6, 0)] // i=0→6, j=0→6
	if got != want {
		t.Errorf("corner ghost = %v, want %v", got, want)
	}
}

func TestBC3DZ(t *testing.T) {
	g := mk3D(4, 2)
	g.SetAllBCs(Periodic)
	fillRamp(g, g.U)
	g.ApplyBCs(g.U)
	i, j := g.IBeg(), g.JBeg()
	if got, want := g.U.Comp[0][g.Idx(i, j, 0)], g.U.Comp[0][g.Idx(i, j, 4)]; got != want {
		t.Errorf("z ghost = %v, want %v", got, want)
	}
	g2 := mk3D(4, 2)
	g2.SetAllBCs(Reflect)
	fillRamp(g2, g2.U)
	g2.ApplyBCs(g2.U)
	mirror := g2.U.Comp[state.ISz][g2.Idx(i, j, g2.KBeg())]
	if got := g2.U.Comp[state.ISz][g2.Idx(i, j, g2.KBeg()-1)]; got != -mirror {
		t.Errorf("Sz ghost %v, want %v", got, -mirror)
	}
}

func TestMixedBCs(t *testing.T) {
	g := mk1D(8, 2)
	g.BCs[0][0] = Reflect
	g.BCs[0][1] = Outflow
	fillRamp(g, g.U)
	g.ApplyBCs(g.U)
	if g.U.Comp[state.ISx][1] != -2 {
		t.Errorf("lower reflect ghost = %v", g.U.Comp[state.ISx][1])
	}
	if g.U.Comp[state.ISx][g.IEnd()] != float64(g.IEnd()-1) {
		t.Errorf("upper outflow ghost = %v", g.U.Comp[state.ISx][g.IEnd()])
	}
}

func TestConservedIntegrals(t *testing.T) {
	g := mk1D(10, 2)
	g.ForEachInterior(func(idx, _, _, _ int) {
		g.U.Comp[state.ID][idx] = 2
		g.U.Comp[state.ITau][idx] = 3
		g.U.Comp[state.ISx][idx] = 0.5
	})
	if m := g.TotalMass(); math.Abs(m-2) > 1e-14 { // 2 * (10 cells * 0.1)
		t.Errorf("mass = %v, want 2", m)
	}
	if e := g.TotalEnergy(); math.Abs(e-5) > 1e-14 {
		t.Errorf("energy = %v, want 5", e)
	}
	sx, sy, _ := g.TotalMomentum()
	if math.Abs(sx-0.5) > 1e-14 || sy != 0 {
		t.Errorf("momentum = %v, %v", sx, sy)
	}
}

// Compensated summation: totals over data spanning many magnitudes must
// beat naive accumulation.
func TestKahanTotals(t *testing.T) {
	g := mk1D(1000, 2)
	// Alternate huge and tiny values whose exact sum is known.
	naive := 0.0
	want := 0.0
	i := 0
	g.ForEachInterior(func(idx, _, _, _ int) {
		v := 1e-8
		if i%2 == 0 {
			v = 1e8
		}
		g.U.Comp[state.ID][idx] = v
		naive += v
		want += v
		i++
	})
	_ = naive
	exact := (500*1e8 + 500*1e-8) * g.CellVolume()
	if got := g.TotalMass(); math.Abs(got-exact)/exact > 1e-15 {
		t.Errorf("TotalMass = %.17g, want %.17g", got, exact)
	}
}

func TestNewPanics(t *testing.T) {
	cases := []Geometry{
		{Nx: 0, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1},
		{Nx: 4, Ny: 1, Nz: 1, Ng: 0, X0: 0, X1: 1},
		{Nx: 4, Ny: 1, Nz: 1, Ng: 2, X0: 1, X1: 0},
		{Nx: 4, Ny: 4, Nz: 1, Ng: 2, X0: 0, X1: 1, Y0: 1, Y1: 1},
	}
	for _, geom := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %+v accepted", geom)
				}
			}()
			New(geom)
		}()
	}
}

func TestApplyBCsSizeMismatch(t *testing.T) {
	g := mk1D(8, 2)
	defer func() {
		if recover() == nil {
			t.Error("size mismatch not caught")
		}
	}()
	g.ApplyBCs(state.NewFields(3))
}

func TestIdxLayoutXFastest(t *testing.T) {
	g := mk2D(4, 4, 2)
	if g.Idx(1, 0, 0) != g.Idx(0, 0, 0)+1 {
		t.Error("x not fastest")
	}
	if g.Idx(0, 1, 0) != g.Idx(0, 0, 0)+g.TotalX {
		t.Error("y stride wrong")
	}
}
