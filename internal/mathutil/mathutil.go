// Package mathutil provides small numerical helpers shared across the
// solver: slope limiters, safe floating-point guards, norms, and a
// bracketing root finder used as the fallback path of the
// conservative-to-primitive solver.
package mathutil

import (
	"errors"
	"math"
)

// Tiny is the smallest magnitude treated as nonzero by the limiters and by
// denominator guards. It is far above the subnormal range so that dividing
// by a guarded value can never overflow.
const Tiny = 1e-300

// Sign returns -1, 0 or +1 according to the sign of x.
func Sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Minmod returns the minmod of two slopes: zero when they differ in sign,
// otherwise the one of smaller magnitude. It is the classical TVD limiter.
func Minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// Minmod3 returns the three-argument minmod: zero unless all arguments share
// a sign, otherwise the smallest magnitude with that sign.
func Minmod3(a, b, c float64) float64 {
	sa, sb, sc := Sign(a), Sign(b), Sign(c)
	if sa != sb || sb != sc || sa == 0 {
		return 0
	}
	return sa * math.Min(math.Abs(a), math.Min(math.Abs(b), math.Abs(c)))
}

// MC returns the monotonized-central limiter of the left and right one-sided
// slopes: minmod(2a, 2b, (a+b)/2).
func MC(a, b float64) float64 {
	return Minmod3(2*a, 2*b, 0.5*(a+b))
}

// VanLeer returns the harmonic-mean (van Leer) limiter of two slopes. The
// harmonic form 2/(1/a + 1/b) is used so the limiter cannot overflow for
// large slope magnitudes.
func VanLeer(a, b float64) float64 {
	if a == 0 || b == 0 || (a > 0) != (b > 0) {
		return 0
	}
	return 2 / (1/a + 1/b)
}

// Max3 returns the maximum of three values.
func Max3(a, b, c float64) float64 {
	return math.Max(a, math.Max(b, c))
}

// Min3 returns the minimum of three values.
func Min3(a, b, c float64) float64 {
	return math.Min(a, math.Min(b, c))
}

// L1Norm returns the discrete L1 norm Σ|a_i − b_i| · w. The weight w is the
// cell volume (Δx in 1-D), so the result approximates ∫|a − b| dV.
// It panics if the slices differ in length.
func L1Norm(a, b []float64, w float64) float64 {
	if len(a) != len(b) {
		panic("mathutil: L1Norm slice length mismatch")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s * w
}

// L2Norm returns the discrete L2 norm sqrt(Σ(a_i − b_i)² · w).
func L2Norm(a, b []float64, w float64) float64 {
	if len(a) != len(b) {
		panic("mathutil: L2Norm slice length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s * w)
}

// LInfNorm returns max|a_i − b_i|.
func LInfNorm(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathutil: LInfNorm slice length mismatch")
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// ConvergenceOrder estimates the observed order of accuracy from errors at
// two resolutions: log(eCoarse/eFine) / log(hCoarse/hFine).
func ConvergenceOrder(eCoarse, eFine, hCoarse, hFine float64) float64 {
	if eFine <= 0 || eCoarse <= 0 || hFine <= 0 || hCoarse <= 0 {
		return math.NaN()
	}
	return math.Log(eCoarse/eFine) / math.Log(hCoarse/hFine)
}

// ErrNoBracket is returned by Brent and Bisect when f(a) and f(b) do not
// straddle zero.
var ErrNoBracket = errors.New("mathutil: root not bracketed")

// ErrMaxIter is returned when a root finder exhausts its iteration budget
// before reaching the requested tolerance.
var ErrMaxIter = errors.New("mathutil: maximum iterations exceeded")

// Bisect finds a root of f in [a, b] by bisection to absolute tolerance tol.
// f(a) and f(b) must differ in sign.
func Bisect(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	for i := 0; i < maxIter; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || 0.5*(b-a) < tol {
			return m, nil
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	_ = fb
	return 0.5 * (a + b), ErrMaxIter
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection safeguards). It converges superlinearly for
// smooth f and never leaves the bracket.
func Brent(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < maxIter; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrMaxIter
}

// Linspace returns n evenly spaced values from a to b inclusive.
// It panics for n < 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("mathutil: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	d := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*d
	}
	out[n-1] = b
	return out
}

// CellCenters returns the n cell-center coordinates of a uniform grid on
// [a, b]: a + (i+1/2)Δx with Δx = (b−a)/n.
func CellCenters(a, b float64, n int) []float64 {
	if n < 1 {
		panic("mathutil: CellCenters needs n >= 1")
	}
	dx := (b - a) / float64(n)
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (float64(i)+0.5)*dx
	}
	return out
}

// IsFiniteAll reports whether every element of xs is finite (not NaN/Inf).
func IsFiniteAll(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
