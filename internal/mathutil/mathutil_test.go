package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSign(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{3.5, 1}, {-2, -1}, {0, 0}, {math.SmallestNonzeroFloat64, 1},
	}
	for _, c := range cases {
		if got := Sign(c.in); got != c.want {
			t.Errorf("Sign(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestMinmodBasic(t *testing.T) {
	if got := Minmod(1, 2); got != 1 {
		t.Errorf("Minmod(1,2) = %v", got)
	}
	if got := Minmod(-3, -2); got != -2 {
		t.Errorf("Minmod(-3,-2) = %v", got)
	}
	if got := Minmod(1, -1); got != 0 {
		t.Errorf("Minmod(1,-1) = %v", got)
	}
	if got := Minmod(0, 4); got != 0 {
		t.Errorf("Minmod(0,4) = %v", got)
	}
}

// Minmod must be symmetric, bounded by both arguments in magnitude, and
// share the sign of its arguments: the defining TVD-limiter properties.
func TestMinmodProperties(t *testing.T) {
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		m := Minmod(a, b)
		if m != Minmod(b, a) {
			return false
		}
		if math.Abs(m) > math.Abs(a) && math.Abs(m) > math.Abs(b) {
			return false
		}
		if a*b > 0 && Sign(m) != Sign(a) {
			return false
		}
		if a*b <= 0 && m != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMinmod3Properties(t *testing.T) {
	prop := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		m := Minmod3(a, b, c)
		if math.Abs(m) > math.Abs(a)+1e-300 || math.Abs(m) > math.Abs(b)+1e-300 || math.Abs(m) > math.Abs(c)+1e-300 {
			return false
		}
		if Sign(a) == Sign(b) && Sign(b) == Sign(c) && Sign(a) != 0 {
			return Sign(m) == Sign(a)
		}
		return m == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// MC limiter must reduce to the centered slope on smooth monotone data and
// vanish at extrema.
func TestMCLimiter(t *testing.T) {
	if got := MC(1, 1); got != 1 {
		t.Errorf("MC(1,1) = %v, want 1", got)
	}
	if got := MC(1, -1); got != 0 {
		t.Errorf("MC(1,-1) = %v, want 0", got)
	}
	// Steep one-sided gradient: limited to 2x the smaller slope.
	if got := MC(1, 100); got != 2 {
		t.Errorf("MC(1,100) = %v, want 2", got)
	}
}

func TestVanLeer(t *testing.T) {
	if got := VanLeer(1, 1); got != 1 {
		t.Errorf("VanLeer(1,1) = %v", got)
	}
	if got := VanLeer(2, -3); got != 0 {
		t.Errorf("VanLeer(2,-3) = %v", got)
	}
	// Harmonic mean of 1 and 3 slopes: 2*1*3/4 = 1.5.
	if got := VanLeer(1, 3); math.Abs(got-1.5) > 1e-15 {
		t.Errorf("VanLeer(1,3) = %v, want 1.5", got)
	}
}

func TestVanLeerBoundedByMC(t *testing.T) {
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Both limiters are TVD: |phi| <= |MC| is not a theorem, but both
		// must be bounded by 2*min(|a|,|b|) on same-sign input.
		vl := math.Abs(VanLeer(a, b))
		bound := 2 * math.Min(math.Abs(a), math.Abs(b))
		return vl <= bound*(1+1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNorms(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{0, 0, 0}
	if got := L1Norm(a, b, 0.5); math.Abs(got-3) > 1e-15 {
		t.Errorf("L1Norm = %v, want 3", got)
	}
	if got := L2Norm(a, b, 1); math.Abs(got-math.Sqrt(14)) > 1e-14 {
		t.Errorf("L2Norm = %v", got)
	}
	if got := LInfNorm(a, b); got != 3 {
		t.Errorf("LInfNorm = %v", got)
	}
}

func TestNormsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	L1Norm([]float64{1}, []float64{1, 2}, 1)
}

func TestConvergenceOrder(t *testing.T) {
	// Second-order errors: e = C h^2.
	e1, e2 := 4.0, 1.0
	h1, h2 := 2.0, 1.0
	if got := ConvergenceOrder(e1, e2, h1, h2); math.Abs(got-2) > 1e-12 {
		t.Errorf("order = %v, want 2", got)
	}
	if got := ConvergenceOrder(0, 1, 2, 1); !math.IsNaN(got) {
		t.Errorf("order with zero error = %v, want NaN", got)
	}
}

func TestBisect(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-12, 100); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	root, err := Bisect(f, 0, 1, 1e-12, 100)
	if err != nil || root != 0 {
		t.Errorf("root = %v err = %v", root, err)
	}
}

func TestBrentPolynomial(t *testing.T) {
	f := func(x float64) float64 { return (x + 3) * (x - 1) * (x - 1) * (x - 1) }
	// Root at x = -3 bracketed in [-4, 0].
	root, err := Brent(f, -4, 0, 1e-13, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root+3) > 1e-9 {
		t.Errorf("root = %v, want -3", root)
	}
}

func TestBrentTranscendental(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	root, err := Brent(f, 0, 1, 1e-14, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f(root)) > 1e-12 {
		t.Errorf("f(root) = %v", f(root))
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, err := Brent(f, -1, 1, 1e-12, 50); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

// Brent must agree with Bisect on random monotone cubics.
func TestBrentMatchesBisect(t *testing.T) {
	prop := func(shift float64) bool {
		s := math.Mod(math.Abs(shift), 10)
		f := func(x float64) float64 { return x*x*x + x - s }
		rb, err1 := Bisect(f, -20, 20, 1e-13, 300)
		rr, err2 := Brent(f, -20, 20, 1e-13, 300)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(rb-rr) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestCellCenters(t *testing.T) {
	xs := CellCenters(0, 1, 4)
	want := []float64{0.125, 0.375, 0.625, 0.875}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestIsFiniteAll(t *testing.T) {
	if !IsFiniteAll([]float64{1, 2, 3}) {
		t.Error("finite slice reported non-finite")
	}
	if IsFiniteAll([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if IsFiniteAll([]float64{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func TestMax3Min3(t *testing.T) {
	if Max3(1, 5, 3) != 5 || Min3(1, 5, 3) != 1 {
		t.Error("Max3/Min3 wrong")
	}
}
