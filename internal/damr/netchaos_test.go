package damr

import (
	"math"
	"testing"
	"time"

	"rhsc/internal/cluster"
	"rhsc/internal/testprob"
)

// runWithin guards a distributed run with a wall-clock budget: the
// transport contract promises typed errors, never hangs, under any
// fault schedule.
func runWithin(t *testing.T, d time.Duration, fn func() (*Result, error)) (*Result, error) {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := fn()
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(d):
		t.Fatal("distributed run hung past its wall-clock budget")
		return nil, nil
	}
}

// TestNetChaosMaskedInvariance is the tentpole acceptance test: under a
// seeded chaos schedule of drops, duplicates, delays, and corruptions
// that the reliable layer can mask, the distributed run stays bitwise
// identical to the clean single-rank reference at every rank count.
func TestNetChaosMaskedInvariance(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	const nbx, steps = 4, 10

	ref := referenceRun(t, p, nbx, steps, cfg)

	for _, ranks := range []int{1, 2, 4} {
		res, err := runWithin(t, 2*time.Minute, func() (*Result, error) {
			return Run(p, nbx, cfg, Options{
				Ranks: ranks,
				Mode:  cluster.Async,
				Net:   cluster.Infiniband(),
				Steps: steps,
				Transport: &cluster.TransportConfig{
					Chaos: &cluster.ChaosSpec{
						Seed: 1234, Drop: 0.15, Duplicate: 0.1, Delay: 0.1, Corrupt: 0.05,
					},
					RTO: 2 * time.Millisecond,
				},
			})
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if res.Recoveries != 0 {
			t.Errorf("ranks=%d: masked chaos triggered %d recoveries", ranks, res.Recoveries)
		}
		if res.Steps != steps {
			t.Errorf("ranks=%d: took %d steps, want %d", ranks, res.Steps, steps)
		}
		if res.Net == nil {
			t.Fatalf("ranks=%d: no transport snapshot", ranks)
		}
		if ranks > 1 {
			if res.Net.ChaosDropped == 0 || res.Net.Retransmits == 0 {
				t.Errorf("ranks=%d: chaos injected/repaired nothing: %+v", ranks, res.Net)
			}
			if res.Net.Abandoned != 0 {
				t.Errorf("ranks=%d: %d frames abandoned under masked chaos", ranks, res.Net.Abandoned)
			}
		}
		refMass := ref.TotalMass()
		if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
			t.Errorf("ranks=%d: mass %v vs reference %v (rel %.3e)", ranks, res.TotalMass, refMass, rel)
		}
		linf, l1 := sampleL1(res.Tree, ref, p, 64)
		if linf > 1e-12 || l1 > 1e-12 {
			t.Errorf("ranks=%d: density mismatch Linf=%.3e L1=%.3e", ranks, linf, l1)
		}
	}
}

// TestNetChaosWithRankFault combines the two fault models: a fail-stop
// rank failure recovered from buddy checkpoints while the fabric keeps
// dropping and corrupting frames. The recovery and the replay both run
// over the lossy transport and the result must still match.
func TestNetChaosWithRankFault(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	const nbx, steps = 4, 12

	ref := referenceRun(t, p, nbx, steps, cfg)
	res, err := runWithin(t, 2*time.Minute, func() (*Result, error) {
		return Run(p, nbx, cfg, Options{
			Ranks:           3,
			Net:             cluster.Infiniband(),
			Steps:           steps,
			CheckpointEvery: 4,
			Fault:           &RankFault{Rank: 1, AfterStep: 6},
			Transport: &cluster.TransportConfig{
				Chaos: &cluster.ChaosSpec{
					Seed: 99, Drop: 0.1, Duplicate: 0.1, Delay: 0.1, Corrupt: 0.05,
				},
				RTO: 2 * time.Millisecond,
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("Recoveries = %d, want >= 1", res.Recoveries)
	}
	if res.Survivors != 2 {
		t.Errorf("Survivors = %d, want 2", res.Survivors)
	}
	if res.Steps != steps {
		t.Errorf("Steps = %d, want %d", res.Steps, steps)
	}
	refMass := ref.TotalMass()
	if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
		t.Errorf("mass %v vs reference %v (rel %.3e)", res.TotalMass, refMass, rel)
	}
	linf, l1 := sampleL1(res.Tree, ref, p, 64)
	if linf > 1e-12 || l1 > 1e-12 {
		t.Errorf("faulted chaos run diverged: Linf=%.3e L1=%.3e", linf, l1)
	}
}

// TestNetChaosSilenceRecovery is the unmaskable-fault path end to end:
// a rank falls permanently silent mid-run (a partition, not a crash —
// it keeps computing and receiving). Its peers must detect the silence
// by deadline, exclude it like a dead rank, recover from the buddy
// checkpoints, and still finish with the reference solution. The
// silenced rank must exit cleanly by discovering its own exclusion.
func TestNetChaosSilenceRecovery(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	const nbx, steps, ranks = 4, 12, 3

	ref := referenceRun(t, p, nbx, steps, cfg)
	res, err := runWithin(t, 2*time.Minute, func() (*Result, error) {
		return Run(p, nbx, cfg, Options{
			Ranks:           ranks,
			Net:             cluster.Infiniband(),
			Steps:           steps,
			CheckpointEvery: 4,
			Transport: &cluster.TransportConfig{
				Chaos: &cluster.ChaosSpec{
					Seed:    5,
					Silence: &cluster.SilenceFault{Rank: 1, AfterSends: 60},
				},
				RTO:          time.Millisecond,
				RecvDeadline: 250 * time.Millisecond,
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Errorf("Recoveries = %d, want >= 1", res.Recoveries)
	}
	// The silenced rank must be excluded; a concurrent false suspicion of
	// one slow-but-live rank is tolerated (the protocol self-heals by
	// recovering over the doubly-shrunken set), so allow ranks-2.
	if res.Survivors < ranks-2 || res.Survivors >= ranks {
		t.Errorf("Survivors = %d, want %d or %d", res.Survivors, ranks-1, ranks-2)
	}
	if res.Steps != steps {
		t.Errorf("Steps = %d, want %d", res.Steps, steps)
	}
	if res.Net == nil || res.Net.Timeouts == 0 {
		t.Errorf("silence left no timeout trace: %+v", res.Net)
	}
	refMass := ref.TotalMass()
	if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
		t.Errorf("mass %v vs reference %v (rel %.3e)", res.TotalMass, refMass, rel)
	}
	linf, l1 := sampleL1(res.Tree, ref, p, 64)
	if linf > 1e-12 || l1 > 1e-12 {
		t.Errorf("silence recovery diverged: Linf=%.3e L1=%.3e", linf, l1)
	}
}

// TestTransportCleanReliable runs the reliable transport with no chaos:
// pure protocol overhead, still bitwise identical, snapshot populated.
func TestTransportCleanReliable(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	const nbx, steps = 4, 6

	ref := referenceRun(t, p, nbx, steps, cfg)
	res, err := runWithin(t, time.Minute, func() (*Result, error) {
		return Run(p, nbx, cfg, Options{
			Ranks: 2,
			Net:   cluster.Infiniband(),
			Steps: steps,
			Transport: &cluster.TransportConfig{
				Reliable: true,
				RTO:      50 * time.Millisecond,
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net == nil || res.Net.Sent == 0 || res.Net.Delivered == 0 {
		t.Fatalf("transport snapshot missing or empty: %+v", res.Net)
	}
	linf, l1 := sampleL1(res.Tree, ref, p, 64)
	if linf > 1e-12 || l1 > 1e-12 {
		t.Errorf("reliable run diverged: Linf=%.3e L1=%.3e", linf, l1)
	}
}
