package damr

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"rhsc/internal/amr"
	"rhsc/internal/cluster"
	"rhsc/internal/durable"
	"rhsc/internal/metrics"
	"rhsc/internal/testprob"
)

// Exchange tags (clear of the uniform-grid halo tags 100–103 and the
// collective tags in cluster/comm.go). Each phase sends at most one
// message per (src, dst) pair, so per-pair FIFO keeps phases ordered
// under a single halo tag; migration gets its own tag anyway so a
// regrid burst can never be confused with stage traffic.
const (
	tagHalo       = 200
	tagMigrate    = 201
	tagGather     = 202
	tagCheckpoint = 203
	tagFSMask     = 204
)

// epoch is the replicated picture of one partition generation: who owns
// which leaf, which copies this rank keeps fresh, and the symmetric
// exchange plan. It is a pure function of the (identical) tree structure
// and the options, so every rank computes the same epoch without
// communication; only the leaf *data* is distributed.
type epoch struct {
	refs  []amr.BlockRef
	index map[amr.BlockRef]int
	owner []int   // by leaf index
	mines [][]int // per rank: owned leaf indices, ascending
	mine  []int   // mines[rank]
	halo  []int   // fresh but not owned, ascending
	fresh []int   // mine ∪ halo, ascending

	// neigh[i] is the face+corner leaf neighbourhood of leaf i.
	neigh [][]int

	// sendTo[dst] / recvFrom[src] are the per-peer halo exchange sets
	// (leaf indices, ascending); computed symmetrically on both sides so
	// message sizes agree without negotiation.
	sendTo   map[int][]int
	recvFrom map[int][]int
	peersOut []int // dsts with non-empty sendTo, ascending
	peersIn  []int // srcs with non-empty recvFrom, ascending

	// Interior/boundary split of this rank's compute for the Async
	// overlap model: a block that feeds any peer is boundary work.
	interiorZones int
	boundaryZones int

	rankCost  []float64
	imbalance float64
}

// buildEpoch enumerates the leaves, partitions the Morton curve over the
// active ranks (ascending world ranks; all of them until a failure), and
// derives this rank's freshness sets and exchange plan. mines stays
// world-rank-indexed — dead ranks simply own nothing.
func buildEpoch(t *amr.Tree, opts *Options, maxLevel, rank int, active []int) *epoch {
	ep := &epoch{
		refs:     t.LeafRefs(),
		sendTo:   map[int][]int{},
		recvFrom: map[int][]int{},
	}
	n := len(ep.refs)
	ep.index = make(map[amr.BlockRef]int, n)
	for i, r := range ep.refs {
		ep.index[r] = i
	}

	// Partition the Morton curve by cost.
	order := mortonOrder(ep.refs, maxLevel, t.Dim())
	costs := make([]float64, n)
	for pos, i := range order {
		costs[pos] = float64(t.LeafZones(i)) * math.Pow(opts.LevelCostFactor, float64(ep.refs[i].Level))
	}
	var weights []float64
	if opts.WeightedPartition {
		weights = make([]float64, len(active))
		for k, a := range active {
			weights[k] = opts.RankRates[a]
		}
	}
	curveOwner := partitionCurve(costs, weights, len(active))
	ep.owner = make([]int, n)
	ep.rankCost = make([]float64, len(active))
	for pos, i := range order {
		ep.owner[i] = active[curveOwner[pos]]
		ep.rankCost[curveOwner[pos]] += costs[pos]
	}
	ep.imbalance = metrics.Imbalance(ep.rankCost)

	ep.mines = make([][]int, opts.Ranks)
	for i := 0; i < n; i++ {
		r := ep.owner[i]
		ep.mines[r] = append(ep.mines[r], i)
	}
	ep.mine = ep.mines[rank]

	// Neighbourhoods, halo, and the symmetric exchange plan. Geometric
	// adjacency is symmetric, so "L ∈ mine, M ∈ neigh(L), owner(M) = s"
	// seen from here is exactly "M ∈ mine, L ∈ neigh(M), owner(L) = me"
	// seen from rank s — both sides derive equal send/recv sets.
	ep.neigh = make([][]int, n)
	for i := 0; i < n; i++ {
		refs := t.LeafNeighborRefs(i)
		ni := make([]int, len(refs))
		for k, r := range refs {
			ni[k] = ep.index[r]
		}
		ep.neigh[i] = ni
	}
	inHalo := map[int]bool{}
	inSend := map[int]map[int]bool{}
	boundary := map[int]bool{}
	for _, i := range ep.mine {
		for _, j := range ep.neigh[i] {
			s := ep.owner[j]
			if s == rank {
				continue
			}
			inHalo[j] = true
			if inSend[s] == nil {
				inSend[s] = map[int]bool{}
			}
			inSend[s][i] = true
			boundary[i] = true
		}
	}
	for j := range inHalo {
		ep.halo = append(ep.halo, j)
	}
	sort.Ints(ep.halo)
	ep.fresh = append(append([]int{}, ep.mine...), ep.halo...)
	sort.Ints(ep.fresh)
	for s, set := range inSend {
		idx := make([]int, 0, len(set))
		for i := range set {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		ep.sendTo[s] = idx
		ep.peersOut = append(ep.peersOut, s)
	}
	sort.Ints(ep.peersOut)
	for _, j := range ep.halo {
		s := ep.owner[j]
		ep.recvFrom[s] = append(ep.recvFrom[s], j)
	}
	for s := range ep.recvFrom {
		ep.peersIn = append(ep.peersIn, s)
	}
	sort.Ints(ep.peersIn)

	for _, i := range ep.mine {
		z := t.LeafZones(i)
		if boundary[i] {
			ep.boundaryZones += z
		} else {
			ep.interiorZones += z
		}
	}
	return ep
}

// needers returns the ranks that keep leaf i fresh under this epoch: its
// owner plus every rank owning a neighbour.
func (ep *epoch) needers(i int) []int {
	set := map[int]bool{ep.owner[i]: true}
	for _, j := range ep.neigh[i] {
		set[ep.owner[j]] = true
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// setEpoch installs a new partition generation and re-derives the
// pooled per-peer halo send buffers from its exchange plan (sized once
// here so the steady-state step loop packs without allocating).
func (r *rankRun) setEpoch(ep *epoch) {
	r.ep = ep
	r.haloPhase = 0
	r.haloSend = make(map[int][2][]float64, len(ep.peersOut))
	for _, dst := range ep.peersOut {
		size := 0
		for _, i := range ep.sendTo[dst] {
			size += len(r.t.LeafRawU(i))
		}
		r.haloSend[dst] = [2][]float64{
			make([]float64, 0, size),
			make([]float64, 0, size),
		}
	}
	r.maskSend, r.maskPhase = nil, 0
	if r.cfg.Core.FailSafe {
		// Fail-safe runs swap troubled-cell masks over the same exchange
		// plan every stage (packed 8 cells per word, ~1/40 of the halo
		// payload); double-buffered by parity like haloSend.
		r.maskSend = make(map[int][2][]float64, len(ep.peersOut))
		for _, dst := range ep.peersOut {
			words := 0
			for _, i := range ep.sendTo[dst] {
				words += (len(r.t.LeafFSMask(i)) + 7) / 8
			}
			r.maskSend[dst] = [2][]float64{
				make([]float64, 0, words),
				make([]float64, 0, words),
			}
		}
	}
}

// rankRun is one rank's goroutine: a full tree replica advanced in
// lockstep with its peers.
type rankRun struct {
	t    *amr.Tree
	comm *cluster.Comm
	opts *Options
	ep   *epoch
	rank int
	rate float64

	// Problem identity kept for rebuilding the tree after a rank failure.
	p   *testprob.Problem
	nbx int
	cfg amr.Config

	// active is the agreed survivor set (ascending world ranks); it only
	// shrinks, and every shrink passes through a fault-tolerant
	// collective so all survivors agree.
	active []int

	// Buddy-checkpoint generations, two deep. ckCur is the newest
	// generation whose ring exchange completed on this rank; ckPrev the
	// one before it. A chaos-interrupted ring exchange leaves some ranks
	// committed at generation S and the aborters at the previous one, so
	// recovery first agrees on min(ckCur.steps) over the survivors and
	// every rank serves that generation from whichever slot holds it
	// (lockstep checkpointing makes the two possibilities exhaustive
	// under the one-fault-per-window model). On the perfect default
	// fabric the ring never aborts and ckCur is the only slot ever read.
	ckCur  ckSlot
	ckPrev ckSlot

	// Transport-mode recovery state: dirty is set when a protocol phase
	// unwound on ErrInterrupted/ErrRankFailed and the loop top must run a
	// recovery; seenGen is the alarm generation this rank has processed;
	// shrinkEras counts recoveries entered via the (alarm-free) collective
	// shrink path, so era = seenGen + shrinkEras stays lockstep-agreed.
	dirty      bool
	seenGen    uint64
	shrinkEras int

	// Pooled exchange buffers. The channel transport does not copy
	// payloads, so a buffer may only be repacked once its previous
	// receiver has provably finished reading it:
	//   - haloSend alternates two buffers per peer by phase parity; a
	//     peer posts its phase-s+1 message only after finishing its
	//     phase-s receives, and we repack the parity-s buffer only after
	//     receiving that s+1 message, so reuse at s+2 is race-free.
	//   - ckPack / migPack are reused across generations separated by
	//     the loop-top FTAllReduceMin collective, which the receiver can
	//     only reach after consuming (copying out of) the payload.
	// setEpoch re-derives the halo buffers whenever the plan changes.
	haloSend  map[int][2][]float64
	haloPhase int
	maskSend  map[int][2][]float64 // fail-safe troubled-cell masks, same parity discipline
	maskPhase int
	migPack   map[int][]float64
	ckPack    []float64
	encBuf    bytes.Buffer

	clock       float64
	rebalClock  float64
	rebalReal   time.Duration
	imbAccum    float64
	execSteps   int
	regrids     int
	rebalances  int
	migBlocks   int
	migBytes    int64
	checkpoints int
	ckBytes     int64
	ckClock     float64
	recoveries  int
	recomputed  int
	recClock    float64
	recReal     time.Duration
	maxLevelCfg int
}

// ckSlot is one complete buddy-checkpoint generation: this rank's own
// encoded leaves, the ring predecessor's blob, and the tree counters
// needed to restart from it. valid is false until the generation's ring
// exchange completed on this rank.
type ckSlot struct {
	own       []byte
	buddy     []byte
	buddyRank int
	steps     int
	time      float64
	zu        int64
	valid     bool
}

// checkpoint encodes this rank's owned leaves and swaps blobs around the
// ring of active ranks, so each rank's segment survives on its ring
// successor. Lockstep guarantees every active rank checkpoints at the
// same tree step, and a victim that dies at this loop top dies *after*
// its send, so the generation is always complete (the receive drains
// messages a rank posted before dying).
//
// The generation is staged: the slots rotate (prev ← cur ← new) only
// after the ring receive succeeds. An abort (deadline or alarm on the
// lossy transport) recycles ckPrev's storage as scrap and leaves ckCur
// — the generation recovery will agree on — untouched.
func (r *rankRun) checkpoint() error {
	clock0 := r.clock
	r.encBuf.Reset()
	if err := r.t.EncodeLeavesInto(r.ep.mine, &r.encBuf); err != nil {
		return err
	}
	// The blob survives in a buddy's memory and crosses the simulated
	// network; the durable frame (CRC32C + sealed footer) lets the
	// rebuild reject a damaged contribution instead of installing it.
	blob := r.encBuf.Bytes()
	stage := r.ckPrev // recycle the oldest slot's storage
	r.ckPrev.valid = false
	stage.own = durable.AppendBlob(stage.own[:0], blob)
	stage.steps = r.t.Steps()
	stage.time = r.t.Time()
	stage.zu = r.t.ZoneUpdates()
	stage.buddy = stage.buddy[:0]
	stage.buddyRank = -1
	if len(r.active) > 1 {
		pos := 0
		for k, a := range r.active {
			if a == r.rank {
				pos = k
				break
			}
		}
		next := r.active[(pos+1)%len(r.active)]
		prev := r.active[(pos+len(r.active)-1)%len(r.active)]
		r.ckPack = packBytesInto(stage.own, r.ckPack)
		r.comm.Send(next, tagCheckpoint, r.ckPack, r.clock)
		got, stamp, err := r.recvPt(prev, tagCheckpoint)
		if err != nil {
			return err
		}
		stage.buddy = unpackBytesInto(got, stage.buddy)
		stage.buddyRank = prev
		if avail := stamp + r.opts.Net.Cost(len(got)*8); avail > r.clock {
			r.clock = avail
		}
	}
	stage.valid = true
	r.ckPrev = r.ckCur
	r.ckCur = stage
	r.checkpoints++
	r.ckBytes += int64(len(blob))
	r.ckClock += r.clock - clock0
	return nil
}

// recoverFromFailure rebuilds the hierarchy from the latest checkpoint
// generation after the dt collective reported a shrunken survivor set:
// every survivor contributes its own blob — plus the victim's, held by
// its ring successor — rebuilds the tree bit-exactly at the checkpoint
// step (amr.TreeFromLeafBlobs installs U and W verbatim, no re-recover),
// and re-partitions the Morton curve over the survivors. Because the
// distributed run is invariant to the partition, replaying the lost
// window over the survivor set reproduces the fault-free trajectory to
// the last bit.
func (r *rankRun) recoverFromFailure(survivors []int) error {
	start := time.Now()
	clock0 := r.clock

	// Agree on the restore generation: the newest one complete on every
	// survivor. A rank whose ring exchange aborted mid-checkpoint is
	// still at the previous generation, so the minimum of the committed
	// step counts is held by everyone — from ckCur on the ranks that
	// aborted, from ckPrev on the ranks that had already rotated. (On
	// the default fabric the ring never aborts and this reduces to
	// everyone's identical ckCur.)
	curSteps := -1.0
	if r.ckCur.valid {
		curSteps = float64(r.ckCur.steps)
	}
	targetF, _, err := r.comm.FTAllReduceMin(curSteps, survivors)
	if err != nil {
		return err
	}
	if targetF < 0 {
		return fmt.Errorf("damr: no complete checkpoint generation to recover from")
	}
	target := int(targetF)
	slot := &r.ckCur
	if !slot.valid || slot.steps != target {
		slot = &r.ckPrev
	}
	if !slot.valid || slot.steps != target {
		return fmt.Errorf("damr: checkpoint generations diverged (need step %d, have cur=%d/%v prev=%d/%v)",
			target, r.ckCur.steps, r.ckCur.valid, r.ckPrev.steps, r.ckPrev.valid)
	}
	r.recomputed += r.t.Steps() - slot.steps

	contrib := [][]byte{slot.own}
	for _, d := range r.active {
		if !contains(survivors, d) && d == slot.buddyRank {
			contrib = append(contrib, slot.buddy)
		}
	}
	parts, alive, err := r.comm.FTAllGather(packBlobs(contrib), survivors)
	if err != nil {
		return err
	}
	var blobs [][]byte
	total := 0
	for _, part := range parts {
		if part == nil {
			continue
		}
		for _, b := range unpackBlobs(part) {
			blobs = append(blobs, b)
			total += len(b)
		}
	}
	// Coarse gather-and-rebroadcast charge, as in regridPhase.
	r.clock += 2 * r.opts.Net.Cost(total)

	t, err := amr.TreeFromLeafBlobs(r.p, r.nbx, r.cfg, blobs, slot.time, slot.steps, slot.zu)
	if err != nil {
		return err
	}
	r.t = t
	r.active = alive
	r.setEpoch(buildEpoch(t, r.opts, r.maxLevelCfg, r.rank, r.active))
	r.recoveries++
	r.recClock += r.clock - clock0
	r.recReal += time.Since(start)
	return nil
}

// recvPt is the point-to-point receive of every damr protocol phase.
// On the default fabric it is a plain (death-aware) Recv. On the lossy
// transport it is interruptible by the recovery alarm and bounded by 3×
// the base deadline — longer than any deadline the FT collectives use,
// so a partitioned rank discovers its own exclusion (its loop-top
// collective deadline fires first, or the alarm wakes it) before it can
// falsely suspect a live peer here. A timeout is converted into the
// revocation protocol: the unresponsive peer is killed, the alarm
// raised, and the caller unwinds to the loop top dirty.
func (r *rankRun) recvPt(src, tag int) ([]float64, float64, error) {
	if r.opts.Transport == nil {
		return r.comm.Recv(src, tag)
	}
	d := r.opts.Transport.RecvDeadline
	if d > 0 {
		d *= 3
	}
	data, stamp, err := r.comm.RecvInterruptible(src, tag, d, r.seenGen)
	if errors.Is(err, cluster.ErrTimeout) {
		err = r.comm.Suspect(src)
	}
	return data, stamp, err
}

// exchangeHalos runs one halo phase: post packed conserved blocks to
// every peer, receive the symmetric sets, then restore the recover/ghost
// invariant on the fresh set. When stageZones > 0 the phase also charges
// that much compute to the virtual clock, split interior/boundary for
// the Async overlap model exactly as cluster.rankState.exchange does.
func (r *rankRun) exchangeHalos(stageZones bool) error {
	t, ep := r.t, r.ep
	dims := float64(t.Dim())
	full, boundary := 0.0, 0.0
	if stageZones {
		full = float64(ep.interiorZones+ep.boundaryZones) * dims / r.rate
		boundary = float64(ep.boundaryZones) * dims / r.rate
		if boundary > full {
			boundary = full
		}
	}
	interior := full - boundary

	par := r.haloPhase & 1
	r.haloPhase++
	for _, dst := range ep.peersOut {
		pair := r.haloSend[dst]
		buf := pair[par][:0]
		for _, i := range ep.sendTo[dst] {
			buf = append(buf, t.LeafRawU(i)...)
		}
		pair[par] = buf
		r.haloSend[dst] = pair
		r.comm.Send(dst, tagHalo, buf, r.clock)
	}
	if r.opts.Mode == cluster.Async {
		r.clock += interior
	}
	for _, src := range ep.peersIn {
		data, stamp, err := r.recvPt(src, tagHalo)
		if err != nil {
			return err
		}
		off := 0
		for _, j := range ep.recvFrom[src] {
			raw := t.LeafRawU(j)
			copy(raw, data[off:off+len(raw)])
			off += len(raw)
		}
		if avail := stamp + r.opts.Net.Cost(len(data) * 8); avail > r.clock {
			r.clock = avail
		}
	}
	if r.opts.Mode == cluster.Async {
		r.clock += boundary
	} else {
		r.clock += full
	}

	if !stageZones {
		// End-of-step recovery: fold the CFL reduction into it so the
		// next loop-top MaxDtOf is a cheap per-leaf combine.
		t.ArmCFL(ep.mine)
	}
	rec := ep.fresh
	if stageZones && r.cfg.Core.FailSafe {
		// The fail-safe stage already recovered every owned leaf (the
		// detector's candidate recovery covers the interior; repair
		// re-recovers the cells it touched), so only the halo replicas
		// need the post-exchange recover. Re-recovering owners would not
		// be bitwise neutral: a cell whose stored primitives were clamped
		// (pressure floor, velocity cap) re-enters Newton from the
		// clamped guess and drifts off the serial tree's bit pattern.
		rec = ep.halo
	}
	t.SyncSubset(rec, ep.mine)
	return nil
}

// exchangeMasks swaps the troubled-cell masks of boundary leaves with
// every halo peer — unconditionally, so a replica's mask can never go
// stale — and reports whether any local or received mask carries a
// flag. The payload packs 8 mask bytes per float64 word into the
// parity send buffers sized by setEpoch, so a clean steady-state stage
// allocates nothing.
func (r *rankRun) exchangeMasks(localTroubled int) (bool, error) {
	t, ep := r.t, r.ep
	par := r.maskPhase & 1
	r.maskPhase++
	for _, dst := range ep.peersOut {
		pair := r.maskSend[dst]
		buf := pair[par][:0]
		for _, i := range ep.sendTo[dst] {
			buf = appendMaskWords(buf, t.LeafFSMask(i))
		}
		pair[par] = buf
		r.maskSend[dst] = pair
		r.comm.Send(dst, tagFSMask, buf, r.clock)
	}
	dirty := localTroubled > 0
	for _, src := range ep.peersIn {
		data, stamp, err := r.recvPt(src, tagFSMask)
		if err != nil {
			return false, err
		}
		off := 0
		for _, j := range ep.recvFrom[src] {
			m := t.LeafFSMask(j)
			if unpackMaskWords(data[off:], m) {
				dirty = true
			}
			off += (len(m) + 7) / 8
		}
		if avail := stamp + r.opts.Net.Cost(len(data)*8); avail > r.clock {
			r.clock = avail
		}
	}
	return dirty, nil
}

// step advances one global CFL step, mirroring amr.Tree.Step stage for
// stage so every fresh leaf follows the identical operation sequence.
// Under the fail-safe each Euler stage inserts the mask exchange
// between detection and repair, so both owners of a rank-boundary face
// see the same troubled flags and recompute the same corrected flux;
// when every mask is clean the repair (and its ghost fill) is skipped
// entirely, without any collective.
func (r *rankRun) step(dt float64) error {
	t, ep := r.t, r.ep
	t.BeginStep(ep.mine)
	if r.cfg.Core.FailSafe {
		for s := 1; s <= 2; s++ {
			troubled := t.StageAdvanceFS(ep.mine, s, dt)
			repair, err := r.exchangeMasks(troubled)
			if err != nil {
				return err
			}
			if repair {
				t.FSGhostMasks(ep.mine)
				if err := t.FSRepairLeaves(ep.mine, s, dt); err != nil {
					return err
				}
			}
			if err := r.exchangeHalos(true); err != nil {
				return err
			}
		}
	} else {
		for s := 0; s < 2; s++ {
			t.StageAdvance(ep.mine, dt)
			if err := r.exchangeHalos(true); err != nil {
				return err
			}
		}
	}
	t.CombineStage(ep.mine)
	if err := r.exchangeHalos(false); err != nil {
		return err
	}
	t.AdvanceTime(dt)
	r.imbAccum += r.ep.imbalance
	r.execSteps++
	return nil
}

// regridPhase mirrors the regrid branch of amr.Tree.Step: regrid with
// owner-computed (allgathered) indicators, then — when the hierarchy
// changed — repartition, migrate, and refresh before the post-regrid
// sync. When nothing changed the phase reduces to the serial tree's
// plain post-regrid sync.
func (r *rankRun) regridPhase() error {
	start := time.Now()
	clock0 := r.clock
	t, ep, opts := r.t, r.ep, r.opts
	r.regrids++

	// Owners publish the refinement indicators of their leaves; the
	// replicated epoch tells every rank how to zip the parts back into a
	// global ref→value map without sending the refs themselves. The
	// fault-tolerant gather runs over the survivor set (failures fire
	// only at loop tops, so none can surface mid-phase) and its parts
	// are world-rank-indexed, matching ep.mines.
	vals := make([]float64, len(ep.mine))
	for k, i := range ep.mine {
		vals[k] = t.LeafIndicator(i)
	}
	parts, _, err := r.comm.FTAllGather(vals, r.active)
	if err != nil {
		return err
	}
	totalBytes := 0
	for _, p := range parts {
		totalBytes += 8 * len(p)
	}
	// Coarse gather-to-root-and-rebroadcast charge, matching the
	// transport's actual shape.
	r.clock += 2 * opts.Net.Cost(totalBytes)
	ind := make(map[amr.BlockRef]float64, len(ep.refs))
	for rk, part := range parts {
		for k, i := range ep.mines[rk] {
			ind[ep.refs[i]] = part[k]
		}
	}

	changed := t.RegridWithIndicators(ind)
	if !changed {
		// The serial stepper still re-syncs after a no-op regrid; match
		// its recover count on every fresh copy.
		t.ArmCFL(ep.mine)
		t.SyncSubset(ep.fresh, ep.mine)
		r.rebalClock += r.clock - clock0
		r.rebalReal += time.Since(start)
		return nil
	}
	r.rebalances++

	newEp := buildEpoch(t, opts, r.maxLevelCfg, r.rank, r.active)

	// Migration plan. The *authority* of a new leaf is the rank whose
	// old fresh set provably contains bit-exact data for it:
	//   unchanged leaf → its old owner;
	//   refined leaf   → the old owner of the ancestor that was a leaf
	//                    (prolongation read only that block's interior);
	//   coarsened leaf → the old owner of its Morton-first child (the
	//                    restriction read all children, and the corner-
	//                    inclusive halo ring of child 0 covers them).
	// The authority ships (U, W) to every rank that newly keeps the leaf
	// fresh; ranks whose old fresh set already covered an unchanged leaf
	// are skipped — their copies are in lockstep by construction.
	authority := func(ref amr.BlockRef) int {
		if i, ok := ep.index[ref]; ok {
			return ep.owner[i]
		}
		if c, ok := ep.index[ref.FirstChild(t.Dim())]; ok {
			return ep.owner[c]
		}
		for p := ref.Parent(t.Dim()); p.Level >= 0; p = p.Parent(t.Dim()) {
			if i, ok := ep.index[p]; ok {
				return ep.owner[i]
			}
		}
		panic(fmt.Sprintf("damr: no authority for block L%d (%d,%d)", ref.Level, ref.Bi, ref.Bj))
	}
	oldNeeders := func(ref amr.BlockRef) []int {
		i, ok := ep.index[ref]
		if !ok {
			return nil
		}
		return ep.needers(i)
	}
	sendPlan := map[int][]int{} // dst → new leaf indices this rank ships
	recvPlan := map[int][]int{} // src → new leaf indices this rank expects
	for i, ref := range newEp.refs {
		auth := authority(ref)
		// Each new owner counts the blocks it takes over from another
		// rank's authority — whether or not bytes had to move (the halo
		// often means the data is already resident).
		if newEp.owner[i] == r.rank && auth != r.rank {
			r.migBlocks++
		}
		old := oldNeeders(ref)
		for _, need := range newEp.needers(i) {
			if need == auth || contains(old, need) {
				continue
			}
			if auth == r.rank {
				sendPlan[need] = append(sendPlan[need], i)
			}
			if need == r.rank {
				recvPlan[auth] = append(recvPlan[auth], i)
			}
		}
	}
	for dst, idx := range sendPlan {
		r.encBuf.Reset()
		if err := t.EncodeLeavesInto(idx, &r.encBuf); err != nil {
			return fmt.Errorf("damr: encode migration to rank %d: %w", dst, err)
		}
		blob := r.encBuf.Bytes()
		// One pooled pack buffer per destination: several sends can be
		// in flight within this phase, so they must not share storage.
		r.migPack[dst] = packBytesInto(blob, r.migPack[dst])
		r.migBytes += int64(len(blob))
		r.comm.Send(dst, tagMigrate, r.migPack[dst], r.clock)
	}
	for _, src := range sortedKeys(recvPlan) {
		payload, stamp, err := r.recvPt(src, tagMigrate)
		if err != nil {
			return err
		}
		if avail := stamp + opts.Net.Cost(len(payload) * 8); avail > r.clock {
			r.clock = avail
		}
		if _, err := t.DecodeLeaves(unpackBytes(payload)); err != nil {
			return fmt.Errorf("damr: decode migration from rank %d: %w", src, err)
		}
	}

	// Post-regrid sync on the new fresh set (the serial tree recovers
	// every leaf here; each fresh copy applies the same single recover).
	t.ArmCFL(newEp.mine)
	t.SyncSubset(newEp.fresh, newEp.mine)
	r.setEpoch(newEp)
	r.rebalClock += r.clock - clock0
	r.rebalReal += time.Since(start)
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sortedKeys(m map[int][]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// packBytes reinterprets a byte blob as the []float64 payload the
// channel transport carries (8 bytes per element, zero-padded tail,
// length prefix so the exact byte count survives).
func packBytes(b []byte) []float64 { return packBytesInto(b, nil) }

// packBytesInto is packBytes filling a caller-owned buffer, grown only
// when too small; it returns the filled slice for reassignment.
func packBytesInto(b []byte, dst []float64) []float64 {
	n := len(b)
	if need := 1 + (n+7)/8; cap(dst) < need {
		dst = make([]float64, 0, need)
	}
	dst = append(dst[:0], float64(n))
	for off := 0; off < n; off += 8 {
		var word uint64
		for k := 0; k < 8 && off+k < n; k++ {
			word |= uint64(b[off+k]) << (8 * k)
		}
		dst = append(dst, math.Float64frombits(word))
	}
	return dst
}

// unpackBytes inverts packBytes.
func unpackBytes(payload []float64) []byte { return unpackBytesInto(payload, nil) }

// unpackBytesInto is unpackBytes filling a caller-owned buffer, grown
// only when too small; every byte of the result is overwritten.
func unpackBytesInto(payload []float64, dst []byte) []byte {
	n := int(payload[0])
	if cap(dst) < n {
		dst = make([]byte, 0, n)
	}
	dst = dst[:n]
	for w, word := range payload[1:] {
		bits := math.Float64bits(word)
		for k := 0; k < 8; k++ {
			if i := w*8 + k; i < n {
				dst[i] = byte(bits >> (8 * k))
			}
		}
	}
	return dst
}

// appendMaskWords packs a troubled-cell mask into the transport payload,
// 8 mask bytes per float64 word (little-endian within the word,
// zero-padded tail). Lengths are implied by the epoch's leaf sets, so no
// prefix is needed.
func appendMaskWords(dst []float64, m []uint8) []float64 {
	for off := 0; off < len(m); off += 8 {
		var word uint64
		for k := 0; k < 8 && off+k < len(m); k++ {
			word |= uint64(m[off+k]) << (8 * k)
		}
		dst = append(dst, math.Float64frombits(word))
	}
	return dst
}

// unpackMaskWords inverts appendMaskWords into m, reading
// ceil(len(m)/8) words from the head of payload; it reports whether any
// flag was set.
func unpackMaskWords(payload []float64, m []uint8) bool {
	dirty := false
	for w := 0; w*8 < len(m); w++ {
		bits := math.Float64bits(payload[w])
		if bits != 0 {
			dirty = true
		}
		for k := 0; k < 8; k++ {
			if i := w*8 + k; i < len(m) {
				m[i] = byte(bits >> (8 * k))
			}
		}
	}
	return dirty
}

// packBlobs concatenates several byte blobs into one transport payload:
// a count word followed by each blob in packBytes form.
func packBlobs(blobs [][]byte) []float64 {
	out := []float64{float64(len(blobs))}
	for _, b := range blobs {
		out = append(out, packBytes(b)...)
	}
	return out
}

// unpackBlobs inverts packBlobs.
func unpackBlobs(payload []float64) [][]byte {
	n := int(payload[0])
	out := make([][]byte, 0, n)
	off := 1
	for i := 0; i < n; i++ {
		words := (int(payload[off]) + 7) / 8
		out = append(out, unpackBytes(payload[off:off+1+words]))
		off += 1 + words
	}
	return out
}

// errKilled marks the expected exit of a rank killed by fault
// injection; Run treats it as a successful (if silent) return.
var errKilled = errors.New("damr: rank killed by fault injection")

// Run advances problem p on a hierarchy of nbx root blocks distributed
// over opts.Ranks ranks and returns the root rank's result, with every
// leaf's final data gathered into Result.Tree. The run is bit-identical
// to the equivalent single-rank amr.Tree run at any rank count — and,
// with checkpointing enabled, across an injected rank failure.
func Run(p *testprob.Problem, nbx int, cfg amr.Config, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var world *cluster.World
	if opts.Transport != nil {
		world = cluster.NewWorldTransport(opts.Ranks, *opts.Transport)
	} else {
		world = cluster.NewWorld(opts.Ranks)
	}
	defer world.Close()
	results := make([]*Result, opts.Ranks)
	errs := make([]error, opts.Ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < opts.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("damr: rank %d: %v", rank, rec)
				}
			}()
			results[rank], errs[rank] = runRank(world.Comm(rank), p, nbx, cfg, &opts)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil && !errors.Is(err, errKilled) {
			return nil, fmt.Errorf("damr: rank %d: %w", rank, err)
		}
	}
	// The gather root is the lowest surviving rank — rank 0 unless it was
	// the fault victim.
	for _, res := range results {
		if res != nil && res.Tree != nil {
			if nc := world.NetCounters(); nc != nil {
				snap := nc.Snapshot()
				res.Net = &snap
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("damr: no rank produced a result")
}

// newRankRun builds one rank's replica and its initial epoch — the
// state runRank steps from (split out so tests can drive single steps).
func newRankRun(comm *cluster.Comm, p *testprob.Problem, nbx int, cfg amr.Config, opts *Options) (*rankRun, error) {
	// Every rank builds the same replica: NewTree is deterministic, so no
	// initial exchange is needed — all copies start fresh everywhere.
	t, err := amr.NewTree(p, nbx, cfg)
	if err != nil {
		return nil, err
	}
	rank := comm.Rank()
	active := make([]int, opts.Ranks)
	for i := range active {
		active[i] = i
	}
	r := &rankRun{
		t: t, comm: comm, opts: opts, rank: rank,
		rate:        opts.ZoneRate,
		maxLevelCfg: cfg.MaxLevel,
		p:           p, nbx: nbx, cfg: cfg,
		active:  active,
		migPack: map[int][]float64{},
	}
	r.ckCur.buddyRank = -1
	r.ckPrev.buddyRank = -1
	if len(opts.RankRates) > 0 {
		r.rate = opts.RankRates[rank]
	}
	r.setEpoch(buildEpoch(t, opts, cfg.MaxLevel, rank, r.active))
	return r, nil
}

func runRank(comm *cluster.Comm, p *testprob.Problem, nbx int, cfg amr.Config, opts *Options) (*Result, error) {
	r, err := newRankRun(comm, p, nbx, cfg, opts)
	if err != nil {
		return nil, err
	}
	rank := r.rank

	tEnd := p.TEnd
	if opts.TEnd > 0 {
		tEnd = opts.TEnd
	}

	transport := opts.Transport != nil

	// classify routes a protocol-phase error on the lossy transport:
	// self-exclusion is the clean victim exit; an interrupt or an
	// observed peer death unwinds to the loop top dirty, where the next
	// iteration runs the recovery; anything else is fatal. On the
	// default fabric every error is fatal, exactly as before.
	classify := func(err error) (retry bool, ret error) {
		if !transport {
			return false, err
		}
		if errors.Is(err, cluster.ErrSelfExcluded) || comm.Failed(rank) {
			return false, errKilled
		}
		if errors.Is(err, cluster.ErrInterrupted) || errors.Is(err, cluster.ErrRankFailed) {
			r.dirty = true
			return true, nil
		}
		return false, err
	}

	start := time.Now()
	iters := 0
	// Termination, checkpointing, regrids, and the fault trigger all key
	// off the tree's committed step count, so a recovery that rewinds the
	// tree transparently replays the lost window.
	for {
		iters++
		if iters > 1_000_000 {
			return nil, fmt.Errorf("damr: step budget exhausted")
		}
		if transport {
			// Revocation check: an alarm raised since this rank's last
			// recovery point — or a phase this rank itself unwound from,
			// dirty — sends it straight into recovery over the survivor
			// set. Kill happens-before Alarm on the detector, so by the
			// time any rank observes the new generation the Failed flags
			// identify the same victim everywhere, and no agreement round
			// is needed. A rank that finds *itself* among the failed was
			// presumed dead by its peers (partition or silence); it bows
			// out like a killed rank.
			gen := comm.AlarmGen()
			if r.dirty || gen != r.seenGen {
				r.seenGen = gen
				comm.SeenAlarm(gen)
				r.dirty = false
				if comm.Failed(rank) {
					return nil, errKilled
				}
				survivors := make([]int, 0, len(r.active))
				for _, a := range r.active {
					if !comm.Failed(a) {
						survivors = append(survivors, a)
					}
				}
				if len(survivors) == 0 || !contains(survivors, rank) {
					return nil, errKilled
				}
				// The era is derived from lockstep-agreed state, so every
				// survivor lands on the same value and the receive path
				// can discard all traffic of the aborted phase.
				comm.SetEra(r.seenGen + uint64(r.shrinkEras))
				if err := r.recoverFromFailure(survivors); err != nil {
					if retry, ret := classify(err); !retry {
						return nil, ret
					}
				}
				continue
			}
		}
		done := false
		if opts.Steps > 0 {
			done = r.t.Steps() >= opts.Steps
		} else {
			done = r.t.Time() >= tEnd-1e-14
		}
		if done {
			res, err := r.finalize(time.Since(start))
			if err != nil {
				if retry, ret := classify(err); retry {
					continue // recover, replay the lost window, finalize again
				} else {
					return nil, ret
				}
			}
			return res, nil
		}
		if opts.CheckpointEvery > 0 && r.t.Steps()%opts.CheckpointEvery == 0 {
			if err := r.checkpoint(); err != nil {
				if retry, ret := classify(err); retry {
					continue
				} else {
					return nil, ret
				}
			}
		}
		if f := opts.Fault; f != nil && rank == f.Rank && r.t.Steps() == f.AfterStep {
			comm.Kill()
			return nil, errKilled
		}
		dt, alive, err := comm.FTAllReduceMin(r.t.MaxDtOf(r.ep.mine), r.active)
		if err != nil {
			if retry, ret := classify(err); retry {
				continue
			} else {
				return nil, ret
			}
		}
		r.clock += opts.Net.AllReduceCost(len(r.active))
		if len(alive) < len(r.active) {
			// A peer died: restore the checkpoint generation over the
			// survivors and replay (the loop top re-checkpoints first,
			// restoring buddy redundancy on the new ring).
			if transport {
				// This recovery is entered without an alarm, so it bumps
				// the era through the shrink count instead — the shrink is
				// agreed through the collective, so the count stays
				// lockstep too.
				r.shrinkEras++
				comm.SetEra(r.seenGen + uint64(r.shrinkEras))
			}
			if err := r.recoverFromFailure(alive); err != nil {
				if retry, ret := classify(err); retry {
					continue
				} else {
					return nil, ret
				}
			}
			continue
		}
		if opts.Steps == 0 && r.t.Time()+dt > tEnd {
			dt = tEnd - r.t.Time()
		}
		if err := r.step(dt); err != nil {
			if retry, ret := classify(err); retry {
				continue
			} else {
				return nil, ret
			}
		}
		if r.t.Steps()%r.t.RegridEvery() == 0 {
			if err := r.regridPhase(); err != nil {
				if retry, ret := classify(err); retry {
					continue
				} else {
					return nil, ret
				}
			}
		}
	}
}

// finalize runs the end-of-run collectives — the per-rank stats gather
// and the final leaf gather onto the lowest surviving rank — and builds
// the Result. On the lossy transport an error here unwinds to the step
// loop like any phase error: recovery rewinds the tree below the
// termination condition, the lost window replays, and finalize runs
// again in the new era (the root discards the aborted attempt's frames
// by their stale era).
func (r *rankRun) finalize(real time.Duration) (*Result, error) {
	t := r.t
	comm := r.comm
	opts := r.opts

	// Diagnostics (uncharged, like the uniform-grid driver): one
	// fault-tolerant gather carries every per-rank stat, folded locally.
	// A killed rank contributes nothing — its pre-failure work simply
	// drops out of the sums, which the recovery replay re-earns.
	stats := []float64{
		r.clock, r.rebalClock, float64(t.ZoneUpdates()),
		float64(r.migBlocks), float64(r.migBytes),
		float64(r.ckBytes), r.ckClock, r.recClock, float64(r.recomputed),
		float64(t.TroubledCells()), float64(t.RepairedCells()),
	}
	parts, alive, err := comm.FTAllGather(stats, r.active)
	if err != nil {
		return nil, err
	}
	r.active = alive
	fold := func(k int, sum bool) float64 {
		out := 0.0
		for _, p := range parts {
			if p == nil {
				continue
			}
			if sum {
				out += p[k]
			} else if p[k] > out {
				out = p[k]
			}
		}
		return out
	}

	// Gather every owned leaf's final (U, W) onto the lowest surviving
	// rank so its replica becomes globally fresh — deliberately without
	// a re-sync, which would apply one recover more than the reference.
	root := r.active[0]
	if r.rank != root {
		blob, err := t.EncodeLeaves(r.ep.mine)
		if err != nil {
			return nil, err
		}
		comm.Send(root, tagGather, packBytes(blob), 0)
		return &Result{}, nil
	}
	for _, src := range r.active[1:] {
		payload, _, err := r.recvPt(src, tagGather)
		if err != nil {
			return nil, err
		}
		if _, err := t.DecodeLeaves(unpackBytes(payload)); err != nil {
			return nil, err
		}
	}
	imb := 0.0
	if r.execSteps > 0 {
		imb = r.imbAccum / float64(r.execSteps)
	}
	return &Result{
		Ranks: opts.Ranks, Mode: opts.Mode, Steps: t.Steps(),
		RealTime: real, VirtualTime: fold(0, false),
		TotalMass:   t.TotalMass(),
		ZoneUpdates: int64(fold(2, true)),
		Leaves:      t.NumLeaves(),
		MaxLevel:    t.MaxLevelInUse(),
		Regrids:     r.regrids, Rebalances: r.rebalances,
		MigratedBlocks: int(fold(3, true)), MigratedBytes: int64(fold(4, true)),
		RebalanceTime: r.rebalReal, RebalanceVirtual: fold(1, false),
		Imbalance:   imb,
		Checkpoints: r.checkpoints,
		CheckpointBytes:   int64(fold(5, true)),
		CheckpointVirtual: fold(6, false),
		Recoveries:        r.recoveries,
		Survivors:         len(r.active),
		RecomputedSteps:   int(fold(8, false)),
		RecoveryVirtual:   fold(7, false),
		RecoveryReal:      r.recReal,
		TroubledCells:     int64(fold(9, true)),
		RepairedCells:     int64(fold(10, true)),
		Tree:              t,
	}, nil
}
