package damr

import (
	"math"
	"testing"

	"rhsc/internal/cluster"
	"rhsc/internal/testprob"
)

// TestFaultFailSafeRankInvariance pins the distributed fail-safe: a
// blast run whose tightened admissibility bound keeps the detector
// firing (so steps really are repaired, across block and rank
// boundaries) must reproduce the serial fail-safe tree bit-for-bit at
// every rank count — same flagged-cell totals, same repairs, same
// field. The mask exchange is what makes this hold: both owners of a
// rank-boundary face see the same flags and recompute the same
// corrected flux.
func TestFaultFailSafeRankInvariance(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	cfg.Core.FailSafe = true
	cfg.Core.FailSafeRelax = 0.05
	const nbx, steps = 4, 10

	ref := referenceRun(t, p, nbx, steps, cfg)
	if ref.TroubledCells() == 0 {
		t.Fatal("reference run never flagged a cell — the test exercises nothing")
	}
	if ref.RepairedCells() != ref.TroubledCells() {
		t.Fatalf("reference repaired %d of %d flagged cells",
			ref.RepairedCells(), ref.TroubledCells())
	}

	for _, ranks := range []int{1, 2, 4} {
		res, err := Run(p, nbx, cfg, Options{
			Ranks: ranks,
			Mode:  cluster.Async,
			Net:   cluster.Infiniband(),
			Steps: steps,
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if res.TroubledCells != ref.TroubledCells() {
			t.Errorf("ranks=%d: troubled %d, reference %d",
				ranks, res.TroubledCells, ref.TroubledCells())
		}
		if res.RepairedCells != ref.RepairedCells() {
			t.Errorf("ranks=%d: repaired %d, reference %d",
				ranks, res.RepairedCells, ref.RepairedCells())
		}
		refMass := ref.TotalMass()
		if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
			t.Errorf("ranks=%d: mass %v vs reference %v (rel %.3e)", ranks, res.TotalMass, refMass, rel)
		}
		linf, l1 := sampleL1(res.Tree, ref, p, 64)
		if linf > 1e-12 || l1 > 1e-12 {
			t.Errorf("ranks=%d: density mismatch Linf=%.3e L1=%.3e", ranks, linf, l1)
		}
	}
}

// TestFailSafeCleanRunMatchesPlain: with the fail-safe on but no cell
// ever flagged, the distributed run must remain bitwise identical to
// the plain distributed run — detection and the mask exchange are
// read-only on the solution.
func TestFailSafeCleanRunMatchesPlain(t *testing.T) {
	p := testprob.Blast2D
	const nbx, steps, ranks = 4, 6, 2

	run := func(fs bool) *Result {
		cfg := blastConfig()
		cfg.Core.FailSafe = fs
		res, err := Run(p, nbx, cfg, Options{Ranks: ranks, Net: cluster.Infiniband(), Steps: steps})
		if err != nil {
			t.Fatalf("failsafe=%v: %v", fs, err)
		}
		return res
	}
	plain, safe := run(false), run(true)
	if safe.TroubledCells != 0 || safe.RepairedCells != 0 {
		t.Fatalf("clean run flagged cells: troubled=%d repaired=%d",
			safe.TroubledCells, safe.RepairedCells)
	}
	if plain.TotalMass != safe.TotalMass {
		t.Errorf("mass diverged bitwise: %v vs %v", plain.TotalMass, safe.TotalMass)
	}
	linf, _ := sampleL1(plain.Tree, safe.Tree, p, 64)
	if linf != 0 {
		t.Errorf("density diverged bitwise: Linf=%.3e", linf)
	}
}
