// Package damr runs the block-structured AMR hierarchy of package amr
// distributed across cluster.World ranks.
//
// Decomposition model: every rank holds a full structural replica of the
// quadtree, but only a contiguous segment of the Morton-ordered leaf
// curve is *fresh* (advanced locally) on each rank — the classic
// replicated-tree / distributed-data design of GAMER-class AMR codes,
// which is exact at the block counts the experiments use. The freshness
// invariant each rank maintains is:
//
//	owned leaves ∪ halo ring (all face+corner neighbours of owned
//	leaves) carry bit-identical data to a single-rank amr run.
//
// Three halo exchanges per SSP-RK2 step (one per RHS stage plus one
// after the stage combination) keep the ring fresh; a fourth, heavier
// exchange after each regrid migrates blocks whose Morton-curve owner
// changed and refreshes newly adjacent rings. Because each rank performs
// exactly the same per-leaf operation sequence as the serial tree —
// including the con2prim Newton guess, which travels with migrated
// blocks — the distributed run reproduces the single-rank run to the
// last bit at any rank count, which TestRankCountInvariance pins down.
//
// Communication rides on the channel transport of package cluster and is
// charged to the same virtual clock / NetModel accounting, so the
// distributed-AMR scaling experiment (EXPERIMENTS.md E12) reports
// modelled parallel efficiency beyond the host's core count exactly like
// the uniform-grid experiments E5/E6.
package damr

import (
	"fmt"
	"sort"
	"time"

	"rhsc/internal/amr"
	"rhsc/internal/cluster"
	"rhsc/internal/metrics"
)

// Options configures a distributed AMR run.
type Options struct {
	// Ranks is the number of ranks advancing the hierarchy in lockstep.
	Ranks int
	// Mode selects bulk-synchronous (Sync) or overlapped (Async)
	// communication accounting, as in cluster.Options.
	Mode cluster.Mode
	// Net is the virtual interconnect model.
	Net cluster.NetModel
	// ZoneRate is the modelled per-rank compute throughput
	// (zone-stage-updates per virtual second); <= 0 selects 16e6.
	ZoneRate float64
	// RankRates, when non-empty (len == Ranks), gives every rank its own
	// throughput — a heterogeneous cluster.
	RankRates []float64
	// WeightedPartition splits the Morton curve proportionally to
	// RankRates instead of evenly, so accelerated ranks own more blocks.
	WeightedPartition bool
	// LevelCostFactor multiplies a block's partition cost per refinement
	// level (cost = zones · factor^level). With the global-Δt lockstep
	// stepper every zone costs the same per step, so <= 0 selects the
	// honest default of 1; subcycling integrators would want ~2.
	LevelCostFactor float64
	// Steps, when > 0, runs exactly that many CFL steps; otherwise the
	// run integrates to TEnd (or the problem's TEnd when TEnd == 0).
	Steps int
	TEnd  float64

	// CheckpointEvery > 0 takes an in-memory buddy checkpoint whenever
	// the tree's committed step count is a multiple of it: each active
	// rank gob-encodes its owned leaves (U and W, including ghosts) and
	// swaps blobs around the ring of active ranks, so one rank failure
	// loses no generation. Required for Fault.
	CheckpointEvery int
	// Fault, when non-nil, injects one deterministic fail-stop rank
	// failure (see RankFault); the survivors detect it, restore the last
	// checkpoint generation, re-partition the Morton curve among
	// themselves, and replay — reproducing the fault-free trajectory to
	// round-off because the run is invariant to the partition.
	Fault *RankFault

	// Transport, when non-nil, runs the ranks over the lossy-fabric
	// transport of cluster.NewWorldTransport instead of the perfect
	// default fabric: seeded chaos injection (Transport.Chaos), reliable
	// seq/CRC/ack/retransmit framing, deadline-bounded receives, and the
	// alarm/era recovery protocol (docs/RESILIENCE.md §7). Every masked
	// chaos schedule leaves the run bit-identical to the clean run; an
	// unmaskable fault (a silenced/partitioned rank) is detected by
	// deadline, excluded like a dead rank, and recovered from the buddy
	// checkpoints. A zero RecvDeadline defaults to 2s here so no receive
	// can hang.
	Transport *cluster.TransportConfig
}

// RankFault schedules one deterministic fail-stop rank failure: the
// given world rank kills itself at the top of the step loop once the
// tree has committed AfterStep steps — after the (coinciding)
// checkpoint exchange, before the dt collective that detects the loss.
// AfterStep must lie before the end of the run for the fault to fire.
type RankFault struct {
	Rank      int
	AfterStep int
}

// Result summarises a distributed AMR run (returned for rank 0).
type Result struct {
	Ranks       int
	Mode        cluster.Mode
	Steps       int
	RealTime    time.Duration
	VirtualTime float64 // max over ranks of the per-rank virtual clock

	TotalMass   float64
	ZoneUpdates int64 // summed over ranks
	Leaves      int   // final leaf count
	MaxLevel    int   // deepest level in use at the end

	// Regrids counts regrid evaluations; Rebalances those that changed
	// the hierarchy and therefore recomputed the partition and migrated.
	Regrids    int
	Rebalances int
	// MigratedBlocks counts blocks whose owner changed; MigratedBytes is
	// the total payload of the migration/refresh exchanges.
	MigratedBlocks int
	MigratedBytes  int64
	// RebalanceTime is real time spent in regrid + migration phases
	// (rank 0); RebalanceVirtual is the virtual-clock share of the same
	// (max over ranks).
	RebalanceTime    time.Duration
	RebalanceVirtual float64
	// Imbalance is the step-averaged (max−mean)/mean of the per-rank
	// partition cost.
	Imbalance float64

	// Checkpoints counts buddy-checkpoint generations taken (per rank —
	// lockstep makes the count identical across ranks); CheckpointBytes
	// is the summed encoded payload, CheckpointVirtual the virtual-clock
	// share of the ring exchanges (max over ranks).
	Checkpoints       int
	CheckpointBytes   int64
	CheckpointVirtual float64
	// Recoveries counts completed rank-failure recoveries; Survivors is
	// the final active rank count. RecomputedSteps is the widest
	// checkpoint-to-detection window replayed; RecoveryVirtual and
	// RecoveryReal are the virtual (max over ranks) and wall-clock (this
	// rank) time spent restoring and re-partitioning.
	Recoveries      int
	Survivors       int
	RecomputedSteps int
	RecoveryVirtual float64
	RecoveryReal    time.Duration

	// TroubledCells and RepairedCells sum the fail-safe detector flags
	// and local flux-replacement repairs over the owning ranks (zero
	// unless the leaf method runs with core.Config.FailSafe). Like
	// ZoneUpdates, a replayed recovery window re-earns its counts.
	TroubledCells int64
	RepairedCells int64

	// Tree is rank 0's hierarchy with every leaf's final data gathered
	// in, for validation against a single-rank run.
	Tree *amr.Tree

	// Net is the transport counter snapshot of the run (nil unless
	// Options.Transport was set): traffic, chaos faults injected,
	// repairs performed, typed failures surfaced.
	Net *metrics.TransportSnapshot
}

// mortonKey maps a block ref to its position on the Z-order curve:
// normalise the block coordinates to the finest admissible level (so
// coarse blocks sort by their lower-left descendant) and interleave the
// bits, x in the even positions. Keys are unique across the leaves of a
// 2:1-balanced tree because leaf regions are disjoint.
func mortonKey(r amr.BlockRef, maxLevel, dim int) uint64 {
	shift := uint(maxLevel - r.Level)
	x := uint64(r.Bi) << shift
	if dim < 2 {
		return x
	}
	y := uint64(r.Bj) << shift
	return spreadBits(x) | spreadBits(y)<<1
}

// spreadBits inserts a zero between the low 32 bits of v.
func spreadBits(v uint64) uint64 {
	v &= 0xFFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// mortonOrder returns leaf indices sorted by Morton key.
func mortonOrder(refs []amr.BlockRef, maxLevel, dim int) []int {
	keys := make([]uint64, len(refs))
	for i, r := range refs {
		keys[i] = mortonKey(r, maxLevel, dim)
	}
	order := make([]int, len(refs))
	for i := range order {
		order[i] = i
	}
	// Keys are unique among the leaves of a consistent tree, so the sort
	// is deterministic without a stability requirement.
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}

// partitionCurve assigns each Morton position an owner rank: the curve is
// cut into contiguous segments whose cost share tracks each rank's weight
// share. Block i goes to the rank whose weighted interval contains the
// block's cost midpoint — the standard space-filling-curve balancing
// rule, which never splits a block and degrades gracefully when one block
// dominates. Owners are non-decreasing along the curve, so segments stay
// contiguous; ranks may end up empty when there are more ranks than
// blocks. Everything here is a pure function of replicated state, so all
// ranks compute identical partitions.
func partitionCurve(costs []float64, weights []float64, ranks int) []int {
	total := 0.0
	for _, c := range costs {
		total += c
	}
	wsum := 0.0
	for _, w := range weights {
		wsum += w
	}
	// thresholds[r] is the cost coordinate where rank r's segment ends.
	thresholds := make([]float64, ranks)
	acc := 0.0
	for r := 0; r < ranks; r++ {
		if wsum > 0 {
			acc += weights[r] / wsum * total
		} else {
			acc += total / float64(ranks)
		}
		thresholds[r] = acc
	}
	thresholds[ranks-1] = total + 1 // absorb rounding at the top end

	owner := make([]int, len(costs))
	cum := 0.0
	r := 0
	for i, c := range costs {
		mid := cum + 0.5*c
		for r < ranks-1 && mid >= thresholds[r] {
			r++
		}
		owner[i] = r
		cum += c
	}
	return owner
}

// validate normalises and sanity-checks the options.
func (o *Options) validate() error {
	if o.Ranks < 1 {
		return fmt.Errorf("damr: need >= 1 rank, got %d", o.Ranks)
	}
	if o.ZoneRate <= 0 {
		o.ZoneRate = 16e6
	}
	if len(o.RankRates) > 0 && len(o.RankRates) != o.Ranks {
		return fmt.Errorf("damr: %d rank rates for %d ranks", len(o.RankRates), o.Ranks)
	}
	for i, r := range o.RankRates {
		if r <= 0 {
			return fmt.Errorf("damr: rank %d rate %v must be positive", i, r)
		}
	}
	if o.WeightedPartition && len(o.RankRates) == 0 {
		return fmt.Errorf("damr: WeightedPartition requires RankRates")
	}
	if o.LevelCostFactor <= 0 {
		o.LevelCostFactor = 1
	}
	if o.Fault != nil {
		if o.CheckpointEvery <= 0 {
			return fmt.Errorf("damr: fault injection requires CheckpointEvery > 0")
		}
		if o.Ranks < 2 {
			return fmt.Errorf("damr: surviving a rank failure requires >= 2 ranks")
		}
		if o.Fault.Rank < 0 || o.Fault.Rank >= o.Ranks {
			return fmt.Errorf("damr: fault rank %d out of range [0,%d)", o.Fault.Rank, o.Ranks)
		}
		if o.Fault.AfterStep < 0 {
			return fmt.Errorf("damr: fault step %d negative", o.Fault.AfterStep)
		}
	}
	if o.Transport != nil {
		if o.Transport.RecvDeadline <= 0 {
			// Every receive must be bounded or a silenced peer would hang
			// the run; 2s is far above any masked-chaos repair latency.
			o.Transport.RecvDeadline = 2 * time.Second
		}
		if o.Transport.Chaos != nil && o.Transport.Chaos.Silence != nil && o.CheckpointEvery <= 0 {
			return fmt.Errorf("damr: a Silence chaos fault requires CheckpointEvery > 0 to recover")
		}
	}
	return nil
}
