package damr

import (
	"math"
	"testing"

	"rhsc/internal/amr"
	"rhsc/internal/cluster"
	"rhsc/internal/core"
	"rhsc/internal/testprob"
)

func blastConfig() amr.Config {
	cfg := amr.DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = 2
	cfg.RegridEvery = 4
	return cfg
}

// referenceRun advances a plain single-process amr tree by the same fixed
// number of CFL steps the distributed driver takes.
func referenceRun(t *testing.T, p *testprob.Problem, nbx, steps int, cfg amr.Config) *amr.Tree {
	t.Helper()
	tree, err := amr.NewTree(p, nbx, cfg)
	if err != nil {
		t.Fatalf("reference tree: %v", err)
	}
	for s := 0; s < steps; s++ {
		if err := tree.Step(tree.MaxDt()); err != nil {
			t.Fatalf("reference step %d: %v", s, err)
		}
	}
	return tree
}

// sampleL1 returns the max-abs and L1 density differences between two
// trees over a uniform probe lattice.
func sampleL1(a, b *amr.Tree, p *testprob.Problem, n int) (linf, l1 float64) {
	count := 0
	for j := 0; j < n; j++ {
		y := p.Y0 + (float64(j)+0.5)/float64(n)*(p.Y1-p.Y0)
		for i := 0; i < n; i++ {
			x := p.X0 + (float64(i)+0.5)/float64(n)*(p.X1-p.X0)
			d := math.Abs(a.SampleAt(x, y).Rho - b.SampleAt(x, y).Rho)
			if d > linf {
				linf = d
			}
			l1 += d
			count++
		}
	}
	return linf, l1 / float64(count)
}

// TestRankCountInvariance is the acceptance test of the subsystem: the
// 2-D blast on 1, 2, and 4 ranks must reproduce the single-rank amr run
// — total conserved mass and the density field — within 1e-12 (the
// design argues bit-exactness; the tolerance is the acceptance bar).
func TestRankCountInvariance(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	const nbx, steps = 4, 10

	ref := referenceRun(t, p, nbx, steps, cfg)

	for _, ranks := range []int{1, 2, 4} {
		res, err := Run(p, nbx, cfg, Options{
			Ranks: ranks,
			Mode:  cluster.Async,
			Net:   cluster.Infiniband(),
			Steps: steps,
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if res.Steps != steps {
			t.Errorf("ranks=%d: took %d steps, want %d", ranks, res.Steps, steps)
		}
		if res.Leaves != ref.NumLeaves() {
			t.Errorf("ranks=%d: %d leaves, reference %d", ranks, res.Leaves, ref.NumLeaves())
		}
		if res.MaxLevel != ref.MaxLevelInUse() {
			t.Errorf("ranks=%d: max level %d, reference %d", ranks, res.MaxLevel, ref.MaxLevelInUse())
		}
		if res.Tree.Steps() != ref.Steps() {
			t.Errorf("ranks=%d: tree steps %d, reference %d", ranks, res.Tree.Steps(), ref.Steps())
		}
		refMass := ref.TotalMass()
		if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
			t.Errorf("ranks=%d: mass %v vs reference %v (rel %.3e)", ranks, res.TotalMass, refMass, rel)
		}
		linf, l1 := sampleL1(res.Tree, ref, p, 64)
		if linf > 1e-12 || l1 > 1e-12 {
			t.Errorf("ranks=%d: density mismatch Linf=%.3e L1=%.3e", ranks, linf, l1)
		}
	}
}

// TestSod1DInvariance exercises the 1-D code path (binary tree, x-only
// halos) across ranks.
func TestSod1DInvariance(t *testing.T) {
	p := testprob.Sod
	cfg := amr.DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 16
	cfg.MaxLevel = 2
	cfg.RegridEvery = 3
	const nbx, steps = 4, 12

	ref := referenceRun(t, p, nbx, steps, cfg)
	for _, ranks := range []int{2, 3} {
		res, err := Run(p, nbx, cfg, Options{Ranks: ranks, Steps: steps})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		refMass := ref.TotalMass()
		if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
			t.Errorf("ranks=%d: mass %v vs reference %v", ranks, res.TotalMass, refMass)
		}
		if res.Leaves != ref.NumLeaves() {
			t.Errorf("ranks=%d: %d leaves, reference %d", ranks, res.Leaves, ref.NumLeaves())
		}
		maxd := 0.0
		for i := 0; i < 200; i++ {
			x := p.X0 + (float64(i)+0.5)/200*(p.X1-p.X0)
			d := math.Abs(res.Tree.SampleAt(x, 0).Rho - ref.SampleAt(x, 0).Rho)
			if d > maxd {
				maxd = d
			}
		}
		if maxd > 1e-12 {
			t.Errorf("ranks=%d: density Linf %.3e", ranks, maxd)
		}
	}
}

// TestMigrationOccurs confirms the blast run actually rebalances and
// moves blocks between owners as the refined region grows — otherwise
// the migration path is dead code and the invariance test proves less
// than it claims. Three ranks on a four-quadrant problem force the curve
// cuts off the quadrant boundaries, so growth must shift ownership (with
// four ranks the symmetric blast is a fixed point of the partition).
func TestMigrationOccurs(t *testing.T) {
	res, err := Run(testprob.Blast2D, 4, blastConfig(), Options{
		Ranks: 3, Steps: 48, Net: cluster.Infiniband(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regrids == 0 {
		t.Fatal("run never regridded")
	}
	if res.Rebalances == 0 {
		t.Error("no regrid changed the hierarchy — pick a more dynamic setup")
	}
	if res.MigratedBlocks == 0 {
		t.Error("no block changed owner across rebalances")
	}
	if res.MigratedBytes == 0 {
		t.Error("rebalances moved no data")
	}
	if res.Imbalance < 0 {
		t.Errorf("negative imbalance %v", res.Imbalance)
	}
}

// TestMortonKeys pins the curve ordering: children enumerate in N-order
// (Morton order) and keys are unique and properly nested.
func TestMortonKeys(t *testing.T) {
	// 2-D: the four children of (0,0) at level 1, in child-array order
	// (cy*2+cx), must be strictly increasing on the curve.
	prev := uint64(0)
	for c, ref := range []amr.BlockRef{
		{Level: 1, Bi: 0, Bj: 0}, {Level: 1, Bi: 1, Bj: 0},
		{Level: 1, Bi: 0, Bj: 1}, {Level: 1, Bi: 1, Bj: 1},
	} {
		k := mortonKey(ref, 2, 2)
		if c > 0 && k <= prev {
			t.Errorf("child %d key %d not increasing (prev %d)", c, k, prev)
		}
		prev = k
	}
	// A coarse block sorts at its first descendant's position.
	if mortonKey(amr.BlockRef{Level: 0, Bi: 1, Bj: 0}, 2, 2) !=
		mortonKey(amr.BlockRef{Level: 2, Bi: 4, Bj: 0}, 2, 2) {
		t.Error("coarse block does not anchor at its lower-left descendant")
	}
	// Distinct sibling keys in 1-D too.
	if mortonKey(amr.BlockRef{Level: 1, Bi: 0, Bj: 0}, 3, 1) ==
		mortonKey(amr.BlockRef{Level: 1, Bi: 1, Bj: 0}, 3, 1) {
		t.Error("1-D sibling keys collide")
	}
}

// TestPartitionCurve pins the midpoint splitting rule: contiguity,
// monotonicity, weighting, and graceful behaviour with more ranks than
// blocks.
func TestPartitionCurve(t *testing.T) {
	owner := partitionCurve([]float64{1, 1, 1, 1}, nil, 2)
	want := []int{0, 0, 1, 1}
	for i := range owner {
		if owner[i] != want[i] {
			t.Fatalf("even split: got %v want %v", owner, want)
		}
	}
	// A 3:1 weighted two-rank split of four equal blocks gives rank 0
	// three blocks.
	owner = partitionCurve([]float64{1, 1, 1, 1}, []float64{3, 1}, 2)
	want = []int{0, 0, 0, 1}
	for i := range owner {
		if owner[i] != want[i] {
			t.Fatalf("weighted split: got %v want %v", owner, want)
		}
	}
	// Monotone non-decreasing owners (contiguous segments) on uneven
	// costs.
	owner = partitionCurve([]float64{5, 1, 1, 1, 5, 1}, nil, 3)
	for i := 1; i < len(owner); i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("owners not contiguous: %v", owner)
		}
	}
	// More ranks than blocks: no panic, owners valid, some ranks empty.
	owner = partitionCurve([]float64{1, 1}, nil, 5)
	for _, r := range owner {
		if r < 0 || r >= 5 {
			t.Fatalf("owner out of range: %v", owner)
		}
	}
}

// TestWeightedPartitionRuns drives the hetero-style path end to end: a
// fast rank and a slow rank, curve split by throughput.
func TestWeightedPartitionRuns(t *testing.T) {
	res, err := Run(testprob.Blast2D, 4, blastConfig(), Options{
		Ranks:             2,
		RankRates:         []float64{48e6, 16e6},
		WeightedPartition: true,
		Steps:             4,
		Net:               cluster.GigE(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceRun(t, testprob.Blast2D, 4, 4, blastConfig())
	if rel := math.Abs(res.TotalMass-ref.TotalMass()) / ref.TotalMass(); rel > 1e-12 {
		t.Errorf("weighted run mass off by %.3e", rel)
	}
	if res.VirtualTime <= 0 {
		t.Errorf("virtual clock not charged: %v", res.VirtualTime)
	}
}

// TestOptionsValidation covers the error paths.
func TestOptionsValidation(t *testing.T) {
	cfg := blastConfig()
	if _, err := Run(testprob.Blast2D, 4, cfg, Options{Ranks: 0}); err == nil {
		t.Error("accepted zero ranks")
	}
	if _, err := Run(testprob.Blast2D, 4, cfg, Options{Ranks: 2, RankRates: []float64{1}}); err == nil {
		t.Error("accepted mismatched RankRates")
	}
	if _, err := Run(testprob.Blast2D, 4, cfg, Options{Ranks: 2, WeightedPartition: true}); err == nil {
		t.Error("accepted WeightedPartition without RankRates")
	}
	if _, err := Run(testprob.Blast2D, 4, cfg, Options{Ranks: 2, RankRates: []float64{1, -1}}); err == nil {
		t.Error("accepted negative rank rate")
	}
}
