package damr

import (
	"math"
	"testing"

	"rhsc/internal/cluster"
	"rhsc/internal/testprob"
)

// TestFaultRankFailureRecovery is the acceptance test of the recovery
// protocol: a rank dies mid-run, the survivors restore the latest buddy
// checkpoint, re-partition the Morton curve among themselves, replay,
// and the final solution matches the fault-free reference to round-off.
func TestFaultRankFailureRecovery(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	const nbx, steps = 4, 12

	ref := referenceRun(t, p, nbx, steps, cfg)
	res, err := Run(p, nbx, cfg, Options{
		Ranks:           3,
		Net:             cluster.Infiniband(),
		Steps:           steps,
		CheckpointEvery: 4,
		Fault:           &RankFault{Rank: 1, AfterStep: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", res.Recoveries)
	}
	if res.Survivors != 2 {
		t.Errorf("Survivors = %d, want 2", res.Survivors)
	}
	// Checkpoint at step 4, death detected at step 6: two steps replayed.
	if res.RecomputedSteps != 2 {
		t.Errorf("RecomputedSteps = %d, want 2", res.RecomputedSteps)
	}
	if res.Checkpoints < 3 || res.CheckpointBytes <= 0 || res.CheckpointVirtual <= 0 {
		t.Errorf("checkpoint accounting: n=%d bytes=%d virtual=%v",
			res.Checkpoints, res.CheckpointBytes, res.CheckpointVirtual)
	}
	if res.RecoveryVirtual <= 0 || res.RecoveryReal <= 0 {
		t.Errorf("recovery accounting: virtual=%v real=%v", res.RecoveryVirtual, res.RecoveryReal)
	}
	if res.Steps != steps {
		t.Errorf("Steps = %d, want %d", res.Steps, steps)
	}

	if res.Leaves != ref.NumLeaves() {
		t.Errorf("%d leaves, reference %d", res.Leaves, ref.NumLeaves())
	}
	refMass := ref.TotalMass()
	if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
		t.Errorf("mass %v vs reference %v (rel %.3e)", res.TotalMass, refMass, rel)
	}
	linf, l1 := sampleL1(res.Tree, ref, p, 64)
	if linf > 1e-12 || l1 > 1e-12 {
		t.Errorf("faulted run diverged from reference: Linf=%.3e L1=%.3e", linf, l1)
	}
}

// TestFaultRankZeroFailure kills the root: detection must survive the
// dead collective root, and the final gather must move to the lowest
// surviving rank.
func TestFaultRankZeroFailure(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	const nbx, steps = 4, 8

	ref := referenceRun(t, p, nbx, steps, cfg)
	res, err := Run(p, nbx, cfg, Options{
		Ranks:           3,
		Net:             cluster.GigE(),
		Steps:           steps,
		CheckpointEvery: 2,
		Fault:           &RankFault{Rank: 0, AfterStep: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 || res.Survivors != 2 {
		t.Fatalf("recoveries=%d survivors=%d", res.Recoveries, res.Survivors)
	}
	refMass := ref.TotalMass()
	if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
		t.Errorf("mass off by %.3e after root death", rel)
	}
	linf, _ := sampleL1(res.Tree, ref, p, 48)
	if linf > 1e-12 {
		t.Errorf("density Linf %.3e after root death", linf)
	}
}

// TestFaultAcrossRegrid places the failure window across a regrid, so
// the replay must redo the regrid (and any migration) deterministically.
func TestFaultAcrossRegrid(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig() // RegridEvery = 4
	const nbx, steps = 4, 10

	ref := referenceRun(t, p, nbx, steps, cfg)
	res, err := Run(p, nbx, cfg, Options{
		Ranks:           2,
		Net:             cluster.Infiniband(),
		Steps:           steps,
		// Checkpoint at step 6, death detected at step 8 — right after
		// the regrid that fires on step 8 — so the replayed window
		// re-executes that regrid on the survivor partition.
		CheckpointEvery: 3,
		Fault:           &RankFault{Rank: 1, AfterStep: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", res.Recoveries)
	}
	if res.RecomputedSteps != 2 {
		t.Errorf("RecomputedSteps = %d, want 2", res.RecomputedSteps)
	}
	linf, l1 := sampleL1(res.Tree, ref, p, 64)
	if linf > 1e-12 || l1 > 1e-12 {
		t.Errorf("replay across regrid diverged: Linf=%.3e L1=%.3e", linf, l1)
	}
}

// TestFaultFreeCheckpointingInvariant: checkpointing alone must not
// perturb the run — same physics as the reference, overhead accounted.
func TestFaultFreeCheckpointingInvariant(t *testing.T) {
	p := testprob.Blast2D
	cfg := blastConfig()
	const nbx, steps = 4, 8

	ref := referenceRun(t, p, nbx, steps, cfg)
	res, err := Run(p, nbx, cfg, Options{
		Ranks:           3,
		Net:             cluster.Infiniband(),
		Steps:           steps,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 0 || res.Survivors != 3 {
		t.Fatalf("phantom recovery: %+v", res)
	}
	if res.Checkpoints != 4 { // steps 0, 2, 4, 6
		t.Errorf("Checkpoints = %d, want 4", res.Checkpoints)
	}
	refMass := ref.TotalMass()
	if rel := math.Abs(res.TotalMass-refMass) / refMass; rel > 1e-12 {
		t.Errorf("checkpointing perturbed the run: rel mass %.3e", rel)
	}
	linf, _ := sampleL1(res.Tree, ref, p, 48)
	if linf > 1e-12 {
		t.Errorf("checkpointing perturbed the density: Linf %.3e", linf)
	}
}

// TestFaultOptionsValidation covers the resilience-specific error paths.
func TestFaultOptionsValidation(t *testing.T) {
	cfg := blastConfig()
	fault := &RankFault{Rank: 0, AfterStep: 1}
	if _, err := Run(testprob.Blast2D, 4, cfg, Options{
		Ranks: 2, Steps: 2, Fault: fault,
	}); err == nil {
		t.Error("accepted fault injection without checkpointing")
	}
	if _, err := Run(testprob.Blast2D, 4, cfg, Options{
		Ranks: 1, Steps: 2, CheckpointEvery: 1, Fault: fault,
	}); err == nil {
		t.Error("accepted single-rank fault injection")
	}
	if _, err := Run(testprob.Blast2D, 4, cfg, Options{
		Ranks: 2, Steps: 2, CheckpointEvery: 1, Fault: &RankFault{Rank: 5},
	}); err == nil {
		t.Error("accepted out-of-range fault rank")
	}
	if _, err := Run(testprob.Blast2D, 4, cfg, Options{
		Ranks: 2, Steps: 2, CheckpointEvery: 1, Fault: &RankFault{Rank: 0, AfterStep: -1},
	}); err == nil {
		t.Error("accepted negative fault step")
	}
}
