package damr

import (
	"math"
	"testing"

	"rhsc/internal/amr"
	"rhsc/internal/cluster"
	"rhsc/internal/testprob"
)

// measureStepAllocs drives persistent rank workers through warmed
// lockstep steps and returns the steady-state allocations per step.
//
// testing.AllocsPerRun reads the global allocation counter, so the rank
// goroutines are persistent workers driven over channels — a goroutine
// spawn per measured run would be counted.
func measureStepAllocs(t *testing.T, cfg amr.Config) float64 {
	t.Helper()
	p := testprob.Blast2D
	const nbx, ranks = 4, 2
	opts := Options{Ranks: ranks, Net: cluster.Infiniband(), Steps: 1}
	if err := opts.validate(); err != nil {
		t.Fatal(err)
	}
	world := cluster.NewWorld(ranks)
	rs := make([]*rankRun, ranks)
	for rank := 0; rank < ranks; rank++ {
		r, err := newRankRun(world.Comm(rank), p, nbx, cfg, &opts)
		if err != nil {
			t.Fatal(err)
		}
		rs[rank] = r
	}

	starts := make([]chan float64, ranks)
	done := make(chan struct{}, ranks)
	for i, r := range rs {
		starts[i] = make(chan float64)
		go func(r *rankRun, start chan float64) {
			for dt := range start {
				if err := r.step(dt); err != nil {
					t.Errorf("rank %d step: %v", r.rank, err)
				}
				done <- struct{}{}
			}
		}(r, starts[i])
	}
	stepAll := func(dt float64) {
		for _, ch := range starts {
			ch <- dt
		}
		for range rs {
			<-done
		}
	}
	defer func() {
		for _, ch := range starts {
			close(ch)
		}
	}()

	// A fixed conservative dt keeps the measured loop clear of the
	// allocating dt collective while staying CFL-stable throughout.
	dt := math.Inf(1)
	for _, r := range rs {
		if d := r.t.MaxDtOf(r.ep.mine); d < dt {
			dt = d
		}
	}
	dt /= 2

	for i := 0; i < 3; i++ { // warm the scratch pools and halo buffers
		stepAll(dt)
	}
	return testing.AllocsPerRun(5, func() { stepAll(dt) })
}

// TestStepZeroAllocs pins the distributed pooling invariant: once the
// epoch's halo send buffers are derived and the solvers' scratch pools
// are warm, a lockstep step — stage advances, packed halo exchanges on
// the pooled double buffers, combine, end-of-step sync with the armed
// CFL reduction — performs zero heap allocations across both ranks.
// The fail-safe case adds per-stage detection and the always-on packed
// mask exchange, which must stay allocation-free while no cell is
// flagged.
//
// The dt collective (FTAllReduceMin) and the regrid/checkpoint phases
// are outside this scope: they run at most once per step or per epoch
// and inherently build survivor-set payloads.
func TestStepZeroAllocs(t *testing.T) {
	t.Run("plain", func(t *testing.T) {
		if allocs := measureStepAllocs(t, blastConfig()); allocs != 0 {
			t.Errorf("steady-state distributed step allocates %.1f times, want 0", allocs)
		}
	})
	t.Run("failsafe", func(t *testing.T) {
		cfg := blastConfig()
		cfg.Core.FailSafe = true
		if allocs := measureStepAllocs(t, cfg); allocs != 0 {
			t.Errorf("steady-state fail-safe step allocates %.1f times, want 0", allocs)
		}
	})
}
