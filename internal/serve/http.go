package serve

import (
	"encoding/json"
	"net/http"

	"rhsc/internal/hetero"
	"rhsc/internal/metrics"
)

// NewMux exposes the server over a JSON HTTP API:
//
//	POST /v1/jobs            submit a JobSpec; 202 queued, 400 invalid,
//	                         429 rejected by admission control
//	GET  /v1/jobs            list every known job
//	GET  /v1/jobs/{id}       one job's status
//	GET  /v1/jobs/{id}/watch progress stream, one JSON object per line
//	                         (application/x-ndjson), closing after the
//	                         terminal event
//	GET  /v1/jobs/{id}/result the finished job's CSV deliverable
//	GET  /v1/metrics         serving counters (metrics.ServeSnapshot)
//	GET  /v1/fleet           routed-fleet health (per-device scores and
//	                         drain states, equivalent capacity, router
//	                         counters); 404 without a -fleet
func NewMux(s *Server) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		st, err := s.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		code := http.StatusAccepted
		if st.State == RejectedState {
			code = http.StatusTooManyRequests
		}
		writeJSON(w, code, st)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/watch", func(w http.ResponseWriter, r *http.Request) {
		ch, cancel, ok := s.Watch(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		defer cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for {
			select {
			case st, open := <-ch:
				if !open {
					return
				}
				if enc.Encode(st) != nil {
					return // client went away
				}
				if flusher != nil {
					flusher.Flush()
				}
			case <-r.Context().Done():
				return
			}
		}
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, ok := s.Result(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no result (job unknown or not done)")
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		w.Write(res)
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		// One flat JSON object: serving counters plus durable_*- and
		// net_*-prefixed counters, so map[string]int64 consumers keep
		// working.
		writeJSON(w, http.StatusOK, struct {
			metrics.ServeSnapshot
			metrics.DurableSnapshot
			metrics.TransportSnapshot
		}{s.Metrics(), s.DurableMetrics(), s.NetMetrics()})
	})

	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		fp, ok := s.cfg.Placer.(*FleetPlacer)
		if !ok || fp == nil {
			httpError(w, http.StatusNotFound, "no routed fleet configured")
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Devices  []hetero.DeviceHealth  `json:"devices"`
			Capacity float64                `json:"equivalent_capacity"`
			Counters metrics.RouterSnapshot `json:"counters"`
		}{fp.R.HealthReport(), fp.R.EquivalentCapacity(), fp.R.C.Snapshot()})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
