package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (Status, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusTooManyRequests {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func TestHTTPSubmitWatchResult(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	st, code := postJob(t, ts, JobSpec{Problem: "sod", N: 64, MaxSteps: 10, ReportEvery: 2})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if st.ID == "" {
		t.Fatal("no job id returned")
	}

	// The watch stream is JSON lines ending with a terminal event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	var last Status
	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad watch line %q: %v", sc.Text(), err)
		}
		events++
	}
	if events == 0 {
		t.Fatal("watch delivered no events")
	}
	if last.State != Done {
		t.Fatalf("last watch event state %q, want done", last.State)
	}

	// Status endpoint agrees.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got Status
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != Done || got.Fingerprint == "" {
		t.Fatalf("status %+v, want done with fingerprint", got)
	}

	// Result is the CSV profile.
	resp3, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var csv bytes.Buffer
	csv.ReadFrom(resp3.Body)
	if resp3.StatusCode != http.StatusOK || !strings.HasPrefix(csv.String(), "x,") {
		t.Fatalf("result status %d body %.40q", resp3.StatusCode, csv.String())
	}

	// List knows the job; metrics counted it.
	resp4, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var list []Status
	if err := json.NewDecoder(resp4.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}
	resp5, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp5.Body.Close()
	var m map[string]int64
	if err := json.NewDecoder(resp5.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["accepted"] != 1 || m["completed"] != 1 {
		t.Fatalf("metrics %+v", m)
	}
	// The durability counters ride in the same flat object.
	if _, ok := m["durable_commits"]; !ok {
		t.Fatalf("metrics missing durable counters: %+v", m)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	s := New(Config{Workers: 1, Quotas: map[string]Quota{"t": {MaxActive: 1}}})
	defer s.Close()
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	// Invalid spec: 400.
	if _, code := postJob(t, ts, JobSpec{Problem: "no-such"}); code != http.StatusBadRequest {
		t.Fatalf("invalid spec status %d, want 400", code)
	}
	// Malformed body: 400.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d, want 400", resp.StatusCode)
	}
	// Admission rejection: 429 with the reason.
	long := JobSpec{Problem: "sod", N: 256, MaxSteps: 400, TEnd: 10, Tenant: "t"}
	if _, code := postJob(t, ts, long); code != http.StatusAccepted {
		t.Fatalf("first job status %d, want 202", code)
	}
	st, code := postJob(t, ts, long)
	if code != http.StatusTooManyRequests || st.State != RejectedState {
		t.Fatalf("quota-violating job status %d state %q, want 429 rejected", code, st.State)
	}
	// Unknown job: 404.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/watch", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}
