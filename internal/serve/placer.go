package serve

import (
	"sync/atomic"

	"rhsc/internal/hetero"
)

// Placer is the serve layer's placement hook: instead of treating the
// worker pool as flat, anonymous capacity, the server asks the placer
// for a lease before each job segment runs. A placer that tracks device
// health (FleetPlacer over hetero.Router) therefore steers jobs away
// from degraded or drained devices mid-stream — a job that parks on a
// sick device resumes on a healthy one, bit-exactly.
//
// Acquire may refuse (no routed capacity in rotation); the server then
// runs the segment on unrouted host capacity, so placement can only
// improve scheduling, never block it.
type Placer interface {
	Acquire(cost int64) (Lease, bool)
}

// Lease is one granted placement. Release must be called exactly once
// when the segment ends; failed feeds the placer's health model (a
// worker panic or numerical failure counts against the device that
// hosted it, a clean park or completion counts for it).
type Lease interface {
	Device() string
	Release(failed bool)
}

// FleetPlacer adapts the hetero router's lease mode to the serve
// placement hook: each job segment lands on the in-rotation device with
// the least capacity-normalised backlog, failed segments fault the
// device's health score (draining it if it keeps failing), and probing
// devices win token-weight trial segments on their way back into
// rotation.
type FleetPlacer struct {
	R *hetero.Router
}

// NewFleetPlacer routes placements across the given devices with the
// default health model.
func NewFleetPlacer(devices ...*hetero.Device) *FleetPlacer {
	return &FleetPlacer{R: hetero.NewRouter(hetero.HealthConfig{}, devices...)}
}

// Acquire implements Placer.
func (p *FleetPlacer) Acquire(cost int64) (Lease, bool) {
	i, ok := p.R.Lease(cost)
	if !ok {
		return nil, false
	}
	return &fleetLease{p: p, dev: i, cost: cost}, true
}

// fleetLease is one routed placement; Release is idempotent so a panic
// path and a normal path cannot double-credit the router.
type fleetLease struct {
	p    *FleetPlacer
	dev  int
	cost int64
	done atomic.Bool
}

// Device implements Lease.
func (l *fleetLease) Device() string { return l.p.R.DeviceName(l.dev) }

// Release implements Lease.
func (l *fleetLease) Release(failed bool) {
	if l.done.CompareAndSwap(false, true) {
		l.p.R.Release(l.dev, l.cost, failed)
	}
}
