package serve

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// quickSpec is a small serial job that finishes in a few milliseconds.
func quickSpec() JobSpec {
	return JobSpec{Problem: "sod", N: 64, MaxSteps: 8, ReportEvery: 2}
}

// longSpec is a serial job with enough steps to observe it running:
// TEnd is set far beyond sod's canonical 0.4 so the step budget binds.
func longSpec() JobSpec {
	return JobSpec{Problem: "sod", N: 256, MaxSteps: 400, TEnd: 10, ReportEvery: 4}
}

// waitFor polls until cond() or the deadline; the test fails on timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	st, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Queued {
		t.Fatalf("initial state %q, want queued", st.State)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done {
		t.Fatalf("final state %q (%s), want done", final.State, final.Reason)
	}
	if final.Step != 8 {
		t.Fatalf("final step %d, want 8", final.Step)
	}
	if final.Fingerprint == "" {
		t.Fatal("done job has no fingerprint")
	}
	res, ok := s.Result(st.ID)
	if !ok || len(res) == 0 {
		t.Fatal("done job has no result")
	}
	if !strings.HasPrefix(string(res), "x,") {
		t.Fatalf("result is not a CSV profile: %.40q", res)
	}
	m := s.Metrics()
	if m.Accepted != 1 || m.Completed != 1 || m.Failed != 0 {
		t.Fatalf("metrics %+v, want accepted=1 completed=1 failed=0", m)
	}
}

func TestValidationRejectsBadSpecs(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	bad := []JobSpec{
		{Problem: "no-such-problem"},
		{Problem: "sod", N: 100000},
		{Problem: "sod", Recon: "nope"},
		{Problem: "sod", MaxSteps: -1},
		{Problem: "kh2d", AMR: true, Inject: &InjectSpec{AtStep: 1}},
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted, want validation error", spec)
		}
	}
	if m := s.Metrics(); m.Accepted != 0 {
		t.Fatalf("invalid specs consumed admission: %+v", m)
	}
}

func TestTenantConcurrencyQuota(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Quotas:  map[string]Quota{"alice": {MaxActive: 1}},
	})
	defer s.Close()
	spec := longSpec()
	spec.Tenant = "alice"
	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != RejectedState {
		t.Fatalf("second job state %q, want rejected", st2.State)
	}
	if !strings.Contains(st2.Reason, "concurrency") {
		t.Fatalf("rejection reason %q", st2.Reason)
	}
	// Another tenant is unaffected.
	other := quickSpec()
	other.Tenant = "bob"
	st3, err := s.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != Queued {
		t.Fatalf("other tenant state %q, want queued", st3.State)
	}
	if final, _ := s.Wait(st1.ID); final.State != Done {
		t.Fatalf("first job ended %q (%s)", final.State, final.Reason)
	}
	// Quota released after completion: alice can submit again.
	st4, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st4.State != Queued {
		t.Fatalf("post-release state %q, want queued", st4.State)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", m.Rejected)
	}
}

func TestTenantBudgetQuota(t *testing.T) {
	// No step cap: the run is CFL-bounded, so actual usage lands below
	// the worst-case admission estimate and reconciliation has teeth.
	spec := JobSpec{Problem: "sod", N: 64}
	cost, err := spec.Cost()
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers: 1,
		Quotas:  map[string]Quota{"capped": {Budget: 2 * cost}},
	})
	defer s.Close()
	spec.Tenant = "capped"
	st1, err := s.Submit(spec) // reserves cost
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(spec) // reserves the rest of the budget
	if err != nil {
		t.Fatal(err)
	}
	st3, err := s.Submit(spec) // 2×cost reserved + cost > budget
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != Queued || st2.State != Queued {
		t.Fatalf("in-budget jobs %q/%q, want queued", st1.State, st2.State)
	}
	if st3.State != RejectedState || !strings.Contains(st3.Reason, "budget") {
		t.Fatalf("over-budget job %q (%s), want budget rejection", st3.State, st3.Reason)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		if final, _ := s.Wait(id); final.State != Done {
			t.Fatalf("job %s ended %q (%s)", id, final.State, final.Reason)
		}
	}
	// Reservations reconciled to actual (smaller) usage; the budget is
	// a lifetime cap, so the spend persists after completion.
	_, reserved, used := s.TenantUsage("capped")
	if reserved != 0 {
		t.Fatalf("reservation not released: %d", reserved)
	}
	if used <= 0 || used >= 2*cost {
		t.Fatalf("reconciled usage %d, want within (0, %d)", used, 2*cost)
	}
	st4, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st4.State != RejectedState {
		t.Fatalf("post-spend job %q, want rejected (lifetime budget)", st4.State)
	}
}

func TestQueueCapacityRejects(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueue: 1})
	defer s.Close()
	st1, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job to start", func() bool {
		st, _ := s.Get(st1.ID)
		return st.State == Running
	})
	st2, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != Queued {
		t.Fatalf("second job %q, want queued", st2.State)
	}
	st3, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != RejectedState || !strings.Contains(st3.Reason, "queue full") {
		t.Fatalf("third job %q (%s), want queue-full rejection", st3.State, st3.Reason)
	}
}

func TestPriorityPreemption(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	low, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "low-priority job to make progress", func() bool {
		st, _ := s.Get(low.ID)
		return st.State == Running && st.Step >= 4
	})
	hiSpec := quickSpec()
	hiSpec.Priority = 10
	hi, err := s.Submit(hiSpec)
	if err != nil {
		t.Fatal(err)
	}
	hiFinal, err := s.Wait(hi.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hiFinal.State != Done {
		t.Fatalf("high-priority job ended %q (%s)", hiFinal.State, hiFinal.Reason)
	}
	lowFinal, err := s.Wait(low.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lowFinal.State != Done {
		t.Fatalf("low-priority job ended %q (%s)", lowFinal.State, lowFinal.Reason)
	}
	if lowFinal.Preemptions < 1 {
		t.Fatalf("low-priority job was never preempted")
	}
	if !hiFinal.Finished.Before(lowFinal.Finished) {
		t.Fatalf("high-priority finished %v, after low-priority %v",
			hiFinal.Finished, lowFinal.Finished)
	}
	if lowFinal.Step != 400 {
		t.Fatalf("resumed job committed %d steps, want 400", lowFinal.Step)
	}
	m := s.Metrics()
	if m.Preempted < 1 || m.Resumed < 1 {
		t.Fatalf("metrics %+v, want preempted>=1 resumed>=1", m)
	}
	if m.Parked != 0 || m.QueueDepth != 0 {
		t.Fatalf("gauges not drained: %+v", m)
	}
}

func TestEqualPriorityDoesNotPreempt(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	first, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job to start", func() bool {
		st, _ := s.Get(first.ID)
		return st.State == Running
	})
	second, err := s.Submit(longSpec()) // same priority: must wait its turn
	if err != nil {
		t.Fatal(err)
	}
	if final, _ := s.Wait(first.ID); final.Preemptions != 0 {
		t.Fatalf("equal-priority arrival preempted the running job")
	}
	if final, _ := s.Wait(second.ID); final.State != Done {
		t.Fatalf("second job ended %q (%s)", final.State, final.Reason)
	}
}

func TestWorkerPanicAbsorbed(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := quickSpec()
	spec.PanicAtStep = 3
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Failed || !strings.Contains(final.Reason, "panic") {
		t.Fatalf("job ended %q (%s), want failed with panic reason", final.State, final.Reason)
	}
	// The worker survived: the next job completes normally.
	st2, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if final2, _ := s.Wait(st2.ID); final2.State != Done {
		t.Fatalf("job after panic ended %q (%s)", final2.State, final2.Reason)
	}
	m := s.Metrics()
	if m.Failed != 1 || m.Completed != 1 {
		t.Fatalf("metrics %+v, want failed=1 completed=1", m)
	}
}

func TestInjectedFaultAbsorbedByGuard(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := JobSpec{Problem: "sod", N: 64, MaxSteps: 12,
		Inject: &InjectSpec{AtStep: 5, Count: 1}}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done {
		t.Fatalf("faulty job ended %q (%s), want done", final.State, final.Reason)
	}
	if final.Injected < 1 || final.Retries < 1 {
		t.Fatalf("fault counters %+v, want injected>=1 retries>=1", final)
	}
}

func TestDrainSpoolsAndLoadSpoolResumes(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1})
	running, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to make progress", func() bool {
		st, _ := s.Get(running.ID)
		return st.State == Running && st.Step >= 4
	})
	if _, err := s.Submit(quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(dir); err != nil {
		t.Fatalf("drain: %v", err)
	}
	recs, _ := filepath.Glob(filepath.Join(dir, "*.dur"))
	if len(recs) != 2 {
		t.Fatalf("spooled %d durable records, want 2: %v", len(recs), recs)
	}
	if st, _ := s.Get(running.ID); st.State != Parked {
		t.Fatalf("drained running job state %q, want parked", st.State)
	}

	s2 := New(Config{Workers: 1})
	defer s2.Close()
	n, err := s2.LoadSpool(dir)
	if err != nil {
		t.Fatalf("load spool: %v", err)
	}
	if n != 2 {
		t.Fatalf("loaded %d jobs, want 2", n)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.dur")); len(left) != 0 {
		t.Fatalf("spool not consumed: %d records left", len(left))
	}
	for _, st := range s2.List() {
		final, err := s2.Wait(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != Done {
			t.Fatalf("spooled job %s ended %q (%s)", st.ID, final.State, final.Reason)
		}
		if final.Tenant != "default" {
			t.Fatalf("spooled job lost its tenant: %q", final.Tenant)
		}
	}
	// The resumed long job committed exactly its step budget in total.
	for _, st := range s2.List() {
		if st.Step == 400 {
			return
		}
	}
	t.Fatalf("no spooled job finished with 400 total steps: %+v", s2.List())
}

func TestSubmitAfterDrainRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	if err := s.Drain(""); err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != RejectedState || !strings.Contains(st.Reason, "draining") {
		t.Fatalf("post-drain submit %q (%s), want draining rejection", st.State, st.Reason)
	}
}
