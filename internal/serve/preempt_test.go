package serve

import (
	"testing"
)

// runQuiet completes one job on an uncontended server and returns its
// terminal status (fingerprint included).
func runQuiet(t *testing.T, spec JobSpec) Status {
	t.Helper()
	s := New(Config{Workers: 1})
	defer s.Close()
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done {
		t.Fatalf("quiet run ended %q (%s)", final.State, final.Reason)
	}
	return final
}

// runContested completes spec on a saturated one-worker server with a
// high-priority arrival forcing at least one checkpoint-preemption, and
// returns the victim's terminal status.
func runContested(t *testing.T, spec JobSpec) Status {
	t.Helper()
	s := New(Config{Workers: 1})
	defer s.Close()
	low, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim to make progress", func() bool {
		st, _ := s.Get(low.ID)
		return st.State == Running && st.Step >= 3
	})
	hi := JobSpec{Problem: "sod", N: 64, MaxSteps: 6, Priority: 100}
	hiSt, err := s.Submit(hi)
	if err != nil {
		t.Fatal(err)
	}
	if final, _ := s.Wait(hiSt.ID); final.State != Done {
		t.Fatalf("high-priority job ended %q (%s)", final.State, final.Reason)
	}
	final, err := s.Wait(low.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done {
		t.Fatalf("victim ended %q (%s)", final.State, final.Reason)
	}
	if final.Preemptions < 1 {
		t.Fatal("victim was never preempted; contested run proves nothing")
	}
	return final
}

// TestPreemptedSerialJobBitwiseIdentical is the serving-layer half of
// the preemption guarantee: a job that was checkpointed, parked and
// resumed finishes with exactly the fingerprint of an uncontested run.
func TestPreemptedSerialJobBitwiseIdentical(t *testing.T) {
	spec := JobSpec{Problem: "sod", N: 128, MaxSteps: 200, TEnd: 10, ReportEvery: 1}
	quiet := runQuiet(t, spec)
	contested := runContested(t, spec)
	if quiet.Fingerprint == "" || quiet.Fingerprint != contested.Fingerprint {
		t.Fatalf("preempted run fingerprint %s != quiet %s",
			contested.Fingerprint, quiet.Fingerprint)
	}
	if quiet.Step != contested.Step {
		t.Fatalf("step counts diverged: %d != %d", contested.Step, quiet.Step)
	}
}

// TestPreemptedAMRJobBitwiseIdentical forces the preemption across
// regrid boundaries (RegridEvery defaults to 4, the job runs 24 steps)
// and requires the resumed hierarchy to match the uncontested one bit
// for bit — structure, conserved and primitive fields alike.
func TestPreemptedAMRJobBitwiseIdentical(t *testing.T) {
	spec := JobSpec{Problem: "sod", N: 128, MaxSteps: 120, TEnd: 10, ReportEvery: 1,
		AMR: true, MaxLevel: 2, RootBlocks: 16}
	quiet := runQuiet(t, spec)
	contested := runContested(t, spec)
	if quiet.Fingerprint == "" || quiet.Fingerprint != contested.Fingerprint {
		t.Fatalf("preempted AMR run fingerprint %s != quiet %s",
			contested.Fingerprint, quiet.Fingerprint)
	}
}
