package serve

import (
	"strings"
	"testing"
	"time"
)

// TestJobTimeoutWatchdog runs a long job under a tiny wall-clock cap:
// the watchdog must cancel it between steps with the typed reason and
// count it, and the worker must survive to run the next job.
func TestJobTimeoutWatchdog(t *testing.T) {
	s := New(Config{Workers: 1, JobTimeout: 5 * time.Millisecond})
	defer s.Close()

	st, err := s.Submit(JobSpec{Problem: "sod", N: 512, MaxSteps: 100000, TEnd: 10, ReportEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Failed {
		t.Fatalf("state %q (%s), want failed", final.State, final.Reason)
	}
	if !strings.Contains(final.Reason, ErrJobTimeout.Error()) {
		t.Fatalf("reason %q does not carry the typed timeout", final.Reason)
	}
	m := s.Metrics()
	if m.TimedOut != 1 || m.Failed != 1 {
		t.Fatalf("TimedOut = %d, Failed = %d, want 1, 1", m.TimedOut, m.Failed)
	}

	// The pool keeps serving after a timeout.
	st2, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if final2, _ := s.Wait(st2.ID); final2.State != Done {
		t.Fatalf("follow-up job state %q (%s), want done", final2.State, final2.Reason)
	}
}

// TestJobTimeoutDisabled pins the default: no cap, long jobs run to
// their step budget untouched, and nothing is counted.
func TestJobTimeoutDisabled(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	st, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if final, _ := s.Wait(st.ID); final.State != Done {
		t.Fatalf("state %q (%s), want done", final.State, final.Reason)
	}
	if m := s.Metrics(); m.TimedOut != 0 {
		t.Fatalf("TimedOut = %d, want 0", m.TimedOut)
	}
}
