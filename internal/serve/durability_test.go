package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rhsc/internal/durable"
	"rhsc/internal/metrics"
)

// drainTwo stands up a server with one running (parked-with-snapshot)
// and one queued job, then drains it into dir through fsys.
func drainTwo(t *testing.T, fsys durable.FS, c *metrics.DurableCounters, dir string) error {
	t.Helper()
	s := New(Config{Workers: 1, SpoolFS: fsys, DurableCounters: c})
	running, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to make progress", func() bool {
		st, _ := s.Get(running.ID)
		return st.State == Running && st.Step >= 4
	})
	if _, err := s.Submit(quickSpec()); err != nil {
		t.Fatal(err)
	}
	return s.Drain(dir)
}

// TestLoadSpoolSkipsAndQuarantinesCorruptRecord is the satellite
// boot-robustness property: one rotten spool record must not wedge the
// boot — the good jobs load, the bad record moves to corrupt/ with a
// reason note, and the counters say so.
func TestLoadSpoolSkipsAndQuarantinesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := drainTwo(t, durable.OS, nil, dir); err != nil {
		t.Fatalf("drain: %v", err)
	}
	recs, _ := filepath.Glob(filepath.Join(dir, "*.dur"))
	if len(recs) != 2 {
		t.Fatalf("spooled %d records, want 2", len(recs))
	}

	// Rot a bit in the middle of the first record.
	raw, err := os.ReadFile(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(recs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var c metrics.DurableCounters
	s2 := New(Config{Workers: 1, DurableCounters: &c})
	defer s2.Close()
	n, err := s2.LoadSpool(dir)
	if n != 1 {
		t.Fatalf("loaded %d jobs, want 1 (the intact one)", n)
	}
	if !errors.Is(err, durable.ErrCorrupt) {
		t.Fatalf("load error %v, want to wrap ErrCorrupt", err)
	}
	q, _ := filepath.Glob(filepath.Join(dir, durable.QuarantineDir, "*.dur"))
	if len(q) != 1 {
		t.Fatalf("quarantined %d records, want 1", len(q))
	}
	if _, err := os.Stat(q[0] + ".reason"); err != nil {
		t.Fatalf("quarantined record has no reason note: %v", err)
	}
	snap := c.Snapshot()
	if snap.DetectedCorruptions < 1 || snap.Quarantined < 1 {
		t.Fatalf("counters %+v", snap)
	}
	// The surviving job runs to completion.
	for _, st := range s2.List() {
		if final, _ := s2.Wait(st.ID); final.State != Done {
			t.Fatalf("surviving job ended %q (%s)", final.State, final.Reason)
		}
	}
}

// TestLoadSpoolLegacyPairs pins the migration contract: pre-durable
// two-file spools still load, and an unparseable legacy meta is
// quarantined rather than fatal.
func TestLoadSpoolLegacyPairs(t *testing.T) {
	dir := t.TempDir()
	good := `{"id":"jlegacy","spec":{"problem":"sod","n":64,"max_steps":8},"has_snapshot":false}`
	if err := os.WriteFile(filepath.Join(dir, "jlegacy.json"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1})
	defer s.Close()
	n, err := s.LoadSpool(dir)
	if n != 1 {
		t.Fatalf("loaded %d legacy jobs, want 1", n)
	}
	if err == nil {
		t.Fatal("broken legacy meta reported no error")
	}
	if _, serr := os.Stat(filepath.Join(dir, durable.QuarantineDir, "broken.json")); serr != nil {
		t.Fatalf("broken legacy meta not quarantined: %v", serr)
	}
	if _, serr := os.Stat(filepath.Join(dir, "jlegacy.json")); !os.IsNotExist(serr) {
		t.Fatalf("consumed legacy meta still present: %v", serr)
	}
	for _, st := range s.List() {
		if final, _ := s.Wait(st.ID); final.State != Done {
			t.Fatalf("legacy job ended %q (%s)", final.State, final.Reason)
		}
	}
}

// TestDrainCrashMatrix crashes the spool filesystem at every mutating
// write point of a two-job drain, then boots a clean server on the
// directory: whatever survived must be fully valid — every loaded job
// re-admits and the loader never reports a torn record as loadable.
func TestDrainCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is a long test")
	}
	probe := durable.NewFaultFS(durable.OS, durable.Plan{})
	if err := drainTwo(t, probe, nil, t.TempDir()); err != nil {
		t.Fatalf("clean drain: %v", err)
	}
	total := probe.Ops()
	if total < 6 {
		t.Fatalf("drain issued only %d mutating ops", total)
	}

	for op := 1; op <= total; op++ {
		dir := t.TempDir()
		ffs := durable.NewFaultFS(durable.OS, durable.Plan{CrashAtOp: op, TornBytes: 3})
		drainErr := drainTwo(t, ffs, nil, dir)
		if !ffs.Crashed() {
			t.Fatalf("op %d: crash never fired (drain err %v)", op, drainErr)
		}
		if drainErr == nil {
			t.Fatalf("op %d: crashed drain reported success", op)
		}

		s2 := New(Config{Workers: 1})
		n, _ := s2.LoadSpool(dir)
		// Zero, one or two jobs may have committed before the crash;
		// every one that did must be genuinely runnable.
		if n < 0 || n > 2 {
			t.Fatalf("op %d: loaded %d jobs", op, n)
		}
		for _, st := range s2.List() {
			if final, _ := s2.Wait(st.ID); final.State != Done {
				t.Fatalf("op %d: recovered job %s ended %q (%s)",
					op, st.ID, final.State, final.Reason)
			}
		}
		s2.Close()
	}
}
