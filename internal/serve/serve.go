// Package serve is the simulation-as-a-service layer: a multi-tenant
// job server that runs catalogued simulations (quickstart 1-D problems
// through full AMR runs) to completion on a bounded worker pool.
//
// Scheduling model (see docs/SERVING.md):
//
//   - Admission control. Every job is validated and charged a
//     worst-case zone-update cost at submit time; jobs exceeding the
//     per-job ceiling, their tenant's budget or concurrency quota, or
//     the queue capacity are rejected immediately — the server never
//     accepts work it cannot eventually run.
//   - Priority queue. Admitted jobs wait in a strict-priority,
//     FIFO-within-class queue.
//   - Checkpoint-based preemption. When a higher-priority job arrives
//     and every worker is busy, the lowest-priority running job is
//     checkpointed through the exact (conserved + primitive) gob
//     machinery, parked back into the queue, and later resumed
//     round-off-exactly from its snapshot: preemption is invisible in
//     the final state, bit for bit.
//   - Fault isolation. Worker panics and unrecoverable numerical
//     failures are absorbed per job: the job fails, the daemon and
//     every other job keep running. Serial jobs run under the
//     resilience guard, so injected or organic numerical faults are
//     retried with halved steps and the dissipative fallback first.
//   - Graceful drain. Drain checkpoints every in-flight job into a
//     spool directory; a later LoadSpool re-admits them, resuming
//     parked work bit-exactly.
package serve

import (
	"bytes"
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rhsc"
	"rhsc/internal/durable"
	"rhsc/internal/metrics"
	"rhsc/internal/output"
)

// Quota bounds one tenant. Zero fields are unlimited.
type Quota struct {
	// MaxActive caps the tenant's in-flight jobs (queued + parked +
	// running).
	MaxActive int `json:"max_active,omitempty"`
	// Budget caps the tenant's lifetime zone-update spend: admission
	// reserves each job's worst-case cost estimate and reconciles to
	// actual usage when the job finishes.
	Budget int64 `json:"budget,omitempty"`
}

// Config sizes the server. Zero fields take the documented defaults.
type Config struct {
	// Workers is the pool size (default 2).
	Workers int
	// MaxQueue caps waiting jobs — queued plus parked (default 64).
	MaxQueue int
	// MaxJobCost rejects any single job whose worst-case cost estimate
	// exceeds it (0 = unlimited).
	MaxJobCost int64
	// DefaultQuota applies to tenants absent from Quotas.
	DefaultQuota Quota
	// Quotas maps tenant names to their quota.
	Quotas map[string]Quota
	// Counters, when non-nil, shares serving counters with the caller
	// (benchmark harness, metrics endpoint); otherwise the server owns
	// a private set.
	Counters *metrics.ServeCounters
	// Placer, when non-nil, routes each job segment onto fleet capacity
	// (FleetPlacer over the hetero router) instead of the flat worker
	// pool; when it refuses — every device drained or dead — the segment
	// falls back to unrouted host capacity. See placer.go.
	Placer Placer
	// SpoolFS is the filesystem the spool's durable store commits
	// through (default the real OS; tests inject durable.FaultFS).
	SpoolFS durable.FS
	// DurableCounters, when non-nil, shares durability counters
	// (commits, recoveries, quarantines) with the caller; otherwise the
	// server owns a private set.
	DurableCounters *metrics.DurableCounters
	// JobTimeout caps each job's cumulative *running* wall-clock time
	// (time parked or queued does not count). A job past the cap is
	// cancelled between steps with ErrJobTimeout and counted in the
	// TimedOut metric. 0 disables the watchdog.
	JobTimeout time.Duration
	// NetCounters, when non-nil, shares transport counters (reliable
	// fabric traffic, chaos faults, repairs) with the caller so they
	// surface on /v1/metrics; otherwise the server owns a private set.
	NetCounters *metrics.TransportCounters
}

// ErrJobTimeout is the typed cancellation cause of the per-job
// wall-clock watchdog; a timed-out job's Reason carries its text.
var ErrJobTimeout = errors.New("serve: job exceeded its wall-clock timeout")

// tenantAcct tracks one tenant's quota consumption.
type tenantAcct struct {
	quota    Quota
	active   int   // queued + parked + running jobs
	reserved int64 // admission-reserved cost of active jobs
	used     int64 // actual zone updates of finished jobs
}

// Server is the job scheduler and worker pool. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	cfg Config
	// C is the serving counter set (shared or owned).
	C *metrics.ServeCounters
	// D is the durability counter set (shared or owned).
	D *metrics.DurableCounters
	// N is the transport counter set (shared or owned).
	N *metrics.TransportCounters

	mu        sync.Mutex
	cond      *sync.Cond
	queue     jobHeap
	jobs      map[string]*job
	running   map[*job]struct{}
	tenants   map[string]*tenantAcct
	seq       uint64
	ids       uint64
	stopping  bool
	drainErrs []error
	wg        sync.WaitGroup
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.SpoolFS == nil {
		cfg.SpoolFS = durable.OS
	}
	s := &Server{
		cfg:     cfg,
		C:       cfg.Counters,
		D:       cfg.DurableCounters,
		N:       cfg.NetCounters,
		jobs:    make(map[string]*job),
		running: make(map[*job]struct{}),
		tenants: make(map[string]*tenantAcct),
	}
	if s.C == nil {
		s.C = &metrics.ServeCounters{}
	}
	if s.D == nil {
		s.D = &metrics.DurableCounters{}
	}
	if s.N == nil {
		s.N = &metrics.TransportCounters{}
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers returns the pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Metrics snapshots the serving counters.
func (s *Server) Metrics() metrics.ServeSnapshot { return s.C.Snapshot() }

// DurableMetrics snapshots the durability counters (spool commits,
// recovered generations, detected corruptions, quarantined entries).
func (s *Server) DurableMetrics() metrics.DurableSnapshot { return s.D.Snapshot() }

// NetMetrics snapshots the transport counters (reliable-fabric traffic,
// injected chaos faults, repairs, typed failures).
func (s *Server) NetMetrics() metrics.TransportSnapshot { return s.N.Snapshot() }

// TenantUsage reports a tenant's quota consumption.
func (s *Server) TenantUsage(name string) (active int, reserved, used int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t.active, t.reserved, t.used
	}
	return 0, 0, 0
}

// tenantLocked returns (creating if needed) the accounting bucket.
func (s *Server) tenantLocked(name string) *tenantAcct {
	t, ok := s.tenants[name]
	if !ok {
		q := s.cfg.DefaultQuota
		if qq, ok := s.cfg.Quotas[name]; ok {
			q = qq
		}
		t = &tenantAcct{quota: q}
		s.tenants[name] = t
	}
	return t
}

// Submit runs admission control and either queues the job or records a
// rejection. The returned Status is the job's initial snapshot — state
// Queued, or RejectedState with Reason set. An error is returned only
// for invalid specs (the HTTP layer maps it to 400; rejections map to
// 429).
func (s *Server) Submit(spec JobSpec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	cost, err := spec.Cost()
	if err != nil {
		return Status{}, err
	}
	now := time.Now()

	s.mu.Lock()
	s.ids++
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d", s.ids),
		spec:      spec,
		seq:       s.seq,
		cost:      cost,
		state:     Queued,
		submitted: now,
		heapIdx:   -1,
	}
	s.jobs[j.id] = j

	reject := func(reason string) (Status, error) {
		j.state = RejectedState
		j.reason = reason
		j.finished = now
		s.C.Rejected.Add(1)
		s.mu.Unlock()
		return j.status(), nil
	}
	if s.stopping {
		return reject("server draining")
	}
	if s.cfg.MaxJobCost > 0 && cost > s.cfg.MaxJobCost {
		return reject(fmt.Sprintf("job cost %d exceeds per-job limit %d", cost, s.cfg.MaxJobCost))
	}
	ten := s.tenantLocked(spec.tenant())
	if ten.quota.MaxActive > 0 && ten.active >= ten.quota.MaxActive {
		return reject(fmt.Sprintf("tenant %q concurrency limit %d reached",
			spec.tenant(), ten.quota.MaxActive))
	}
	if ten.quota.Budget > 0 && ten.used+ten.reserved+cost > ten.quota.Budget {
		return reject(fmt.Sprintf("tenant %q budget exhausted (%d used + %d reserved + %d requested > %d)",
			spec.tenant(), ten.used, ten.reserved, cost, ten.quota.Budget))
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		return reject(fmt.Sprintf("queue full (%d waiting)", len(s.queue)))
	}

	ten.active++
	ten.reserved += cost
	heap.Push(&s.queue, j)
	s.C.Accepted.Add(1)
	s.C.QueueDepth.Store(int64(len(s.queue)))
	s.maybePreemptLocked(spec.Priority)
	s.cond.Signal()
	s.mu.Unlock()
	return j.status(), nil
}

// maybePreemptLocked flags the lowest-priority running job for
// checkpoint-preemption when the pool is saturated and a strictly
// higher-priority job just arrived. Among equal-priority victims the
// latest arrival yields (it has lost the least progress on average).
// Called with s.mu held.
func (s *Server) maybePreemptLocked(pri int) {
	if len(s.running) < s.cfg.Workers {
		return // an idle worker will pick the arrival up directly
	}
	var victim *job
	for j := range s.running {
		if j.spec.Priority >= pri {
			continue
		}
		if victim == nil || j.spec.Priority < victim.spec.Priority ||
			(j.spec.Priority == victim.spec.Priority && j.seq > victim.seq) {
			victim = j
		}
	}
	if victim != nil {
		victim.preempt.Store(true)
	}
}

// Get returns a job's status.
func (s *Server) Get(id string) (Status, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// List returns every known job's status in arrival order.
func (s *Server) List() []Status {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	sort.Slice(js, func(i, k int) bool { return js[i].seq < js[k].seq })
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// Watch subscribes to a job's progress stream. The channel delivers a
// Status per progress event and closes after the terminal one; call
// cancel when done early.
func (s *Server) Watch(id string) (<-chan Status, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	ch, cancel := j.subscribe()
	return ch, cancel, true
}

// Wait blocks until the job reaches a terminal state and returns it.
func (s *Server) Wait(id string) (Status, error) {
	ch, cancel, ok := s.Watch(id)
	if !ok {
		return Status{}, fmt.Errorf("serve: unknown job %q", id)
	}
	defer cancel()
	for range ch {
	}
	st, _ := s.Get(id)
	return st, nil
}

// Result returns a finished job's deliverable (CSV), or false when the
// job is unknown or not Done.
func (s *Server) Result(id string) ([]byte, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done || j.result == nil {
		return nil, false
	}
	return j.result, true
}

// --- worker pool --------------------------------------------------------

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopping {
			s.cond.Wait()
		}
		if s.stopping {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		s.running[j] = struct{}{}
		s.C.QueueDepth.Store(int64(len(s.queue)))
		s.C.BusyWorkers.Add(1)
		s.mu.Unlock()

		s.runJob(j)

		s.mu.Lock()
		delete(s.running, j)
		s.C.BusyWorkers.Add(-1)
		s.mu.Unlock()
	}
}

// runJob drives one job segment: fresh start or bit-exact resume, step
// loop with preemption checks, and the terminal transition. Worker
// panics are absorbed here — the job fails, the daemon survives.
func (s *Server) runJob(j *job) {
	// Placement: lease routed capacity for this segment. A failed
	// segment — panic or numerical error — faults the hosting device's
	// health; a clean park or completion credits it. Re-acquiring per
	// segment means a job parked on a device that has since drained
	// resumes somewhere healthy.
	var lease Lease
	if s.cfg.Placer != nil {
		if l, ok := s.cfg.Placer.Acquire(j.cost); ok {
			lease = l
		}
	}
	j.mu.Lock()
	if lease != nil {
		j.device = lease.Device()
	} else {
		j.device = ""
	}
	j.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			s.fail(j, fmt.Sprintf("worker panic absorbed: %v", r))
		}
		if lease != nil {
			j.mu.Lock()
			failed := j.state == Failed
			j.mu.Unlock()
			lease.Release(failed)
		}
	}()

	segStart := time.Now()
	j.mu.Lock()
	spec := j.spec
	snap := j.snapshot
	j.snapshot = nil
	resumed := snap != nil
	j.state = Running
	if j.started.IsZero() {
		j.started = segStart
	}
	stepBase := j.stepBase
	ranBase := j.ran
	j.mu.Unlock()
	if resumed {
		s.C.Parked.Add(-1)
		s.C.Resumed.Add(1)
	}

	var runner rhsc.JobRunner
	var err error
	if resumed {
		runner, err = rhsc.ResumeJobRunner(bytes.NewReader(snap), spec.options(), spec.AMR, spec.TEnd)
		if err == nil {
			runner.SetStepBase(stepBase)
		}
	} else {
		runner, err = rhsc.NewJobRunner(spec.options(), spec.amrOptions(), spec.TEnd)
	}
	if err != nil {
		s.fail(j, buildReason(err, resumed))
		return
	}
	if spec.Inject != nil {
		if err := runner.InjectFault(rhsc.FaultInjection{
			AtStep: spec.Inject.AtStep, Count: spec.Inject.Count,
			Cell: spec.Inject.Cell, Unphysical: spec.Inject.Unphysical,
			InStage: spec.Inject.InStage,
		}); err != nil {
			s.fail(j, err.Error())
			return
		}
	}
	j.mu.Lock()
	j.tEnd = runner.TEnd()
	j.mu.Unlock()
	j.publish()

	report := spec.ReportEvery
	if report <= 0 {
		report = 16
	}
	for {
		if runner.Time() >= runner.TEnd()-1e-14 {
			s.complete(j, runner)
			return
		}
		if spec.MaxSteps > 0 && runner.Steps() >= spec.MaxSteps {
			s.complete(j, runner)
			return
		}
		if s.cfg.JobTimeout > 0 && ranBase+time.Since(segStart) > s.cfg.JobTimeout {
			s.C.TimedOut.Add(1)
			s.fail(j, fmt.Sprintf("%v (ran %v of allowed %v)",
				ErrJobTimeout, (ranBase + time.Since(segStart)).Round(time.Millisecond), s.cfg.JobTimeout))
			return
		}
		if j.preempt.Load() {
			if s.park(j, runner, segStart) {
				return
			}
		}
		if _, err := runner.StepOnce(); err != nil {
			s.progress(j, runner)
			s.fail(j, err.Error())
			return
		}
		if spec.PanicAtStep > 0 && runner.Steps() >= spec.PanicAtStep {
			panic(fmt.Sprintf("injected panic at step %d", runner.Steps()))
		}
		s.progress(j, runner)
		if runner.Steps()%report == 0 {
			j.publish()
		}
	}
}

// progress folds the runner's counters into the job record.
func (s *Server) progress(j *job, runner rhsc.JobRunner) {
	j.mu.Lock()
	j.step = runner.Steps()
	j.t = runner.Time()
	j.zones = runner.Zones()
	j.zoneUpdates = j.zuBase + runner.ZoneUpdates()
	j.fault = runner.FaultStats()
	j.mu.Unlock()
}

// park checkpoints the running job and returns it to the queue; the
// resumed continuation is bit-identical to never having parked. A
// checkpoint failure outside a drain abandons the preemption (the job
// keeps its worker); during a drain it fails the job and records the
// error so the daemon can exit nonzero.
func (s *Server) park(j *job, runner rhsc.JobRunner, segStart time.Time) bool {
	var buf bytes.Buffer
	if err := runner.CheckpointExact(&buf); err != nil {
		j.preempt.Store(false)
		s.mu.Lock()
		stopping := s.stopping
		if stopping {
			s.drainErrs = append(s.drainErrs,
				fmt.Errorf("serve: drain checkpoint of %s: %w", j.id, err))
		}
		s.mu.Unlock()
		if stopping {
			s.fail(j, fmt.Sprintf("drain checkpoint failed: %v", err))
			return true
		}
		return false
	}
	s.progress(j, runner)
	j.mu.Lock()
	j.snapshot = buf.Bytes()
	j.ran += time.Since(segStart) // parked time stays off the watchdog clock
	j.stepBase = runner.Steps()
	if !j.spec.AMR {
		// Serial solvers count zone updates per segment; AMR trees
		// persist theirs inside the checkpoint.
		j.zuBase += runner.ZoneUpdates()
	}
	j.state = Parked
	j.preemptions++
	j.preempt.Store(false)
	j.mu.Unlock()
	s.C.Preempted.Add(1)
	s.C.Parked.Add(1)

	s.mu.Lock()
	heap.Push(&s.queue, j)
	s.C.QueueDepth.Store(int64(len(s.queue)))
	s.cond.Signal()
	s.mu.Unlock()
	j.publish()
	return true
}

// complete finishes a job: deliverable, fingerprint, quota
// reconciliation.
func (s *Server) complete(j *job, runner rhsc.JobRunner) {
	var res bytes.Buffer
	resErr := runner.WriteResult(&res)
	s.progress(j, runner)
	j.mu.Lock()
	j.state = Done
	j.finished = time.Now()
	j.fingerprint = runner.Fingerprint()
	if resErr == nil {
		j.result = res.Bytes()
	} else {
		j.reason = fmt.Sprintf("result serialisation failed: %v", resErr)
	}
	j.mu.Unlock()
	s.release(j)
	s.C.Completed.Add(1)
	j.publish()
}

// fail terminates a job on an absorbed error.
func (s *Server) fail(j *job, reason string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = Failed
	j.reason = reason
	j.finished = time.Now()
	j.mu.Unlock()
	s.release(j)
	s.C.Failed.Add(1)
	j.publish()
}

// release returns a terminal job's quota reservation and charges its
// actual usage.
func (s *Server) release(j *job) {
	j.mu.Lock()
	used := j.zoneUpdates
	j.mu.Unlock()
	s.mu.Lock()
	ten := s.tenantLocked(j.spec.tenant())
	ten.active--
	ten.reserved -= j.cost
	ten.used += used
	s.mu.Unlock()
}

// buildReason classifies a construction or resume failure using the
// checkpoint error taxonomy, so operators can tell an unretryable
// snapshot (corrupt bytes, config drift) from transient I/O.
func buildReason(err error, resumed bool) string {
	if !resumed {
		return "job construction failed: " + err.Error()
	}
	switch {
	case errors.Is(err, output.ErrCheckpointCorrupt):
		return "resume failed (fatal: snapshot corrupt): " + err.Error()
	case errors.Is(err, output.ErrCheckpointMismatch):
		return "resume failed (fatal: snapshot/config mismatch): " + err.Error()
	default:
		return "resume failed (possibly transient): " + err.Error()
	}
}

// --- drain and spool ----------------------------------------------------

// spoolMeta is the JSON metadata section of a spooled job record.
type spoolMeta struct {
	ID          string  `json:"id"`
	Spec        JobSpec `json:"spec"`
	StepBase    int     `json:"step_base"`
	ZuBase      int64   `json:"zu_base"`
	Preemptions int     `json:"preemptions"`
	HasSnapshot bool    `json:"has_snapshot"`
}

// Drain stops the server gracefully: admission closes, every running
// job is checkpoint-preempted, and once the pool is idle the whole
// queue (parked snapshots and never-started jobs alike) is committed
// to a durable store in dir — one framed, CRC-guarded <id>.g*.dur
// record per job holding metadata and snapshot together, published via
// write-temp/fsync/rename/dirsync so a crash mid-drain can never leave
// a meta/snapshot pair that disagrees. The returned error joins every
// checkpoint or spool failure; nil means every in-flight job is safely
// on disk (the daemon exits nonzero only otherwise). An empty dir
// skips spooling (Close).
func (s *Server) Drain(dir string) error {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.stopping = true
	for j := range s.running {
		j.preempt.Store(true)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	errs := s.drainErrs
	if dir != "" {
		st, err := durable.Open(s.cfg.SpoolFS, dir, s.D)
		if err != nil {
			errs = append(errs, err)
		} else {
			for len(s.queue) > 0 {
				j := heap.Pop(&s.queue).(*job)
				if err := spoolJob(st, j); err != nil {
					errs = append(errs, err)
				}
			}
			s.C.QueueDepth.Store(0)
		}
	}
	s.mu.Unlock()
	return errors.Join(errs...)
}

// Close stops the server without spooling (tests, benchmarks). Running
// jobs are parked in memory and discarded.
func (s *Server) Close() { _ = s.Drain("") }

// spoolJob commits one queued/parked job into the spool store: a
// single framed record of two sections (meta JSON, then the snapshot
// when one exists). Atomicity comes from the store's commit protocol —
// the record is visible in full or not at all.
func spoolJob(st *durable.Store, j *job) error {
	j.mu.Lock()
	meta := spoolMeta{
		ID: j.id, Spec: j.spec, StepBase: j.stepBase, ZuBase: j.zuBase,
		Preemptions: j.preemptions, HasSnapshot: j.snapshot != nil,
	}
	snap := j.snapshot
	j.mu.Unlock()
	blob, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("serve: spool %s: %w", j.id, err)
	}
	_, err = st.Commit(j.id, func(w io.Writer) error {
		if err := durable.WriteSection(w, blob); err != nil {
			return err
		}
		if snap != nil {
			return durable.WriteSection(w, snap)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("serve: spool %s: %w", j.id, err)
	}
	return nil
}

// LoadSpool re-admits jobs spooled by a previous Drain: parked jobs
// rejoin the queue with their snapshot (and resume bit-exactly),
// never-started jobs rejoin as queued. Records are verified end to end
// before anything is trusted; corrupt generations fall back to an
// older valid one when the store holds it, and unreadable or unusable
// entries are quarantined to <dir>/corrupt/ with a .reason note
// instead of wedging the boot. Consumed records are removed. Legacy
// two-file spools (<id>.json + <id>.ckpt) from pre-durable daemons are
// still honoured, with the same quarantine discipline. Returns the
// number of jobs loaded; per-job failures are joined into the error
// but do not stop the sweep.
func (s *Server) LoadSpool(dir string) (int, error) {
	st, err := durable.Open(s.cfg.SpoolFS, dir, s.D)
	if err != nil {
		return 0, err
	}
	names, err := st.Names()
	if err != nil {
		return 0, err
	}
	loaded := 0
	var errs []error
	for _, name := range names {
		var meta spoolMeta
		var snap []byte
		_, err := st.Load(name, func(r io.Reader) error {
			mb, err := durable.ReadSection(r)
			if err != nil {
				return err
			}
			if err := json.Unmarshal(mb, &meta); err != nil {
				// Inside a CRC-verified frame, unparseable JSON is a
				// writer bug, but corrupt classification keeps the
				// fallback-to-older-generation path in play.
				return durable.Corrupt("serve: spool meta", err)
			}
			if meta.HasSnapshot {
				if snap, err = durable.ReadSection(r); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			// Corrupt generations are already quarantined by the store.
			errs = append(errs, fmt.Errorf("serve: spool %s: %w", name, err))
			continue
		}
		if err := s.readmit(meta, snap); err != nil {
			// Verified bytes the server cannot use (spec drift, draining):
			// move them aside so the next boot is not poisoned the same way.
			errs = append(errs, err)
			_ = st.QuarantineName(name, err.Error())
			continue
		}
		if err := st.Remove(name); err != nil {
			errs = append(errs, err)
		}
		loaded++
	}

	n, lerrs := s.loadLegacySpool(st, dir)
	loaded += n
	if lerrs != nil {
		errs = append(errs, lerrs)
	}
	return loaded, errors.Join(errs...)
}

// loadLegacySpool sweeps pre-durable two-file spool entries
// (<id>.json + <id>.ckpt). Unreadable entries are quarantined through
// the store so operators find them in the same corrupt/ directory.
func (s *Server) loadLegacySpool(st *durable.Store, dir string) (int, error) {
	metas, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(metas)
	loaded := 0
	var errs []error
	quarantine := func(mp, cp string, cause error) {
		errs = append(errs, cause)
		_ = st.Quarantine(filepath.Base(mp), cause.Error())
		if cp != "" {
			if _, err := os.Stat(cp); err == nil {
				_ = st.Quarantine(filepath.Base(cp), cause.Error())
			}
		}
	}
	for _, mp := range metas {
		cp := strings.TrimSuffix(mp, ".json") + ".ckpt"
		blob, err := os.ReadFile(mp)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		var meta spoolMeta
		if err := json.Unmarshal(blob, &meta); err != nil {
			quarantine(mp, cp, fmt.Errorf("serve: spool meta %s: %w", mp, err))
			continue
		}
		var snap []byte
		if meta.HasSnapshot {
			if snap, err = os.ReadFile(cp); err != nil {
				quarantine(mp, "", fmt.Errorf("serve: spool snapshot for %s: %w", meta.ID, err))
				continue
			}
		}
		if err := s.readmit(meta, snap); err != nil {
			quarantine(mp, cp, err)
			continue
		}
		os.Remove(mp)
		os.Remove(cp)
		loaded++
	}
	return loaded, errors.Join(errs...)
}

// readmit enqueues one spooled job, bypassing admission (its quota was
// granted in the previous life; budgets restart with the process).
func (s *Server) readmit(meta spoolMeta, snap []byte) error {
	if err := meta.Spec.Validate(); err != nil {
		return fmt.Errorf("serve: spooled job %s: %w", meta.ID, err)
	}
	cost, err := meta.Spec.Cost()
	if err != nil {
		return fmt.Errorf("serve: spooled job %s: %w", meta.ID, err)
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return fmt.Errorf("serve: spooled job %s: server draining", meta.ID)
	}
	s.ids++
	s.seq++
	id := meta.ID
	if _, taken := s.jobs[id]; taken || id == "" {
		id = fmt.Sprintf("j%06d", s.ids)
	}
	j := &job{
		id: id, spec: meta.Spec, seq: s.seq, cost: cost,
		state: Queued, submitted: now, heapIdx: -1,
		stepBase: meta.StepBase, zuBase: meta.ZuBase,
		preemptions: meta.Preemptions, snapshot: snap,
	}
	if snap != nil {
		j.state = Parked
		s.C.Parked.Add(1)
	}
	ten := s.tenantLocked(meta.Spec.tenant())
	ten.active++
	ten.reserved += cost
	s.jobs[id] = j
	heap.Push(&s.queue, j)
	s.C.Accepted.Add(1)
	s.C.QueueDepth.Store(int64(len(s.queue)))
	s.cond.Signal()
	return nil
}
