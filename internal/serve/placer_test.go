package serve

import (
	"testing"

	"rhsc/internal/hetero"
)

func twoDeviceFleet(t *testing.T) *FleetPlacer {
	t.Helper()
	return NewFleetPlacer(
		hetero.MustDevice(hetero.SpecHostCPU(4)),
		hetero.MustDevice(hetero.SpecHostCPU(2)),
	)
}

func deviceIndex(t *testing.T, p *FleetPlacer, name string) int {
	t.Helper()
	for i, d := range p.R.Devices() {
		if d.Spec.Name == name {
			return i
		}
	}
	t.Fatalf("unknown device %q", name)
	return -1
}

// Jobs must land on routed capacity — Status.Device names the fleet
// device hosting the segment and the router counts the lease.
func TestPlacedJobLandsOnRoutedCapacity(t *testing.T) {
	p := twoDeviceFleet(t)
	s := New(Config{Workers: 1, Placer: p})
	defer s.Close()
	st, err := s.Submit(JobSpec{Problem: "sod", N: 64, MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done {
		t.Fatalf("job ended %q (%s)", final.State, final.Reason)
	}
	if final.Device == "" {
		t.Fatal("placed job reported no device")
	}
	if p.R.C.Leases.Load() == 0 {
		t.Error("router counted no leases")
	}
	if p.R.C.LeaseFaults.Load() != 0 {
		t.Error("clean job counted as lease fault")
	}
}

// A device whose jobs keep dying must drain out of the placement
// rotation; later jobs land on the surviving device and still complete.
func TestPlacerFaultsDrainDevice(t *testing.T) {
	p := twoDeviceFleet(t)
	s := New(Config{Workers: 1, Placer: p})
	defer s.Close()

	// Panicking jobs fault whichever device hosts them until it drains.
	var sick string
	for i := 0; i < 6; i++ {
		st, err := s.Submit(JobSpec{Problem: "sod", N: 64, MaxSteps: 8, PanicAtStep: 2})
		if err != nil {
			t.Fatal(err)
		}
		final, err := s.Wait(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != Failed {
			t.Fatalf("panic job ended %q", final.State)
		}
		if sick == "" {
			sick = final.Device
		}
		if !p.R.State(deviceIndex(t, p, sick)).InRotation() {
			break
		}
	}
	if sick == "" {
		t.Fatal("no device hosted the failing jobs")
	}
	if p.R.State(deviceIndex(t, p, sick)).InRotation() {
		t.Fatalf("device %q still in rotation after repeated faults", sick)
	}
	if p.R.C.LeaseFaults.Load() == 0 || p.R.C.Drains.Load() == 0 {
		t.Error("faults/drains not counted")
	}

	// A clean job now lands on the survivor and completes.
	st, err := s.Submit(JobSpec{Problem: "sod", N: 64, MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done {
		t.Fatalf("clean job ended %q (%s)", final.State, final.Reason)
	}
	if final.Device == sick {
		t.Fatalf("clean job placed on drained device %q", sick)
	}
}

// Chaos under preemption: a job is checkpoint-preempted, the device that
// hosted it dies while it is parked, and the resumed segment lands on
// the survivor — finishing bit-identical to an uncontested, fault-free
// run. This is the serve half of the reroute guarantee.
func TestChaosDeviceDeathUnderPreemption(t *testing.T) {
	spec := JobSpec{Problem: "sod", N: 128, MaxSteps: 200, TEnd: 10, ReportEvery: 1}
	quiet := runQuiet(t, spec)

	p := twoDeviceFleet(t)
	s := New(Config{Workers: 1, Placer: p})
	defer s.Close()
	low, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim to make progress", func() bool {
		st, _ := s.Get(low.ID)
		return st.State == Running && st.Step >= 3
	})
	firstDev := func() string { st, _ := s.Get(low.ID); return st.Device }()
	if firstDev == "" {
		t.Fatal("victim not placed")
	}
	// The device hosting the victim fail-stops mid-run (the in-flight
	// segment keeps its lease — fail-stop is discovered at placement
	// time); the checkpoint-preemption that follows parks the job, and
	// its resume must route around the dead device.
	p.R.MarkDead(deviceIndex(t, p, firstDev))

	hiSt, err := s.Submit(JobSpec{Problem: "sod", N: 64, MaxSteps: 6, Priority: 100})
	if err != nil {
		t.Fatal(err)
	}
	if final, _ := s.Wait(hiSt.ID); final.State != Done {
		t.Fatalf("high-priority job ended %q (%s)", final.State, final.Reason)
	}
	final, err := s.Wait(low.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done {
		t.Fatalf("victim ended %q (%s)", final.State, final.Reason)
	}
	if final.Preemptions < 1 {
		t.Fatal("victim was never preempted")
	}
	if final.Device == firstDev {
		t.Fatalf("resumed segment stayed on dead device %q", firstDev)
	}
	if quiet.Fingerprint == "" || final.Fingerprint != quiet.Fingerprint {
		t.Fatalf("chaos run fingerprint %s != quiet %s — preemption+death changed the numerics",
			final.Fingerprint, quiet.Fingerprint)
	}
	if p.R.C.Deaths.Load() != 1 {
		t.Error("death not counted")
	}
}

// When every device is out of rotation the placer refuses and the job
// still runs — on unrouted host capacity.
func TestPlacerFallbackWhenFleetDead(t *testing.T) {
	p := twoDeviceFleet(t)
	p.R.MarkDead(0)
	p.R.MarkDead(1)
	s := New(Config{Workers: 1, Placer: p})
	defer s.Close()
	st, err := s.Submit(JobSpec{Problem: "sod", N: 64, MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done {
		t.Fatalf("job ended %q (%s)", final.State, final.Reason)
	}
	if final.Device != "" {
		t.Fatalf("dead fleet still placed the job on %q", final.Device)
	}
	if p.R.C.Leases.Load() != 0 {
		t.Error("dead fleet granted leases")
	}
}
