package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rhsc"
	"rhsc/internal/testprob"
)

// JobSpec describes one simulation job: the catalogued problem and
// numerical method (the same knobs as rhsc.Options), the run extent,
// and the serving metadata (tenant, priority). The zero value of every
// method field takes the library default.
type JobSpec struct {
	// Tenant names the quota bucket charged for this job; empty maps to
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// Priority orders dispatch: higher runs first, and a saturated pool
	// preempts a strictly lower-priority running job to make room.
	Priority int `json:"priority,omitempty"`

	Problem    string  `json:"problem"`
	N          int     `json:"n,omitempty"`
	Recon      string  `json:"recon,omitempty"`
	Riemann    string  `json:"riemann,omitempty"`
	Integrator string  `json:"integrator,omitempty"`
	CFL        float64 `json:"cfl,omitempty"`
	Gamma      float64 `json:"gamma,omitempty"`

	// MaxSteps bounds the committed steps (0 = run to TEnd); TEnd
	// overrides the problem's canonical end time when > 0. The job
	// finishes at whichever limit it reaches first.
	MaxSteps int     `json:"max_steps,omitempty"`
	TEnd     float64 `json:"tend,omitempty"`

	// AMR selects an adaptively refined run with the policy below.
	AMR        bool `json:"amr,omitempty"`
	MaxLevel   int  `json:"max_level,omitempty"`
	RootBlocks int  `json:"root_blocks,omitempty"`
	BlockN     int  `json:"block_n,omitempty"`

	// ReportEvery is the progress-event cadence in steps (default 16).
	ReportEvery int `json:"report_every,omitempty"`

	// Inject schedules a deterministic fault for chaos testing (serial
	// jobs only): the guard absorbs it and the job still completes.
	Inject *InjectSpec `json:"inject,omitempty"`
	// PanicAtStep makes the worker panic after that committed step — a
	// chaos knob proving per-job panic absorption; the job fails, the
	// daemon survives.
	PanicAtStep int `json:"panic_at_step,omitempty"`
}

// InjectSpec mirrors rhsc.FaultInjection for the wire format.
type InjectSpec struct {
	AtStep     int  `json:"at_step"`
	Count      int  `json:"count,omitempty"`
	Cell       int  `json:"cell,omitempty"`
	Unphysical bool `json:"unphysical,omitempty"`
	InStage    bool `json:"in_stage,omitempty"`
}

// tenant returns the quota bucket name.
func (sp *JobSpec) tenant() string {
	if sp.Tenant == "" {
		return "default"
	}
	return sp.Tenant
}

// options maps the spec onto library options.
func (sp *JobSpec) options() rhsc.Options {
	return rhsc.Options{
		Problem: sp.Problem, N: sp.N, Recon: sp.Recon, Riemann: sp.Riemann,
		Integrator: sp.Integrator, CFL: sp.CFL, Gamma: sp.Gamma,
	}
}

// amrOptions maps the AMR policy knobs; nil for serial jobs.
func (sp *JobSpec) amrOptions() *rhsc.AMROptions {
	if !sp.AMR {
		return nil
	}
	return &rhsc.AMROptions{
		MaxLevel: sp.MaxLevel, RootBlocks: sp.RootBlocks, BlockN: sp.BlockN,
	}
}

// Validate resolves every name the way dispatch will and bounds the
// extents, so a queued job cannot fail on a typo hours later.
func (sp *JobSpec) Validate() error {
	if err := rhsc.CheckOptions(sp.options()); err != nil {
		return err
	}
	if sp.N < 0 || sp.N > 4096 {
		return fmt.Errorf("serve: n %d out of range [0, 4096]", sp.N)
	}
	if sp.MaxSteps < 0 {
		return fmt.Errorf("serve: negative max_steps %d", sp.MaxSteps)
	}
	if sp.TEnd < 0 || math.IsNaN(sp.TEnd) || math.IsInf(sp.TEnd, 0) {
		return fmt.Errorf("serve: unusable tend %v", sp.TEnd)
	}
	if sp.AMR {
		if sp.MaxLevel < 0 || sp.MaxLevel > 6 {
			return fmt.Errorf("serve: max_level %d out of range [0, 6]", sp.MaxLevel)
		}
		if sp.Inject != nil {
			return fmt.Errorf("serve: fault injection requires a serial job")
		}
	}
	return nil
}

// Cost is the admission-control charge in zone-updates: a worst-case
// bound on zones × steps × RK stages. Steps are bounded by the CFL
// floor dt ≥ CFL·Δx/dim (relativistic signal speeds never exceed c = 1),
// so tEnd/(CFL·Δx/dim) over-counts, never under-counts. AMR jobs charge
// the root grid times 2^MaxLevel — the documented heuristic; actual
// usage is reconciled against the tenant budget at completion.
func (sp *JobSpec) Cost() (int64, error) {
	p, err := testprob.ByName(problemOrDefault(sp.Problem))
	if err != nil {
		return 0, err
	}
	n := sp.N
	if n <= 0 {
		n = 256
	}
	zones := int64(n)
	aspect := 1.0
	if p.Dim >= 2 {
		aspect = (p.Y1 - p.Y0) / (p.X1 - p.X0)
		zones *= int64(math.Ceil(float64(n) * aspect))
	}
	if sp.AMR {
		nb := sp.RootBlocks
		if nb <= 0 {
			nb = 8
		}
		bn := sp.BlockN
		if bn <= 0 {
			bn = 16
		}
		lvl := sp.MaxLevel
		if lvl <= 0 {
			lvl = 2
		}
		zones = int64(nb * bn)
		if p.Dim >= 2 {
			zones *= int64(math.Ceil(float64(nb*bn) * aspect))
		}
		zones <<= uint(lvl)
	}
	tEnd := sp.TEnd
	if tEnd <= 0 {
		tEnd = p.TEnd
	}
	cfl := sp.CFL
	if cfl <= 0 {
		cfl = 0.4
	}
	dx := (p.X1 - p.X0) / float64(n)
	steps := int64(math.Ceil(tEnd / (cfl * dx) * float64(p.Dim)))
	if sp.MaxSteps > 0 && int64(sp.MaxSteps) < steps {
		steps = int64(sp.MaxSteps)
	}
	if steps < 1 {
		steps = 1
	}
	stages := int64(2)
	switch sp.Integrator {
	case "rk1":
		stages = 1
	case "rk3":
		stages = 3
	}
	return zones * steps * stages, nil
}

func problemOrDefault(name string) string {
	if name == "" {
		return "sod"
	}
	return name
}

// State is a job's lifecycle phase.
type State string

const (
	// Queued jobs passed admission and wait for a worker.
	Queued State = "queued"
	// Running jobs own a worker.
	Running State = "running"
	// Parked jobs were preempted: their exact checkpoint waits in the
	// queue and resumes bit-identically when a worker frees up.
	Parked State = "parked"
	// Done jobs ran to their end time or step budget.
	Done State = "done"
	// Failed jobs hit an unrecoverable error or a worker panic; the
	// failure is absorbed per-job and the daemon keeps serving.
	Failed State = "failed"
	// RejectedState jobs were refused at admission (Status.Reason says
	// why); they never consumed a worker.
	RejectedState State = "rejected"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == Done || s == Failed || s == RejectedState
}

// Status is a point-in-time public snapshot of a job, also the
// progress-stream event payload (one JSON line per event).
type Status struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	State    State  `json:"state"`
	// Reason explains rejections and failures.
	Reason string `json:"reason,omitempty"`

	// Device names the routed fleet device hosting the current segment
	// (empty: unrouted host capacity, or no placer configured).
	Device string `json:"device,omitempty"`

	Step        int     `json:"step"`
	Time        float64 `json:"time"`
	TEnd        float64 `json:"tend,omitempty"`
	Zones       int     `json:"zones,omitempty"`
	ZoneUpdates int64   `json:"zone_updates,omitempty"`
	Preemptions int     `json:"preemptions,omitempty"`

	// Resilience counters from the per-job guard (serial) or the AMR
	// fail-safe accounting.
	Troubled  int64 `json:"troubled,omitempty"`
	Repaired  int64 `json:"repaired,omitempty"`
	Retries   int64 `json:"retries,omitempty"`
	Injected  int64 `json:"injected,omitempty"`
	Fallbacks int64 `json:"fallbacks,omitempty"`

	// Fingerprint is the FNV-1a digest of the final state (terminal
	// states only): equal fingerprints mean bitwise-identical solutions,
	// which is how preempted-and-resumed runs are verified against
	// uninterrupted ones.
	Fingerprint string `json:"fingerprint,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
}

// job is the server-private record behind a Status.
type job struct {
	id   string
	spec JobSpec
	seq  uint64 // arrival order; preserved across parking for FIFO-within-priority
	cost int64  // reserved admission charge

	mu          sync.Mutex
	state       State
	reason      string
	device      string // routed device of the current/last segment
	step        int
	t, tEnd     float64
	zones       int
	zoneUpdates int64
	preemptions int
	fault       rhsc.FaultSnapshot
	fingerprint uint64
	snapshot    []byte // exact checkpoint while parked (or spooled)
	stepBase    int    // committed steps before the current segment (serial)
	zuBase      int64  // zone updates of earlier segments (serial; AMR persists its own)
	ran         time.Duration // running wall-clock of finished segments (watchdog)
	result      []byte // final deliverable (CSV)
	submitted   time.Time
	started     time.Time
	finished    time.Time
	subs        []chan Status

	// preempt asks the owning worker to checkpoint and park between
	// steps; set by the scheduler, cleared by the worker.
	preempt atomic.Bool

	heapIdx int
}

// status snapshots the job under its lock.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() Status {
	st := Status{
		ID: j.id, Tenant: j.spec.tenant(), Priority: j.spec.Priority,
		State: j.state, Reason: j.reason, Device: j.device,
		Step: j.step, Time: j.t, TEnd: j.tEnd,
		Zones: j.zones, ZoneUpdates: j.zoneUpdates, Preemptions: j.preemptions,
		Troubled: j.fault.Troubled, Repaired: j.fault.Repaired,
		Retries: j.fault.Retries, Injected: j.fault.Injected,
		Fallbacks: j.fault.Fallbacks,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}
	if j.state.terminal() && j.fingerprint != 0 {
		st.Fingerprint = fmt.Sprintf("%016x", j.fingerprint)
	}
	return st
}

// publish snapshots the job and fans the event out to subscribers;
// terminal events close the subscriptions.
func (j *job) publish() {
	j.mu.Lock()
	st := j.statusLocked()
	subs := j.subs
	if st.State.terminal() {
		j.subs = nil
	}
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- st:
		default: // slow consumer: drop intermediate events, never block a worker
		}
		if st.State.terminal() {
			close(ch)
		}
	}
}

// subscribe registers a progress channel; the returned cancel is
// idempotent. A job already terminal delivers one final event and a
// closed channel.
func (j *job) subscribe() (<-chan Status, func()) {
	ch := make(chan Status, 16)
	j.mu.Lock()
	if j.state.terminal() {
		st := j.statusLocked()
		j.mu.Unlock()
		ch <- st
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// jobHeap orders by priority (higher first), then arrival (earlier
// first): strict priority with FIFO fairness inside a class. Parked
// jobs keep their original seq, so a resumed job never starves behind
// later arrivals of its own priority.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].spec.Priority != h[k].spec.Priority {
		return h[i].spec.Priority > h[k].spec.Priority
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].heapIdx = i
	h[k].heapIdx = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
