package recon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rhsc/internal/mathutil"
)

// allSchemes returns every scheme under test.
func allSchemes() []Scheme { return All() }

// evalOn fills a row with f(x_j) for cells j = 0..n−1 on a unit spacing.
func evalOn(n int, f func(float64) float64) []float64 {
	u := make([]float64, n)
	for j := range u {
		u[j] = f(float64(j))
	}
	return u
}

func reconstruct(s Scheme, u []float64) (uL, uR []float64) {
	n := len(u)
	uL = make([]float64, n+1)
	uR = make([]float64, n+1)
	s.Reconstruct(u, uL, uR)
	return uL, uR
}

// Every scheme must reproduce constant data exactly — the most basic
// consistency requirement.
func TestConstantPreservation(t *testing.T) {
	for _, s := range allSchemes() {
		u := evalOn(32, func(float64) float64 { return 3.7 })
		uL, uR := reconstruct(s, u)
		g := s.Ghost()
		for i := g; i <= len(u)-g; i++ {
			if math.Abs(uL[i]-3.7) > 1e-14 || math.Abs(uR[i]-3.7) > 1e-14 {
				t.Errorf("%s: face %d = (%v, %v), want 3.7", s.Name(), i, uL[i], uR[i])
			}
		}
	}
}

// Schemes of order >= 2 must reproduce linear data exactly away from
// boundaries (limiters are inactive on monotone linear data).
func TestLinearExactness(t *testing.T) {
	for _, s := range allSchemes() {
		if s.Order() < 2 {
			continue
		}
		u := evalOn(32, func(x float64) float64 { return 2*x - 5 })
		uL, uR := reconstruct(s, u)
		g := s.Ghost()
		for i := g; i <= len(u)-g; i++ {
			// Face i sits at x = i − 1/2 on the unit grid (cell j centre at x=j).
			want := 2*(float64(i)-0.5) - 5
			if math.Abs(uL[i]-want) > 1e-12 || math.Abs(uR[i]-want) > 1e-12 {
				t.Errorf("%s: face %d = (%v, %v), want %v", s.Name(), i, uL[i], uR[i], want)
			}
		}
	}
}

// PCM reduces to neighbouring cell values.
func TestPCMIsGodunov(t *testing.T) {
	u := []float64{1, 2, 3, 4, 5}
	uL, uR := reconstruct(PCM{}, u)
	for i := 1; i <= 4; i++ {
		if uL[i] != u[i-1] || uR[i] != u[i] {
			t.Errorf("face %d: (%v,%v)", i, uL[i], uR[i])
		}
	}
}

// TVD property: PLM reconstructions must stay within the range of the two
// adjacent cells on arbitrary data (no new extrema at faces).
func TestPLMBoundedByNeighbours(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lim := range []Limiter{Minmod, MonotonizedCentral, VanLeer} {
		s := PLM{Lim: lim}
		for trial := 0; trial < 200; trial++ {
			u := make([]float64, 24)
			for j := range u {
				u[j] = rng.NormFloat64()
			}
			uL, uR := reconstruct(s, u)
			for i := 2; i <= len(u)-2; i++ {
				// Both face states lie in the hull of the two adjacent
				// cells: |slope| <= 2|du| on each side for all three
				// limiters.
				lo := math.Min(u[i-1], u[i])
				hi := math.Max(u[i-1], u[i])
				if uL[i] < lo-1e-12 || uL[i] > hi+1e-12 {
					t.Fatalf("%s: uL[%d]=%v outside [%v,%v]", s.Name(), i, uL[i], lo, hi)
				}
				if uR[i] < lo-1e-12 || uR[i] > hi+1e-12 {
					t.Fatalf("%s: uR[%d]=%v outside [%v,%v]", s.Name(), i, uR[i], lo, hi)
				}
			}
		}
	}
}

// Monotone data must stay monotone across all face states for the TVD
// schemes (PLM and PPM).
func TestMonotonicityPreserved(t *testing.T) {
	u := evalOn(24, func(x float64) float64 { return math.Tanh(0.8 * (x - 12)) })
	for _, s := range []Scheme{
		PLM{Lim: Minmod}, PLM{Lim: MonotonizedCentral}, PLM{Lim: VanLeer}, PPM{},
	} {
		uL, uR := reconstruct(s, u)
		g := s.Ghost()
		prev := math.Inf(-1)
		for i := g; i <= len(u)-g; i++ {
			if uL[i] < prev-1e-12 {
				t.Errorf("%s: uL[%d]=%v breaks monotonicity (prev %v)", s.Name(), i, uL[i], prev)
			}
			if uR[i] < uL[i]-0.5 { // faces ordered within a jump tolerance
				t.Errorf("%s: face %d states wildly inverted: %v %v", s.Name(), i, uL[i], uR[i])
			}
			prev = uL[i]
		}
	}
}

// PPM cell parabola edges must never overshoot the cell averages of the
// neighbouring cells on discontinuous data.
func TestPPMNoOvershoot(t *testing.T) {
	u := evalOn(24, func(x float64) float64 {
		if x < 12 {
			return 10
		}
		return 1
	})
	uL, uR := reconstruct(PPM{}, u)
	for i := 3; i <= len(u)-3; i++ {
		for _, v := range []float64{uL[i], uR[i]} {
			if v > 10+1e-12 || v < 1-1e-12 {
				t.Errorf("face %d value %v outside data range [1,10]", i, v)
			}
		}
	}
}

// WENO must not produce significant over/undershoots at a step (ENO
// property: O(1) oscillations are forbidden, small ones are inherent).
func TestWENO5EssentiallyNonOscillatory(t *testing.T) {
	u := evalOn(30, func(x float64) float64 {
		if x < 15 {
			return 1
		}
		return 0
	})
	uL, uR := reconstruct(WENO5{}, u)
	for i := 3; i <= len(u)-3; i++ {
		for _, v := range []float64{uL[i], uR[i]} {
			if v > 1.05 || v < -0.05 {
				t.Errorf("face %d value %v oscillates beyond 5%%", i, v)
			}
		}
	}
}

// Convergence order on smooth data: reconstruct sin on successively finer
// grids and verify the error at faces shrinks at the formal order (within
// half an order to absorb limiter effects near inflection points for PLM).
func TestSmoothConvergenceOrder(t *testing.T) {
	for _, tc := range []struct {
		s        Scheme
		minOrder float64
	}{
		{PLM{Lim: MonotonizedCentral}, 1.7},
		{PPM{}, 2.5},
		{WENO5{}, 3.5},
		{WENOZ{}, 4.0},
	} {
		err := func(n int) float64 {
			h := 2 * math.Pi / float64(n)
			u := make([]float64, n)
			for j := range u {
				// Cell averages of sin over [x_j−h/2, x_j+h/2]:
				// (cos(a)−cos(b))/h.
				a := float64(j) * h
				b := a + h
				u[j] = (math.Cos(a) - math.Cos(b)) / h
			}
			uL := make([]float64, n+1)
			uR := make([]float64, n+1)
			tc.s.Reconstruct(u, uL, uR)
			g := tc.s.Ghost()
			e := 0.0
			cnt := 0
			for i := g; i <= n-g; i++ {
				x := float64(i) * h // face i at x_{i−1/2} = i*h − h... face between cells i−1,i is at i*h
				want := math.Sin(x)
				e += math.Abs(uL[i]-want) + math.Abs(uR[i]-want)
				cnt += 2
			}
			return e / float64(cnt)
		}
		e1, e2 := err(64), err(128)
		order := math.Log2(e1 / e2)
		if order < tc.minOrder {
			t.Errorf("%s: observed order %.2f < %.2f (e64=%.3e e128=%.3e)",
				tc.s.Name(), order, tc.minOrder, e1, e2)
		}
	}
}

func TestGhostCounts(t *testing.T) {
	want := map[string]int{
		"pcm": 1, "plm-minmod": 2, "plm-mc": 2, "plm-vanleer": 2,
		"ppm": 3, "weno5": 3, "wenoz": 3,
	}
	for _, s := range allSchemes() {
		if g, ok := want[s.Name()]; !ok || s.Ghost() != g {
			t.Errorf("%s: ghost = %d, want %d", s.Name(), s.Ghost(), g)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pcm", "plm", "plm-mc", "plm-minmod", "plm-vanleer", "ppm", "weno5", "wenoz"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestShortRowPanics(t *testing.T) {
	for _, s := range allSchemes() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: short row not rejected", s.Name())
				}
			}()
			u := make([]float64, 2*s.Ghost())
			s.Reconstruct(u, make([]float64, len(u)+1), make([]float64, len(u)+1))
		}()
	}
}

func TestShortFaceArraysPanic(t *testing.T) {
	s := PLM{Lim: Minmod}
	defer func() {
		if recover() == nil {
			t.Error("short face arrays not rejected")
		}
	}()
	u := make([]float64, 16)
	s.Reconstruct(u, make([]float64, 10), make([]float64, 10))
}

// The two WENO edge evaluations must be mirror images: reconstructing
// reversed data must give reversed faces.
func TestWENO5MirrorSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20
	u := make([]float64, n)
	for j := range u {
		u[j] = rng.Float64()
	}
	rev := make([]float64, n)
	for j := range rev {
		rev[j] = u[n-1-j]
	}
	uL, uR := reconstruct(WENO5{}, u)
	rL, rR := reconstruct(WENO5{}, rev)
	for i := 3; i <= n-3; i++ {
		// Face i of u corresponds to face n−i of rev with L/R swapped.
		if math.Abs(uL[i]-rR[n-i]) > 1e-13 || math.Abs(uR[i]-rL[n-i]) > 1e-13 {
			t.Fatalf("mirror symmetry broken at face %d: (%v,%v) vs (%v,%v)",
				i, uL[i], uR[i], rR[n-i], rL[n-i])
		}
	}
}

// Property check via testing/quick: for every TVD scheme and random data,
// face states stay within the global data range (no new global extrema),
// and every scheme maps finite data to finite faces.
func TestQuickFaceBounds(t *testing.T) {
	type row [16]float64
	prop := func(r row) bool {
		u := make([]float64, len(r))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			u[i] = math.Mod(v, 1e6)
			if u[i] < lo {
				lo = u[i]
			}
			if u[i] > hi {
				hi = u[i]
			}
		}
		for _, s := range []Scheme{PLM{Lim: Minmod}, PLM{Lim: MonotonizedCentral}, PLM{Lim: VanLeer}, PPM{}} {
			uL := make([]float64, len(u)+1)
			uR := make([]float64, len(u)+1)
			s.Reconstruct(u, uL, uR)
			for i := s.Ghost(); i <= len(u)-s.Ghost(); i++ {
				tol := 1e-9 * (1 + math.Abs(lo) + math.Abs(hi))
				if uL[i] < lo-tol || uL[i] > hi+tol || uR[i] < lo-tol || uR[i] > hi+tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// WENO-Z must be essentially non-oscillatory like WENO5 and at least as
// accurate on smooth data (its weights restore order at critical points).
func TestWENOZProperties(t *testing.T) {
	// Step data: bounded overshoot.
	u := evalOn(30, func(x float64) float64 {
		if x < 15 {
			return 1
		}
		return 0
	})
	uL, uR := reconstruct(WENOZ{}, u)
	for i := 3; i <= len(u)-3; i++ {
		for _, v := range []float64{uL[i], uR[i]} {
			if v > 1.05 || v < -0.05 {
				t.Errorf("face %d value %v oscillates beyond 5%%", i, v)
			}
		}
	}
	// Mirror symmetry.
	rng := rand.New(rand.NewSource(5))
	n := 20
	w := make([]float64, n)
	for j := range w {
		w[j] = rng.Float64()
	}
	rev := make([]float64, n)
	for j := range rev {
		rev[j] = w[n-1-j]
	}
	wL, wR := reconstruct(WENOZ{}, w)
	rL, rR := reconstruct(WENOZ{}, rev)
	for i := 3; i <= n-3; i++ {
		if math.Abs(wL[i]-rR[n-i]) > 1e-13 || math.Abs(wR[i]-rL[n-i]) > 1e-13 {
			t.Fatalf("mirror symmetry broken at face %d", i)
		}
	}
	// Accuracy at a critical point: reconstruct sin around its extremum
	// and compare against WENO5 — Z weights must not be worse.
	m := 64
	h := 2 * math.Pi / float64(m)
	u2 := make([]float64, m)
	for j := range u2 {
		a := float64(j) * h
		u2[j] = (math.Cos(a) - math.Cos(a+h)) / h
	}
	errOf := func(s Scheme) float64 {
		aL := make([]float64, m+1)
		aR := make([]float64, m+1)
		s.Reconstruct(u2, aL, aR)
		e := 0.0
		for i := 3; i <= m-3; i++ {
			want := math.Sin(float64(i) * h)
			e += math.Abs(aL[i]-want) + math.Abs(aR[i]-want)
		}
		return e
	}
	if ez, e5 := errOf(WENOZ{}), errOf(WENO5{}); ez > e5*1.05 {
		t.Errorf("WENO-Z error %v worse than WENO5 %v", ez, e5)
	}
}

// Same symmetry for PLM and PPM.
func TestPLMPPMMirrorSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 20
	u := make([]float64, n)
	for j := range u {
		u[j] = rng.Float64()
	}
	rev := make([]float64, n)
	for j := range rev {
		rev[j] = u[n-1-j]
	}
	for _, s := range []Scheme{PLM{Lim: Minmod}, PLM{Lim: MonotonizedCentral}, PPM{}} {
		uL, uR := reconstruct(s, u)
		rL, rR := reconstruct(s, rev)
		g := s.Ghost()
		for i := g; i <= n-g; i++ {
			if math.Abs(uL[i]-rR[n-i]) > 1e-13 || math.Abs(uR[i]-rL[n-i]) > 1e-13 {
				t.Fatalf("%s: mirror symmetry broken at face %d", s.Name(), i)
			}
		}
	}
}

// plmReference is the naive two-slopes-per-face PLM loop the slope-carrying
// Reconstruct replaced; the rewrite must be bitwise identical to it.
func plmReference(p PLM, u, uL, uR []float64) {
	n := len(u)
	for i := 2; i <= n-2; i++ {
		jm := i - 1
		sL := p.slope(u[jm]-u[jm-1], u[jm+1]-u[jm])
		sR := p.slope(u[i]-u[i-1], u[i+1]-u[i])
		uL[i] = u[jm] + 0.5*sL
		uR[i] = u[i] - 0.5*sR
	}
}

func TestPLMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, lim := range []Limiter{Minmod, MonotonizedCentral, VanLeer} {
		p := PLM{Lim: lim}
		for _, n := range []int{5, 6, 12, 53} {
			u := make([]float64, n)
			for j := range u {
				switch rng.Intn(4) {
				case 0:
					u[j] = rng.NormFloat64()
				case 1:
					u[j] = 0
				case 2:
					u[j] = math.Trunc(rng.NormFloat64()) // repeated plateaus
				default:
					u[j] = rng.NormFloat64() * 1e-300
				}
			}
			gotL, gotR := reconstruct(p, u)
			wantL := make([]float64, n+1)
			wantR := make([]float64, n+1)
			plmReference(p, u, wantL, wantR)
			for i := 2; i <= n-2; i++ {
				if gotL[i] != wantL[i] || gotR[i] != wantR[i] {
					t.Fatalf("%s n=%d face %d: got (%v,%v) want (%v,%v)",
						p.Name(), n, i, gotL[i], gotR[i], wantL[i], wantR[i])
				}
			}
		}
	}
}

func TestMCSlopeBitwise(t *testing.T) {
	check := func(dm, dp float64) bool {
		got := mcSlope(dm, dp)
		want := mathutil.MC(dm, dp)
		// NaN inputs must give the exact zero the reference gives.
		return got == want && math.Signbit(got) == math.Signbit(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	edges := []float64{0, math.Copysign(0, -1), 1e-300, -1e-300, 1, -1,
		math.MaxFloat64, -math.MaxFloat64, math.Inf(1), math.Inf(-1), math.NaN()}
	for _, a := range edges {
		for _, b := range edges {
			got, want := mcSlope(a, b), mathutil.MC(a, b)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("mcSlope(%v,%v) = %v, want %v", a, b, got, want)
			}
			if got == want && math.Signbit(got) != math.Signbit(want) {
				t.Fatalf("mcSlope(%v,%v) sign of zero differs", a, b)
			}
		}
	}
}
