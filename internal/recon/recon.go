// Package recon implements the one-dimensional reconstruction schemes of
// the HRSC solver: piecewise-constant (PCM), piecewise-linear with TVD
// limiters (PLM), the piecewise-parabolic method (PPM, Colella & Woodward
// 1984), and fifth-order WENO (Jiang & Shu 1996).
//
// A scheme turns cell-average data u[0..n) into left/right states at cell
// faces. Face i sits between cells i−1 and i; uL[i] is the value
// extrapolated from cell i−1 (the left side of the face) and uR[i] the
// value from cell i. Reconstruct fills faces i ∈ [Ghost(), n−Ghost()];
// callers provide enough ghost cells that this range covers every face of
// the physical domain.
//
// The solver reconstructs primitive variables componentwise, the standard
// choice for SRHD production codes (characteristic reconstruction costs a
// full eigendecomposition per face for marginal gains with HLL-family
// solvers).
package recon

import (
	"fmt"
	"math"
	"sync"

	"rhsc/internal/mathutil"
)

// Scheme is a one-dimensional face reconstruction.
type Scheme interface {
	// Name identifies the scheme in output headers and benchmarks.
	Name() string
	// Ghost returns the number of ghost cells the scheme needs on each side.
	Ghost() int
	// Order returns the formal order of accuracy on smooth data.
	Order() int
	// Reconstruct fills uL[i], uR[i] for faces i in [Ghost(), n−Ghost()]
	// from cell data u of length n. uL and uR must have length ≥ n+1.
	Reconstruct(u, uL, uR []float64)
}

// checkSizes panics when the face arrays cannot hold the reconstruction.
func checkSizes(u, uL, uR []float64, ghost int) int {
	n := len(u)
	if n < 2*ghost+1 {
		panic(fmt.Sprintf("recon: row of %d cells too short for ghost=%d", n, ghost))
	}
	if len(uL) < n+1 || len(uR) < n+1 {
		panic("recon: face arrays shorter than n+1")
	}
	return n
}

// PCM is the first-order piecewise-constant (Godunov) reconstruction.
type PCM struct{}

// Name implements Scheme.
func (PCM) Name() string { return "pcm" }

// Ghost implements Scheme.
func (PCM) Ghost() int { return 1 }

// Order implements Scheme.
func (PCM) Order() int { return 1 }

// Reconstruct implements Scheme.
func (PCM) Reconstruct(u, uL, uR []float64) {
	n := checkSizes(u, uL, uR, 1)
	for i := 1; i <= n-1; i++ {
		uL[i] = u[i-1]
		uR[i] = u[i]
	}
}

// Limiter selects the TVD slope limiter used by PLM.
type Limiter int

// Supported PLM limiters.
const (
	Minmod Limiter = iota
	MonotonizedCentral
	VanLeer
)

// String implements fmt.Stringer.
func (l Limiter) String() string {
	switch l {
	case Minmod:
		return "minmod"
	case MonotonizedCentral:
		return "mc"
	case VanLeer:
		return "vanleer"
	}
	return fmt.Sprintf("Limiter(%d)", int(l))
}

// PLM is second-order piecewise-linear reconstruction with a TVD limiter.
type PLM struct {
	Lim Limiter
}

// Name implements Scheme.
func (p PLM) Name() string { return "plm-" + p.Lim.String() }

// Ghost implements Scheme.
func (PLM) Ghost() int { return 2 }

// Order implements Scheme.
func (PLM) Order() int { return 2 }

func (p PLM) slope(dm, dp float64) float64 {
	switch p.Lim {
	case Minmod:
		return mathutil.Minmod(dm, dp)
	case MonotonizedCentral:
		return mathutil.MC(dm, dp)
	case VanLeer:
		return mathutil.VanLeer(dm, dp)
	}
	panic("recon: unknown limiter")
}

// Reconstruct implements Scheme. Face i needs the limited slopes of
// cells i−1 and i; the loop carries each cell's slope (and its right
// difference, which is the next cell's left difference) across to the
// next face instead of recomputing it, halving the limiter evaluations
// of the naive two-slopes-per-face form. The MC limiter additionally
// uses the branch-reduced mcSlope. Both transformations are
// bitwise-neutral; TestPLMMatchesReference locks that in.
func (p PLM) Reconstruct(u, uL, uR []float64) {
	n := checkSizes(u, uL, uR, 2)
	if p.Lim == MonotonizedCentral {
		dp := u[2] - u[1]
		sPrev := mcSlope(u[1]-u[0], dp)
		for i := 2; i <= n-2; i++ {
			dm := dp
			dp = u[i+1] - u[i]
			s := mcSlope(dm, dp)
			uL[i] = u[i-1] + 0.5*sPrev
			uR[i] = u[i] - 0.5*s
			sPrev = s
		}
		return
	}
	dp := u[2] - u[1]
	sPrev := p.slope(u[1]-u[0], dp)
	for i := 2; i <= n-2; i++ {
		dm := dp
		dp = u[i+1] - u[i]
		s := p.slope(dm, dp)
		uL[i] = u[i-1] + 0.5*sPrev
		uR[i] = u[i] - 0.5*s
		sPrev = s
	}
}

// mcSlope is mathutil.MC(dm, dp) = minmod3(2dm, 2dp, (dm+dp)/2) with the
// sign analysis folded into two comparisons. Bitwise identity with the
// mathutil form (TestMCSlopeBitwise): when dm and dp are both strictly
// positive so are all three candidates — their sum cannot cancel — and a
// running minimum over positive non-NaN operands matches the nested
// math.Min exactly (ties are the same value, hence the same bits);
// negating a float and multiplying by ±1 are exact, so the negative
// branch mirrors sa = −1; NaN and mixed or zero signs fall through to
// the same positive zero Minmod3 returns.
func mcSlope(dm, dp float64) float64 {
	if dm > 0 && dp > 0 {
		m := 2 * dm
		if v := 2 * dp; v < m {
			m = v
		}
		if v := 0.5 * (dm + dp); v < m {
			m = v
		}
		return m
	}
	if dm < 0 && dp < 0 {
		m := -(2 * dm)
		if v := -(2 * dp); v < m {
			m = v
		}
		if v := -(0.5 * (dm + dp)); v < m {
			m = v
		}
		return -m
	}
	return 0
}

// ppmScratch pools the PPM interface-value buffer across rows.
var ppmScratch = sync.Pool{New: func() any {
	s := make([]float64, 0, 1024)
	return &s
}}

// PPM is the piecewise-parabolic method of Colella & Woodward (1984) with
// the standard monotonization (no contact steepening or flattening: those
// are shock-tube cosmetics the HLLC solver does not need).
type PPM struct{}

// Name implements Scheme.
func (PPM) Name() string { return "ppm" }

// Ghost implements Scheme.
func (PPM) Ghost() int { return 3 }

// Order implements Scheme.
func (PPM) Order() int { return 3 }

// Reconstruct implements Scheme.
func (PPM) Reconstruct(u, uL, uR []float64) {
	n := checkSizes(u, uL, uR, 3)

	// Limited slopes (CW84 eq. 1.8).
	slope := func(j int) float64 {
		dm, dp := u[j]-u[j-1], u[j+1]-u[j]
		if dm*dp <= 0 {
			return 0
		}
		d := 0.5 * (u[j+1] - u[j-1])
		return mathutil.Sign(d) * mathutil.Min3(2*absf(dm), 2*absf(dp), absf(d))
	}

	// Fourth-order interface values (CW84 eq. 1.6):
	// u_{j+1/2} = (u_j + u_{j+1})/2 − (δ_{j+1} − δ_j)/6.
	// iface[i] is the value at face i (between cells i−1 and i). The
	// buffer is pooled: Reconstruct runs once per row per component and a
	// per-call allocation would dominate the sweep's allocation profile.
	buf := ppmScratch.Get().(*[]float64)
	if cap(*buf) < n+1 {
		*buf = make([]float64, n+1)
	}
	iface := (*buf)[:n+1]
	defer ppmScratch.Put(buf)
	for i := 2; i <= n-2; i++ {
		j := i - 1
		iface[i] = 0.5*(u[j]+u[j+1]) - (slope(j+1)-slope(j))/6
	}

	// Per-cell parabola edges with monotonization (CW84 eq. 1.10). Face i
	// takes its left state from the parabola of cell i−1 and its right
	// state from the parabola of cell i; the needed interface values
	// iface[2..n−2] are all available for faces i in [3, n−3].
	for i := 3; i <= n-3; i++ {
		// Face i: left side from cell j = i−1, right side from cell i.
		for side := 0; side < 2; side++ {
			j := i - 1 + side
			aL, aR := iface[j], iface[j+1] // edges of cell j
			u0 := u[j]
			switch {
			case (aR-u0)*(u0-aL) <= 0:
				aL, aR = u0, u0
			case (aR-aL)*(u0-0.5*(aL+aR)) > (aR-aL)*(aR-aL)/6:
				aL = 3*u0 - 2*aR
			case (aR-aL)*(u0-0.5*(aL+aR)) < -(aR-aL)*(aR-aL)/6:
				aR = 3*u0 - 2*aL
			}
			if side == 0 {
				uL[i] = aR
			} else {
				uR[i] = aL
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// WENO5 is the fifth-order weighted essentially non-oscillatory scheme of
// Jiang & Shu (1996) with the classical smoothness indicators and
// ε = 10⁻⁶ regularisation.
type WENO5 struct{}

// Name implements Scheme.
func (WENO5) Name() string { return "weno5" }

// Ghost implements Scheme.
func (WENO5) Ghost() int { return 3 }

// Order implements Scheme.
func (WENO5) Order() int { return 5 }

const wenoEps = 1e-6

// wenoEdge reconstructs the value at the right edge of the 5-point stencil
// centre: inputs are u[j−2], u[j−1], u[j], u[j+1], u[j+2] and the return is
// u at face j+1/2 seen from cell j.
func wenoEdge(um2, um1, u0, up1, up2 float64) float64 {
	p0 := (2*um2 - 7*um1 + 11*u0) / 6
	p1 := (-um1 + 5*u0 + 2*up1) / 6
	p2 := (2*u0 + 5*up1 - up2) / 6

	b0 := 13.0/12.0*(um2-2*um1+u0)*(um2-2*um1+u0) + 0.25*(um2-4*um1+3*u0)*(um2-4*um1+3*u0)
	b1 := 13.0/12.0*(um1-2*u0+up1)*(um1-2*u0+up1) + 0.25*(um1-up1)*(um1-up1)
	b2 := 13.0/12.0*(u0-2*up1+up2)*(u0-2*up1+up2) + 0.25*(3*u0-4*up1+up2)*(3*u0-4*up1+up2)

	a0 := 0.1 / ((wenoEps + b0) * (wenoEps + b0))
	a1 := 0.6 / ((wenoEps + b1) * (wenoEps + b1))
	a2 := 0.3 / ((wenoEps + b2) * (wenoEps + b2))
	return (a0*p0 + a1*p1 + a2*p2) / (a0 + a1 + a2)
}

// Reconstruct implements Scheme.
func (WENO5) Reconstruct(u, uL, uR []float64) {
	n := checkSizes(u, uL, uR, 3)
	for i := 3; i <= n-3; i++ {
		j := i - 1
		// Left state: right edge of cell j.
		uL[i] = wenoEdge(u[j-2], u[j-1], u[j], u[j+1], u[j+2])
		// Right state: left edge of cell i = mirrored stencil.
		uR[i] = wenoEdge(u[i+2], u[i+1], u[i], u[i-1], u[i-2])
	}
}

// WENOZ is the improved-weight WENO-Z scheme of Borges, Carmona, Costa &
// Don (2008): the classical stencils and smoothness indicators of WENO5
// with weights built from the global indicator τ₅ = |β₀ − β₂|, which
// restores fifth order at critical points and sharpens discontinuities
// relative to the Jiang–Shu weights.
type WENOZ struct{}

// Name implements Scheme.
func (WENOZ) Name() string { return "wenoz" }

// Ghost implements Scheme.
func (WENOZ) Ghost() int { return 3 }

// Order implements Scheme.
func (WENOZ) Order() int { return 5 }

const wenozEps = 1e-40

// wenozEdge mirrors wenoEdge but with the Borges et al. (2008) weights.
func wenozEdge(um2, um1, u0, up1, up2 float64) float64 {
	p0 := (2*um2 - 7*um1 + 11*u0) / 6
	p1 := (-um1 + 5*u0 + 2*up1) / 6
	p2 := (2*u0 + 5*up1 - up2) / 6

	b0 := 13.0/12.0*(um2-2*um1+u0)*(um2-2*um1+u0) + 0.25*(um2-4*um1+3*u0)*(um2-4*um1+3*u0)
	b1 := 13.0/12.0*(um1-2*u0+up1)*(um1-2*u0+up1) + 0.25*(um1-up1)*(um1-up1)
	b2 := 13.0/12.0*(u0-2*up1+up2)*(u0-2*up1+up2) + 0.25*(3*u0-4*up1+up2)*(3*u0-4*up1+up2)

	tau5 := math.Abs(b0 - b2)
	a0 := 0.1 * (1 + tau5/(b0+wenozEps))
	a1 := 0.6 * (1 + tau5/(b1+wenozEps))
	a2 := 0.3 * (1 + tau5/(b2+wenozEps))
	return (a0*p0 + a1*p1 + a2*p2) / (a0 + a1 + a2)
}

// Reconstruct implements Scheme.
func (WENOZ) Reconstruct(u, uL, uR []float64) {
	n := checkSizes(u, uL, uR, 3)
	for i := 3; i <= n-3; i++ {
		j := i - 1
		uL[i] = wenozEdge(u[j-2], u[j-1], u[j], u[j+1], u[j+2])
		uR[i] = wenozEdge(u[i+2], u[i+1], u[i], u[i-1], u[i-2])
	}
}

// ByName returns the scheme registered under name. Supported names:
// "pcm", "plm" (alias "plm-mc"), "plm-minmod", "plm-vanleer", "ppm",
// "weno5", "wenoz".
func ByName(name string) (Scheme, error) {
	switch name {
	case "pcm":
		return PCM{}, nil
	case "plm", "plm-mc":
		return PLM{Lim: MonotonizedCentral}, nil
	case "plm-minmod":
		return PLM{Lim: Minmod}, nil
	case "plm-vanleer":
		return PLM{Lim: VanLeer}, nil
	case "ppm":
		return PPM{}, nil
	case "weno5":
		return WENO5{}, nil
	case "wenoz":
		return WENOZ{}, nil
	}
	return nil, fmt.Errorf("recon: unknown scheme %q", name)
}

// All returns every scheme, for sweep-style benchmarks.
func All() []Scheme {
	return []Scheme{
		PCM{},
		PLM{Lim: Minmod},
		PLM{Lim: MonotonizedCentral},
		PLM{Lim: VanLeer},
		PPM{},
		WENO5{},
		WENOZ{},
	}
}
