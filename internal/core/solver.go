// Package core implements the paper's primary contribution: the
// high-resolution shock-capturing solver for special relativistic
// hydrodynamics, organised for scalable heterogeneous execution.
//
// The scheme is a finite-volume method of lines:
//
//  1. recover primitives from the conserved state (package c2p),
//  2. fill ghost zones (package grid),
//  3. per direction, reconstruct primitives at cell faces (package recon)
//     and evaluate a numerical flux at every face (package riemann),
//  4. accumulate flux differences into the right-hand side, and
//  5. advance in time with a strong-stability-preserving Runge–Kutta
//     integrator under a CFL-limited step.
//
// The RHS is decomposed into independent one-dimensional strips (grid rows
// in the sweep direction). Strips are the scheduling unit: the shared-memory
// path dispatches them onto the par.Pool, the heterogeneous path (package
// hetero) dispatches contiguous strip ranges onto devices, and the
// distributed path (package cluster) runs the same solver per rank on its
// subdomain. SweepStrips and NumStrips expose exactly this decomposition.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"rhsc/internal/c2p"
	"rhsc/internal/eos"
	"rhsc/internal/grid"
	"rhsc/internal/par"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
)

// Integrator selects the SSP Runge–Kutta time integrator.
type Integrator int

// Supported integrators.
const (
	RK1 Integrator = iota + 1 // forward Euler
	RK2                       // SSP RK2 (Heun)
	RK3                       // SSP RK3 (Shu–Osher)
)

// String implements fmt.Stringer.
func (in Integrator) String() string {
	switch in {
	case RK1:
		return "rk1"
	case RK2:
		return "rk2"
	case RK3:
		return "rk3"
	}
	return fmt.Sprintf("Integrator(%d)", int(in))
}

// Stages returns the number of RHS evaluations per step.
func (in Integrator) Stages() int { return int(in) }

// Config assembles the numerical method.
type Config struct {
	EOS        eos.EOS
	Recon      recon.Scheme
	Riemann    riemann.Solver
	Integrator Integrator
	// CFL is the Courant factor; stability requires CFL ≤ 1 in 1-D and
	// CFL ≤ 1/dim for the unsplit multidimensional update.
	CFL float64
	// Pool runs strips concurrently; nil runs serially.
	Pool *par.Pool
	// Fused enables the specialised (devirtualised, inlined) sweep kernel
	// when the configuration matches PLM-MC + HLLC + ideal gas; results
	// are bitwise identical to the generic path, only faster. Other
	// configurations ignore the flag.
	Fused bool
	// C2POpts overrides the conservative-to-primitive options; zero value
	// selects c2p.DefaultOptions.
	C2POpts c2p.Options
	// Source, when non-nil, adds the source term Source(x,y,z,w) to the
	// right-hand side of the cell at physical position (x,y,z) with
	// primitive state w.
	Source func(x, y, z float64, w state.Prim) state.Cons
	// SweepExec, when non-nil, replaces the default pool execution of the
	// strip sweeps: it must invoke sweep over disjoint subranges covering
	// [0, nStrips) and return only when all strips are done. Package
	// hetero uses this hook to dispatch strips onto modelled devices.
	// Installing a SweepExec selects the per-direction strip traversal:
	// the cache-blocked tile engine is bypassed (results are bitwise
	// identical either way; see docs/PERFORMANCE.md).
	SweepExec func(d state.Direction, nStrips int, sweep func(lo, hi int))
	// TileJ and TileK set the pencil-tile extents (in cells along y and z)
	// of the cache-blocked fused-direction traversal; zero selects the
	// default. Tile sizes need not divide the grid — edge tiles shrink.
	// The tile size never changes results, only cache behaviour.
	TileJ, TileK int
	// TileExec, when non-nil, replaces the default pool execution of the
	// tile sweeps: it must invoke run over disjoint subranges covering
	// [0, nTiles) and return only when all tiles are done. Ignored when a
	// SweepExec is installed (strips take precedence as the work unit).
	TileExec func(nTiles int, run func(lo, hi int))
	// NoTiling disables the cache-blocked tile engine and restores the
	// pre-tile per-direction strip traversal. Results are bitwise
	// identical either way; the switch exists for A/B benchmarking and
	// the equivalence tests.
	NoTiling bool
	// HaloExchange, when non-nil, is called after every primitive
	// recovery (once per RK stage) with the freshly recovered primitive
	// field, so a distributed driver can fill ghost faces marked
	// grid.External with neighbouring ranks' data. Package cluster uses
	// this hook.
	HaloExchange func(w *state.Fields)
	// StrictChecks validates every RK stage: a full-interior NaN/Inf and
	// D/tau positivity scan of the conserved field, plus the stage's
	// count of c2p atmosphere resets (the recovery rewrites failed cells,
	// so the count is the only trace of a failed inversion). A violation
	// aborts the step with a *StateError, leaving the state mid-update;
	// callers that enable it must be prepared to restore a snapshot on
	// error — package resilience does exactly that. Off by default: the
	// unguarded path keeps the cheap strided probe.
	StrictChecks bool
	// StrictC2PLimit is the number of atmosphere resets a single RK stage
	// tolerates under StrictChecks before the step is declared violated.
	// The default 0 treats any failed inversion as a fault.
	StrictC2PLimit int
	// FailSafe enables the a posteriori subcell fail-safe pipeline: after
	// every candidate RK stage a detector flags troubled cells (NaN/Inf,
	// D<=0, tau<=0, failed c2p inversion, relaxed-admissibility rho/P
	// jumps) and the solver re-updates only those cells with first-order
	// PCM+HLL fluxes, replacing the troubled faces' fluxes on both sides
	// so conservation stays exact (see docs/RESILIENCE.md). A stage with
	// zero troubled cells is bitwise identical to the plain pipeline.
	FailSafe bool
	// FailSafeRelax scales the relaxed discrete-maximum-principle bound of
	// the detector: a candidate rho or P outside the pre-stage face
	// neighbourhood's [min, max] widened by Relax*(max-min) plus a 1e-6
	// relative cushion is troubled. Zero selects the default 1.0.
	FailSafeRelax float64
	// FailSafeMaxFrac, when positive, demotes the stage to a hard
	// *StateError (for the caller's global retry) when the troubled
	// fraction of interior cells exceeds it — a failure that widespread is
	// not local. Zero never demotes on fraction.
	FailSafeMaxFrac float64
	// MaskExchange, when non-nil, is called by the fail-safe repair with
	// the troubled-cell mask (full grid layout, ghosts included) after the
	// local boundary fill, so a distributed driver can fill ghost-band
	// mask entries of faces marked grid.External with its neighbours'
	// flags — the cross-rank analogue of HaloExchange.
	MaskExchange func(mask []uint8)
	// FaultHook, when non-nil, is called after every candidate RK stage
	// update with the stage index and the conserved field, before any
	// validation or fail-safe detection. Deterministic fault injectors use
	// it to corrupt the in-flight stage (package resilience).
	FaultHook func(stage int, u *state.Fields)
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments unless stated otherwise: Γ = 5/3 ideal gas, PLM-MC
// reconstruction, HLLC fluxes, SSP RK2, CFL 0.4.
func DefaultConfig() Config {
	return Config{
		EOS:        eos.NewIdealGas(5.0 / 3.0),
		Recon:      recon.PLM{Lim: recon.MonotonizedCentral},
		Riemann:    riemann.HLLC{},
		Integrator: RK2,
		CFL:        0.4,
	}
}

// Stats counts solver work, updated atomically.
type Stats struct {
	Steps       atomic.Int64 // completed time steps
	RHSEvals    atomic.Int64 // right-hand-side evaluations
	ZoneUpdates atomic.Int64 // interior zones × RHS evaluations
	C2PResets   atomic.Int64 // cells reset to atmosphere during recovery
	Troubled    atomic.Int64 // cells flagged by the fail-safe detector
	Repaired    atomic.Int64 // flagged cells re-updated by the local repair
}

// Solver advances one grid in time.
type Solver struct {
	G   *grid.Grid
	Cfg Config
	C2P *c2p.Solver
	St  Stats

	t       float64
	rhs     *state.Fields
	u0      *state.Fields   // RK stage-zero storage
	scratch chan *rowScratch // free list of row scratch buffers
	newScratch func() *rowScratch
	mon     *Monitor
	fused   fusedKind    // specialised kernel active (see Config.Fused)
	gamma   float64      // Γ of the ideal gas when fused != fusedNone
	trc     *tracerState // passive scalar; nil when disabled

	// Pre-bound chunk bodies for parallelFor. A closure literal passed to
	// the pool escapes and would be heap-allocated at every call site;
	// binding them once here keeps the steady-state step allocation-free.
	// The cur* fields are the per-call parameters the sweep body reads;
	// they are written before the parallel region starts and are read-only
	// inside it.
	sweepChunk   func(lo, hi int)
	recoverChunk func(lo, hi int)
	cflChunk     func(lo, hi int)
	curDir       state.Direction
	curRHS       *state.Fields
	curOverwrite bool
	recAccum     bool
	recResets    atomic.Int64
	recFlagging  bool // recovery flags failures instead of resetting (fail-safe)
	recMu        sync.Mutex
	recFirstIdx  int // flat index of the lowest failed inversion, -1 if none
	recFirstCons state.Cons

	// Fail-safe pipeline state (Config.FailSafe; see failsafe.go). All
	// buffers are allocated once so the zero-troubled steady state stays
	// allocation-free.
	fsMask    []uint8       // troubled-cell mask, full grid layout
	fsTouched []uint8       // cells whose U the repair rewrote
	fsU       *state.Fields // pre-stage conserved snapshot
	fsW       *state.Fields // pre-stage primitive snapshot
	fsGamma   float64       // Γ of the ideal gas for the fused low-order flux, else 0
	fsStrides []int         // flat-index strides of the active dims (DMP neighbourhood)
	fsScanChunk, fsDMPChunk func(lo, hi int)
	fsCount                 atomic.Int64

	// In-pass CFL reduction state: RecoverPrimitives, when armed via
	// cflAccum (Step arms its final stage), folds the per-row max signal
	// speed into cflRows while the freshly recovered primitives are still
	// in cache, and MaxDt becomes a cheap combine. cflValid is cleared by
	// anything that rewrites W (an unarmed recovery, InvalidateCFL) and
	// MaxDt falls back to a full traversal.
	cflRows  []float64
	cflMax   float64
	cflValid bool
	cflAccum bool

	// Cache-blocked tile engine state (see tiles.go): the precomputed
	// pencil-tile schedule over the (j, k) plane, the resolved tile
	// extents, and the pre-bound parallel chunk body.
	tiles        []tileSpan
	tileJ, tileK int
	tileChunk    func(lo, hi int)
}

// panelW is the number of parallel y/z strips gathered per panel
// transpose: eight float64s — one 64-byte cache line — so each contiguous
// run state.PanelGather copies consumes exactly the line that fetched it.
const panelW = 8

type rowScratch struct {
	u  [state.NComp][]float64 // gathered primitives along the strip
	fl [state.NComp][]float64 // reconstructed left face states
	fr [state.NComp][]float64 // reconstructed right face states
	fx [state.NComp][]float64 // face fluxes
	pu [state.NComp][]float64 // panel-transposed primitives, panelW rows
}

// New constructs a solver for grid g. The grid's ghost width must cover
// the reconstruction stencil.
func New(g *grid.Grid, cfg Config) (*Solver, error) {
	if cfg.EOS == nil || cfg.Recon == nil || cfg.Riemann == nil {
		return nil, errors.New("core: Config needs EOS, Recon and Riemann")
	}
	if cfg.Integrator < RK1 || cfg.Integrator > RK3 {
		return nil, fmt.Errorf("core: unknown integrator %d", cfg.Integrator)
	}
	if cfg.CFL <= 0 || cfg.CFL > 1 {
		return nil, fmt.Errorf("core: CFL %v outside (0,1]", cfg.CFL)
	}
	if need := cfg.Recon.Ghost(); g.Ng < need {
		return nil, fmt.Errorf("core: grid ghost width %d < %d required by %s",
			g.Ng, need, cfg.Recon.Name())
	}
	if cfg.TileJ < 0 || cfg.TileK < 0 {
		return nil, fmt.Errorf("core: negative tile size %dx%d", cfg.TileJ, cfg.TileK)
	}
	cs := c2p.NewSolver(cfg.EOS)
	if cfg.C2POpts != (c2p.Options{}) {
		cs.Opts = cfg.C2POpts
	}
	maxRow := g.TotalX
	if g.TotalY > maxRow {
		maxRow = g.TotalY
	}
	if g.TotalZ > maxRow {
		maxRow = g.TotalZ
	}
	s := &Solver{
		G:   g,
		Cfg: cfg,
		C2P: cs,
		rhs: state.NewFields(g.NCells()),
		u0:  state.NewFields(g.NCells()),
	}
	// Row scratch free list. Unlike sync.Pool the channel is immune to GC
	// eviction, so once the list is warm the steady-state step allocates
	// nothing. The capacity covers the maximum number of concurrently
	// running strip chunks (pool slots plus the caller, plus headroom for
	// hetero device executors); a get on an empty list allocates and a put
	// on a full list drops, so capacity is a performance bound, never a
	// correctness one.
	capHint := 4
	if cfg.Pool != nil {
		capHint = cfg.Pool.Size() + 2
	}
	if n := runtime.NumCPU() + 4; n > capHint {
		capHint = n
	}
	s.scratch = make(chan *rowScratch, capHint)
	s.newScratch = func() *rowScratch {
		rs := &rowScratch{}
		for c := 0; c < state.NComp; c++ {
			rs.u[c] = make([]float64, maxRow)
			rs.fl[c] = make([]float64, maxRow+1)
			rs.fr[c] = make([]float64, maxRow+1)
			rs.fx[c] = make([]float64, maxRow+1)
			rs.pu[c] = make([]float64, panelW*maxRow)
		}
		return rs
	}
	s.cflRows = make([]float64, (g.JEnd()-g.JBeg())*(g.KEnd()-g.KBeg()))
	s.sweepChunk = func(lo, hi int) {
		s.sweepStrips(s.curDir, lo, hi, s.curRHS, s.curOverwrite)
	}
	s.recoverChunk = func(lo, hi int) {
		gr := s.G
		ny := gr.JEnd() - gr.JBeg()
		n := 0
		firstIdx := -1
		var firstCons state.Cons
		mask := s.fsMask
		reset := true
		if s.recFlagging {
			reset = false
		} else {
			mask = nil
		}
		for r := lo; r < hi; r++ {
			j := gr.JBeg() + r%ny
			k := gr.KBeg() + r/ny
			row := (k*gr.TotalY + j) * gr.TotalX
			res := s.C2P.RecoverRangeEx(gr.U, gr.W, row+gr.IBeg(), row+gr.IEnd(), mask, reset)
			if res.Failures > 0 {
				n += res.Failures
				if firstIdx < 0 || res.FirstIdx < firstIdx {
					firstIdx, firstCons = res.FirstIdx, res.FirstCons
				}
			}
			if s.recAccum {
				s.cflRows[r] = s.rowCFL(row)
			}
		}
		if n > 0 {
			s.recResets.Add(int64(n))
			s.recMu.Lock()
			if s.recFirstIdx < 0 || firstIdx < s.recFirstIdx {
				s.recFirstIdx, s.recFirstCons = firstIdx, firstCons
			}
			s.recMu.Unlock()
		}
	}
	s.cflChunk = func(lo, hi int) {
		gr := s.G
		ny := gr.JEnd() - gr.JBeg()
		for r := lo; r < hi; r++ {
			j := gr.JBeg() + r%ny
			k := gr.KBeg() + r/ny
			s.cflRows[r] = s.rowCFL((k*gr.TotalY + j) * gr.TotalX)
		}
	}
	s.initTiles()
	s.refreshFused()
	return s, nil
}

// refreshFused re-evaluates fused-kernel eligibility and caches the
// adiabatic index the specialised kernels inline.
func (s *Solver) refreshFused() {
	s.fused = s.fusable()
	if s.fused != fusedNone {
		s.gamma = s.Cfg.EOS.(eos.IdealGas).GammaAd
	}
}

func (s *Solver) getScratch() *rowScratch {
	select {
	case sc := <-s.scratch:
		return sc
	default:
		return s.newScratch()
	}
}

func (s *Solver) putScratch(sc *rowScratch) {
	select {
	case s.scratch <- sc:
	default:
	}
}

// Fused reports whether a specialised sweep kernel is active.
func (s *Solver) Fused() bool { return s.fused != fusedNone }

// Time returns the current solution time.
func (s *Solver) Time() float64 { return s.t }

// SetTime overrides the solution clock (used when restoring checkpoints).
func (s *Solver) SetTime(t float64) { s.t = t }

// InitFromPrim fills the grid from a primitive-state function of position
// and synchronises the conserved variables. An unphysical initial state
// (negative density or pressure, superluminal velocity) aborts the fill
// with an error and leaves the grid partially initialised.
func (s *Solver) InitFromPrim(fn func(x, y, z float64) state.Prim) error {
	g := s.G
	var initErr error
	g.ForEachInterior(func(idx, i, j, k int) {
		if initErr != nil {
			return
		}
		w := fn(g.X(i), g.Y(j), g.Z(k))
		if !w.IsPhysical() {
			initErr = fmt.Errorf("core: unphysical initial state %+v at (%d,%d,%d)", w, i, j, k)
			return
		}
		g.W.SetPrim(idx, w)
		g.U.SetCons(idx, w.ToCons(s.Cfg.EOS))
	})
	if initErr != nil {
		return initErr
	}
	g.ApplyBCs(g.W)
	g.ApplyBCs(g.U)
	s.cflValid = false
	return nil
}

// parallelFor runs fn over [0,n) strips, using the pool when configured.
func (s *Solver) parallelFor(n int, fn func(lo, hi int)) {
	if s.Cfg.Pool == nil {
		fn(0, n)
		return
	}
	s.Cfg.Pool.ParallelFor(0, n, 0, fn)
}

// RecoverPrimitives inverts the conserved state into s.G.W over the whole
// interior and applies boundary conditions to the primitives. It returns
// the number of atmosphere resets.
//
// When the in-pass CFL reduction is armed (AccumulateCFLNext, or the
// final stage of Step), the per-row max signal speed is folded into the
// same traversal — the freshly recovered primitives are still in cache —
// and the following MaxDt becomes a cheap combine. An unarmed call
// invalidates the cache instead: it rewrote W, so a cached reduction
// would be stale.
func (s *Solver) RecoverPrimitives() int {
	return s.recoverPrims(false)
}

// recoverPrims is RecoverPrimitives with an optional flagging mode: the
// fail-safe detector recovers with failures marking s.fsMask and leaving
// the conserved state untouched (the repair recomputes those cells from
// pre-stage data), instead of the default atmosphere reset.
func (s *Solver) recoverPrims(flagging bool) int {
	g := s.G
	ny := g.JEnd() - g.JBeg()
	nz := g.KEnd() - g.KBeg()
	accum := s.cflAccum
	s.cflAccum = false
	s.cflValid = false
	s.recAccum = accum
	s.recFlagging = flagging
	s.recResets.Store(0)
	s.recFirstIdx = -1
	s.parallelFor(ny*nz, s.recoverChunk)
	s.recFlagging = false
	if accum {
		s.cflMax = s.combineCFL()
		s.cflValid = true
	}
	g.ApplyBCs(g.W)
	if s.Cfg.HaloExchange != nil {
		s.Cfg.HaloExchange(g.W)
	}
	if s.trc != nil {
		s.tracerRecover()
	}
	r := int(s.recResets.Load())
	if !flagging {
		s.St.C2PResets.Add(int64(r))
	}
	return r
}

// AccumulateCFLNext arms the next RecoverPrimitives call to fuse the CFL
// reduction into its recovery pass. Drivers that manage recovery
// themselves (the AMR trees) arm the final recovery of each step so their
// MaxDt queries hit the cache.
func (s *Solver) AccumulateCFLNext() { s.cflAccum = true }

// InvalidateCFL discards the cached CFL reduction. Callers that rewrite
// the primitive field directly — restoring a snapshot, installing
// migrated or checkpointed blocks — must invalidate, or the next MaxDt
// would reflect the overwritten state. Recovery passes handle their own
// bookkeeping; this is only for raw writes that bypass them.
func (s *Solver) InvalidateCFL() { s.cflValid = false }

// combineCFL reduces the per-row maxima exactly as the standalone
// traversal in MaxDt always has: a serial max in row order, so the result
// is bitwise identical however the rows were produced.
func (s *Solver) combineCFL() float64 {
	maxSum := 0.0
	for _, v := range s.cflRows {
		if v > maxSum {
			maxSum = v
		}
	}
	return maxSum
}

// rowCFL returns the row's max over cells of Σ_d λ_max/dx_d — the CFL
// reduction unit shared by the in-pass accumulation and the fallback
// traversal, so the two are bitwise identical by construction. The fused
// configurations inline the Γ-law sound speed (mirroring
// eos.IdealGas.SoundSpeed2 and state.WaveSpeeds operation for operation);
// every other configuration goes through the EOS interface unchanged.
func (s *Solver) rowCFL(row int) float64 {
	g := s.G
	rowMax := 0.0
	if s.fused != fusedNone {
		gamma := s.gamma
		w := g.W
		rhoC, vxC, vyC, vzC, pC := w.Comp[state.IRho], w.Comp[state.IVx],
			w.Comp[state.IVy], w.Comp[state.IVz], w.Comp[state.IP]
		hasY, hasZ := g.Ny > 1, g.Nz > 1
		for i := g.IBeg(); i < g.IEnd(); i++ {
			idx := row + i
			rho, vx, vy, vz, p := rhoC[idx], vxC[idx], vyC[idx], vzC[idx], pC[idx]
			v2 := vx*vx + vy*vy + vz*vz
			h := 1 + gamma/(gamma-1)*p/rho
			cs2 := gamma * p / (rho * h)
			sqrtCs2 := math.Sqrt(cs2)
			sum := fusedMaxSpeed(vx, v2, cs2, sqrtCs2) / g.Dx
			if hasY {
				sum += fusedMaxSpeed(vy, v2, cs2, sqrtCs2) / g.Dy
			}
			if hasZ {
				sum += fusedMaxSpeed(vz, v2, cs2, sqrtCs2) / g.Dz
			}
			if sum > rowMax {
				rowMax = sum
			}
		}
		return rowMax
	}
	e := s.Cfg.EOS
	dims := g.ActiveDims()
	for i := g.IBeg(); i < g.IEnd(); i++ {
		w := g.W.GetPrim(row + i)
		sum := 0.0
		for _, d := range dims {
			dx := g.Dx
			if d == state.Y {
				dx = g.Dy
			} else if d == state.Z {
				dx = g.Dz
			}
			sum += state.MaxAbsSpeed(e, w, d) / dx
		}
		if sum > rowMax {
			rowMax = sum
		}
	}
	return rowMax
}

// fusedMaxSpeed mirrors state.WaveSpeeds + state.MaxAbsSpeed with the
// Γ-law sound speed precomputed (cs² is direction-independent; computing
// it once per cell is bitwise identical to recomputing it per direction).
func fusedMaxSpeed(vd, v2, cs2, sqrtCs2 float64) float64 {
	den := 1 - v2*cs2
	disc := (1 - v2) * (1 - v2*cs2 - vd*vd*(1-cs2))
	if disc < 0 {
		disc = 0
	}
	root := math.Sqrt(disc) * sqrtCs2
	lm := (vd*(1-cs2) - root) / den
	lp := (vd*(1-cs2) + root) / den
	return math.Max(math.Abs(lm), math.Abs(lp))
}

// NumStrips returns the number of independent one-dimensional strips of
// the sweep along direction d: one strip per interior row.
func (s *Solver) NumStrips(d state.Direction) int {
	g := s.G
	switch d {
	case state.X:
		return (g.JEnd() - g.JBeg()) * (g.KEnd() - g.KBeg())
	case state.Y:
		return g.Nx * (g.KEnd() - g.KBeg())
	default:
		return g.Nx * (g.JEnd() - g.JBeg())
	}
}

// StripZones returns the number of interior zones a single strip of
// direction d updates (the work unit for device cost models).
func (s *Solver) StripZones(d state.Direction) int {
	switch d {
	case state.X:
		return s.G.Nx
	case state.Y:
		return s.G.Ny
	default:
		return s.G.Nz
	}
}

// SweepStrips runs the flux sweep along direction d for strips [lo, hi),
// accumulating −∂F/∂x_d into rhs. Strips of one direction touch disjoint
// cells, so disjoint ranges may run concurrently. The primitive field
// (including ghosts) must be current.
func (s *Solver) SweepStrips(d state.Direction, lo, hi int, rhs *state.Fields) {
	s.sweepStrips(d, lo, hi, rhs, false)
}

// sweepStrips is SweepStrips with an overwrite mode: ComputeRHS runs the
// first active direction in overwrite mode (out = 0 − ΔF/dx, exactly the
// arithmetic a zeroed rhs accumulation performs) so the full-field
// rhs.Zero() traversal disappears from the hot loop.
func (s *Solver) sweepStrips(d state.Direction, lo, hi int, rhs *state.Fields, overwrite bool) {
	sc := s.getScratch()
	defer s.putScratch(sc)
	g := s.G
	switch d {
	case state.X:
		ny := g.JEnd() - g.JBeg()
		for r := lo; r < hi; r++ {
			j := g.JBeg() + r%ny
			k := g.KBeg() + r/ny
			s.sweepRow(d, g.Idx(0, j, k), 1, g.TotalX, g.IBeg(), g.IEnd(), g.Dx, sc, rhs, overwrite)
		}
	case state.Y:
		// Strips of one k are consecutive in i (strip r ↦ i fastest), so
		// runs of up to panelW strips share a panel transpose; the chunk
		// boundary and the end of an i-row cap each run. Grouping never
		// changes a row's gathered values, so any chunking is bitwise
		// identical to per-strip gathers.
		for r := lo; r < hi; {
			i := g.IBeg() + r%g.Nx
			k := g.KBeg() + r/g.Nx
			p := hi - r
			if rem := g.Nx - r%g.Nx; rem < p {
				p = rem
			}
			if p > panelW {
				p = panelW
			}
			s.sweepPanel(d, g.Idx(i, 0, k), g.TotalX, g.TotalY, g.JBeg(), g.JEnd(), g.Dy, p, sc, rhs, overwrite)
			r += p
		}
	default:
		for r := lo; r < hi; {
			i := g.IBeg() + r%g.Nx
			j := g.JBeg() + r/g.Nx
			p := hi - r
			if rem := g.Nx - r%g.Nx; rem < p {
				p = rem
			}
			if p > panelW {
				p = panelW
			}
			s.sweepPanel(d, g.Idx(i, j, 0), g.TotalX*g.TotalY, g.TotalZ, g.KBeg(), g.KEnd(), g.Dz, p, sc, rhs, overwrite)
			r += p
		}
	}
}

// gatherRow views one strip of the primitive field as per-component
// contiguous rows: x strips alias W directly (stride 1, read-only), y/z
// strips gather into the scratch buffers via the shared panel-copy
// helper (degenerate single-row form).
func gatherRow(w *state.Fields, base, stride, n int, sc *rowScratch) (u [state.NComp][]float64) {
	for c := 0; c < state.NComp; c++ {
		src := w.Comp[c]
		if stride == 1 {
			u[c] = src[base : base+n]
			continue
		}
		dst := sc.u[c][:n]
		state.PanelGather(dst, src, base, 1, stride, 1, n)
		u[c] = dst
	}
	return u
}

// accumulateRow folds the face flux differences −(F_{i+1} − F_i)/dx into
// the interior cells of the strip. Overwrite mode writes 0 − ΔF/dx —
// bitwise what accumulation into a zeroed rhs produces (including the
// sign of zero) — so ComputeRHS can skip the rhs.Zero() pass.
func accumulateRow(sc *rowScratch, rhs *state.Fields, base, stride, cBeg, cEnd int,
	dx float64, overwrite bool) {

	invDx := 1 / dx
	for c := 0; c < state.NComp; c++ {
		fxc := sc.fx[c]
		out := rhs.Comp[c]
		idx := base + cBeg*stride
		if overwrite {
			for i := cBeg; i < cEnd; i++ {
				out[idx] = 0 - (fxc[i+1]-fxc[i])*invDx
				idx += stride
			}
		} else {
			for i := cBeg; i < cEnd; i++ {
				out[idx] -= (fxc[i+1] - fxc[i]) * invDx
				idx += stride
			}
		}
	}
}

// fillFluxGeneric reconstructs the gathered strip u with the configured
// scheme and writes the faces' Riemann fluxes into sc.fx — the flux half
// of sweepRow, shared with the fail-safe repair so recomputed fluxes are
// bitwise identical to the sweep's.
func (s *Solver) fillFluxGeneric(d state.Direction, u [state.NComp][]float64, n, cBeg, cEnd int,
	sc *rowScratch) {

	// Reconstruct every component.
	for c := 0; c < state.NComp; c++ {
		s.Cfg.Recon.Reconstruct(u[c], sc.fl[c][:n+1], sc.fr[c][:n+1])
	}

	// Face fluxes for faces cBeg..cEnd (cell i owns faces i and i+1).
	e := s.Cfg.EOS
	for f := cBeg; f <= cEnd; f++ {
		pl := state.Prim{
			Rho: sc.fl[state.IRho][f], Vx: sc.fl[state.IVx][f],
			Vy: sc.fl[state.IVy][f], Vz: sc.fl[state.IVz][f], P: sc.fl[state.IP][f],
		}
		pr := state.Prim{
			Rho: sc.fr[state.IRho][f], Vx: sc.fr[state.IVx][f],
			Vy: sc.fr[state.IVy][f], Vz: sc.fr[state.IVz][f], P: sc.fr[state.IP][f],
		}
		// Fall back to first-order states when high-order reconstruction
		// produced an inadmissible face state (possible near strong shocks
		// and vacuum).
		if !pl.IsPhysical() {
			pl = state.Prim{
				Rho: u[state.IRho][f-1], Vx: u[state.IVx][f-1],
				Vy: u[state.IVy][f-1], Vz: u[state.IVz][f-1], P: u[state.IP][f-1],
			}
		}
		if !pr.IsPhysical() {
			pr = state.Prim{
				Rho: u[state.IRho][f], Vx: u[state.IVx][f],
				Vy: u[state.IVy][f], Vz: u[state.IVz][f], P: u[state.IP][f],
			}
		}
		fx := s.Cfg.Riemann.Flux(e, pl, pr, d)
		sc.fx[state.ID][f] = fx.D
		sc.fx[state.ISx][f] = fx.Sx
		sc.fx[state.ISy][f] = fx.Sy
		sc.fx[state.ISz][f] = fx.Sz
		sc.fx[state.ITau][f] = fx.Tau
	}
}

// fillFlux dispatches the configured flux kernel for a gathered row (or
// tile segment) u of n cells, writing face fluxes [cBeg, cEnd] into
// sc.fx. It is the single flux entry point shared by the strip sweeps,
// the tile engine, and the fail-safe repair, so fluxes recomputed
// anywhere are bitwise identical to the sweep's.
func (s *Solver) fillFlux(d state.Direction, u [state.NComp][]float64, n, cBeg, cEnd int,
	sc *rowScratch) {

	switch s.fused {
	case fusedPLMHLLC:
		s.fillFluxPLMHLLC(d, u, n, cBeg, cEnd, sc)
	case fusedPCMHLL:
		fillFluxPCMHLL(s.gamma, d, u, cBeg, cEnd, sc)
	default:
		s.fillFluxGeneric(d, u, n, cBeg, cEnd, sc)
	}
}

// sweepRow performs one strip: gather primitives along the row starting at
// flat index base with the given stride and length n, reconstruct, solve
// the face Riemann problems, and accumulate flux differences for interior
// cells [cBeg, cEnd).
func (s *Solver) sweepRow(d state.Direction, base, stride, n, cBeg, cEnd int, dx float64,
	sc *rowScratch, rhs *state.Fields, overwrite bool) {

	// Gather the strip (aliased for x, strided copy for y/z).
	u := gatherRow(s.G.W, base, stride, n, sc)

	s.fillFlux(d, u, n, cBeg, cEnd, sc)

	accumulateRow(sc, rhs, base, stride, cBeg, cEnd, dx, overwrite)

	if s.trc != nil {
		s.tracerSweepRow(base, stride, cBeg, cEnd, dx, sc)
	}
}

// sweepPanel runs nrows parallel strips of direction d whose bases are
// base, base+1, … (adjacent x columns): one panel transpose per component
// gathers all rows in contiguous runs (state.PanelGather), then each row
// goes through the same flux and accumulate kernels as sweepRow. Results
// are bitwise identical to nrows independent sweepRow calls — the panel
// only changes how the strided loads are scheduled. Used by both the
// legacy strip path (grouping adjacent y/z strips) and the tile engine
// (tile-interior segments).
func (s *Solver) sweepPanel(d state.Direction, base, stride, n, cBeg, cEnd int, dx float64,
	nrows int, sc *rowScratch, rhs *state.Fields, overwrite bool) {

	w := s.G.W
	for c := 0; c < state.NComp; c++ {
		state.PanelGather(sc.pu[c], w.Comp[c], base, 1, stride, nrows, n)
	}
	var u [state.NComp][]float64
	for r := 0; r < nrows; r++ {
		for c := 0; c < state.NComp; c++ {
			u[c] = sc.pu[c][r*n : (r+1)*n]
		}
		rbase := base + r
		s.fillFlux(d, u, n, cBeg, cEnd, sc)
		accumulateRow(sc, rhs, rbase, stride, cBeg, cEnd, dx, overwrite)
		if s.trc != nil {
			s.tracerSweepRow(rbase, stride, cBeg, cEnd, dx, sc)
		}
	}
}

// ComputeRHS evaluates the full right-hand side into rhs. Primitives and
// their ghosts must be current (call RecoverPrimitives first).
//
// The default traversal is the cache-blocked tile engine (tiles.go): one
// fused pass over pencil tiles of the (j, k) plane, each tile
// accumulating its x, y and z flux divergences while its working set is
// cache resident. Installing a SweepExec (the hetero device hook) or
// setting Config.NoTiling selects the pre-tile per-direction strip
// traversal instead; both orders produce bitwise-identical results.
//
// The sweeps write every interior cell (the first direction overwrites,
// the rest accumulate) and never touch ghost cells, so rhs ghost entries
// keep whatever value they had — zero for any Fields that has only ever
// been used as an RHS, exactly as the former full-field Zero() left them.
func (s *Solver) ComputeRHS(rhs *state.Fields) {
	if s.trc != nil {
		zeroScalar(s.trc.rhs)
	}
	if s.tilingOn() {
		s.curRHS = rhs
		nt := len(s.tiles)
		if s.Cfg.TileExec != nil {
			s.Cfg.TileExec(nt, s.tileChunk)
		} else {
			s.parallelFor(nt, s.tileChunk)
		}
	} else {
		for di, d := range s.G.ActiveDims() {
			n := s.NumStrips(d)
			s.curDir, s.curRHS, s.curOverwrite = d, rhs, di == 0
			if s.Cfg.SweepExec != nil {
				s.Cfg.SweepExec(d, n, s.sweepChunk)
			} else {
				s.parallelFor(n, s.sweepChunk)
			}
		}
	}
	if src := s.Cfg.Source; src != nil {
		g := s.G
		g.ForEachInterior(func(idx, i, j, k int) {
			c := src(g.X(i), g.Y(j), g.Z(k), g.W.GetPrim(idx))
			rhs.Comp[state.ID][idx] += c.D
			rhs.Comp[state.ISx][idx] += c.Sx
			rhs.Comp[state.ISy][idx] += c.Sy
			rhs.Comp[state.ISz][idx] += c.Sz
			rhs.Comp[state.ITau][idx] += c.Tau
		})
	}
	s.St.RHSEvals.Add(1)
	s.St.ZoneUpdates.Add(int64(s.G.Nx * s.G.Ny * s.G.Nz))
}

// MaxDt returns the CFL-limited time step for the current state. In the
// steady-state loop the reduction was already folded into the final
// recovery of the previous Step and this is a cached combine; the first
// call (and any call after a state rewrite, see InvalidateCFL) performs
// the full traversal into the solver-owned cflRows scratch.
func (s *Solver) MaxDt() float64 {
	if !s.cflValid {
		s.parallelFor(len(s.cflRows), s.cflChunk)
		s.cflMax = s.combineCFL()
		s.cflValid = true
	}
	maxSum := s.cflMax
	if maxSum <= 0 {
		// Degenerate (cold static) state: fall back to light-crossing time.
		maxSum = 1 / s.G.Dx
	}
	return s.Cfg.CFL / maxSum
}

// GeometricSource returns the source term that converts the 1-D planar
// solver into curvilinear radial symmetry, treating x as the radius r:
// alpha = 1 gives cylindrical symmetry, alpha = 2 spherical. The radial
// part of the divergence 1/r^α ∂_r(r^α F) − ∂_r F contributes
//
//	S(D)   = −α/r · D v_r
//	S(S_r) = −α/r · S_r v_r     (the pressure term is not geometric)
//	S(τ)   = −α/r · (S_r − D v_r)
//
// Use with a Reflect boundary at r = 0 (or a grid starting at r > 0).
func GeometricSource(e eos.EOS, alpha int) func(x, y, z float64, w state.Prim) state.Cons {
	a := float64(alpha)
	return func(x, _, _ float64, w state.Prim) state.Cons {
		if x <= 0 {
			return state.Cons{}
		}
		u := w.ToCons(e)
		f := a / x * w.Vx
		return state.Cons{
			D:   -f * u.D,
			Sx:  -a / x * u.Sx * w.Vx,
			Tau: -a / x * (u.Sx - u.D*w.Vx),
		}
	}
}

// ErrNonFinite is returned by Step when the update produced NaN or Inf.
var ErrNonFinite = errors.New("core: non-finite state after step")

// Step advances the solution by dt with the configured SSP-RK integrator.
//
// Invariant: on entry and on return the primitive field s.G.W (including
// ghosts) is consistent with the conserved field s.G.U. InitFromPrim
// establishes it; callers that fill U by hand must call
// RecoverPrimitives once before stepping.
//
// When Config.StrictChecks is set and a stage produces an inadmissible
// state, Step returns a *StateError with the update incomplete: U and W
// then hold the partial stage result, and the caller must restore a
// snapshot (see package resilience) before stepping again.
func (s *Solver) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("core: non-positive dt %v", dt)
	}
	if s.Cfg.FailSafe {
		if s.trc != nil {
			return errors.New("core: FailSafe does not support the passive tracer")
		}
		if s.fsMask == nil {
			s.initFS()
		}
	}
	u := s.G.U

	// The final stage's recovery reads exactly the primitives the next
	// MaxDt needs, so it carries the CFL reduction (see RecoverPrimitives).
	// Each combineStage fuses AXPY + LinComb2 into one traversal; the
	// per-element arithmetic of the split operations is preserved bitwise.
	switch s.Cfg.Integrator {
	case RK1:
		if s.trc != nil {
			copy(s.trc.u0, s.trc.cons)
		}
		s.cflAccum = true
		if err := s.eulerStage(dt); err != nil {
			return err
		}

	case RK2: // SSP RK2: u^{n+1} = ½u⁰ + ½(u⁰ + dtL)(twice)
		s.u0.CopyFrom(u)
		if s.trc != nil {
			copy(s.trc.u0, s.trc.cons)
		}
		if err := s.eulerStage(dt); err != nil {
			return err
		}
		s.cflAccum = true
		if err := s.combineStage(2, dt, 0.5, 0.5); err != nil {
			return err
		}

	case RK3: // Shu–Osher SSP RK3
		s.u0.CopyFrom(u)
		if s.trc != nil {
			copy(s.trc.u0, s.trc.cons)
		}
		if err := s.eulerStage(dt); err != nil {
			return err
		}
		if err := s.combineStage(2, dt, 0.75, 0.25); err != nil {
			return err
		}
		s.cflAccum = true
		if err := s.combineStage(3, dt, 1.0/3.0, 2.0/3.0); err != nil {
			return err
		}
	}

	// Cheap finiteness probe on a stride through the data; a full scan
	// every step would cost a noticeable fraction of the RHS. Strict
	// checks already scanned every cell above.
	if !s.Cfg.StrictChecks {
		raw := u.Raw()
		for i := 0; i < len(raw); i += 97 {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return ErrNonFinite
			}
		}
	}

	s.t += dt
	steps := s.St.Steps.Add(1)
	if s.mon != nil && (steps == 1 || steps%int64(s.mon.Every) == 0) {
		s.mon.record(s, dt)
	}
	return nil
}

// eulerStage performs u ← u + dt·L(u) and refreshes primitives — the
// first stage of every SSP integrator.
func (s *Solver) eulerStage(dt float64) error {
	s.ComputeRHS(s.rhs)
	fs := s.fsOn()
	if fs {
		s.FSBegin()
	}
	s.G.U.AXPY(dt, s.rhs)
	if s.trc != nil {
		axpyScalar(s.trc.cons, dt, s.trc.rhs)
	}
	if hook := s.Cfg.FaultHook; hook != nil {
		hook(1, s.G.U)
	}
	if fs {
		return s.fsStagePost(1, dt, 0, 1)
	}
	return s.stageCheck(1, s.RecoverPrimitives())
}

// combineStage performs u ← a·u⁰ + b·(u + dt·L(u)) — an SSP convex
// combination with the Euler substep fused into the same traversal — and
// refreshes primitives.
func (s *Solver) combineStage(stage int, dt, a, b float64) error {
	s.ComputeRHS(s.rhs)
	fs := s.fsOn()
	if fs {
		s.FSBegin()
	}
	s.G.U.LinComb2AXPY(a, s.u0, b, dt, s.rhs)
	if s.trc != nil {
		lincomb2AXPYScalar(s.trc.cons, a, s.trc.u0, b, dt, s.trc.rhs)
	}
	if hook := s.Cfg.FaultHook; hook != nil {
		hook(stage, s.G.U)
	}
	if fs {
		return s.fsStagePost(stage, dt, a, b)
	}
	return s.stageCheck(stage, s.RecoverPrimitives())
}

// stageCheck validates the whole interior after an RK stage when strict
// checks are on; a violation aborts the step mid-update. resets is the
// stage's atmosphere-reset count from c2p.
func (s *Solver) stageCheck(stage, resets int) error {
	if !s.Cfg.StrictChecks {
		return nil
	}
	if resets > s.Cfg.StrictC2PLimit {
		e := &StateError{Stage: stage, C2PResets: resets}
		if idx := s.recFirstIdx; idx >= 0 {
			g := s.G
			e.First = [3]int{idx % g.TotalX, (idx / g.TotalX) % g.TotalY, idx / (g.TotalX * g.TotalY)}
			e.FirstCons = s.recFirstCons
		}
		return e
	}
	return s.checkState(stage)
}

// Advance integrates until time tEnd, choosing CFL-limited steps and
// clamping the final step to land exactly on tEnd. It returns the number
// of steps taken.
func (s *Solver) Advance(tEnd float64) (int, error) {
	steps := 0
	for s.t < tEnd-1e-14 {
		// Primitives must be current for the CFL estimate on the first
		// step; RecoverPrimitives is idempotent.
		if steps == 0 {
			s.RecoverPrimitives()
		}
		dt := s.MaxDt()
		if s.t+dt > tEnd {
			dt = tEnd - s.t
		}
		if dt <= 0 {
			return steps, fmt.Errorf("core: time step underflow at t=%v", s.t)
		}
		if err := s.Step(dt); err != nil {
			return steps, fmt.Errorf("core: step %d at t=%v: %w", steps, s.t, err)
		}
		steps++
		if steps > 10_000_000 {
			return steps, errors.New("core: step budget exhausted")
		}
	}
	return steps, nil
}
