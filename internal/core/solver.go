// Package core implements the paper's primary contribution: the
// high-resolution shock-capturing solver for special relativistic
// hydrodynamics, organised for scalable heterogeneous execution.
//
// The scheme is a finite-volume method of lines:
//
//  1. recover primitives from the conserved state (package c2p),
//  2. fill ghost zones (package grid),
//  3. per direction, reconstruct primitives at cell faces (package recon)
//     and evaluate a numerical flux at every face (package riemann),
//  4. accumulate flux differences into the right-hand side, and
//  5. advance in time with a strong-stability-preserving Runge–Kutta
//     integrator under a CFL-limited step.
//
// The RHS is decomposed into independent one-dimensional strips (grid rows
// in the sweep direction). Strips are the scheduling unit: the shared-memory
// path dispatches them onto the par.Pool, the heterogeneous path (package
// hetero) dispatches contiguous strip ranges onto devices, and the
// distributed path (package cluster) runs the same solver per rank on its
// subdomain. SweepStrips and NumStrips expose exactly this decomposition.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"rhsc/internal/c2p"
	"rhsc/internal/eos"
	"rhsc/internal/grid"
	"rhsc/internal/par"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
)

// Integrator selects the SSP Runge–Kutta time integrator.
type Integrator int

// Supported integrators.
const (
	RK1 Integrator = iota + 1 // forward Euler
	RK2                       // SSP RK2 (Heun)
	RK3                       // SSP RK3 (Shu–Osher)
)

// String implements fmt.Stringer.
func (in Integrator) String() string {
	switch in {
	case RK1:
		return "rk1"
	case RK2:
		return "rk2"
	case RK3:
		return "rk3"
	}
	return fmt.Sprintf("Integrator(%d)", int(in))
}

// Stages returns the number of RHS evaluations per step.
func (in Integrator) Stages() int { return int(in) }

// Config assembles the numerical method.
type Config struct {
	EOS        eos.EOS
	Recon      recon.Scheme
	Riemann    riemann.Solver
	Integrator Integrator
	// CFL is the Courant factor; stability requires CFL ≤ 1 in 1-D and
	// CFL ≤ 1/dim for the unsplit multidimensional update.
	CFL float64
	// Pool runs strips concurrently; nil runs serially.
	Pool *par.Pool
	// Fused enables the specialised (devirtualised, inlined) sweep kernel
	// when the configuration matches PLM-MC + HLLC + ideal gas; results
	// are bitwise identical to the generic path, only faster. Other
	// configurations ignore the flag.
	Fused bool
	// C2POpts overrides the conservative-to-primitive options; zero value
	// selects c2p.DefaultOptions.
	C2POpts c2p.Options
	// Source, when non-nil, adds the source term Source(x,y,z,w) to the
	// right-hand side of the cell at physical position (x,y,z) with
	// primitive state w.
	Source func(x, y, z float64, w state.Prim) state.Cons
	// SweepExec, when non-nil, replaces the default pool execution of the
	// strip sweeps: it must invoke sweep over disjoint subranges covering
	// [0, nStrips) and return only when all strips are done. Package
	// hetero uses this hook to dispatch strips onto modelled devices.
	SweepExec func(d state.Direction, nStrips int, sweep func(lo, hi int))
	// HaloExchange, when non-nil, is called after every primitive
	// recovery (once per RK stage) with the freshly recovered primitive
	// field, so a distributed driver can fill ghost faces marked
	// grid.External with neighbouring ranks' data. Package cluster uses
	// this hook.
	HaloExchange func(w *state.Fields)
	// StrictChecks validates every RK stage: a full-interior NaN/Inf and
	// D/tau positivity scan of the conserved field, plus the stage's
	// count of c2p atmosphere resets (the recovery rewrites failed cells,
	// so the count is the only trace of a failed inversion). A violation
	// aborts the step with a *StateError, leaving the state mid-update;
	// callers that enable it must be prepared to restore a snapshot on
	// error — package resilience does exactly that. Off by default: the
	// unguarded path keeps the cheap strided probe.
	StrictChecks bool
	// StrictC2PLimit is the number of atmosphere resets a single RK stage
	// tolerates under StrictChecks before the step is declared violated.
	// The default 0 treats any failed inversion as a fault.
	StrictC2PLimit int
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments unless stated otherwise: Γ = 5/3 ideal gas, PLM-MC
// reconstruction, HLLC fluxes, SSP RK2, CFL 0.4.
func DefaultConfig() Config {
	return Config{
		EOS:        eos.NewIdealGas(5.0 / 3.0),
		Recon:      recon.PLM{Lim: recon.MonotonizedCentral},
		Riemann:    riemann.HLLC{},
		Integrator: RK2,
		CFL:        0.4,
	}
}

// Stats counts solver work, updated atomically.
type Stats struct {
	Steps       atomic.Int64 // completed time steps
	RHSEvals    atomic.Int64 // right-hand-side evaluations
	ZoneUpdates atomic.Int64 // interior zones × RHS evaluations
	C2PResets   atomic.Int64 // cells reset to atmosphere during recovery
}

// Solver advances one grid in time.
type Solver struct {
	G   *grid.Grid
	Cfg Config
	C2P *c2p.Solver
	St  Stats

	t       float64
	rhs     *state.Fields
	u0      *state.Fields // RK stage-zero storage
	scratch sync.Pool
	mon     *Monitor
	fused   bool         // specialised kernel active (see Config.Fused)
	trc     *tracerState // passive scalar; nil when disabled
}

type rowScratch struct {
	u  [state.NComp][]float64 // gathered primitives along the strip
	fl [state.NComp][]float64 // reconstructed left face states
	fr [state.NComp][]float64 // reconstructed right face states
	fx [state.NComp][]float64 // face fluxes
}

// New constructs a solver for grid g. The grid's ghost width must cover
// the reconstruction stencil.
func New(g *grid.Grid, cfg Config) (*Solver, error) {
	if cfg.EOS == nil || cfg.Recon == nil || cfg.Riemann == nil {
		return nil, errors.New("core: Config needs EOS, Recon and Riemann")
	}
	if cfg.Integrator < RK1 || cfg.Integrator > RK3 {
		return nil, fmt.Errorf("core: unknown integrator %d", cfg.Integrator)
	}
	if cfg.CFL <= 0 || cfg.CFL > 1 {
		return nil, fmt.Errorf("core: CFL %v outside (0,1]", cfg.CFL)
	}
	if need := cfg.Recon.Ghost(); g.Ng < need {
		return nil, fmt.Errorf("core: grid ghost width %d < %d required by %s",
			g.Ng, need, cfg.Recon.Name())
	}
	cs := c2p.NewSolver(cfg.EOS)
	if cfg.C2POpts != (c2p.Options{}) {
		cs.Opts = cfg.C2POpts
	}
	maxRow := g.TotalX
	if g.TotalY > maxRow {
		maxRow = g.TotalY
	}
	if g.TotalZ > maxRow {
		maxRow = g.TotalZ
	}
	s := &Solver{
		G:   g,
		Cfg: cfg,
		C2P: cs,
		rhs: state.NewFields(g.NCells()),
		u0:  state.NewFields(g.NCells()),
	}
	s.scratch.New = func() any {
		rs := &rowScratch{}
		for c := 0; c < state.NComp; c++ {
			rs.u[c] = make([]float64, maxRow)
			rs.fl[c] = make([]float64, maxRow+1)
			rs.fr[c] = make([]float64, maxRow+1)
			rs.fx[c] = make([]float64, maxRow+1)
		}
		return rs
	}
	s.fused = s.fusable()
	return s, nil
}

// Fused reports whether the specialised sweep kernel is active.
func (s *Solver) Fused() bool { return s.fused }

// Time returns the current solution time.
func (s *Solver) Time() float64 { return s.t }

// SetTime overrides the solution clock (used when restoring checkpoints).
func (s *Solver) SetTime(t float64) { s.t = t }

// InitFromPrim fills the grid from a primitive-state function of position
// and synchronises the conserved variables. An unphysical initial state
// (negative density or pressure, superluminal velocity) aborts the fill
// with an error and leaves the grid partially initialised.
func (s *Solver) InitFromPrim(fn func(x, y, z float64) state.Prim) error {
	g := s.G
	var initErr error
	g.ForEachInterior(func(idx, i, j, k int) {
		if initErr != nil {
			return
		}
		w := fn(g.X(i), g.Y(j), g.Z(k))
		if !w.IsPhysical() {
			initErr = fmt.Errorf("core: unphysical initial state %+v at (%d,%d,%d)", w, i, j, k)
			return
		}
		g.W.SetPrim(idx, w)
		g.U.SetCons(idx, w.ToCons(s.Cfg.EOS))
	})
	if initErr != nil {
		return initErr
	}
	g.ApplyBCs(g.W)
	g.ApplyBCs(g.U)
	return nil
}

// parallelFor runs fn over [0,n) strips, using the pool when configured.
func (s *Solver) parallelFor(n int, fn func(lo, hi int)) {
	if s.Cfg.Pool == nil {
		fn(0, n)
		return
	}
	s.Cfg.Pool.ParallelFor(0, n, 0, fn)
}

// RecoverPrimitives inverts the conserved state into s.G.W over the whole
// interior and applies boundary conditions to the primitives. It returns
// the number of atmosphere resets.
func (s *Solver) RecoverPrimitives() int {
	g := s.G
	ny := g.JEnd() - g.JBeg()
	nz := g.KEnd() - g.KBeg()
	var resets atomic.Int64
	s.parallelFor(ny*nz, func(lo, hi int) {
		n := 0
		for r := lo; r < hi; r++ {
			j := g.JBeg() + r%ny
			k := g.KBeg() + r/ny
			row := (k*g.TotalY + j) * g.TotalX
			n += s.C2P.RecoverRange(g.U, g.W, row+g.IBeg(), row+g.IEnd())
		}
		if n > 0 {
			resets.Add(int64(n))
		}
	})
	g.ApplyBCs(g.W)
	if s.Cfg.HaloExchange != nil {
		s.Cfg.HaloExchange(g.W)
	}
	if s.trc != nil {
		s.tracerRecover()
	}
	r := int(resets.Load())
	s.St.C2PResets.Add(int64(r))
	return r
}

// NumStrips returns the number of independent one-dimensional strips of
// the sweep along direction d: one strip per interior row.
func (s *Solver) NumStrips(d state.Direction) int {
	g := s.G
	switch d {
	case state.X:
		return (g.JEnd() - g.JBeg()) * (g.KEnd() - g.KBeg())
	case state.Y:
		return g.Nx * (g.KEnd() - g.KBeg())
	default:
		return g.Nx * (g.JEnd() - g.JBeg())
	}
}

// StripZones returns the number of interior zones a single strip of
// direction d updates (the work unit for device cost models).
func (s *Solver) StripZones(d state.Direction) int {
	switch d {
	case state.X:
		return s.G.Nx
	case state.Y:
		return s.G.Ny
	default:
		return s.G.Nz
	}
}

// SweepStrips runs the flux sweep along direction d for strips [lo, hi),
// accumulating −∂F/∂x_d into rhs. Strips of one direction touch disjoint
// cells, so disjoint ranges may run concurrently. The primitive field
// (including ghosts) must be current.
func (s *Solver) SweepStrips(d state.Direction, lo, hi int, rhs *state.Fields) {
	sc := s.scratch.Get().(*rowScratch)
	defer s.scratch.Put(sc)
	g := s.G
	row := s.sweepRow
	if s.fused {
		row = s.fusedSweepRow
	}
	for r := lo; r < hi; r++ {
		switch d {
		case state.X:
			ny := g.JEnd() - g.JBeg()
			j := g.JBeg() + r%ny
			k := g.KBeg() + r/ny
			row(d, g.Idx(0, j, k), 1, g.TotalX, g.IBeg(), g.IEnd(), g.Dx, sc, rhs)
		case state.Y:
			i := g.IBeg() + r%g.Nx
			k := g.KBeg() + r/g.Nx
			row(d, g.Idx(i, 0, k), g.TotalX, g.TotalY, g.JBeg(), g.JEnd(), g.Dy, sc, rhs)
		default:
			i := g.IBeg() + r%g.Nx
			j := g.JBeg() + r/g.Nx
			row(d, g.Idx(i, j, 0), g.TotalX*g.TotalY, g.TotalZ, g.KBeg(), g.KEnd(), g.Dz, sc, rhs)
		}
	}
}

// sweepRow performs one strip: gather primitives along the row starting at
// flat index base with the given stride and length n, reconstruct, solve
// the face Riemann problems, and accumulate flux differences for interior
// cells [cBeg, cEnd).
func (s *Solver) sweepRow(d state.Direction, base, stride, n, cBeg, cEnd int, dx float64,
	sc *rowScratch, rhs *state.Fields) {

	w := s.G.W
	// Gather the strip (contiguous for x, strided for y/z).
	for c := 0; c < state.NComp; c++ {
		dst := sc.u[c][:n]
		src := w.Comp[c]
		if stride == 1 {
			copy(dst, src[base:base+n])
		} else {
			idx := base
			for i := 0; i < n; i++ {
				dst[i] = src[idx]
				idx += stride
			}
		}
	}

	// Reconstruct every component.
	for c := 0; c < state.NComp; c++ {
		s.Cfg.Recon.Reconstruct(sc.u[c][:n], sc.fl[c][:n+1], sc.fr[c][:n+1])
	}

	// Face fluxes for faces cBeg..cEnd (cell i owns faces i and i+1).
	e := s.Cfg.EOS
	for f := cBeg; f <= cEnd; f++ {
		pl := state.Prim{
			Rho: sc.fl[state.IRho][f], Vx: sc.fl[state.IVx][f],
			Vy: sc.fl[state.IVy][f], Vz: sc.fl[state.IVz][f], P: sc.fl[state.IP][f],
		}
		pr := state.Prim{
			Rho: sc.fr[state.IRho][f], Vx: sc.fr[state.IVx][f],
			Vy: sc.fr[state.IVy][f], Vz: sc.fr[state.IVz][f], P: sc.fr[state.IP][f],
		}
		// Fall back to first-order states when high-order reconstruction
		// produced an inadmissible face state (possible near strong shocks
		// and vacuum).
		if !pl.IsPhysical() {
			pl = state.Prim{
				Rho: sc.u[state.IRho][f-1], Vx: sc.u[state.IVx][f-1],
				Vy: sc.u[state.IVy][f-1], Vz: sc.u[state.IVz][f-1], P: sc.u[state.IP][f-1],
			}
		}
		if !pr.IsPhysical() {
			pr = state.Prim{
				Rho: sc.u[state.IRho][f], Vx: sc.u[state.IVx][f],
				Vy: sc.u[state.IVy][f], Vz: sc.u[state.IVz][f], P: sc.u[state.IP][f],
			}
		}
		fx := s.Cfg.Riemann.Flux(e, pl, pr, d)
		sc.fx[state.ID][f] = fx.D
		sc.fx[state.ISx][f] = fx.Sx
		sc.fx[state.ISy][f] = fx.Sy
		sc.fx[state.ISz][f] = fx.Sz
		sc.fx[state.ITau][f] = fx.Tau
	}

	// Accumulate −(F_{i+1} − F_i)/dx into the interior cells of the strip.
	invDx := 1 / dx
	for c := 0; c < state.NComp; c++ {
		fxc := sc.fx[c]
		out := rhs.Comp[c]
		idx := base + cBeg*stride
		for i := cBeg; i < cEnd; i++ {
			out[idx] -= (fxc[i+1] - fxc[i]) * invDx
			idx += stride
		}
	}

	if s.trc != nil {
		s.tracerSweepRow(base, stride, cBeg, cEnd, dx, sc)
	}
}

// ComputeRHS evaluates the full right-hand side into rhs. Primitives and
// their ghosts must be current (call RecoverPrimitives first).
func (s *Solver) ComputeRHS(rhs *state.Fields) {
	rhs.Zero()
	if s.trc != nil {
		zeroScalar(s.trc.rhs)
	}
	for _, d := range s.G.ActiveDims() {
		n := s.NumStrips(d)
		if s.Cfg.SweepExec != nil {
			s.Cfg.SweepExec(d, n, func(lo, hi int) { s.SweepStrips(d, lo, hi, rhs) })
		} else {
			s.parallelFor(n, func(lo, hi int) { s.SweepStrips(d, lo, hi, rhs) })
		}
	}
	if src := s.Cfg.Source; src != nil {
		g := s.G
		g.ForEachInterior(func(idx, i, j, k int) {
			c := src(g.X(i), g.Y(j), g.Z(k), g.W.GetPrim(idx))
			rhs.Comp[state.ID][idx] += c.D
			rhs.Comp[state.ISx][idx] += c.Sx
			rhs.Comp[state.ISy][idx] += c.Sy
			rhs.Comp[state.ISz][idx] += c.Sz
			rhs.Comp[state.ITau][idx] += c.Tau
		})
	}
	s.St.RHSEvals.Add(1)
	s.St.ZoneUpdates.Add(int64(s.G.Nx * s.G.Ny * s.G.Nz))
}

// MaxDt returns the CFL-limited time step for the current state.
func (s *Solver) MaxDt() float64 {
	g := s.G
	e := s.Cfg.EOS
	dims := g.ActiveDims()
	ny := g.JEnd() - g.JBeg()
	nz := g.KEnd() - g.KBeg()
	nRows := ny * nz

	results := make([]float64, nRows)
	s.parallelFor(nRows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			j := g.JBeg() + r%ny
			k := g.KBeg() + r/ny
			rowMax := 0.0
			row := (k*g.TotalY + j) * g.TotalX
			for i := g.IBeg(); i < g.IEnd(); i++ {
				w := g.W.GetPrim(row + i)
				sum := 0.0
				for _, d := range dims {
					dx := g.Dx
					if d == state.Y {
						dx = g.Dy
					} else if d == state.Z {
						dx = g.Dz
					}
					sum += state.MaxAbsSpeed(e, w, d) / dx
				}
				if sum > rowMax {
					rowMax = sum
				}
			}
			results[r] = rowMax
		}
	})
	maxSum := 0.0
	for _, v := range results {
		if v > maxSum {
			maxSum = v
		}
	}
	if maxSum <= 0 {
		// Degenerate (cold static) state: fall back to light-crossing time.
		maxSum = 1 / g.Dx
	}
	return s.Cfg.CFL / maxSum
}

// GeometricSource returns the source term that converts the 1-D planar
// solver into curvilinear radial symmetry, treating x as the radius r:
// alpha = 1 gives cylindrical symmetry, alpha = 2 spherical. The radial
// part of the divergence 1/r^α ∂_r(r^α F) − ∂_r F contributes
//
//	S(D)   = −α/r · D v_r
//	S(S_r) = −α/r · S_r v_r     (the pressure term is not geometric)
//	S(τ)   = −α/r · (S_r − D v_r)
//
// Use with a Reflect boundary at r = 0 (or a grid starting at r > 0).
func GeometricSource(e eos.EOS, alpha int) func(x, y, z float64, w state.Prim) state.Cons {
	a := float64(alpha)
	return func(x, _, _ float64, w state.Prim) state.Cons {
		if x <= 0 {
			return state.Cons{}
		}
		u := w.ToCons(e)
		f := a / x * w.Vx
		return state.Cons{
			D:   -f * u.D,
			Sx:  -a / x * u.Sx * w.Vx,
			Tau: -a / x * (u.Sx - u.D*w.Vx),
		}
	}
}

// ErrNonFinite is returned by Step when the update produced NaN or Inf.
var ErrNonFinite = errors.New("core: non-finite state after step")

// Step advances the solution by dt with the configured SSP-RK integrator.
//
// Invariant: on entry and on return the primitive field s.G.W (including
// ghosts) is consistent with the conserved field s.G.U. InitFromPrim
// establishes it; callers that fill U by hand must call
// RecoverPrimitives once before stepping.
//
// When Config.StrictChecks is set and a stage produces an inadmissible
// state, Step returns a *StateError with the update incomplete: U and W
// then hold the partial stage result, and the caller must restore a
// snapshot (see package resilience) before stepping again.
func (s *Solver) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("core: non-positive dt %v", dt)
	}
	u := s.G.U

	// Tracer mirrors of the stage operations (no-ops when disabled).
	trcSave := func() {
		if s.trc != nil {
			copy(s.trc.u0, s.trc.cons)
		}
	}
	trcAXPY := func() {
		if s.trc != nil {
			axpyScalar(s.trc.cons, dt, s.trc.rhs)
		}
	}
	trcComb := func(a, b float64) {
		if s.trc != nil {
			lincomb2Scalar(s.trc.cons, a, s.trc.u0, b, s.trc.cons)
		}
	}

	// stageCheck validates the whole interior after an RK stage when
	// strict checks are on; a violation aborts the step mid-update.
	// resets is the stage's atmosphere-reset count from c2p.
	stageCheck := func(stage, resets int) error {
		if !s.Cfg.StrictChecks {
			return nil
		}
		if resets > s.Cfg.StrictC2PLimit {
			return &StateError{Stage: stage, C2PResets: resets}
		}
		return s.checkState(stage)
	}

	// euler performs u ← u + dt·L(u) and refreshes primitives.
	euler := func() error {
		s.ComputeRHS(s.rhs)
		u.AXPY(dt, s.rhs)
		trcAXPY()
		return stageCheck(1, s.RecoverPrimitives())
	}

	switch s.Cfg.Integrator {
	case RK1:
		trcSave()
		if err := euler(); err != nil {
			return err
		}

	case RK2: // SSP RK2: u^{n+1} = ½u⁰ + ½(u⁰ + dtL)(twice)
		s.u0.CopyFrom(u)
		trcSave()
		if err := euler(); err != nil {
			return err
		}
		s.ComputeRHS(s.rhs)
		u.AXPY(dt, s.rhs)
		trcAXPY()
		u.LinComb2(0.5, s.u0, 0.5, u)
		trcComb(0.5, 0.5)
		if err := stageCheck(2, s.RecoverPrimitives()); err != nil {
			return err
		}

	case RK3: // Shu–Osher SSP RK3
		s.u0.CopyFrom(u)
		trcSave()
		if err := euler(); err != nil {
			return err
		}
		s.ComputeRHS(s.rhs)
		u.AXPY(dt, s.rhs)
		trcAXPY()
		u.LinComb2(0.75, s.u0, 0.25, u)
		trcComb(0.75, 0.25)
		if err := stageCheck(2, s.RecoverPrimitives()); err != nil {
			return err
		}
		s.ComputeRHS(s.rhs)
		u.AXPY(dt, s.rhs)
		trcAXPY()
		u.LinComb2(1.0/3.0, s.u0, 2.0/3.0, u)
		trcComb(1.0/3.0, 2.0/3.0)
		if err := stageCheck(3, s.RecoverPrimitives()); err != nil {
			return err
		}
	}

	// Cheap finiteness probe on a stride through the data; a full scan
	// every step would cost a noticeable fraction of the RHS. Strict
	// checks already scanned every cell above.
	if !s.Cfg.StrictChecks {
		raw := u.Raw()
		for i := 0; i < len(raw); i += 97 {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return ErrNonFinite
			}
		}
	}

	s.t += dt
	steps := s.St.Steps.Add(1)
	if s.mon != nil && (steps == 1 || steps%int64(s.mon.Every) == 0) {
		s.mon.record(s, dt)
	}
	return nil
}

// Advance integrates until time tEnd, choosing CFL-limited steps and
// clamping the final step to land exactly on tEnd. It returns the number
// of steps taken.
func (s *Solver) Advance(tEnd float64) (int, error) {
	steps := 0
	for s.t < tEnd-1e-14 {
		// Primitives must be current for the CFL estimate on the first
		// step; RecoverPrimitives is idempotent.
		if steps == 0 {
			s.RecoverPrimitives()
		}
		dt := s.MaxDt()
		if s.t+dt > tEnd {
			dt = tEnd - s.t
		}
		if dt <= 0 {
			return steps, fmt.Errorf("core: time step underflow at t=%v", s.t)
		}
		if err := s.Step(dt); err != nil {
			return steps, fmt.Errorf("core: step %d at t=%v: %w", steps, s.t, err)
		}
		steps++
		if steps > 10_000_000 {
			return steps, errors.New("core: step budget exhausted")
		}
	}
	return steps, nil
}
