package core

import (
	"errors"
	"math"
	"testing"

	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
)

func checkSolver(t *testing.T) *Solver {
	t.Helper()
	g := grid1D(32, 2)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(sodInit); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckStateClean(t *testing.T) {
	s := checkSolver(t)
	if err := s.CheckState(); err != nil {
		t.Fatalf("admissible state flagged: %v", err)
	}
}

func TestCheckStateDetectsViolations(t *testing.T) {
	cases := []struct {
		name   string
		poison func(s *Solver, idx int)
		field  func(e *StateError) int
	}{
		{"nan", func(s *Solver, idx int) { s.G.U.Comp[state.ITau][idx] = math.NaN() },
			func(e *StateError) int { return e.NonFinite }},
		{"inf", func(s *Solver, idx int) { s.G.U.Comp[state.ISx][idx] = math.Inf(1) },
			func(e *StateError) int { return e.NonFinite }},
		{"negD", func(s *Solver, idx int) { s.G.U.Comp[state.ID][idx] = -1 },
			func(e *StateError) int { return e.NegDens }},
		{"negTau", func(s *Solver, idx int) { s.G.U.Comp[state.ITau][idx] = 0 },
			func(e *StateError) int { return e.NegEnergy }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := checkSolver(t)
			g := s.G
			i := g.IBeg() + 7
			tc.poison(s, g.Idx(i, g.JBeg(), g.KBeg()))
			err := s.CheckState()
			var se *StateError
			if !errors.As(err, &se) {
				t.Fatalf("expected *StateError, got %v", err)
			}
			if tc.field(se) != 1 {
				t.Fatalf("wrong violation count in %v", se)
			}
			if se.First[0] != i {
				t.Fatalf("first cell %v, want i=%d", se.First, i)
			}
		})
	}
}

func TestCheckStateIgnoresGhosts(t *testing.T) {
	// Ghost-zone garbage must not trip the interior scan.
	s := checkSolver(t)
	s.G.U.Comp[state.ID][0] = math.NaN()
	if err := s.CheckState(); err != nil {
		t.Fatalf("ghost cell flagged: %v", err)
	}
}

// TestFaultStrictChecksAbortStage pins the per-stage validation path: a
// source term that returns NaN from a chosen step on poisons the first RK
// stage. The stage's primitive recovery resets the poisoned cells to
// atmosphere (rewriting the conserved state), so the violation must
// surface through the stage's c2p reset count, before the step completes.
func TestFaultStrictChecksAbortStage(t *testing.T) {
	g := grid1D(32, 2)
	cfg := DefaultConfig()
	cfg.StrictChecks = true
	armed := false
	cfg.Source = func(x, _, _ float64, w state.Prim) state.Cons {
		if armed {
			return state.Cons{Tau: math.NaN()}
		}
		return state.Cons{}
	}
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(sodInit); err != nil {
		t.Fatal(err)
	}
	s.RecoverPrimitives()
	if err := s.Step(s.MaxDt()); err != nil {
		t.Fatalf("clean strict step failed: %v", err)
	}
	armed = true
	err = s.Step(s.MaxDt())
	var se *StateError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StateError, got %v", err)
	}
	if se.Stage != 1 {
		t.Fatalf("violation reported at stage %d, want 1", se.Stage)
	}
	if se.C2PResets == 0 {
		t.Fatalf("expected c2p resets in %v", se)
	}
}

func TestStateErrorMatchesErrNonFinite(t *testing.T) {
	s := checkSolver(t)
	s.G.U.Comp[state.ITau][s.G.Idx(s.G.IBeg(), s.G.JBeg(), s.G.KBeg())] = math.NaN()
	err := s.CheckState()
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("StateError with NaNs must match ErrNonFinite, got %v", err)
	}
}

func TestSetMethodSwapsScheme(t *testing.T) {
	s := checkSolver(t)
	s.RecoverPrimitives()
	hiRec, hiRs := s.Method()
	if err := s.SetMethod(recon.PCM{}, riemann.HLL{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(s.MaxDt()); err != nil {
		t.Fatalf("first-order step failed: %v", err)
	}
	if err := s.SetMethod(hiRec, hiRs); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(s.MaxDt()); err != nil {
		t.Fatalf("restored high-order step failed: %v", err)
	}
	if err := s.SetMethod(recon.WENO5{}, riemann.HLL{}); err == nil {
		t.Fatal("scheme wider than the ghost region accepted")
	}
	if err := s.SetMethod(nil, nil); err == nil {
		t.Fatal("nil scheme accepted")
	}
}

func TestInitFromPrimRejectsUnphysical(t *testing.T) {
	g := grid1D(16, 2)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = s.InitFromPrim(func(x, _, _ float64) state.Prim {
		if x > 0.5 {
			return state.Prim{Rho: -1, P: 1}
		}
		return state.Prim{Rho: 1, P: 1}
	})
	if err == nil {
		t.Fatal("unphysical initial state accepted")
	}
}
