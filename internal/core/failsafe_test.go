package core

import (
	"errors"
	"math"
	"testing"

	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// runSteps advances n CFL steps and returns a copy of the conserved field.
func runSteps(t *testing.T, s *Solver, n int) []float64 {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	out := make([]float64, len(s.G.U.Raw()))
	copy(out, s.G.U.Raw())
	return out
}

// TestFailSafeZeroTroubledBitwise pins the fail-safe contract on clean
// runs: with zero troubled cells the pipeline must be bitwise identical
// to the plain fused/generic pipeline — the detector only reads, and the
// dt sequence is unchanged because the in-pass CFL fold rides the same
// detection recovery.
func TestFailSafeZeroTroubledBitwise(t *testing.T) {
	muts := map[string]func(*Config){
		"generic": nil,
		"fused":   func(c *Config) { c.Fused = true },
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			plain := newSteppedSolver(t, testprob.Blast2D, 48, 0, mut)
			fs := newSteppedSolver(t, testprob.Blast2D, 48, 0, func(c *Config) {
				if mut != nil {
					mut(c)
				}
				c.FailSafe = true
			})
			a := runSteps(t, plain, 8)
			b := runSteps(t, fs, 8)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("value %d differs: %v (plain) vs %v (fail-safe)", i, a[i], b[i])
				}
			}
			if tr := fs.St.Troubled.Load(); tr != 0 {
				t.Fatalf("clean blast run flagged %d troubled cells", tr)
			}
			if fs.St.Repaired.Load() != 0 {
				t.Fatal("clean run reported repairs")
			}
		})
	}
}

// TestFaultFailSafeLocalRepairConservation injects stage-local faults on
// a doubly periodic problem and verifies the flux-replacement repair: the
// run completes at full order, the injected cells are repaired, and total
// D, S and tau stay conserved to round-off across the repaired steps —
// both sides of every patched face see the same corrected flux.
func TestFaultFailSafeLocalRepairConservation(t *testing.T) {
	cases := []struct {
		name   string
		poison func(u *state.Fields, idx int)
	}{
		// A non-finite candidate: phase-A detection, wholesale rebuild.
		{"nan", func(u *state.Fields, idx int) {
			u.Comp[state.ITau][idx] = math.NaN()
		}},
		// A finite but wildly inadmissible energy spike: survives the
		// conserved scan and the inversion, caught by the relaxed DMP.
		{"spike", func(u *state.Fields, idx int) {
			u.Comp[state.ITau][idx] *= 1e6
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testprob.KelvinHelmholtz2D
			cfg := DefaultConfig()
			cfg.FailSafe = true
			g := p.NewGrid(32, cfg.Recon.Ghost())
			s, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.InitFromPrim(p.Init); err != nil {
				t.Fatal(err)
			}
			s.RecoverPrimitives()

			// Poison one interior cell on the first stage of steps 3 and 4.
			step := 0
			idx := g.Idx(g.TotalX/2, g.TotalY/2, 0)
			s.Cfg.FaultHook = func(stage int, u *state.Fields) {
				if stage == 1 && (step == 3 || step == 4) {
					tc.poison(u, idx)
				}
			}

			mass0, energy0 := g.TotalMass(), g.TotalEnergy()
			sx0, sy0, _ := g.TotalMomentum()
			for ; step < 8; step++ {
				if err := s.Step(s.MaxDt()); err != nil {
					t.Fatalf("step %d not repaired: %v", step, err)
				}
			}
			if tr := s.St.Troubled.Load(); tr == 0 {
				t.Fatal("injector never triggered the detector")
			}
			if s.St.Repaired.Load() != s.St.Troubled.Load() {
				t.Fatalf("repaired %d of %d troubled cells",
					s.St.Repaired.Load(), s.St.Troubled.Load())
			}
			relTol := 1e-12
			if d := math.Abs(g.TotalMass()-mass0) / mass0; d > relTol {
				t.Errorf("mass drift %.3e across repaired steps", d)
			}
			if d := math.Abs(g.TotalEnergy()-energy0) / energy0; d > relTol {
				t.Errorf("energy drift %.3e across repaired steps", d)
			}
			sx1, sy1, _ := g.TotalMomentum()
			// Net momentum is ~0 by symmetry; compare against the mass scale.
			if d := math.Abs(sx1-sx0) / mass0; d > relTol {
				t.Errorf("x-momentum drift %.3e across repaired steps", d)
			}
			if d := math.Abs(sy1-sy0) / mass0; d > relTol {
				t.Errorf("y-momentum drift %.3e across repaired steps", d)
			}
			// The repaired state must be admissible everywhere.
			if err := s.CheckState(); err != nil {
				t.Fatalf("post-repair state invalid: %v", err)
			}
		})
	}
}

// TestFaultFailSafeMaxFracDemotes: a troubled fraction above the policy
// threshold must abort the step with a demotion StateError instead of
// attempting a sprawling local repair.
func TestFaultFailSafeMaxFracDemotes(t *testing.T) {
	p := testprob.KelvinHelmholtz2D
	cfg := DefaultConfig()
	cfg.FailSafe = true
	cfg.FailSafeMaxFrac = 1.0 / (32.0 * 32.0) // one cell is already too many
	g := p.NewGrid(32, cfg.Recon.Ghost())
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(p.Init); err != nil {
		t.Fatal(err)
	}
	s.RecoverPrimitives()
	idxA := g.Idx(g.TotalX/2, g.TotalY/2, 0)
	idxB := g.Idx(g.TotalX/3, g.TotalY/3, 0)
	s.Cfg.FaultHook = func(stage int, u *state.Fields) {
		if stage == 1 {
			u.Comp[state.ITau][idxA] = math.NaN()
			u.Comp[state.ITau][idxB] = -1
		}
	}
	err = s.Step(s.MaxDt())
	var se *StateError
	if !errors.As(err, &se) {
		t.Fatalf("step error = %v, want *StateError", err)
	}
	if se.Troubled < 2 || se.RepairFailed {
		t.Fatalf("demotion error = %+v, want Troubled >= 2 via the policy fraction", se)
	}
	if s.St.Repaired.Load() != 0 {
		t.Fatal("demoted step must not repair")
	}
}

// TestStrictC2PFirstConsPreserved is the regression test for the silent
// atmosphere rewrite: when strict checks reject a step on c2p resets, the
// StateError must carry the pre-reset conserved state of the first
// offending cell (the reset already rewrote the grid, so the error is the
// only trace of what actually failed).
func TestStrictC2PFirstConsPreserved(t *testing.T) {
	p := testprob.Blast2D
	cfg := DefaultConfig()
	cfg.StrictChecks = true
	g := p.NewGrid(48, cfg.Recon.Ghost())
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(p.Init); err != nil {
		t.Fatal(err)
	}
	s.RecoverPrimitives()

	// Finite, D and tau positive — passes the conserved-state scan — but
	// |S| >> E leaves the inversion no admissible pressure.
	hopeless := state.Cons{D: 1, Sx: 100, Sy: 0, Sz: 0, Tau: 0.1}
	i, j := g.TotalX/2, g.TotalY/2
	idx := g.Idx(i, j, 0)
	s.Cfg.FaultHook = func(stage int, u *state.Fields) {
		if stage == 1 {
			u.SetCons(idx, hopeless)
		}
	}
	err = s.Step(s.MaxDt())
	var se *StateError
	if !errors.As(err, &se) {
		t.Fatalf("step error = %v, want *StateError", err)
	}
	if se.C2PResets != 1 {
		t.Fatalf("C2PResets = %d, want 1", se.C2PResets)
	}
	if se.First != [3]int{i, j, 0} {
		t.Fatalf("First = %v, want [%d %d 0]", se.First, i, j)
	}
	if se.FirstCons != hopeless {
		t.Fatalf("FirstCons = %+v, want the pre-reset state %+v", se.FirstCons, hopeless)
	}
	// And the grid really was rewritten — the error preserved state that
	// is gone from the field.
	if got := g.U.GetCons(idx); got == hopeless {
		t.Fatal("cell not reset — test premise broken")
	}
}
