package core

import (
	"testing"

	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/testprob"
)

// newSteppedSolver builds a serial solver on problem p at resolution n,
// initialises it, and advances `warm` CFL steps so every pooled buffer
// (row scratch, CFL rows, snapshot-free steady state) is established.
func newSteppedSolver(t testing.TB, p *testprob.Problem, n, warm int, mut func(*Config)) *Solver {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	g := p.NewGrid(n, cfg.Recon.Ghost())
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(p.Init); err != nil {
		t.Fatal(err)
	}
	s.RecoverPrimitives()
	for i := 0; i < warm; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestStepZeroAllocs pins the central pooling invariant of the step
// pipeline: after warmup, a serial MaxDt+Step cycle performs zero heap
// allocations — the CFL reduction rides the final recovery sweep, row
// scratch comes from the solver's free list, and the RK combinations
// run through pre-bound stage closures. (Pool-backed runs additionally
// pay par.ParallelFor's single hoisted closure per traversal; the
// serial configuration is the one with a zero bound to enforce.)
func TestStepZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		p    *testprob.Problem
		n    int
		mut  func(*Config)
	}{
		{"generic-2d", testprob.Blast2D, 48, nil},
		{"fused-plm-hllc-2d", testprob.Blast2D, 48, func(c *Config) { c.Fused = true }},
		{"fused-pcm-hll-2d", testprob.Blast2D, 48, func(c *Config) {
			c.Fused = true
			c.Recon = recon.PCM{}
			c.Riemann = riemann.HLL{}
		}},
		// The fail-safe detector rides every stage of a clean run; the
		// zero-troubled steady state must stay allocation-free (mask and
		// snapshot buffers are allocated once, detector chunks pre-bound).
		// The legacy per-direction strip traversal (NoTiling) shares the
		// scratch free list and pre-bound chunks; it must stay at zero too.
		{"generic-2d-notiling", testprob.Blast2D, 48, func(c *Config) { c.NoTiling = true }},
		{"failsafe-2d", testprob.Blast2D, 48, func(c *Config) { c.FailSafe = true }},
		{"failsafe-fused-2d", testprob.Blast2D, 48, func(c *Config) {
			c.Fused = true
			c.FailSafe = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newSteppedSolver(t, tc.p, tc.n, 3, tc.mut)
			var stepErr error
			allocs := testing.AllocsPerRun(5, func() {
				if err := s.Step(s.MaxDt()); err != nil {
					stepErr = err
				}
			})
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			if allocs != 0 {
				t.Errorf("steady-state MaxDt+Step allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// TestFusedPCMHLLBitwise: the specialised first-order kernel (the
// resilience fallback scheme) must be bitwise identical to the generic
// PCM reconstruction + HLL flux path.
func TestFusedPCMHLLBitwise(t *testing.T) {
	run := func(fused bool) []float64 {
		p := testprob.Blast2D
		cfg := DefaultConfig()
		cfg.Recon = recon.PCM{}
		cfg.Riemann = riemann.HLL{}
		cfg.Fused = fused
		g := p.NewGrid(48, cfg.Recon.Ghost())
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.Fused() != fused {
			t.Fatalf("fused flag = %v, want %v", s.Fused(), fused)
		}
		if err := s.InitFromPrim(p.Init); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float64, len(g.U.Raw()))
		copy(out, g.U.Raw())
		return out
	}
	generic := run(false)
	fused := run(true)
	for i := range generic {
		if generic[i] != fused[i] {
			t.Fatalf("value %d differs: %v vs %v", i, generic[i], fused[i])
		}
	}
}

// TestMaxDtCachedMatchesTraversal: the in-sweep CFL reduction consumed
// by the cached MaxDt combine must be bitwise identical to the explicit
// full-grid traversal taken after an invalidation — on the generic and
// on both fused paths, at every step of an evolving run.
func TestMaxDtCachedMatchesTraversal(t *testing.T) {
	muts := map[string]func(*Config){
		"generic": nil,
		"fused":   func(c *Config) { c.Fused = true },
		"fused-pcm-hll": func(c *Config) {
			c.Fused = true
			c.Recon = recon.PCM{}
			c.Riemann = riemann.HLL{}
		},
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			s := newSteppedSolver(t, testprob.Blast2D, 48, 0, mut)
			for i := 0; i < 6; i++ {
				cached := s.MaxDt()
				s.InvalidateCFL()
				if fresh := s.MaxDt(); fresh != cached {
					t.Fatalf("step %d: cached MaxDt %v != traversal %v", i, cached, fresh)
				}
				if err := s.Step(s.MaxDt()); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestScratchFreeListBounded: row scratch cycles through the solver's
// free list — returned after every sweep (not leaked) and dropped when
// the list is full, so the footprint is bounded by the list capacity.
func TestScratchFreeListBounded(t *testing.T) {
	s := newSteppedSolver(t, testprob.Blast2D, 48, 4, nil)
	if n := len(s.scratch); n == 0 {
		t.Error("no scratch returned to the free list after stepping")
	}
	// Drain: every pooled scratch must be usable (fully allocated).
	drained := 0
	for {
		select {
		case sc := <-s.scratch:
			if sc == nil || len(sc.fx[0]) == 0 {
				t.Fatal("free list holds an unusable scratch")
			}
			drained++
			continue
		default:
		}
		break
	}
	if drained > cap(s.scratch) {
		t.Errorf("free list held %d scratches, capacity %d", drained, cap(s.scratch))
	}
	// And the solver keeps working after a full drain.
	if err := s.Step(s.MaxDt()); err != nil {
		t.Fatal(err)
	}
}
