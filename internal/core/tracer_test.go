package core

import (
	"math"
	"testing"

	"rhsc/internal/grid"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// A tracer step profile in uniform flow must advect at the flow speed,
// stay in [0, 1], and conserve its total.
func TestTracerAdvection(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 256, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Periodic)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const v0 = 0.5
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		return state.Prim{Rho: 1, Vx: v0, P: 1}
	})
	xProfile := func(x float64) float64 {
		if x > 0.2 && x < 0.4 {
			return 1
		}
		return 0
	}
	if err := s.EnableTracer(func(x, _, _ float64) float64 { return xProfile(x) }); err != nil {
		t.Fatal(err)
	}
	tot0 := s.TracerTotal()

	const tEnd = 0.4 // pulse centre moves from 0.3 to 0.5
	if _, err := s.Advance(tEnd); err != nil {
		t.Fatal(err)
	}

	if rel := math.Abs(s.TracerTotal()-tot0) / tot0; rel > 1e-12 {
		t.Errorf("tracer total drift %v", rel)
	}
	// Boundedness (donor-cell upwinding is monotone).
	com, mass := 0.0, 0.0
	for i := g.IBeg(); i < g.IEnd(); i++ {
		x := s.Tracer(i)
		if x < -1e-12 || x > 1+1e-12 {
			t.Fatalf("tracer out of bounds at %d: %v", i, x)
		}
		com += g.X(i) * x
		mass += x
	}
	// Centre of mass advects to 0.3 + v0*tEnd = 0.5.
	if got := com / mass; math.Abs(got-0.5) > 0.01 {
		t.Errorf("tracer centre of mass %v, want 0.5", got)
	}
	// The pulse edges stay reasonably sharp and in the right place.
	if v := s.Tracer(g.IBeg() + 128); v < 0.9 { // x = 0.5, pulse centre
		t.Errorf("tracer plateau too diffused: %v", v)
	}
	if v := s.Tracer(g.IBeg() + 25); v > 0.05 { // x = 0.1, upstream
		t.Errorf("tracer leaked upstream: %v", v)
	}
}

// Through a shock tube the tracer interface must track the *contact*
// discontinuity (material surface), not the shock.
func TestTracerTracksContact(t *testing.T) {
	p := testprob.Sod
	g := p.NewGrid(400, 2)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(p.Init)
	if err := s.EnableTracer(func(x, _, _ float64) float64 {
		if x < 0.5 {
			return 1
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	const tEnd = 0.3
	if _, err := s.Advance(tEnd); err != nil {
		t.Fatal(err)
	}
	// Exact contact speed for MM Problem 1: v* ~ 0.714.
	wantContact := 0.5 + 0.714*tEnd
	// Locate the tracer half-level crossing.
	cross := 0.0
	for i := g.IBeg() + 1; i < g.IEnd(); i++ {
		if s.Tracer(i-1) >= 0.5 && s.Tracer(i) < 0.5 {
			cross = g.X(i)
			break
		}
	}
	if math.Abs(cross-wantContact) > 0.02 {
		t.Errorf("tracer interface at %v, contact at %v", cross, wantContact)
	}
	// The shock is well ahead of the tracer interface: no tracer leakage
	// past the contact toward the shock (beyond smearing).
	shock := 0.5 + 0.828*tEnd
	iShock := g.IBeg() + int((shock+0.02)/g.Dx)
	if iShock < g.IEnd() && s.Tracer(iShock) > 0.05 {
		t.Errorf("tracer leaked past the contact to the shock: %v", s.Tracer(iShock))
	}
}

// Tracer evolution must also work through the fused kernel, bitwise equal
// to the generic path.
func TestTracerFusedIdentical(t *testing.T) {
	run := func(fused bool) []float64 {
		p := testprob.Blast2D
		g := p.NewGrid(32, 2)
		cfg := DefaultConfig()
		cfg.Fused = fused
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(p.Init)
		if err := s.EnableTracer(func(x, y, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float64, len(s.trc.cons))
		copy(out, s.trc.cons)
		return out
	}
	a := run(false)
	b := run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tracer differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// RK integrators all advect the tracer consistently.
func TestTracerIntegrators(t *testing.T) {
	for _, integ := range []Integrator{RK1, RK2, RK3} {
		g := grid.New(grid.Geometry{Nx: 64, Ny: 1, Nz: 1, Ng: 3, X0: 0, X1: 1})
		g.SetAllBCs(grid.Periodic)
		cfg := DefaultConfig()
		cfg.Integrator = integ
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(func(x, _, _ float64) state.Prim {
			return state.Prim{Rho: 1, Vx: 0.3, P: 1}
		})
		if err := s.EnableTracer(func(x, _, _ float64) float64 {
			return 0.5 + 0.5*math.Sin(2*math.Pi*x)
		}); err != nil {
			t.Fatal(err)
		}
		tot0 := s.TracerTotal()
		if _, err := s.Advance(0.2); err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(s.TracerTotal()-tot0) / tot0; rel > 1e-12 {
			t.Errorf("%v: tracer drift %v", integ, rel)
		}
	}
}

// EnableTracer must reject distributed drivers.
func TestTracerRejectsHaloExchange(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 32, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Outflow)
	cfg := DefaultConfig()
	cfg.HaloExchange = func(*state.Fields) {}
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim { return state.Prim{Rho: 1, P: 1} })
	if err := s.EnableTracer(func(x, _, _ float64) float64 { return 1 }); err == nil {
		t.Error("tracer accepted with HaloExchange")
	}
}

// Disabled tracer accessors return zeros.
func TestTracerDisabled(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 16, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Outflow)
	s, _ := New(g, DefaultConfig())
	if s.Tracer(0) != 0 || s.TracerTotal() != 0 {
		t.Error("disabled tracer not zero")
	}
}
