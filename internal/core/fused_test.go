package core

import (
	"testing"

	"rhsc/internal/eos"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// The specialised kernel must produce bitwise-identical results to the
// generic path on a demanding 2-D run: same formulas in the same order,
// only devirtualised.
func TestFusedBitwiseIdentical(t *testing.T) {
	run := func(fused bool) []float64 {
		p := testprob.Blast2D
		g := p.NewGrid(48, 2)
		cfg := DefaultConfig()
		cfg.Fused = fused
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.Fused() != fused {
			t.Fatalf("fused flag = %v, want %v", s.Fused(), fused)
		}
		s.InitFromPrim(p.Init)
		for i := 0; i < 6; i++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float64, len(g.U.Raw()))
		copy(out, g.U.Raw())
		return out
	}
	generic := run(false)
	fused := run(true)
	for i := range generic {
		if generic[i] != fused[i] {
			t.Fatalf("value %d differs: %v vs %v", i, generic[i], fused[i])
		}
	}
}

// The same holds on a 1-D shock tube including the atmosphere-adjacent
// face-fallback path.
func TestFusedBitwiseIdentical1D(t *testing.T) {
	run := func(fused bool) []float64 {
		p := testprob.Blast
		g := p.NewGrid(200, 2)
		cfg := DefaultConfig()
		cfg.Fused = fused
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(p.Init)
		if _, err := s.Advance(0.2); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(g.U.Raw()))
		copy(out, g.U.Raw())
		return out
	}
	generic := run(false)
	fused := run(true)
	for i := range generic {
		if generic[i] != fused[i] {
			t.Fatalf("value %d differs: %v vs %v", i, generic[i], fused[i])
		}
	}
}

// Non-matching configurations must silently ignore the flag.
func TestFusedRequiresMatchingConfig(t *testing.T) {
	g := testprob.Sod.NewGrid(32, 3)
	for _, cfg := range []Config{
		func() Config {
			c := DefaultConfig()
			c.Fused = true
			c.Recon = recon.WENO5{}
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.Fused = true
			c.Riemann = riemann.HLL{}
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.Fused = true
			c.EOS = eos.TaubMathews{}
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.Fused = true
			c.Recon = recon.PLM{Lim: recon.Minmod}
			return c
		}(),
	} {
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.Fused() {
			t.Errorf("config %s/%s/%s should not fuse",
				cfg.Recon.Name(), cfg.Riemann.Name(), cfg.EOS.Name())
		}
	}
	// And without the flag, the matching config stays generic.
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Fused() {
		t.Error("fused without opt-in")
	}
}

var _ = state.NComp
