package core

// Cache-blocked tile engine. The RHS traversal is reorganised from three
// grid-wide directional passes into one pass over pencil tiles: the
// (j, k) plane is partitioned into tileJ×tileK blocks, and each tile
// evaluates its x rows, its y-face sweeps, and its z-face sweeps while
// the tile's primitives and rhs rows are still cache resident — W is
// streamed once per RK stage instead of three times.
//
// Within a tile the y/z strips are gathered through panel transposes
// (state.PanelGather): short segments of panelW adjacent x columns are
// copied in contiguous runs per component instead of per-element strided
// loads. A y/z segment covers the tile's cells plus the grid ghost width
// on each side, which is enough stencil for any configured
// reconstruction (grid.Ng ≥ Recon.Ghost()), so every face value is
// computed from exactly the cells the full-row sweep would read —
// segment fluxes are bitwise identical to full-row fluxes. Faces on tile
// boundaries are computed by both adjacent tiles (identical inputs,
// identical values); each tile accumulates only its own cells, so tiles
// are disjoint in rhs and safe to run concurrently.
//
// Bitwise reproducibility: every interior cell receives its directional
// contributions in the fixed order X (overwrite), then Y, then Z —
// exactly the per-direction order of the strip traversal — and each
// contribution is the same flux difference, so the tiled rhs is bitwise
// identical to the pre-tile sweep order for any tile size, any worker
// count, and any TileExec chunking (see TestTiledBitwiseInvariance and
// docs/PERFORMANCE.md).

import "rhsc/internal/state"

// Default pencil-tile extents: 8×8 keeps a 3-D tile's working set —
// (tileJ+2Ng)(tileK+2Ng) full x rows of five components — within a few
// hundred KB for production row lengths, inside L2, while leaving enough
// tiles for the pool to balance.
const (
	defaultTileJ = 8
	defaultTileK = 8
)

// PanelW is the panel-transpose width of the tiled y/z sweeps: eight
// float64 columns — one 64-byte cache line per gathered row.
const PanelW = panelW

// tileSpan is one pencil tile: the half-open (j, k) index ranges of the
// interior cells it owns. Tiles span the full x extent.
type tileSpan struct {
	j0, j1, k0, k1 int
}

// initTiles resolves the configured tile extents and precomputes the tile
// schedule and its pre-bound chunk body (the schedule is static, so the
// steady-state step allocates nothing).
func (s *Solver) initTiles() {
	g := s.G
	tj, tk := s.Cfg.TileJ, s.Cfg.TileK
	if tj <= 0 {
		tj = defaultTileJ
	}
	if tk <= 0 {
		tk = defaultTileK
	}
	s.tileJ, s.tileK = tj, tk
	s.tiles = s.tiles[:0]
	for k0 := g.KBeg(); k0 < g.KEnd(); k0 += tk {
		k1 := k0 + tk
		if k1 > g.KEnd() {
			k1 = g.KEnd()
		}
		for j0 := g.JBeg(); j0 < g.JEnd(); j0 += tj {
			j1 := j0 + tj
			if j1 > g.JEnd() {
				j1 = g.JEnd()
			}
			s.tiles = append(s.tiles, tileSpan{j0: j0, j1: j1, k0: k0, k1: k1})
		}
	}
	s.tileChunk = func(lo, hi int) { s.sweepTiles(lo, hi, s.curRHS) }
}

// tilingOn reports whether ComputeRHS uses the tile engine: a SweepExec
// (device dispatch works in strips) or Config.NoTiling selects the
// legacy per-direction traversal.
func (s *Solver) tilingOn() bool {
	return s.Cfg.SweepExec == nil && !s.Cfg.NoTiling
}

// NumTiles returns the number of pencil tiles of the cache-blocked
// traversal — the parallel work unit count when the tile engine is
// active.
func (s *Solver) NumTiles() int { return len(s.tiles) }

// TileSizes returns the resolved (j, k) tile extents in cells.
func (s *Solver) TileSizes() (tileJ, tileK int) { return s.tileJ, s.tileK }

// sweepTiles runs tiles [lo, hi) with one scratch, the tile engine's
// parallel chunk body.
func (s *Solver) sweepTiles(lo, hi int, rhs *state.Fields) {
	sc := s.getScratch()
	defer s.putScratch(sc)
	for t := lo; t < hi; t++ {
		s.sweepTile(s.tiles[t], sc, rhs)
	}
}

// sweepTile accumulates the full flux divergence of one pencil tile. The
// direction order — first active dimension overwrites, the rest
// accumulate — matches ComputeRHS's legacy strip traversal per cell, so
// the result is bitwise identical to it.
func (s *Solver) sweepTile(tl tileSpan, sc *rowScratch, rhs *state.Fields) {
	g := s.G
	ng := g.Ng
	overwrite := true
	for _, d := range g.ActiveDims() {
		switch d {
		case state.X:
			// Full pencil rows: stride 1, aliased straight from W.
			for k := tl.k0; k < tl.k1; k++ {
				for j := tl.j0; j < tl.j1; j++ {
					s.sweepRow(d, g.Idx(0, j, k), 1, g.TotalX, g.IBeg(), g.IEnd(), g.Dx,
						sc, rhs, overwrite)
				}
			}
		case state.Y:
			// Per k-plane, panels of adjacent x columns sweep the tile's
			// y segment [j0−Ng, j1+Ng): faces j0..j1 come out of cells
			// the full row would use, so segment cBeg/cEnd are simply Ng
			// and Ng+(j1−j0) in segment-local coordinates.
			nseg := tl.j1 - tl.j0 + 2*ng
			for k := tl.k0; k < tl.k1; k++ {
				for i := g.IBeg(); i < g.IEnd(); i += panelW {
					p := g.IEnd() - i
					if p > panelW {
						p = panelW
					}
					s.sweepPanel(d, g.Idx(i, tl.j0-ng, k), g.TotalX, nseg,
						ng, ng+(tl.j1-tl.j0), g.Dy, p, sc, rhs, overwrite)
				}
			}
		default:
			nseg := tl.k1 - tl.k0 + 2*ng
			for j := tl.j0; j < tl.j1; j++ {
				for i := g.IBeg(); i < g.IEnd(); i += panelW {
					p := g.IEnd() - i
					if p > panelW {
						p = panelW
					}
					s.sweepPanel(d, g.Idx(i, j, tl.k0-ng), g.TotalX*g.TotalY, nseg,
						ng, ng+(tl.k1-tl.k0), g.Dz, p, sc, rhs, overwrite)
				}
			}
		}
		overwrite = false
	}
}
