package core

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

func TestMonitorRecords(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 32, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Periodic)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		return state.Prim{Rho: 1 + 0.2*math.Sin(2*math.Pi*x), Vx: 0.4, P: 1}
	})
	m := NewMonitor(2)
	s.AttachMonitor(m)
	for i := 0; i < 7; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	// Records at steps 1, 2, 4, 6.
	if len(m.Rows()) != 4 {
		t.Fatalf("recorded %d rows, want 4", len(m.Rows()))
	}
	first := m.Rows()[0]
	if first.Step != 1 || first.Dt <= 0 || first.Mass <= 0 {
		t.Errorf("first row %+v", first)
	}
	// Periodic run: mass drift at roundoff.
	if d := m.MassDrift(); d > 1e-13 {
		t.Errorf("mass drift %v", d)
	}
	// Max Lorentz for v=0.4 flow: W ~ 1.09.
	if w := first.MaxW; w < 1.05 || w > 1.2 {
		t.Errorf("MaxW = %v", w)
	}
	if first.MinP <= 0 || first.MaxRho < 1 {
		t.Errorf("extrema: minP=%v maxRho=%v", first.MinP, first.MaxRho)
	}
}

func TestMonitorCSV(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 16, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Outflow)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim { return state.Prim{Rho: 1, P: 1} })
	m := NewMonitor(1)
	s.AttachMonitor(m)
	for i := 0; i < 3; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 rows
		t.Fatalf("%d records", len(recs))
	}
	if !strings.Contains(strings.Join(recs[0], ","), "maxW") {
		t.Errorf("header %v", recs[0])
	}
}

func TestMonitorDetach(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 16, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Outflow)
	s, _ := New(g, DefaultConfig())
	s.InitFromPrim(func(x, _, _ float64) state.Prim { return state.Prim{Rho: 1, P: 1} })
	m := NewMonitor(1)
	s.AttachMonitor(m)
	if err := s.Step(s.MaxDt()); err != nil {
		t.Fatal(err)
	}
	s.AttachMonitor(nil)
	if err := s.Step(s.MaxDt()); err != nil {
		t.Fatal(err)
	}
	if len(m.Rows()) != 1 {
		t.Errorf("detached monitor still recording: %d rows", len(m.Rows()))
	}
}

func TestMonitorEveryFloor(t *testing.T) {
	if NewMonitor(0).Every != 1 || NewMonitor(-5).Every != 1 {
		t.Error("Every floor not applied")
	}
	if (&Monitor{}).MassDrift() != 0 {
		t.Error("empty monitor drift")
	}
}
