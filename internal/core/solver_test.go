package core

import (
	"math"
	"testing"

	"rhsc/internal/exact"
	"rhsc/internal/grid"
	"rhsc/internal/par"
	"rhsc/internal/recon"
	"rhsc/internal/state"
)

func grid1D(n, ng int) *grid.Grid {
	g := grid.New(grid.Geometry{Nx: n, Ny: 1, Nz: 1, Ng: ng, X0: 0, X1: 1})
	g.SetAllBCs(grid.Outflow)
	return g
}

func sodInit(x, _, _ float64) state.Prim {
	if x < 0.5 {
		return state.Prim{Rho: 10, P: 13.33}
	}
	return state.Prim{Rho: 1, P: 1e-6}
}

func TestNewValidation(t *testing.T) {
	g := grid1D(16, 2)
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.CFL = 0; return c }(),
		func() Config { c := DefaultConfig(); c.CFL = 1.5; return c }(),
		func() Config { c := DefaultConfig(); c.Integrator = 0; return c }(),
		func() Config { c := DefaultConfig(); c.Recon = recon.WENO5{}; return c }(), // ghost 3 > 2
	}
	for i, cfg := range bad {
		if _, err := New(g, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(g, DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestInitFromPrimConsistency(t *testing.T) {
	g := grid1D(32, 2)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(sodInit)
	// U must be PrimToCons of W everywhere in the interior.
	g.ForEachInterior(func(idx, i, j, k int) {
		w := g.W.GetPrim(idx)
		want := w.ToCons(s.Cfg.EOS)
		got := g.U.GetCons(idx)
		if math.Abs(got.D-want.D) > 1e-14 || math.Abs(got.Tau-want.Tau) > 1e-14 {
			t.Fatalf("cell %d inconsistent: %+v vs %+v", idx, got, want)
		}
	})
}

func TestInitUnphysicalErrors(t *testing.T) {
	g := grid1D(8, 2)
	s, _ := New(g, DefaultConfig())
	err := s.InitFromPrim(func(x, _, _ float64) state.Prim { return state.Prim{Rho: -1, P: 1} })
	if err == nil {
		t.Fatal("unphysical init accepted")
	}
}

func TestMaxDtScalesWithResolution(t *testing.T) {
	mk := func(n int) float64 {
		g := grid1D(n, 2)
		s, _ := New(g, DefaultConfig())
		s.InitFromPrim(sodInit)
		return s.MaxDt()
	}
	dt64, dt128 := mk(64), mk(128)
	if dt64 <= 0 || dt128 <= 0 {
		t.Fatalf("non-positive dt: %v %v", dt64, dt128)
	}
	if r := dt64 / dt128; math.Abs(r-2) > 1e-6 {
		t.Errorf("dt ratio = %v, want 2", r)
	}
	// Wave speeds are strictly below c = 1, so the CFL step must be at
	// least CFL·dx (and would equal it only for light-speed signals).
	if dt64 < 0.4/64.0 {
		t.Errorf("dt %v below the light-speed CFL floor %v", dt64, 0.4/64.0)
	}
}

// The headline validation: the relativistic Sod tube converges to the
// exact solution. L1(rho) at N=200 must be small and roughly halve when N
// doubles (first order at the discontinuities).
func TestSodConvergesToExact(t *testing.T) {
	ref, err := exact.Solve(
		exact.State{Rho: 10, V: 0, P: 13.33},
		exact.State{Rho: 1, V: 0, P: 1e-6}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	const tEnd = 0.35
	l1 := func(n int) float64 {
		g := grid1D(n, 2)
		s, err := New(g, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(sodInit)
		if _, err := s.Advance(tEnd); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := g.IBeg(); i < g.IEnd(); i++ {
			ex := ref.Sample((g.X(i) - 0.5) / tEnd)
			sum += math.Abs(g.W.Comp[state.IRho][i] - ex.Rho)
		}
		return sum * g.Dx
	}
	e200 := l1(200)
	e400 := l1(400)
	if e200 > 0.35 {
		t.Errorf("L1(rho) at N=200 = %v, too large", e200)
	}
	rate := e200 / e400
	if rate < 1.4 {
		t.Errorf("L1 convergence rate %v < 1.4 (e200=%v e400=%v)", rate, e200, e400)
	}
}

// Blast wave (Problem 2): much harder (W ~ 3.6, thin shell); the solver
// must remain stable and put the shock in the right place.
func TestBlastWaveStability(t *testing.T) {
	ref, err := exact.Solve(
		exact.State{Rho: 1, V: 0, P: 1000},
		exact.State{Rho: 1, V: 0, P: 0.01}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	g := grid1D(400, 2)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		if x < 0.5 {
			return state.Prim{Rho: 1, P: 1000}
		}
		return state.Prim{Rho: 1, P: 0.01}
	})
	const tEnd = 0.35
	if _, err := s.Advance(tEnd); err != nil {
		t.Fatal(err)
	}
	// Locate the numerical shock (max density gradient) and compare with
	// the exact shock position 0.5 + V_s t.
	wantShock := 0.5 + ref.RightSpeed*tEnd
	best, bestG := 0.0, 0.0
	for i := g.IBeg() + 1; i < g.IEnd(); i++ {
		gr := math.Abs(g.W.Comp[state.IRho][i] - g.W.Comp[state.IRho][i-1])
		if gr > bestG {
			bestG, best = gr, g.X(i)
		}
	}
	if math.Abs(best-wantShock) > 0.02 {
		t.Errorf("shock at %v, want %v", best, wantShock)
	}
	// Peak Lorentz factor should approach the exact v* plateau.
	vmax := 0.0
	for i := g.IBeg(); i < g.IEnd(); i++ {
		if v := g.W.Comp[state.IVx][i]; v > vmax {
			vmax = v
		}
	}
	if math.Abs(vmax-ref.Vstar) > 0.02 {
		t.Errorf("peak velocity %v, want %v", vmax, ref.Vstar)
	}
}

// Exact conservation: on a periodic domain the totals of D, S and tau must
// be conserved to near roundoff regardless of the flow.
func TestConservationPeriodic(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 64, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Periodic)
	cfg := DefaultConfig()
	cfg.Integrator = RK3
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		return state.Prim{
			Rho: 1 + 0.5*math.Sin(2*math.Pi*x),
			Vx:  0.3 + 0.2*math.Cos(2*math.Pi*x),
			P:   1 + 0.3*math.Sin(4*math.Pi*x),
		}
	})
	m0, e0 := g.TotalMass(), g.TotalEnergy()
	sx0, _, _ := g.TotalMomentum()
	if _, err := s.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	m1, e1 := g.TotalMass(), g.TotalEnergy()
	sx1, _, _ := g.TotalMomentum()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
		t.Errorf("mass drift %v", rel)
	}
	if rel := math.Abs(e1-e0) / e0; rel > 1e-12 {
		t.Errorf("energy drift %v", rel)
	}
	if diff := math.Abs(sx1 - sx0); diff > 1e-12*(1+math.Abs(sx0)) {
		t.Errorf("momentum drift %v", diff)
	}
}

// A contact wave (uniform p and v, sinusoidal rho) advects exactly:
// rho(x,t) = rho0(x - v t). Convergence to this solution measures the
// formal order of the full scheme.
func TestSmoothAdvectionConvergence(t *testing.T) {
	const v0, tEnd = 0.5, 0.4
	rho0 := func(x float64) float64 { return 1 + 0.3*math.Sin(2*math.Pi*x) }
	run := func(n int, sch recon.Scheme, integ Integrator) float64 {
		ng := sch.Ghost()
		g := grid.New(grid.Geometry{Nx: n, Ny: 1, Nz: 1, Ng: ng, X0: 0, X1: 1})
		g.SetAllBCs(grid.Periodic)
		cfg := DefaultConfig()
		cfg.Recon = sch
		cfg.Integrator = integ
		cfg.CFL = 0.3
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(func(x, _, _ float64) state.Prim {
			return state.Prim{Rho: rho0(x), Vx: v0, P: 1}
		})
		if _, err := s.Advance(tEnd); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := g.IBeg(); i < g.IEnd(); i++ {
			want := rho0(math.Mod(g.X(i)-v0*tEnd+2, 1))
			sum += math.Abs(g.W.Comp[state.IRho][i] - want)
		}
		return sum * g.Dx
	}
	// PLM + RK2: ~2nd order.
	e1 := run(32, recon.PLM{Lim: recon.MonotonizedCentral}, RK2)
	e2 := run(64, recon.PLM{Lim: recon.MonotonizedCentral}, RK2)
	if order := math.Log2(e1 / e2); order < 1.5 {
		t.Errorf("PLM order %v < 1.5 (e=%v, %v)", order, e1, e2)
	}
	// WENO5 + RK3: >= 2.5 observed (time error limits below formal 5).
	e3 := run(32, recon.WENO5{}, RK3)
	e4 := run(64, recon.WENO5{}, RK3)
	if order := math.Log2(e3 / e4); order < 2.2 {
		t.Errorf("WENO5 order %v < 2.2 (e=%v, %v)", order, e3, e4)
	}
	// WENO5 must also be more accurate in absolute terms.
	if e3 > e1 {
		t.Errorf("WENO5 error %v worse than PLM %v", e3, e1)
	}
}

// Reflecting walls: colliding flow against a wall conserves mass and stays
// finite; velocity at the wall tends to zero.
func TestReflectingWall(t *testing.T) {
	g := grid1D(64, 2)
	g.SetAllBCs(grid.Reflect)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		return state.Prim{Rho: 1, Vx: -0.5, P: 0.1} // slam into left wall
	})
	m0 := g.TotalMass()
	if _, err := s.Advance(0.3); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(g.TotalMass()-m0) / m0; rel > 1e-11 {
		t.Errorf("mass drift %v with reflecting walls", rel)
	}
	// A right-moving reflected shock must have formed: density > 1 near
	// the left wall.
	if rho := g.W.Comp[state.IRho][g.IBeg()]; rho < 1.5 {
		t.Errorf("no reflected compression at wall: rho = %v", rho)
	}
}

// Pool execution must give bitwise-identical results to serial execution:
// strips write disjoint cells and each strip is deterministic.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(pool *par.Pool) []float64 {
		g := grid.New(grid.Geometry{Nx: 64, Ny: 32, Nz: 1, Ng: 2,
			X0: 0, X1: 1, Y0: 0, Y1: 1})
		g.SetAllBCs(grid.Outflow)
		cfg := DefaultConfig()
		cfg.Pool = pool
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(func(x, y, _ float64) state.Prim {
			r2 := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5)
			if r2 < 0.01 {
				return state.Prim{Rho: 1, P: 100}
			}
			return state.Prim{Rho: 1, P: 0.1}
		})
		for step := 0; step < 5; step++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float64, g.NCells())
		copy(out, g.U.Comp[state.ID])
		return out
	}
	serial := run(nil)
	parallel := run(par.NewPool(8))
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

// 2-D cylindrical blast must preserve the quadrant symmetry of its initial
// data (a strong test of sweep-order and indexing bugs).
func TestBlast2DQuadrantSymmetry(t *testing.T) {
	n := 32
	g := grid.New(grid.Geometry{Nx: n, Ny: n, Nz: 1, Ng: 2,
		X0: -1, X1: 1, Y0: -1, Y1: 1})
	g.SetAllBCs(grid.Outflow)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, y, _ float64) state.Prim {
		if x*x+y*y < 0.08 {
			return state.Prim{Rho: 1, P: 100}
		}
		return state.Prim{Rho: 1, P: 0.05}
	})
	for step := 0; step < 10; step++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	// rho(i,j) must equal rho(mirror_i, j) and rho(i, mirror_j).
	for k := g.KBeg(); k < g.KEnd(); k++ {
		for j := g.JBeg(); j < g.JEnd(); j++ {
			for i := g.IBeg(); i < g.IEnd(); i++ {
				mi := g.IBeg() + g.IEnd() - 1 - i
				mj := g.JBeg() + g.JEnd() - 1 - j
				a := g.W.Comp[state.IRho][g.Idx(i, j, k)]
				bx := g.W.Comp[state.IRho][g.Idx(mi, j, k)]
				by := g.W.Comp[state.IRho][g.Idx(i, mj, k)]
				if math.Abs(a-bx) > 1e-10 || math.Abs(a-by) > 1e-10 {
					t.Fatalf("symmetry broken at (%d,%d): %v vs %v, %v", i, j, a, bx, by)
				}
			}
		}
	}
}

// Source terms: a uniform mass-injection source must grow the total mass
// linearly at the injected rate.
func TestSourceTerm(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 32, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Periodic)
	cfg := DefaultConfig()
	const rate = 0.1
	cfg.Source = func(x, y, z float64, w state.Prim) state.Cons {
		return state.Cons{D: rate}
	}
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		return state.Prim{Rho: 1, P: 1}
	})
	m0 := g.TotalMass()
	const tEnd = 0.25
	if _, err := s.Advance(tEnd); err != nil {
		t.Fatal(err)
	}
	want := m0 + rate*tEnd // volume is 1
	if got := g.TotalMass(); math.Abs(got-want) > 1e-10 {
		t.Errorf("mass = %v, want %v", got, want)
	}
}

func TestStatsCounting(t *testing.T) {
	g := grid1D(32, 2)
	cfg := DefaultConfig()
	cfg.Integrator = RK2
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(sodInit)
	for i := 0; i < 3; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	if s.St.Steps.Load() != 3 {
		t.Errorf("steps = %d", s.St.Steps.Load())
	}
	if s.St.RHSEvals.Load() != 6 { // 2 stages x 3 steps
		t.Errorf("rhs evals = %d", s.St.RHSEvals.Load())
	}
	if s.St.ZoneUpdates.Load() != 6*32 {
		t.Errorf("zone updates = %d", s.St.ZoneUpdates.Load())
	}
}

func TestAdvanceLandsExactly(t *testing.T) {
	g := grid1D(32, 2)
	s, _ := New(g, DefaultConfig())
	s.InitFromPrim(sodInit)
	if _, err := s.Advance(0.123); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Time()-0.123) > 1e-12 {
		t.Errorf("t = %v, want 0.123", s.Time())
	}
	// Advancing to an earlier time is a no-op.
	steps, err := s.Advance(0.1)
	if err != nil || steps != 0 {
		t.Errorf("backward advance: steps=%d err=%v", steps, err)
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	g := grid1D(16, 2)
	s, _ := New(g, DefaultConfig())
	s.InitFromPrim(sodInit)
	if err := s.Step(0); err == nil {
		t.Error("dt=0 accepted")
	}
	if err := s.Step(-1); err == nil {
		t.Error("dt<0 accepted")
	}
}

// All integrators must agree on a smooth problem to leading order.
func TestIntegratorsAgree(t *testing.T) {
	run := func(integ Integrator) float64 {
		g := grid.New(grid.Geometry{Nx: 64, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
		g.SetAllBCs(grid.Periodic)
		cfg := DefaultConfig()
		cfg.Integrator = integ
		cfg.CFL = 0.2
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(func(x, _, _ float64) state.Prim {
			return state.Prim{Rho: 1 + 0.1*math.Sin(2*math.Pi*x), Vx: 0.2, P: 1}
		})
		if _, err := s.Advance(0.2); err != nil {
			t.Fatal(err)
		}
		return g.W.Comp[state.IRho][g.IBeg()+10]
	}
	r1, r2, r3 := run(RK1), run(RK2), run(RK3)
	if math.Abs(r2-r3) > 5e-4 {
		t.Errorf("RK2 and RK3 disagree: %v vs %v", r2, r3)
	}
	if math.Abs(r1-r2) > 5e-3 {
		t.Errorf("RK1 far from RK2: %v vs %v", r1, r2)
	}
}

// A uniform state must remain exactly uniform (well-balanced trivially):
// any drift reveals asymmetry in the sweeps.
func TestUniformStateStationary(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 16, Ny: 16, Nz: 4, Ng: 2,
		X0: 0, X1: 1, Y0: 0, Y1: 1, Z0: 0, Z1: 1})
	g.SetAllBCs(grid.Periodic)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, y, z float64) state.Prim {
		return state.Prim{Rho: 1.3, Vx: 0.2, Vy: -0.1, Vz: 0.05, P: 0.7}
	})
	for i := 0; i < 5; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	g.ForEachInterior(func(idx, i, j, k int) {
		if math.Abs(g.W.Comp[state.IRho][idx]-1.3) > 1e-12 {
			t.Fatalf("uniform state drifted at %d: %v", idx, g.W.Comp[state.IRho][idx])
		}
	})
}

func TestIntegratorString(t *testing.T) {
	if RK1.String() != "rk1" || RK2.String() != "rk2" || RK3.String() != "rk3" {
		t.Error("integrator names wrong")
	}
	if RK3.Stages() != 3 {
		t.Error("stage count wrong")
	}
}
