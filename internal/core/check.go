package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
)

// StateError reports an invalid conserved state found by validation: the
// step produced non-finite values or drove the conserved density D or
// energy tau non-positive (both must stay positive for the c2p inversion
// to have a physical root). It is returned by Step under
// Config.StrictChecks and by CheckState; the resilience layer matches it
// with errors.As to trigger the retry/fallback path.
type StateError struct {
	// Stage is the RK stage (1-based) after which the violation was
	// detected, or 0 for a whole-state scan outside the integrator.
	Stage int
	// NonFinite, NegDens and NegEnergy count interior cells with NaN/Inf
	// conserved components, D <= 0, and tau <= 0 respectively. A cell is
	// counted once, in that priority order.
	NonFinite int
	NegDens   int
	NegEnergy int
	// C2PResets counts cells the stage's primitive recovery had to reset
	// to atmosphere (the c2p root-find failed there). The reset rewrites
	// the offending conserved state, so these cells pass the scans above;
	// First and FirstCons preserve what actually failed.
	C2PResets int
	// First is the (i,j,k) grid index of the lowest offending cell.
	First [3]int
	// FirstCons is the conserved state of that cell before any rewrite:
	// for C2PResets violations it is the pre-atmosphere-reset state the
	// inversion rejected, so retries and diagnostics see the real failure
	// rather than the floor state it was replaced with.
	FirstCons state.Cons
	// Troubled is the number of cells the a posteriori fail-safe detector
	// flagged when the step was aborted instead of locally repaired
	// (fraction over Config.FailSafeMaxFrac, or the repair itself failed).
	Troubled int
	// RepairFailed marks a fail-safe local repair that could not restore
	// an admissible state; the caller must fall back to a global retry.
	RepairFailed bool
}

// Error implements the error interface.
func (e *StateError) Error() string {
	where := "state scan"
	if e.Stage > 0 {
		where = fmt.Sprintf("RK stage %d", e.Stage)
	}
	if e.RepairFailed {
		return fmt.Sprintf("core: fail-safe local repair failed after %s: %d troubled, %d unrecoverable cells (first at %v)",
			where, e.Troubled, e.C2PResets, e.First)
	}
	if e.Troubled > 0 {
		return fmt.Sprintf("core: fail-safe demoted after %s: %d troubled cells exceed the policy fraction",
			where, e.Troubled)
	}
	return fmt.Sprintf("core: invalid state after %s: %d non-finite, %d D<=0, %d tau<=0, %d c2p-reset cells (first at %v)",
		where, e.NonFinite, e.NegDens, e.NegEnergy, e.C2PResets, e.First)
}

// Is makes errors.Is(err, ErrNonFinite) succeed for StateErrors whose
// violation includes non-finite cells, so existing callers that only probe
// for ErrNonFinite keep working when strict checks are on.
func (e *StateError) Is(target error) bool {
	return target == ErrNonFinite && e.NonFinite > 0
}

// CheckState scans the full interior conserved field for NaN/Inf and
// D/tau positivity and returns a *StateError describing the violations,
// or nil when the state is admissible. Unlike the cheap strided probe in
// Step, this visits every cell; the resilience layer calls it when
// validating a completed step.
func (s *Solver) CheckState() error {
	return s.checkState(0)
}

// checkState is CheckState with the RK stage recorded in the error.
func (s *Solver) checkState(stage int) error {
	g := s.G
	ny := g.JEnd() - g.JBeg()
	nz := g.KEnd() - g.KBeg()
	var nonFinite, negD, negTau atomic.Int64
	var first atomic.Int64
	first.Store(int64(len(g.U.Comp[0]))) // past-the-end sentinel
	s.parallelFor(ny*nz, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			j := g.JBeg() + r%ny
			k := g.KBeg() + r/ny
			row := (k*g.TotalY + j) * g.TotalX
			for i := g.IBeg(); i < g.IEnd(); i++ {
				idx := row + i
				bad := false
				for c := 0; c < state.NComp; c++ {
					v := g.U.Comp[c][idx]
					if math.IsNaN(v) || math.IsInf(v, 0) {
						nonFinite.Add(1)
						bad = true
						break
					}
				}
				if !bad {
					if g.U.Comp[state.ID][idx] <= 0 {
						negD.Add(1)
						bad = true
					} else if g.U.Comp[state.ITau][idx] <= 0 {
						negTau.Add(1)
						bad = true
					}
				}
				if bad {
					for {
						cur := first.Load()
						if int64(idx) >= cur || first.CompareAndSwap(cur, int64(idx)) {
							break
						}
					}
				}
			}
		}
	})
	if nonFinite.Load() == 0 && negD.Load() == 0 && negTau.Load() == 0 {
		return nil
	}
	idx := int(first.Load())
	return &StateError{
		Stage:     stage,
		NonFinite: int(nonFinite.Load()),
		NegDens:   int(negD.Load()),
		NegEnergy: int(negTau.Load()),
		FirstCons: g.U.GetCons(idx),
		First: [3]int{
			idx % g.TotalX,
			(idx / g.TotalX) % g.TotalY,
			idx / (g.TotalX * g.TotalY),
		},
	}
}

// SetMethod swaps the reconstruction scheme and Riemann solver at run
// time and re-evaluates fused-kernel eligibility. The grid's ghost width
// must cover the new scheme's stencil (any scheme no wider than the one
// the solver was built with fits). The resilience layer uses this to
// drop a retried step to piecewise-constant + HLL and to restore the
// high-order method afterwards.
func (s *Solver) SetMethod(rc recon.Scheme, rs riemann.Solver) error {
	if rc == nil || rs == nil {
		return errors.New("core: SetMethod needs a reconstruction scheme and a Riemann solver")
	}
	if need := rc.Ghost(); s.G.Ng < need {
		return fmt.Errorf("core: grid ghost width %d < %d required by %s",
			s.G.Ng, need, rc.Name())
	}
	s.Cfg.Recon = rc
	s.Cfg.Riemann = rs
	s.refreshFused()
	return nil
}

// Method returns the currently configured reconstruction scheme and
// Riemann solver (the pair SetMethod swaps).
func (s *Solver) Method() (recon.Scheme, riemann.Solver) {
	return s.Cfg.Recon, s.Cfg.Riemann
}
