package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"

	"rhsc/internal/state"
)

// DiagRow is one sample of the run-time diagnostics production codes log
// every few steps: conserved totals, extremal states, and robustness
// counters.
type DiagRow struct {
	Step   int64
	Time   float64
	Dt     float64
	Mass   float64 // Σ D dV
	Energy float64 // Σ (τ+D) dV
	MomX   float64 // Σ S_x dV
	MaxW   float64 // maximum Lorentz factor
	MaxRho float64
	MinP   float64
	Resets int64 // cumulative c2p atmosphere resets
}

// Diagnostics computes the current diagnostic sample. Primitives must be
// current (they are whenever Step has returned).
func (s *Solver) Diagnostics() DiagRow {
	g := s.G
	row := DiagRow{
		Step:   s.St.Steps.Load(),
		Time:   s.t,
		Mass:   g.TotalMass(),
		Energy: g.TotalEnergy(),
		MaxW:   1,
		MinP:   math.Inf(1),
		Resets: s.St.C2PResets.Load(),
	}
	sx, _, _ := g.TotalMomentum()
	row.MomX = sx
	g.ForEachInterior(func(idx, _, _, _ int) {
		w := g.W.GetPrim(idx)
		if lf := w.Lorentz(); lf > row.MaxW {
			row.MaxW = lf
		}
		if w.Rho > row.MaxRho {
			row.MaxRho = w.Rho
		}
		if w.P < row.MinP {
			row.MinP = w.P
		}
	})
	return row
}

// Monitor accumulates diagnostic samples during Advance. Attach it with
// Solver.AttachMonitor; it records a row every Every accepted steps (and
// always the first).
type Monitor struct {
	Every int
	rows  []DiagRow
}

// NewMonitor returns a monitor sampling every n steps (n < 1 is treated
// as 1).
func NewMonitor(n int) *Monitor {
	if n < 1 {
		n = 1
	}
	return &Monitor{Every: n}
}

// Rows returns the recorded samples.
func (m *Monitor) Rows() []DiagRow { return m.rows }

// record appends a sample with the step's dt.
func (m *Monitor) record(s *Solver, dt float64) {
	row := s.Diagnostics()
	row.Dt = dt
	m.rows = append(m.rows, row)
}

// WriteCSV dumps the samples as CSV.
func (m *Monitor) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"step", "time", "dt", "mass", "energy", "momx", "maxW", "maxRho", "minP", "resets",
	}); err != nil {
		return err
	}
	for _, r := range m.rows {
		rec := []string{
			fmt.Sprint(r.Step),
			fmt.Sprintf("%.12g", r.Time),
			fmt.Sprintf("%.12g", r.Dt),
			fmt.Sprintf("%.12g", r.Mass),
			fmt.Sprintf("%.12g", r.Energy),
			fmt.Sprintf("%.12g", r.MomX),
			fmt.Sprintf("%.12g", r.MaxW),
			fmt.Sprintf("%.12g", r.MaxRho),
			fmt.Sprintf("%.12g", r.MinP),
			fmt.Sprint(r.Resets),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MassDrift returns the relative drift of total mass between the first
// and last samples — the headline conservation diagnostic.
func (m *Monitor) MassDrift() float64 {
	if len(m.rows) < 2 {
		return 0
	}
	m0 := m.rows[0].Mass
	if m0 == 0 {
		return 0
	}
	return math.Abs(m.rows[len(m.rows)-1].Mass-m0) / math.Abs(m0)
}

// AttachMonitor registers a monitor that samples during Step. Passing nil
// detaches.
func (s *Solver) AttachMonitor(m *Monitor) { s.mon = m }

var _ = state.NComp // keep the import stable if diagnostics shrink
