package core

import (
	"testing"

	"rhsc/internal/grid"
	"rhsc/internal/par"
	"rhsc/internal/state"
)

// blast3DGrid builds a small 3-D grid with an off-centre blast so that no
// direction or octant is symmetric — any sweep-order or ownership bug
// shows up as a bitwise difference.
func blast3DGrid(nx, ny, nz int) *grid.Grid {
	g := grid.New(grid.Geometry{Nx: nx, Ny: ny, Nz: nz, Ng: 2,
		X0: 0, X1: 1, Y0: 0, Y1: 1, Z0: 0, Z1: 1})
	g.SetAllBCs(grid.Outflow)
	return g
}

func blast3DInit(x, y, z float64) state.Prim {
	dx, dy, dz := x-0.4, y-0.55, z-0.45
	if dx*dx+dy*dy+dz*dz < 0.03 {
		return state.Prim{Rho: 1, P: 50}
	}
	return state.Prim{Rho: 1, P: 0.1}
}

// runTiled advances a fixed blast problem for a few steps under the given
// config mutations and returns the full conserved state (all components,
// ghosts included) for bitwise comparison.
func runTiled(t *testing.T, mut func(*Config)) []float64 {
	t.Helper()
	g := blast3DGrid(12, 10, 8)
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(blast3DInit); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]float64, 0, state.NComp*g.NCells())
	for c := 0; c < state.NComp; c++ {
		out = append(out, g.U.Comp[c]...)
	}
	return out
}

func requireBitwiseEqual(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", name, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, want[i], got[i])
		}
	}
}

// Every interior (j, k) pencil must be owned by exactly one tile, for any
// tile size — including sizes that don't divide the grid and sizes larger
// than the grid — and for 1-D, 2-D and 3-D shapes.
func TestTileDecompositionCovers(t *testing.T) {
	shapes := []struct {
		name       string
		nx, ny, nz int
	}{
		{"1d", 16, 1, 1},
		{"2d", 16, 12, 1},
		{"3d", 12, 10, 6},
	}
	sizes := []int{1, 3, 5, 8, 64}
	for _, sh := range shapes {
		for _, tj := range sizes {
			for _, tk := range sizes {
				g := blast3DGrid(sh.nx, sh.ny, sh.nz)
				cfg := DefaultConfig()
				cfg.TileJ, cfg.TileK = tj, tk
				s, err := New(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				owners := make(map[[2]int]int)
				for _, tl := range s.tiles {
					if tl.j1 <= tl.j0 || tl.k1 <= tl.k0 {
						t.Fatalf("%s tj=%d tk=%d: empty tile %+v", sh.name, tj, tk, tl)
					}
					for k := tl.k0; k < tl.k1; k++ {
						for j := tl.j0; j < tl.j1; j++ {
							owners[[2]int{j, k}]++
						}
					}
				}
				for k := g.KBeg(); k < g.KEnd(); k++ {
					for j := g.JBeg(); j < g.JEnd(); j++ {
						if n := owners[[2]int{j, k}]; n != 1 {
							t.Fatalf("%s tj=%d tk=%d: pencil (%d,%d) owned by %d tiles",
								sh.name, tj, tk, j, k, n)
						}
					}
				}
				ny, nz := g.JEnd()-g.JBeg(), g.KEnd()-g.KBeg()
				if want := len(owners); want != ny*nz {
					t.Fatalf("%s tj=%d tk=%d: %d owned pencils, want %d",
						sh.name, tj, tk, want, ny*nz)
				}
			}
		}
	}
}

// The tile engine must be bitwise identical to the legacy per-direction
// strip traversal, for any worker count and any tile size (dividing or
// not). This is the contract that lets tiling be the silent default.
func TestTiledBitwiseInvariance(t *testing.T) {
	for _, fused := range []bool{false, true} {
		name := "generic"
		if fused {
			name = "fused"
		}
		t.Run(name, func(t *testing.T) {
			baseline := runTiled(t, func(c *Config) {
				c.NoTiling = true
				c.Fused = fused
			})
			cases := []struct {
				label   string
				workers int // 0 = no pool
				tj, tk  int
			}{
				{"default-serial", 0, 0, 0},
				{"tiny-tiles-par8", 8, 1, 1},
				{"odd-tiles-par2", 2, 3, 5},
				{"odd-tiles-par1", 1, 5, 3},
				{"oversize-tiles", 0, 64, 64},
				{"default-par2", 2, 0, 0},
			}
			for _, tc := range cases {
				got := runTiled(t, func(c *Config) {
					c.Fused = fused
					c.TileJ, c.TileK = tc.tj, tc.tk
					if tc.workers > 0 {
						c.Pool = par.NewPool(tc.workers)
					}
				})
				requireBitwiseEqual(t, tc.label, baseline, got)
			}
		})
	}
}

// A custom TileExec is handed the complete tile schedule and must be able
// to chunk it arbitrarily: every tile index in [0, nTiles) is run exactly
// once and the result stays bitwise identical.
func TestTileExecCoverage(t *testing.T) {
	baseline := runTiled(t, nil)
	var runs [][2]int
	nTilesSeen := -1
	got := runTiled(t, func(c *Config) {
		c.TileExec = func(nTiles int, run func(lo, hi int)) {
			nTilesSeen = nTiles
			for lo := 0; lo < nTiles; lo += 3 {
				hi := lo + 3
				if hi > nTiles {
					hi = nTiles
				}
				runs = append(runs, [2]int{lo, hi})
				run(lo, hi)
			}
		}
	})
	if nTilesSeen <= 0 {
		t.Fatalf("TileExec never invoked (nTiles = %d)", nTilesSeen)
	}
	seen := make([]int, nTilesSeen)
	for _, r := range runs {
		for i := r[0]; i < r[1]; i++ {
			seen[i]++
		}
	}
	// The exec ran many stages; every stage must cover each tile the same
	// number of times (once per ComputeRHS call).
	for i, n := range seen {
		if n == 0 || n != seen[0] {
			t.Fatalf("tile %d run %d times, tile 0 run %d times", i, n, seen[0])
		}
	}
	requireBitwiseEqual(t, "tile-exec", baseline, got)
}

// A custom SweepExec (the device-dispatch hook) selects the legacy strip
// traversal; chunked arbitrarily it must cover every strip of every
// direction exactly once per pass and match the tiled default bitwise.
func TestSweepExecMatchesTiled(t *testing.T) {
	baseline := runTiled(t, nil)
	perDir := map[state.Direction][]int{}
	got := runTiled(t, func(c *Config) {
		c.SweepExec = func(d state.Direction, nStrips int, sweep func(lo, hi int)) {
			seen := make([]bool, nStrips)
			for lo := 0; lo < nStrips; lo += 5 {
				hi := lo + 5
				if hi > nStrips {
					hi = nStrips
				}
				sweep(lo, hi)
				for r := lo; r < hi; r++ {
					if seen[r] {
						t.Errorf("dir %v strip %d swept twice in one pass", d, r)
					}
					seen[r] = true
				}
			}
			for r, ok := range seen {
				if !ok {
					t.Errorf("dir %v strip %d never swept", d, r)
				}
			}
			perDir[d] = append(perDir[d], nStrips)
		}
	})
	if len(perDir) != 3 {
		t.Fatalf("SweepExec saw %d directions, want 3", len(perDir))
	}
	requireBitwiseEqual(t, "sweep-exec", baseline, got)
}

// Fail-safe repair recomputes fluxes through the same tile kernels: an
// injected fault must be detected and repaired to a state bitwise
// identical to the legacy strip path's repair.
func TestFailSafeTiledMatchesLegacy(t *testing.T) {
	run := func(noTiling bool) ([]float64, int64, int64) {
		g := blast3DGrid(12, 10, 8)
		cfg := DefaultConfig()
		cfg.FailSafe = true
		cfg.NoTiling = noTiling
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.InitFromPrim(blast3DInit); err != nil {
			t.Fatal(err)
		}
		s.RecoverPrimitives()
		step := 0
		idx := g.Idx(g.TotalX/2, g.TotalY/2, g.TotalZ/2)
		s.Cfg.FaultHook = func(stage int, u *state.Fields) {
			if stage == 1 && step == 1 {
				u.Comp[state.ITau][idx] = -1
			}
		}
		for ; step < 3; step++ {
			if err := s.Step(s.MaxDt()); err != nil {
				t.Fatalf("step %d not repaired: %v", step, err)
			}
		}
		out := make([]float64, 0, state.NComp*g.NCells())
		for c := 0; c < state.NComp; c++ {
			out = append(out, g.U.Comp[c]...)
		}
		return out, s.St.Troubled.Load(), s.St.Repaired.Load()
	}
	legacy, ltr, lrep := run(true)
	tiled, ttr, trep := run(false)
	if ltr == 0 || lrep != ltr {
		t.Fatalf("legacy repair stats troubled=%d repaired=%d", ltr, lrep)
	}
	if ttr != ltr || trep != lrep {
		t.Fatalf("tiled repair stats troubled=%d repaired=%d, legacy %d/%d",
			ttr, trep, ltr, lrep)
	}
	requireBitwiseEqual(t, "failsafe", legacy, tiled)
}

// Negative tile extents are configuration errors.
func TestTileConfigValidation(t *testing.T) {
	g := blast3DGrid(8, 8, 1)
	for _, tc := range []struct{ tj, tk int }{{-1, 0}, {0, -4}} {
		cfg := DefaultConfig()
		cfg.TileJ, cfg.TileK = tc.tj, tc.tk
		if _, err := New(g, cfg); err == nil {
			t.Errorf("TileJ=%d TileK=%d accepted", tc.tj, tc.tk)
		}
	}
}
