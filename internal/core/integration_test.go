package core

// Cross-module integration tests: full solver runs validated against
// analytic results and physical symmetries, exercising the EOS, c2p,
// reconstruction, Riemann and grid packages together.

import (
	"math"
	"testing"

	"rhsc/internal/eos"
	"rhsc/internal/exact"
	"rhsc/internal/grid"
	"rhsc/internal/recon"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// Shock heating: cold gas with W = 10 slams into a reflecting wall. The
// post-shock state is known analytically: the gas comes to rest with
// specific internal energy ε = W − 1 and compression
// σ = (Γ+1)/(Γ−1) + Γ(W−1)/(Γ−1) = 43 for Γ = 4/3. This is the classic
// stress test of the conservative-to-primitive inversion at high Lorentz
// factor.
func TestShockHeatingAnalytic(t *testing.T) {
	p := testprob.ShockHeating
	g := p.NewGrid(400, 2)
	cfg := DefaultConfig()
	cfg.EOS = eos.NewIdealGas(p.Gamma)
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(p.Init)
	if _, err := s.Advance(p.TEnd); err != nil {
		t.Fatal(err)
	}

	wIn := 10.0
	sigma := testprob.ShockHeatingSigma(wIn, p.Gamma) // 43
	epsWant := wIn - 1                                // 9

	// Post-shock plateau, averaged over x in [0.05, 0.10]: cells adjacent
	// to the wall carry the classic Godunov "wall heating" dip and the
	// shock sits near x = |v| W t/(σ − W) ≈ 0.15, so this band is cleanly
	// inside the shocked region.
	var rho, vx, pres float64
	cnt := 0
	for i := g.IBeg(); i < g.IEnd(); i++ {
		if x := g.X(i); x >= 0.05 && x <= 0.10 {
			rho += g.W.Comp[state.IRho][i]
			vx += g.W.Comp[state.IVx][i]
			pres += g.W.Comp[state.IP][i]
			cnt++
		}
	}
	rho /= float64(cnt)
	vx /= float64(cnt)
	pres /= float64(cnt)
	epsGot := cfg.EOS.Eps(rho, pres)

	if math.Abs(rho-sigma)/sigma > 0.02 {
		t.Errorf("post-shock compression = %v, want %v (2%%)", rho, sigma)
	}
	if math.Abs(vx) > 0.01 {
		t.Errorf("post-shock velocity = %v, want ~0", vx)
	}
	if math.Abs(epsGot-epsWant)/epsWant > 0.02 {
		t.Errorf("post-shock eps = %v, want %v", epsGot, epsWant)
	}

	// The shock speed is V_s = (Γ−1)(W−1)v_in/(W v_in)... check instead
	// that a sharp interface exists between sigma and the inflow density 1.
	found := false
	for j := g.IBeg(); j < g.IEnd()-1; j++ {
		a := g.W.Comp[state.IRho][j]
		b := g.W.Comp[state.IRho][j+1]
		if a > 20 && b < 5 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no shock front between compressed and inflow gas")
	}
}

// A centred 3-D explosion with cubic-symmetric initial data must keep the
// full permutation symmetry of the axes: rho(x,y,z) invariant under
// coordinate permutations and reflections.
func TestBlast3DSymmetry(t *testing.T) {
	n := 16
	g := grid.New(grid.Geometry{Nx: n, Ny: n, Nz: n, Ng: 2,
		X0: -1, X1: 1, Y0: -1, Y1: 1, Z0: -1, Z1: 1})
	g.SetAllBCs(grid.Outflow)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, y, z float64) state.Prim {
		if x*x+y*y+z*z < 0.15 {
			return state.Prim{Rho: 1, P: 50}
		}
		return state.Prim{Rho: 1, P: 0.05}
	})
	for step := 0; step < 6; step++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	at := func(i, j, k int) float64 {
		return g.W.Comp[state.IRho][g.Idx(g.IBeg()+i, g.JBeg()+j, g.KBeg()+k)]
	}
	mirror := func(i int) int { return n - 1 - i }
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				v := at(i, j, k)
				// Axis permutations.
				if d := math.Abs(v - at(j, i, k)); d > 1e-10 {
					t.Fatalf("xy permutation broken at (%d,%d,%d): %v", i, j, k, d)
				}
				if d := math.Abs(v - at(k, j, i)); d > 1e-10 {
					t.Fatalf("xz permutation broken at (%d,%d,%d): %v", i, j, k, d)
				}
				// Reflections.
				if d := math.Abs(v - at(mirror(i), j, k)); d > 1e-10 {
					t.Fatalf("x reflection broken at (%d,%d,%d): %v", i, j, k, d)
				}
			}
		}
	}
	// The explosion must actually have evolved: the initial density is
	// uniform, so a swept-up shell (rho > 1) must have formed at the
	// pressure interface.
	maxRho := 0.0
	g.ForEachInterior(func(idx, _, _, _ int) {
		if v := g.W.Comp[state.IRho][idx]; v > maxRho {
			maxRho = v
		}
	})
	if maxRho < 1.05 {
		t.Errorf("no swept-up shell formed: max rho = %v", maxRho)
	}
}

// The Taub–Mathews EOS must run the blast wave stably and produce a
// shock between the Γ=4/3 and Γ=5/3 positions (its effective index
// interpolates between the two).
func TestBlastTaubMathewsBracketed(t *testing.T) {
	shockPos := func(e eos.EOS) float64 {
		p := testprob.Blast
		g := p.NewGrid(200, 2)
		cfg := DefaultConfig()
		cfg.EOS = e
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(p.Init)
		if _, err := s.Advance(0.3); err != nil {
			t.Fatal(err)
		}
		best, bestG := 0.0, 0.0
		for i := g.IBeg() + 1; i < g.IEnd(); i++ {
			gr := math.Abs(g.W.Comp[state.IRho][i] - g.W.Comp[state.IRho][i-1])
			if gr > bestG {
				bestG, best = gr, g.X(i)
			}
		}
		return best
	}
	x43 := shockPos(eos.NewIdealGas(4.0 / 3.0))
	x53 := shockPos(eos.NewIdealGas(5.0 / 3.0))
	xtm := shockPos(eos.TaubMathews{})
	lo, hi := math.Min(x43, x53), math.Max(x43, x53)
	// Allow one cell of slack on each side.
	if xtm < lo-0.006 || xtm > hi+0.006 {
		t.Errorf("TM shock at %v outside [%v, %v]", xtm, lo, hi)
	}
}

// A tabulated EOS built from the ideal gas must reproduce the ideal-gas
// Sod solution within interpolation accuracy when run through the whole
// solver stack.
func TestSodTabulatedEOSMatchesIdeal(t *testing.T) {
	run := func(e eos.EOS) []float64 {
		p := testprob.Sod
		g := p.NewGrid(128, 2)
		cfg := DefaultConfig()
		cfg.EOS = e
		s, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(p.Init)
		if _, err := s.Advance(0.25); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 128)
		for i := 0; i < 128; i++ {
			out[i] = g.W.Comp[state.IRho][g.IBeg()+i]
		}
		return out
	}
	ideal := eos.NewIdealGas(5.0 / 3.0)
	tab, err := eos.BuildTable(ideal, 1e-8, 1e4, 1e-10, 1e4, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := run(ideal)
	b := run(tab)
	l1 := 0.0
	for i := range a {
		l1 += math.Abs(a[i] - b[i])
	}
	l1 /= 128
	if l1 > 0.02 {
		t.Errorf("tabulated-EOS L1 deviation %v from ideal gas", l1)
	}
}

// Relativistic jet: the injected W≈7 beam must drive a working surface
// whose head advances at the 1-D momentum-balance estimate
// v_h = v_b / (1 + sqrt(ρ_a h_a / (ρ_b h_b W_b²))) ≈ 0.69, with a bow
// shock compressing the ambient gas.
func TestJetPropagation(t *testing.T) {
	p := testprob.Jet2D
	g := p.NewGrid(96, 2)
	cfg := DefaultConfig()
	cfg.EOS = eos.NewIdealGas(p.Gamma)
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(p.Init)
	const tEnd = 0.6
	if _, err := s.Advance(tEnd); err != nil {
		t.Fatal(err)
	}

	// Jet head: furthest x on the axis with substantial beam velocity.
	jMid := g.JBeg() + g.Ny/2
	head := 0.0
	for i := g.IBeg(); i < g.IEnd(); i++ {
		if g.W.Comp[state.IVx][g.Idx(i, jMid, g.KBeg())] > 0.3 {
			head = g.X(i)
		}
	}
	wantHead := 0.685 * tEnd
	if math.Abs(head-wantHead) > 0.15 {
		t.Errorf("jet head at %v, want ~%v", head, wantHead)
	}

	// Bow shock: compressed ambient gas above the ambient density.
	maxRho := 0.0
	g.ForEachInterior(func(idx, _, _, _ int) {
		if v := g.W.Comp[state.IRho][idx]; v > maxRho {
			maxRho = v
		}
	})
	if maxRho < 1.3*testprob.JetAmbRho {
		t.Errorf("no bow-shock compression: max rho = %v", maxRho)
	}

	// The nozzle keeps injecting the beam: first interior cell in the
	// nozzle still carries near-beam velocity.
	vIn := g.W.Comp[state.IVx][g.Idx(g.IBeg(), jMid, g.KBeg())]
	if vIn < 0.9 {
		t.Errorf("nozzle inflow velocity %v, want ~0.99", vIn)
	}
}

// Transverse-velocity shock tube: the numerical solution must converge to
// the exact Riemann solution with v_t ≠ 0 — the mutual validation of the
// weak-shock-integrated exact solver and the multidimensional momentum
// coupling of the numerical one.
func TestShockTubeWithTransverseVelocity(t *testing.T) {
	l := exact.State2{Rho: 10, Vx: 0, Vt: 0.4, P: 13.33}
	r := exact.State2{Rho: 1, Vx: 0, Vt: -0.3, P: 0.1}
	ref, err := exact.SolveVt(l, r, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	const tEnd = 0.3
	l1 := func(n int) float64 {
		g := grid.New(grid.Geometry{Nx: n, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
		g.SetAllBCs(grid.Outflow)
		s, err := New(g, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.InitFromPrim(func(x, _, _ float64) state.Prim {
			if x < 0.5 {
				return state.Prim{Rho: l.Rho, Vx: l.Vx, Vy: l.Vt, P: l.P}
			}
			return state.Prim{Rho: r.Rho, Vx: r.Vx, Vy: r.Vt, P: r.P}
		})
		if _, err := s.Advance(tEnd); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := g.IBeg(); i < g.IEnd(); i++ {
			ex := ref.Sample((g.X(i) - 0.5) / tEnd)
			sum += math.Abs(g.W.Comp[state.IRho][i] - ex.Rho)
			sum += math.Abs(g.W.Comp[state.IVy][i] - ex.Vt)
		}
		return sum / float64(n)
	}
	e200 := l1(200)
	e400 := l1(400)
	if e200 > 0.15 {
		t.Errorf("mean error at N=200 = %v, too large", e200)
	}
	if rate := e200 / e400; rate < 1.3 {
		t.Errorf("not converging to the v_t exact solution: e200=%v e400=%v", e200, e400)
	}
}

// Entropy conservation: smooth adiabatic flow must preserve the specific
// entropy proxy s = p/ρ^Γ to discretisation accuracy (no shocks, no
// spurious heating).
func TestSmoothFlowEntropyConservation(t *testing.T) {
	p := testprob.SmoothWave
	g := p.NewGrid(128, 3)
	cfg := DefaultConfig()
	cfg.Recon = recon.WENO5{}
	cfg.Integrator = RK3
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(p.Init)
	gamma := 5.0 / 3.0
	entropyRange := func() (lo, hi float64) {
		lo, hi = math.Inf(1), math.Inf(-1)
		g.ForEachInterior(func(idx, _, _, _ int) {
			w := g.W.GetPrim(idx)
			s := w.P / math.Pow(w.Rho, gamma)
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		})
		return
	}
	lo0, hi0 := entropyRange()
	if _, err := s.Advance(p.TEnd); err != nil {
		t.Fatal(err)
	}
	lo1, hi1 := entropyRange()
	// The initial profile has an entropy range (uniform p, varying rho);
	// evolution must not widen it measurably.
	if hi1 > hi0*(1+1e-3) || lo1 < lo0*(1-1e-3) {
		t.Errorf("entropy range grew: [%v,%v] -> [%v,%v]", lo0, hi0, lo1, hi1)
	}
}

// The relativistic rotor must stay stable and keep its 180-degree point
// symmetry (x,y) -> (-x,-y).
func TestRotorSymmetry(t *testing.T) {
	p := testprob.Rotor2D
	g := p.NewGrid(48, 2)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(p.Init)
	for i := 0; i < 8; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	for j := g.JBeg(); j < g.JEnd(); j++ {
		for i := g.IBeg(); i < g.IEnd(); i++ {
			mi := g.IBeg() + g.IEnd() - 1 - i
			mj := g.JBeg() + g.JEnd() - 1 - j
			a := g.W.Comp[state.IRho][g.Idx(i, j, g.KBeg())]
			b := g.W.Comp[state.IRho][g.Idx(mi, mj, g.KBeg())]
			if math.Abs(a-b) > 1e-10 {
				t.Fatalf("point symmetry broken at (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
	// The disk keeps spinning: tangential velocity remains significant.
	v := g.W.GetPrim(g.Idx(g.IBeg()+24+3, g.JBeg()+24, g.KBeg()))
	if math.Abs(v.Vy) < 0.1 {
		t.Errorf("rotor stalled: vy = %v", v.Vy)
	}
}

// Geometric sources: a uniform static state has exactly zero geometric
// source, and the 1-D spherical solver must reproduce the 3-D Cartesian
// blast's shock radius.
func TestGeometricSourceStatic(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 32, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Reflect)
	cfg := DefaultConfig()
	cfg.Source = GeometricSource(cfg.EOS, 2)
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		return state.Prim{Rho: 1.5, P: 0.8}
	})
	for i := 0; i < 5; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	g.ForEachInterior(func(idx, _, _, _ int) {
		if math.Abs(g.W.Comp[state.IRho][idx]-1.5) > 1e-12 {
			t.Fatalf("static state drifted under geometric source: %v",
				g.W.Comp[state.IRho][idx])
		}
	})
}

func TestSphericalBlastMatches3D(t *testing.T) {
	if testing.Short() {
		t.Skip("long: 48^3 reference run")
	}
	const tEnd = 0.15
	init := func(r float64) state.Prim {
		if r < 0.4 {
			return state.Prim{Rho: 1, P: 50}
		}
		return state.Prim{Rho: 1, P: 0.05}
	}
	shockOf := func(rho func(i int) float64, x func(i int) float64, n int) float64 {
		best, bestG := 0.0, 0.0
		for i := 1; i < n; i++ {
			if d := math.Abs(rho(i) - rho(i-1)); d > bestG {
				bestG, best = d, x(i)
			}
		}
		return best
	}

	// 1-D spherical: r in [0, 1], reflect at the origin.
	g1 := grid.New(grid.Geometry{Nx: 256, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g1.SetAllBCs(grid.Reflect)
	g1.BCs[0][1] = grid.Outflow
	cfg := DefaultConfig()
	cfg.Source = GeometricSource(cfg.EOS, 2)
	s1, err := New(g1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.InitFromPrim(func(x, _, _ float64) state.Prim { return init(x) })
	if _, err := s1.Advance(tEnd); err != nil {
		t.Fatal(err)
	}
	r1 := shockOf(
		func(i int) float64 { return g1.W.Comp[state.IRho][g1.IBeg()+i] },
		func(i int) float64 { return g1.X(g1.IBeg() + i) }, 256)

	// 3-D Cartesian on [-1,1]^3 at 48^3 (coarse but adequate for a shock
	// radius to ~1.5 cells).
	g3 := grid.New(grid.Geometry{Nx: 48, Ny: 48, Nz: 48, Ng: 2,
		X0: -1, X1: 1, Y0: -1, Y1: 1, Z0: -1, Z1: 1})
	g3.SetAllBCs(grid.Outflow)
	s3, err := New(g3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s3.InitFromPrim(func(x, y, z float64) state.Prim {
		return init(math.Sqrt(x*x + y*y + z*z))
	})
	if _, err := s3.Advance(tEnd); err != nil {
		t.Fatal(err)
	}
	jMid, kMid := g3.JBeg()+24, g3.KBeg()+24
	r3 := shockOf(
		func(i int) float64 { return g3.W.Comp[state.IRho][g3.Idx(g3.IBeg()+24+i, jMid, kMid)] },
		func(i int) float64 { return g3.X(g3.IBeg() + 24 + i) }, 24)

	if math.Abs(r1-r3) > 0.09 { // ~2 coarse cells
		t.Errorf("spherical-1D shock at %v vs 3-D at %v", r1, r3)
	}
}

// Kelvin–Helmholtz growth: the seeded transverse velocity must amplify
// within the linear phase — the instability capture check.
func TestKHGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("long: full 2-D evolution")
	}
	p := testprob.KelvinHelmholtz2D
	g := p.NewGrid(64, 2)
	cfg := DefaultConfig()
	cfg.EOS = eos.NewIdealGas(p.Gamma)
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(p.Init)

	maxVy := func() float64 {
		m := 0.0
		g.ForEachInterior(func(idx, _, _, _ int) {
			if v := math.Abs(g.W.Comp[state.IVy][idx]); v > m {
				m = v
			}
		})
		return m
	}
	v0 := maxVy()
	if _, err := s.Advance(1.5); err != nil {
		t.Fatal(err)
	}
	v1 := maxVy()
	// At 64^2 with PLM the linear growth is slow but must be clearly
	// present by t = 1.5 (the 128^2 example shows the full saturation).
	if v1 < 1.4*v0 {
		t.Errorf("KH transverse velocity grew only %vx (%v -> %v)", v1/v0, v0, v1)
	}
}
