package core

// A posteriori subcell fail-safe limiting (MOOD-style troubled-cell
// fallback). After each candidate RK stage the detector flags troubled
// cells — non-finite or positivity-violating conserved states, failed
// c2p inversions, and relaxed discrete-maximum-principle (DMP) rho/P
// jumps — and instead of rejecting the whole step the solver repairs
// locally:
//
//   - every face adjacent to a flagged cell has its high-order flux
//     replaced by the first-order PCM+HLL flux, computed from the same
//     pre-stage primitives the original sweep used;
//   - unflagged neighbours of a flagged cell receive the flux
//     *difference* (low − high) through the shared face, so both sides
//     of every face see the same corrected flux and conservation stays
//     exact (flux replacement, not cell replacement);
//   - flagged cells themselves are re-updated from the clean pre-stage
//     snapshot with the first-order divergence (their candidate value
//     may be NaN, so a differential patch would poison them).
//
// A stage with zero troubled cells performs the identical arithmetic of
// the plain pipeline (the detector only reads) and allocates nothing:
// all buffers are preallocated and the detector chunks are pre-bound,
// following the pooled-scratch discipline of the step pipeline.
//
// See docs/RESILIENCE.md ("Local repair") for the fault model and the
// conservation argument, and docs/PERFORMANCE.md for the mask-buffer
// allocation rules.

import (
	"math"

	"rhsc/internal/eos"
	"rhsc/internal/grid"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
)

// fsOn reports whether the fail-safe pipeline is active.
func (s *Solver) fsOn() bool { return s.Cfg.FailSafe }

// initFS allocates the fail-safe buffers and binds the detector chunks.
// Called lazily so Config.FailSafe may be toggled after New.
func (s *Solver) initFS() {
	g := s.G
	n := g.NCells()
	s.fsMask = make([]uint8, n)
	s.fsTouched = make([]uint8, n)
	s.fsU = state.NewFields(n)
	s.fsW = state.NewFields(n)
	s.fsGamma = 0
	if ig, ok := s.Cfg.EOS.(eos.IdealGas); ok {
		s.fsGamma = ig.GammaAd
	}
	s.fsStrides = s.fsStrides[:0]
	for _, d := range g.ActiveDims() {
		switch d {
		case state.X:
			s.fsStrides = append(s.fsStrides, 1)
		case state.Y:
			s.fsStrides = append(s.fsStrides, g.TotalX)
		default:
			s.fsStrides = append(s.fsStrides, g.TotalX*g.TotalY)
		}
	}
	s.fsScanChunk = func(lo, hi int) {
		gr := s.G
		ny := gr.JEnd() - gr.JBeg()
		mask := s.fsMask
		u := gr.U
		for r := lo; r < hi; r++ {
			j := gr.JBeg() + r%ny
			k := gr.KBeg() + r/ny
			row := (k*gr.TotalY + j) * gr.TotalX
			for i := gr.IBeg(); i < gr.IEnd(); i++ {
				idx := row + i
				bad := false
				for c := 0; c < state.NComp; c++ {
					v := u.Comp[c][idx]
					if math.IsNaN(v) || math.IsInf(v, 0) {
						bad = true
						break
					}
				}
				if !bad && (u.Comp[state.ID][idx] <= 0 || u.Comp[state.ITau][idx] <= 0) {
					bad = true
				}
				if bad {
					mask[idx] = 1
				}
			}
		}
	}
	s.fsDMPChunk = func(lo, hi int) {
		gr := s.G
		ny := gr.JEnd() - gr.JBeg()
		mask := s.fsMask
		relax := s.Cfg.FailSafeRelax
		if relax == 0 {
			relax = 1.0
		}
		rhoC, pC := gr.W.Comp[state.IRho], gr.W.Comp[state.IP]
		rho0, p0 := s.fsW.Comp[state.IRho], s.fsW.Comp[state.IP]
		count := 0
		for r := lo; r < hi; r++ {
			j := gr.JBeg() + r%ny
			k := gr.KBeg() + r/ny
			row := (k*gr.TotalY + j) * gr.TotalX
			for i := gr.IBeg(); i < gr.IEnd(); i++ {
				idx := row + i
				if mask[idx] != 0 {
					count++
					continue
				}
				if fsDMPViolates(rho0, rhoC[idx], idx, s.fsStrides, relax) ||
					fsDMPViolates(p0, pC[idx], idx, s.fsStrides, relax) {
					mask[idx] = 1
					count++
				}
			}
		}
		if count > 0 {
			s.fsCount.Add(int64(count))
		}
	}
}

// fsDMPViolates applies the relaxed discrete maximum principle: the
// candidate value v is admissible when it lies inside the pre-stage face
// neighbourhood's [min, max] widened by relax·(max−min) plus a relative
// cushion. The cushion must absorb normal smooth evolution in locally
// flat fields — there mx−mn vanishes and the range term gives no slack,
// so a uniform-pressure region would flag on any per-step change; 1e-3
// of the local magnitude tolerates that while staying orders of
// magnitude below the corruption the detector exists to catch.
func fsDMPViolates(ref []float64, v float64, idx int, strides []int, relax float64) bool {
	mn, mx := ref[idx], ref[idx]
	for _, st := range strides {
		if a := ref[idx-st]; a < mn {
			mn = a
		} else if a > mx {
			mx = a
		}
		if a := ref[idx+st]; a < mn {
			mn = a
		} else if a > mx {
			mx = a
		}
	}
	delta := relax*(mx-mn) + 1e-3*math.Max(math.Abs(mn), math.Abs(mx))
	return v < mn-delta || v > mx+delta
}

// FSBegin snapshots the pre-stage state (U and W, ghosts included) the
// detector and repair reference. Call after ComputeRHS and before the
// stage's conserved update; the AMR drivers call it per leaf.
func (s *Solver) FSBegin() {
	if s.fsMask == nil {
		s.initFS()
	}
	s.fsU.CopyFrom(s.G.U)
	s.fsW.CopyFrom(s.G.W)
}

// FSDetect runs the troubled-cell detector on the candidate stage: a
// conserved-state scan (NaN/Inf, D<=0, tau<=0), the stage's primitive
// recovery in flagging mode (failed inversions mark the mask and leave U
// untouched), and the relaxed-DMP rho/P admissibility check against the
// pre-stage neighbourhood. It returns the number of flagged interior
// cells; with zero the solver state is exactly what the plain stage
// recovery produces — bitwise — and nothing was allocated.
func (s *Solver) FSDetect() int {
	g := s.G
	clear(s.fsMask)
	s.fsCount.Store(0)
	ny := g.JEnd() - g.JBeg()
	nz := g.KEnd() - g.KBeg()
	s.parallelFor(ny*nz, s.fsScanChunk)
	s.recoverPrims(true)
	s.parallelFor(ny*nz, s.fsDMPChunk)
	return int(s.fsCount.Load())
}

// FSMask exposes the troubled-cell mask (full grid layout, ghosts
// included), allocating the fail-safe buffers on first use — halo
// replicas in a distributed run install neighbour masks without ever
// running the detector themselves. The AMR drivers read interior flags
// and write ghost-band entries of faces marked grid.External before
// FSRepair, mirroring the primitive halo exchange.
func (s *Solver) FSMask() []uint8 {
	if s.fsMask == nil {
		s.initFS()
	}
	return s.fsMask
}

// fsStagePost validates a candidate stage through the fail-safe
// pipeline: detect, optionally demote on the troubled fraction, repair.
// (a, b) are the stage's SSP combination coefficients — the candidate
// was U = a·u0 + b·(U_pre + dt·L).
func (s *Solver) fsStagePost(stage int, dt, a, b float64) error {
	troubled := s.FSDetect()
	if troubled == 0 {
		if s.Cfg.StrictChecks {
			return s.checkState(stage)
		}
		return nil
	}
	s.St.Troubled.Add(int64(troubled))
	if maxFrac := s.Cfg.FailSafeMaxFrac; maxFrac > 0 {
		if frac := float64(troubled) / float64(s.G.Nx*s.G.Ny*s.G.Nz); frac > maxFrac {
			return &StateError{Stage: stage, Troubled: troubled}
		}
	}
	if err := s.FSRepair(stage, dt, a, b); err != nil {
		if se, ok := err.(*StateError); ok {
			se.Troubled = troubled
		}
		return err
	}
	s.St.Repaired.Add(int64(troubled))
	if s.Cfg.StrictChecks {
		return s.checkState(stage)
	}
	return nil
}

// FSRepair re-updates the flagged cells of the candidate stage with
// first-order PCM+HLL fluxes and applies the matching flux differences
// to their unflagged neighbours, then re-recovers every touched cell.
// The mask must be current (FSDetect, plus any external ghost-band fill
// by an AMR/distributed driver); (a, b) are the stage's SSP combination
// coefficients and dt its step. The repair runs serially — it is the
// rare path, and strict determinism makes repaired runs reproducible and
// partition invariant.
func (s *Solver) FSRepair(stage int, dt, a, b float64) error {
	g := s.G
	s.fsFillMaskBCs()
	if s.Cfg.MaskExchange != nil {
		s.Cfg.MaskExchange(s.fsMask)
	}
	clear(s.fsTouched)

	scO := s.getScratch()
	scL := s.getScratch()
	defer s.putScratch(scO)
	defer s.putScratch(scL)

	for di, d := range g.ActiveDims() {
		overwrite := di == 0
		n := s.NumStrips(d)
		for r := 0; r < n; r++ {
			switch d {
			case state.X:
				ny := g.JEnd() - g.JBeg()
				j := g.JBeg() + r%ny
				k := g.KBeg() + r/ny
				s.fsRepairRow(d, g.Idx(0, j, k), 1, g.TotalX, g.IBeg(), g.IEnd(), g.Dx,
					overwrite, dt, b, scO, scL)
			case state.Y:
				i := g.IBeg() + r%g.Nx
				k := g.KBeg() + r/g.Nx
				s.fsRepairRow(d, g.Idx(i, 0, k), g.TotalX, g.TotalY, g.JBeg(), g.JEnd(), g.Dy,
					overwrite, dt, b, scO, scL)
			default:
				i := g.IBeg() + r%g.Nx
				j := g.JBeg() + r/g.Nx
				s.fsRepairRow(d, g.Idx(i, j, 0), g.TotalX*g.TotalY, g.TotalZ, g.KBeg(), g.KEnd(), g.Dz,
					overwrite, dt, b, scO, scL)
			}
		}
	}

	// Flagged cells: re-update from the clean pre-stage snapshot with the
	// accumulated first-order divergence (plus the source term, evaluated
	// from the same pre-stage primitives the original RHS used).
	mask, touched := s.fsMask, s.fsTouched
	src := s.Cfg.Source
	u, u0, fu, rhs := g.U, s.u0, s.fsU, s.rhs
	g.ForEachInterior(func(idx, i, j, k int) {
		if mask[idx] == 0 {
			return
		}
		if src != nil {
			c := src(g.X(i), g.Y(j), g.Z(k), s.fsW.GetPrim(idx))
			rhs.Comp[state.ID][idx] += c.D
			rhs.Comp[state.ISx][idx] += c.Sx
			rhs.Comp[state.ISy][idx] += c.Sy
			rhs.Comp[state.ISz][idx] += c.Sz
			rhs.Comp[state.ITau][idx] += c.Tau
		}
		for c := 0; c < state.NComp; c++ {
			u.Comp[c][idx] = a*u0.Comp[c][idx] + b*(fu.Comp[c][idx]+dt*rhs.Comp[c][idx])
		}
		touched[idx] = 1
	})

	// Re-recover every touched cell, seeding the Newton guess with the
	// pre-stage pressure: a halo replica of a repaired cell recovers the
	// exchanged U with *its* current (pre-stage) pressure, so the owner
	// must use the same guess for the roots — and hence the runs — to be
	// bitwise rank-count invariant.
	pW, pW0 := g.W.Comp[state.IP], s.fsW.Comp[state.IP]
	failures := 0
	firstIdx := -1
	var firstCons state.Cons
	g.ForEachInterior(func(idx, _, _, _ int) {
		if touched[idx] == 0 {
			return
		}
		pW[idx] = pW0[idx]
		res := s.C2P.RecoverRangeEx(g.U, g.W, idx, idx+1, nil, false)
		if res.Failures > 0 {
			failures += res.Failures
			if firstIdx < 0 {
				firstIdx, firstCons = idx, res.FirstCons
			}
		}
	})
	if failures > 0 {
		e := &StateError{Stage: stage, RepairFailed: true, C2PResets: failures, FirstCons: firstCons}
		e.First = [3]int{firstIdx % g.TotalX, (firstIdx / g.TotalX) % g.TotalY,
			firstIdx / (g.TotalX * g.TotalY)}
		return e
	}

	g.ApplyBCs(g.W)
	if s.Cfg.HaloExchange != nil {
		s.Cfg.HaloExchange(g.W)
	}
	// The repair rewrote W at touched cells, so any in-pass CFL reduction
	// folded by the detection recovery is stale.
	s.cflValid = false
	return nil
}

// fsRepairRow patches one strip: when any cell of the strip (including
// the two face-adjacent ghosts) is flagged, it recomputes the strip's
// original fluxes from the pre-stage primitives with the configured
// kernel — bitwise the fluxes the sweep used — and the first-order
// PCM+HLL fluxes, replaces the flux of every dirty face (a face with a
// flagged cell on either side), applies the difference to unflagged
// interior neighbours, and accumulates the first-order divergence of
// flagged cells into s.rhs (overwriting on the first active direction,
// exactly like the sweep).
func (s *Solver) fsRepairRow(d state.Direction, base, stride, n, cBeg, cEnd int, dx float64,
	overwrite bool, dt, b float64, scO, scL *rowScratch) {

	mask := s.fsMask
	dirty := false
	for i := cBeg - 1; i <= cEnd; i++ {
		if mask[base+i*stride] != 0 {
			dirty = true
			break
		}
	}
	if !dirty {
		return
	}

	// Original high-order fluxes, recomputed from the pre-stage snapshot
	// through the same fillFlux dispatch the sweep and tile kernels use
	// (identical inputs, identical code path — bitwise the same values,
	// whether the stage ran tiled segments or full strips).
	uO := gatherRow(s.fsW, base, stride, n, scO)
	s.fillFlux(d, uO, n, cBeg, cEnd, scO)

	// First-order fallback fluxes from the same pre-stage primitives.
	uL := gatherRow(s.fsW, base, stride, n, scL)
	if s.fsGamma > 0 {
		fillFluxPCMHLL(s.fsGamma, d, uL, cBeg, cEnd, scL)
	} else {
		s.fillFluxLowGeneric(d, uL, cBeg, cEnd, scL)
	}

	g := s.G
	touched := s.fsTouched
	coef := b * dt / dx
	for f := cBeg; f <= cEnd; f++ {
		li := base + (f-1)*stride
		ri := base + f*stride
		lm, rm := mask[li] != 0, mask[ri] != 0
		if !lm && !rm {
			continue
		}
		// The left cell loses the face's flux, the right cell gains it;
		// applying the same difference with opposite signs keeps the pair
		// conservative to round-off. Flagged cells are skipped — they are
		// rebuilt wholesale from the first-order divergence below.
		for c := 0; c < state.NComp; c++ {
			delta := scL.fx[c][f] - scO.fx[c][f]
			if !lm && f-1 >= cBeg {
				g.U.Comp[c][li] -= coef * delta
			}
			if !rm && f < cEnd {
				g.U.Comp[c][ri] += coef * delta
			}
		}
		if !lm && f-1 >= cBeg {
			touched[li] = 1
		}
		if !rm && f < cEnd {
			touched[ri] = 1
		}
	}

	// First-order divergence of flagged cells into s.rhs, mirroring
	// accumulateRow's overwrite/accumulate split so multi-dimensional
	// contributions compose exactly like a sweep.
	invDx := 1 / dx
	rhs := s.rhs
	for i := cBeg; i < cEnd; i++ {
		idx := base + i*stride
		if mask[idx] == 0 {
			continue
		}
		for c := 0; c < state.NComp; c++ {
			div := 0 - (scL.fx[c][i+1]-scL.fx[c][i])*invDx
			if overwrite {
				rhs.Comp[c][idx] = div
			} else {
				rhs.Comp[c][idx] += div
			}
		}
	}
}

// fillFluxLowGeneric computes the first-order PCM+HLL fluxes for
// non-Γ-law equations of state: face states are the adjacent cell
// primitives (exactly recon.PCM) fed to the generic HLL solver.
func (s *Solver) fillFluxLowGeneric(d state.Direction, u [state.NComp][]float64, cBeg, cEnd int,
	sc *rowScratch) {

	e := s.Cfg.EOS
	var hll riemann.HLL
	for f := cBeg; f <= cEnd; f++ {
		pl := state.Prim{
			Rho: u[state.IRho][f-1], Vx: u[state.IVx][f-1],
			Vy: u[state.IVy][f-1], Vz: u[state.IVz][f-1], P: u[state.IP][f-1],
		}
		pr := state.Prim{
			Rho: u[state.IRho][f], Vx: u[state.IVx][f],
			Vy: u[state.IVy][f], Vz: u[state.IVz][f], P: u[state.IP][f],
		}
		fx := hll.Flux(e, pl, pr, d)
		sc.fx[state.ID][f] = fx.D
		sc.fx[state.ISx][f] = fx.Sx
		sc.fx[state.ISy][f] = fx.Sy
		sc.fx[state.ISz][f] = fx.Sz
		sc.fx[state.ITau][f] = fx.Tau
	}
}

// fsFillMaskBCs fills the ghost-band entries of the troubled-cell mask
// for the grid's own boundary conditions, mirroring grid.ApplyBCs
// (Outflow copies, Periodic wraps, Reflect mirrors — flags carry no
// sign). Faces marked External (and Custom) are left untouched for the
// driver's mask exchange, exactly like the primitive halo.
func (s *Solver) fsFillMaskBCs() {
	g := s.G
	m := s.fsMask
	ng := g.Ng
	nx := g.Nx
	for k := 0; k < g.TotalZ; k++ {
		for j := 0; j < g.TotalY; j++ {
			row := (k*g.TotalY + j) * g.TotalX
			data := m[row : row+g.TotalX]
			switch g.BCs[0][0] {
			case grid.Outflow:
				for i := 0; i < ng; i++ {
					data[i] = data[ng]
				}
			case grid.Periodic:
				for i := 0; i < ng; i++ {
					data[i] = data[nx+i]
				}
			case grid.Reflect:
				for i := 0; i < ng; i++ {
					data[i] = data[2*ng-1-i]
				}
			}
			switch g.BCs[0][1] {
			case grid.Outflow:
				for i := 0; i < ng; i++ {
					data[ng+nx+i] = data[ng+nx-1]
				}
			case grid.Periodic:
				for i := 0; i < ng; i++ {
					data[ng+nx+i] = data[ng+i]
				}
			case grid.Reflect:
				for i := 0; i < ng; i++ {
					data[ng+nx+i] = data[ng+nx-1-i]
				}
			}
		}
	}
	if g.Ny > 1 {
		nyI := g.Ny
		for k := 0; k < g.TotalZ; k++ {
			for i := 0; i < g.TotalX; i++ {
				at := func(j int) int { return (k*g.TotalY+j)*g.TotalX + i }
				switch g.BCs[1][0] {
				case grid.Outflow:
					for j := 0; j < ng; j++ {
						m[at(j)] = m[at(ng)]
					}
				case grid.Periodic:
					for j := 0; j < ng; j++ {
						m[at(j)] = m[at(nyI+j)]
					}
				case grid.Reflect:
					for j := 0; j < ng; j++ {
						m[at(j)] = m[at(2*ng-1-j)]
					}
				}
				switch g.BCs[1][1] {
				case grid.Outflow:
					for j := 0; j < ng; j++ {
						m[at(ng+nyI+j)] = m[at(ng+nyI-1)]
					}
				case grid.Periodic:
					for j := 0; j < ng; j++ {
						m[at(ng+nyI+j)] = m[at(ng+j)]
					}
				case grid.Reflect:
					for j := 0; j < ng; j++ {
						m[at(ng+nyI+j)] = m[at(ng+nyI-1-j)]
					}
				}
			}
		}
	}
	if g.Nz > 1 {
		nzI := g.Nz
		for j := 0; j < g.TotalY; j++ {
			for i := 0; i < g.TotalX; i++ {
				at := func(k int) int { return (k*g.TotalY+j)*g.TotalX + i }
				switch g.BCs[2][0] {
				case grid.Outflow:
					for k := 0; k < ng; k++ {
						m[at(k)] = m[at(ng)]
					}
				case grid.Periodic:
					for k := 0; k < ng; k++ {
						m[at(k)] = m[at(nzI+k)]
					}
				case grid.Reflect:
					for k := 0; k < ng; k++ {
						m[at(k)] = m[at(2*ng-1-k)]
					}
				}
				switch g.BCs[2][1] {
				case grid.Outflow:
					for k := 0; k < ng; k++ {
						m[at(ng+nzI+k)] = m[at(ng+nzI-1)]
					}
				case grid.Periodic:
					for k := 0; k < ng; k++ {
						m[at(ng+nzI+k)] = m[at(ng+k)]
					}
				case grid.Reflect:
					for k := 0; k < ng; k++ {
						m[at(ng+nzI+k)] = m[at(ng+nzI-1-k)]
					}
				}
			}
		}
	}
}
