package core

// Fused sweep kernels: configurations with every interface call
// devirtualised and the per-face state conversions inlined. These are the
// hand-written analogues of the specialised kernels the paper's
// heterogeneous code paths generate per device: identical arithmetic
// (bitwise-equal results, enforced by tests), lower dispatch and
// conversion overhead. Enabled via Config.Fused when the configuration
// matches; other configurations silently use the generic path.
//
// Two configurations are specialised:
//
//   - PLM(MC) + HLLC + ideal gas — the paper's production method.
//   - PCM + HLL + ideal gas — the dissipative fallback scheme the
//     resilience layer drops to when retrying a failed step, so retries
//     keep the fast path too.

import (
	"math"

	"rhsc/internal/eos"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
)

// fusedKind identifies which specialised sweep kernel, if any, matches the
// current configuration.
type fusedKind int

const (
	fusedNone    fusedKind = iota
	fusedPLMHLLC           // PLM(MC) + HLLC + ideal gas
	fusedPCMHLL            // PCM + HLL + ideal gas (resilience fallback)
)

// fusable maps the configuration to its specialised kernel, or fusedNone
// when no kernel matches (or Config.Fused is off).
func (s *Solver) fusable() fusedKind {
	if !s.Cfg.Fused {
		return fusedNone
	}
	if _, ok := s.Cfg.EOS.(eos.IdealGas); !ok {
		return fusedNone
	}
	if r, ok := s.Cfg.Recon.(recon.PLM); ok && r.Lim == recon.MonotonizedCentral {
		if _, ok := s.Cfg.Riemann.(riemann.HLLC); ok {
			return fusedPLMHLLC
		}
		return fusedNone
	}
	if _, ok := s.Cfg.Recon.(recon.PCM); ok {
		if _, ok := s.Cfg.Riemann.(riemann.HLL); ok {
			return fusedPCMHLL
		}
	}
	return fusedNone
}

// fusedPrim is the face state of the specialised kernels.
type fusedPrim struct {
	rho, vx, vy, vz, p float64
}

// fillFluxPLMHLLC is the PLM(MC)+HLLC arm of fillFlux: the
// reconstruction reuses the generic scheme (already concrete); the flux
// path inlines HLLC with the Γ-law EOS.
func (s *Solver) fillFluxPLMHLLC(d state.Direction, u [state.NComp][]float64, n, cBeg, cEnd int,
	sc *rowScratch) {

	plm := recon.PLM{Lim: recon.MonotonizedCentral}
	for c := 0; c < state.NComp; c++ {
		plm.Reconstruct(u[c], sc.fl[c][:n+1], sc.fr[c][:n+1])
	}

	gamma := s.gamma
	var L, R fusedState
	for f := cBeg; f <= cEnd; f++ {
		pl := fusedPrim{
			rho: sc.fl[state.IRho][f], vx: sc.fl[state.IVx][f],
			vy: sc.fl[state.IVy][f], vz: sc.fl[state.IVz][f], p: sc.fl[state.IP][f],
		}
		pr := fusedPrim{
			rho: sc.fr[state.IRho][f], vx: sc.fr[state.IVx][f],
			vy: sc.fr[state.IVy][f], vz: sc.fr[state.IVz][f], p: sc.fr[state.IP][f],
		}
		if !fusedPhysical(pl) {
			pl = fusedPrim{
				rho: u[state.IRho][f-1], vx: u[state.IVx][f-1],
				vy: u[state.IVy][f-1], vz: u[state.IVz][f-1], p: u[state.IP][f-1],
			}
		}
		if !fusedPhysical(pr) {
			pr = fusedPrim{
				rho: u[state.IRho][f], vx: u[state.IVx][f],
				vy: u[state.IVy][f], vz: u[state.IVz][f], p: u[state.IP][f],
			}
		}
		fusedEval(gamma, pl, d, &L)
		fusedEval(gamma, pr, d, &R)
		fd, fsx, fsy, fsz, ftau := fusedHLLC(&L, &R, pl.p, pr.p, d)
		sc.fx[state.ID][f] = fd
		sc.fx[state.ISx][f] = fsx
		sc.fx[state.ISy][f] = fsy
		sc.fx[state.ISz][f] = fsz
		sc.fx[state.ITau][f] = ftau
	}
}

// fillFluxPCMHLL is the PCM+HLL arm of fillFlux — the dissipative
// fallback the resilience layer retries failed steps with. PCM face
// states are the adjacent cell values themselves (uL[f] = u[f−1],
// uR[f] = u[f], recon.PCM.Reconstruct), so the physical-fallback check of
// the generic path is skipped: it would replace an inadmissible face state
// with the very same cell value, bitwise. Besides backing the fused
// PCM+HLL sweep it is the fail-safe repair's low-order flux kernel for
// Γ-law configurations, so a repaired cell's fallback update is bitwise
// the flux the global PCM+HLL fallback scheme would have used.
func fillFluxPCMHLL(gamma float64, d state.Direction, u [state.NComp][]float64, cBeg, cEnd int,
	sc *rowScratch) {

	var L, R fusedState
	for f := cBeg; f <= cEnd; f++ {
		pl := fusedPrim{
			rho: u[state.IRho][f-1], vx: u[state.IVx][f-1],
			vy: u[state.IVy][f-1], vz: u[state.IVz][f-1], p: u[state.IP][f-1],
		}
		pr := fusedPrim{
			rho: u[state.IRho][f], vx: u[state.IVx][f],
			vy: u[state.IVy][f], vz: u[state.IVz][f], p: u[state.IP][f],
		}
		fusedEval(gamma, pl, d, &L)
		fusedEval(gamma, pr, d, &R)
		fd, fsx, fsy, fsz, ftau := fusedHLL(&L, &R)
		sc.fx[state.ID][f] = fd
		sc.fx[state.ISx][f] = fsx
		sc.fx[state.ISy][f] = fsy
		sc.fx[state.ISz][f] = fsz
		sc.fx[state.ITau][f] = ftau
	}
}

func fusedPhysical(p fusedPrim) bool {
	v2 := p.vx*p.vx + p.vy*p.vy + p.vz*p.vz
	return p.rho > 0 && p.p > 0 && v2 < 1 && !math.IsNaN(p.rho) && !math.IsNaN(p.p)
}

// fusedState is the per-side bundle of conserved variables and fluxes the
// specialised solvers need; the arithmetic mirrors state.Prim.ToCons,
// state.Flux and state.WaveSpeeds operation for operation so results stay
// bitwise identical to the generic path.
type fusedState struct {
	d, sx, sy, sz, tau      float64 // conserved
	fd, fsx, fsy, fsz, ftau float64 // fluxes along the sweep direction
	vd                      float64 // velocity along the sweep direction
	lm, lp                  float64 // characteristic speeds
}

// fusedEval fills st in place (returning the 104-byte struct by value put
// a duffcopy on the per-face hot path).
func fusedEval(gamma float64, q fusedPrim, d state.Direction, st *fusedState) {
	v2 := q.vx*q.vx + q.vy*q.vy + q.vz*q.vz
	w := 1 / math.Sqrt(1-v2)
	h := 1 + gamma/(gamma-1)*q.p/q.rho
	rhw2 := q.rho * h * w * w
	st.d = q.rho * w
	st.sx = rhw2 * q.vx
	st.sy = rhw2 * q.vy
	st.sz = rhw2 * q.vz
	st.tau = rhw2 - q.p - st.d

	var vd, sd float64
	switch d {
	case state.X:
		vd, sd = q.vx, st.sx
	case state.Y:
		vd, sd = q.vy, st.sy
	default:
		vd, sd = q.vz, st.sz
	}
	st.vd = vd
	st.fd = st.d * vd
	st.fsx = st.sx * vd
	st.fsy = st.sy * vd
	st.fsz = st.sz * vd
	st.ftau = sd - st.d*vd
	switch d {
	case state.X:
		st.fsx += q.p
	case state.Y:
		st.fsy += q.p
	default:
		st.fsz += q.p
	}

	cs2 := gamma * q.p / (q.rho * h)
	den := 1 - v2*cs2
	disc := (1 - v2) * (1 - v2*cs2 - vd*vd*(1-cs2))
	if disc < 0 {
		disc = 0
	}
	root := math.Sqrt(disc) * math.Sqrt(cs2)
	st.lm = (vd*(1-cs2) - root) / den
	st.lp = (vd*(1-cs2) + root) / den
}

// fusedHLL is riemann.HLL.Flux specialised to the Γ-law gas.
func fusedHLL(L, R *fusedState) (fd, fsx, fsy, fsz, ftau float64) {
	sl := math.Min(L.lm, R.lm)
	sr := math.Max(L.lp, R.lp)
	switch {
	case sl >= 0:
		return L.fd, L.fsx, L.fsy, L.fsz, L.ftau
	case sr <= 0:
		return R.fd, R.fsx, R.fsy, R.fsz, R.ftau
	}
	inv := 1 / (sr - sl)
	hll := func(flc, frc, ulc, urc float64) float64 {
		return (sr*flc - sl*frc + sl*sr*(urc-ulc)) * inv
	}
	return hll(L.fd, R.fd, L.d, R.d),
		hll(L.fsx, R.fsx, L.sx, R.sx),
		hll(L.fsy, R.fsy, L.sy, R.sy),
		hll(L.fsz, R.fsz, L.sz, R.sz),
		hll(L.ftau, R.ftau, L.tau, R.tau)
}

// fusedHLLC is riemann.HLLC specialised to the Γ-law gas. L and R must be
// filled by fusedEval; plp/prp are the face pressures.
func fusedHLLC(L, R *fusedState, plp, prp float64, d state.Direction) (fd, fsx, fsy, fsz, ftau float64) {
	sl := math.Min(L.lm, R.lm)
	sr := math.Max(L.lp, R.lp)
	switch {
	case sl >= 0:
		return L.fd, L.fsx, L.fsy, L.fsz, L.ftau
	case sr <= 0:
		return R.fd, R.fsx, R.fsy, R.fsz, R.ftau
	}

	inv := 1 / (sr - sl)
	hllU := func(ulc, urc, flc, frc float64) float64 {
		return (sr*urc - sl*ulc + flc - frc) * inv
	}
	hllF := func(flc, frc, ulc, urc float64) float64 {
		return (sr*flc - sl*frc + sl*sr*(urc-ulc)) * inv
	}
	eL := L.tau + L.d
	eR := R.tau + R.d
	var mL, mR, fmL, fmR float64
	switch d {
	case state.X:
		mL, mR, fmL, fmR = L.sx, R.sx, L.fsx, R.fsx
	case state.Y:
		mL, mR, fmL, fmR = L.sy, R.sy, L.fsy, R.fsy
	default:
		mL, mR, fmL, fmR = L.sz, R.sz, L.fsz, R.fsz
	}
	feL := L.ftau + L.fd
	feR := R.ftau + R.fd
	eH := hllU(eL, eR, feL, feR)
	mH := hllU(mL, mR, fmL, fmR)
	feH := hllF(feL, feR, eL, eR)
	fmH := hllF(fmL, fmR, mL, mR)

	a := feH
	b := -(eH + fmH)
	c := mH
	var lstar float64
	if math.Abs(a) > 1e-12*(math.Abs(b)+math.Abs(c)) {
		disc := b*b - 4*a*c
		if disc < 0 {
			disc = 0
		}
		q := -0.5 * (b + math.Copysign(math.Sqrt(disc), b))
		lstar = c / q
	} else {
		lstar = -c / b
	}
	if lstar < sl {
		lstar = sl
	}
	if lstar > sr {
		lstar = sr
	}
	pstar := -feH*lstar + fmH

	var K *fusedState
	var pK, sk float64
	if lstar >= 0 {
		K, pK, sk = L, plp, sl
	} else {
		K, pK, sk = R, prp, sr
	}
	vk := K.vd
	ek := K.tau + K.d
	invK := 1 / (sk - lstar)
	dstar := K.d * (sk - vk) * invK
	estar := (ek*(sk-vk) + pstar*lstar - pK*vk) * invK
	adv := (sk - vk) * invK
	var sxs, sys, szs float64
	switch d {
	case state.X:
		sxs = (K.sx*(sk-vk) + pstar - pK) * invK
		sys = K.sy * adv
		szs = K.sz * adv
	case state.Y:
		sys = (K.sy*(sk-vk) + pstar - pK) * invK
		sxs = K.sx * adv
		szs = K.sz * adv
	default:
		szs = (K.sz*(sk-vk) + pstar - pK) * invK
		sxs = K.sx * adv
		sys = K.sy * adv
	}
	taustar := estar - dstar
	return K.fd + sk*(dstar-K.d),
		K.fsx + sk*(sxs-K.sx),
		K.fsy + sk*(sys-K.sy),
		K.fsz + sk*(szs-K.sz),
		K.ftau + sk*(taustar-K.tau)
}
