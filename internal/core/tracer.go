package core

// Passive composition tracer: a scalar X (electron fraction, metallicity,
// …) advected with the fluid. The conserved form is D_X = ρ W X = D·X
// with flux F(D_X) = F(D)·X_upwind, so the tracer rides on the mass flux
// the sweeps already compute and stays discretely consistent with it:
// where D is conserved, so is D_X, and X remains in [min, max] of its
// initial data (donor-cell upwinding is monotone).
//
// The tracer currently supports single-grid runs (no HaloExchange/AMR);
// New rejects the combination.

import (
	"errors"
	"fmt"
	"math"

	"rhsc/internal/state"
)

// tracerState holds the tracer arrays; nil when the tracer is disabled.
type tracerState struct {
	cons []float64 // D_X, including ghosts
	prim []float64 // X
	rhs  []float64
	u0   []float64
}

// EnableTracer activates the passive scalar and imposes its initial
// profile X(x, y, z). Must be called after InitFromPrim (it needs the
// conserved density) and before stepping. It returns an error when the
// solver uses a halo exchange (distributed/AMR drivers own the ghosts).
func (s *Solver) EnableTracer(fn func(x, y, z float64) float64) error {
	if s.Cfg.HaloExchange != nil {
		return errors.New("core: tracer does not support HaloExchange drivers")
	}
	n := s.G.NCells()
	s.trc = &tracerState{
		cons: make([]float64, n),
		prim: make([]float64, n),
		rhs:  make([]float64, n),
		u0:   make([]float64, n),
	}
	g := s.G
	g.ForEachInterior(func(idx, i, j, k int) {
		x := fn(g.X(i), g.Y(j), g.Z(k))
		if math.IsNaN(x) {
			panic(fmt.Sprintf("core: NaN tracer at (%d,%d,%d)", i, j, k))
		}
		s.trc.prim[idx] = x
		s.trc.cons[idx] = g.U.Comp[state.ID][idx] * x
	})
	s.tracerGhosts()
	return nil
}

// Tracer returns the tracer concentration X at flat cell index idx, or 0
// when the tracer is disabled.
func (s *Solver) Tracer(idx int) float64 {
	if s.trc == nil {
		return 0
	}
	return s.trc.prim[idx]
}

// TracerTotal returns Σ D_X dV — conserved alongside the rest mass.
func (s *Solver) TracerTotal() float64 {
	if s.trc == nil {
		return 0
	}
	sum := 0.0
	s.G.ForEachInterior(func(idx, _, _, _ int) {
		sum += s.trc.cons[idx]
	})
	return sum * s.G.CellVolume()
}

// tracerGhosts fills the tracer ghost zones. The scalar is wrapped in a
// throwaway Fields (component 0) so the grid's boundary machinery —
// including Custom inflow hooks, which see component 0 as density-like —
// applies unchanged; reflections do not flip a scalar, and component 0
// is never flipped.
func (s *Solver) tracerGhosts() {
	g := s.G
	f := state.NewFields(g.NCells())
	copy(f.Comp[0], s.trc.prim)
	g.ApplyBCs(f)
	copy(s.trc.prim, f.Comp[0])
}

// tracerRecover refreshes X = D_X / D in the interior (clipped to the
// admissible range) and refills ghosts.
func (s *Solver) tracerRecover() {
	g := s.G
	g.ForEachInterior(func(idx, _, _, _ int) {
		d := g.U.Comp[state.ID][idx]
		if d <= 0 {
			s.trc.prim[idx] = 0
			return
		}
		s.trc.prim[idx] = s.trc.cons[idx] / d
	})
	s.tracerGhosts()
}

// tracerSweepRow accumulates the tracer flux difference for one strip,
// reusing the mass fluxes fx[ID] already computed by the sweep.
func (s *Solver) tracerSweepRow(base, stride, cBeg, cEnd int, dx float64, sc *rowScratch) {
	x := s.trc.prim
	fd := sc.fx[state.ID]
	out := s.trc.rhs
	invDx := 1 / dx
	// Face tracer fluxes: donor-cell upwinding on the mass flux.
	// Reuse the (free) fl[0] slot as the face buffer.
	tf := sc.fl[0]
	for f := cBeg; f <= cEnd; f++ {
		up := base + (f-1)*stride
		if fd[f] < 0 {
			up = base + f*stride
		}
		tf[f] = fd[f] * x[up]
	}
	idx := base + cBeg*stride
	for i := cBeg; i < cEnd; i++ {
		out[idx] -= (tf[i+1] - tf[i]) * invDx
		idx += stride
	}
}

// scalar helpers for the RK combinations.
func axpyScalar(dst []float64, a float64, src []float64) {
	for i := range dst {
		dst[i] += a * src[i]
	}
}

// lincomb2AXPYScalar computes dst ← a·u + b·(dst + s·g) in one pass,
// bitwise identical to axpyScalar(dst, s, g) followed by
// dst = a·u + b·dst (the scalar mirror of state.Fields.LinComb2AXPY).
func lincomb2AXPYScalar(dst []float64, a float64, u []float64, b, s float64, g []float64) {
	for i := range dst {
		dst[i] = a*u[i] + b*(dst[i]+s*g[i])
	}
}

func zeroScalar(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}
