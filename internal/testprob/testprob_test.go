package testprob

import (
	"math"
	"testing"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"blast", "blast2d", "blast3d", "implosion2d", "jet2d", "kh2d", "rotor2d", "shock-heating", "smooth-wave", "sod"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("sod")
	if err != nil || p.Name != "sod" {
		t.Errorf("ByName(sod) = %v, %v", p, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown problem accepted")
	}
}

// Every problem's initial condition must be physical over its whole
// domain, and its metadata sane.
func TestAllProblemsPhysicalInit(t *testing.T) {
	for _, p := range All() {
		if p.Gamma <= 1 || p.Gamma > 2 {
			t.Errorf("%s: gamma %v", p.Name, p.Gamma)
		}
		if p.TEnd <= 0 {
			t.Errorf("%s: tEnd %v", p.Name, p.TEnd)
		}
		if p.Dim < 1 || p.Dim > 3 {
			t.Errorf("%s: dim %d", p.Name, p.Dim)
		}
		for i := 0; i <= 50; i++ {
			for j := 0; j <= 50; j++ {
				x := p.X0 + (p.X1-p.X0)*float64(i)/50
				y := p.Y0 + (p.Y1-p.Y0)*float64(j)/50
				w := p.Init(x, y, 0)
				if !w.IsPhysical() {
					t.Fatalf("%s: unphysical init %+v at (%v,%v)", p.Name, w, x, y)
				}
			}
		}
	}
}

func TestGeometryScaling(t *testing.T) {
	g := Sod.Geometry(128, 2)
	if g.Nx != 128 || g.Ny != 1 {
		t.Errorf("1D geometry %+v", g)
	}
	g2 := Blast2D.Geometry(64, 3)
	if g2.Nx != 64 || g2.Ny != 64 { // square domain
		t.Errorf("2D geometry %+v", g2)
	}
	if g2.Ng != 3 {
		t.Errorf("ghost width %d", g2.Ng)
	}
}

func TestBlast3DGeometry(t *testing.T) {
	g := Blast3D.Geometry(16, 2)
	if g.Nx != 16 || g.Ny != 16 || g.Nz != 16 {
		t.Errorf("3D geometry %+v", g)
	}
	if g.Z0 != -1 || g.Z1 != 1 {
		t.Errorf("z bounds %v %v", g.Z0, g.Z1)
	}
	gr := Blast3D.NewGrid(8, 2)
	if gr.Dim() != 3 {
		t.Errorf("grid dim %d", gr.Dim())
	}
}

func TestNewGridAppliesBCs(t *testing.T) {
	g := SmoothWave.NewGrid(32, 2)
	if g.BCs[0][0] != grid.Periodic || g.BCs[0][1] != grid.Periodic {
		t.Errorf("BCs = %v", g.BCs[0])
	}
	g2 := Sod.NewGrid(32, 2)
	if g2.BCs[0][0] != grid.Outflow {
		t.Errorf("sod BCs = %v", g2.BCs[0])
	}
}

func TestSmoothWaveExactSolution(t *testing.T) {
	// The exact solution at t=0 matches Init.
	for _, x := range []float64{0.1, 0.37, 0.92} {
		w := SmoothWave.Init(x, 0, 0)
		if math.Abs(w.Rho-SmoothWaveRho(x, 0)) > 1e-15 {
			t.Errorf("init/exact mismatch at %v", x)
		}
	}
	// Periodicity: rho(x, t) = rho(x + v*T, t + T).
	if math.Abs(SmoothWaveRho(0.3, 0)-SmoothWaveRho(0.3+SmoothWaveV*2, 2)) > 1e-12 {
		t.Error("exact solution not advecting periodically")
	}
	// Negative arguments wrap.
	if r := SmoothWaveRho(0, 1); math.IsNaN(r) || r <= 0 {
		t.Errorf("wrap failure: %v", r)
	}
}

func TestShockHeatingSigma(t *testing.T) {
	// Newtonian limit W→1: sigma = (Γ+1)/(Γ−1) = 7 for Γ=4/3.
	if s := ShockHeatingSigma(1, 4.0/3.0); math.Abs(s-7) > 1e-12 {
		t.Errorf("sigma(W=1) = %v, want 7", s)
	}
	// W=10, Γ=4/3: 7 + 4*9 = 43.
	if s := ShockHeatingSigma(10, 4.0/3.0); math.Abs(s-43) > 1e-12 {
		t.Errorf("sigma(W=10) = %v, want 43", s)
	}
}

func TestKHShearStructure(t *testing.T) {
	p := KelvinHelmholtz2D
	// Velocities at band centres are ±vShear.
	up := p.Init(0, 0.25, 0)
	dn := p.Init(0, -0.25, 0)
	if math.Abs(up.Vx) > 0.01 || math.Abs(dn.Vx) > 0.01 {
		t.Errorf("band centres should be near the tanh zero: %v, %v", up.Vx, dn.Vx)
	}
	// Outer regions stream at +v, the inner band at −v: a genuine shear
	// layer at each of y = ±0.25.
	if v := p.Init(0, 0.4, 0).Vx; v < 0.2 {
		t.Errorf("outer velocity %v, want ~0.25", v)
	}
	if v := p.Init(0, -0.45, 0).Vx; v < 0.2 {
		t.Errorf("outer velocity %v, want ~0.25", v)
	}
	if v := p.Init(0, 0.1, 0).Vx; v > -0.2 {
		t.Errorf("inner band velocity %v, want ~-0.25", v)
	}
	if v := p.Init(0, -0.1, 0).Vx; v > -0.2 {
		t.Errorf("inner band velocity %v, want ~-0.25", v)
	}
	// Perturbation is antisymmetric between bands.
	a := p.Init(0.25, 0.25, 0).Vy
	b := p.Init(0.25, -0.25, 0).Vy
	if math.Abs(a+b) > 1e-12 {
		t.Errorf("perturbation not antisymmetric: %v, %v", a, b)
	}
}

func TestImplosionDiagonal(t *testing.T) {
	p := Implosion2D
	// The initial data is symmetric about the diagonal x=y.
	for _, pt := range [][2]float64{{0.05, 0.1}, {0.2, 0.25}, {0.01, 0.29}} {
		a := p.Init(pt[0], pt[1], 0)
		b := p.Init(pt[1], pt[0], 0)
		if a.Rho != b.Rho || a.P != b.P {
			t.Errorf("diagonal asymmetry at %v: %+v vs %+v", pt, a, b)
		}
	}
}

func TestBlast2DContrast(t *testing.T) {
	in := Blast2D.Init(0, 0, 0)
	out := Blast2D.Init(0.9, 0.9, 0)
	if in.P/out.P < 1e4 {
		t.Errorf("blast pressure contrast too small: %v / %v", in.P, out.P)
	}
}

func TestShockHeatingInflow(t *testing.T) {
	w := ShockHeating.Init(0.5, 0, 0)
	lorentz := 1 / math.Sqrt(1-w.Vx*w.Vx)
	if math.Abs(lorentz-10) > 1e-10 {
		t.Errorf("inflow W = %v, want 10", lorentz)
	}
	if w.Vx >= 0 {
		t.Error("inflow must move toward the left wall")
	}
}

func TestJetNozzleGeometry(t *testing.T) {
	g := Jet2D.NewGrid(64, 2)
	if g.BCs[0][0] != grid.Custom {
		t.Fatalf("inlet BC = %v", g.BCs[0][0])
	}
	if g.CustomFill[0][0] == nil {
		t.Fatal("no inflow hook installed")
	}
	// Fill primitives and check nozzle vs non-nozzle ghosts.
	g.ForEachInterior(func(idx, i, j, k int) {
		g.W.SetPrim(idx, Jet2D.Init(g.X(i), g.Y(j), 0))
	})
	g.ApplyBCs(g.W)
	foundBeam, foundAmb := false, false
	for j := g.JBeg(); j < g.JEnd(); j++ {
		p := g.W.GetPrim(g.Idx(0, j, g.KBeg()))
		if math.Abs(g.Y(j)) <= JetRadius {
			if p.Vx != JetVelocity || p.Rho != JetBeamRho {
				t.Fatalf("nozzle ghost at y=%v wrong: %+v", g.Y(j), p)
			}
			foundBeam = true
		} else {
			if p.Vx != 0 || p.Rho != JetAmbRho {
				t.Fatalf("non-nozzle ghost at y=%v wrong: %+v", g.Y(j), p)
			}
			foundAmb = true
		}
	}
	if !foundBeam || !foundAmb {
		t.Fatalf("nozzle structure missing: beam=%v ambient=%v", foundBeam, foundAmb)
	}
}

func TestRotorInit(t *testing.T) {
	p := Rotor2D
	// Rim speed 0.8, subluminal everywhere inside the disk.
	w := p.Init(0.0999, 0, 0)
	if v := math.Abs(w.Vy); math.Abs(v-0.7992) > 1e-3 {
		t.Errorf("rim speed %v, want ~0.8", v)
	}
	// Rotation is divergence-free solid body: v(x,y) = omega x r_hat_perp.
	a := p.Init(0.05, 0.05, 0)
	if math.Abs(a.Vx+a.Vy) > 1e-12 { // vx = -wy, vy = wx, x=y => vx=-vy
		t.Errorf("solid-body pattern broken: %+v", a)
	}
	// Ambient at rest.
	if out := p.Init(0.3, 0.3, 0); out.Vx != 0 || out.Vy != 0 || out.Rho != 1 {
		t.Errorf("ambient %+v", out)
	}
}

func TestJetBeamLorentz(t *testing.T) {
	w := JetBeam().Lorentz()
	if math.Abs(w-7.089) > 0.01 {
		t.Errorf("beam Lorentz factor = %v, want ~7.09", w)
	}
}

var _ = state.Prim{} // keep import when tests shrink
