// Package testprob catalogues the standard test problems of relativistic
// HRSC codes: the Martí–Müller shock tubes, smooth advection (with an
// exact solution for convergence measurements), the 2-D cylindrical blast
// wave, the relativistic Kelvin–Helmholtz instability, the reflecting-wall
// shock-heating problem, and a reflecting-box implosion.
//
// Every problem carries its canonical domain, boundary conditions,
// adiabatic index and end time, so examples, tests and the benchmark
// harness all run exactly the same setups.
package testprob

import (
	"fmt"
	"math"
	"sort"

	"rhsc/internal/eos"
	"rhsc/internal/grid"
	"rhsc/internal/state"
)

// Problem is a fully specified initial-value problem.
type Problem struct {
	Name  string
	Desc  string
	Gamma float64 // adiabatic index of the canonical setup
	TEnd  float64 // canonical evolution time
	Dim   int     // 1, 2 or 3
	BC    grid.BC // boundary condition on all faces
	// Domain bounds per dimension; unused dimensions are {0, 1}. 3-D
	// problems reuse the y bounds for z.
	X0, X1, Y0, Y1 float64
	// Init returns the primitive state at a position.
	Init func(x, y, z float64) state.Prim
	// SetupGrid, when non-nil, customises the grid after the default
	// boundary conditions are applied (e.g. installs an inflow nozzle).
	SetupGrid func(g *grid.Grid)
}

// Geometry returns a grid geometry for the problem at resolution n (cells
// along x; higher-dimensional problems get proportionally scaled y and z
// resolution) with the given ghost width.
func (p *Problem) Geometry(n, ng int) grid.Geometry {
	geom := grid.Geometry{Nx: n, Ny: 1, Nz: 1, Ng: ng, X0: p.X0, X1: p.X1, Y0: p.Y0, Y1: p.Y1}
	if p.Dim >= 2 {
		aspect := (p.Y1 - p.Y0) / (p.X1 - p.X0)
		geom.Ny = int(math.Round(float64(n) * aspect))
		if geom.Ny < 4 {
			geom.Ny = 4
		}
	}
	if p.Dim >= 3 {
		geom.Nz = geom.Ny
		geom.Z0, geom.Z1 = p.Y0, p.Y1
	}
	return geom
}

// NewGrid builds the grid and applies the problem's boundary conditions.
func (p *Problem) NewGrid(n, ng int) *grid.Grid {
	g := grid.New(p.Geometry(n, ng))
	g.SetAllBCs(p.BC)
	if p.SetupGrid != nil {
		p.SetupGrid(g)
	}
	return g
}

// registry holds all problems by name.
var registry = map[string]*Problem{}

func register(p *Problem) *Problem {
	registry[p.Name] = p
	return p
}

// ByName returns the named problem.
func ByName(name string) (*Problem, error) {
	if p, ok := registry[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("testprob: unknown problem %q (have %v)", name, Names())
}

// Names lists the registered problem names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Sod is Martí–Müller Problem 1: the relativistic Sod shock tube.
// Left (10, 0, 13.33), right (1, 0, 1e-6), Γ = 5/3, t = 0.4.
var Sod = register(&Problem{
	Name:  "sod",
	Desc:  "Martí–Müller Problem 1: relativistic Sod shock tube",
	Gamma: 5.0 / 3.0,
	TEnd:  0.4,
	Dim:   1,
	BC:    grid.Outflow,
	X0:    0, X1: 1, Y0: 0, Y1: 1,
	Init: func(x, _, _ float64) state.Prim {
		if x < 0.5 {
			return state.Prim{Rho: 10, P: 13.33}
		}
		return state.Prim{Rho: 1, P: 1e-6}
	},
})

// Blast is Martí–Müller Problem 2: the relativistic blast wave with
// pressure ratio 1e5 producing a thin, W≈3.6 shell.
var Blast = register(&Problem{
	Name:  "blast",
	Desc:  "Martí–Müller Problem 2: relativistic blast wave (p ratio 1e5)",
	Gamma: 5.0 / 3.0,
	TEnd:  0.35,
	Dim:   1,
	BC:    grid.Outflow,
	X0:    0, X1: 1, Y0: 0, Y1: 1,
	Init: func(x, _, _ float64) state.Prim {
		if x < 0.5 {
			return state.Prim{Rho: 1, P: 1000}
		}
		return state.Prim{Rho: 1, P: 0.01}
	},
})

// SmoothWaveV is the advection speed of the smooth-wave problem.
const SmoothWaveV = 0.5

// SmoothWaveRho returns the exact density of the smooth-wave problem at
// position x and time t (period-1 advection at SmoothWaveV).
func SmoothWaveRho(x, t float64) float64 {
	s := math.Mod(x-SmoothWaveV*t, 1)
	if s < 0 {
		s++
	}
	return 1 + 0.3*math.Sin(2*math.Pi*s)
}

// SmoothWave advects a sinusoidal density profile at constant velocity and
// pressure: an exact contact-mode solution used for convergence orders.
var SmoothWave = register(&Problem{
	Name:  "smooth-wave",
	Desc:  "sinusoidal density advection with exact solution",
	Gamma: 5.0 / 3.0,
	TEnd:  0.4,
	Dim:   1,
	BC:    grid.Periodic,
	X0:    0, X1: 1, Y0: 0, Y1: 1,
	Init: func(x, _, _ float64) state.Prim {
		return state.Prim{Rho: SmoothWaveRho(x, 0), Vx: SmoothWaveV, P: 1}
	},
})

// ShockHeating slams cold ultra-relativistic flow (W = 10) into a
// reflecting wall; the post-shock state has an analytic solution and the
// problem is a stringent test of the c2p solver's high-W path.
var ShockHeating = register(&Problem{
	Name:  "shock-heating",
	Desc:  "cold W=10 inflow against a reflecting wall",
	Gamma: 4.0 / 3.0,
	TEnd:  0.5,
	Dim:   1,
	BC:    grid.Reflect,
	X0:    0, X1: 1, Y0: 0, Y1: 1,
	Init: func(x, _, _ float64) state.Prim {
		v := -math.Sqrt(1 - 1.0/100.0) // W = 10 moving left
		return state.Prim{Rho: 1, Vx: v, P: 1e-6}
	},
})

// ShockHeatingSigma returns the exact post-shock compression ratio of the
// shock-heating problem for inflow Lorentz factor w and adiabatic index
// gamma: σ = ρ̄/ρ = (Γ+1)/(Γ−1) + Γ/(Γ−1)·(W−1).
func ShockHeatingSigma(w, gamma float64) float64 {
	return (gamma+1)/(gamma-1) + gamma/(gamma-1)*(w-1)
}

// Blast2D is the cylindrical relativistic blast wave in a square box.
var Blast2D = register(&Problem{
	Name:  "blast2d",
	Desc:  "cylindrical relativistic blast wave",
	Gamma: 5.0 / 3.0,
	TEnd:  0.4,
	Dim:   2,
	BC:    grid.Outflow,
	X0:    -1, X1: 1, Y0: -1, Y1: 1,
	Init: func(x, y, _ float64) state.Prim {
		if x*x+y*y < 0.01 {
			return state.Prim{Rho: 1e-2, P: 1}
		}
		return state.Prim{Rho: 1e-4, P: 5e-6}
	},
})

// KelvinHelmholtz2D is the relativistic shear-layer instability: two
// counter-streaming bands (v = ±0.25) with a density contrast and a small
// sinusoidal transverse perturbation, doubly periodic.
var KelvinHelmholtz2D = register(&Problem{
	Name:  "kh2d",
	Desc:  "relativistic Kelvin–Helmholtz shear instability",
	Gamma: 4.0 / 3.0,
	TEnd:  3.0,
	Dim:   2,
	BC:    grid.Periodic,
	X0:    -0.5, X1: 0.5, Y0: -0.5, Y1: 0.5,
	Init: func(x, y, _ float64) state.Prim {
		const (
			vShear = 0.25
			a      = 0.01 // shear layer width
			sigma  = 0.1  // perturbation width
			amp    = 0.01 // perturbation amplitude
		)
		var vx, rho float64
		if y > 0 {
			vx = vShear * math.Tanh((y-0.25)/a)
			rho = 0.505 + 0.495*math.Tanh((y-0.25)/a)
		} else {
			vx = -vShear * math.Tanh((y+0.25)/a)
			rho = 0.505 - 0.495*math.Tanh((y+0.25)/a)
		}
		vy := amp * vShear * math.Sin(2*math.Pi*x)
		if y > 0 {
			vy *= math.Exp(-(y - 0.25) * (y - 0.25) / (sigma * sigma))
		} else {
			vy *= -math.Exp(-(y + 0.25) * (y + 0.25) / (sigma * sigma))
		}
		return state.Prim{Rho: rho, Vx: vx, Vy: vy, P: 1}
	},
})

// Blast3D is the spherical relativistic blast wave in a cube — the 3-D
// stress test of the unsplit sweeps and the octant symmetries.
var Blast3D = register(&Problem{
	Name:  "blast3d",
	Desc:  "spherical relativistic blast wave",
	Gamma: 5.0 / 3.0,
	TEnd:  0.25,
	Dim:   3,
	BC:    grid.Outflow,
	X0:    -1, X1: 1, Y0: -1, Y1: 1,
	Init: func(x, y, z float64) state.Prim {
		if x*x+y*y+z*z < 0.15 {
			return state.Prim{Rho: 1, P: 50}
		}
		return state.Prim{Rho: 1, P: 0.05}
	},
})

// Implosion2D is a reflecting-box implosion: a low-pressure triangular
// corner region collapses and reverberates, testing reflecting corners and
// long-time symmetry.
var Implosion2D = register(&Problem{
	Name:  "implosion2d",
	Desc:  "reflecting-box implosion (diagonal symmetry test)",
	Gamma: 1.4,
	TEnd:  0.8,
	Dim:   2,
	BC:    grid.Reflect,
	X0:    0, X1: 0.3, Y0: 0, Y1: 0.3,
	Init: func(x, y, _ float64) state.Prim {
		if x+y < 0.15 {
			return state.Prim{Rho: 0.125, P: 0.14}
		}
		return state.Prim{Rho: 1, P: 1}
	},
})

// Relativistic jet parameters (a pressure-matched light jet after Martí
// et al. 1997): beam Lorentz factor ≈ 7 into a dense ambient medium.
const (
	JetRadius   = 0.1  // nozzle half-width
	JetVelocity = 0.99 // beam speed (W ≈ 7.1)
	JetBeamRho  = 0.1  // beam density (light jet, η = 0.1)
	JetAmbRho   = 1.0  // ambient density
	JetPressure = 0.01 // matched pressure
)

// JetBeam returns the beam primitive state.
func JetBeam() state.Prim {
	return state.Prim{Rho: JetBeamRho, Vx: JetVelocity, P: JetPressure}
}

// jetGamma is the jet problem's adiabatic index (kept as a constant to
// avoid an initialisation cycle with the Jet2D registration).
const jetGamma = 5.0 / 3.0

// jetInflow fills the x-lo ghosts: beam state inside the nozzle, outflow
// copy outside it. It writes primitives into the primitive field and
// conserved values into the conserved field.
func jetInflow(g *grid.Grid, f *state.Fields) {
	eosJet := eos.NewIdealGas(jetGamma)
	beamW := JetBeam()
	beamU := beamW.ToCons(eosJet)
	isPrim := f == g.W
	for k := 0; k < g.TotalZ; k++ {
		for j := 0; j < g.TotalY; j++ {
			inNozzle := math.Abs(g.Y(j)) <= JetRadius
			for i := 0; i < g.Ng; i++ {
				idx := g.Idx(i, j, k)
				switch {
				case inNozzle && isPrim:
					f.SetPrim(idx, beamW)
				case inNozzle:
					f.SetCons(idx, beamU)
				default:
					// Outflow copy from the first interior column.
					src := g.Idx(g.IBeg(), j, k)
					for c := 0; c < state.NComp; c++ {
						f.Comp[c][idx] = f.Comp[c][src]
					}
				}
			}
		}
	}
}

// Jet2D injects a relativistic beam (W ≈ 7) into a dense ambient medium:
// the classic light-jet morphology with a bow shock, cocoon and working
// surface — the astrophysical application class the paper's introduction
// motivates.
var Jet2D = register(&Problem{
	Name:  "jet2d",
	Desc:  "pressure-matched relativistic jet (W≈7, eta=0.1)",
	Gamma: jetGamma,
	TEnd:  1.5,
	Dim:   2,
	BC:    grid.Outflow,
	X0:    0, X1: 2, Y0: -0.5, Y1: 0.5,
	Init: func(x, y, _ float64) state.Prim {
		return state.Prim{Rho: JetAmbRho, P: JetPressure}
	},
	SetupGrid: func(g *grid.Grid) {
		g.BCs[0][0] = grid.Custom
		g.CustomFill[0][0] = jetInflow
	},
})

// Rotor2D spins a dense disk inside a light ambient medium: the launched
// torsional waves and the wound-up disk test multidimensional coupling of
// the momentum components (the hydrodynamic version of the MHD rotor).
var Rotor2D = register(&Problem{
	Name:  "rotor2d",
	Desc:  "relativistic rotor: spinning dense disk in light ambient gas",
	Gamma: 5.0 / 3.0,
	TEnd:  0.4,
	Dim:   2,
	BC:    grid.Outflow,
	X0:    -0.5, X1: 0.5, Y0: -0.5, Y1: 0.5,
	Init: func(x, y, _ float64) state.Prim {
		const (
			rDisk = 0.1
			omega = 8.0 // rim speed 0.8
		)
		r := math.Sqrt(x*x + y*y)
		if r < rDisk {
			return state.Prim{
				Rho: 10,
				Vx:  -omega * y,
				Vy:  omega * x,
				P:   1,
			}
		}
		return state.Prim{Rho: 1, P: 1}
	},
})

// All returns every registered problem sorted by name.
func All() []*Problem {
	out := make([]*Problem, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
