package eos

import (
	"fmt"
	"math"
	"sort"
)

// Table is a tabulated equation of state: pressure sampled on a rectangular
// grid in (log ρ, log ε) with bilinear interpolation in log space. It stands
// in for the microphysical EOS tables (stellarcollapse.org-style) that
// production relativistic-hydro codes read from disk; here the table is
// built synthetically from any base EOS with BuildTable so the tabulated
// code path is exercised end to end without external data.
//
// Outside the tabulated range the table clamps to its edges, mirroring the
// behaviour of production table readers.
type Table struct {
	name   string
	logRho []float64   // ascending, size nr
	logEps []float64   // ascending, size ne
	logP   [][]float64 // [nr][ne] log pressure
	cs2    [][]float64 // [nr][ne] sound speed squared
	rhoMin float64
	rhoMax float64
	epsMin float64
	epsMax float64
}

// BuildTable samples base on a log-uniform (ρ, ε) grid and returns the
// interpolating Table. nr and ne are the number of samples in each
// dimension (≥ 4 each).
func BuildTable(base EOS, rhoMin, rhoMax, epsMin, epsMax float64, nr, ne int) (*Table, error) {
	switch {
	case nr < 4 || ne < 4:
		return nil, fmt.Errorf("eos: table needs at least 4 samples per axis, got %dx%d", nr, ne)
	case rhoMin <= 0 || epsMin <= 0:
		return nil, fmt.Errorf("eos: table bounds must be positive")
	case rhoMax <= rhoMin || epsMax <= epsMin:
		return nil, fmt.Errorf("eos: table bounds must be increasing")
	}
	t := &Table{
		name:   "table(" + base.Name() + ")",
		logRho: make([]float64, nr),
		logEps: make([]float64, ne),
		logP:   make([][]float64, nr),
		cs2:    make([][]float64, nr),
		rhoMin: rhoMin, rhoMax: rhoMax,
		epsMin: epsMin, epsMax: epsMax,
	}
	lr0, lr1 := math.Log(rhoMin), math.Log(rhoMax)
	le0, le1 := math.Log(epsMin), math.Log(epsMax)
	for i := 0; i < nr; i++ {
		t.logRho[i] = lr0 + (lr1-lr0)*float64(i)/float64(nr-1)
	}
	for j := 0; j < ne; j++ {
		t.logEps[j] = le0 + (le1-le0)*float64(j)/float64(ne-1)
	}
	for i := 0; i < nr; i++ {
		t.logP[i] = make([]float64, ne)
		t.cs2[i] = make([]float64, ne)
		rho := math.Exp(t.logRho[i])
		for j := 0; j < ne; j++ {
			eps := math.Exp(t.logEps[j])
			p := base.Pressure(rho, eps)
			if p <= 0 {
				return nil, fmt.Errorf("eos: base EOS returned non-positive pressure at rho=%g eps=%g", rho, eps)
			}
			t.logP[i][j] = math.Log(p)
			t.cs2[i][j] = base.SoundSpeed2(rho, p)
		}
	}
	return t, nil
}

// Name implements EOS.
func (t *Table) Name() string { return t.name }

// locate returns the bracketing index lo and the interpolation fraction for
// x in the ascending grid xs, clamping to the table edges.
func locate(xs []float64, x float64) (int, float64) {
	n := len(xs)
	if x <= xs[0] {
		return 0, 0
	}
	if x >= xs[n-1] {
		return n - 2, 1
	}
	lo := sort.SearchFloat64s(xs, x) - 1
	if lo < 0 {
		lo = 0
	}
	if lo > n-2 {
		lo = n - 2
	}
	f := (x - xs[lo]) / (xs[lo+1] - xs[lo])
	return lo, f
}

// interp2 bilinearly interpolates v at (logRho, logEps).
func (t *Table) interp2(v [][]float64, lrho, leps float64) float64 {
	i, fr := locate(t.logRho, lrho)
	j, fe := locate(t.logEps, leps)
	v00 := v[i][j]
	v10 := v[i+1][j]
	v01 := v[i][j+1]
	v11 := v[i+1][j+1]
	return v00*(1-fr)*(1-fe) + v10*fr*(1-fe) + v01*(1-fr)*fe + v11*fr*fe
}

// Pressure implements EOS via bilinear interpolation of log p.
func (t *Table) Pressure(rho, eps float64) float64 {
	if rho <= 0 || eps <= 0 {
		return math.Exp(t.logP[0][0])
	}
	return math.Exp(t.interp2(t.logP, math.Log(rho), math.Log(eps)))
}

// Eps implements EOS by inverting the tabulated p(ρ, ε) along the ε axis
// with bisection. The table's monotonicity in ε (guaranteed for all base
// closures we build from) makes the bracket [epsMin, epsMax] valid; values
// of p outside the tabulated range clamp to the nearest edge.
func (t *Table) Eps(rho, p float64) float64 {
	lo, hi := t.epsMin, t.epsMax
	plo, phi := t.Pressure(rho, lo), t.Pressure(rho, hi)
	if p <= plo {
		return lo
	}
	if p >= phi {
		return hi
	}
	for k := 0; k < 80; k++ {
		mid := math.Sqrt(lo * hi) // bisect in log space
		if t.Pressure(rho, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo-1 < 1e-14 {
			break
		}
	}
	return math.Sqrt(lo * hi)
}

// Enthalpy implements EOS: h = 1 + ε + p/ρ with ε from table inversion.
func (t *Table) Enthalpy(rho, p float64) float64 {
	eps := t.Eps(rho, p)
	return 1 + eps + p/rho
}

// SoundSpeed2 implements EOS via bilinear interpolation of the tabulated
// c_s², clamped to [0, 1).
func (t *Table) SoundSpeed2(rho, p float64) float64 {
	eps := t.Eps(rho, p)
	if rho <= 0 || eps <= 0 {
		return t.cs2[0][0]
	}
	c := t.interp2(t.cs2, math.Log(rho), math.Log(eps))
	if c < 0 {
		return 0
	}
	if c >= 1 {
		return 1 - 1e-12
	}
	return c
}

// Bounds returns the tabulated (ρ, ε) range.
func (t *Table) Bounds() (rhoMin, rhoMax, epsMin, epsMax float64) {
	return t.rhoMin, t.rhoMax, t.epsMin, t.epsMax
}
