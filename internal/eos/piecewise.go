package eos

import (
	"fmt"
	"math"
	"sort"
)

// PiecewisePolytrope is the piecewise-polytropic cold EOS parameterisation
// (Read, Lackey, Owen & Friedman 2009) with a thermal Γ-law component —
// the standard compact-star EOS family. Each density segment i carries
// its own exponent Γ_i; the constants K_i are fixed by pressure
// continuity at the dividing densities, and the cold specific energy is
// integrated segment by segment so ε_c is continuous too.
type PiecewisePolytrope struct {
	divisions []float64 // segment lower bounds (divisions[0] == 0)
	gammas    []float64 // per-segment exponents
	ks        []float64 // per-segment constants (continuity)
	epsOff    []float64 // per-segment energy integration constants
	gammaTh   float64   // thermal index
}

// NewPiecewisePolytrope builds the EOS from K0 (the constant of the first
// segment), the dividing rest-mass densities (ascending, one fewer than
// exponents), per-segment exponents, and the thermal index.
func NewPiecewisePolytrope(k0 float64, divisions, gammas []float64, gammaTh float64) (*PiecewisePolytrope, error) {
	if k0 <= 0 {
		return nil, fmt.Errorf("eos: piecewise K0 %v must be positive", k0)
	}
	if len(gammas) == 0 || len(divisions) != len(gammas)-1 {
		return nil, fmt.Errorf("eos: %d exponents need %d divisions, got %d",
			len(gammas), len(gammas)-1, len(divisions))
	}
	if !sort.Float64sAreSorted(divisions) {
		return nil, fmt.Errorf("eos: divisions must ascend")
	}
	for _, g := range gammas {
		if g <= 1 {
			return nil, fmt.Errorf("eos: exponent %v must exceed 1", g)
		}
	}
	if gammaTh <= 1 || gammaTh > 2 {
		return nil, fmt.Errorf("eos: thermal index %v outside (1,2]", gammaTh)
	}
	for _, d := range divisions {
		if d <= 0 {
			return nil, fmt.Errorf("eos: division %v must be positive", d)
		}
	}
	pp := &PiecewisePolytrope{
		divisions: append([]float64{0}, divisions...),
		gammas:    gammas,
		ks:        make([]float64, len(gammas)),
		epsOff:    make([]float64, len(gammas)),
		gammaTh:   gammaTh,
	}
	pp.ks[0] = k0
	pp.epsOff[0] = 0
	for i := 1; i < len(gammas); i++ {
		d := pp.divisions[i]
		// Pressure continuity: K_i d^Γi = K_{i-1} d^Γ{i-1}.
		pp.ks[i] = pp.ks[i-1] * math.Pow(d, pp.gammas[i-1]-pp.gammas[i])
		// Energy continuity: ε_c continuous at d.
		epsBelow := pp.epsOff[i-1] + pp.ks[i-1]*math.Pow(d, pp.gammas[i-1]-1)/(pp.gammas[i-1]-1)
		pp.epsOff[i] = epsBelow - pp.ks[i]*math.Pow(d, pp.gammas[i]-1)/(pp.gammas[i]-1)
	}
	return pp, nil
}

// segment returns the segment index of density rho.
func (pp *PiecewisePolytrope) segment(rho float64) int {
	i := sort.SearchFloat64s(pp.divisions, rho) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(pp.gammas) {
		i = len(pp.gammas) - 1
	}
	return i
}

// Name implements EOS.
func (pp *PiecewisePolytrope) Name() string {
	return fmt.Sprintf("pwpoly-%dseg", len(pp.gammas))
}

// ColdPressure returns the cold pressure K_i ρ^Γi of the segment.
func (pp *PiecewisePolytrope) ColdPressure(rho float64) float64 {
	i := pp.segment(rho)
	return pp.ks[i] * math.Pow(rho, pp.gammas[i])
}

// ColdEps returns the continuous cold specific internal energy.
func (pp *PiecewisePolytrope) ColdEps(rho float64) float64 {
	i := pp.segment(rho)
	return pp.epsOff[i] + pp.ks[i]*math.Pow(rho, pp.gammas[i]-1)/(pp.gammas[i]-1)
}

// Pressure implements EOS: cold plus thermal Γ-law part (clipped at the
// cold curve).
func (pp *PiecewisePolytrope) Pressure(rho, eps float64) float64 {
	th := (pp.gammaTh - 1) * rho * (eps - pp.ColdEps(rho))
	if th < 0 {
		th = 0
	}
	return pp.ColdPressure(rho) + th
}

// Eps implements EOS.
func (pp *PiecewisePolytrope) Eps(rho, p float64) float64 {
	th := p - pp.ColdPressure(rho)
	if th < 0 {
		th = 0
	}
	return pp.ColdEps(rho) + th/((pp.gammaTh-1)*rho)
}

// Enthalpy implements EOS.
func (pp *PiecewisePolytrope) Enthalpy(rho, p float64) float64 {
	return 1 + pp.Eps(rho, p) + p/rho
}

// CausalUpTo verifies the cold curve stays subluminal for all densities
// up to rhoMax. An acausal cold curve makes the primitive→conserved map
// non-injective, so conservative-to-primitive inversion cannot work
// there; call this when constructing an EOS for a simulation whose
// density range is known.
func (pp *PiecewisePolytrope) CausalUpTo(rhoMax float64) error {
	// The cold sound speed is monotone within a segment, so checking the
	// segment tops (and rhoMax) suffices.
	check := func(rho float64) error {
		p := pp.ColdPressure(rho)
		if cs2 := pp.coldCs2(rho, p); cs2 >= 1 {
			return fmt.Errorf("eos: %s acausal at rho=%g (cold cs^2=%g)", pp.Name(), rho, cs2)
		}
		return nil
	}
	for _, d := range pp.divisions[1:] {
		if d > rhoMax {
			break
		}
		if err := check(d); err != nil {
			return err
		}
	}
	return check(rhoMax)
}

// coldCs2 is the unclamped cold sound speed squared Γ_i p_c / (ρ h_c).
func (pp *PiecewisePolytrope) coldCs2(rho, pc float64) float64 {
	i := pp.segment(rho)
	h := 1 + pp.ColdEps(rho) + pc/rho
	return pp.gammas[i] * pc / (rho * h)
}

// SoundSpeed2 implements EOS with the hybrid expression per segment,
// clamped causal.
func (pp *PiecewisePolytrope) SoundSpeed2(rho, p float64) float64 {
	i := pp.segment(rho)
	pc := pp.ColdPressure(rho)
	pth := p - pc
	if pth < 0 {
		pth = 0
		pc = p
	}
	c := (pp.gammas[i]*pc + pp.gammaTh*pth) / (rho * pp.Enthalpy(rho, p))
	if c < 0 {
		return 0
	}
	if c >= 1 {
		return 1 - 1e-12
	}
	return c
}
