// Package eos implements the equations of state used by the relativistic
// hydrodynamics solver.
//
// All quantities are in geometric units (c = 1). The thermodynamic state is
// parameterised by the rest-mass density ρ and either the specific internal
// energy ε or the pressure p. The specific enthalpy is h = 1 + ε + p/ρ and
// the relativistic sound speed satisfies c_s² = (∂p/∂e)_s evaluated for the
// particular closure.
//
// Four closures are provided:
//
//   - IdealGas: the Γ-law gas p = (Γ−1)ρε, the workhorse of HRSC test
//     problems (Sod tubes, blast waves).
//   - Polytrope: the barotropic p = Kρ^Γ used for isentropic initial data.
//   - TaubMathews: the analytic approximation to the Synge relativistic
//     perfect gas with a variable effective adiabatic index between 5/3
//     (cold) and 4/3 (ultra-relativistic).
//   - Table: a tabulated EOS with bilinear log-space interpolation,
//     standing in for the microphysical tables production codes read from
//     stellarcollapse.org-style data (built synthetically here).
package eos

import (
	"fmt"
	"math"
)

// EOS is the closure relation between (ρ, ε) and p needed by the solver.
// Implementations must be safe for concurrent use: the solver calls them
// from many goroutines.
type EOS interface {
	// Name identifies the closure in logs and output headers.
	Name() string
	// Pressure returns p(ρ, ε).
	Pressure(rho, eps float64) float64
	// Eps returns ε(ρ, p), the inverse of Pressure at fixed ρ.
	Eps(rho, p float64) float64
	// Enthalpy returns the specific enthalpy h = 1 + ε + p/ρ for the state
	// (ρ, p).
	Enthalpy(rho, p float64) float64
	// SoundSpeed2 returns the squared relativistic sound speed c_s²(ρ, p).
	// Implementations must guarantee 0 ≤ c_s² < 1 for admissible states.
	SoundSpeed2(rho, p float64) float64
}

// IdealGas is the Γ-law equation of state p = (Γ−1) ρ ε.
type IdealGas struct {
	// GammaAd is the adiabatic index Γ. Physically meaningful values lie in
	// (1, 2]; relativistic kinetic theory bounds causal ideal gases at 2.
	GammaAd float64
}

// NewIdealGas returns a Γ-law EOS, panicking on a non-physical index.
func NewIdealGas(gamma float64) IdealGas {
	if gamma <= 1 || gamma > 2 {
		panic(fmt.Sprintf("eos: ideal gas adiabatic index %v outside (1,2]", gamma))
	}
	return IdealGas{GammaAd: gamma}
}

// Name implements EOS.
func (g IdealGas) Name() string { return fmt.Sprintf("ideal-gamma-%.3g", g.GammaAd) }

// Gamma returns the adiabatic index.
func (g IdealGas) Gamma() float64 { return g.GammaAd }

// Pressure implements EOS: p = (Γ−1) ρ ε.
func (g IdealGas) Pressure(rho, eps float64) float64 {
	return (g.GammaAd - 1) * rho * eps
}

// Eps implements EOS: ε = p / ((Γ−1) ρ).
func (g IdealGas) Eps(rho, p float64) float64 {
	return p / ((g.GammaAd - 1) * rho)
}

// Enthalpy implements EOS: h = 1 + Γ/(Γ−1) · p/ρ.
func (g IdealGas) Enthalpy(rho, p float64) float64 {
	return 1 + g.GammaAd/(g.GammaAd-1)*p/rho
}

// SoundSpeed2 implements EOS: c_s² = Γ p / (ρ h).
func (g IdealGas) SoundSpeed2(rho, p float64) float64 {
	h := g.Enthalpy(rho, p)
	return g.GammaAd * p / (rho * h)
}

// Polytrope is the barotropic equation of state p = K ρ^Γ. The internal
// energy follows the isentropic relation ε = K ρ^{Γ−1}/(Γ−1), so a
// Polytrope is thermodynamically the isentrope of the corresponding ideal
// gas. Pressure ignores ε by construction.
type Polytrope struct {
	K       float64 // polytropic constant
	GammaAd float64 // polytropic exponent
}

// NewPolytrope returns a polytropic EOS, panicking on non-physical inputs.
func NewPolytrope(k, gamma float64) Polytrope {
	if k <= 0 {
		panic("eos: polytropic constant must be positive")
	}
	if gamma <= 1 {
		panic("eos: polytropic exponent must exceed 1")
	}
	return Polytrope{K: k, GammaAd: gamma}
}

// Name implements EOS.
func (pt Polytrope) Name() string {
	return fmt.Sprintf("polytrope-K%.3g-gamma%.3g", pt.K, pt.GammaAd)
}

// Pressure implements EOS. The ε argument is ignored: the closure is
// barotropic.
func (pt Polytrope) Pressure(rho, _ float64) float64 {
	return pt.K * math.Pow(rho, pt.GammaAd)
}

// Eps implements EOS using the isentropic internal energy ε = p/((Γ−1)ρ).
func (pt Polytrope) Eps(rho, p float64) float64 {
	return p / ((pt.GammaAd - 1) * rho)
}

// Enthalpy implements EOS: h = 1 + Γ/(Γ−1) · p/ρ along the isentrope.
func (pt Polytrope) Enthalpy(rho, p float64) float64 {
	return 1 + pt.GammaAd/(pt.GammaAd-1)*p/rho
}

// SoundSpeed2 implements EOS: c_s² = Γ p / (ρ h).
func (pt Polytrope) SoundSpeed2(rho, p float64) float64 {
	return pt.GammaAd * p / (rho * pt.Enthalpy(rho, p))
}

// TaubMathews is the analytic approximation to the Synge relativistic
// perfect gas (Mathews 1971; Mignone, Plewa & Bodo 2005). With θ = p/ρ the
// enthalpy is
//
//	h = (5/2) θ + sqrt((9/4) θ² + 1)
//
// which interpolates the effective adiabatic index smoothly from 5/3 in the
// cold limit to 4/3 in the ultra-relativistic limit while satisfying the
// Taub inequality everywhere.
type TaubMathews struct{}

// Name implements EOS.
func (TaubMathews) Name() string { return "taub-mathews" }

// Pressure implements EOS using the closed-form inversion
// θ = ε(ε+2) / (3(ε+1)), hence p = ρθ.
func (TaubMathews) Pressure(rho, eps float64) float64 {
	if eps <= 0 {
		return 0
	}
	theta := eps * (eps + 2) / (3 * (eps + 1))
	return rho * theta
}

// Eps implements EOS: ε = h − 1 − θ with h(θ) the TM enthalpy.
func (tm TaubMathews) Eps(rho, p float64) float64 {
	theta := p / rho
	return 1.5*theta + math.Sqrt(2.25*theta*theta+1) - 1
}

// Enthalpy implements EOS: h = (5/2)θ + sqrt((9/4)θ² + 1).
func (TaubMathews) Enthalpy(rho, p float64) float64 {
	theta := p / rho
	return 2.5*theta + math.Sqrt(2.25*theta*theta+1)
}

// SoundSpeed2 implements EOS:
//
//	c_s² = θ (5h − 8θ) / (3 h (h − θ))
//
// which limits to (5/3)θ as θ→0 and to 1/3 as θ→∞.
func (tm TaubMathews) SoundSpeed2(rho, p float64) float64 {
	theta := p / rho
	h := tm.Enthalpy(rho, p)
	return theta * (5*h - 8*theta) / (3 * h * (h - theta))
}

// Hybrid is the "cold polytrope + thermal Γ-law" equation of state used
// by compact-object hydrodynamics codes: the pressure is the sum of a
// barotropic cold part p_c = K ρ^Γc and a thermal part
// p_th = (Γth − 1) ρ (ε − ε_c(ρ)) with ε_c the cold specific energy.
// Shocks heat the gas into the thermal component while the cold part
// models the degenerate background.
type Hybrid struct {
	K       float64 // cold polytropic constant
	GammaC  float64 // cold polytropic exponent
	GammaTh float64 // thermal adiabatic index
}

// NewHybrid returns a hybrid EOS, panicking on non-physical parameters.
func NewHybrid(k, gammaC, gammaTh float64) Hybrid {
	if k <= 0 {
		panic("eos: hybrid cold constant must be positive")
	}
	if gammaC <= 1 || gammaTh <= 1 || gammaTh > 2 {
		panic("eos: hybrid exponents out of range")
	}
	return Hybrid{K: k, GammaC: gammaC, GammaTh: gammaTh}
}

// Name implements EOS.
func (h Hybrid) Name() string {
	return fmt.Sprintf("hybrid-K%.3g-gc%.3g-gth%.3g", h.K, h.GammaC, h.GammaTh)
}

// coldP returns the cold pressure K ρ^Γc.
func (h Hybrid) coldP(rho float64) float64 { return h.K * math.Pow(rho, h.GammaC) }

// coldEps returns the cold specific internal energy along the polytrope:
// ε_c = K ρ^{Γc−1}/(Γc − 1).
func (h Hybrid) coldEps(rho float64) float64 {
	return h.K * math.Pow(rho, h.GammaC-1) / (h.GammaC - 1)
}

// Pressure implements EOS: p = p_c + (Γth − 1) ρ (ε − ε_c), with the
// thermal part floored at zero (ε below the cold curve is clipped).
func (h Hybrid) Pressure(rho, eps float64) float64 {
	th := (h.GammaTh - 1) * rho * (eps - h.coldEps(rho))
	if th < 0 {
		th = 0
	}
	return h.coldP(rho) + th
}

// Eps implements EOS: ε = ε_c + (p − p_c)/((Γth − 1) ρ).
func (h Hybrid) Eps(rho, p float64) float64 {
	th := p - h.coldP(rho)
	if th < 0 {
		th = 0
	}
	return h.coldEps(rho) + th/((h.GammaTh-1)*rho)
}

// Enthalpy implements EOS: h = 1 + ε + p/ρ.
func (h Hybrid) Enthalpy(rho, p float64) float64 {
	return 1 + h.Eps(rho, p) + p/rho
}

// SoundSpeed2 implements EOS: the standard hybrid expression
//
//	c_s² = [Γc p_c + Γth p_th] / (ρ h)
//
// clamped into [0, 1).
func (h Hybrid) SoundSpeed2(rho, p float64) float64 {
	pc := h.coldP(rho)
	pth := p - pc
	if pth < 0 {
		pth = 0
		pc = p
	}
	c := (h.GammaC*pc + h.GammaTh*pth) / (rho * h.Enthalpy(rho, p))
	if c < 0 {
		return 0
	}
	if c >= 1 {
		return 1 - 1e-12
	}
	return c
}

// EffectiveGamma returns the local effective adiabatic index
// Γ_eff = (h − 1) / (h − 1 − θ) · θ/ε ... reported as the standard
// diagnostic Γ_eff = 1 + p/(ρ ε h_th) where h_th = ε + θ is the thermal
// enthalpy. It interpolates between 5/3 and 4/3.
func (tm TaubMathews) EffectiveGamma(rho, p float64) float64 {
	eps := tm.Eps(rho, p)
	if eps <= 0 {
		return 5.0 / 3.0
	}
	return 1 + (p/rho)/eps
}
