package eos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdealGasRoundTrip(t *testing.T) {
	g := NewIdealGas(5.0 / 3.0)
	rho, eps := 1.3, 0.42
	p := g.Pressure(rho, eps)
	if got := g.Eps(rho, p); math.Abs(got-eps) > 1e-14 {
		t.Errorf("Eps(Pressure) = %v, want %v", got, eps)
	}
}

func TestIdealGasKnownValues(t *testing.T) {
	g := NewIdealGas(1.4)
	// p = 0.4 * 1 * 2.5 = 1.
	if p := g.Pressure(1, 2.5); math.Abs(p-1) > 1e-14 {
		t.Errorf("Pressure = %v, want 1", p)
	}
	// h = 1 + 1.4/0.4 * 1 = 4.5.
	if h := g.Enthalpy(1, 1); math.Abs(h-4.5) > 1e-14 {
		t.Errorf("Enthalpy = %v, want 4.5", h)
	}
	// cs2 = 1.4*1/(1*4.5).
	if c := g.SoundSpeed2(1, 1); math.Abs(c-1.4/4.5) > 1e-14 {
		t.Errorf("SoundSpeed2 = %v", c)
	}
}

func TestIdealGasPanicsOnBadGamma(t *testing.T) {
	for _, gamma := range []float64{1.0, 0.5, 2.5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("gamma=%v should panic", gamma)
				}
			}()
			NewIdealGas(gamma)
		}()
	}
}

// Causality: the sound speed of every closure must satisfy 0 <= cs2 < 1 for
// random admissible states.
func TestSoundSpeedCausality(t *testing.T) {
	closures := []EOS{
		NewIdealGas(4.0 / 3.0),
		NewIdealGas(5.0 / 3.0),
		NewIdealGas(2.0),
		TaubMathews{},
		NewPolytrope(1, 4.0/3.0),
	}
	rng := rand.New(rand.NewSource(7))
	for _, c := range closures {
		for i := 0; i < 2000; i++ {
			rho := math.Exp(rng.Float64()*20 - 10) // 4.5e-5 .. 2.2e4
			p := math.Exp(rng.Float64()*20 - 10)
			cs2 := c.SoundSpeed2(rho, p)
			if cs2 < 0 || cs2 >= 1 || math.IsNaN(cs2) {
				t.Fatalf("%s: cs2 = %v at rho=%v p=%v", c.Name(), cs2, rho, p)
			}
		}
	}
}

// Thermodynamic consistency: h = 1 + eps + p/rho must hold for Pressure/Eps
// round trips of every closure.
func TestEnthalpyConsistency(t *testing.T) {
	closures := []EOS{NewIdealGas(5.0 / 3.0), TaubMathews{}, NewPolytrope(0.8, 5.0/3.0)}
	rng := rand.New(rand.NewSource(11))
	for _, c := range closures {
		for i := 0; i < 500; i++ {
			rho := math.Exp(rng.Float64()*8 - 4)
			p := math.Exp(rng.Float64()*8 - 4)
			eps := c.Eps(rho, p)
			want := 1 + eps + p/rho
			if h := c.Enthalpy(rho, p); math.Abs(h-want)/want > 1e-10 {
				t.Fatalf("%s: h = %v, want %v (rho=%v p=%v)", c.Name(), h, want, rho, p)
			}
		}
	}
}

func TestTaubMathewsRoundTrip(t *testing.T) {
	tm := TaubMathews{}
	prop := func(lr, lp float64) bool {
		rho := math.Exp(math.Mod(lr, 8))
		p := math.Exp(math.Mod(lp, 8))
		eps := tm.Eps(rho, p)
		if eps <= 0 {
			return false
		}
		p2 := tm.Pressure(rho, eps)
		return math.Abs(p2-p)/p < 1e-10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTaubMathewsLimits(t *testing.T) {
	tm := TaubMathews{}
	// Cold limit: Gamma_eff -> 5/3, cs2 -> (5/3) p/rho.
	rho, p := 1.0, 1e-8
	if g := tm.EffectiveGamma(rho, p); math.Abs(g-5.0/3.0) > 1e-3 {
		t.Errorf("cold EffectiveGamma = %v, want 5/3", g)
	}
	if c := tm.SoundSpeed2(rho, p); math.Abs(c-(5.0/3.0)*p/rho)/((5.0/3.0)*p/rho) > 1e-3 {
		t.Errorf("cold cs2 = %v, want %v", c, (5.0/3.0)*p/rho)
	}
	// Hot limit: Gamma_eff -> 4/3, cs2 -> 1/3.
	p = 1e8
	if g := tm.EffectiveGamma(rho, p); math.Abs(g-4.0/3.0) > 1e-3 {
		t.Errorf("hot EffectiveGamma = %v, want 4/3", g)
	}
	if c := tm.SoundSpeed2(rho, p); math.Abs(c-1.0/3.0) > 1e-3 {
		t.Errorf("hot cs2 = %v, want 1/3", c)
	}
}

// The Taub inequality (h - theta)(h) >= 1 + eps... the fundamental kinetic
// constraint is (h - theta)^2 >= 1 + theta^2 ... Taub: h(h - theta) >= 1? The
// standard statement for a relativistic gas: (h − θ)(h − 4θ) ≤ 1 with
// equality for Synge; TM satisfies (h − (5/2)θ)² = (9/4)θ² + 1, i.e.
// h² − 5hθ + 4θ² = 1 exactly. Verify that identity.
func TestTaubMathewsIdentity(t *testing.T) {
	tm := TaubMathews{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		rho := math.Exp(rng.Float64()*10 - 5)
		p := math.Exp(rng.Float64()*10 - 5)
		theta := p / rho
		h := tm.Enthalpy(rho, p)
		lhs := (h - theta) * (h - 4*theta)
		if math.Abs(lhs-1) > 1e-9*(1+h*h) {
			t.Fatalf("TM identity violated: (h-θ)(h-4θ) = %v at θ=%v", lhs, theta)
		}
	}
}

func TestPolytropePressureIgnoresEps(t *testing.T) {
	pt := NewPolytrope(2, 1.5)
	if p1, p2 := pt.Pressure(1.7, 0.1), pt.Pressure(1.7, 99); p1 != p2 {
		t.Errorf("barotropic pressure depends on eps: %v vs %v", p1, p2)
	}
	if p := pt.Pressure(4, 0); math.Abs(p-2*8) > 1e-12 {
		t.Errorf("Pressure(4) = %v, want 16", p)
	}
}

func TestPolytropePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPolytrope(0, 2) },
		func() { NewPolytrope(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBuildTableValidation(t *testing.T) {
	g := NewIdealGas(5.0 / 3.0)
	if _, err := BuildTable(g, 1e-3, 1e3, 1e-3, 1e3, 3, 10); err == nil {
		t.Error("too few samples accepted")
	}
	if _, err := BuildTable(g, -1, 1e3, 1e-3, 1e3, 10, 10); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := BuildTable(g, 1e3, 1e-3, 1e-3, 1e3, 10, 10); err == nil {
		t.Error("decreasing bounds accepted")
	}
}

// The table built from an ideal gas must reproduce the ideal gas to
// interpolation accuracy, both on and off grid points.
func TestTableMatchesBase(t *testing.T) {
	g := NewIdealGas(5.0 / 3.0)
	tab, err := BuildTable(g, 1e-4, 1e4, 1e-4, 1e4, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		rho := math.Exp(rng.Float64()*12 - 6)
		eps := math.Exp(rng.Float64()*12 - 6)
		pw := g.Pressure(rho, eps)
		pg := tab.Pressure(rho, eps)
		if math.Abs(pg-pw)/pw > 5e-3 {
			t.Fatalf("table pressure %v vs base %v at rho=%v eps=%v", pg, pw, rho, eps)
		}
		cw := g.SoundSpeed2(rho, pw)
		cg := tab.SoundSpeed2(rho, pg)
		if math.Abs(cg-cw) > 5e-3 {
			t.Fatalf("table cs2 %v vs base %v", cg, cw)
		}
	}
}

func TestTableEpsInversion(t *testing.T) {
	g := NewIdealGas(4.0 / 3.0)
	tab, err := BuildTable(g, 1e-3, 1e3, 1e-3, 1e3, 96, 96)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		rho := math.Exp(rng.Float64()*8 - 4)
		eps := math.Exp(rng.Float64()*8 - 4)
		p := tab.Pressure(rho, eps)
		got := tab.Eps(rho, p)
		if math.Abs(got-eps)/eps > 1e-2 {
			t.Fatalf("Eps inversion: got %v want %v (rho=%v)", got, eps, rho)
		}
	}
}

func TestTableClampsOutOfRange(t *testing.T) {
	g := NewIdealGas(5.0 / 3.0)
	tab, err := BuildTable(g, 1e-2, 1e2, 1e-2, 1e2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Far outside the table: must return finite, positive, causal values.
	p := tab.Pressure(1e-10, 1e-10)
	if !(p > 0) || math.IsInf(p, 0) {
		t.Errorf("out-of-range pressure = %v", p)
	}
	c := tab.SoundSpeed2(1e10, 1e10)
	if c < 0 || c >= 1 {
		t.Errorf("out-of-range cs2 = %v", c)
	}
	rmin, rmax, emin, emax := tab.Bounds()
	if rmin != 1e-2 || rmax != 1e2 || emin != 1e-2 || emax != 1e2 {
		t.Errorf("Bounds = %v %v %v %v", rmin, rmax, emin, emax)
	}
}

func TestHybridColdLimit(t *testing.T) {
	h := NewHybrid(1, 2, 5.0/3.0)
	// Exactly on the cold curve, pressure reduces to the polytrope.
	rho := 0.7
	eps := h.coldEps(rho)
	if p := h.Pressure(rho, eps); math.Abs(p-h.coldP(rho)) > 1e-14 {
		t.Errorf("cold pressure %v, want %v", p, h.coldP(rho))
	}
	// Below the cold curve the thermal part is clipped, never negative.
	if p := h.Pressure(rho, eps/2); p < h.coldP(rho)-1e-14 {
		t.Errorf("pressure %v below cold curve", p)
	}
}

func TestHybridRoundTrip(t *testing.T) {
	h := NewHybrid(0.5, 2, 5.0/3.0)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		rho := math.Exp(rng.Float64()*6 - 3)
		// Hot states: eps above the cold curve.
		eps := h.coldEps(rho) * (1 + rng.Float64()*5)
		p := h.Pressure(rho, eps)
		if got := h.Eps(rho, p); math.Abs(got-eps)/eps > 1e-12 {
			t.Fatalf("round trip: eps %v -> %v (rho=%v)", eps, got, rho)
		}
	}
}

func TestHybridCausality(t *testing.T) {
	h := NewHybrid(1, 2, 5.0/3.0)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		rho := math.Exp(rng.Float64()*16 - 8)
		p := math.Exp(rng.Float64()*16 - 8)
		cs2 := h.SoundSpeed2(rho, p)
		if cs2 < 0 || cs2 >= 1 || math.IsNaN(cs2) {
			t.Fatalf("cs2 = %v at rho=%v p=%v", cs2, rho, p)
		}
		want := 1 + h.Eps(rho, p) + p/rho
		if got := h.Enthalpy(rho, p); math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("enthalpy inconsistent: %v vs %v", got, want)
		}
	}
}

func TestHybridThermalDominatedMatchesIdeal(t *testing.T) {
	// With a tiny cold constant the hybrid reduces to the thermal Γ-law.
	h := NewHybrid(1e-12, 2, 5.0/3.0)
	g := NewIdealGas(5.0 / 3.0)
	rho, eps := 1.0, 2.0
	ph, pg := h.Pressure(rho, eps), g.Pressure(rho, eps)
	if math.Abs(ph-pg)/pg > 1e-9 {
		t.Errorf("thermal-dominated hybrid %v vs ideal %v", ph, pg)
	}
}

func TestHybridPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHybrid(0, 2, 1.5) },
		func() { NewHybrid(1, 1, 1.5) },
		func() { NewHybrid(1, 2, 2.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEOSNames(t *testing.T) {
	if NewIdealGas(5.0/3.0).Name() == "" || (TaubMathews{}).Name() == "" {
		t.Error("empty EOS name")
	}
	tab, _ := BuildTable(NewIdealGas(2.0), 1e-2, 1, 1e-2, 1, 8, 8)
	if tab.Name() == "" {
		t.Error("empty table name")
	}
}
