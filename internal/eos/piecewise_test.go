package eos

import (
	"math"
	"math/rand"
	"testing"
)

func mkPW(t *testing.T) *PiecewisePolytrope {
	t.Helper()
	pp, err := NewPiecewisePolytrope(1.0,
		[]float64{0.5, 2.0}, []float64{1.5, 2.0, 2.5}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestPiecewiseValidation(t *testing.T) {
	cases := []struct {
		k0      float64
		divs    []float64
		gammas  []float64
		gammaTh float64
	}{
		{0, []float64{1}, []float64{1.5, 2}, 1.5},         // bad K0
		{1, []float64{1}, []float64{1.5}, 1.5},            // count mismatch
		{1, []float64{2, 1}, []float64{1.5, 2, 2.5}, 1.5}, // unsorted
		{1, []float64{1}, []float64{0.5, 2}, 1.5},         // gamma <= 1
		{1, []float64{1}, []float64{1.5, 2}, 1.0},         // bad thermal
		{1, []float64{-1}, []float64{1.5, 2}, 1.5},        // bad division
	}
	for i, c := range cases {
		if _, err := NewPiecewisePolytrope(c.k0, c.divs, c.gammas, c.gammaTh); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Pressure and cold energy must be continuous across every segment
// boundary — the defining construction property.
func TestPiecewiseContinuity(t *testing.T) {
	pp := mkPW(t)
	for _, d := range []float64{0.5, 2.0} {
		lo, hi := d*(1-1e-9), d*(1+1e-9)
		pLo, pHi := pp.ColdPressure(lo), pp.ColdPressure(hi)
		if math.Abs(pLo-pHi)/pHi > 1e-6 {
			t.Errorf("pressure jump at %v: %v vs %v", d, pLo, pHi)
		}
		eLo, eHi := pp.ColdEps(lo), pp.ColdEps(hi)
		if math.Abs(eLo-eHi)/(1+eHi) > 1e-6 {
			t.Errorf("cold energy jump at %v: %v vs %v", d, eLo, eHi)
		}
	}
}

// Within the first segment the EOS must match a plain polytrope with the
// same constants.
func TestPiecewiseFirstSegmentMatchesPolytrope(t *testing.T) {
	pp := mkPW(t)
	base := NewPolytrope(1.0, 1.5)
	for _, rho := range []float64{0.01, 0.1, 0.4} {
		if a, b := pp.ColdPressure(rho), base.Pressure(rho, 0); math.Abs(a-b)/b > 1e-12 {
			t.Errorf("rho=%v: %v vs %v", rho, a, b)
		}
	}
}

// Monotonicity: cold pressure strictly increases with density across the
// whole range (a non-monotone cold curve breaks the c2p bracket).
func TestPiecewiseMonotone(t *testing.T) {
	pp := mkPW(t)
	prev := 0.0
	for lr := -4.0; lr < 2.0; lr += 0.01 {
		p := pp.ColdPressure(math.Exp(lr))
		if p <= prev {
			t.Fatalf("cold pressure not increasing at rho=%v", math.Exp(lr))
		}
		prev = p
	}
}

func TestPiecewiseRoundTripAndCausality(t *testing.T) {
	pp := mkPW(t)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 3000; i++ {
		rho := math.Exp(rng.Float64()*8 - 5)
		eps := pp.ColdEps(rho) * (1 + 3*rng.Float64())
		if eps == 0 {
			eps = rng.Float64()
		}
		p := pp.Pressure(rho, eps)
		if got := pp.Eps(rho, p); math.Abs(got-eps)/(1+eps) > 1e-10 {
			t.Fatalf("round trip at rho=%v: %v -> %v", rho, eps, got)
		}
		cs2 := pp.SoundSpeed2(rho, p)
		if cs2 < 0 || cs2 >= 1 || math.IsNaN(cs2) {
			t.Fatalf("cs2 = %v at rho=%v p=%v", cs2, rho, p)
		}
		want := 1 + pp.Eps(rho, p) + p/rho
		if h := pp.Enthalpy(rho, p); math.Abs(h-want)/want > 1e-12 {
			t.Fatalf("enthalpy inconsistent at rho=%v", rho)
		}
	}
}

func TestPiecewiseName(t *testing.T) {
	if mkPW(t).Name() != "pwpoly-3seg" {
		t.Error("name wrong")
	}
}

// CausalUpTo must pass for gentle parameters and fail for the steep
// (K=1, Γ=2.5) curve that is wildly superluminal at high density.
func TestPiecewiseCausalityCheck(t *testing.T) {
	gentle, err := NewPiecewisePolytrope(0.1,
		[]float64{0.5, 2.0}, []float64{1.5, 1.8, 2.0}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := gentle.CausalUpTo(8); err != nil {
		t.Errorf("gentle EOS flagged acausal: %v", err)
	}
	steep := mkPW(t) // K=1, top segment Γ=2.5
	if err := steep.CausalUpTo(20); err == nil {
		t.Error("steep EOS not flagged acausal at rho=20")
	}
	// The steep EOS is still fine at low density.
	if err := steep.CausalUpTo(0.3); err != nil {
		t.Errorf("steep EOS flagged acausal at rho=0.3: %v", err)
	}
}
