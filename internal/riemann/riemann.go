// Package riemann implements the approximate Riemann solvers that supply
// the numerical flux at cell faces: local Lax–Friedrichs (LLF/Rusanov),
// HLL (Harten–Lax–van Leer), and HLLC for SRHD following Mignone & Bodo
// (2005, MNRAS 364, 126), which restores the contact wave HLL averages
// away.
//
// Every solver consumes the reconstructed primitive states on the two
// sides of a face and returns the flux of the conserved variables through
// it. All solvers reduce to the exact flux when the two states agree
// (consistency), and upwind fully for supersonic flow.
package riemann

import (
	"fmt"
	"math"

	"rhsc/internal/eos"
	"rhsc/internal/state"
)

// Solver computes the numerical flux through a face from the reconstructed
// primitive states on its two sides. Implementations must be stateless or
// otherwise safe for concurrent use.
type Solver interface {
	// Name identifies the solver in output and benchmarks.
	Name() string
	// Flux returns the numerical flux along direction d given left and
	// right primitive states.
	Flux(e eos.EOS, pl, pr state.Prim, d state.Direction) state.Cons
}

// consSub returns a − b componentwise.
func consSub(a, b state.Cons) state.Cons {
	return state.Cons{
		D: a.D - b.D, Sx: a.Sx - b.Sx, Sy: a.Sy - b.Sy, Sz: a.Sz - b.Sz,
		Tau: a.Tau - b.Tau,
	}
}

// consAXPY returns a + s·b componentwise.
func consAXPY(a state.Cons, s float64, b state.Cons) state.Cons {
	return state.Cons{
		D: a.D + s*b.D, Sx: a.Sx + s*b.Sx, Sy: a.Sy + s*b.Sy,
		Sz: a.Sz + s*b.Sz, Tau: a.Tau + s*b.Tau,
	}
}

// LLF is the local Lax–Friedrichs (Rusanov) solver: maximally dissipative
// single-wave flux F = ½(F_L + F_R − α(U_R − U_L)) with α the largest
// absolute signal speed of the two states.
type LLF struct{}

// Name implements Solver.
func (LLF) Name() string { return "llf" }

// Flux implements Solver.
func (LLF) Flux(e eos.EOS, pl, pr state.Prim, d state.Direction) state.Cons {
	ul := pl.ToCons(e)
	ur := pr.ToCons(e)
	fl := state.Flux(pl, ul, d)
	fr := state.Flux(pr, ur, d)
	al := state.MaxAbsSpeed(e, pl, d)
	ar := state.MaxAbsSpeed(e, pr, d)
	alpha := math.Max(al, ar)
	du := consSub(ur, ul)
	return state.Cons{
		D:   0.5 * (fl.D + fr.D - alpha*du.D),
		Sx:  0.5 * (fl.Sx + fr.Sx - alpha*du.Sx),
		Sy:  0.5 * (fl.Sy + fr.Sy - alpha*du.Sy),
		Sz:  0.5 * (fl.Sz + fr.Sz - alpha*du.Sz),
		Tau: 0.5 * (fl.Tau + fr.Tau - alpha*du.Tau),
	}
}

// outerSpeeds returns the Davis estimates S_L = min(λ−(L), λ−(R)) and
// S_R = max(λ+(L), λ+(R)) used by HLL and HLLC.
func outerSpeeds(e eos.EOS, pl, pr state.Prim, d state.Direction) (sl, sr float64) {
	lmL, lpL := state.WaveSpeeds(e, pl, d)
	lmR, lpR := state.WaveSpeeds(e, pr, d)
	return math.Min(lmL, lmR), math.Max(lpL, lpR)
}

// HLL is the two-wave Harten–Lax–van Leer solver.
type HLL struct{}

// Name implements Solver.
func (HLL) Name() string { return "hll" }

// Flux implements Solver.
func (HLL) Flux(e eos.EOS, pl, pr state.Prim, d state.Direction) state.Cons {
	sl, sr := outerSpeeds(e, pl, pr, d)
	ul := pl.ToCons(e)
	ur := pr.ToCons(e)
	switch {
	case sl >= 0:
		return state.Flux(pl, ul, d)
	case sr <= 0:
		return state.Flux(pr, ur, d)
	}
	fl := state.Flux(pl, ul, d)
	fr := state.Flux(pr, ur, d)
	inv := 1 / (sr - sl)
	hll := func(flc, frc, ulc, urc float64) float64 {
		return (sr*flc - sl*frc + sl*sr*(urc-ulc)) * inv
	}
	return state.Cons{
		D:   hll(fl.D, fr.D, ul.D, ur.D),
		Sx:  hll(fl.Sx, fr.Sx, ul.Sx, ur.Sx),
		Sy:  hll(fl.Sy, fr.Sy, ul.Sy, ur.Sy),
		Sz:  hll(fl.Sz, fr.Sz, ul.Sz, ur.Sz),
		Tau: hll(fl.Tau, fr.Tau, ul.Tau, ur.Tau),
	}
}

// HLLC is the three-wave solver of Mignone & Bodo (2005) for SRHD: the HLL
// fan is split by the contact wave moving at λ*, restoring exact contact
// and shear-wave resolution.
type HLLC struct{}

// Name implements Solver.
func (HLLC) Name() string { return "hllc" }

// Flux implements Solver.
func (HLLC) Flux(e eos.EOS, pl, pr state.Prim, d state.Direction) state.Cons {
	sl, sr := outerSpeeds(e, pl, pr, d)
	ul := pl.ToCons(e)
	ur := pr.ToCons(e)
	switch {
	case sl >= 0:
		return state.Flux(pl, ul, d)
	case sr <= 0:
		return state.Flux(pr, ur, d)
	}
	fl := state.Flux(pl, ul, d)
	fr := state.Flux(pr, ur, d)

	// HLL state and flux of the total energy E = τ + D and the normal
	// momentum m = S_d. F(E) = F(τ) + F(D) = S_d.
	inv := 1 / (sr - sl)
	hllU := func(ulc, urc, flc, frc float64) float64 {
		return (sr*urc - sl*ulc + flc - frc) * inv
	}
	hllF := func(flc, frc, ulc, urc float64) float64 {
		return (sr*flc - sl*frc + sl*sr*(urc-ulc)) * inv
	}
	eL := ul.Tau + ul.D
	eR := ur.Tau + ur.D
	mL := ul.S(d)
	mR := ur.S(d)
	feL := fl.Tau + fl.D // = S_d(L)
	feR := fr.Tau + fr.D
	var fmL, fmR float64
	switch d {
	case state.X:
		fmL, fmR = fl.Sx, fr.Sx
	case state.Y:
		fmL, fmR = fl.Sy, fr.Sy
	default:
		fmL, fmR = fl.Sz, fr.Sz
	}
	eH := hllU(eL, eR, feL, feR)
	mH := hllU(mL, mR, fmL, fmR)
	feH := hllF(feL, feR, eL, eR)
	fmH := hllF(fmL, fmR, mL, mR)

	// Contact speed: F_E λ*² − (E + F_m) λ* + m = 0, taking the root that
	// lies inside the fan (minus branch, M&B eq. 18).
	a := feH
	b := -(eH + fmH)
	c := mH
	var lstar float64
	if math.Abs(a) > 1e-12*(math.Abs(b)+math.Abs(c)) {
		disc := b*b - 4*a*c
		if disc < 0 {
			disc = 0
		}
		// Numerically stable quadratic: q = −(b + sign(b)·sqrt(disc))/2.
		q := -0.5 * (b + math.Copysign(math.Sqrt(disc), b))
		lstar = c / q
	} else {
		lstar = -c / b
	}
	// Guard against roundoff pushing λ* outside the fan.
	if lstar < sl {
		lstar = sl
	}
	if lstar > sr {
		lstar = sr
	}

	// Star-region pressure (M&B eq. 17).
	pstar := -feH*lstar + fmH

	// Jump conditions across the outer wave on the side containing the
	// face (λ* >= 0 → left star state).
	if lstar >= 0 {
		return starFlux(pl, ul, fl, sl, lstar, pstar, d)
	}
	return starFlux(pr, ur, fr, sr, lstar, pstar, d)
}

// starFlux builds the star state on side K from the Rankine–Hugoniot jump
// across the outer wave S_K and returns F_K + S_K (U*_K − U_K).
func starFlux(p state.Prim, u state.Cons, f state.Cons, sk, lstar, pstar float64, d state.Direction) state.Cons {
	vk := p.V(d)
	ek := u.Tau + u.D
	inv := 1 / (sk - lstar)
	dstar := u.D * (sk - vk) * inv
	estar := (ek*(sk-vk) + pstar*lstar - p.P*vk) * inv
	// Normal momentum: m* = (m(S_K − v) + p* − p)/(S_K − λ*).
	// Transverse momenta advect: S_t* = S_t (S_K − v)/(S_K − λ*).
	adv := (sk - vk) * inv
	var sxs, sys, szs float64
	switch d {
	case state.X:
		sxs = (u.Sx*(sk-vk) + pstar - p.P) * inv
		sys = u.Sy * adv
		szs = u.Sz * adv
	case state.Y:
		sys = (u.Sy*(sk-vk) + pstar - p.P) * inv
		sxs = u.Sx * adv
		szs = u.Sz * adv
	default:
		szs = (u.Sz*(sk-vk) + pstar - p.P) * inv
		sxs = u.Sx * adv
		sys = u.Sy * adv
	}
	ustar := state.Cons{D: dstar, Sx: sxs, Sy: sys, Sz: szs, Tau: estar - dstar}
	return consAXPY(f, sk, consSub(ustar, u))
}

// ByName returns the solver registered under name: "llf", "hll", "hllc".
func ByName(name string) (Solver, error) {
	switch name {
	case "llf":
		return LLF{}, nil
	case "hll":
		return HLL{}, nil
	case "hllc":
		return HLLC{}, nil
	}
	return nil, fmt.Errorf("riemann: unknown solver %q", name)
}

// All returns every solver, for sweep-style benchmarks.
func All() []Solver { return []Solver{LLF{}, HLL{}, HLLC{}} }
