package riemann

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rhsc/internal/eos"
	"rhsc/internal/state"
)

var gamma53 = eos.NewIdealGas(5.0 / 3.0)

func randomPrim(rng *rand.Rand) state.Prim {
	v := 0.99 * rng.Float64()
	th := rng.Float64() * math.Pi
	ph := rng.Float64() * 2 * math.Pi
	return state.Prim{
		Rho: math.Exp(rng.Float64()*6 - 3),
		Vx:  v * math.Sin(th) * math.Cos(ph),
		Vy:  v * math.Sin(th) * math.Sin(ph),
		Vz:  v * math.Cos(th),
		P:   math.Exp(rng.Float64()*6 - 3),
	}
}

func consClose(a, b state.Cons, tol float64) bool {
	rel := func(x, y float64) float64 {
		return math.Abs(x-y) / (1 + math.Max(math.Abs(x), math.Abs(y)))
	}
	return rel(a.D, b.D) < tol && rel(a.Sx, b.Sx) < tol && rel(a.Sy, b.Sy) < tol &&
		rel(a.Sz, b.Sz) < tol && rel(a.Tau, b.Tau) < tol
}

// Consistency: F(u, u) must equal the exact physical flux for every solver
// and direction.
func TestConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range All() {
		for trial := 0; trial < 500; trial++ {
			p := randomPrim(rng)
			c := p.ToCons(gamma53)
			for _, d := range []state.Direction{state.X, state.Y, state.Z} {
				want := state.Flux(p, c, d)
				got := s.Flux(gamma53, p, p, d)
				if !consClose(got, want, 1e-10) {
					t.Fatalf("%s dir %v: F(u,u) = %+v, want %+v (p=%+v)",
						s.Name(), d, got, want, p)
				}
			}
		}
	}
}

// Supersonic upwinding: when both states move right faster than every wave,
// the flux must be exactly the left flux (information cannot travel
// upstream).
func TestSupersonicUpwinding(t *testing.T) {
	pl := state.Prim{Rho: 1, Vx: 0.99, P: 1e-3}
	pr := state.Prim{Rho: 2, Vx: 0.99, P: 2e-3}
	fl := state.Flux(pl, pl.ToCons(gamma53), state.X)
	for _, s := range []Solver{HLL{}, HLLC{}} {
		got := s.Flux(gamma53, pl, pr, state.X)
		if !consClose(got, fl, 1e-12) {
			t.Errorf("%s: supersonic flux %+v, want left flux %+v", s.Name(), got, fl)
		}
	}
	// Mirror: both moving left.
	plm := state.Prim{Rho: 1, Vx: -0.99, P: 1e-3}
	prm := state.Prim{Rho: 2, Vx: -0.99, P: 2e-3}
	fr := state.Flux(prm, prm.ToCons(gamma53), state.X)
	for _, s := range []Solver{HLL{}, HLLC{}} {
		got := s.Flux(gamma53, plm, prm, state.X)
		if !consClose(got, fr, 1e-12) {
			t.Errorf("%s: supersonic flux %+v, want right flux %+v", s.Name(), got, fr)
		}
	}
}

// Mirror symmetry: reflecting the states through the face (swap L/R and
// negate normal velocities) must negate the D and tau fluxes and preserve
// the normal momentum flux.
func TestMirrorSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range All() {
		for trial := 0; trial < 300; trial++ {
			pl := randomPrim(rng)
			pr := randomPrim(rng)
			f := s.Flux(gamma53, pl, pr, state.X)
			// Reflected problem.
			rl := state.Prim{Rho: pr.Rho, Vx: -pr.Vx, Vy: pr.Vy, Vz: pr.Vz, P: pr.P}
			rr := state.Prim{Rho: pl.Rho, Vx: -pl.Vx, Vy: pl.Vy, Vz: pl.Vz, P: pl.P}
			g := s.Flux(gamma53, rl, rr, state.X)
			if math.Abs(g.D+f.D) > 1e-9*(1+math.Abs(f.D)) {
				t.Fatalf("%s: D flux not antisymmetric: %v vs %v", s.Name(), g.D, f.D)
			}
			if math.Abs(g.Sx-f.Sx) > 1e-9*(1+math.Abs(f.Sx)) {
				t.Fatalf("%s: Sx flux not symmetric: %v vs %v", s.Name(), g.Sx, f.Sx)
			}
			if math.Abs(g.Tau+f.Tau) > 1e-9*(1+math.Abs(f.Tau)) {
				t.Fatalf("%s: tau flux not antisymmetric: %v vs %v", s.Name(), g.Tau, f.Tau)
			}
		}
	}
}

// A static contact discontinuity (equal p, zero normal velocity, density
// jump) must produce zero flux through the face with HLLC — the defining
// property that distinguishes it from HLL.
func TestHLLCResolvesStaticContact(t *testing.T) {
	pl := state.Prim{Rho: 1.0, P: 0.5}
	pr := state.Prim{Rho: 10.0, P: 0.5}
	f := (HLLC{}).Flux(gamma53, pl, pr, state.X)
	if math.Abs(f.D) > 1e-12 || math.Abs(f.Tau) > 1e-12 {
		t.Errorf("HLLC static contact flux nonzero: D=%v tau=%v", f.D, f.Tau)
	}
	if math.Abs(f.Sx-0.5) > 1e-12 {
		t.Errorf("HLLC static contact momentum flux %v, want p=0.5", f.Sx)
	}
	// HLL, by contrast, diffuses the contact: nonzero D flux.
	g := (HLL{}).Flux(gamma53, pl, pr, state.X)
	if math.Abs(g.D) < 1e-6 {
		t.Errorf("HLL unexpectedly resolves the contact exactly: D flux %v", g.D)
	}
}

// A moving contact (equal p and v_x != 0, density jump) must be advected
// exactly by HLLC: the flux must equal the upwind exact flux.
func TestHLLCResolvesMovingContact(t *testing.T) {
	for _, vx := range []float64{0.3, -0.3, 0.9, -0.9} {
		pl := state.Prim{Rho: 1.0, Vx: vx, P: 0.5}
		pr := state.Prim{Rho: 8.0, Vx: vx, P: 0.5}
		up := pl
		if vx < 0 {
			up = pr
		}
		want := state.Flux(up, up.ToCons(gamma53), state.X)
		got := (HLLC{}).Flux(gamma53, pl, pr, state.X)
		if !consClose(got, want, 1e-9) {
			t.Errorf("vx=%v: HLLC contact flux %+v, want %+v", vx, got, want)
		}
	}
}

// Shear waves: HLLC must advect transverse velocity jumps exactly when
// p and v_x match (relativistic shear layers couple through the Lorentz
// factor, but at v_x = 0 the tangential momentum flux must vanish).
func TestHLLCShearAtRest(t *testing.T) {
	pl := state.Prim{Rho: 1, Vy: 0.5, P: 1}
	pr := state.Prim{Rho: 1, Vy: -0.5, P: 1}
	f := (HLLC{}).Flux(gamma53, pl, pr, state.X)
	if math.Abs(f.Sy) > 1e-12 {
		t.Errorf("HLLC shear flux Sy = %v, want 0", f.Sy)
	}
	if math.Abs(f.D) > 1e-12 {
		t.Errorf("HLLC shear flux D = %v, want 0", f.D)
	}
}

// Dissipation ordering on a generic jump: LLF must be at least as
// dissipative as HLL on the density flux for a symmetric Sod-like state
// (more smearing = larger |F_D| toward the mean).
func TestDissipationOrdering(t *testing.T) {
	pl := state.Prim{Rho: 10, P: 13.3}
	pr := state.Prim{Rho: 1, P: 1e-1}
	// All three should produce finite, causal fluxes.
	for _, s := range All() {
		f := s.Flux(gamma53, pl, pr, state.X)
		for _, v := range []float64{f.D, f.Sx, f.Sy, f.Sz, f.Tau} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite flux %+v", s.Name(), f)
			}
		}
	}
	// For symmetric (rest-frame) states HLL degenerates to LLF exactly.
	fllf := (LLF{}).Flux(gamma53, pl, pr, state.X)
	fhll := (HLL{}).Flux(gamma53, pl, pr, state.X)
	if math.Abs(fllf.D-fhll.D) > 1e-12 {
		t.Errorf("rest-frame HLL %v != LLF %v", fhll.D, fllf.D)
	}
	// With asymmetric wave speeds (moving states) HLL is strictly less
	// dissipative: its D flux sits closer to the upwind value.
	plm := state.Prim{Rho: 10, Vx: 0.3, P: 13.3}
	prm := state.Prim{Rho: 1, Vx: 0.3, P: 1e-1}
	fUp := state.Flux(plm, plm.ToCons(gamma53), state.X)
	dLLF := math.Abs((LLF{}).Flux(gamma53, plm, prm, state.X).D - fUp.D)
	dHLL := math.Abs((HLL{}).Flux(gamma53, plm, prm, state.X).D - fUp.D)
	if dHLL >= dLLF {
		t.Errorf("HLL (%v) not closer to upwind flux than LLF (%v)", dHLL, dLLF)
	}
}

// The HLLC flux must lie "between" fully-upwinded limits: evaluate at a
// sonic-ish state and ensure it transitions continuously as v crosses the
// sound speed. Discontinuities in flux vs. input cause carbuncle-like
// artefacts.
func TestHLLCContinuityAcrossSonicPoint(t *testing.T) {
	prev := math.NaN()
	for v := -0.9; v <= 0.9; v += 0.002 {
		pl := state.Prim{Rho: 1, Vx: v, P: 1}
		pr := state.Prim{Rho: 1.1, Vx: v, P: 1.05}
		f := (HLLC{}).Flux(gamma53, pl, pr, state.X)
		if !math.IsNaN(prev) {
			// dF/dv ~ rho W^3 reaches ~13 near |v|=0.9, so a smooth flux
			// changes by up to ~0.03 per dv=0.002 step; a branch-switch bug
			// would jump by O(0.1−1).
			if math.Abs(f.D-prev) > 0.06 {
				t.Fatalf("HLLC D flux jumps at v=%v: %v -> %v", v, prev, f.D)
			}
		}
		prev = f.D
	}
}

// Degenerate HLLC quadratic: cold, nearly pressureless flow makes the
// energy flux coefficient vanish; the solver must fall back to the linear
// root without NaNs.
func TestHLLCDegenerateQuadratic(t *testing.T) {
	pl := state.Prim{Rho: 1, Vx: 1e-14, P: 1e-12}
	pr := state.Prim{Rho: 1, Vx: -1e-14, P: 1e-12}
	f := (HLLC{}).Flux(gamma53, pl, pr, state.X)
	for _, v := range []float64{f.D, f.Sx, f.Tau} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate HLLC flux %+v", f)
		}
	}
}

// Property check via testing/quick: F(u, u) equals the exact flux for
// randomly generated admissible states, all solvers, all directions.
func TestQuickConsistency(t *testing.T) {
	prop := func(lr, lp, a, b float64) bool {
		rho := math.Exp(math.Mod(lr, 5))
		p := math.Exp(math.Mod(lp, 5))
		// Map (a, b) onto a subluminal velocity pair.
		vx := 0.99 * math.Tanh(a)
		vy := 0.99 * math.Tanh(b) * math.Sqrt(1-vx*vx)
		w := state.Prim{Rho: rho, Vx: vx, Vy: vy, P: p}
		if !w.IsPhysical() {
			return true
		}
		c := w.ToCons(gamma53)
		for _, s := range All() {
			for _, d := range []state.Direction{state.X, state.Y, state.Z} {
				want := state.Flux(w, c, d)
				got := s.Flux(gamma53, w, w, d)
				if !consClose(got, want, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"llf", "hll", "hllc"} {
		s, err := ByName(name)
		if err != nil || s.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ByName("roe"); err == nil {
		t.Error("unknown solver accepted")
	}
}

// Strong relativistic blast states (pressure ratio 1e5, as in the standard
// blast-wave problem) must yield finite fluxes from all solvers.
func TestExtremePressureRatio(t *testing.T) {
	pl := state.Prim{Rho: 1, P: 1000}
	pr := state.Prim{Rho: 1, P: 1e-2}
	for _, s := range All() {
		f := s.Flux(gamma53, pl, pr, state.X)
		if math.IsNaN(f.D) || math.IsNaN(f.Sx) || math.IsNaN(f.Tau) {
			t.Errorf("%s: NaN flux on blast states", s.Name())
		}
	}
}

// Transverse direction fluxes: a flow purely along y must produce zero
// x-flux of density for symmetric states with vx=0.
func TestTransverseFlowZeroNormalFlux(t *testing.T) {
	p := state.Prim{Rho: 1, Vy: 0.9, P: 1}
	for _, s := range All() {
		f := s.Flux(gamma53, p, p, state.X)
		if math.Abs(f.D) > 1e-14 {
			t.Errorf("%s: normal D flux %v for transverse flow", s.Name(), f.D)
		}
		if math.Abs(f.Sx-p.P) > 1e-12 {
			t.Errorf("%s: Sx flux %v, want p", s.Name(), f.Sx)
		}
	}
}
