package resilience

import (
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/testprob"
)

// blastSolver builds a serial 2-D blast solver; mut tweaks the config.
func blastSolver(t *testing.T, mut func(*core.Config)) *core.Solver {
	t.Helper()
	cfg := core.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	p := testprob.Blast2D
	g := p.NewGrid(48, cfg.Recon.Ghost())
	s, err := core.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(p.Init); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFaultLocalRepairBeatsGlobalRetry pins the fail-safe acceptance
// criterion: on the same in-stage injected fault, the plain guard must
// restore/retry (eventually at global first-order), while the fail-safe
// guard repairs the cells locally — zero retries, no method demotion,
// and orders of magnitude fewer fallback-order zone updates.
func TestFaultLocalRepairBeatsGlobalRetry(t *testing.T) {
	const tEnd = 0.1

	// Global path: guarded solver without the fail-safe. In-stage faults
	// surface at stage validation; Count=2 outlasts the dt-halving retry
	// so the PCM+HLL fallback engages.
	global := NewGuard(blastSolver(t, nil), Policy{})
	global.Inject = &Injector{AtStep: 3, Count: 2, Cell: -1, InStage: true}
	if _, err := global.Advance(tEnd); err != nil {
		t.Fatalf("global-retry run did not complete: %v", err)
	}
	gs := global.Stats.Snapshot()
	if gs.Injected == 0 || gs.Retries == 0 || gs.Fallbacks == 0 {
		t.Fatalf("global run never engaged the fallback: %+v", gs)
	}
	if gs.Repaired != 0 {
		t.Fatalf("global run reports local repairs: %+v", gs)
	}

	// Local path: same fault, fail-safe pipeline on. The corruption is
	// caught by the detector mid-step and patched with first-order fluxes
	// on the troubled faces only — the step commits on the first attempt
	// at the configured scheme order.
	local := NewGuard(blastSolver(t, func(c *core.Config) { c.FailSafe = true }), Policy{})
	local.Inject = &Injector{AtStep: 3, Count: 2, Cell: -1, InStage: true}
	if _, err := local.Advance(tEnd); err != nil {
		t.Fatalf("fail-safe run did not complete: %v", err)
	}
	ls := local.Stats.Snapshot()
	if ls.Injected == 0 {
		t.Fatalf("fail-safe run never injected: %+v", ls)
	}
	if ls.Retries != 0 || ls.Fallbacks != 0 || ls.Demotions != 0 {
		t.Fatalf("fail-safe run fell back globally: %+v", ls)
	}
	if ls.Repaired == 0 || ls.Repaired != ls.Troubled {
		t.Fatalf("fail-safe run did not repair everything it flagged: %+v", ls)
	}

	// The acceptance bar is >= 2x fewer fallback-order zone updates; in
	// practice the local path pays a handful of cells against full grids.
	if ls.FallbackZones*2 > gs.FallbackZones {
		t.Fatalf("local repair not cheaper: %d fallback zones vs global %d",
			ls.FallbackZones, gs.FallbackZones)
	}
	if err := local.S.CheckState(); err != nil {
		t.Fatalf("fail-safe final state invalid: %v", err)
	}
}

// TestFaultFailSafeDemotionFallsThrough: when the troubled fraction
// exceeds the policy bound, the fail-safe guard must demote to the
// global retry machinery — and still complete the run.
func TestFaultFailSafeDemotionFallsThrough(t *testing.T) {
	s := blastSolver(t, func(c *core.Config) { c.FailSafe = true })
	g := NewGuard(s, Policy{MaxTroubledFrac: 1.0 / (48.0 * 48.0 * 2.0)})
	if s.Cfg.FailSafeMaxFrac == 0 {
		t.Fatal("NewGuard did not install MaxTroubledFrac")
	}
	// Two poisoned cells exceed the ~half-cell fraction; one attempt only,
	// so the (fail-safe-disabled) retry runs clean.
	idx := s.G.Idx(s.G.TotalX/2, s.G.TotalY/2, 0)
	g.Inject = &Injector{AtStep: 2, Cell: idx, InStage: true}
	if _, err := g.Advance(0.08); err != nil {
		t.Fatalf("demoted run did not complete: %v", err)
	}
	snap := g.Stats.Snapshot()
	if snap.Demotions == 0 {
		t.Fatalf("no demotion recorded: %+v", snap)
	}
	if snap.Retries == 0 {
		t.Fatalf("demotion did not reach the retry path: %+v", snap)
	}
	if snap.Repaired != 0 {
		t.Fatalf("demoted step must not repair: %+v", snap)
	}
	if !s.Cfg.FailSafe {
		t.Fatal("fail-safe not re-enabled after the demoted step")
	}
}
