package resilience

import (
	"errors"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/testprob"
)

func sodSolver(t *testing.T) *core.Solver {
	t.Helper()
	cfg := core.DefaultConfig()
	p := testprob.Sod
	g := p.NewGrid(128, cfg.Recon.Ghost())
	s, err := core.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(p.Init); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFaultGuardCleanRunBitIdentical: with no fault, the guard must not
// perturb the solution — same dt choices, bitwise-identical final state
// as the plain solver.
func TestFaultGuardCleanRunBitIdentical(t *testing.T) {
	plain := sodSolver(t)
	if _, err := plain.Advance(testprob.Sod.TEnd); err != nil {
		t.Fatal(err)
	}

	guarded := sodSolver(t)
	g := NewGuard(guarded, Policy{})
	if _, err := g.Advance(testprob.Sod.TEnd); err != nil {
		t.Fatal(err)
	}
	if snap := g.Stats.Snapshot(); snap.Retries != 0 || snap.Fallbacks != 0 {
		t.Fatalf("clean run consumed retries: %+v", snap)
	}

	a, b := plain.G.U.Raw(), guarded.G.U.Raw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("word %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestFaultInjectedNaNRecovered is the tentpole acceptance case: an
// injected NaN triggers the dt-halving retry and the run completes.
func TestFaultInjectedNaNRecovered(t *testing.T) {
	s := sodSolver(t)
	g := NewGuard(s, Policy{})
	g.Inject = &Injector{AtStep: 3, Cell: -1}
	if _, err := g.Advance(testprob.Sod.TEnd); err != nil {
		t.Fatalf("run did not complete: %v", err)
	}
	snap := g.Stats.Snapshot()
	if snap.Injected != 1 {
		t.Fatalf("Injected = %d, want 1", snap.Injected)
	}
	if snap.Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1", snap.Retries)
	}
	if err := s.CheckState(); err != nil {
		t.Fatalf("final state invalid: %v", err)
	}
	if s.Time() < testprob.Sod.TEnd-1e-12 {
		t.Fatalf("stopped at t=%v", s.Time())
	}
}

// TestFaultPersistentFaultEngagesFallback: a fault that survives the
// first (dt-halving) retry must engage the first-order PCM+HLL fallback,
// after which the run completes and the high-order method is restored.
func TestFaultPersistentFaultEngagesFallback(t *testing.T) {
	s := sodSolver(t)
	hiRec, hiRS := s.Method()
	g := NewGuard(s, Policy{})
	g.Inject = &Injector{AtStep: 2, Count: 2, Cell: -1}
	if _, err := g.Advance(testprob.Sod.TEnd); err != nil {
		t.Fatalf("run did not complete: %v", err)
	}
	snap := g.Stats.Snapshot()
	if snap.Fallbacks < 1 {
		t.Fatalf("Fallbacks = %d, want >= 1", snap.Fallbacks)
	}
	if snap.Retries < 2 {
		t.Fatalf("Retries = %d, want >= 2", snap.Retries)
	}
	rec, rs := s.Method()
	if rec != hiRec || rs != hiRS {
		t.Fatalf("high-order method not restored: %v %v", rec.Name(), rs)
	}
}

// TestFaultUnphysicalInjection exercises the positivity branch: a finite
// tau < 0 cell must be caught and repaired exactly like a NaN.
func TestFaultUnphysicalInjection(t *testing.T) {
	s := sodSolver(t)
	g := NewGuard(s, Policy{})
	g.Inject = &Injector{AtStep: 1, Cell: -1, Unphysical: true}
	if _, err := g.Advance(testprob.Sod.TEnd); err != nil {
		t.Fatalf("run did not complete: %v", err)
	}
	if snap := g.Stats.Snapshot(); snap.Injected != 1 || snap.Retries < 1 {
		t.Fatalf("unexpected counters: %+v", snap)
	}
}

// TestFaultRetryBudgetExhausted: a fault outlasting the budget surfaces
// a typed *StepFailure and leaves the state on the pre-step snapshot.
func TestFaultRetryBudgetExhausted(t *testing.T) {
	s := sodSolver(t)
	g := NewGuard(s, Policy{MaxRetries: 3})
	g.Inject = &Injector{AtStep: 2, Count: 100, Cell: -1}

	s.RecoverPrimitives()
	var before []float64
	var tBefore float64
	steps := 0
	for {
		dt := s.MaxDt()
		if steps == g.Inject.AtStep {
			before = append([]float64(nil), s.G.U.Raw()...)
			tBefore = s.Time()
		}
		_, err := g.Step(dt)
		if err != nil {
			var sf *StepFailure
			if !errors.As(err, &sf) {
				t.Fatalf("expected *StepFailure, got %v", err)
			}
			if sf.Retries != 3 {
				t.Fatalf("Retries = %d, want 3", sf.Retries)
			}
			if sf.Last == nil {
				t.Fatal("StepFailure carries no cause")
			}
			break
		}
		steps++
		if steps > g.Inject.AtStep {
			t.Fatal("poisoned step committed")
		}
	}

	if s.Time() != tBefore {
		t.Fatalf("time not restored: %v vs %v", s.Time(), tBefore)
	}
	raw := s.G.U.Raw()
	for i := range before {
		if raw[i] != before[i] {
			t.Fatalf("state word %d not restored", i)
		}
	}
	// The guard must remain usable after a failure; clear the injector
	// (Count=100 would keep refiring at this step) and step again.
	g.Inject = nil
	if _, err := g.Step(s.MaxDt()); err != nil {
		t.Fatalf("guard unusable after failure: %v", err)
	}
}
