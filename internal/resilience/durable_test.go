package resilience

import (
	"errors"
	"io"
	"math"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/durable"
	"rhsc/internal/output"
	"rhsc/internal/testprob"
)

// stepTo advances s one CFL step at a time to tEnd, invoking tick with
// the committed step count after each step.
func stepTo(t *testing.T, s *core.Solver, tEnd float64, tick func(step int) error) int {
	t.Helper()
	step := 0
	for s.Time() < tEnd-1e-14 {
		dt := s.MaxDt()
		if s.Time()+dt > tEnd {
			dt = tEnd - s.Time()
		}
		if err := s.Step(dt); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		step++
		if tick != nil {
			if err := tick(step); err != nil {
				t.Fatalf("tick at step %d: %v", step, err)
			}
		}
	}
	return step
}

// uraw copies the solver's conserved field.
func uraw(s *core.Solver) []float64 {
	return append([]float64(nil), s.G.U.Raw()...)
}

// TestDurableCheckpointerTicksOnInterval pins the commit cadence and
// the generation numbering the recovery path depends on.
func TestDurableCheckpointerTicksOnInterval(t *testing.T) {
	dir := t.TempDir()
	st, err := durable.Open(durable.OS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sodSolver(t)
	d := &DurableCheckpointer{Store: st, Name: "sod", Every: 5}
	steps := stepTo(t, s, testprob.Sod.TEnd, func(step int) error {
		_, err := d.Tick(step, func(w io.Writer) error {
			return output.SaveCheckpointExact(w, s.G, s.Time())
		})
		return err
	})
	if want := steps / 5; d.Committed() != want {
		t.Fatalf("committed %d checkpoints over %d steps, want %d", d.Committed(), steps, want)
	}
	gen, ok := st.Latest("sod")
	if !ok || gen != uint64(d.Committed()) {
		t.Fatalf("latest generation %d (ok %v), want %d", gen, ok, d.Committed())
	}
}

// smallSod is a quarter-size solver so the exhaustive crash matrix
// stays fast; bit-exactness does not depend on resolution.
func smallSod(t *testing.T) *core.Solver {
	t.Helper()
	cfg := core.DefaultConfig()
	p := testprob.Sod
	g := p.NewGrid(48, cfg.Recon.Ghost())
	s, err := core.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitFromPrim(p.Init); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDurableCrashMatrixBitExactResume is the end-to-end acceptance
// criterion: a guarded run checkpointing through the durable store is
// killed at EVERY mutating I/O write point in turn; each time, recovery
// must land on the newest fully-valid generation and the resumed run
// must finish bit-identically to the uninterrupted one.
func TestDurableCrashMatrixBitExactResume(t *testing.T) {
	tEnd := testprob.Sod.TEnd / 2 // enough steps for several checkpoints

	// Reference: uninterrupted run.
	ref := smallSod(t)
	stepTo(t, ref, tEnd, nil)
	want := uraw(ref)

	// crashRun runs the checkpointing loop on fsys until tEnd or the
	// injected crash, whichever first.
	crashRun := func(fsys durable.FS, dir string) error {
		st, err := durable.Open(fsys, dir, nil)
		if err != nil {
			return err
		}
		s := smallSod(t)
		d := &DurableCheckpointer{Store: st, Name: "sod", Every: 3}
		step := 0
		for s.Time() < tEnd-1e-14 {
			dt := s.MaxDt()
			if s.Time()+dt > tEnd {
				dt = tEnd - s.Time()
			}
			if err := s.Step(dt); err != nil {
				return err
			}
			step++
			if _, err := d.Tick(step, func(w io.Writer) error {
				return output.SaveCheckpointExact(w, s.G, s.Time())
			}); err != nil {
				return err
			}
		}
		return nil
	}

	probe := durable.NewFaultFS(durable.OS, durable.Plan{})
	if err := crashRun(probe, t.TempDir()); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("run issued only %d mutating ops", total)
	}

	var lastGen uint64
	for op := 1; op <= total; op++ {
		dir := t.TempDir()
		ffs := durable.NewFaultFS(durable.OS, durable.Plan{CrashAtOp: op, TornBytes: 5})
		err := crashRun(ffs, dir)
		if !ffs.Crashed() {
			t.Fatalf("op %d: crash never fired (err %v)", op, err)
		}

		// Reboot on a clean filesystem: recover, resume, compare.
		var s2 *core.Solver
		gen, err := RecoverLatest(durable.OS, dir, "sod", func(r io.Reader) error {
			g, tt, prims, err := output.LoadCheckpointFull(r)
			if err != nil {
				return err
			}
			if !prims {
				return errors.New("exact checkpoint lost its primitives")
			}
			cfg := core.DefaultConfig()
			sol, err := core.New(g, cfg)
			if err != nil {
				return err
			}
			sol.SetTime(tt)
			s2 = sol
			return nil
		})
		if errors.Is(err, durable.ErrNotExist) {
			// Crash before the first commit completed: restart from scratch.
			if op > total/2 {
				t.Fatalf("op %d of %d: late crash lost every checkpoint", op, total)
			}
			s2 = smallSod(t)
			gen = 0
		} else if err != nil {
			t.Fatalf("op %d: recovery: %v", op, err)
		}
		// Durability is monotone in the crash point: a later crash can
		// never recover an older generation than an earlier crash did.
		if gen < lastGen {
			t.Fatalf("op %d: recovered g%d after op %d recovered g%d", op, gen, op-1, lastGen)
		}
		lastGen = gen

		stepTo(t, s2, tEnd, nil)
		got := uraw(s2)
		for i := range want {
			if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
				t.Fatalf("op %d (recovered g%d): resumed U[%d] = %v, want %v — not bit-exact",
					op, gen, i, got[i], want[i])
			}
		}
	}
}
