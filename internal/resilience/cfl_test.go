package resilience

import (
	"errors"
	"testing"

	"rhsc/internal/testprob"
)

// TestFaultRetryInvalidatesCFLCache: a failed attempt's final recovery
// caches an in-sweep CFL reduction for the state it produced; the
// guard's snapshot restore must invalidate it. With the retry budget
// exhausted the solver holds the pre-step snapshot, and MaxDt must
// match a from-scratch traversal of exactly that state — not the stale
// reduction of the last corrupted attempt.
func TestFaultRetryInvalidatesCFLCache(t *testing.T) {
	s := sodSolver(t)
	g := NewGuard(s, Policy{MaxRetries: 2})
	g.Inject = &Injector{AtStep: 2, Cell: -1, Count: 10} // outlasts the budget
	s.RecoverPrimitives()

	var ferr error
	for i := 0; i < 10; i++ {
		if _, ferr = g.Step(s.MaxDt()); ferr != nil {
			break
		}
	}
	var sf *StepFailure
	if !errors.As(ferr, &sf) {
		t.Fatalf("want *StepFailure, got %v", ferr)
	}

	cached := s.MaxDt()
	s.InvalidateCFL()
	if fresh := s.MaxDt(); fresh != cached {
		t.Fatalf("post-failure MaxDt %v, traversal of restored state gives %v", cached, fresh)
	}
}

// TestFaultRecoveredRunCFLCoherent: across a transient injection — the
// dt-halving retry plus the first-order fallback engaging and
// disengaging (which re-evaluates fused-kernel eligibility) — every
// committed step must leave the CFL cache coherent with the state.
func TestFaultRecoveredRunCFLCoherent(t *testing.T) {
	s := sodSolver(t)
	g := NewGuard(s, Policy{})
	g.Inject = &Injector{AtStep: 3, Cell: -1, Count: 2} // forces the fallback
	s.RecoverPrimitives()

	for i := 0; i < 8; i++ {
		if _, err := g.Step(s.MaxDt()); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		cached := s.MaxDt()
		s.InvalidateCFL()
		if fresh := s.MaxDt(); fresh != cached {
			t.Fatalf("step %d: cached MaxDt %v != traversal %v", i, cached, fresh)
		}
	}
	if snap := g.Stats.Snapshot(); snap.Retries == 0 || snap.Fallbacks == 0 {
		t.Fatalf("injection did not exercise the retry/fallback path: %+v", snap)
	}
}

// TestFaultSnapshotBuffersReused: the guard's pre-step snapshot buffers
// are pooled — established once, then reused across every step and
// retry rather than reallocated (the zero-allocation step pipeline
// would otherwise leak a full state copy per step).
func TestFaultSnapshotBuffersReused(t *testing.T) {
	s := sodSolver(t)
	g := NewGuard(s, Policy{})
	g.Inject = &Injector{AtStep: 2, Cell: -1, Count: 2}
	s.RecoverPrimitives()

	if _, err := g.Step(s.MaxDt()); err != nil {
		t.Fatal(err)
	}
	capU, capW := cap(g.uSnap), cap(g.wSnap)
	if capU == 0 || capW == 0 {
		t.Fatal("snapshot buffers not established")
	}
	for i := 0; i < 7; i++ {
		if _, err := g.Step(s.MaxDt()); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if cap(g.uSnap) != capU || cap(g.wSnap) != capW {
		t.Errorf("snapshot buffers regrew: U %d→%d, W %d→%d",
			capU, cap(g.uSnap), capW, cap(g.wSnap))
	}
	if snap := g.Stats.Snapshot(); snap.Retries == 0 {
		t.Fatalf("injection did not exercise the retry path: %+v", snap)
	}
}

var _ = testprob.Sod
