// Package resilience layers fault tolerance over the solver stack: a
// guarded stepper that validates every update and retries violations
// with a halved step and a dissipative first-order fallback, plus
// deterministic fault injectors to exercise the machinery.
//
// Fault model (see docs/RESILIENCE.md):
//
//   - Numerical faults — NaN/Inf states, loss of D/tau positivity, c2p
//     non-convergence behind strong shocks. Handled here: Guard snapshots
//     the state before each step, validates after (per RK stage via
//     core.Config.StrictChecks and whole-state via CheckState), and on
//     violation restores the snapshot and retries with dt/2; from the
//     second retry it also drops to piecewise-constant reconstruction +
//     HLL (the most dissipative, most robust method in the tree) and
//     restores the high-order scheme once a retry commits. The retry
//     budget bounds the work; exhaustion surfaces a typed *StepFailure
//     instead of a panic.
//
//   - Rank faults — a distributed-AMR rank dying mid-run. Handled in
//     internal/damr via cluster.Kill/RecvErr and buddy checkpoints.
//
//   - Device faults — a modelled accelerator erroring mid-sweep. Handled
//     in internal/hetero via plan-time re-execution with backoff.
//
// Determinism: a guarded run with no injected or organic violations is
// bit-identical to an unguarded run (validation only reads the state);
// with violations, the retry sequence is a pure function of the state,
// so guarded runs are reproducible run-to-run.
package resilience

import (
	"errors"
	"fmt"

	"rhsc/internal/core"
	"rhsc/internal/metrics"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
)

// Policy bounds the retry machinery.
type Policy struct {
	// MaxRetries is the number of retries per step before the guard gives
	// up (default 4, i.e. dt can shrink 16-fold).
	MaxRetries int
	// FirstOrderAfter is the 1-based retry index from which the fallback
	// scheme (PCM + HLL) replaces the configured method (default 2: the
	// first retry only halves dt, preserving accuracy for transients).
	FirstOrderAfter int
	// C2PFailureLimit is the number of atmosphere resets a single RK
	// stage may take before the step counts as violated (default 0).
	C2PFailureLimit int
	// MaxTroubledFrac bounds the fail-safe local repair when the wrapped
	// solver runs with core.Config.FailSafe: a stage whose troubled-cell
	// fraction exceeds it is demoted to this guard's global retry path
	// (the damage is not local). Zero keeps the solver's configured value.
	// Ignored when the solver does not use the fail-safe pipeline.
	MaxTroubledFrac float64
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 4
	}
	if p.FirstOrderAfter == 0 {
		p.FirstOrderAfter = 2
	}
	return p
}

// StepFailure reports a step whose retry budget is exhausted. The
// guard's solver state is restored to the pre-step snapshot, so the
// caller can checkpoint, report, or abandon cleanly.
type StepFailure struct {
	T       float64 // solution time of the failed step
	Dt      float64 // originally requested step
	Retries int     // retries consumed
	Last    error   // violation seen on the final attempt
}

// Error implements the error interface.
func (e *StepFailure) Error() string {
	return fmt.Sprintf("resilience: step at t=%v (dt=%v) failed after %d retries: %v",
		e.T, e.Dt, e.Retries, e.Last)
}

// Unwrap exposes the final violation for errors.Is/As.
func (e *StepFailure) Unwrap() error { return e.Last }

// Guard wraps a core.Solver with snapshot/validate/retry stepping. Use
// from one goroutine; create with NewGuard. Do not copy.
type Guard struct {
	S      *core.Solver
	Policy Policy
	// Inject, when non-nil, deterministically corrupts the state after
	// chosen steps (see Injector) to exercise the recovery path.
	Inject *Injector
	// Stats counts injections, retries and fallbacks; share it across
	// guards (e.g. one per AMR block) for aggregate accounting.
	Stats *metrics.FaultCounters

	uSnap, wSnap []float64
	steps        int
	own          metrics.FaultCounters // backing store when Stats is nil
}

// NewGuard wraps s. It enables per-stage strict validation on the
// solver (core.Config.StrictChecks) with the policy's c2p failure limit.
// When the solver runs the fail-safe pipeline (core.Config.FailSafe),
// the policy's MaxTroubledFrac is installed as its demotion threshold:
// a stage the local repair cannot or should not handle surfaces as a
// *core.StateError, which this guard's retry path treats like any other
// violation (restore, halve dt, eventually the global first-order
// fallback) — with the fail-safe disabled for the remaining attempts of
// that step, so the demotion really is global.
func NewGuard(s *core.Solver, pol Policy) *Guard {
	pol = pol.withDefaults()
	s.Cfg.StrictChecks = true
	s.Cfg.StrictC2PLimit = pol.C2PFailureLimit
	if s.Cfg.FailSafe && pol.MaxTroubledFrac > 0 {
		s.Cfg.FailSafeMaxFrac = pol.MaxTroubledFrac
	}
	g := &Guard{S: s, Policy: pol}
	g.Stats = &g.own
	return g
}

// Steps returns the number of committed (successful) steps.
func (g *Guard) Steps() int { return g.steps }

// SetSteps overrides the committed-step counter. The job server uses it
// when resuming a preempted job from a checkpoint: the counter indexes
// Injector schedules (Injector.AtStep is an absolute committed-step
// index), so a resumed guard must continue counting where the parked
// run stopped for its fault schedule to stay aligned across preemption.
func (g *Guard) SetSteps(n int) { g.steps = n }

// Step advances by dt with validation and bounded retry, returning the
// dt actually committed (dt, or a halved refinement of it). On
// *StepFailure the state is the pre-step snapshot; on success the usual
// solver invariant (W consistent with U) holds.
func (g *Guard) Step(dt float64) (float64, error) {
	s := g.S
	g.uSnap = append(g.uSnap[:0], s.G.U.Raw()...)
	g.wSnap = append(g.wSnap[:0], s.G.W.Raw()...)
	t0 := s.Time()
	hiRec, hiRS := s.Method()
	fallback := false
	fsWas := s.Cfg.FailSafe
	tr0, rp0 := s.St.Troubled.Load(), s.St.Repaired.Load()
	defer func() { s.Cfg.FailSafe = fsWas }()

	cur := dt
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			copy(s.G.U.Raw(), g.uSnap)
			copy(s.G.W.Raw(), g.wSnap)
			s.SetTime(t0)
			// The raw W restore bypasses recovery, so any CFL reduction
			// cached by the failed attempt's final recovery is stale.
			s.InvalidateCFL()
			if attempt > g.Policy.MaxRetries {
				if fallback {
					if err := s.SetMethod(hiRec, hiRS); err != nil {
						return 0, err
					}
				}
				return 0, &StepFailure{T: t0, Dt: dt, Retries: g.Policy.MaxRetries, Last: lastErr}
			}
			g.Stats.Retries.Add(1)
			cur /= 2
			if attempt >= g.Policy.FirstOrderAfter && !fallback {
				if err := s.SetMethod(recon.PCM{}, riemann.HLL{}); err != nil {
					return 0, err
				}
				fallback = true
			}
			if fallback {
				g.Stats.Fallbacks.Add(1)
			}
		}
		// In-stage injection lands through the solver's FaultHook so the
		// fail-safe pipeline sees the corruption before validation; any
		// caller-installed hook is preserved around the attempt.
		var injected bool
		hooked := false
		var prevHook func(int, *state.Fields)
		if inj := g.Inject; inj != nil && inj.InStage && inj.eligible(g.steps) {
			prevHook = s.Cfg.FaultHook
			hooked = true
			s.Cfg.FaultHook = func(stage int, u *state.Fields) {
				if prevHook != nil {
					prevHook(stage, u)
				}
				if stage == 1 && !injected {
					injected = true
					inj.poison(s)
				}
			}
		}
		zu0 := s.St.ZoneUpdates.Load()
		err := s.Step(cur)
		if hooked {
			s.Cfg.FaultHook = prevHook
		}
		if injected {
			g.Stats.Injected.Add(1)
		}
		if fallback {
			// Every zone of a global first-order retry runs at fallback
			// order (even if the attempt later fails validation).
			g.Stats.FallbackZones.Add(s.St.ZoneUpdates.Load() - zu0)
		}
		if err == nil {
			if g.Inject != nil && g.Inject.fire(s, g.steps) {
				g.Stats.Injected.Add(1)
			}
			err = s.CheckState()
		}
		if err == nil {
			if fallback {
				if err := s.SetMethod(hiRec, hiRS); err != nil {
					return 0, err
				}
			}
			g.Stats.Troubled.Add(s.St.Troubled.Load() - tr0)
			rep := s.St.Repaired.Load() - rp0
			g.Stats.Repaired.Add(rep)
			// Locally repaired cells are the fail-safe's entire fallback-order
			// bill — the quantity the global retry pays per whole grid.
			g.Stats.FallbackZones.Add(rep)
			g.steps++
			return cur, nil
		}
		lastErr = err
		// A fail-safe demotion (troubled fraction over policy, or the local
		// repair failed) falls through to the global retry machinery with
		// the fail-safe off for this step's remaining attempts.
		var se *core.StateError
		if s.Cfg.FailSafe && errors.As(err, &se) && (se.RepairFailed || se.Troubled > 0) {
			g.Stats.Demotions.Add(1)
			s.Cfg.FailSafe = false
		}
	}
}

// Advance integrates to tEnd through the guard, choosing CFL-limited
// steps (shrunk further by retries) and clamping the final step onto
// tEnd. It returns the number of committed steps.
func (g *Guard) Advance(tEnd float64) (int, error) {
	s := g.S
	steps := 0
	for s.Time() < tEnd-1e-14 {
		if steps == 0 {
			s.RecoverPrimitives()
		}
		dt := s.MaxDt()
		if s.Time()+dt > tEnd {
			dt = tEnd - s.Time()
		}
		if dt <= 0 {
			return steps, fmt.Errorf("resilience: time step underflow at t=%v", s.Time())
		}
		if _, err := g.Step(dt); err != nil {
			return steps, fmt.Errorf("resilience: step %d at t=%v: %w", steps, s.Time(), err)
		}
		steps++
		if steps > 10_000_000 {
			return steps, fmt.Errorf("resilience: step budget exhausted at t=%v", s.Time())
		}
	}
	return steps, nil
}
