package resilience

import (
	"fmt"
	"io"

	"rhsc/internal/durable"
)

// DurableCheckpointer commits periodic checkpoints of a running
// simulation through a durable generation store, so a process death at
// any instant — including mid-checkpoint — leaves the newest fully
// committed generation recoverable. It pairs with the Guard: the Guard
// absorbs numerical faults inside the process, the checkpointer covers
// the faults that kill it.
type DurableCheckpointer struct {
	// Store is the generation store checkpoints commit into.
	Store *durable.Store
	// Name is the object name within the store (durable.ValidName).
	Name string
	// Every is the step interval between commits (<=0 disables Tick).
	Every int

	committed int
}

// Tick commits a checkpoint when step has crossed the interval since
// the last commit. save writes the checkpoint payload (typically
// Solver/Tree SaveExact); it runs only on committing ticks. Returns
// whether a commit happened.
func (d *DurableCheckpointer) Tick(step int, save func(w io.Writer) error) (bool, error) {
	if d.Every <= 0 || step == 0 || step%d.Every != 0 {
		return false, nil
	}
	if _, err := d.Store.Commit(d.Name, save); err != nil {
		return false, fmt.Errorf("resilience: durable checkpoint at step %d: %w", step, err)
	}
	d.committed++
	return true, nil
}

// Committed reports how many checkpoints Tick has committed.
func (d *DurableCheckpointer) Committed() int { return d.committed }

// RecoverLatest loads the newest fully-valid generation of name from a
// store in dir, handing the verified payload to restore. Corrupt
// generations are quarantined and skipped exactly as in Store.Load.
// Returns the generation recovered, or durable.ErrNotExist when no
// checkpoint was ever committed.
func RecoverLatest(fsys durable.FS, dir, name string, restore func(r io.Reader) error) (uint64, error) {
	st, err := durable.Open(fsys, dir, nil)
	if err != nil {
		return 0, err
	}
	return st.Load(name, restore)
}
