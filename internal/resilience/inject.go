package resilience

import (
	"math"

	"rhsc/internal/core"
	"rhsc/internal/state"
)

// Injector deterministically corrupts one conserved cell after a chosen
// committed step's update, before the guard's validation — modelling a
// transient soft fault (memory bit flip, device glitch) that the step
// guards must catch and repair. Because the guard restores its pre-step
// snapshot on violation, the corruption is transient: once Count
// attempts have been poisoned, the retried step runs clean and the
// simulation proceeds. Deterministic by construction — no randomness, so
// a faulted run is exactly reproducible.
type Injector struct {
	// AtStep is the guard's committed-step index (0-based) whose update
	// gets corrupted.
	AtStep int
	// Count is how many consecutive attempts of that step to poison
	// (default 1). Values above the guard's FirstOrderAfter force the
	// first-order fallback to engage; values above MaxRetries+1 exhaust
	// the budget and surface a *StepFailure.
	Count int
	// Cell is the flat grid index to poison; negative selects the domain
	// centre.
	Cell int
	// Unphysical injects a finite but inadmissible state (tau < 0)
	// instead of NaN, exercising the positivity branch of validation.
	Unphysical bool
	// InStage moves the corruption inside the step: the guard installs it
	// through core.Config.FaultHook so the poison lands after the first RK
	// stage's update, before validation or fail-safe detection — the
	// corruption a local repair can catch mid-step instead of a post-step
	// scan rejecting the whole update. Count still bounds how many
	// attempts of AtStep get poisoned.
	InStage bool

	fired int
}

// fire poisons the state if this (step, attempt) is scheduled; it
// reports whether it injected. In-stage injectors never fire here — the
// guard routes them through the solver's FaultHook instead.
func (in *Injector) fire(s *core.Solver, step int) bool {
	if in == nil || in.InStage || !in.eligible(step) {
		return false
	}
	in.poison(s)
	return true
}

// eligible reports whether this committed step still has poisoned
// attempts budgeted.
func (in *Injector) eligible(step int) bool {
	if in == nil || step != in.AtStep {
		return false
	}
	count := in.Count
	if count == 0 {
		count = 1
	}
	return in.fired < count
}

// poison corrupts the scheduled cell and consumes one attempt from the
// budget. Callers check eligible first.
func (in *Injector) poison(s *core.Solver) {
	in.fired++
	g := s.G
	idx := in.Cell
	if idx < 0 {
		idx = g.Idx((g.IBeg()+g.IEnd())/2, (g.JBeg()+g.JEnd())/2, (g.KBeg()+g.KEnd())/2)
	}
	if in.Unphysical {
		g.U.Comp[state.ITau][idx] = -1
	} else {
		g.U.Comp[state.ITau][idx] = math.NaN()
	}
}
