// Package newton implements a classical (non-relativistic) compressible
// Euler solver as the baseline the relativistic solver is compared
// against. It shares the reconstruction schemes, grids and boundary
// conditions with the SRHD core, but uses the Newtonian conserved
// variables (ρ, ρv, E), a closed-form primitive recovery, and the
// classical HLLC Riemann solver (Toro).
//
// Where the two solvers must agree — flows with v ≪ c and p ≪ ρc² — the
// tests verify they do; where relativity matters (relativistic internal
// energies or Lorentz factors) the baseline's shock speeds are wrong in a
// characteristic, measurable way, which is exactly the comparison the
// library's examples demonstrate.
//
// Component layout reuses state.Fields with the interpretation
// (ρ, m_x, m_y, m_z, E) for conserved and (ρ, v_x, v_y, v_z, p) for
// primitive fields.
package newton

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"rhsc/internal/grid"
	"rhsc/internal/recon"
	"rhsc/internal/state"
)

// Config selects the numerical method of the baseline solver.
type Config struct {
	Gamma float64      // adiabatic index
	Recon recon.Scheme // face reconstruction
	CFL   float64
	// Floors applied during recovery.
	RhoFloor, PFloor float64
}

// DefaultConfig mirrors the relativistic DefaultConfig: PLM-MC, CFL 0.4,
// Γ = 5/3.
func DefaultConfig() Config {
	return Config{
		Gamma:    5.0 / 3.0,
		Recon:    recon.PLM{Lim: recon.MonotonizedCentral},
		CFL:      0.4,
		RhoFloor: 1e-13,
		PFloor:   1e-15,
	}
}

// Solver advances the Euler equations on one grid with SSP-RK2.
type Solver struct {
	G   *grid.Grid
	Cfg Config

	t       float64
	rhs     *state.Fields
	u0      *state.Fields
	scratch sync.Pool
}

// New constructs the baseline solver.
func New(g *grid.Grid, cfg Config) (*Solver, error) {
	if cfg.Gamma <= 1 {
		return nil, fmt.Errorf("newton: gamma %v must exceed 1", cfg.Gamma)
	}
	if cfg.Recon == nil || cfg.CFL <= 0 || cfg.CFL > 1 {
		return nil, errors.New("newton: invalid Recon/CFL")
	}
	if g.Ng < cfg.Recon.Ghost() {
		return nil, fmt.Errorf("newton: ghost width %d below %d", g.Ng, cfg.Recon.Ghost())
	}
	maxRow := g.TotalX
	if g.TotalY > maxRow {
		maxRow = g.TotalY
	}
	if g.TotalZ > maxRow {
		maxRow = g.TotalZ
	}
	s := &Solver{G: g, Cfg: cfg,
		rhs: state.NewFields(g.NCells()),
		u0:  state.NewFields(g.NCells()),
	}
	s.scratch.New = func() any {
		rs := &rowScratch{}
		for c := 0; c < state.NComp; c++ {
			rs.u[c] = make([]float64, maxRow)
			rs.fl[c] = make([]float64, maxRow+1)
			rs.fr[c] = make([]float64, maxRow+1)
			rs.fx[c] = make([]float64, maxRow+1)
		}
		return rs
	}
	return s, nil
}

type rowScratch struct {
	u  [state.NComp][]float64
	fl [state.NComp][]float64
	fr [state.NComp][]float64
	fx [state.NComp][]float64
}

// Time returns the solution time.
func (s *Solver) Time() float64 { return s.t }

// primToCons converts (ρ, v, p) to (ρ, ρv, E).
func (s *Solver) primToCons(w state.Prim) state.Cons {
	v2 := w.Vx*w.Vx + w.Vy*w.Vy + w.Vz*w.Vz
	return state.Cons{
		D:   w.Rho,
		Sx:  w.Rho * w.Vx,
		Sy:  w.Rho * w.Vy,
		Sz:  w.Rho * w.Vz,
		Tau: w.P/(s.Cfg.Gamma-1) + 0.5*w.Rho*v2,
	}
}

// consToPrim inverts in closed form, applying floors.
func (s *Solver) consToPrim(c state.Cons) state.Prim {
	rho := c.D
	if rho < s.Cfg.RhoFloor {
		rho = s.Cfg.RhoFloor
	}
	inv := 1 / rho
	vx, vy, vz := c.Sx*inv, c.Sy*inv, c.Sz*inv
	kin := 0.5 * rho * (vx*vx + vy*vy + vz*vz)
	p := (s.Cfg.Gamma - 1) * (c.Tau - kin)
	if p < s.Cfg.PFloor {
		p = s.Cfg.PFloor
	}
	return state.Prim{Rho: rho, Vx: vx, Vy: vy, Vz: vz, P: p}
}

// InitFromPrim fills the grid and synchronises conserved variables.
func (s *Solver) InitFromPrim(fn func(x, y, z float64) state.Prim) {
	g := s.G
	g.ForEachInterior(func(idx, i, j, k int) {
		w := fn(g.X(i), g.Y(j), g.Z(k))
		if w.Rho <= 0 || w.P <= 0 {
			panic(fmt.Sprintf("newton: unphysical initial state %+v", w))
		}
		g.W.SetPrim(idx, w)
		g.U.SetCons(idx, s.primToCons(w))
	})
	g.ApplyBCs(g.W)
	g.ApplyBCs(g.U)
}

// recover refreshes primitives everywhere.
func (s *Solver) recover() {
	g := s.G
	g.ForEachInterior(func(idx, _, _, _ int) {
		g.W.SetPrim(idx, s.consToPrim(g.U.GetCons(idx)))
	})
	g.ApplyBCs(g.W)
}

// soundSpeed returns sqrt(Γ p / ρ).
func (s *Solver) soundSpeed(rho, p float64) float64 {
	return math.Sqrt(s.Cfg.Gamma * p / rho)
}

// MaxDt returns the CFL-limited step.
func (s *Solver) MaxDt() float64 {
	g := s.G
	maxSum := 0.0
	g.ForEachInterior(func(idx, _, _, _ int) {
		w := g.W.GetPrim(idx)
		cs := s.soundSpeed(w.Rho, w.P)
		sum := (math.Abs(w.Vx) + cs) / g.Dx
		if g.Ny > 1 {
			sum += (math.Abs(w.Vy) + cs) / g.Dy
		}
		if g.Nz > 1 {
			sum += (math.Abs(w.Vz) + cs) / g.Dz
		}
		if sum > maxSum {
			maxSum = sum
		}
	})
	if maxSum <= 0 {
		maxSum = 1 / g.Dx
	}
	return s.Cfg.CFL / maxSum
}

// flux returns the physical Euler flux along d for primitive w.
func (s *Solver) flux(w state.Prim, d state.Direction) state.Cons {
	c := s.primToCons(w)
	vd := w.V(d)
	f := state.Cons{
		D:   c.D * vd,
		Sx:  c.Sx * vd,
		Sy:  c.Sy * vd,
		Sz:  c.Sz * vd,
		Tau: (c.Tau + w.P) * vd,
	}
	switch d {
	case state.X:
		f.Sx += w.P
	case state.Y:
		f.Sy += w.P
	default:
		f.Sz += w.P
	}
	return f
}

// hllc is the classical HLLC solver (Toro, 10th chapter) along d.
func (s *Solver) hllc(wl, wr state.Prim, d state.Direction) state.Cons {
	vl, vr := wl.V(d), wr.V(d)
	cl := s.soundSpeed(wl.Rho, wl.P)
	cr := s.soundSpeed(wr.Rho, wr.P)
	sl := math.Min(vl-cl, vr-cr)
	sr := math.Max(vl+cl, vr+cr)
	switch {
	case sl >= 0:
		return s.flux(wl, d)
	case sr <= 0:
		return s.flux(wr, d)
	}
	ul := s.primToCons(wl)
	ur := s.primToCons(wr)
	ml, mr := ul.S(d), ur.S(d)
	// Contact speed.
	num := wr.P - wl.P + ml*(sl-vl) - mr*(sr-vr)
	den := wl.Rho*(sl-vl) - wr.Rho*(sr-vr)
	sstar := num / den
	pick := func(w state.Prim, u state.Cons, sk, vk float64) state.Cons {
		f := s.flux(w, d)
		coef := w.Rho * (sk - vk) / (sk - sstar)
		var ust state.Cons
		ust.D = coef
		ust.Sx = coef * w.Vx
		ust.Sy = coef * w.Vy
		ust.Sz = coef * w.Vz
		switch d {
		case state.X:
			ust.Sx = coef * sstar
		case state.Y:
			ust.Sy = coef * sstar
		default:
			ust.Sz = coef * sstar
		}
		e := u.Tau
		ust.Tau = coef * (e/w.Rho + (sstar-vk)*(sstar+w.P/(w.Rho*(sk-vk))))
		return state.Cons{
			D:   f.D + sk*(ust.D-u.D),
			Sx:  f.Sx + sk*(ust.Sx-u.Sx),
			Sy:  f.Sy + sk*(ust.Sy-u.Sy),
			Sz:  f.Sz + sk*(ust.Sz-u.Sz),
			Tau: f.Tau + sk*(ust.Tau-u.Tau),
		}
	}
	if sstar >= 0 {
		return pick(wl, ul, sl, vl)
	}
	return pick(wr, ur, sr, vr)
}

// computeRHS accumulates −∂F/∂x over all active dimensions.
func (s *Solver) computeRHS(rhs *state.Fields) {
	rhs.Zero()
	g := s.G
	for _, d := range g.ActiveDims() {
		switch d {
		case state.X:
			for k := g.KBeg(); k < g.KEnd(); k++ {
				for j := g.JBeg(); j < g.JEnd(); j++ {
					s.sweepRow(d, g.Idx(0, j, k), 1, g.TotalX, g.IBeg(), g.IEnd(), g.Dx, rhs)
				}
			}
		case state.Y:
			for k := g.KBeg(); k < g.KEnd(); k++ {
				for i := g.IBeg(); i < g.IEnd(); i++ {
					s.sweepRow(d, g.Idx(i, 0, k), g.TotalX, g.TotalY, g.JBeg(), g.JEnd(), g.Dy, rhs)
				}
			}
		default:
			for j := g.JBeg(); j < g.JEnd(); j++ {
				for i := g.IBeg(); i < g.IEnd(); i++ {
					s.sweepRow(d, g.Idx(i, j, 0), g.TotalX*g.TotalY, g.TotalZ, g.KBeg(), g.KEnd(), g.Dz, rhs)
				}
			}
		}
	}
}

func (s *Solver) sweepRow(d state.Direction, base, stride, n, cBeg, cEnd int, dx float64, rhs *state.Fields) {
	sc := s.scratch.Get().(*rowScratch)
	defer s.scratch.Put(sc)
	w := s.G.W
	for c := 0; c < state.NComp; c++ {
		dst := sc.u[c][:n]
		src := w.Comp[c]
		if stride == 1 {
			copy(dst, src[base:base+n])
		} else {
			idx := base
			for i := 0; i < n; i++ {
				dst[i] = src[idx]
				idx += stride
			}
		}
	}
	for c := 0; c < state.NComp; c++ {
		s.Cfg.Recon.Reconstruct(sc.u[c][:n], sc.fl[c][:n+1], sc.fr[c][:n+1])
	}
	for f := cBeg; f <= cEnd; f++ {
		wl := state.Prim{
			Rho: sc.fl[state.IRho][f], Vx: sc.fl[state.IVx][f],
			Vy: sc.fl[state.IVy][f], Vz: sc.fl[state.IVz][f], P: sc.fl[state.IP][f],
		}
		wr := state.Prim{
			Rho: sc.fr[state.IRho][f], Vx: sc.fr[state.IVx][f],
			Vy: sc.fr[state.IVy][f], Vz: sc.fr[state.IVz][f], P: sc.fr[state.IP][f],
		}
		if wl.Rho <= 0 || wl.P <= 0 {
			wl = state.Prim{
				Rho: sc.u[state.IRho][f-1], Vx: sc.u[state.IVx][f-1],
				Vy: sc.u[state.IVy][f-1], Vz: sc.u[state.IVz][f-1], P: sc.u[state.IP][f-1],
			}
		}
		if wr.Rho <= 0 || wr.P <= 0 {
			wr = state.Prim{
				Rho: sc.u[state.IRho][f], Vx: sc.u[state.IVx][f],
				Vy: sc.u[state.IVy][f], Vz: sc.u[state.IVz][f], P: sc.u[state.IP][f],
			}
		}
		fx := s.hllc(wl, wr, d)
		sc.fx[state.ID][f] = fx.D
		sc.fx[state.ISx][f] = fx.Sx
		sc.fx[state.ISy][f] = fx.Sy
		sc.fx[state.ISz][f] = fx.Sz
		sc.fx[state.ITau][f] = fx.Tau
	}
	invDx := 1 / dx
	for c := 0; c < state.NComp; c++ {
		fxc := sc.fx[c]
		out := rhs.Comp[c]
		idx := base + cBeg*stride
		for i := cBeg; i < cEnd; i++ {
			out[idx] -= (fxc[i+1] - fxc[i]) * invDx
			idx += stride
		}
	}
}

// Step advances by dt with SSP RK2.
func (s *Solver) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("newton: non-positive dt %v", dt)
	}
	u := s.G.U
	s.u0.CopyFrom(u)
	s.computeRHS(s.rhs)
	u.AXPY(dt, s.rhs)
	s.recover()
	s.computeRHS(s.rhs)
	u.AXPY(dt, s.rhs)
	u.LinComb2(0.5, s.u0, 0.5, u)
	s.recover()
	s.t += dt
	return nil
}

// Advance integrates to tEnd.
func (s *Solver) Advance(tEnd float64) (int, error) {
	steps := 0
	for s.t < tEnd-1e-14 {
		dt := s.MaxDt()
		if s.t+dt > tEnd {
			dt = tEnd - s.t
		}
		if err := s.Step(dt); err != nil {
			return steps, err
		}
		steps++
		if steps > 10_000_000 {
			return steps, errors.New("newton: step budget exhausted")
		}
	}
	return steps, nil
}
