package newton

import (
	"math"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/eos"
	"rhsc/internal/grid"
	"rhsc/internal/state"
)

func grid1D(n int) *grid.Grid {
	g := grid.New(grid.Geometry{Nx: n, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Outflow)
	return g
}

func TestNewValidation(t *testing.T) {
	g := grid1D(16)
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.Gamma = 1; return c }(),
		func() Config { c := DefaultConfig(); c.CFL = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(g, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(g, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestConsToPrimRoundTrip(t *testing.T) {
	g := grid1D(8)
	s, _ := New(g, DefaultConfig())
	w := state.Prim{Rho: 2.5, Vx: 0.3, Vy: -0.1, Vz: 0.05, P: 1.4}
	got := s.consToPrim(s.primToCons(w))
	if math.Abs(got.Rho-w.Rho) > 1e-14 || math.Abs(got.P-w.P) > 1e-13 ||
		math.Abs(got.Vx-w.Vx) > 1e-14 {
		t.Errorf("round trip %+v -> %+v", w, got)
	}
}

// The classical Sod tube (Γ = 1.4): published exact values are
// p* = 0.30313 and v* = 0.92745; the plateau of the numerical solution
// must land there.
func TestClassicalSod(t *testing.T) {
	g := grid1D(400)
	cfg := DefaultConfig()
	cfg.Gamma = 1.4
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		if x < 0.5 {
			return state.Prim{Rho: 1, P: 1}
		}
		return state.Prim{Rho: 0.125, P: 0.1}
	})
	if _, err := s.Advance(0.2); err != nil {
		t.Fatal(err)
	}
	// Sample the star region (between contact ~0.69 and shock ~0.85 at
	// t=0.2... contact at x = 0.5 + 0.927*0.2*...): sample x = 0.7.
	i := g.IBeg() + int(0.70/g.Dx)
	p := g.W.Comp[state.IP][i]
	v := g.W.Comp[state.IVx][i]
	if math.Abs(p-0.30313) > 0.01 {
		t.Errorf("star pressure %v, want 0.30313", p)
	}
	if math.Abs(v-0.92745) > 0.02 {
		t.Errorf("star velocity %v, want 0.92745", v)
	}
}

func TestConservationPeriodic(t *testing.T) {
	g := grid.New(grid.Geometry{Nx: 64, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Periodic)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		return state.Prim{Rho: 1 + 0.3*math.Sin(2*math.Pi*x), Vx: 0.4, P: 1}
	})
	m0, e0 := g.TotalMass(), 0.0
	g.ForEachInterior(func(idx, _, _, _ int) { e0 += g.U.Comp[state.ITau][idx] })
	if _, err := s.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	m1, e1 := g.TotalMass(), 0.0
	g.ForEachInterior(func(idx, _, _, _ int) { e1 += g.U.Comp[state.ITau][idx] })
	if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
		t.Errorf("mass drift %v", rel)
	}
	if rel := math.Abs(e1-e0) / e0; rel > 1e-12 {
		t.Errorf("energy drift %v", rel)
	}
}

// In the non-relativistic limit (v ≪ 1, p ≪ ρ) the Newtonian baseline and
// the relativistic solver must agree on the full profile.
func TestMatchesRelativisticInNewtonianLimit(t *testing.T) {
	const n = 256
	const scale = 1e-6 // pressures scaled so cs ~ 1e-3
	init := func(x, _, _ float64) state.Prim {
		if x < 0.5 {
			return state.Prim{Rho: 1, P: 1 * scale}
		}
		return state.Prim{Rho: 0.125, P: 0.1 * scale}
	}
	tEnd := 0.2 / math.Sqrt(scale) // rescale time so the waves move O(domain)

	gn := grid1D(n)
	cfgN := DefaultConfig()
	cfgN.Gamma = 1.4
	ns, err := New(gn, cfgN)
	if err != nil {
		t.Fatal(err)
	}
	ns.InitFromPrim(init)
	if _, err := ns.Advance(tEnd); err != nil {
		t.Fatal(err)
	}

	gr := grid1D(n)
	cfgR := core.DefaultConfig()
	cfgR.EOS = eos.NewIdealGas(1.4)
	rs, err := core.New(gr, cfgR)
	if err != nil {
		t.Fatal(err)
	}
	rs.InitFromPrim(init)
	if _, err := rs.Advance(tEnd); err != nil {
		t.Fatal(err)
	}

	l1, norm := 0.0, 0.0
	for i := gn.IBeg(); i < gn.IEnd(); i++ {
		l1 += math.Abs(gn.W.Comp[state.IRho][i] - gr.W.Comp[state.IRho][i])
		norm += math.Abs(gr.W.Comp[state.IRho][i])
	}
	if rel := l1 / norm; rel > 2e-3 {
		t.Errorf("Newtonian limit mismatch: relative L1 = %v", rel)
	}
}

// In the relativistic regime the baseline must diverge measurably: the
// blast-wave shock position differs between the two solvers — the
// physics argument for building the relativistic solver at all.
func TestDivergesInRelativisticRegime(t *testing.T) {
	const n = 400
	init := func(x, _, _ float64) state.Prim {
		if x < 0.5 {
			return state.Prim{Rho: 1, P: 1000}
		}
		return state.Prim{Rho: 1, P: 0.01}
	}
	shockPos := func(rho []float64, g *grid.Grid) float64 {
		best, bestG := 0.0, 0.0
		for i := g.IBeg() + 1; i < g.IEnd(); i++ {
			if d := math.Abs(rho[i] - rho[i-1]); d > bestG {
				bestG, best = d, g.X(i)
			}
		}
		return best
	}

	// The Newtonian shock moves at ~20 (superluminal!), so only a short
	// time keeps it inside the unit domain.
	const tEnd = 0.01
	gn := grid1D(n)
	ns, _ := New(gn, DefaultConfig())
	ns.InitFromPrim(init)
	if _, err := ns.Advance(tEnd); err != nil {
		t.Fatal(err)
	}

	gr := grid1D(n)
	rs, _ := core.New(gr, core.DefaultConfig())
	rs.InitFromPrim(init)
	if _, err := rs.Advance(tEnd); err != nil {
		t.Fatal(err)
	}

	xn := shockPos(gn.W.Comp[state.IRho], gn)
	xr := shockPos(gr.W.Comp[state.IRho], gr)
	// The relativistic shock must be causal; the Newtonian one races
	// ahead superluminally — the physics argument for the SR solver.
	if xr > 0.5+tEnd+0.01 {
		t.Errorf("relativistic shock at %v is acausal", xr)
	}
	if xn-xr < 0.05 {
		t.Errorf("baseline shock at %v not measurably ahead of relativistic %v", xn, xr)
	}
}

// Reflecting walls conserve mass in the baseline too.
func TestReflectingWalls(t *testing.T) {
	g := grid1D(64)
	g.SetAllBCs(grid.Reflect)
	s, _ := New(g, DefaultConfig())
	s.InitFromPrim(func(x, _, _ float64) state.Prim {
		return state.Prim{Rho: 1, Vx: -0.3, P: 0.5}
	})
	m0 := g.TotalMass()
	if _, err := s.Advance(0.4); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(g.TotalMass()-m0) / m0; rel > 1e-11 {
		t.Errorf("mass drift %v", rel)
	}
}

// 2-D blast keeps quadrant symmetry in the baseline.
func Test2DSymmetry(t *testing.T) {
	n := 32
	g := grid.New(grid.Geometry{Nx: n, Ny: n, Nz: 1, Ng: 2, X0: -1, X1: 1, Y0: -1, Y1: 1})
	g.SetAllBCs(grid.Outflow)
	s, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(func(x, y, _ float64) state.Prim {
		if x*x+y*y < 0.08 {
			return state.Prim{Rho: 1, P: 10}
		}
		return state.Prim{Rho: 1, P: 0.1}
	})
	for i := 0; i < 8; i++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	for j := g.JBeg(); j < g.JEnd(); j++ {
		for i := g.IBeg(); i < g.IEnd(); i++ {
			mi := g.IBeg() + g.IEnd() - 1 - i
			a := g.W.Comp[state.IRho][g.Idx(i, j, g.KBeg())]
			b := g.W.Comp[state.IRho][g.Idx(mi, j, g.KBeg())]
			if math.Abs(a-b) > 1e-10 {
				t.Fatalf("asymmetry at (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	g := grid1D(16)
	s, _ := New(g, DefaultConfig())
	if err := s.Step(0); err == nil {
		t.Error("dt=0 accepted")
	}
}
