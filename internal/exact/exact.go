// Package exact implements the exact Riemann solver for one-dimensional
// special relativistic hydrodynamics with an ideal-gas equation of state
// and vanishing transverse velocities, following Martí & Müller (J. Fluid
// Mech. 258, 1994; Living Reviews in Relativity, 2003).
//
// The solution of the Riemann problem consists of a left-going wave (shock
// or rarefaction), a contact discontinuity, and a right-going wave. The
// solver finds the star pressure p* at which the flow velocities behind the
// two outer waves agree, then samples the self-similar solution at any
// ξ = x/t. It provides the reference profiles and L1 errors for the
// validation experiments (E1, E2).
package exact

import (
	"errors"
	"fmt"
	"math"

	"rhsc/internal/mathutil"
)

// State is a 1-D primitive hydrodynamic state.
type State struct {
	Rho float64 // rest-mass density
	V   float64 // velocity
	P   float64 // pressure
}

// WaveKind labels an outer wave of the Riemann fan.
type WaveKind int

// Wave kinds.
const (
	Shock WaveKind = iota
	Rarefaction
)

// String implements fmt.Stringer.
func (w WaveKind) String() string {
	if w == Shock {
		return "shock"
	}
	return "rarefaction"
}

// Solution is a solved Riemann problem, ready for sampling.
type Solution struct {
	Gamma float64 // adiabatic index
	L, R  State   // input states

	Pstar float64 // pressure in the star region
	Vstar float64 // velocity of the contact discontinuity

	LeftWave  WaveKind
	RightWave WaveKind

	RhoStarL float64 // density left of the contact
	RhoStarR float64 // density right of the contact

	// Wave speeds: for shocks the single speed; for rarefactions the head
	// and tail speeds (head is the edge adjacent to the unperturbed state).
	LeftSpeed  float64 // shock speed (left wave, if shock)
	LeftHead   float64 // rarefaction head (if rarefaction)
	LeftTail   float64
	RightSpeed float64
	RightHead  float64
	RightTail  float64
}

type gas struct{ gamma float64 }

func (g gas) soundSpeed(rho, p float64) float64 {
	h := 1 + g.gamma/(g.gamma-1)*p/rho
	return math.Sqrt(g.gamma * p / (rho * h))
}

func (g gas) enthalpy(rho, p float64) float64 {
	return 1 + g.gamma/(g.gamma-1)*p/rho
}

// isentropeRho returns the density at pressure p on the isentrope through
// (rho0, p0).
func (g gas) isentropeRho(rho0, p0, p float64) float64 {
	return rho0 * math.Pow(p/p0, 1/g.gamma)
}

// phi is the rarefaction invariant term Φ(c) = (2/√(Γ−1)) atanh(c/√(Γ−1)).
func (g gas) phi(cs float64) float64 {
	s := math.Sqrt(g.gamma - 1)
	return 2 / s * math.Atanh(cs/s)
}

// taubH solves the Taub adiabat for the post-shock enthalpy given the
// pre-shock state (rho, p, h) and post-shock pressure pb > p:
//
//	h̄² − h² = (h̄/ρ̄ + h/ρ)(p̄ − p),  ρ̄ = Γ p̄ (h̄ − 1)⁻¹/(Γ−1)⁻¹ …
//
// substituting the ideal-gas ρ̄ gives a quadratic in h̄ whose positive root
// is returned.
func (g gas) taubH(rho, p, pb float64) float64 {
	h := g.enthalpy(rho, p)
	a := (g.gamma - 1) * (pb - p) / (g.gamma * pb)
	// h̄² − a·h̄ + (a − (p̄−p)h/ρ − h²)·... derive: h̄/ρ̄ = a(h̄−1)/(p̄−p)·...
	// From ρ̄ = Γ p̄ / ((Γ−1)(h̄−1)):  h̄/ρ̄ = (Γ−1) h̄ (h̄−1) / (Γ p̄).
	// Taub: h̄² − h² = [ (Γ−1) h̄ (h̄−1)/(Γ p̄) + h/ρ ] (p̄ − p)
	//  ⇒ (1 − a) h̄² + a h̄ − (h² + (p̄−p) h/ρ) = 0.
	A := 1 - a
	B := a
	C := -(h*h + (pb-p)*h/rho)
	disc := B*B - 4*A*C
	if disc < 0 {
		disc = 0
	}
	return (-B + math.Sqrt(disc)) / (2 * A)
}

// shockWave returns the post-shock flow velocity and the shock speed for a
// wave on side sign (−1 left, +1 right) with post pressure pb > p.
func (g gas) shockWave(s State, pb, sign float64) (vbar, vshock float64, err error) {
	h := g.enthalpy(s.Rho, s.P)
	hb := g.taubH(s.Rho, s.P, pb)
	if hb <= 1 {
		return 0, 0, fmt.Errorf("exact: Taub adiabat gave h=%v", hb)
	}
	rhob := g.gamma * pb / ((g.gamma - 1) * (hb - 1))
	den := h/s.Rho - hb/rhob
	if den <= 0 {
		return 0, 0, fmt.Errorf("exact: non-compressive shock branch (pb=%v)", pb)
	}
	j := math.Sqrt((pb - s.P) / den) // mass-flux magnitude
	w := 1 / math.Sqrt(1-s.V*s.V)
	a2 := s.Rho * s.Rho * w * w
	root := math.Sqrt(a2*(1-s.V*s.V) + j*j)
	vshock = (a2*s.V + sign*j*root) / (a2 + j*j)
	if vshock <= -1 || vshock >= 1 {
		return 0, 0, fmt.Errorf("exact: acausal shock speed %v", vshock)
	}

	// Post-shock velocity from mass conservation across the shock:
	// ρ̄ W̄ (v̄ − V_s) = ρ W (v − V_s) = q, a quadratic in v̄; pick the root
	// that also satisfies the momentum jump condition.
	q := s.Rho * w * (s.V - vshock)
	aa := rhob * rhob
	qq := q * q
	disc := qq * (aa*(1-vshock*vshock) + qq)
	if disc < 0 {
		disc = 0
	}
	sq := math.Sqrt(disc)
	cand := []float64{
		(aa*vshock + sq) / (aa + qq),
		(aa*vshock - sq) / (aa + qq),
	}
	// Momentum jump: ρ h W² v (v − V_s) + p must be continuous.
	mom := func(rho, p, v float64) float64 {
		ww := 1 / (1 - v*v)
		hh := g.enthalpy(rho, p)
		return rho*hh*ww*v*(v-vshock) + p
	}
	want := mom(s.Rho, s.P, s.V)
	best, bestErr := math.NaN(), math.Inf(1)
	for _, v := range cand {
		if v <= -1 || v >= 1 || math.IsNaN(v) {
			continue
		}
		if e := math.Abs(mom(rhob, pb, v) - want); e < bestErr {
			best, bestErr = v, e
		}
	}
	if math.IsNaN(best) {
		return 0, 0, fmt.Errorf("exact: no causal post-shock velocity (pb=%v)", pb)
	}
	if bestErr > 1e-6*(1+math.Abs(want)) {
		return 0, 0, fmt.Errorf("exact: momentum jump residual %v at pb=%v", bestErr, pb)
	}
	return best, vshock, nil
}

// rarefactionV returns the flow velocity behind a rarefaction on side sign
// (−1 left, +1 right) with post pressure pb < p, using the exact ideal-gas
// Riemann invariant J∓ = atanh(v) ± Φ(c_s).
func (g gas) rarefactionV(s State, pb, sign float64) float64 {
	cs0 := g.soundSpeed(s.Rho, s.P)
	rhob := g.isentropeRho(s.Rho, s.P, pb)
	csb := g.soundSpeed(rhob, pb)
	// Left wave (sign=−1) conserves J+ = atanh(v) + Φ(c); right wave
	// conserves J− = atanh(v) − Φ(c).
	return math.Tanh(math.Atanh(s.V) - sign*(g.phi(cs0)-g.phi(csb)))
}

// velocityBehind returns the flow velocity behind the outer wave on the
// given side for candidate star pressure pb.
func (g gas) velocityBehind(s State, pb, sign float64) (float64, error) {
	if pb > s.P {
		v, _, err := g.shockWave(s, pb, sign)
		return v, err
	}
	return g.rarefactionV(s, pb, sign), nil
}

// ErrVacuum is returned when the two states separate fast enough that a
// vacuum region forms and no star pressure exists.
var ErrVacuum = errors.New("exact: vacuum formation, no star state")

// Solve computes the exact solution of the Riemann problem with left and
// right states l, r and adiabatic index gamma.
func Solve(l, r State, gamma float64) (*Solution, error) {
	if gamma <= 1 || gamma > 2 {
		return nil, fmt.Errorf("exact: adiabatic index %v outside (1,2]", gamma)
	}
	for _, s := range []State{l, r} {
		if s.Rho <= 0 || s.P <= 0 || math.Abs(s.V) >= 1 {
			return nil, fmt.Errorf("exact: inadmissible state %+v", s)
		}
	}
	g := gas{gamma}

	// f(p) = vL̄(p) − vR̄(p): strictly decreasing; root is p*.
	f := func(p float64) (float64, error) {
		vl, err := g.velocityBehind(l, p, -1)
		if err != nil {
			return 0, err
		}
		vr, err := g.velocityBehind(r, p, +1)
		if err != nil {
			return 0, err
		}
		return vl - vr, nil
	}

	// Bracket the root: expand from [tiny, max(pL,pR)] until f changes sign.
	pLo := 1e-14 * math.Min(l.P, r.P)
	pHi := math.Max(l.P, r.P)
	fLo, err := f(pLo)
	if err != nil {
		return nil, err
	}
	if fLo <= 0 {
		// Even at (near-)zero pressure the sides separate: vacuum.
		return nil, ErrVacuum
	}
	var fHi float64
	for k := 0; ; k++ {
		fHi, err = f(pHi)
		if err != nil {
			return nil, err
		}
		if fHi < 0 {
			break
		}
		pHi *= 8
		if k > 100 {
			return nil, errors.New("exact: failed to bracket star pressure")
		}
	}
	pstar, err := mathutil.Brent(func(p float64) float64 {
		v, e := f(p)
		if e != nil {
			// Brent cannot propagate errors; an inadmissible evaluation in
			// the interior of a valid bracket indicates a broken branch.
			panic(e)
		}
		return v
	}, pLo, pHi, 1e-14*pHi, 200)
	if err != nil {
		return nil, fmt.Errorf("exact: pressure iteration: %w", err)
	}

	sol := &Solution{Gamma: gamma, L: l, R: r, Pstar: pstar}
	vstar, err := g.velocityBehind(l, pstar, -1)
	if err != nil {
		return nil, err
	}
	sol.Vstar = vstar

	// Left wave structure.
	if pstar > l.P {
		sol.LeftWave = Shock
		_, vs, err := g.shockWave(l, pstar, -1)
		if err != nil {
			return nil, err
		}
		sol.LeftSpeed = vs
		hb := g.taubH(l.Rho, l.P, pstar)
		sol.RhoStarL = gamma * pstar / ((gamma - 1) * (hb - 1))
	} else {
		sol.LeftWave = Rarefaction
		sol.RhoStarL = g.isentropeRho(l.Rho, l.P, pstar)
		cs0 := g.soundSpeed(l.Rho, l.P)
		csb := g.soundSpeed(sol.RhoStarL, pstar)
		sol.LeftHead = (l.V - cs0) / (1 - l.V*cs0)
		sol.LeftTail = (vstar - csb) / (1 - vstar*csb)
	}

	// Right wave structure.
	if pstar > r.P {
		sol.RightWave = Shock
		_, vs, err := g.shockWave(r, pstar, +1)
		if err != nil {
			return nil, err
		}
		sol.RightSpeed = vs
		hb := g.taubH(r.Rho, r.P, pstar)
		sol.RhoStarR = gamma * pstar / ((gamma - 1) * (hb - 1))
	} else {
		sol.RightWave = Rarefaction
		sol.RhoStarR = g.isentropeRho(r.Rho, r.P, pstar)
		cs0 := g.soundSpeed(r.Rho, r.P)
		csb := g.soundSpeed(sol.RhoStarR, pstar)
		sol.RightHead = (r.V + cs0) / (1 + r.V*cs0)
		sol.RightTail = (vstar + csb) / (1 + vstar*csb)
	}
	return sol, nil
}

// insideFan solves for the state inside a rarefaction fan at similarity
// coordinate xi. sign is −1 for the left fan, +1 for the right fan.
func (s *Solution) insideFan(st State, xi, sign float64) State {
	g := gas{s.Gamma}
	// The fan state at xi satisfies (v ∓ c)/(1 ∓ v c) = xi together with
	// the Riemann invariant through st. Solve for p by bisection between
	// pstar and the outer pressure.
	lo, hi := s.Pstar, st.P
	if lo > hi {
		lo, hi = hi, lo
	}
	eval := func(p float64) (State, float64) {
		rho := g.isentropeRho(st.Rho, st.P, p)
		cs := g.soundSpeed(rho, p)
		v := math.Tanh(math.Atanh(st.V) - sign*(g.phi(g.soundSpeed(st.Rho, st.P))-g.phi(cs)))
		var char float64
		if sign < 0 {
			char = (v - cs) / (1 - v*cs)
		} else {
			char = (v + cs) / (1 + v*cs)
		}
		return State{Rho: rho, V: v, P: p}, char - xi
	}
	for k := 0; k < 100; k++ {
		mid := 0.5 * (lo + hi)
		_, r := eval(mid)
		// The characteristic speed decreases with p in the left fan and
		// increases with p in the right fan, so a positive residual means
		// "p too small" on the left and "p too large" on the right.
		if (sign > 0) == (r > 0) {
			hi = mid
		} else {
			lo = mid
		}
	}
	st2, _ := eval(0.5 * (lo + hi))
	return st2
}

// Sample returns the exact state at similarity coordinate xi = x/t.
func (s *Solution) Sample(xi float64) State {
	// Left of the left wave.
	switch s.LeftWave {
	case Shock:
		if xi <= s.LeftSpeed {
			return s.L
		}
	case Rarefaction:
		if xi <= s.LeftHead {
			return s.L
		}
		if xi < s.LeftTail {
			return s.insideFan(s.L, xi, -1)
		}
	}
	// Right of the right wave.
	switch s.RightWave {
	case Shock:
		if xi >= s.RightSpeed {
			return s.R
		}
	case Rarefaction:
		if xi >= s.RightHead {
			return s.R
		}
		if xi > s.RightTail {
			return s.insideFan(s.R, xi, +1)
		}
	}
	// Star region, split by the contact.
	if xi < s.Vstar {
		return State{Rho: s.RhoStarL, V: s.Vstar, P: s.Pstar}
	}
	return State{Rho: s.RhoStarR, V: s.Vstar, P: s.Pstar}
}

// SampleProfile evaluates the solution at time t on the cell centers xs
// with the initial discontinuity at x0.
func (s *Solution) SampleProfile(xs []float64, x0, t float64) []State {
	out := make([]State, len(xs))
	for i, x := range xs {
		if t <= 0 {
			if x < x0 {
				out[i] = s.L
			} else {
				out[i] = s.R
			}
			continue
		}
		out[i] = s.Sample((x - x0) / t)
	}
	return out
}
