package exact

import (
	"math"
	"math/rand"
	"testing"
)

// Martí & Müller Problem 1 (the relativistic Sod tube): Γ = 5/3,
// L = (10, 0, 13.33), R = (1, 0, 1e-6). Published solution:
// p* ≈ 1.448, v* ≈ 0.714, left rarefaction + right shock, shock speed
// ≈ 0.828 (Martí & Müller 2003, Table; also Lora-Clavijo et al. 2013).
func TestProblem1MartiMuller(t *testing.T) {
	sol, err := Solve(State{Rho: 10, V: 0, P: 13.33}, State{Rho: 1, V: 0, P: 1e-6}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.LeftWave != Rarefaction || sol.RightWave != Shock {
		t.Fatalf("wave structure = %v/%v, want rarefaction/shock", sol.LeftWave, sol.RightWave)
	}
	if math.Abs(sol.Pstar-1.448) > 0.01 {
		t.Errorf("p* = %v, want 1.448", sol.Pstar)
	}
	if math.Abs(sol.Vstar-0.714) > 0.005 {
		t.Errorf("v* = %v, want 0.714", sol.Vstar)
	}
	if math.Abs(sol.RightSpeed-0.828) > 0.005 {
		t.Errorf("shock speed = %v, want 0.828", sol.RightSpeed)
	}
	// Shocked density (published: ρ ≈ 5.0 behind the shock is for
	// different setup; check consistency instead: compression ratio > 1).
	if sol.RhoStarR <= 1 {
		t.Errorf("right star density %v not compressed", sol.RhoStarR)
	}
}

// Martí & Müller Problem 2 (relativistic blast wave): Γ = 5/3,
// L = (1, 0, 1000), R = (1, 0, 0.01). Published: p* ≈ 18.6, v* ≈ 0.960,
// shock speed ≈ 0.986, a thin dense shell behind the shock.
func TestProblem2BlastWave(t *testing.T) {
	sol, err := Solve(State{Rho: 1, V: 0, P: 1000}, State{Rho: 1, V: 0, P: 0.01}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.LeftWave != Rarefaction || sol.RightWave != Shock {
		t.Fatalf("wave structure = %v/%v", sol.LeftWave, sol.RightWave)
	}
	if math.Abs(sol.Pstar-18.6) > 0.2 {
		t.Errorf("p* = %v, want 18.6", sol.Pstar)
	}
	if math.Abs(sol.Vstar-0.960) > 0.002 {
		t.Errorf("v* = %v, want 0.960", sol.Vstar)
	}
	if math.Abs(sol.RightSpeed-0.986) > 0.002 {
		t.Errorf("shock speed = %v, want 0.986", sol.RightSpeed)
	}
}

// Symmetric double shock: two streams colliding head-on must give a
// symmetric fan with v* = 0 and two shocks.
func TestSymmetricCollision(t *testing.T) {
	sol, err := Solve(State{Rho: 1, V: 0.9, P: 1}, State{Rho: 1, V: -0.9, P: 1}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.LeftWave != Shock || sol.RightWave != Shock {
		t.Fatalf("wave structure = %v/%v, want shock/shock", sol.LeftWave, sol.RightWave)
	}
	if math.Abs(sol.Vstar) > 1e-8 {
		t.Errorf("v* = %v, want 0", sol.Vstar)
	}
	if sol.Pstar <= 1 {
		t.Errorf("p* = %v must exceed inflow pressure", sol.Pstar)
	}
	if math.Abs(sol.LeftSpeed+sol.RightSpeed) > 1e-8 {
		t.Errorf("shock speeds not symmetric: %v, %v", sol.LeftSpeed, sol.RightSpeed)
	}
	if math.Abs(sol.RhoStarL-sol.RhoStarR) > 1e-8 {
		t.Errorf("star densities not symmetric: %v, %v", sol.RhoStarL, sol.RhoStarR)
	}
}

// Symmetric double rarefaction: receding streams.
func TestSymmetricRarefactions(t *testing.T) {
	sol, err := Solve(State{Rho: 1, V: -0.3, P: 1}, State{Rho: 1, V: 0.3, P: 1}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.LeftWave != Rarefaction || sol.RightWave != Rarefaction {
		t.Fatalf("wave structure = %v/%v", sol.LeftWave, sol.RightWave)
	}
	if math.Abs(sol.Vstar) > 1e-8 {
		t.Errorf("v* = %v, want 0", sol.Vstar)
	}
	if sol.Pstar >= 1 {
		t.Errorf("p* = %v must be below inflow pressure", sol.Pstar)
	}
}

// Trivial Riemann problem: identical states must return that state
// everywhere.
func TestTrivialProblem(t *testing.T) {
	s := State{Rho: 2, V: 0.4, P: 3}
	sol, err := Solve(s, s, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Pstar-3) > 1e-8 || math.Abs(sol.Vstar-0.4) > 1e-8 {
		t.Errorf("star state (%v, %v), want (3, 0.4)", sol.Pstar, sol.Vstar)
	}
	for _, xi := range []float64{-0.9, -0.1, 0.4, 0.8} {
		got := sol.Sample(xi)
		if math.Abs(got.Rho-2) > 1e-6 || math.Abs(got.P-3) > 1e-6 || math.Abs(got.V-0.4) > 1e-6 {
			t.Errorf("Sample(%v) = %+v", xi, got)
		}
	}
}

// Sampling sanity for Problem 1: monotone pressure through the left fan,
// plateau in the star region, exact states outside the waves.
func TestSampleProblem1Structure(t *testing.T) {
	l := State{Rho: 10, V: 0, P: 13.33}
	r := State{Rho: 1, V: 0, P: 1e-6}
	sol, err := Solve(l, r, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	// Outside the fan.
	if got := sol.Sample(sol.LeftHead - 0.01); got != l {
		t.Errorf("left of fan: %+v", got)
	}
	if got := sol.Sample(sol.RightSpeed + 0.01); got != r {
		t.Errorf("right of shock: %+v", got)
	}
	// Inside the fan: pressure decreases monotonically with xi.
	prev := math.Inf(1)
	for xi := sol.LeftHead + 1e-6; xi < sol.LeftTail; xi += (sol.LeftTail - sol.LeftHead) / 50 {
		st := sol.Sample(xi)
		if st.P > prev+1e-10 {
			t.Fatalf("fan pressure not monotone at xi=%v: %v > %v", xi, st.P, prev)
		}
		if st.P < sol.Pstar-1e-8 || st.P > l.P+1e-8 {
			t.Fatalf("fan pressure %v outside [p*, pL]", st.P)
		}
		prev = st.P
	}
	// Fan endpoints match the adjacent states.
	head := sol.Sample(sol.LeftHead + 1e-9)
	if math.Abs(head.P-l.P)/l.P > 1e-3 {
		t.Errorf("fan head pressure %v, want %v", head.P, l.P)
	}
	tail := sol.Sample(sol.LeftTail - 1e-9)
	if math.Abs(tail.P-sol.Pstar)/sol.Pstar > 1e-3 {
		t.Errorf("fan tail pressure %v, want %v", tail.P, sol.Pstar)
	}
	// Star region on both sides of the contact.
	mid := sol.Sample(0.5 * (sol.LeftTail + sol.Vstar))
	if math.Abs(mid.P-sol.Pstar) > 1e-8 || math.Abs(mid.V-sol.Vstar) > 1e-8 {
		t.Errorf("left star sample %+v", mid)
	}
	if math.Abs(mid.Rho-sol.RhoStarL) > 1e-8 {
		t.Errorf("left star density %v, want %v", mid.Rho, sol.RhoStarL)
	}
	midR := sol.Sample(0.5 * (sol.Vstar + sol.RightSpeed))
	if math.Abs(midR.Rho-sol.RhoStarR) > 1e-8 {
		t.Errorf("right star density %v, want %v", midR.Rho, sol.RhoStarR)
	}
}

// The contact discontinuity must carry a density jump but continuous
// pressure and velocity.
func TestContactJumpConditions(t *testing.T) {
	sol, err := Solve(State{Rho: 10, V: 0, P: 13.33}, State{Rho: 1, V: 0, P: 1e-6}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.RhoStarL-sol.RhoStarR) < 1e-3 {
		t.Error("contact carries no density jump")
	}
}

// Wave ordering: every speed must be causal and properly ordered
// left-to-right.
func TestWaveOrdering(t *testing.T) {
	cases := []struct{ l, r State }{
		{State{10, 0, 13.33}, State{1, 0, 1e-6}},
		{State{1, 0, 1000}, State{1, 0, 0.01}},
		{State{1, 0.9, 1}, State{1, -0.9, 1}},
		{State{1, -0.3, 1}, State{1, 0.3, 1}},
		{State{5, 0.5, 10}, State{1, -0.5, 0.1}},
	}
	for _, c := range cases {
		sol, err := Solve(c.l, c.r, 5.0/3.0)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		var leftEdge, rightEdge float64
		if sol.LeftWave == Shock {
			leftEdge = sol.LeftSpeed
		} else {
			leftEdge = sol.LeftTail
			if sol.LeftHead > sol.LeftTail+1e-12 {
				t.Errorf("%+v: left fan inverted: head %v > tail %v", c, sol.LeftHead, sol.LeftTail)
			}
		}
		if sol.RightWave == Shock {
			rightEdge = sol.RightSpeed
		} else {
			rightEdge = sol.RightTail
			if sol.RightHead < sol.RightTail-1e-12 {
				t.Errorf("%+v: right fan inverted: head %v < tail %v", c, sol.RightHead, sol.RightTail)
			}
		}
		if !(leftEdge <= sol.Vstar+1e-10 && sol.Vstar <= rightEdge+1e-10) {
			t.Errorf("%+v: wave ordering broken: %v, %v, %v", c, leftEdge, sol.Vstar, rightEdge)
		}
		for _, v := range []float64{leftEdge, rightEdge, sol.Vstar} {
			if math.Abs(v) >= 1 {
				t.Errorf("%+v: acausal speed %v", c, v)
			}
		}
	}
}

// Property test over random admissible states: the star pressure must
// equalise the velocities behind both waves, waves must be ordered and
// causal, and sampling must be piecewise-consistent with the star state.
func TestRandomRiemannProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	solved := 0
	for trial := 0; trial < 500; trial++ {
		l := State{
			Rho: math.Exp(rng.Float64()*6 - 3),
			V:   1.6*rng.Float64() - 0.8,
			P:   math.Exp(rng.Float64()*6 - 3),
		}
		r := State{
			Rho: math.Exp(rng.Float64()*6 - 3),
			V:   1.6*rng.Float64() - 0.8,
			P:   math.Exp(rng.Float64()*6 - 3),
		}
		sol, err := Solve(l, r, 5.0/3.0)
		if err == ErrVacuum {
			continue // legitimately receding states
		}
		if err != nil {
			t.Fatalf("trial %d (%+v | %+v): %v", trial, l, r, err)
		}
		solved++
		if sol.Pstar <= 0 || math.Abs(sol.Vstar) >= 1 {
			t.Fatalf("trial %d: unphysical star (%v, %v)", trial, sol.Pstar, sol.Vstar)
		}
		// Velocity match behind the two waves.
		g := gas{5.0 / 3.0}
		vl, err1 := g.velocityBehind(l, sol.Pstar, -1)
		vr, err2 := g.velocityBehind(r, sol.Pstar, +1)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: star evaluation failed: %v %v", trial, err1, err2)
		}
		if math.Abs(vl-vr) > 1e-8 {
			t.Fatalf("trial %d: star velocities differ: %v vs %v", trial, vl, vr)
		}
		// Sampling immediately left/right of the contact gives the star
		// pressure on both sides.
		for _, eps := range []float64{-1e-9, 1e-9} {
			st := sol.Sample(sol.Vstar + eps)
			if math.Abs(st.P-sol.Pstar)/sol.Pstar > 1e-6 {
				t.Fatalf("trial %d: contact sample p=%v, want %v", trial, st.P, sol.Pstar)
			}
		}
		// Far field returns the inputs.
		if sol.Sample(-0.999999) != l || sol.Sample(0.999999) != r {
			t.Fatalf("trial %d: far field corrupted", trial)
		}
	}
	if solved < 400 {
		t.Errorf("only %d/500 problems solved (too many vacuums?)", solved)
	}
}

func TestVacuumDetection(t *testing.T) {
	// Violently receding streams produce vacuum.
	_, err := Solve(State{Rho: 1, V: -0.9999, P: 1e-8}, State{Rho: 1, V: 0.9999, P: 1e-8}, 5.0/3.0)
	if err == nil {
		t.Fatal("vacuum not detected")
	}
}

func TestInputValidation(t *testing.T) {
	good := State{Rho: 1, V: 0, P: 1}
	cases := []struct {
		l, r  State
		gamma float64
	}{
		{State{Rho: -1, V: 0, P: 1}, good, 5.0 / 3.0},
		{good, State{Rho: 1, V: 0, P: -1}, 5.0 / 3.0},
		{good, State{Rho: 1, V: 1.5, P: 1}, 5.0 / 3.0},
		{good, good, 1.0},
		{good, good, 3.0},
	}
	for _, c := range cases {
		if _, err := Solve(c.l, c.r, c.gamma); err == nil {
			t.Errorf("inputs %+v accepted", c)
		}
	}
}

func TestSampleProfile(t *testing.T) {
	sol, err := Solve(State{Rho: 10, V: 0, P: 13.33}, State{Rho: 1, V: 0, P: 1e-6}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{0.1, 0.5, 0.9}
	// At t=0 the initial data must be returned.
	prof0 := sol.SampleProfile(xs, 0.5, 0)
	if prof0[0].Rho != 10 || prof0[2].Rho != 1 {
		t.Errorf("t=0 profile wrong: %+v", prof0)
	}
	// At t>0 the discontinuity spreads.
	prof := sol.SampleProfile(xs, 0.5, 0.4)
	if prof[0] != sol.L {
		t.Errorf("x=0.1 should still be undisturbed: %+v", prof[0])
	}
	if prof[1].V <= 0 {
		t.Errorf("x=0.5 should be moving right: %+v", prof[1])
	}
}

// Galilean-like check: boosting both states by the same small velocity
// shifts v* by approximately that velocity for weak waves (exactly true in
// the Newtonian limit).
func TestWeakWaveBoostCovariance(t *testing.T) {
	l := State{Rho: 1, V: 0, P: 1.0}
	r := State{Rho: 1, V: 0, P: 0.99}
	sol0, err := Solve(l, r, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	const dv = 1e-3
	lb := State{Rho: 1, V: dv, P: 1.0}
	rb := State{Rho: 1, V: dv, P: 0.99}
	solB, err := Solve(lb, rb, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((solB.Vstar-sol0.Vstar)-dv) > 1e-6 {
		t.Errorf("boosted v* shift = %v, want %v", solB.Vstar-sol0.Vstar, dv)
	}
	if math.Abs(solB.Pstar-sol0.Pstar)/sol0.Pstar > 1e-4 {
		t.Errorf("boost changed p*: %v vs %v", solB.Pstar, sol0.Pstar)
	}
}
