package exact

// Exact Riemann solver with transverse velocities (the problem class of
// Pons, Martí & Müller, JFM 422, 2000). Transverse velocity couples into
// the wave dynamics through the Lorentz factor; the key additional
// invariant is A = h W v_t, conserved across both shocks and simple
// waves.
//
// Shocks use the exact jump conditions: the (purely thermodynamic) Taub
// adiabat for the post enthalpy, the mass flux for the shock speed, and
// mass conservation closed by the A-invariant for the post-state
// kinematics. Rarefaction curves are integrated as sequences of weak
// shocks — entropy production per step is O(Δp³), so the composition
// converges to the isentropic simple wave; this reuses the tested shock
// relations instead of a hand-derived ODE.

import (
	"errors"
	"fmt"
	"math"

	"rhsc/internal/mathutil"
)

// State2 is a 1-D state with transverse velocity.
type State2 struct {
	Rho float64
	Vx  float64
	Vt  float64 // transverse speed (magnitude along a fixed direction)
	P   float64
}

// lorentz returns W for the full velocity.
func (s State2) lorentz() float64 {
	v2 := s.Vx*s.Vx + s.Vt*s.Vt
	return 1 / math.Sqrt(1-v2)
}

// SolutionVt is the solved Riemann problem with transverse velocities.
type SolutionVt struct {
	Gamma float64
	L, R  State2

	Pstar float64
	Vstar float64 // normal velocity of the contact

	LeftWave  WaveKind
	RightWave WaveKind

	// Star states adjacent to the contact (v_t generally jumps there).
	StarL State2
	StarR State2

	LeftSpeed  float64 // shock speed (left wave, if shock)
	LeftHead   float64
	LeftTail   float64
	RightSpeed float64
	RightHead  float64
	RightTail  float64
}

// waveResultVt is the post-wave state of one side for a candidate star
// pressure.
type waveResultVt struct {
	st     State2  // full post-wave state
	vshock float64 // shock speed (shock branch only)
}

// shockVt applies the exact jump conditions for a wave on side sign
// (−1 left, +1 right) taking state s to pressure pb.
func (g gas) shockVt(s State2, pb, sign float64) (waveResultVt, error) {
	h := g.enthalpy(s.Rho, s.P)
	w := s.lorentz()
	a := h * w * s.Vt // invariant A = h W v_t

	hb := g.taubH(s.Rho, s.P, pb)
	if hb <= 1 {
		return waveResultVt{}, fmt.Errorf("exact: Taub adiabat gave h=%v", hb)
	}
	rhob := g.gamma * pb / ((g.gamma - 1) * (hb - 1))
	den := h/s.Rho - hb/rhob
	j2 := (pb - s.P) / den
	if j2 <= 0 {
		return waveResultVt{}, fmt.Errorf("exact: invalid mass flux (pb=%v)", pb)
	}
	j := math.Sqrt(j2)

	// Shock speed from ρ²W²(V_s − v_x)² = j²(1 − V_s²).
	a2 := s.Rho * s.Rho * w * w
	root := math.Sqrt(a2*(1-s.Vx*s.Vx) + j2)
	vshock := (a2*s.Vx + sign*j*root) / (a2 + j2)
	if vshock <= -1 || vshock >= 1 {
		return waveResultVt{}, fmt.Errorf("exact: acausal shock speed %v", vshock)
	}

	// Post normal velocity: ρ̄ W̄ (v̄x − V_s) = ρ W (vx − V_s) with
	// W̄² = (1 + (A/h̄)²) / (1 − v̄x²).
	q := s.Rho * w * (s.Vx - vshock)
	b2 := rhob * rhob * (1 + (a/hb)*(a/hb))
	qq := q * q
	disc := qq * (b2*(1-vshock*vshock) + qq)
	if disc < 0 {
		disc = 0
	}
	sq := math.Sqrt(disc)
	cand := [2]float64{
		(b2*vshock + sq) / (b2 + qq),
		(b2*vshock - sq) / (b2 + qq),
	}
	// Select by the normal-momentum jump: ρhW²vx(vx−V_s) + p continuous.
	mom := func(rho, p, h, vx, vt float64) float64 {
		w2 := 1 / (1 - vx*vx - vt*vt)
		return rho*h*w2*vx*(vx-vshock) + p
	}
	want := mom(s.Rho, s.P, h, s.Vx, s.Vt)
	best := math.NaN()
	bestErr := math.Inf(1)
	var bestVt float64
	for _, vx := range cand {
		if !(vx > -1 && vx < 1) {
			continue
		}
		wb := math.Sqrt((1 + (a/hb)*(a/hb)) / (1 - vx*vx))
		vt := a / (hb * wb)
		if vx*vx+vt*vt >= 1 {
			continue
		}
		if e := math.Abs(mom(rhob, pb, hb, vx, vt) - want); e < bestErr {
			best, bestErr, bestVt = vx, e, vt
		}
	}
	if math.IsNaN(best) || bestErr > 1e-6*(1+math.Abs(want)) {
		return waveResultVt{}, fmt.Errorf("exact: no consistent post-shock state (pb=%v, res=%v)", pb, bestErr)
	}
	return waveResultVt{
		st:     State2{Rho: rhob, Vx: best, Vt: bestVt, P: pb},
		vshock: vshock,
	}, nil
}

// rarefactionVt integrates the simple-wave curve from s to pressure pb < p
// as a composition of weak shocks.
func (g gas) rarefactionVt(s State2, pb, sign float64) (State2, error) {
	if pb >= s.P {
		return s, errors.New("exact: rarefaction needs pb < p")
	}
	steps := int(64 + 48*math.Abs(math.Log(s.P/pb)))
	ratio := math.Pow(pb/s.P, 1/float64(steps))
	cur := s
	for k := 0; k < steps; k++ {
		target := cur.P * ratio
		if k == steps-1 {
			target = pb
		}
		res, err := g.shockVt(cur, target, sign)
		if err != nil {
			return State2{}, fmt.Errorf("exact: rarefaction step %d: %w", k, err)
		}
		cur = res.st
	}
	return cur, nil
}

// waveVt dispatches on compression vs expansion.
func (g gas) waveVt(s State2, pb, sign float64) (waveResultVt, error) {
	if pb > s.P {
		return g.shockVt(s, pb, sign)
	}
	if pb == s.P {
		return waveResultVt{st: s}, nil
	}
	st, err := g.rarefactionVt(s, pb, sign)
	return waveResultVt{st: st}, err
}

// charSpeed returns the acoustic characteristic speed λ± of the state
// along x for family sign (−1 left, +1 right).
func (g gas) charSpeed(s State2, sign float64) float64 {
	cs2 := g.soundSpeed(s.Rho, s.P)
	cs2 *= cs2
	v2 := s.Vx*s.Vx + s.Vt*s.Vt
	den := 1 - v2*cs2
	disc := (1 - v2) * (1 - v2*cs2 - s.Vx*s.Vx*(1-cs2))
	if disc < 0 {
		disc = 0
	}
	return (s.Vx*(1-cs2) + sign*math.Sqrt(cs2*disc)) / den
}

// SolveVt computes the exact solution of the Riemann problem with
// transverse velocities.
func SolveVt(l, r State2, gamma float64) (*SolutionVt, error) {
	if gamma <= 1 || gamma > 2 {
		return nil, fmt.Errorf("exact: adiabatic index %v outside (1,2]", gamma)
	}
	for _, s := range []State2{l, r} {
		if s.Rho <= 0 || s.P <= 0 || s.Vx*s.Vx+s.Vt*s.Vt >= 1 {
			return nil, fmt.Errorf("exact: inadmissible state %+v", s)
		}
	}
	g := gas{gamma}

	f := func(p float64) (float64, error) {
		wl, err := g.waveVt(l, p, -1)
		if err != nil {
			return 0, err
		}
		wr, err := g.waveVt(r, p, +1)
		if err != nil {
			return 0, err
		}
		return wl.st.Vx - wr.st.Vx, nil
	}

	pLo := 1e-12 * math.Min(l.P, r.P)
	pHi := math.Max(l.P, r.P)
	fLo, err := f(pLo)
	if err != nil {
		return nil, err
	}
	if fLo <= 0 {
		return nil, ErrVacuum
	}
	for k := 0; ; k++ {
		fHi, err := f(pHi)
		if err != nil {
			return nil, err
		}
		if fHi < 0 {
			break
		}
		pHi *= 8
		if k > 100 {
			return nil, errors.New("exact: failed to bracket star pressure")
		}
	}
	pstar, err := mathutil.Brent(func(p float64) float64 {
		v, e := f(p)
		if e != nil {
			panic(e)
		}
		return v
	}, pLo, pHi, 1e-12*pHi, 200)
	if err != nil {
		return nil, fmt.Errorf("exact: pressure iteration: %w", err)
	}

	sol := &SolutionVt{Gamma: gamma, L: l, R: r, Pstar: pstar}
	wl, err := g.waveVt(l, pstar, -1)
	if err != nil {
		return nil, err
	}
	wr, err := g.waveVt(r, pstar, +1)
	if err != nil {
		return nil, err
	}
	sol.StarL, sol.StarR = wl.st, wr.st
	sol.Vstar = 0.5 * (wl.st.Vx + wr.st.Vx)

	if pstar > l.P {
		sol.LeftWave = Shock
		sol.LeftSpeed = wl.vshock
	} else {
		sol.LeftWave = Rarefaction
		sol.LeftHead = g.charSpeed(l, -1)
		sol.LeftTail = g.charSpeed(wl.st, -1)
	}
	if pstar > r.P {
		sol.RightWave = Shock
		sol.RightSpeed = wr.vshock
	} else {
		sol.RightWave = Rarefaction
		sol.RightHead = g.charSpeed(r, +1)
		sol.RightTail = g.charSpeed(wr.st, +1)
	}
	return sol, nil
}

// insideFanVt resolves the state inside a rarefaction fan at ξ by
// bisection on the pressure along the wave curve.
func (s *SolutionVt) insideFanVt(outer State2, xi, sign float64) State2 {
	g := gas{s.Gamma}
	lo, hi := s.Pstar, outer.P
	var st State2
	for k := 0; k < 60; k++ {
		mid := math.Sqrt(lo * hi)
		cur, err := g.rarefactionVt(outer, mid, sign)
		if err != nil {
			break
		}
		st = cur
		r := g.charSpeed(cur, sign) - xi
		// Left fan: char decreases with p; right fan: increases.
		if (sign > 0) == (r > 0) {
			hi = mid
		} else {
			lo = mid
		}
		if hi/lo-1 < 1e-12 {
			break
		}
	}
	return st
}

// Sample returns the exact state at similarity coordinate ξ = x/t.
func (s *SolutionVt) Sample(xi float64) State2 {
	switch s.LeftWave {
	case Shock:
		if xi <= s.LeftSpeed {
			return s.L
		}
	case Rarefaction:
		if xi <= s.LeftHead {
			return s.L
		}
		if xi < s.LeftTail {
			return s.insideFanVt(s.L, xi, -1)
		}
	}
	switch s.RightWave {
	case Shock:
		if xi >= s.RightSpeed {
			return s.R
		}
	case Rarefaction:
		if xi >= s.RightHead {
			return s.R
		}
		if xi > s.RightTail {
			return s.insideFanVt(s.R, xi, +1)
		}
	}
	if xi < s.Vstar {
		return s.StarL
	}
	return s.StarR
}
