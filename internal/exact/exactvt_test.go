package exact

import (
	"math"
	"math/rand"
	"testing"
)

// With zero transverse velocity, SolveVt must agree with the closed-form
// solver to the weak-shock integration tolerance.
func TestVtReducesToClosedForm(t *testing.T) {
	cases := []struct{ l, r State }{
		{State{10, 0, 13.33}, State{1, 0, 1e-6}},
		{State{1, 0, 1000}, State{1, 0, 0.01}},
		{State{1, 0.5, 1}, State{1, -0.5, 1}},
		{State{1, -0.3, 1}, State{1, 0.3, 1}},
	}
	for _, c := range cases {
		ref, err := Solve(c.l, c.r, 5.0/3.0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveVt(
			State2{Rho: c.l.Rho, Vx: c.l.V, P: c.l.P},
			State2{Rho: c.r.Rho, Vx: c.r.V, P: c.r.P}, 5.0/3.0)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if math.Abs(got.Pstar-ref.Pstar)/ref.Pstar > 1e-4 {
			t.Errorf("%+v: p* = %v, closed form %v", c, got.Pstar, ref.Pstar)
		}
		if math.Abs(got.Vstar-ref.Vstar) > 1e-4 {
			t.Errorf("%+v: v* = %v, closed form %v", c, got.Vstar, ref.Vstar)
		}
		if got.LeftWave != ref.LeftWave || got.RightWave != ref.RightWave {
			t.Errorf("%+v: wave structure mismatch", c)
		}
	}
}

// The invariant A = h W v_t must be conserved across each wave separately
// (it generally jumps at the contact).
func TestVtInvariantConserved(t *testing.T) {
	g := gas{5.0 / 3.0}
	l := State2{Rho: 1, Vx: 0.3, Vt: 0.4, P: 5}
	r := State2{Rho: 2, Vx: -0.2, Vt: -0.3, P: 0.5}
	sol, err := SolveVt(l, r, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	aOf := func(s State2) float64 {
		return g.enthalpy(s.Rho, s.P) * s.lorentz() * s.Vt
	}
	if aL, aS := aOf(l), aOf(sol.StarL); math.Abs(aL-aS)/math.Abs(aL) > 1e-4 {
		t.Errorf("left A: %v -> %v", aL, aS)
	}
	if aR, aS := aOf(r), aOf(sol.StarR); math.Abs(aR-aS)/math.Abs(aR) > 1e-4 {
		t.Errorf("right A: %v -> %v", aR, aS)
	}
	// Pressure and normal velocity are continuous at the contact; v_t is
	// not (in general).
	if math.Abs(sol.StarL.Vx-sol.StarR.Vx) > 1e-6 {
		t.Errorf("normal velocity jumps at contact: %v vs %v", sol.StarL.Vx, sol.StarR.Vx)
	}
	if math.Abs(sol.StarL.Vt-sol.StarR.Vt) < 1e-3 {
		t.Errorf("v_t should jump at the contact here: %v vs %v", sol.StarL.Vt, sol.StarR.Vt)
	}
}

// Full Rankine–Hugoniot verification of the shock branch: every conserved
// component's jump condition F(U) − V_s U must match across the shock.
func TestVtShockRankineHugoniot(t *testing.T) {
	g := gas{5.0 / 3.0}
	s := State2{Rho: 1, Vx: -0.2, Vt: 0.5, P: 0.1}
	res, err := g.shockVt(s, 2.5, +1)
	if err != nil {
		t.Fatal(err)
	}
	flux := func(st State2) (fd, fmx, fmt_, fe float64) {
		h := g.enthalpy(st.Rho, st.P)
		w := st.lorentz()
		d := st.Rho * w
		mx := st.Rho * h * w * w * st.Vx
		mt := st.Rho * h * w * w * st.Vt
		e := st.Rho*h*w*w - st.P
		vs := res.vshock
		return d*st.Vx - vs*d,
			mx*st.Vx + st.P - vs*mx,
			mt*st.Vx - vs*mt,
			mx - vs*e
	}
	a0, a1, a2, a3 := flux(s)
	b0, b1, b2, b3 := flux(res.st)
	for i, pair := range [][2]float64{{a0, b0}, {a1, b1}, {a2, b2}, {a3, b3}} {
		if math.Abs(pair[0]-pair[1]) > 1e-8*(1+math.Abs(pair[0])) {
			t.Errorf("RH condition %d violated: %v vs %v", i, pair[0], pair[1])
		}
	}
}

// Random admissible problems must solve with causal, ordered waves.
func TestVtRandomProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	solved := 0
	for trial := 0; trial < 200; trial++ {
		mk := func() State2 {
			vx := 1.2*rng.Float64() - 0.6
			vt := 1.2*rng.Float64() - 0.6
			if vx*vx+vt*vt > 0.9 {
				vt = 0
			}
			return State2{
				Rho: math.Exp(rng.Float64()*4 - 2),
				Vx:  vx, Vt: vt,
				P: math.Exp(rng.Float64()*4 - 2),
			}
		}
		l, r := mk(), mk()
		sol, err := SolveVt(l, r, 5.0/3.0)
		if err == ErrVacuum {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d (%+v | %+v): %v", trial, l, r, err)
		}
		solved++
		if sol.Pstar <= 0 || math.Abs(sol.Vstar) >= 1 {
			t.Fatalf("trial %d: unphysical star", trial)
		}
		// Star states causal.
		for _, st := range []State2{sol.StarL, sol.StarR} {
			if st.Vx*st.Vx+st.Vt*st.Vt >= 1 {
				t.Fatalf("trial %d: superluminal star state %+v", trial, st)
			}
		}
		// Wave ordering.
		var le, re float64
		if sol.LeftWave == Shock {
			le = sol.LeftSpeed
		} else {
			le = sol.LeftTail
		}
		if sol.RightWave == Shock {
			re = sol.RightSpeed
		} else {
			re = sol.RightTail
		}
		if !(le <= sol.Vstar+1e-8 && sol.Vstar <= re+1e-8) {
			t.Fatalf("trial %d: wave ordering broken (%v, %v, %v)", trial, le, sol.Vstar, re)
		}
	}
	if solved < 150 {
		t.Errorf("only %d/200 solved", solved)
	}
}

// Transverse velocity must change the wave dynamics (through the Lorentz
// factor): the star pressure of a shock-tube differs measurably when one
// side carries v_t — the relativistic coupling absent in Newtonian hydro.
func TestVtCouplesToDynamics(t *testing.T) {
	base, err := SolveVt(
		State2{Rho: 10, P: 13.33}, State2{Rho: 1, P: 1e-6}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	spun, err := SolveVt(
		State2{Rho: 10, P: 13.33, Vt: 0.9}, State2{Rho: 1, P: 1e-6}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spun.Pstar-base.Pstar)/base.Pstar < 0.05 {
		t.Errorf("v_t=0.9 changed p* by <5%%: %v vs %v", spun.Pstar, base.Pstar)
	}
}

// Sampling structure: undisturbed far field, star plateau, monotone fan.
func TestVtSampleStructure(t *testing.T) {
	l := State2{Rho: 10, Vx: 0, Vt: 0.3, P: 13.33}
	r := State2{Rho: 1, Vx: 0, Vt: -0.2, P: 1e-6}
	sol, err := SolveVt(l, r, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Sample(-0.99); got != l {
		t.Errorf("far left %+v", got)
	}
	if got := sol.Sample(0.99); got != r {
		t.Errorf("far right %+v", got)
	}
	mid := sol.Sample(0.5 * (sol.LeftTail + sol.Vstar))
	if math.Abs(mid.P-sol.Pstar)/sol.Pstar > 1e-6 {
		t.Errorf("star sample p = %v, want %v", mid.P, sol.Pstar)
	}
	// Fan pressure monotone decreasing.
	prev := math.Inf(1)
	for xi := sol.LeftHead + 1e-6; xi < sol.LeftTail; xi += (sol.LeftTail - sol.LeftHead) / 30 {
		p := sol.Sample(xi).P
		if p > prev*(1+1e-9) {
			t.Fatalf("fan pressure not monotone at xi=%v", xi)
		}
		prev = p
	}
}

func TestVtValidation(t *testing.T) {
	good := State2{Rho: 1, P: 1}
	if _, err := SolveVt(State2{Rho: 1, Vx: 0.8, Vt: 0.8, P: 1}, good, 5.0/3.0); err == nil {
		t.Error("superluminal state accepted")
	}
	if _, err := SolveVt(good, good, 3.0); err == nil {
		t.Error("bad gamma accepted")
	}
	// Vacuum.
	if _, err := SolveVt(
		State2{Rho: 1, Vx: -0.999, P: 1e-9},
		State2{Rho: 1, Vx: 0.999, P: 1e-9}, 5.0/3.0); err == nil {
		t.Error("vacuum not detected")
	}
}
