package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFutureResolveOnce(t *testing.T) {
	f, resolve := NewFuture[int]()
	resolve(42)
	resolve(7) // ignored: first writer wins
	if got := f.Get(); got != 42 {
		t.Errorf("Get = %d, want 42", got)
	}
}

func TestFutureTryGet(t *testing.T) {
	f, resolve := NewFuture[string]()
	if _, ok := f.TryGet(); ok {
		t.Error("unresolved future reported ready")
	}
	resolve("x")
	if v, ok := f.TryGet(); !ok || v != "x" {
		t.Errorf("TryGet = %q, %v", v, ok)
	}
}

func TestReady(t *testing.T) {
	f := Ready(3.14)
	if v, ok := f.TryGet(); !ok || v != 3.14 {
		t.Errorf("Ready future = %v, %v", v, ok)
	}
}

func TestFutureBlocksUntilResolved(t *testing.T) {
	f, resolve := NewFuture[int]()
	go func() {
		time.Sleep(10 * time.Millisecond)
		resolve(9)
	}()
	if got := f.Get(); got != 9 {
		t.Errorf("Get = %d", got)
	}
}

func TestAsync(t *testing.T) {
	p := NewPool(4)
	f := Async(p, func() int { return 11 })
	if got := f.Get(); got != 11 {
		t.Errorf("Async = %d", got)
	}
}

func TestPoolConcurrencyBound(t *testing.T) {
	p := NewPool(3)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Go(func() {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	p.Wait()
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds bound 3", peak.Load())
	}
}

func TestPoolWait(t *testing.T) {
	p := NewPool(2)
	var done atomic.Int64
	for i := 0; i < 10; i++ {
		p.Go(func() {
			time.Sleep(time.Millisecond)
			done.Add(1)
		})
	}
	p.Wait()
	if done.Load() != 10 {
		t.Errorf("Wait returned with %d/10 tasks done", done.Load())
	}
}

func TestParallelForCoversRange(t *testing.T) {
	p := NewPool(8)
	n := 10000
	hits := make([]int32, n)
	p.ParallelFor(0, n, 37, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForOffsetRange(t *testing.T) {
	p := NewPool(4)
	var sum atomic.Int64
	p.ParallelFor(100, 200, 7, func(lo, hi int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	want := int64(100+199) * 100 / 2
	if sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	p := NewPool(4)
	called := false
	p.ParallelFor(5, 5, 1, func(lo, hi int) { called = true })
	if called {
		t.Error("empty range invoked the body")
	}
	count := 0
	p.ParallelFor(0, 1, 0, func(lo, hi int) { count += hi - lo })
	if count != 1 {
		t.Errorf("tiny range covered %d", count)
	}
}

func TestParallelForAutoGrain(t *testing.T) {
	p := NewPool(4)
	var visits atomic.Int64
	p.ParallelFor(0, 1000, 0, func(lo, hi int) {
		visits.Add(int64(hi - lo))
	})
	if visits.Load() != 1000 {
		t.Errorf("auto-grain covered %d/1000", visits.Load())
	}
}

// Nested parallelism must not deadlock: a pooled task launching its own
// ParallelFor on the same pool.
func TestNestedParallelForNoDeadlock(t *testing.T) {
	p := NewPool(2)
	doneCh := make(chan struct{})
	go func() {
		var outer sync.WaitGroup
		for i := 0; i < 4; i++ {
			outer.Add(1)
			p.Go(func() {
				defer outer.Done()
				var sum atomic.Int64
				p.ParallelFor(0, 100, 10, func(lo, hi int) {
					sum.Add(int64(hi - lo))
				})
				if sum.Load() != 100 {
					t.Errorf("inner loop covered %d", sum.Load())
				}
			})
		}
		outer.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("nested ParallelFor deadlocked")
	}
}

func TestMapOrdered(t *testing.T) {
	p := NewPool(8)
	out := Map(p, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestWhenAll(t *testing.T) {
	p := NewPool(4)
	fs := make([]*Future[int], 5)
	for i := range fs {
		i := i
		fs[i] = Async(p, func() int {
			time.Sleep(time.Duration(i) * time.Millisecond)
			return i
		})
	}
	all := WhenAll(fs...)
	if n := all.Get(); n != 5 {
		t.Errorf("WhenAll = %d", n)
	}
	for i, f := range fs {
		if v, ok := f.TryGet(); !ok || v != i {
			t.Errorf("future %d = %v, %v", i, v, ok)
		}
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Size() < 1 {
		t.Error("default pool empty")
	}
	if NewPool(7).Size() != 7 {
		t.Error("explicit size ignored")
	}
}

func TestPoolString(t *testing.T) {
	if NewPool(2).String() == "" {
		t.Error("empty String()")
	}
}
