// Package par is the task-parallel runtime beneath the solver: futures,
// a bounded task pool, and strip-mined parallel loops.
//
// The design mirrors the futurization model the heterogeneous-computing
// HPC runtimes of the CLUSTER 2015 era (HPX-style) used: work is expressed
// as tasks returning futures, and bulk operations (the RHS sweeps) are
// strip-mined parallel loops whose grain is the scheduling unit. The pool
// is a counting semaphore rather than a fixed worker set, so nested
// parallelism (a task spawning a parallel loop) can never deadlock — inner
// loops simply borrow slots as they free up.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Future is a write-once container for a value of type T produced
// asynchronously. The zero value is not usable; obtain one from NewFuture
// or Async.
type Future[T any] struct {
	done chan struct{}
	val  T
	once sync.Once
}

// NewFuture returns an unresolved future and its resolver. Resolving more
// than once is a no-op (first writer wins), matching promise semantics.
func NewFuture[T any]() (*Future[T], func(T)) {
	f := &Future[T]{done: make(chan struct{})}
	resolve := func(v T) {
		f.once.Do(func() {
			f.val = v
			close(f.done)
		})
	}
	return f, resolve
}

// Ready returns an already-resolved future, useful for uniform APIs.
func Ready[T any](v T) *Future[T] {
	f, resolve := NewFuture[T]()
	resolve(v)
	return f
}

// Get blocks until the future resolves and returns its value.
func (f *Future[T]) Get() T {
	<-f.done
	return f.val
}

// Done returns a channel closed when the future resolves, for select use.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// TryGet returns the value and true if the future has resolved, without
// blocking.
func (f *Future[T]) TryGet() (T, bool) {
	select {
	case <-f.done:
		return f.val, true
	default:
		var zero T
		return zero, false
	}
}

// Pool bounds the number of concurrently running tasks. It is implemented
// as a counting semaphore over fresh goroutines: submissions beyond the
// bound block until a slot frees, which provides natural backpressure
// while keeping nested parallel loops deadlock-free.
type Pool struct {
	slots chan struct{}
	wg    sync.WaitGroup
}

// NewPool returns a pool allowing n concurrent tasks. n <= 0 selects
// runtime.NumCPU().
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{slots: make(chan struct{}, n)}
}

// Size returns the concurrency bound.
func (p *Pool) Size() int { return cap(p.slots) }

// Go runs fn as a pooled task, blocking until a slot is available.
func (p *Pool) Go(fn func()) {
	p.slots <- struct{}{}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.slots
			p.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every task submitted so far has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Async runs fn on the pool and returns a future for its result.
func Async[T any](p *Pool, fn func() T) *Future[T] {
	f, resolve := NewFuture[T]()
	p.Go(func() { resolve(fn()) })
	return f
}

// ParallelFor executes fn over [lo, hi) split into chunks of at most grain
// iterations, running chunks concurrently on the pool and returning when
// all are done. grain <= 0 selects a grain that yields ~4 chunks per slot.
// The function must be safe to call concurrently on disjoint ranges.
func (p *Pool) ParallelFor(lo, hi, grain int, fn func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (4 * p.Size())
		if grain < 1 {
			grain = 1
		}
	}
	if n <= grain {
		fn(lo, hi)
		return
	}
	var wg sync.WaitGroup
	// One shared chunk body, spawned with per-chunk bounds as plain
	// arguments: the loop allocates a single closure per ParallelFor call
	// instead of one per spawned chunk.
	run := func(a, b int) {
		defer func() {
			<-p.slots
			wg.Done()
		}()
		fn(a, b)
	}
	for start := lo; start < hi; start += grain {
		end := start + grain
		if end > hi {
			end = hi
		}
		// Acquire a slot without blocking; when the pool is saturated the
		// caller runs the chunk itself. This keeps nested parallel loops
		// deadlock-free: a pooled task that launches an inner loop makes
		// progress on its own slot instead of waiting for others.
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go run(start, end)
		default:
			fn(start, end)
		}
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) concurrently and collects the
// results in order.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ParallelFor(0, n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// WhenAll returns a future that resolves (to the count) when all the given
// futures have resolved.
func WhenAll[T any](fs ...*Future[T]) *Future[int] {
	out, resolve := NewFuture[int]()
	go func() {
		for _, f := range fs {
			<-f.Done()
		}
		resolve(len(fs))
	}()
	return out
}

// String implements fmt.Stringer for diagnostics.
func (p *Pool) String() string {
	return fmt.Sprintf("par.Pool(slots=%d, busy=%d)", cap(p.slots), len(p.slots))
}
