package durable

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// seal frames payload into a fresh buffer.
func seal(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := NewWriter(&buf)
	if _, err := fw.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := fw.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
	return buf.Bytes()
}

// unseal verifies and returns the payload of a framed buffer.
func unseal(b []byte) ([]byte, error) {
	fr, err := NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	got, err := io.ReadAll(fr)
	if err != nil {
		return nil, err
	}
	return got, fr.Verify()
}

func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 13, DefaultChunkSize - 1, DefaultChunkSize,
		DefaultChunkSize + 1, 3*DefaultChunkSize + 17} {
		payload := patterned(n)
		framed := seal(t, payload)
		if !IsFramed(framed) {
			t.Fatalf("n=%d: IsFramed false on own output", n)
		}
		got, err := unseal(framed)
		if err != nil {
			t.Fatalf("n=%d: unseal: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload mismatch (%d bytes back)", n, len(got))
		}
	}
}

func TestFrameWriterStreamsManySmallWrites(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(&buf)
	var want []byte
	for i := 0; i < 5000; i++ {
		p := []byte{byte(i), byte(i >> 8), byte(3 * i)}
		want = append(want, p...)
		if _, err := fw.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Seal(); err != nil {
		t.Fatal(err)
	}
	got, err := unseal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload mismatch after many small writes")
	}
}

// TestFrameEveryBitFlipDetected flips every bit of a framed buffer in
// turn and demands corruption detection with zero silent loads — the
// end-to-end integrity property everything above this package relies
// on. Offsets cover all structural classes: header, chunk length,
// payload, chunk CRC, footer totals, stream CRC and end magic.
func TestFrameEveryBitFlipDetected(t *testing.T) {
	payload := patterned(257)
	framed := seal(t, payload)
	for off := 0; off < len(framed); off++ {
		for bit := 0; bit < 8; bit++ {
			framed[off] ^= 1 << bit
			// Every single-bit flip must be caught: chunk CRCs guard
			// payloads, the header and footer carry their own checks,
			// and the footer's stream CRC plus totals close the gaps
			// (flipped length fields re-partition the chunk stream but
			// cannot reproduce all of them).
			if _, err := unseal(framed); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at byte %d bit %d: %v, want ErrCorrupt", off, bit, err)
			}
			framed[off] ^= 1 << bit
		}
	}
	if _, err := unseal(framed); err != nil {
		t.Fatalf("restored buffer no longer verifies: %v", err)
	}
}

// TestFrameEveryTruncationDetected cuts the frame at every length,
// including zero, and demands ErrCorrupt from the verify pass.
func TestFrameEveryTruncationDetected(t *testing.T) {
	// Two chunks, so cuts land in every structural class: header,
	// first chunk, chunk boundary, tail chunk, footer. Every offset of
	// the small frame is cut; the large frame samples coprime strides.
	small := seal(t, patterned(300))
	for cut := 0; cut < len(small); cut++ {
		if _, err := unseal(small[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v, want ErrCorrupt", cut, err)
		}
	}
	big := seal(t, patterned(3*DefaultChunkSize/2))
	for cut := 0; cut < len(big); cut += 251 {
		if _, err := unseal(big[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v, want ErrCorrupt", cut, err)
		}
	}
	for cut := len(big) - 40; cut < len(big); cut++ {
		if _, err := unseal(big[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("footer truncation to %d bytes: %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestFrameTrailingGarbageDetected(t *testing.T) {
	framed := seal(t, patterned(64))
	if _, err := unseal(append(framed, 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: %v, want ErrCorrupt", err)
	}
}

func TestFrameRejectsWrongVersion(t *testing.T) {
	framed := seal(t, patterned(8))
	framed[8] = 2 // version field
	// Header CRC must be regenerated or the header check fires first;
	// either way the classification is corruption.
	if _, err := unseal(framed); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: %v, want ErrCorrupt", err)
	}
}

func TestWriterResetReuses(t *testing.T) {
	var a, b bytes.Buffer
	fw := NewWriter(&a)
	fw.Write(patterned(100))
	fw.Seal()
	fw.Reset(&b)
	fw.Write(patterned(50))
	if err := fw.Seal(); err != nil {
		t.Fatal(err)
	}
	got, err := unseal(b.Bytes())
	if err != nil || !bytes.Equal(got, patterned(50)) {
		t.Fatalf("reset writer: %v", err)
	}
}

func TestAppendExtractBlob(t *testing.T) {
	for _, n := range []int{0, 1, 500, DefaultChunkSize * 2} {
		payload := patterned(n)
		blob := AppendBlob(nil, payload)
		// The blob is a plain frame too: both readers must agree.
		if got, err := unseal(blob); err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: streamed read of blob: %v", n, err)
		}
		got, err := ExtractBlob(blob)
		if err != nil {
			t.Fatalf("n=%d: extract: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: extract payload mismatch", n)
		}
	}
	// Multi-chunk frames extract too (writer-produced).
	payload := patterned(3*DefaultChunkSize + 5)
	got, err := ExtractBlob(seal(t, payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("multi-chunk extract: %v", err)
	}
}

func TestExtractBlobEveryBitFlipDetected(t *testing.T) {
	payload := patterned(97)
	pristine := AppendBlob(nil, payload)
	blob := append([]byte(nil), pristine...)
	for off := 0; off < len(blob); off++ {
		for bit := 0; bit < 8; bit++ {
			blob[off] ^= 1 << bit
			if _, err := ExtractBlob(blob); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("blob flip at byte %d bit %d: %v, want ErrCorrupt", off, bit, err)
			}
			blob[off] ^= 1 << bit
		}
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := ExtractBlob(blob[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("blob truncation to %d: %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestSections(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(&buf)
	meta := []byte(`{"id":"j000001"}`)
	snap := patterned(1000)
	if err := WriteSection(fw, meta); err != nil {
		t.Fatal(err)
	}
	if err := WriteSection(fw, snap); err != nil {
		t.Fatal(err)
	}
	if err := fw.Seal(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadSection(fr)
	if err != nil || !bytes.Equal(m, meta) {
		t.Fatalf("meta section: %v", err)
	}
	s, err := ReadSection(fr)
	if err != nil || !bytes.Equal(s, snap) {
		t.Fatalf("snap section: %v", err)
	}
	if err := fr.Verify(); err != nil {
		t.Fatal(err)
	}
}
